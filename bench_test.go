package dft

// One benchmark per paper table/figure (regenerating the underlying
// computation), plus the ablation benches DESIGN.md calls out. Run
// with: go test -bench=. -benchmem .

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"strings"
	"testing"

	"dft/internal/advise"
	"dft/internal/atpg"
	"dft/internal/autonomous"
	"dft/internal/bilbo"
	"dft/internal/bridge"
	"dft/internal/circuits"
	"dft/internal/cmos"
	"dft/internal/compact"
	"dft/internal/diagnose"
	"dft/internal/experiments"
	"dft/internal/fault"
	"dft/internal/lfsr"
	"dft/internal/logic"
	"dft/internal/lssd"
	"dft/internal/plaatpg"
	"dft/internal/ramtest"
	"dft/internal/scanset"
	"dft/internal/seqatpg"
	"dft/internal/service"
	"dft/internal/signature"
	"dft/internal/sim"
	"dft/internal/syndrome"
	"dft/internal/telemetry"
	"dft/internal/testability"
	"dft/internal/walsh"
)

// TestMain lets a benchmark run leave a machine-readable trail: when
// DFT_BENCH_JSON names a file, the process-wide telemetry accumulated
// by every benchmark and test in this package is written there as a
// dft.run-report/v1 document after the run.
func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("DFT_BENCH_JSON"); path != "" {
		rep := telemetry.NewReport("go-test", "bench", "dft")
		rep.Config["args"] = strings.Join(os.Args[1:], " ")
		rep.Results["exit_code"] = code
		f, err := os.Create(path)
		if err == nil {
			err = rep.Finish(telemetry.Default()).WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "DFT_BENCH_JSON:", err)
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}

// --- Figure/table regenerators ---

func BenchmarkFig1StuckAt(b *testing.B) {
	c := logic.New("and2")
	a := c.AddInput("A")
	bb := c.AddInput("B")
	y := c.AddGate(logic.And, "C", a, bb)
	c.MarkOutput(y)
	c.MustFinalize()
	f := fault.Fault{Gate: y, Pin: 0, SA: logic.One}
	pat := []bool{false, true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !fault.DetectsCombinational(c, pat, f) {
			b.Fatal("lost the Fig. 1 test")
		}
	}
}

func BenchmarkEq1Sweep(b *testing.B) {
	// The modern-flow side of the Eq. (1) sweep at one size.
	c := circuits.ArrayMultiplier(4)
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	view := atpg.PrimaryView(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		atpg.Generate(c, view, cl.Reps, atpg.Config{Engine: atpg.EnginePodem, RandomFirst: 64})
	}
}

func BenchmarkCollapse(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	c := circuits.RandomCircuit(rng, 20, 1000, 10, 2)
	u := fault.Universe(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fault.CollapseEquiv(c, u)
	}
}

func BenchmarkFig2Degating(b *testing.B) {
	c := circuits.RippleAdder(16)
	target, _ := c.NetByName("C16")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mod := testability.AddControlPoint(c, target)
		testability.Analyze(mod)
	}
}

func BenchmarkFig5InCircuitTest(b *testing.B) {
	adder := circuits.RippleAdder(4)
	mod := &boardModule{c: adder}
	pats := make([][]bool, 32)
	rng := rand.New(rand.NewSource(1))
	for i := range pats {
		p := make([]bool, 9)
		for j := range p {
			p[j] = rng.Intn(2) == 1
		}
		pats[i] = p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pats {
			mod.eval(p)
		}
	}
}

type boardModule struct{ c *logic.Circuit }

func (m *boardModule) eval(p []bool) []bool {
	vals := sim.Eval(m.c, p, nil)
	out := make([]bool, len(m.c.POs))
	for i, po := range m.c.POs {
		out[i] = vals[po]
	}
	return out
}

func BenchmarkFig7LFSR(b *testing.B) {
	l := lfsr.New(3, []int{2, 3})
	l.SetState(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Clock()
	}
}

func BenchmarkFig8Signature(b *testing.B) {
	l := lfsr.NewMaximal(16)
	stream := make([]uint64, 512)
	for i := range stream {
		stream[i] = uint64(i>>3) & 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Signature(stream)
	}
}

func BenchmarkFig8Diagnose(b *testing.B) {
	brd := experimentsBoard()
	a := signature.NewAnalyzer(16)
	s1, _ := brd.C.NetByName("S1")
	f := fault.Fault{Gate: s1, Pin: fault.Stem, SA: logic.One}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := brd.Diagnose(a, f); err != nil {
			b.Fatal(err)
		}
	}
}

func experimentsBoard() *signature.Board {
	c := logic.New("benchboard")
	en := c.AddInput("EN")
	qs := make([]int, 4)
	for i := range qs {
		qs[i] = c.AddDFF("Q"+string(rune('0'+i)), en)
	}
	carry := en
	for i := 0; i < 4; i++ {
		tnet := c.AddGate(logic.Xor, "T"+string(rune('0'+i)), qs[i], carry)
		c.Gates[qs[i]].Fanin[0] = tnet
		if i < 3 {
			carry = c.AddGate(logic.And, "CA"+string(rune('0'+i)), carry, qs[i])
		}
	}
	s1 := c.AddGate(logic.Xor, "S1", qs[1], qs[0])
	p := c.AddGate(logic.Xor, "PAR", s1, qs[2], qs[3])
	c.MarkOutput(p)
	c.MustFinalize()
	return &signature.Board{
		C:        c,
		Stimulus: signature.SelfStimulus(c, 50),
		Modules: []signature.Module{
			{Name: "uP", Outputs: qs},
			{Name: "ALU", Outputs: []int{s1}, Feeds: []string{"uP"}},
			{Name: "CHK", Outputs: []int{p}, Feeds: []string{"ALU"}},
		},
	}
}

func BenchmarkLSSDvsSequentialATPG(b *testing.B) {
	c := circuits.Counter(8)
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	view := atpg.FullScanView(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		atpg.Generate(c, view, cl.Reps, atpg.Config{Engine: atpg.EnginePodem})
	}
}

func BenchmarkLSSDScanApplication(b *testing.B) {
	d := lssd.NewDesign(circuits.Counter(8), lssd.StyleLSSD)
	st := lssd.ScanTest{State: make([]bool, 8), PI: []bool{true}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.RunTest(st)
	}
}

func BenchmarkFig13RacelessShift(b *testing.B) {
	ch := lssd.NewChain(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Shift(i&1 == 0)
	}
}

func BenchmarkFig15ScanSetSnapshot(b *testing.B) {
	c := circuits.Counter(16)
	m := sim.NewMachine(c)
	ss := scanset.New(m, c.DFFs, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss.Snapshot()
	}
}

func BenchmarkFig20BILBO(b *testing.B) {
	st := bilbo.NewSelfTest(circuits.RippleAdder(3), circuits.ParityTree(8), 8, 8, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.GoodSignatures()
	}
}

func BenchmarkFig22PLARandom(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	pla := circuits.RandomPLA(rng, 20, 8, 4, 20)
	faults := fault.CollapseEquiv(pla, fault.Universe(pla)).Reps
	pats := make([][]bool, 256)
	for i := range pats {
		p := make([]bool, 20)
		for j := range p {
			p[j] = rng.Intn(2) == 1
		}
		pats[i] = p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustFaultSim(b, pla, faults, pats, fault.Options{Backend: fault.BackendParallel})
	}
}

func BenchmarkSyndrome(b *testing.B) {
	c := circuits.RippleAdder(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		syndrome.Syndromes(c)
	}
}

func BenchmarkWalsh(b *testing.B) {
	c := circuits.ALU74181()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		walsh.CAll(c, 0, nil)
	}
}

func BenchmarkFig33SensitizedPartitioning(b *testing.B) {
	c := circuits.ALU74181()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		autonomous.RunSensitized74181(c)
	}
}

func BenchmarkSCOAP(b *testing.B) {
	c := circuits.ArrayMultiplier(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		testability.Analyze(c)
	}
}

// --- Ablation benches (DESIGN.md) ---

// Ablation 1: fault collapsing on/off — effect on fault-simulation time.
func BenchmarkAblationSimCollapsed(b *testing.B) {
	c := circuits.ArrayMultiplier(6)
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	pats := benchPatterns(c, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustFaultSim(b, c, cl.Reps, pats, fault.Options{Backend: fault.BackendParallel})
	}
}

func BenchmarkAblationSimUncollapsed(b *testing.B) {
	c := circuits.ArrayMultiplier(6)
	u := fault.Universe(c)
	pats := benchPatterns(c, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustFaultSim(b, c, u, pats, fault.Options{Backend: fault.BackendParallel})
	}
}

// Engine scaling: the sharded scheduler at 1/2/4/8 workers on the
// largest library netlist, reusing one engine per row so the pooled
// per-worker simulators are measured, not their construction. On a
// multicore machine the 4-worker row should run ≥ 2× faster than the
// 1-worker row; run via `make bench-faultsim` to capture the telemetry
// (per-shard counters included) in BENCH_faultsim.json.
func BenchmarkEngineScaling(b *testing.B) {
	c := circuits.ArrayMultiplier(8)
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	pats := benchPatterns(c, 256)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			eng := fault.NewEngine(c, fault.Options{Backend: fault.BackendParallel, Workers: w})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(context.Background(), cl.Reps, pats); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Speed-tier comparison: the same large grading without fault
	// dropping (every fault graded against every pattern — the service
	// tier's re-grading workload), once per backend. This is the
	// BENCH_faultpar.json matrix: cpt grades the whole fault list from
	// one good-machine pass per pattern, faultparallel packs 64 faulty
	// machines per word, parallel is the PPSFP baseline.
	for _, be := range []fault.Backend{fault.BackendParallel, fault.BackendFaultParallel, fault.BackendCPT} {
		b.Run("nodrop/"+be.String(), func(b *testing.B) {
			eng := fault.NewEngine(c, fault.Options{Backend: be, Drop: fault.DropOff})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(context.Background(), cl.Reps, pats); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// The SPMF sweet spot is the other corner of Eq. 1: a handful of
	// patterns against the full fault list (incremental re-grading),
	// where packing 64 faulty machines per word beats packing patterns.
	few := pats[:8]
	for _, be := range []fault.Backend{fault.BackendParallel, fault.BackendFaultParallel, fault.BackendCPT} {
		b.Run("fewpats/"+be.String(), func(b *testing.B) {
			eng := fault.NewEngine(c, fault.Options{Backend: be, Drop: fault.DropOff})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(context.Background(), cl.Reps, few); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation 2: bit-parallel vs serial fault simulation.
func BenchmarkAblationSimParallel(b *testing.B) {
	c := circuits.ArrayMultiplier(5)
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	pats := benchPatterns(c, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustFaultSim(b, c, cl.Reps, pats, fault.Options{Backend: fault.BackendParallel, Drop: fault.DropOff})
	}
}

func BenchmarkAblationSimSerial(b *testing.B) {
	c := circuits.ArrayMultiplier(5)
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	pats := benchPatterns(c, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range cl.Reps {
			for _, p := range pats {
				fault.DetectsCombinational(c, p, f)
			}
		}
	}
}

// Ablation 3: D-algorithm vs PODEM vs random+compaction.
func BenchmarkAblationEnginePodem(b *testing.B) {
	benchEngine(b, atpg.EnginePodem, 0)
}

func BenchmarkAblationEngineDAlg(b *testing.B) {
	benchEngine(b, atpg.EngineDAlg, 0)
}

func BenchmarkAblationEngineRandomFirst(b *testing.B) {
	benchEngine(b, atpg.EnginePodem, 256)
}

func benchEngine(b *testing.B, e atpg.Engine, randomFirst int) {
	b.Helper()
	c := circuits.RippleAdder(8)
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	view := atpg.PrimaryView(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := atpg.Generate(c, view, cl.Reps, atpg.Config{Engine: e, RandomFirst: randomFirst})
		if res.Coverage < 1.0 {
			b.Fatalf("coverage %.3f", res.Coverage)
		}
	}
}

// Ablation 4: scan vs no-scan ATPG on the same machine.
func BenchmarkAblationATPGNoScan(b *testing.B) {
	c := circuits.Counter(8)
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	view := atpg.PrimaryView(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		atpg.Generate(c, view, cl.Reps, atpg.Config{Engine: atpg.EnginePodem, MaxBacktracks: 200})
	}
}

func BenchmarkAblationATPGFullScan(b *testing.B) {
	c := circuits.Counter(8)
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	view := atpg.FullScanView(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		atpg.Generate(c, view, cl.Reps, atpg.Config{Engine: atpg.EnginePodem, MaxBacktracks: 200})
	}
}

// Ablation 5: BILBO pattern count vs coverage (time per session size).
func BenchmarkAblationBILBO64(b *testing.B)  { benchBILBO(b, 64) }
func BenchmarkAblationBILBO255(b *testing.B) { benchBILBO(b, 255) }

func benchBILBO(b *testing.B, patterns int) {
	b.Helper()
	c1 := circuits.RippleAdder(3)
	c2 := circuits.ParityTree(8)
	cl := fault.CollapseEquiv(c1, fault.Universe(c1))
	st := bilbo.NewSelfTest(c1, c2, 8, 8, patterns)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.MeasureCoverage(cl.Reps)
	}
}

// Ablation 6: LFSR width vs aliasing (signature cost by width).
func BenchmarkAblationLFSRWidth8(b *testing.B)  { benchSigWidth(b, 8) }
func BenchmarkAblationLFSRWidth24(b *testing.B) { benchSigWidth(b, 24) }

func benchSigWidth(b *testing.B, w int) {
	b.Helper()
	l := lfsr.NewMaximal(w)
	stream := make([]uint64, 1024)
	for i := range stream {
		stream[i] = uint64(i) & 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Signature(stream)
	}
}

// BenchmarkCompact is the compaction acceptance benchmark, run via
// `make bench-compact` to capture BENCH_compact.json. Three workloads
// per builtin:
//
//   - random: reverse-order replay over a 1024-pattern random set —
//     the paper's store-size economics; the target is ≥ 4× reduction;
//   - deterministic: the full pipeline over the classical
//     one-test-per-collapsed-fault PODEM set (no inter-test
//     fault-drop credit — the workload the compaction literature
//     measures); the target is ≥ 1.5×;
//   - greedy: the full pipeline over a complete Generate run, whose
//     driver already fault-simulates every new test against the
//     remaining list. That greedy credit is compaction in spirit, so
//     the residual ratio here is small by construction; the row is
//     reported for honesty, with no target.
//
// Each row reports its reduction as a compactratio metric and leaves
// it in the telemetry as a compact.bench.<row>.ratio_x100 gauge, so
// the JSON document carries the acceptance numbers alongside the
// engine's own counters.
func BenchmarkCompact(b *testing.B) {
	reg := telemetry.Default()
	for _, tc := range []struct {
		name string
		c    *logic.Circuit
	}{
		{"mult8", circuits.ArrayMultiplier(8)},
		{"alu74181", circuits.ALU74181()},
	} {
		c := tc.c
		cl := fault.CollapseEquiv(c, fault.Universe(c))
		view := atpg.PrimaryView(c)
		pats := benchPatterns(c, 1024)
		var perFault []atpg.Test
		for _, f := range cl.Reps {
			if tst, err := atpg.Podem(c, view, f, atpg.PodemConfig{}); err == nil {
				perFault = append(perFault, tst)
			}
		}
		record := func(b *testing.B, row string, ratio float64) {
			b.ReportMetric(ratio, "compactratio")
			reg.Gauge("compact.bench." + row + "." + tc.name + ".ratio_x100").Set(int64(ratio * 100))
		}
		b.Run("random/"+tc.name, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				_, st, err := compact.Patterns(context.Background(), c, view, cl.Reps, pats,
					compact.Options{Mode: compact.ModeReverse, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				ratio = st.Ratio
			}
			record(b, "random", ratio)
		})
		b.Run("deterministic/"+tc.name, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				_, _, st, err := compact.Tests(context.Background(), c, view, cl.Reps, perFault,
					compact.Options{Mode: compact.ModeFull, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				ratio = st.Ratio
			}
			record(b, "deterministic", ratio)
		})
		b.Run("greedy/"+tc.name, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				res := atpg.Generate(c, view, cl.Reps, atpg.Config{
					Engine: atpg.EnginePodem, RandomSeed: 1,
				})
				st, err := compact.Result(context.Background(), c, view, cl.Reps, res,
					compact.Options{Mode: compact.ModeFull, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				ratio = st.Ratio
			}
			record(b, "greedy", ratio)
		})
	}
}

// BenchmarkKernelInterpVsCompiled is the kernel acceptance benchmark:
// interpreted EvalWordsInterpInto vs the compiled program's word and
// blocked execution, on three circuit sizes. The reported metric is
// gate-evaluations per second (len(c.Order) nets × 64 patterns per
// word pass), so rows are comparable across circuits; the compiled
// word row must come out ≥ 2× the interp row on the largest circuit.
// Run via `make bench-sim` to capture BENCH_simkernel.json.
func BenchmarkKernelInterpVsCompiled(b *testing.B) {
	const blockW = 8
	for _, tc := range []struct {
		name string
		c    *logic.Circuit
	}{
		{"c17", circuits.C17()},
		{"alu74181", circuits.ALU74181()},
		{"mult8", circuits.ArrayMultiplier(8)},
	} {
		c := tc.c
		p := sim.Compile(c)
		rng := rand.New(rand.NewSource(3))
		pi := make([]uint64, len(c.PIs))
		for i := range pi {
			pi[i] = rng.Uint64()
		}
		state := make([]uint64, len(c.DFFs))
		vals := make([]uint64, c.NumNets())
		scratch := make([]uint64, c.MaxFanin())
		evalsPerPass := float64(len(c.Order)) * 64
		b.Run(tc.name+"/interp", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sim.EvalWordsInterpInto(c, pi, state, vals, scratch)
			}
			b.ReportMetric(evalsPerPass*float64(b.N)/b.Elapsed().Seconds(), "gateevals/s")
		})
		b.Run(tc.name+"/compiled", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.EvalWordsInto(pi, state, vals)
			}
			b.ReportMetric(evalsPerPass*float64(b.N)/b.Elapsed().Seconds(), "gateevals/s")
		})
		piW := make([]uint64, len(c.PIs)*blockW)
		for i := range piW {
			piW[i] = rng.Uint64()
		}
		stateW := make([]uint64, len(c.DFFs)*blockW)
		valsW := make([]uint64, c.NumNets()*blockW)
		b.Run(fmt.Sprintf("%s/block%d", tc.name, blockW), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.EvalBlockInto(piW, stateW, valsW, blockW)
			}
			b.ReportMetric(evalsPerPass*blockW*float64(b.N)/b.Elapsed().Seconds(), "gateevals/s")
		})
	}
}

// --- Service observability benches (`make bench-service`) ---

// BenchmarkServiceJobLatency measures the job service's end-to-end
// overhead per job — admission, queue, monitor goroutine, report
// encoding — around a small faultsim payload. Distinct seeds defeat
// the result cache, so every iteration runs the full path.
func BenchmarkServiceJobLatency(b *testing.B) {
	srv := service.New(service.Config{
		Workers: 2, QueueDepth: 256, CacheSize: 16,
		Metrics: telemetry.NewRegistry(),
	})
	defer srv.Shutdown(context.Background())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := srv.Submit(service.JobRequest{
			Kind: service.KindFaultSim, Builtin: "c17",
			Options: service.Options{Seed: int64(i + 1), Patterns: 64},
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := srv.Wait(context.Background(), j.ID); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceProgressOverhead is the instrumentation ablation:
// the sharded engine with its per-chunk Progress ticks against the
// same run with NoProgress set. The instrumented row must come out
// within 2% of the ablated row — the primitive is two atomics per
// chunk, far off the hot path. Run via `make bench-service` to leave
// the rows' telemetry in BENCH_service.json.
func BenchmarkServiceProgressOverhead(b *testing.B) {
	c := circuits.ArrayMultiplier(8)
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	pats := benchPatterns(c, 256)
	for _, tc := range []struct {
		name   string
		noProg bool
	}{
		{"instrumented", false},
		{"ablated", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			eng := fault.NewEngine(c, fault.Options{
				Backend: fault.BackendParallel, Workers: 4,
				NoProgress: tc.noProg, Metrics: telemetry.NewRegistry(),
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(context.Background(), cl.Reps, pats); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServiceProgressPrimitive prices the primitive itself: one
// contended Progress.Inc across GOMAXPROCS goroutines.
func BenchmarkServiceProgressPrimitive(b *testing.B) {
	p := telemetry.NewRegistry().Progress("bench.progress")
	p.SetTotal(int64(b.N))
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			p.Inc()
		}
	})
}

// BenchmarkExperimentRegistry keeps the full regeneration honest: one
// iteration runs every fast experiment end to end.
func BenchmarkExperimentRegistry(b *testing.B) {
	skip := map[string]bool{"eq1": true}
	for i := 0; i < b.N; i++ {
		for _, e := range experiments.All() {
			if skip[e.ID] {
				continue
			}
			_ = e.Run().Render()
		}
	}
}

func benchPatterns(c *logic.Circuit, n int) [][]bool {
	rng := rand.New(rand.NewSource(9))
	out := make([][]bool, n)
	for i := range out {
		p := make([]bool, len(c.PIs))
		for j := range p {
			p[j] = rng.Intn(2) == 1
		}
		out[i] = p
	}
	return out
}

// --- Extension benches ---

func BenchmarkBridgingGrade(b *testing.B) {
	c := circuits.RippleAdder(6)
	rng := rand.New(rand.NewSource(9))
	bridges := bridge.Universe(c, 1, 100, rng)
	pats := benchPatterns(c, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bridge.Grade(c, bridges, pats)
	}
}

func BenchmarkCMOSTwoPattern(b *testing.B) {
	c := circuits.C17()
	u := cmos.Universe(c)
	rng := rand.New(rand.NewSource(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmos.GradeTwoPattern(c, u, rng)
	}
}

func BenchmarkSeqATPGUnroll(b *testing.B) {
	c := circuits.Counter(4)
	t2, _ := c.NetByName("T2")
	f := fault.Fault{Gate: t2, Pin: fault.Stem, SA: logic.Zero}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := seqatpg.Generate(c, f, seqatpg.Config{MaxFrames: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSimDeductive(b *testing.B) {
	c := circuits.ArrayMultiplier(5)
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	pats := benchPatterns(c, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustFaultSim(b, c, cl.Reps, pats, fault.Options{Backend: fault.BackendDeductive})
	}
}

func BenchmarkDictionaryBuild(b *testing.B) {
	c := circuits.RippleAdder(4)
	u := fault.Universe(c)
	pats := benchPatterns(c, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := diagnose.Build(context.Background(), c, u, pats, diagnose.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// legacyDictionaryBuild replicates the pre-engine serial dictionary
// loop byte-for-byte as the BenchmarkDiagnose baseline: one fresh
// ParallelSim, per-output bit-by-bit response extraction into a
// full per-pattern matrix, and an fnv hash over every response word.
func legacyDictionaryBuild(c *logic.Circuit, faults []fault.Fault, patterns [][]bool) map[uint64][]int {
	poWords := (len(c.POs) + 63) / 64
	responses := make([][][]uint64, len(faults))
	for i := range responses {
		responses[i] = make([][]uint64, len(patterns))
		for p := range responses[i] {
			responses[i][p] = make([]uint64, poWords)
		}
	}
	ps := fault.NewParallelSim(c)
	for base := 0; base < len(patterns); base += 64 {
		end := base + 64
		if end > len(patterns) {
			end = len(patterns)
		}
		k := ps.LoadBlock(patterns[base:end])
		for fi, f := range faults {
			ps.FaultMask(f)
			for j, po := range c.POs {
				diff := ps.FaultyWord(po) ^ ps.GoodWord(po)
				for bit := 0; bit < k; bit++ {
					if diff>>uint(bit)&1 == 1 {
						responses[fi][base+bit][j/64] |= 1 << uint(j%64)
					}
				}
			}
		}
	}
	byHash := map[uint64][]int{}
	var buf [8]byte
	for fi := range responses {
		h := fnv.New64a()
		for _, pat := range responses[fi] {
			for _, w := range pat {
				for i := 0; i < 8; i++ {
					buf[i] = byte(w >> uint(8*i))
				}
				h.Write(buf[:])
			}
		}
		byHash[h.Sum64()] = append(byHash[h.Sum64()], fi)
	}
	return byHash
}

// BenchmarkDiagnose measures the tentpole claims on the 8×8 multiplier:
// engine-backed dictionary builds vs the legacy serial loop, and the
// storage cost of the compact tier vs the full-response tier vs a
// compacted-input dictionary. Gauges land in BENCH_diagnose.json via
// DFT_BENCH_JSON.
func BenchmarkDiagnose(b *testing.B) {
	reg := telemetry.Default()
	c := circuits.ArrayMultiplier(8)
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	pats := benchPatterns(c, 256)
	var engineNs, legacyNs int64
	b.Run("build/engine/mult8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d, err := diagnose.Build(context.Background(), c, cl.Reps, pats, diagnose.Options{Workers: 1})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				reg.Gauge("diagnose.bench.dict_bytes_compact").Set(int64(d.CompactBytes()))
			}
		}
		engineNs = b.Elapsed().Nanoseconds() / int64(b.N)
		reg.Gauge("diagnose.bench.engine_ns_per_build").Set(engineNs)
	})
	b.Run("build/legacy/mult8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			legacyDictionaryBuild(c, cl.Reps, pats)
		}
		legacyNs = b.Elapsed().Nanoseconds() / int64(b.N)
		reg.Gauge("diagnose.bench.legacy_ns_per_build").Set(legacyNs)
		if engineNs > 0 {
			reg.Gauge("diagnose.bench.speedup_x100").Set(legacyNs * 100 / engineNs)
		}
	})
	b.Run("build/full/mult8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d, err := diagnose.Build(context.Background(), c, cl.Reps, pats, diagnose.Options{Workers: 1, Full: true})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				reg.Gauge("diagnose.bench.dict_bytes_full").Set(int64(d.CompactBytes() + d.FullBytes()))
			}
		}
	})
	b.Run("build/compacted/mult8", func(b *testing.B) {
		kept, _, err := compact.Patterns(context.Background(), c, atpg.PrimaryView(c), cl.Reps, pats,
			compact.Options{Mode: compact.ModeReverse, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d, err := diagnose.Build(context.Background(), c, cl.Reps, kept, diagnose.Options{Workers: 1})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				reg.Gauge("diagnose.bench.dict_bytes_compacted_input").Set(int64(d.CompactBytes()))
				reg.Gauge("diagnose.bench.compacted_input_patterns").Set(int64(d.NumPats))
			}
		}
	})
}

// BenchmarkAdvise is the advisor acceptance benchmark, run via
// `make bench-advise` to capture BENCH_advise.json. Two rows: the
// hardcore builtin (buried sequential logic the advisor must open
// with test points and partial scan — coverage must climb from a
// sub-90% baseline to the 99% target) and the 74181 ALU (already
// highly testable — the advisor must stop early and cheaply). Each
// row leaves its coverage-vs-overhead trajectory in the telemetry as
// advise.bench.<row>.* gauges, so the JSON document carries the
// acceptance numbers alongside the advisor's own probe counters.
func BenchmarkAdvise(b *testing.B) {
	reg := telemetry.Default()
	for _, tc := range []struct {
		name string
		c    *logic.Circuit
	}{
		{"hardcore", circuits.Hardcore(8)},
		{"alu74181", circuits.ALU74181()},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var plan *advise.Plan
			for i := 0; i < b.N; i++ {
				var err error
				plan, err = advise.Run(context.Background(), tc.c, advise.Options{
					Target: 0.99, Seed: 7,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			if plan.Coverage < 0.99 {
				b.Fatalf("%s: coverage %.4f below target", tc.name, plan.Coverage)
			}
			b.ReportMetric(plan.Coverage*100, "coverage%")
			b.ReportMetric(plan.Overhead*100, "overhead%")
			b.ReportMetric(float64(len(plan.Steps)), "steps")
			row := "advise.bench." + tc.name
			reg.Gauge(row + ".baseline_bp").Set(int64(plan.Baseline * 10000))
			reg.Gauge(row + ".coverage_bp").Set(int64(plan.Coverage * 10000))
			reg.Gauge(row + ".overhead_x100").Set(int64(plan.Overhead * 100))
			reg.Gauge(row + ".steps").Set(int64(len(plan.Steps)))
			reg.Gauge(row + ".pins").Set(int64(plan.Pins))
		})
	}
}

func BenchmarkHazardAnalysis(b *testing.B) {
	c := circuits.ALU74181()
	p1 := benchPatterns(c, 2)[0]
	p2 := benchPatterns(c, 2)[1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.HazardAnalysis(c, p1, p2)
	}
}

func BenchmarkMarchCMinus(b *testing.B) {
	r := ramtest.New(1024, 8)
	m := ramtest.MarchCMinus()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !m.Run(r) {
			b.Fatal("healthy RAM failed")
		}
	}
}

func BenchmarkFlushTest(b *testing.B) {
	d := lssd.NewDesign(circuits.Counter(16), lssd.StyleMuxScan)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !d.FlushTest().Pass {
			b.Fatal("flush failed")
		}
	}
}

func BenchmarkPLADeterministic(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	s := plaatpg.Spec{NIn: 18}
	for t := 0; t < 6; t++ {
		cube := make(circuits.Cube, s.NIn)
		perm := rng.Perm(s.NIn)
		for _, i := range perm[:16] {
			cube[i] = 1
		}
		s.Cubes = append(s.Cubes, cube)
	}
	s.Outputs = [][]int{{0, 2, 4}, {1, 3, 5}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plaatpg.BuildAndTest("bench_pla", s)
	}
}
