package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomCircuitLocal builds a random well-formed circuit without
// importing the circuits package (which would cycle).
func randomCircuitLocal(seed int64) *Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := New("prop")
	nIn := 2 + rng.Intn(6)
	var nets []int
	for i := 0; i < nIn; i++ {
		nets = append(nets, c.AddInput(c.nextName("in")))
	}
	types := []GateType{And, Nand, Or, Nor, Xor, Xnor, Not, Buf}
	nGates := 5 + rng.Intn(40)
	for g := 0; g < nGates; g++ {
		t := types[rng.Intn(len(types))]
		fanin := 1
		if t.MaxFanin() < 0 {
			fanin = 1 + rng.Intn(3)
		}
		lits := make([]int, fanin)
		for i := range lits {
			lits[i] = nets[rng.Intn(len(nets))]
		}
		nets = append(nets, c.AddGate(t, "", lits...))
	}
	c.MarkOutput(nets[len(nets)-1])
	c.MarkOutput(nets[rng.Intn(len(nets))])
	c.MustFinalize()
	return c
}

// TestPropertyBenchRoundTrip: writing and re-parsing any random
// circuit preserves its structure exactly (names, types, fanin).
func TestPropertyBenchRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		c := randomCircuitLocal(seed)
		back, err := ParseBenchString(c.Name, BenchString(c))
		if err != nil {
			return false
		}
		if back.NumNets() != c.NumNets() || back.NumGates() != c.NumGates() ||
			len(back.PIs) != len(c.PIs) || len(back.POs) != len(c.POs) {
			return false
		}
		for id, g := range c.Gates {
			bid, ok := back.NetByName(c.NameOf(id))
			if !ok {
				return false
			}
			bg := back.Gates[bid]
			if bg.Type != g.Type || len(bg.Fanin) != len(g.Fanin) {
				return false
			}
			for i, src := range g.Fanin {
				if back.NameOf(bg.Fanin[i]) != c.NameOf(src) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLevelizationSound: every gate's level strictly exceeds
// all of its combinational fanins' levels, and Order is a valid
// topological order, for any random circuit.
func TestPropertyLevelizationSound(t *testing.T) {
	f := func(seed int64) bool {
		c := randomCircuitLocal(seed)
		pos := map[int]int{}
		for i, id := range c.Order {
			pos[id] = i
		}
		for _, id := range c.Order {
			for _, src := range c.Gates[id].Fanin {
				if c.Level[src] >= c.Level[id] {
					return false
				}
				if c.Gates[src].Type.IsCombinational() && pos[src] >= pos[id] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCloneEquivalence: a clone finalizes to the identical
// structure and shares no storage.
func TestPropertyCloneEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		c := randomCircuitLocal(seed)
		cl := c.Clone()
		if err := cl.Finalize(); err != nil {
			return false
		}
		if cl.NumNets() != c.NumNets() || cl.Depth() != c.Depth() {
			return false
		}
		// Mutate the clone's fanin: original untouched.
		if cl.NumGates() > 0 {
			for id := range cl.Gates {
				if len(cl.Gates[id].Fanin) > 0 {
					old := c.Gates[id].Fanin[0]
					cl.Gates[id].Fanin[0] = 0
					if c.Gates[id].Fanin[0] != old {
						return false
					}
					break
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyFanoutConsistency: Fanout lists are exactly the inverse
// of Fanin lists.
func TestPropertyFanoutConsistency(t *testing.T) {
	f := func(seed int64) bool {
		c := randomCircuitLocal(seed)
		count := 0
		for n, fos := range c.Fanout {
			for _, reader := range fos {
				found := false
				for _, src := range c.Gates[reader].Fanin {
					if src == n {
						found = true
					}
				}
				if !found {
					return false
				}
				count++
			}
		}
		edges := 0
		for _, g := range c.Gates {
			edges += len(g.Fanin)
		}
		// Each fanin edge appears at least once in a fanout list; a
		// gate reading the same net twice produces two fanout entries.
		return count == edges
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
