package logic

import (
	"strings"
	"testing"
)

// buildC17 constructs the ISCAS-85 c17 benchmark by hand.
func buildC17(t *testing.T) *Circuit {
	t.Helper()
	c := New("c17")
	g1 := c.AddInput("G1")
	g2 := c.AddInput("G2")
	g3 := c.AddInput("G3")
	g6 := c.AddInput("G6")
	g7 := c.AddInput("G7")
	g10 := c.AddGate(Nand, "G10", g1, g3)
	g11 := c.AddGate(Nand, "G11", g3, g6)
	g16 := c.AddGate(Nand, "G16", g2, g11)
	g19 := c.AddGate(Nand, "G19", g11, g7)
	g22 := c.AddGate(Nand, "G22", g10, g16)
	g23 := c.AddGate(Nand, "G23", g16, g19)
	c.MarkOutput(g22)
	c.MarkOutput(g23)
	if err := c.Finalize(); err != nil {
		t.Fatalf("finalize c17: %v", err)
	}
	return c
}

func TestBuilderBasics(t *testing.T) {
	c := buildC17(t)
	s := c.Stats()
	if s.Inputs != 5 || s.Outputs != 2 || s.Gates != 6 || s.DFFs != 0 {
		t.Fatalf("c17 stats wrong: %v", s)
	}
	if s.Depth != 3 {
		t.Errorf("c17 depth = %d, want 3", s.Depth)
	}
	if s.MaxFanin != 2 {
		t.Errorf("c17 max fanin = %d, want 2", s.MaxFanin)
	}
	if c.IsSequential() {
		t.Error("c17 should be combinational")
	}
	if id, ok := c.NetByName("G16"); !ok || c.NameOf(id) != "G16" {
		t.Error("NetByName(G16) failed")
	}
}

func TestTopologicalOrder(t *testing.T) {
	c := buildC17(t)
	pos := make(map[int]int)
	for i, id := range c.Order {
		pos[id] = i
	}
	for _, id := range c.Order {
		for _, f := range c.Gates[id].Fanin {
			if c.Gates[f].Type.IsCombinational() && pos[f] >= pos[id] {
				t.Fatalf("gate %s ordered before its fanin %s", c.NameOf(id), c.NameOf(f))
			}
			if c.Level[f] >= c.Level[id] {
				t.Fatalf("level(%s)=%d not above fanin %s level %d",
					c.NameOf(id), c.Level[id], c.NameOf(f), c.Level[f])
			}
		}
	}
}

func TestFanoutLists(t *testing.T) {
	c := buildC17(t)
	g11, _ := c.NetByName("G11")
	if got := len(c.Fanout[g11]); got != 2 {
		t.Errorf("fanout(G11) = %d, want 2", got)
	}
	g23, _ := c.NetByName("G23")
	if got := len(c.Fanout[g23]); got != 0 {
		t.Errorf("fanout(G23) = %d, want 0", got)
	}
}

func TestCycleDetection(t *testing.T) {
	c := New("cyc")
	a := c.AddInput("a")
	// Build a cycle by post-editing fanin (builder itself prevents
	// forward references).
	g1 := c.AddGate(And, "g1", a, a)
	g2 := c.AddGate(Or, "g2", g1, a)
	c.Gates[g1].Fanin[1] = g2
	c.MarkOutput(g2)
	if err := c.Finalize(); err == nil {
		t.Fatal("Finalize accepted a combinational cycle")
	} else if !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestSequentialLoopAllowed(t *testing.T) {
	// A DFF in the loop makes it a legal sequential circuit (a toggle FF).
	c := New("toggle")
	en := c.AddInput("en")
	q := c.AddDFF("q", 0) // placeholder, patched below
	nxt := c.AddGate(Xor, "next", en, q)
	c.Gates[q].Fanin[0] = nxt
	c.MarkOutput(q)
	if err := c.Finalize(); err != nil {
		t.Fatalf("sequential loop rejected: %v", err)
	}
	if c.NumDFFs() != 1 {
		t.Fatalf("NumDFFs = %d", c.NumDFFs())
	}
	if !c.IsSequential() {
		t.Error("toggle should be sequential")
	}
}

func TestCloneIndependence(t *testing.T) {
	c := buildC17(t)
	cl := c.Clone()
	if err := cl.Finalize(); err != nil {
		t.Fatalf("clone finalize: %v", err)
	}
	if cl.NumNets() != c.NumNets() || cl.NumGates() != c.NumGates() {
		t.Fatal("clone structure differs")
	}
	// Mutating the clone must not affect the original.
	cl2 := c.Clone()
	cl2.AddInput("extra")
	if c.NumNets() == cl2.NumNets() {
		t.Fatal("clone shares storage with original")
	}
	if _, ok := c.NetByName("extra"); ok {
		t.Fatal("original acquired clone's net")
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate name did not panic")
		}
	}()
	c := New("dup")
	c.AddInput("a")
	c.AddInput("a")
}

func TestStatsString(t *testing.T) {
	c := buildC17(t)
	s := c.Stats().String()
	if !strings.Contains(s, "gates=6") || !strings.Contains(s, "in=5") {
		t.Errorf("Stats.String() = %q", s)
	}
}

func TestGateTypeProperties(t *testing.T) {
	if v, ok := And.ControllingValue(); !ok || v != Zero {
		t.Error("AND controlling value should be 0")
	}
	if v, ok := Nor.ControllingValue(); !ok || v != One {
		t.Error("NOR controlling value should be 1")
	}
	if _, ok := Xor.ControllingValue(); ok {
		t.Error("XOR has no controlling value")
	}
	if Nand.ControlledResponse() != One || And.ControlledResponse() != Zero {
		t.Error("controlled responses wrong")
	}
	for _, typ := range []GateType{Not, Nand, Nor, Xnor} {
		if !typ.Inverting() {
			t.Errorf("%v should be inverting", typ)
		}
	}
	for _, typ := range []GateType{Buf, And, Or, Xor} {
		if typ.Inverting() {
			t.Errorf("%v should not be inverting", typ)
		}
	}
}
