// Package logic provides the gate-level netlist model that underlies the
// whole toolkit: logic value algebras (two-valued, ternary and the
// five-valued D-calculus used by the D-algorithm), gate types, circuits,
// levelization, and the ISCAS-85 ".bench" interchange format.
//
// The model follows the abstraction used throughout Williams & Parker,
// "Design for Testability — A Survey": a network of single-output logic
// gates plus clocked storage elements, with faults expressed as single
// stuck-at conditions on gate pins.
package logic

import "fmt"

// V is a logic value in the five-valued D-calculus of Roth's D-algorithm.
//
// Zero and One are the ordinary Boolean values. X is unknown/unassigned.
// D represents "1 in the good machine, 0 in the faulty machine";
// Dbar is its complement. Ternary simulation uses only {Zero, One, X}.
type V uint8

const (
	Zero V = iota // logic 0 in both good and faulty machine
	One           // logic 1 in both good and faulty machine
	X             // unknown / unassigned
	D             // good 1 / faulty 0
	Dbar          // good 0 / faulty 1
)

// String renders the value in the conventional D-calculus notation.
func (v V) String() string {
	switch v {
	case Zero:
		return "0"
	case One:
		return "1"
	case X:
		return "X"
	case D:
		return "D"
	case Dbar:
		return "D'"
	}
	return fmt.Sprintf("V(%d)", uint8(v))
}

// FromBool converts a Go bool to a logic value.
func FromBool(b bool) V {
	if b {
		return One
	}
	return Zero
}

// IsKnown reports whether v is a definite Boolean value (0 or 1).
func (v V) IsKnown() bool { return v == Zero || v == One }

// IsError reports whether v carries a fault effect (D or D').
func (v V) IsError() bool { return v == D || v == Dbar }

// Good returns the value seen by the fault-free machine.
func (v V) Good() V {
	switch v {
	case D:
		return One
	case Dbar:
		return Zero
	}
	return v
}

// Faulty returns the value seen by the faulty machine.
func (v V) Faulty() V {
	switch v {
	case D:
		return Zero
	case Dbar:
		return One
	}
	return v
}

// Not returns the five-valued complement.
func (v V) Not() V {
	switch v {
	case Zero:
		return One
	case One:
		return Zero
	case D:
		return Dbar
	case Dbar:
		return D
	}
	return X
}

// and5 is the five-valued conjunction. It is exact for the D-calculus:
// it composes the good-machine and faulty-machine values independently.
func and5(a, b V) V {
	if a == Zero || b == Zero {
		return Zero
	}
	// Neither is Zero. Handle X pessimistically.
	ga, fa := a.Good(), a.Faulty()
	gb, fb := b.Good(), b.Faulty()
	if a == X || b == X {
		// Result is Zero only if some operand is Zero in both machines,
		// which we excluded; X dominates otherwise unless the other side
		// pins the result... it cannot, for AND with no Zero operand.
		return X
	}
	g := ga == One && gb == One
	f := fa == One && fb == One
	return compose(g, f)
}

// or5 is the five-valued disjunction.
func or5(a, b V) V {
	if a == One || b == One {
		return One
	}
	if a == X || b == X {
		return X
	}
	ga, fa := a.Good(), a.Faulty()
	gb, fb := b.Good(), b.Faulty()
	g := ga == One || gb == One
	f := fa == One || fb == One
	return compose(g, f)
}

// xor5 is the five-valued exclusive-or.
func xor5(a, b V) V {
	if a == X || b == X {
		return X
	}
	g := (a.Good() == One) != (b.Good() == One)
	f := (a.Faulty() == One) != (b.Faulty() == One)
	return compose(g, f)
}

// compose builds a five-valued value from separate good/faulty bits.
func compose(good, faulty bool) V {
	switch {
	case good && faulty:
		return One
	case !good && !faulty:
		return Zero
	case good && !faulty:
		return D
	default:
		return Dbar
	}
}

// AndV folds and5 over its operands; the empty conjunction is One.
func AndV(vs ...V) V {
	r := One
	for _, v := range vs {
		r = and5(r, v)
	}
	return r
}

// OrV folds or5 over its operands; the empty disjunction is Zero.
func OrV(vs ...V) V {
	r := Zero
	for _, v := range vs {
		r = or5(r, v)
	}
	return r
}

// XorV folds xor5 over its operands; the empty exclusive-or is Zero.
func XorV(vs ...V) V {
	r := Zero
	for _, v := range vs {
		r = xor5(r, v)
	}
	return r
}
