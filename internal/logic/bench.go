package logic

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseBench reads a circuit in the ISCAS-85/89 ".bench" format:
//
//	# comment
//	INPUT(a)
//	OUTPUT(f)
//	b = DFF(d)
//	f = NAND(a, b)
//
// Supported functions: BUF/BUFF, NOT, AND, NAND, OR, NOR, XOR, XNOR, DFF,
// CONST0/GND, CONST1/VDD. Nets may be used before their defining line.
// The returned circuit is finalized.
func ParseBench(name string, r io.Reader) (*Circuit, error) {
	type protoGate struct {
		typ   GateType
		fanin []string
		line  int
	}
	var (
		inputs  []string
		outputs []string
		defs    = map[string]protoGate{}
		order   []string
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		upper := strings.ToUpper(line)
		switch {
		case strings.HasPrefix(upper, "INPUT"):
			arg, err := parenArg(line)
			if err != nil {
				return nil, fmt.Errorf("bench %s:%d: %v", name, lineNo, err)
			}
			inputs = append(inputs, arg)
			continue
		case strings.HasPrefix(upper, "OUTPUT"):
			arg, err := parenArg(line)
			if err != nil {
				return nil, fmt.Errorf("bench %s:%d: %v", name, lineNo, err)
			}
			outputs = append(outputs, arg)
			continue
		}
		eq := strings.IndexByte(line, '=')
		if eq < 0 {
			return nil, fmt.Errorf("bench %s:%d: expected assignment, got %q", name, lineNo, line)
		}
		lhs := strings.TrimSpace(line[:eq])
		rhs := strings.TrimSpace(line[eq+1:])
		open := strings.IndexByte(rhs, '(')
		close_ := strings.LastIndexByte(rhs, ')')
		if open < 0 || close_ < open {
			return nil, fmt.Errorf("bench %s:%d: malformed gate expression %q", name, lineNo, rhs)
		}
		fn := strings.ToUpper(strings.TrimSpace(rhs[:open]))
		var fanin []string
		if args := strings.TrimSpace(rhs[open+1 : close_]); args != "" {
			for _, a := range strings.Split(args, ",") {
				fanin = append(fanin, strings.TrimSpace(a))
			}
		}
		typ, ok := benchType(fn)
		if !ok {
			return nil, fmt.Errorf("bench %s:%d: unknown function %q", name, lineNo, fn)
		}
		if _, dup := defs[lhs]; dup {
			return nil, fmt.Errorf("bench %s:%d: net %q defined twice", name, lineNo, lhs)
		}
		defs[lhs] = protoGate{typ: typ, fanin: fanin, line: lineNo}
		order = append(order, lhs)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	c := New(name)
	ids := map[string]int{}
	for _, in := range inputs {
		if _, dup := ids[in]; dup {
			return nil, fmt.Errorf("bench %s: input %q declared twice", name, in)
		}
		ids[in] = c.AddInput(in)
	}
	// Define gates in dependency order: DFF outputs first (they may be
	// referenced cyclically), then combinational gates topologically.
	for _, lhs := range order {
		if defs[lhs].typ == DFF {
			ids[lhs] = c.add(Gate{Type: DFF, Name: lhs}) // fanin patched below
		}
	}
	var emit func(lhs string) (int, error)
	visiting := map[string]bool{}
	emit = func(lhs string) (int, error) {
		if id, ok := ids[lhs]; ok {
			return id, nil
		}
		pg, ok := defs[lhs]
		if !ok {
			return 0, fmt.Errorf("bench %s: net %q used but never defined", name, lhs)
		}
		if visiting[lhs] {
			return 0, fmt.Errorf("bench %s: combinational cycle through %q", name, lhs)
		}
		visiting[lhs] = true
		fan := make([]int, len(pg.fanin))
		for i, f := range pg.fanin {
			id, err := emit(f)
			if err != nil {
				return 0, err
			}
			fan[i] = id
		}
		visiting[lhs] = false
		id := c.add(Gate{Type: pg.typ, Fanin: fan, Name: lhs})
		ids[lhs] = id
		return id, nil
	}
	for _, lhs := range order {
		if defs[lhs].typ == DFF {
			continue
		}
		if _, err := emit(lhs); err != nil {
			return nil, err
		}
	}
	// Patch DFF data inputs.
	for _, lhs := range order {
		pg := defs[lhs]
		if pg.typ != DFF {
			continue
		}
		if len(pg.fanin) != 1 {
			return nil, fmt.Errorf("bench %s:%d: DFF %q needs exactly one input", name, pg.line, lhs)
		}
		did, err := emit(pg.fanin[0])
		if err != nil {
			return nil, err
		}
		c.Gates[ids[lhs]].Fanin = []int{did}
	}
	for _, out := range outputs {
		id, err := emit(out)
		if err != nil {
			return nil, err
		}
		c.MarkOutput(id)
	}
	if err := c.Finalize(); err != nil {
		return nil, err
	}
	return c, nil
}

// ParseBenchString is ParseBench over an in-memory string.
func ParseBenchString(name, src string) (*Circuit, error) {
	return ParseBench(name, strings.NewReader(src))
}

func parenArg(line string) (string, error) {
	open := strings.IndexByte(line, '(')
	close_ := strings.LastIndexByte(line, ')')
	if open < 0 || close_ < open {
		return "", fmt.Errorf("malformed declaration %q", line)
	}
	arg := strings.TrimSpace(line[open+1 : close_])
	if arg == "" {
		return "", fmt.Errorf("empty name in %q", line)
	}
	return arg, nil
}

func benchType(fn string) (GateType, bool) {
	switch fn {
	case "BUF", "BUFF":
		return Buf, true
	case "NOT", "INV":
		return Not, true
	case "AND":
		return And, true
	case "NAND":
		return Nand, true
	case "OR":
		return Or, true
	case "NOR":
		return Nor, true
	case "XOR":
		return Xor, true
	case "XNOR":
		return Xnor, true
	case "DFF":
		return DFF, true
	case "CONST0", "GND":
		return Const0, true
	case "CONST1", "VDD":
		return Const1, true
	}
	return 0, false
}

// WriteBench serializes the circuit in .bench format. The output parses
// back to a structurally identical circuit (same names, types, fanin).
func WriteBench(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", c.Name)
	for _, pi := range c.PIs {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.Gates[pi].Name)
	}
	for _, po := range c.POs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.Gates[po].Name)
	}
	for id, g := range c.Gates {
		if g.Type == Input {
			continue
		}
		names := make([]string, len(g.Fanin))
		for i, f := range g.Fanin {
			names[i] = c.Gates[f].Name
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", c.Gates[id].Name, benchName(g.Type), strings.Join(names, ", "))
	}
	return bw.Flush()
}

func benchName(t GateType) string {
	switch t {
	case Buf:
		return "BUFF"
	case Const0:
		return "CONST0"
	case Const1:
		return "CONST1"
	}
	return t.String()
}

// BenchString renders the circuit as a .bench document.
func BenchString(c *Circuit) string {
	var b strings.Builder
	if err := WriteBench(&b, c); err != nil {
		panic(err) // strings.Builder cannot fail
	}
	return b.String()
}
