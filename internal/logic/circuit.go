package logic

import (
	"fmt"
	"sort"
)

// Circuit is a gate-level logic network. Every element (gate, primary
// input, or flip-flop) drives exactly one net, identified by the
// element's index in Gates. Primary outputs are a list of net IDs; a net
// may be both internal and a primary output.
//
// Sequential circuits contain DFF elements; the DFF output net behaves
// as a pseudo primary input to the combinational core and its D input
// as a pseudo primary output. All analysis and test generation in the
// toolkit is expressed against this model.
type Circuit struct {
	Name  string
	Gates []Gate
	PIs   []int // net IDs of primary inputs, in declaration order
	POs   []int // net IDs of primary outputs, in declaration order

	// derived, built by Finalize
	DFFs    []int   // net IDs (element indices) of flip-flops
	Fanout  [][]int // Fanout[n] lists gates reading net n
	Level   []int   // combinational level (Inputs and DFF outputs at 0)
	Order   []int   // combinational gates in topological order
	byName  map[string]int
	final   bool
	maxFan  int
	numComb int
}

// New returns an empty circuit with the given name.
func New(name string) *Circuit {
	return &Circuit{Name: name, byName: map[string]int{}}
}

// nextName generates a fresh net name when the caller did not supply one.
func (c *Circuit) nextName(prefix string) string {
	for i := len(c.Gates); ; i++ {
		n := fmt.Sprintf("%s%d", prefix, i)
		if _, dup := c.byName[n]; !dup {
			return n
		}
	}
}

// add appends an element and registers its name, returning the net ID.
func (c *Circuit) add(g Gate) int {
	if c.final {
		panic("logic: modifying a finalized circuit")
	}
	if g.Name == "" {
		g.Name = c.nextName("n")
	}
	if _, dup := c.byName[g.Name]; dup {
		panic(fmt.Sprintf("logic: duplicate net name %q", g.Name))
	}
	id := len(c.Gates)
	c.Gates = append(c.Gates, g)
	c.byName[g.Name] = id
	return id
}

// AddInput declares a primary input and returns its net ID.
func (c *Circuit) AddInput(name string) int {
	id := c.add(Gate{Type: Input, Name: name})
	c.PIs = append(c.PIs, id)
	return id
}

// AddGate adds a combinational gate reading the given nets and returns
// the net ID it drives. The name may be empty.
func (c *Circuit) AddGate(t GateType, name string, fanin ...int) int {
	if !t.IsCombinational() {
		panic("logic: AddGate with non-combinational type " + t.String())
	}
	if min := t.MinFanin(); len(fanin) < min {
		panic(fmt.Sprintf("logic: %s requires at least %d fanin, got %d", t, min, len(fanin)))
	}
	if max := t.MaxFanin(); max >= 0 && len(fanin) > max {
		panic(fmt.Sprintf("logic: %s accepts at most %d fanin, got %d", t, max, len(fanin)))
	}
	for _, f := range fanin {
		if f < 0 || f >= len(c.Gates) {
			panic(fmt.Sprintf("logic: fanin net %d out of range", f))
		}
	}
	return c.add(Gate{Type: t, Fanin: append([]int(nil), fanin...), Name: name})
}

// AddDFF adds a D flip-flop whose D input is net d, returning the net ID
// of the flip-flop output (its present state).
func (c *Circuit) AddDFF(name string, d int) int {
	if d < 0 || d >= len(c.Gates) {
		panic(fmt.Sprintf("logic: DFF data net %d out of range", d))
	}
	return c.add(Gate{Type: DFF, Fanin: []int{d}, Name: name})
}

// MarkOutput declares net id as a primary output.
func (c *Circuit) MarkOutput(id int) {
	if id < 0 || id >= len(c.Gates) {
		panic(fmt.Sprintf("logic: output net %d out of range", id))
	}
	c.POs = append(c.POs, id)
}

// NetByName returns the net ID carrying the given name.
func (c *Circuit) NetByName(name string) (int, bool) {
	id, ok := c.byName[name]
	return id, ok
}

// NameOf returns the name of net id.
func (c *Circuit) NameOf(id int) string { return c.Gates[id].Name }

// NumNets returns the total number of nets (elements).
func (c *Circuit) NumNets() int { return len(c.Gates) }

// NumGates returns the number of combinational gates.
func (c *Circuit) NumGates() int {
	if c.final {
		return c.numComb
	}
	n := 0
	for _, g := range c.Gates {
		if g.Type.IsCombinational() {
			n++
		}
	}
	return n
}

// NumDFFs returns the number of flip-flops.
func (c *Circuit) NumDFFs() int {
	if c.final {
		return len(c.DFFs)
	}
	n := 0
	for _, g := range c.Gates {
		if g.Type == DFF {
			n++
		}
	}
	return n
}

// IsSequential reports whether the circuit contains storage elements.
func (c *Circuit) IsSequential() bool { return c.NumDFFs() > 0 }

// MaxFanin returns the largest gate fanin in the circuit.
func (c *Circuit) MaxFanin() int {
	if c.final {
		return c.maxFan
	}
	m := 0
	for _, g := range c.Gates {
		if len(g.Fanin) > m {
			m = len(g.Fanin)
		}
	}
	return m
}

// Finalize validates the circuit, computes fanout lists, levelizes the
// combinational core (DFF outputs count as level-0 sources), and freezes
// the structure. It must be called before simulation or analysis.
func (c *Circuit) Finalize() error {
	if c.final {
		return nil
	}
	n := len(c.Gates)
	c.Fanout = make([][]int, n)
	c.DFFs = c.DFFs[:0]
	c.maxFan = 0
	c.numComb = 0
	for id, g := range c.Gates {
		if len(g.Fanin) > c.maxFan {
			c.maxFan = len(g.Fanin)
		}
		switch g.Type {
		case DFF:
			c.DFFs = append(c.DFFs, id)
		case Input:
		default:
			c.numComb++
		}
		for _, f := range g.Fanin {
			if f < 0 || f >= n {
				return fmt.Errorf("logic: %s: gate %d (%s) fanin %d out of range", c.Name, id, g.Name, f)
			}
			c.Fanout[f] = append(c.Fanout[f], id)
		}
	}
	// Levelize by Kahn's algorithm over combinational edges only.
	// Sources: Inputs, DFFs, constants (fanin-free combinational gates).
	c.Level = make([]int, n)
	indeg := make([]int, n)
	for id, g := range c.Gates {
		if g.Type == Input || g.Type == DFF {
			indeg[id] = 0
		} else {
			indeg[id] = len(g.Fanin)
		}
	}
	queue := make([]int, 0, n)
	for id := range c.Gates {
		if indeg[id] == 0 {
			queue = append(queue, id)
			c.Level[id] = 0
		}
	}
	c.Order = c.Order[:0]
	seen := 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		seen++
		if c.Gates[id].Type.IsCombinational() {
			c.Order = append(c.Order, id)
		}
		for _, s := range c.Fanout[id] {
			if c.Gates[s].Type == DFF {
				continue // sequential edge: not part of the combinational DAG
			}
			indeg[s]--
			if lv := c.Level[id] + 1; lv > c.Level[s] {
				c.Level[s] = lv
			}
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	// DFFs were never enqueued as successors but are sources; count them.
	if seen != n {
		return fmt.Errorf("logic: %s: combinational cycle detected (%d of %d nets levelized)", c.Name, seen, n)
	}
	c.final = true
	return nil
}

// MustFinalize is Finalize that panics on error; for use with circuits
// constructed programmatically where a cycle is a programming bug.
func (c *Circuit) MustFinalize() *Circuit {
	if err := c.Finalize(); err != nil {
		panic(err)
	}
	return c
}

// Depth returns the maximum combinational level (0 for an empty or
// source-only circuit). The circuit must be finalized.
func (c *Circuit) Depth() int {
	c.mustBeFinal()
	d := 0
	for _, l := range c.Level {
		if l > d {
			d = l
		}
	}
	return d
}

func (c *Circuit) mustBeFinal() {
	if !c.final {
		panic("logic: circuit not finalized; call Finalize first")
	}
}

// Stats summarizes the structure of a circuit.
type Stats struct {
	Nets      int
	Inputs    int
	Outputs   int
	Gates     int
	DFFs      int
	Depth     int
	MaxFanin  int
	MaxFanout int
	ByType    map[GateType]int
}

// Stats computes structural statistics. The circuit must be finalized.
func (c *Circuit) Stats() Stats {
	c.mustBeFinal()
	s := Stats{
		Nets:     len(c.Gates),
		Inputs:   len(c.PIs),
		Outputs:  len(c.POs),
		Gates:    c.numComb,
		DFFs:     len(c.DFFs),
		Depth:    c.Depth(),
		MaxFanin: c.maxFan,
		ByType:   map[GateType]int{},
	}
	for _, g := range c.Gates {
		s.ByType[g.Type]++
	}
	for _, fo := range c.Fanout {
		if len(fo) > s.MaxFanout {
			s.MaxFanout = len(fo)
		}
	}
	return s
}

// String renders a short structural summary.
func (s Stats) String() string {
	return fmt.Sprintf("nets=%d in=%d out=%d gates=%d dffs=%d depth=%d maxfanin=%d maxfanout=%d",
		s.Nets, s.Inputs, s.Outputs, s.Gates, s.DFFs, s.Depth, s.MaxFanin, s.MaxFanout)
}

// Clone returns a deep copy of the circuit in non-finalized state, so the
// copy may be further edited (e.g., by scan insertion).
func (c *Circuit) Clone() *Circuit {
	nc := New(c.Name)
	nc.Gates = make([]Gate, len(c.Gates))
	for i, g := range c.Gates {
		nc.Gates[i] = Gate{Type: g.Type, Name: g.Name, Fanin: append([]int(nil), g.Fanin...)}
		nc.byName[g.Name] = i
	}
	nc.PIs = append([]int(nil), c.PIs...)
	nc.POs = append([]int(nil), c.POs...)
	return nc
}

// SortedNames returns all net names in lexical order (test helper).
func (c *Circuit) SortedNames() []string {
	names := make([]string, 0, len(c.Gates))
	for _, g := range c.Gates {
		names = append(names, g.Name)
	}
	sort.Strings(names)
	return names
}
