package logic

import (
	"strings"
	"testing"
)

const c17Bench = `
# c17 ISCAS-85
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`

func TestParseBenchC17(t *testing.T) {
	c, err := ParseBenchString("c17", c17Bench)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	s := c.Stats()
	if s.Inputs != 5 || s.Outputs != 2 || s.Gates != 6 {
		t.Fatalf("c17 stats: %v", s)
	}
	if s.ByType[Nand] != 6 {
		t.Fatalf("expected 6 NANDs, got %d", s.ByType[Nand])
	}
}

func TestParseBenchForwardReference(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(y)
y = AND(m, a)   # m defined later
m = NOT(a)
`
	c, err := ParseBenchString("fwd", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if c.NumGates() != 2 {
		t.Fatalf("gates = %d, want 2", c.NumGates())
	}
}

func TestParseBenchSequential(t *testing.T) {
	src := `
INPUT(d)
OUTPUT(q)
q = DFF(n)
n = XOR(d, q)
`
	c, err := ParseBenchString("seq", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if c.NumDFFs() != 1 {
		t.Fatalf("dffs = %d, want 1", c.NumDFFs())
	}
}

func TestParseBenchErrors(t *testing.T) {
	cases := []struct{ name, src, wantSub string }{
		{"undefined", "INPUT(a)\nOUTPUT(y)\n", "never defined"},
		{"badfn", "INPUT(a)\ny = FROB(a)\nOUTPUT(y)", "unknown function"},
		{"redef", "INPUT(a)\ny = NOT(a)\ny = BUF(a)\nOUTPUT(y)", "defined twice"},
		{"cycle", "INPUT(a)\np = AND(a, q)\nq = AND(a, p)\nOUTPUT(q)", "cycle"},
		{"noassign", "INPUT(a)\ngarbage line\n", "assignment"},
		{"dffarity", "INPUT(a)\nINPUT(b)\nq = DFF(a, b)\nOUTPUT(q)", "exactly one"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseBenchString(c.name, c.src); err == nil {
				t.Fatalf("expected error containing %q, got nil", c.wantSub)
			} else if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestBenchRoundTrip(t *testing.T) {
	orig, err := ParseBenchString("c17", c17Bench)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	text := BenchString(orig)
	back, err := ParseBenchString("c17rt", text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if got, want := back.Stats(), orig.Stats(); got.Nets != want.Nets ||
		got.Gates != want.Gates || got.Inputs != want.Inputs || got.Outputs != want.Outputs {
		t.Fatalf("round trip changed structure: %v vs %v", got, want)
	}
	// Same names present.
	a, b := orig.SortedNames(), back.SortedNames()
	if len(a) != len(b) {
		t.Fatalf("name count changed: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("name %d changed: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestBenchRoundTripSequential(t *testing.T) {
	src := `
INPUT(d)
OUTPUT(q2)
q1 = DFF(d)
q2 = DFF(q1)
`
	orig, err := ParseBenchString("sr2", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	back, err := ParseBenchString("sr2rt", BenchString(orig))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if back.NumDFFs() != 2 {
		t.Fatalf("dffs = %d, want 2", back.NumDFFs())
	}
}
