package logic

import "fmt"

// GateType enumerates the primitive elements a Circuit may contain.
//
// Every element drives exactly one net, so nets are identified with the
// index of their driver. Input elements model primary inputs, DFF models
// an edge-triggered D flip-flop (the generic storage element before any
// DFT discipline is imposed), and the combinational types are the usual
// single-output gates.
type GateType uint8

const (
	Input  GateType = iota // primary input (no fanin)
	Buf                    // buffer, 1 fanin
	Not                    // inverter, 1 fanin
	And                    // n-input AND
	Nand                   // n-input NAND
	Or                     // n-input OR
	Nor                    // n-input NOR
	Xor                    // n-input XOR (odd parity)
	Xnor                   // n-input XNOR (even parity)
	Const0                 // constant 0, no fanin
	Const1                 // constant 1, no fanin
	DFF                    // D flip-flop, 1 fanin (the D input)
)

var gateNames = [...]string{
	Input: "INPUT", Buf: "BUF", Not: "NOT", And: "AND", Nand: "NAND",
	Or: "OR", Nor: "NOR", Xor: "XOR", Xnor: "XNOR",
	Const0: "CONST0", Const1: "CONST1", DFF: "DFF",
}

// String returns the conventional upper-case gate mnemonic.
func (t GateType) String() string {
	if int(t) < len(gateNames) {
		return gateNames[t]
	}
	return fmt.Sprintf("GateType(%d)", uint8(t))
}

// IsCombinational reports whether the type computes a pure function of
// its present inputs (i.e., is neither an Input nor a DFF).
func (t GateType) IsCombinational() bool {
	switch t {
	case Input, DFF:
		return false
	}
	return true
}

// HasState reports whether the element holds state across clock cycles.
func (t GateType) HasState() bool { return t == DFF }

// MinFanin returns the minimum legal fanin count for the type.
func (t GateType) MinFanin() int {
	switch t {
	case Input, Const0, Const1:
		return 0
	case Buf, Not, DFF:
		return 1
	default:
		return 1 // n-input gates accept 1..n; 1-input AND degenerates to BUF
	}
}

// MaxFanin returns the maximum legal fanin count for the type, or -1 for
// unbounded.
func (t GateType) MaxFanin() int {
	switch t {
	case Input, Const0, Const1:
		return 0
	case Buf, Not, DFF:
		return 1
	default:
		return -1
	}
}

// Inverting reports whether the gate complements the underlying
// monotone function (NAND, NOR, NOT, XNOR).
func (t GateType) Inverting() bool {
	switch t {
	case Not, Nand, Nor, Xnor:
		return true
	}
	return false
}

// ControllingValue returns the value which, applied to any single input,
// determines the gate output regardless of the other inputs, and whether
// such a value exists. AND/NAND are controlled by 0; OR/NOR by 1.
func (t GateType) ControllingValue() (V, bool) {
	switch t {
	case And, Nand:
		return Zero, true
	case Or, Nor:
		return One, true
	}
	return X, false
}

// ControlledResponse returns the gate output when a controlling value is
// present on some input. Only meaningful when ControllingValue reports ok.
func (t GateType) ControlledResponse() V {
	switch t {
	case And:
		return Zero
	case Nand:
		return One
	case Or:
		return One
	case Nor:
		return Zero
	}
	return X
}

// Eval computes the gate function over five-valued operands. Input and
// DFF types must not be evaluated through this function.
func (t GateType) Eval(in []V) V {
	switch t {
	case Buf:
		return in[0]
	case Not:
		return in[0].Not()
	case And:
		return And5(in)
	case Nand:
		return And5(in).Not()
	case Or:
		return Or5(in)
	case Nor:
		return Or5(in).Not()
	case Xor:
		return Xor5(in)
	case Xnor:
		return Xor5(in).Not()
	case Const0:
		return Zero
	case Const1:
		return One
	}
	panic("logic: Eval on non-combinational gate type " + t.String())
}

// And5, Or5 and Xor5 are slice forms of the five-valued connectives.
func And5(in []V) V { return AndV(in...) }

// Or5 is the slice form of the five-valued disjunction.
func Or5(in []V) V { return OrV(in...) }

// Xor5 is the slice form of the five-valued exclusive-or.
func Xor5(in []V) V { return XorV(in...) }

// EvalBool computes the gate function over plain Boolean operands. It is
// the fast path used by the two-valued simulators.
func (t GateType) EvalBool(in []bool) bool {
	switch t {
	case Buf:
		return in[0]
	case Not:
		return !in[0]
	case And:
		for _, b := range in {
			if !b {
				return false
			}
		}
		return true
	case Nand:
		for _, b := range in {
			if !b {
				return true
			}
		}
		return false
	case Or:
		for _, b := range in {
			if b {
				return true
			}
		}
		return false
	case Nor:
		for _, b := range in {
			if b {
				return false
			}
		}
		return true
	case Xor:
		p := false
		for _, b := range in {
			p = p != b
		}
		return p
	case Xnor:
		p := true
		for _, b := range in {
			p = p != b
		}
		return p
	case Const0:
		return false
	case Const1:
		return true
	}
	panic("logic: EvalBool on non-combinational gate type " + t.String())
}

// EvalWord computes the gate function bit-parallel over 64-pattern words.
// Each bit position is an independent pattern; this is the engine behind
// parallel-pattern simulation.
func (t GateType) EvalWord(in []uint64) uint64 {
	switch t {
	case Buf:
		return in[0]
	case Not:
		return ^in[0]
	case And:
		r := ^uint64(0)
		for _, w := range in {
			r &= w
		}
		return r
	case Nand:
		r := ^uint64(0)
		for _, w := range in {
			r &= w
		}
		return ^r
	case Or:
		r := uint64(0)
		for _, w := range in {
			r |= w
		}
		return r
	case Nor:
		r := uint64(0)
		for _, w := range in {
			r |= w
		}
		return ^r
	case Xor:
		r := uint64(0)
		for _, w := range in {
			r ^= w
		}
		return r
	case Xnor:
		r := uint64(0)
		for _, w := range in {
			r ^= w
		}
		return ^r
	case Const0:
		return 0
	case Const1:
		return ^uint64(0)
	}
	panic("logic: EvalWord on non-combinational gate type " + t.String())
}

// Gate is one element of a Circuit. The element drives the net whose ID
// equals the gate's index in Circuit.Gates; Fanin lists the net IDs it
// reads. Name is optional and preserved by the .bench reader/writer.
type Gate struct {
	Type  GateType
	Fanin []int
	Name  string
}
