package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

var combTypes = []GateType{Buf, Not, And, Nand, Or, Nor, Xor, Xnor}

// TestEvalAgreement cross-checks the three evaluation engines (five-
// valued, Boolean, bit-parallel) on random Boolean operand vectors.
func TestEvalAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 2000; iter++ {
		typ := combTypes[rng.Intn(len(combTypes))]
		n := 1
		if typ.MaxFanin() < 0 {
			n = 1 + rng.Intn(5)
		}
		bits := make([]bool, n)
		vs := make([]V, n)
		ws := make([]uint64, n)
		for i := range bits {
			bits[i] = rng.Intn(2) == 1
			vs[i] = FromBool(bits[i])
			if bits[i] {
				ws[i] = ^uint64(0)
			}
		}
		want := typ.EvalBool(bits)
		if got := typ.Eval(vs); got != FromBool(want) {
			t.Fatalf("%v%v: Eval=%v EvalBool=%v", typ, bits, got, want)
		}
		w := typ.EvalWord(ws)
		if (w != 0) != want || (want && w != ^uint64(0)) {
			t.Fatalf("%v%v: EvalWord=%x want all-%v", typ, bits, w, want)
		}
	}
}

// TestEvalWordBitIndependence verifies that bit positions in word
// evaluation do not interfere: evaluating 64 packed random patterns
// matches 64 scalar evaluations.
func TestEvalWordBitIndependence(t *testing.T) {
	f := func(a, b, cc uint64, ti uint8) bool {
		typ := combTypes[int(ti)%len(combTypes)]
		n := 3
		if typ.MaxFanin() == 1 {
			n = 1
		}
		words := []uint64{a, b, cc}[:n]
		got := typ.EvalWord(words)
		for bit := 0; bit < 64; bit++ {
			in := make([]bool, n)
			for i := range in {
				in[i] = words[i]>>uint(bit)&1 == 1
			}
			if typ.EvalBool(in) != (got>>uint(bit)&1 == 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestConstGates(t *testing.T) {
	if Const0.EvalBool(nil) || !Const1.EvalBool(nil) {
		t.Error("constant gates broken (bool)")
	}
	if Const0.Eval(nil) != Zero || Const1.Eval(nil) != One {
		t.Error("constant gates broken (5-valued)")
	}
	if Const0.EvalWord(nil) != 0 || Const1.EvalWord(nil) != ^uint64(0) {
		t.Error("constant gates broken (word)")
	}
}

func TestEvalPanicsOnSequential(t *testing.T) {
	for _, typ := range []GateType{Input, DFF} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%v.EvalBool did not panic", typ)
				}
			}()
			typ.EvalBool([]bool{true})
		}()
	}
}

func TestDPropagationThroughGates(t *testing.T) {
	// A D on one input propagates through a sensitized gate.
	if got := And.Eval([]V{D, One}); got != D {
		t.Errorf("AND(D,1) = %v, want D", got)
	}
	if got := Nand.Eval([]V{D, One}); got != Dbar {
		t.Errorf("NAND(D,1) = %v, want D'", got)
	}
	if got := Or.Eval([]V{Dbar, Zero}); got != Dbar {
		t.Errorf("OR(D',0) = %v, want D'", got)
	}
	if got := And.Eval([]V{D, Zero}); got != Zero {
		t.Errorf("AND(D,0) = %v, want 0 (blocked)", got)
	}
	if got := Xor.Eval([]V{D, Zero}); got != D {
		t.Errorf("XOR(D,0) = %v, want D", got)
	}
	if got := Xor.Eval([]V{D, One}); got != Dbar {
		t.Errorf("XOR(D,1) = %v, want D'", got)
	}
}

func TestGateTypeStringCoverage(t *testing.T) {
	for _, typ := range append(append([]GateType{}, combTypes...), Input, DFF, Const0, Const1) {
		if s := typ.String(); s == "" || s[0] == 'G' && typ != Const0 {
			t.Errorf("GateType(%d) has suspicious name %q", typ, s)
		}
	}
}
