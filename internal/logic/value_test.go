package logic

import (
	"testing"
	"testing/quick"
)

func TestValueStrings(t *testing.T) {
	cases := map[V]string{Zero: "0", One: "1", X: "X", D: "D", Dbar: "D'"}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("V(%d).String() = %q, want %q", v, got, want)
		}
	}
}

func TestGoodFaultyProjection(t *testing.T) {
	cases := []struct {
		v            V
		good, faulty V
	}{
		{Zero, Zero, Zero},
		{One, One, One},
		{X, X, X},
		{D, One, Zero},
		{Dbar, Zero, One},
	}
	for _, c := range cases {
		if g := c.v.Good(); g != c.good {
			t.Errorf("%v.Good() = %v, want %v", c.v, g, c.good)
		}
		if f := c.v.Faulty(); f != c.faulty {
			t.Errorf("%v.Faulty() = %v, want %v", c.v, f, c.faulty)
		}
	}
}

func TestNotInvolution(t *testing.T) {
	for _, v := range []V{Zero, One, X, D, Dbar} {
		if got := v.Not().Not(); got != v {
			t.Errorf("Not(Not(%v)) = %v", v, got)
		}
	}
}

// allV enumerates the full five-valued domain.
var allV = []V{Zero, One, X, D, Dbar}

// TestConnectivesProjectCorrectly checks the defining property of the
// D-calculus: for known (non-X) operands, the good-machine projection of
// op(a,b) equals op of the projections, and likewise for the faulty
// machine.
func TestConnectivesProjectCorrectly(t *testing.T) {
	boolOf := func(v V) bool { return v == One }
	for _, a := range allV {
		for _, b := range allV {
			if a == X || b == X {
				continue
			}
			ga, fa := boolOf(a.Good()), boolOf(a.Faulty())
			gb, fb := boolOf(b.Good()), boolOf(b.Faulty())
			checks := []struct {
				name string
				got  V
				g, f bool
			}{
				{"and", AndV(a, b), ga && gb, fa && fb},
				{"or", OrV(a, b), ga || gb, fa || fb},
				{"xor", XorV(a, b), ga != gb, fa != fb},
			}
			for _, c := range checks {
				if boolOf(c.got.Good()) != c.g || boolOf(c.got.Faulty()) != c.f {
					t.Errorf("%s(%v,%v) = %v; want good=%v faulty=%v", c.name, a, b, c.got, c.g, c.f)
				}
			}
		}
	}
}

func TestXPropagation(t *testing.T) {
	// Controlling values dominate X; otherwise X propagates.
	if got := AndV(Zero, X); got != Zero {
		t.Errorf("AndV(0,X) = %v, want 0", got)
	}
	if got := AndV(One, X); got != X {
		t.Errorf("AndV(1,X) = %v, want X", got)
	}
	if got := OrV(One, X); got != One {
		t.Errorf("OrV(1,X) = %v, want 1", got)
	}
	if got := OrV(Zero, X); got != X {
		t.Errorf("OrV(0,X) = %v, want X", got)
	}
	if got := XorV(One, X); got != X {
		t.Errorf("XorV(1,X) = %v, want X", got)
	}
	if got := AndV(D, X); got != X {
		t.Errorf("AndV(D,X) = %v, want X", got)
	}
	if got := OrV(Dbar, X); got != X {
		t.Errorf("OrV(D',X) = %v, want X", got)
	}
}

func TestDAlgebraIdentities(t *testing.T) {
	// The identities used constantly inside the D-algorithm.
	if got := AndV(D, One); got != D {
		t.Errorf("D·1 = %v, want D", got)
	}
	if got := AndV(D, D); got != D {
		t.Errorf("D·D = %v, want D", got)
	}
	if got := AndV(D, Dbar); got != Zero {
		t.Errorf("D·D' = %v, want 0", got)
	}
	if got := OrV(D, Dbar); got != One {
		t.Errorf("D+D' = %v, want 1", got)
	}
	if got := XorV(D, D); got != Zero {
		t.Errorf("D⊕D = %v, want 0", got)
	}
	if got := XorV(D, Dbar); got != One {
		t.Errorf("D⊕D' = %v, want 1", got)
	}
	if got := XorV(D, One); got != Dbar {
		t.Errorf("D⊕1 = %v, want D'", got)
	}
}

func TestCommutativity(t *testing.T) {
	f := func(ai, bi uint8) bool {
		a, b := allV[int(ai)%len(allV)], allV[int(bi)%len(allV)]
		return AndV(a, b) == AndV(b, a) && OrV(a, b) == OrV(b, a) && XorV(a, b) == XorV(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestAssociativityKnownValues checks associativity on the two exact
// sub-algebras: Kleene ternary {0,1,X} and the pure D-calculus
// {0,1,D,D'}. (Mixing X with D-values is deliberately pessimistic and
// not associative: OrV(OrV(D,D'),X)=1 but OrV(D,OrV(D',X))=X.)
func TestAssociativityKnownValues(t *testing.T) {
	domains := [][]V{
		{Zero, One, X},
		{Zero, One, D, Dbar},
	}
	for _, dom := range domains {
		f := func(ai, bi, ci uint8) bool {
			a, b, c := dom[int(ai)%len(dom)], dom[int(bi)%len(dom)], dom[int(ci)%len(dom)]
			return AndV(AndV(a, b), c) == AndV(a, AndV(b, c)) &&
				OrV(OrV(a, b), c) == OrV(a, OrV(b, c))
		}
		if err := quick.Check(f, nil); err != nil {
			t.Error(err)
		}
	}
}

func TestDeMorganOverDomain(t *testing.T) {
	for _, a := range allV {
		for _, b := range allV {
			if got, want := AndV(a, b).Not(), OrV(a.Not(), b.Not()); got != want {
				t.Errorf("¬(%v·%v) = %v, want %v", a, b, got, want)
			}
		}
	}
}

func TestFromBool(t *testing.T) {
	if FromBool(true) != One || FromBool(false) != Zero {
		t.Error("FromBool broken")
	}
}
