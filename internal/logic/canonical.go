package logic

import (
	"fmt"
	"strings"
)

// CanonicalBench renders the circuit's identity text: its .bench
// rendering minus the "# name" comment header, so the display name
// never splits a content key and an inline submission of a builtin's
// rendering collides with the builtin itself. The service dedup key,
// the circuit interner and the fault-dictionary netlist hash all key
// on this rendering.
func CanonicalBench(c *Circuit) string {
	var b strings.Builder
	if err := WriteBench(&b, c); err != nil {
		// WriteBench over a finalized circuit cannot fail; keep the
		// result well-defined anyway.
		return fmt.Sprintf("err=%v\n", err)
	}
	var out strings.Builder
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		out.WriteString(line)
		out.WriteByte('\n')
	}
	return out.String()
}
