package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRuleOfTen(t *testing.T) {
	table := RuleOfTenTable(0.30)
	want := []float64{0.30, 3, 30, 300}
	for i := range want {
		if math.Abs(table[i]-want[i]) > 1e-9 {
			t.Fatalf("level %d: $%.2f, want $%.2f", i, table[i], want[i])
		}
	}
	if Chip.String() != "chip" || Field.String() != "field" {
		t.Fatal("level names")
	}
}

func TestEscapeSavings(t *testing.T) {
	// Catching 100 faults at board instead of field saves 100·(300-3).
	got := EscapeSavings(0.30, 100, BoardLevel, Field)
	if math.Abs(got-29700) > 1e-6 {
		t.Fatalf("savings %.2f, want 29700", got)
	}
}

func TestEq1Growth(t *testing.T) {
	// Doubling N with exponent 3 multiplies cost by 8 — the paper's
	// "mechanical partition ... would reduce the test generation and
	// fault simulation tasks by 8".
	ratio := Eq1(1, 200, 3) / Eq1(1, 100, 3)
	if math.Abs(ratio-8) > 1e-9 {
		t.Fatalf("ratio %.3f, want 8", ratio)
	}
}

func TestFitPowerLawRecovers(t *testing.T) {
	f := func(kSeed, xSeed uint8) bool {
		k := 0.5 + float64(kSeed%50)/10
		x := 1.5 + float64(xSeed%30)/10
		ns := []int{50, 100, 200, 400, 800}
		ts := make([]float64, len(ns))
		for i, n := range ns {
			ts[i] = Eq1(k, n, x)
		}
		gk, gx, err := FitPowerLaw(ns, ts)
		return err == nil && math.Abs(gk-k) < 1e-6*k+1e-9 && math.Abs(gx-x) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFitPowerLawErrors(t *testing.T) {
	if _, _, err := FitPowerLaw([]int{1}, []float64{1}); err == nil {
		t.Fatal("single sample accepted")
	}
	if _, _, err := FitPowerLaw([]int{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("degenerate samples accepted")
	}
	if _, _, err := FitPowerLaw([]int{0, -1}, []float64{1, 1}); err == nil {
		t.Fatal("nonpositive samples accepted")
	}
}

func TestPaperExhaustiveExample(t *testing.T) {
	patterns, years := PaperExhaustiveExample()
	// 2^75 ≈ 3.78e22 patterns; ≈ 1.2e9 years at 1 µs/pattern.
	if patterns < 3.7e22 || patterns > 3.9e22 {
		t.Fatalf("patterns = %.3g, want ≈3.8e22", patterns)
	}
	if years < 1e9 || years > 1.5e9 {
		t.Fatalf("years = %.3g, want over a billion", years)
	}
}

func TestFaultCombinations(t *testing.T) {
	// "A network with 100 nets would contain 5×10^47 combinations."
	got := FaultCombinations(100)
	if got < 5.1e47 || got > 5.2e47 {
		t.Fatalf("3^100 = %.3g, want ≈5.15e47", got)
	}
}

func TestSingleFaultAccounting(t *testing.T) {
	if SingleFaultCount(1000) != 6000 {
		t.Fatal("1000 gates must give 6000 pin faults")
	}
	if SimulationWork(3000) != 3001 {
		t.Fatal("3000 collapsed faults must cost 3001 machine simulations")
	}
}

func TestDefectLevel(t *testing.T) {
	// Perfect coverage ships no defects regardless of yield.
	if DefectLevel(0.5, 1.0) != 0 {
		t.Fatal("full coverage must give zero defect level")
	}
	// Zero coverage ships exactly the process fallout.
	if math.Abs(DefectLevel(0.5, 0)-0.5) > 1e-12 {
		t.Fatal("zero coverage defect level must equal 1-yield")
	}
	// Monotone decreasing in coverage.
	prev := 1.0
	for c := 0.0; c <= 1.0; c += 0.1 {
		dl := DefectLevel(0.6, c)
		if dl > prev {
			t.Fatalf("defect level not monotone at coverage %.1f", c)
		}
		prev = dl
	}
}

func TestCoverageForDefectLevelInverts(t *testing.T) {
	for _, y := range []float64{0.3, 0.6, 0.9} {
		for _, dl := range []float64{0.001, 0.01, 0.1} {
			c := CoverageForDefectLevel(y, dl)
			back := DefectLevel(y, c)
			if math.Abs(back-dl) > 1e-9 {
				t.Fatalf("y=%.1f dl=%.3f: round trip %.6f", y, dl, back)
			}
		}
	}
	if CoverageForDefectLevel(0.5, 0) != 1 {
		t.Fatal("zero target needs full coverage")
	}
}

func TestDefectLevelValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { DefectLevel(0, 0.5) },
		func() { DefectLevel(0.5, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
