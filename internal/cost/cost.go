// Package cost implements the paper's quantitative arguments: the
// rule-of-ten escalation ($0.30 chip → $3 board → $30 system → $300
// field), the T = K·Nˣ test-generation cost law of Eq. (1), the
// 2^(N+M) exhaustive-testing wall, and the defect-level relation that
// connects fault coverage to shipped quality.
package cost

import (
	"fmt"
	"math"
)

// Level is a packaging level in the rule-of-ten.
type Level int

const (
	Chip Level = iota
	BoardLevel
	System
	Field
)

var levelNames = [...]string{"chip", "board", "system", "field"}

// String names the level.
func (l Level) String() string {
	if int(l) < len(levelNames) {
		return levelNames[l]
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// RuleOfTen returns the cost to detect a fault at the given level,
// anchored at baseCost for the chip level — the paper's
// $0.30/$3/$30/$300 standard.
func RuleOfTen(baseCost float64, l Level) float64 {
	return baseCost * math.Pow(10, float64(l))
}

// RuleOfTenTable renders the full escalation.
func RuleOfTenTable(baseCost float64) []float64 {
	out := make([]float64, 4)
	for l := Chip; l <= Field; l++ {
		out[l] = RuleOfTen(baseCost, l)
	}
	return out
}

// EscapeSavings computes the cost avoided by catching nEscapes faults
// at `caught` level instead of `escapedTo`.
func EscapeSavings(baseCost float64, nEscapes int, caught, escapedTo Level) float64 {
	return float64(nEscapes) * (RuleOfTen(baseCost, escapedTo) - RuleOfTen(baseCost, caught))
}

// Eq1 evaluates T = K·Nˣ (the paper uses x = 3 for generation plus
// fault simulation, noting 2 as the optimistic alternative).
func Eq1(k float64, n int, exponent float64) float64 {
	return k * math.Pow(float64(n), exponent)
}

// FitPowerLaw fits T = K·Nˣ to measured (N, T) samples by least
// squares in log-log space, returning K and x. It is used to check
// measured ATPG/fault-simulation runtimes against Eq. (1).
func FitPowerLaw(ns []int, ts []float64) (k, exponent float64, err error) {
	if len(ns) != len(ts) || len(ns) < 2 {
		return 0, 0, fmt.Errorf("cost: need at least two samples")
	}
	var sx, sy, sxx, sxy float64
	m := 0
	for i := range ns {
		if ns[i] <= 0 || ts[i] <= 0 {
			continue
		}
		x := math.Log(float64(ns[i]))
		y := math.Log(ts[i])
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		m++
	}
	if m < 2 {
		return 0, 0, fmt.Errorf("cost: insufficient positive samples")
	}
	fm := float64(m)
	den := fm*sxx - sx*sx
	if den == 0 {
		return 0, 0, fmt.Errorf("cost: degenerate samples")
	}
	exponent = (fm*sxy - sx*sy) / den
	k = math.Exp((sy - exponent*sx) / fm)
	return k, exponent, nil
}

// ExhaustivePatterns returns 2^(N+M) — the complete functional test
// bound for N inputs and M latches — as a float (it overflows integers
// immediately, which is the point).
func ExhaustivePatterns(inputs, latches int) float64 {
	return math.Pow(2, float64(inputs+latches))
}

// ExhaustiveTestSeconds converts a pattern count to tester time at the
// given application rate (patterns per second).
func ExhaustiveTestSeconds(patterns float64, ratePerSecond float64) float64 {
	return patterns / ratePerSecond
}

// SecondsPerYear converts tester time to years.
const SecondsPerYear = 365.25 * 24 * 3600

// PaperExhaustiveExample reproduces the §I.B numbers: N=25, M=50 at
// 1 µs per pattern.
func PaperExhaustiveExample() (patterns, years float64) {
	patterns = ExhaustivePatterns(25, 50)
	years = ExhaustiveTestSeconds(patterns, 1e6) / SecondsPerYear
	return
}

// DefectLevel is the Williams–Brown relation DL = 1 - Y^(1-T): the
// fraction of shipped parts that are defective, given process yield Y
// and fault coverage T. It quantifies why high coverage matters — the
// economic engine behind DFT.
func DefectLevel(yield, coverage float64) float64 {
	if yield <= 0 || yield > 1 {
		panic("cost: yield must be in (0,1]")
	}
	if coverage < 0 || coverage > 1 {
		panic("cost: coverage must be in [0,1]")
	}
	return 1 - math.Pow(yield, 1-coverage)
}

// CoverageForDefectLevel inverts DefectLevel: the fault coverage
// required to reach a target defect level at the given yield.
func CoverageForDefectLevel(yield, target float64) float64 {
	if target <= 0 {
		return 1
	}
	return 1 - math.Log(1-target)/math.Log(yield)
}

// FaultCombinations returns 3^N, the full multiple-fault space the
// single-fault assumption collapses ("a network with 100 nets would
// contain 5×10^47 different combinations").
func FaultCombinations(nets int) float64 {
	return math.Pow(3, float64(nets))
}

// SingleFaultCount returns the single stuck-at universe size for g
// two-input gates (6 per gate) before collapsing — the paper's
// "1000 gates → 6000 faults".
func SingleFaultCount(twoInputGates int) int { return 6 * twoInputGates }

// SimulationWork models fault simulation as "3001 good machine
// simulations": collapsed faults + 1 passes over the pattern set.
func SimulationWork(collapsedFaults int) int { return collapsedFaults + 1 }
