// Package bridge implements the bridging-fault model the paper
// contrasts with stuck-at coverage (§I.A, citing Mei [43]): two nets
// shorted together, resolving as wired-AND or wired-OR. The paper's
// claim — "historically, bridging faults have been detected by having
// a high level (in the high 90 percent) single stuck-at fault
// coverage" — is directly measurable here: build a bridging universe,
// grade a 100%-stuck-at test set against it.
package bridge

import (
	"fmt"
	"math/rand"
	"sort"

	"dft/internal/logic"
)

// Kind is the resolution function of a short.
type Kind uint8

const (
	WiredAND Kind = iota // the short resolves to a AND b
	WiredOR              // the short resolves to a OR b
)

// String names the kind.
func (k Kind) String() string {
	if k == WiredAND {
		return "wired-AND"
	}
	return "wired-OR"
}

// Fault is a bridging fault between two distinct nets.
type Fault struct {
	A, B int
	Kind Kind
}

// Name renders the fault with net names.
func (f Fault) Name(c *logic.Circuit) string {
	return fmt.Sprintf("bridge(%s,%s) %s", c.NameOf(f.A), c.NameOf(f.B), f.Kind)
}

// Feedback reports whether the bridge creates a feedback loop (one net
// is in the transitive fanout of the other) — the case that can turn
// combinational logic sequential, which the paper flags for CMOS and
// which this combinational model must exclude.
func Feedback(c *logic.Circuit, a, b int) bool {
	return inCone(c, a, b) || inCone(c, b, a)
}

// inCone reports whether to is in the transitive fanout of from.
func inCone(c *logic.Circuit, from, to int) bool {
	seen := make([]bool, c.NumNets())
	stack := []int{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == to {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		for _, r := range c.Fanout[n] {
			if c.Gates[r].Type.IsCombinational() {
				stack = append(stack, r)
			}
		}
	}
	return false
}

// Universe enumerates non-feedback bridging faults between
// level-adjacent nets (|level difference| ≤ window), both polarities.
// Physical bridges join nearby wires; level adjacency is the standard
// topological proxy. The list is capped at limit pairs chosen
// deterministically from rng.
func Universe(c *logic.Circuit, window, limit int, rng *rand.Rand) []Fault {
	type pair struct{ a, b int }
	var candidates []pair
	byLevel := map[int][]int{}
	for n := 0; n < c.NumNets(); n++ {
		byLevel[c.Level[n]] = append(byLevel[c.Level[n]], n)
	}
	levels := make([]int, 0, len(byLevel))
	for l := range byLevel {
		levels = append(levels, l)
	}
	sort.Ints(levels)
	for _, l := range levels {
		var pool []int
		for dl := 0; dl <= window; dl++ {
			pool = append(pool, byLevel[l+dl]...)
		}
		for i, a := range byLevel[l] {
			for _, b := range pool {
				if b <= a && c.Level[b] == l {
					continue // avoid double-counting same-level pairs
				}
				if a == b {
					continue
				}
				candidates = append(candidates, pair{a, b})
			}
			_ = i
		}
	}
	// Deterministic subsample.
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	var out []Fault
	for _, p := range candidates {
		if len(out) >= 2*limit {
			break
		}
		if Feedback(c, p.a, p.b) {
			continue
		}
		out = append(out, Fault{p.a, p.b, WiredAND}, Fault{p.a, p.b, WiredOR})
	}
	return out
}

// EvalBridged computes all net values with the bridge present: after
// the normal levelized pass settles both nets' driven values, the
// shorted value replaces them for all their readers and for output
// observation. Non-feedback bridges converge in one extra pass.
func EvalBridged(c *logic.Circuit, pi []bool, f Fault) []bool {
	vals := make([]bool, c.NumNets())
	for i, id := range c.PIs {
		vals[id] = pi[i]
	}
	scratch := make([]bool, c.MaxFanin())
	resolve := func(a, b bool) bool {
		if f.Kind == WiredAND {
			return a && b
		}
		return a || b
	}
	// Two passes: drivers settle, then the bridged value propagates.
	// For non-feedback bridges the second pass reaches the fixpoint.
	for pass := 0; pass < 2; pass++ {
		for _, id := range c.Order {
			g := &c.Gates[id]
			in := scratch[:len(g.Fanin)]
			for i, src := range g.Fanin {
				v := vals[src]
				if src == f.A || src == f.B {
					v = resolve(vals[f.A], vals[f.B])
				}
				in[i] = v
			}
			vals[id] = g.Type.EvalBool(in)
		}
	}
	// Observation: bridged nets read as the resolved value.
	shared := resolve(vals[f.A], vals[f.B])
	vals[f.A] = shared
	vals[f.B] = shared
	return vals
}

// Detects reports whether the pattern distinguishes the bridged
// circuit from the good one at the primary outputs.
func Detects(c *logic.Circuit, pi []bool, f Fault) bool {
	good := make([]bool, c.NumNets())
	for i, id := range c.PIs {
		good[id] = pi[i]
	}
	scratch := make([]bool, c.MaxFanin())
	for _, id := range c.Order {
		g := &c.Gates[id]
		in := scratch[:len(g.Fanin)]
		for i, src := range g.Fanin {
			in[i] = good[src]
		}
		good[id] = g.Type.EvalBool(in)
	}
	bad := EvalBridged(c, pi, f)
	for _, po := range c.POs {
		if good[po] != bad[po] {
			return true
		}
	}
	return false
}

// Result reports a bridging-coverage measurement.
type Result struct {
	Total    int
	Detected int
}

// Coverage returns detected/total.
func (r Result) Coverage() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.Total)
}

// Grade measures how many bridging faults the pattern set detects.
func Grade(c *logic.Circuit, faults []Fault, patterns [][]bool) Result {
	res := Result{Total: len(faults)}
	for _, f := range faults {
		for _, p := range patterns {
			if Detects(c, p, f) {
				res.Detected++
				break
			}
		}
	}
	return res
}
