package bridge

import (
	"math/rand"
	"testing"

	"dft/internal/atpg"
	"dft/internal/circuits"
	"dft/internal/fault"
	"dft/internal/logic"
	"dft/internal/sim"
)

func TestKindResolution(t *testing.T) {
	c := logic.New("b")
	a := c.AddInput("a")
	b := c.AddInput("b")
	ya := c.AddGate(logic.Buf, "ya", a)
	yb := c.AddGate(logic.Buf, "yb", b)
	c.MarkOutput(ya)
	c.MarkOutput(yb)
	c.MustFinalize()
	fAND := Fault{A: ya, B: yb, Kind: WiredAND}
	fOR := Fault{A: ya, B: yb, Kind: WiredOR}
	// a=1, b=0: wired-AND pulls both to 0; wired-OR pulls both to 1.
	v := EvalBridged(c, []bool{true, false}, fAND)
	if v[ya] || v[yb] {
		t.Fatalf("wired-AND: %v %v", v[ya], v[yb])
	}
	v = EvalBridged(c, []bool{true, false}, fOR)
	if !v[ya] || !v[yb] {
		t.Fatalf("wired-OR: %v %v", v[ya], v[yb])
	}
	// Agreeing nets are unaffected.
	v = EvalBridged(c, []bool{true, true}, fAND)
	if !v[ya] || !v[yb] {
		t.Fatal("agreeing nets disturbed")
	}
	if !Detects(c, []bool{true, false}, fAND) {
		t.Fatal("wired-AND bridge undetected at outputs")
	}
	if Detects(c, []bool{true, true}, fAND) {
		t.Fatal("false detection on agreeing nets")
	}
}

func TestFeedbackDetection(t *testing.T) {
	c := circuits.C17()
	g10, _ := c.NetByName("G10")
	g22, _ := c.NetByName("G22")
	g11, _ := c.NetByName("G11")
	if !Feedback(c, g10, g22) {
		t.Fatal("G22 is in G10's cone; bridge is feedback")
	}
	if Feedback(c, g10, g11) {
		t.Fatal("G10 and G11 are parallel; no feedback")
	}
}

func TestUniverseExcludesFeedback(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := circuits.RippleAdder(4)
	u := Universe(c, 1, 50, rng)
	if len(u) == 0 {
		t.Fatal("empty bridge universe")
	}
	for _, f := range u {
		if Feedback(c, f.A, f.B) {
			t.Fatalf("feedback bridge %s in universe", f.Name(c))
		}
		if f.A == f.B {
			t.Fatal("self bridge")
		}
	}
	// Both polarities present.
	kinds := map[Kind]bool{}
	for _, f := range u {
		kinds[f.Kind] = true
	}
	if !kinds[WiredAND] || !kinds[WiredOR] {
		t.Fatal("missing a bridge polarity")
	}
}

func TestEvalBridgedConvergence(t *testing.T) {
	// The bridged evaluation must be a fixpoint: re-evaluating readers
	// with the shared value changes nothing further.
	rng := rand.New(rand.NewSource(3))
	c := circuits.RippleAdder(4)
	u := Universe(c, 1, 20, rng)
	for _, f := range u[:10] {
		for trial := 0; trial < 20; trial++ {
			pi := make([]bool, len(c.PIs))
			for i := range pi {
				pi[i] = rng.Intn(2) == 1
			}
			v1 := EvalBridged(c, pi, f)
			v2 := EvalBridged(c, pi, f)
			for i := range v1 {
				if v1[i] != v2[i] {
					t.Fatalf("non-deterministic bridged eval at net %d", i)
				}
			}
		}
	}
}

// TestPaperClaimHighSSACoverageCatchesBridges is the §I.A experiment:
// a test set with 100% stuck-at coverage detects the large majority of
// bridging faults.
func TestPaperClaimHighSSACoverageCatchesBridges(t *testing.T) {
	c := circuits.RippleAdder(6)
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	gen := atpg.Generate(c, atpg.PrimaryView(c), cl.Reps,
		atpg.Config{Engine: atpg.EnginePodem, RandomFirst: 128})
	if gen.RawCover < 1.0 {
		t.Fatalf("setup: SSA coverage %.3f", gen.RawCover)
	}
	rng := rand.New(rand.NewSource(9))
	bridges := Universe(c, 1, 200, rng)
	res := Grade(c, bridges, gen.Patterns)
	if res.Coverage() < 0.85 {
		t.Fatalf("bridge coverage %.3f from a 100%%-SSA set; paper expects 'high 90 percent' behavior",
			res.Coverage())
	}
	if res.Coverage() >= 1.0 {
		t.Log("note: all sampled bridges covered; the claim only needs 'most'")
	}
}

func TestBridgedOutputsObservable(t *testing.T) {
	// A bridge touching a PO is observed at the PO itself.
	c := circuits.C17()
	g22, _ := c.NetByName("G22")
	g23, _ := c.NetByName("G23")
	if Feedback(c, g22, g23) {
		t.Skip("structure changed")
	}
	f := Fault{A: g22, B: g23, Kind: WiredAND}
	detected := false
	for x := 0; x < 32; x++ {
		pi := make([]bool, 5)
		for i := range pi {
			pi[i] = x>>uint(i)&1 == 1
		}
		if Detects(c, pi, f) {
			detected = true
			break
		}
	}
	if !detected {
		t.Fatal("output-to-output bridge never detected exhaustively")
	}
}

func TestGradeAccounting(t *testing.T) {
	c := circuits.C17()
	rng := rand.New(rand.NewSource(4))
	u := Universe(c, 2, 20, rng)
	pats := [][]bool{}
	for x := 0; x < 32; x++ {
		p := make([]bool, 5)
		for i := range p {
			p[i] = x>>uint(i)&1 == 1
		}
		pats = append(pats, p)
	}
	res := Grade(c, u, pats)
	if res.Total != len(u) || res.Detected > res.Total {
		t.Fatalf("accounting: %+v", res)
	}
	if res.Coverage() < 0.5 {
		t.Fatalf("exhaustive patterns should detect most sampled c17 bridges, got %.2f", res.Coverage())
	}
	// A good machine under its own vals: zero-bridge sanity via sim.
	vals := sim.Eval(c, pats[7], nil)
	_ = vals
}
