package experiments

import (
	"fmt"
	"math/rand"

	"dft/internal/atpg"
	"dft/internal/bridge"
	"dft/internal/circuits"
	"dft/internal/cmos"
	"dft/internal/fault"
	"dft/internal/logic"
	"dft/internal/plaatpg"
	"dft/internal/seqatpg"
	"dft/internal/testability"
)

// BridgeResult covers the §I.A bridging-fault claim.
type BridgeResult struct {
	SSACoverage    float64
	BridgeTotal    int
	BridgeDetected int
}

// Render prints the measurement.
func (r BridgeResult) Render() string {
	t := &text{title: "§I.A — bridging faults under a high stuck-at coverage test set"}
	t.addf("stuck-at coverage of the test set : %.1f%%", r.SSACoverage*100)
	t.addf("bridging faults detected          : %d/%d (%.1f%%)",
		r.BridgeDetected, r.BridgeTotal, 100*float64(r.BridgeDetected)/float64(r.BridgeTotal))
	t.addf("paper: \"bridging faults have been detected by having a high level ... single")
	t.addf("stuck-at fault coverage\" — the correlation, measured.")
	return t.Render()
}

// Bridging runs the experiment.
func Bridging() Result {
	c := circuits.RippleAdder(6)
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	gen := atpg.Generate(c, atpg.PrimaryView(c), cl.Reps,
		atpg.Config{Engine: atpg.EnginePodem, RandomFirst: 128})
	rng := rand.New(rand.NewSource(9))
	bridges := bridge.Universe(c, 1, 200, rng)
	res := bridge.Grade(c, bridges, gen.Patterns)
	return BridgeResult{
		SSACoverage:    gen.RawCover,
		BridgeTotal:    res.Total,
		BridgeDetected: res.Detected,
	}
}

// CMOSResult covers the §I.A stuck-open warning.
type CMOSResult struct {
	Universe        int
	BestOrderMiss   int // stuck-opens missed by some ordering of a 100%-SSA set
	TwoPatternFound int
	TwoPatternHit   int
}

// Render prints the measurement.
func (r CMOSResult) Render() string {
	t := &text{title: "§I.A — CMOS stuck-open faults: combinational patterns are not enough"}
	t.addf("stuck-open universe (all-NAND c17)            : %d faults", r.Universe)
	t.addf("100%%-SSA set, adversarial ordering, missed    : %d", r.BestOrderMiss)
	t.addf("dedicated two-pattern tests generated/detected: %d/%d", r.TwoPatternFound, r.TwoPatternHit)
	t.addf("paper: stuck-opens \"could change a combinational network into a sequential")
	t.addf("network\" — pattern ORDER decides detection; two-pattern tests restore it.")
	return t.Render()
}

// CMOSStuckOpen runs the experiment.
func CMOSStuckOpen() Result {
	c := circuits.C17()
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	gen := atpg.Generate(c, atpg.PrimaryView(c), cl.Reps, atpg.Config{Engine: atpg.EnginePodem})
	u := cmos.Universe(c)
	rng := rand.New(rand.NewSource(5))

	worstMiss := 0
	pats := append([][]bool(nil), gen.Patterns...)
	for trial := 0; trial < 50; trial++ {
		rng.Shuffle(len(pats), func(i, j int) { pats[i], pats[j] = pats[j], pats[i] })
		if miss := len(u) - cmos.GradeSequence(c, u, pats); miss > worstMiss {
			worstMiss = miss
		}
	}
	det, found := cmos.GradeTwoPattern(c, u, rng)
	return CMOSResult{
		Universe:        len(u),
		BestOrderMiss:   worstMiss,
		TwoPatternFound: found,
		TwoPatternHit:   det,
	}
}

// SeqATPGResult covers bounded time-frame expansion.
type SeqATPGResult struct {
	Circuit    string
	Faults     int
	Detected   int
	Depths     map[int]int
	DeepFailed bool // a genuinely deep fault refused the frame bound
}

// Render prints the measurement.
func (r SeqATPGResult) Render() string {
	t := &text{title: "Sequential ATPG by time-frame expansion (the cost scan removes)"}
	t.addf("circuit %s: %d/%d faults testable within 10 frames", r.Circuit, r.Detected, r.Faults)
	tb := &table{header: []string{"frames needed", "faults"}}
	for d := 1; d <= 10; d++ {
		if n, ok := r.Depths[d]; ok {
			tb.add(fmt.Sprint(d), fmt.Sprint(n))
		}
	}
	t.addTable(tb)
	t.addf("deep counter bit refused a 4-frame bound: %v (the exponential wall)", r.DeepFailed)
	return t.Render()
}

// SequentialATPG runs the experiment.
func SequentialATPG() Result {
	c := circuits.Counter(4)
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	det, depths := seqatpg.CoverageWithinFrames(c, cl.Reps, seqatpg.Config{MaxFrames: 10, MaxBacktracks: 2000})

	deep := circuits.Counter(6)
	t5, _ := deep.NetByName("T5")
	_, err := seqatpg.Generate(deep, fault.Fault{Gate: t5, Pin: fault.Stem, SA: 0}, seqatpg.Config{MaxFrames: 4})
	return SeqATPGResult{
		Circuit:    c.Name,
		Faults:     len(cl.Reps),
		Detected:   det,
		Depths:     depths,
		DeepFailed: err != nil,
	}
}

// ProbResult covers random-pattern testability prediction.
type ProbResult struct {
	PLAExpected   float64
	AdderExpected float64
	WeightsHigh   bool
	WeightedWins  bool
}

// Render prints the prediction and the weighted-random payoff.
func (r ProbResult) Render() string {
	t := &text{title: "Signal probabilities ([45]) — predicting Fig. 22 and deriving weights ([95])"}
	t.addf("expected random patterns to catch the hardest fault:")
	t.addf("  20-literal PLA product : %.3g (≈2^20)", r.PLAExpected)
	t.addf("  6-bit ripple adder     : %.3g", r.AdderExpected)
	t.addf("derived AND-tree weights pulled high: %v; weighted beats uniform: %v",
		r.WeightsHigh, r.WeightedWins)
	return t.Render()
}

// Probability runs the experiment.
func Probability() Result {
	cube := make(circuits.Cube, 20)
	for i := range cube {
		cube[i] = 1
	}
	pla := circuits.PLA("andpla", 20, []circuits.Cube{cube}, [][]int{{0}})
	add := circuits.RippleAdder(6)
	r := ProbResult{
		PLAExpected:   testability.ExpectedPatterns(pla, fault.CollapseEquiv(pla, fault.Universe(pla)).Reps, nil),
		AdderExpected: testability.ExpectedPatterns(add, fault.CollapseEquiv(add, fault.Universe(add)).Reps, nil),
	}
	// Derived weights on an AND tree.
	tree := andTree(16)
	w := testability.DeriveWeights(tree)
	r.WeightsHigh = true
	for _, wi := range w {
		if wi < 0.7 {
			r.WeightsHigh = false
		}
	}
	cl := fault.CollapseEquiv(tree, fault.Universe(tree))
	uni := atpg.RandomGenerate(tree, atpg.PrimaryView(tree), cl.Reps, 1.0, 2000, rand.New(rand.NewSource(1)))
	wres := atpg.WeightedRandomGenerate(tree, atpg.PrimaryView(tree), cl.Reps, 1.0, 2000, w, rand.New(rand.NewSource(1)))
	r.WeightedWins = wres.Coverage > uni.Coverage
	return r
}

func andTree(n int) *logic.Circuit {
	c := logic.New("andtree")
	var layer []int
	for i := 0; i < n; i++ {
		layer = append(layer, c.AddInput(fmt.Sprintf("i%d", i)))
	}
	for len(layer) > 1 {
		var next []int
		for i := 0; i+1 < len(layer); i += 2 {
			next = append(next, c.AddGate(logic.And, "", layer[i], layer[i+1]))
		}
		if len(layer)%2 == 1 {
			next = append(next, layer[len(layer)-1])
		}
		layer = next
	}
	c.MarkOutput(layer[0])
	return c.MustFinalize()
}

// PLAATPGResult covers the [84] deterministic PLA test generator.
type PLAATPGResult struct {
	Deterministic int
	DetCoverage   float64
	RandomBudget  int
	RandCoverage  float64
	Exhaustive    float64
}

// Render prints the comparison.
func (r PLAATPGResult) Render() string {
	t := &text{title: "PLA macro test patterns ([84]) — the deterministic answer to Fig. 22"}
	t.addf("deterministic set: %d patterns -> %.1f%% coverage of reachable faults",
		r.Deterministic, r.DetCoverage*100)
	t.addf("random patterns  : %d patterns -> %.1f%% coverage", r.RandomBudget, r.RandCoverage*100)
	t.addf("exhaustive would need %.3g patterns", r.Exhaustive)
	return t.Render()
}

// PLAATPG runs the deterministic-PLA-test experiment.
func PLAATPG() Result {
	rng := rand.New(rand.NewSource(7))
	s := plaatpg.Spec{NIn: 18}
	for t := 0; t < 6; t++ {
		cube := make(circuits.Cube, s.NIn)
		perm := rng.Perm(s.NIn)
		for _, i := range perm[:16] {
			if rng.Intn(2) == 0 {
				cube[i] = 1
			} else {
				cube[i] = -1
			}
		}
		s.Cubes = append(s.Cubes, cube)
	}
	s.Outputs = [][]int{{0, 2, 4}, {1, 3, 5}}
	c, pats, _ := plaatpg.BuildAndTest("exp_pla", s)
	detCov, _, _ := plaatpg.TestableCoverage(c, pats)
	budget := 8 * len(pats)
	rpats := randomPatterns(s.NIn, budget, 3)
	randCov, _, _ := plaatpg.TestableCoverage(c, rpats)
	_, exh, _ := plaatpg.Sizes(s)
	return PLAATPGResult{
		Deterministic: len(pats),
		DetCoverage:   detCov,
		RandomBudget:  budget,
		RandCoverage:  randCov,
		Exhaustive:    exh,
	}
}

func init() {
	register("bridging", "§I.A: bridging faults vs stuck-at coverage", Bridging)
	register("cmos", "§I.A: CMOS stuck-open / two-pattern testing", CMOSStuckOpen)
	register("seqatpg", "sequential ATPG by time-frame expansion", SequentialATPG)
	register("probability", "signal probabilities and weighted random", Probability)
	register("plaatpg", "PLA macro deterministic tests ([84])", PLAATPG)
}
