package experiments

import (
	"fmt"

	"dft/internal/board"
	"dft/internal/circuits"
	"dft/internal/fault"
	"dft/internal/logic"
	"dft/internal/testability"
)

// DegatingResult is the Fig. 2/3 partitioning demonstration.
type DegatingResult struct {
	TargetNet       string
	CC1Before       int
	CC1After        int
	OscFreeRepeat   bool
	OscDegateRepeat bool
}

// Render prints the controllability improvement and the oscillator
// synchronization fix.
func (r DegatingResult) Render() string {
	t := &text{title: "Figs. 2–3 — degating for logical partitioning and oscillator control"}
	t.addf("hardest net %s: CC1 %d before degating, %d through the control line",
		r.TargetNet, r.CC1Before, r.CC1After)
	t.addf("free-running oscillator: sessions repeatable = %v", r.OscFreeRepeat)
	t.addf("degated pseudo-clock   : sessions repeatable = %v", r.OscDegateRepeat)
	return t.Render()
}

// Fig2Degating runs the degating experiments.
func Fig2Degating() Result {
	c := circuits.RippleAdder(16)
	m := testability.Analyze(c)
	target, _ := c.NetByName("C16")
	before := m.CC1[target]
	mod := testability.AddControlPoint(c, target)
	m2 := testability.Analyze(mod)
	gated, _ := mod.NetByName("TPG_C16")

	// Oscillator sessions.
	cc := circuits.Counter(4)
	ins := make([][]bool, 30)
	for i := range ins {
		ins[i] = []bool{true}
	}
	same := func(a, b [][]bool) bool {
		for i := range a {
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					return false
				}
			}
		}
		return true
	}
	free := same(
		board.SyncSession(cc, board.NewOscillator(1), ins),
		board.SyncSession(cc, board.NewOscillator(2), ins))
	mk := func(seed int64) *board.Oscillator {
		o := board.NewOscillator(seed)
		o.Degate = true
		o.Pseudo = true
		return o
	}
	degated := same(
		board.SyncSession(cc, mk(1), ins),
		board.SyncSession(cc, mk(2), ins))
	return DegatingResult{
		TargetNet: "C16", CC1Before: before, CC1After: m2.CC1[gated],
		OscFreeRepeat: free, OscDegateRepeat: degated,
	}
}

// TestPointResult is Fig. 4.
type TestPointResult struct {
	Net      string
	COBefore int
	COAfter  int
	Recs     int
}

// Render prints the observability improvement.
func (r TestPointResult) Render() string {
	t := &text{title: "Fig. 4 — test points as inputs and outputs"}
	t.addf("worst-observability net %s: CO %d before, %d after an observation point",
		r.Net, r.COBefore, r.COAfter)
	t.addf("testability-measure program recommended %d test points", r.Recs)
	return t.Render()
}

// Fig4TestPoints runs the test-point experiment.
func Fig4TestPoints() Result {
	c := circuits.ArrayMultiplier(5)
	m := testability.Analyze(c)
	worst, worstCO := -1, -1
	for n := 0; n < c.NumNets(); n++ {
		if m.CO[n] < testability.Inf && m.CO[n] > worstCO {
			worst, worstCO = n, m.CO[n]
		}
	}
	mod := testability.AddObservationPoint(c, worst)
	m2 := testability.Analyze(mod)
	recs := testability.Recommend(c, m, 5)
	return TestPointResult{
		Net: c.NameOf(worst), COBefore: worstCO, COAfter: m2.CO[worst], Recs: len(recs),
	}
}

// BedOfNailsResult is Fig. 5.
type BedOfNailsResult struct {
	EdgePass   bool
	InCircuit  []string
	Resolution string
}

// Render prints the resolution comparison.
func (r BedOfNailsResult) Render() string {
	t := &text{title: "Fig. 5 — bed-of-nails and in-circuit testing"}
	t.addf("edge-connector test: pass=%v (resolution: whole board)", r.EdgePass)
	t.addf("in-circuit test    : failing modules %v (resolution: %s)", r.InCircuit, r.Resolution)
	return t.Render()
}

// Fig5BedOfNails runs the diagnosis-resolution experiment.
func Fig5BedOfNails() Result {
	mk := func() *board.Board {
		adder := circuits.RippleAdder(4)
		par := circuits.ParityTree(4)
		b := &board.Board{
			Modules: []*board.Module{{Name: "ADD", Logic: adder}, {Name: "PAR", Logic: par}},
			Inputs:  8,
		}
		for i := 0; i < 8; i++ {
			b.Wires = append(b.Wires, board.Wire{
				Name: fmt.Sprintf("in%d", i),
				From: board.Port{Module: "", Pin: i},
				To:   []board.Port{{Module: "ADD", Pin: i}},
			})
		}
		b.Wires = append(b.Wires, board.Wire{
			Name: "cin", From: board.Port{Module: "", Pin: 0},
			To: []board.Port{{Module: "ADD", Pin: 8}},
		})
		for i := 0; i < 4; i++ {
			b.Wires = append(b.Wires, board.Wire{
				Name: fmt.Sprintf("s%d", i),
				From: board.Port{Module: "ADD", Pin: i},
				To:   []board.Port{{Module: "PAR", Pin: i}},
			})
		}
		b.Outputs = []board.Port{{Module: "PAR", Pin: 0}, {Module: "ADD", Pin: 4}}
		return b
	}
	golden := mk()
	uut := mk()
	s2, _ := uut.Modules[0].Logic.NetByName("S2")
	uut.Modules[0].Fault = &fault.Fault{Gate: s2, Pin: fault.Stem, SA: logic.One}

	pats := randomPatterns(8, 64, 77)
	pass, _ := board.EdgeTest(golden, uut, pats)
	bn := &board.BedOfNails{B: uut}
	failing, _ := bn.InCircuitTest(map[string][][]bool{
		"ADD": randomPatterns(9, 64, 78),
		"PAR": randomPatterns(4, 16, 79),
	})
	return BedOfNailsResult{EdgePass: pass, InCircuit: failing, Resolution: "single chip"}
}

// BusResult is Fig. 6.
type BusResult struct {
	HealthyFailures []string
	ModuleFailure   []string
	StuckDiagnosis  string
}

// Render prints the isolation outcomes.
func (r BusResult) Render() string {
	t := &text{title: "Fig. 6 — bus-structured microcomputer isolation"}
	t.addf("healthy bus, per-module isolation: failures %v", r.HealthyFailures)
	t.addf("defective RAM driver             : failures %v", r.ModuleFailure)
	t.addf("stuck bus trace                  : %s", r.StuckDiagnosis)
	return t.Render()
}

// Fig6Bus runs the tri-state isolation experiment.
func Fig6Bus() Result {
	mk := func(v bool) func() bool { return func() bool { return v } }
	expected := map[string]bool{"CPU": true, "ROM": false, "RAM": true, "IO": false}
	bus := &board.Bus{Drivers: []*board.BusDriver{
		{Name: "CPU", Drive: mk(true)}, {Name: "ROM", Drive: mk(false)},
		{Name: "RAM", Drive: mk(true)}, {Name: "IO", Drive: mk(false)},
	}}
	healthy, _ := bus.IsolateAndTest(expected)
	bus.Drivers[2].Drive = mk(false)
	modFail, _ := bus.IsolateAndTest(expected)
	// Stuck-at-0 trace: exercise the polarity the defect blocks (every
	// driver attempts a 1) — all fail, and voltage measurements cannot
	// say which driver or the trace itself is at fault.
	for _, d := range bus.Drivers {
		d.Drive = mk(true)
	}
	allOnes := map[string]bool{"CPU": true, "ROM": true, "RAM": true, "IO": true}
	stuck := false
	bus.Stuck = &stuck
	stuckFail, _ := bus.IsolateAndTest(allOnes)
	return BusResult{
		HealthyFailures: healthy,
		ModuleFailure:   modFail,
		StuckDiagnosis:  board.DiagnoseBus(stuckFail, len(bus.Drivers)),
	}
}

func init() {
	register("fig02-03", "Figs. 2-3: degating / oscillator partitioning", Fig2Degating)
	register("fig04", "Fig. 4: test points", Fig4TestPoints)
	register("fig05", "Fig. 5: bed-of-nails / in-circuit testing", Fig5BedOfNails)
	register("fig06", "Fig. 6: bus architecture isolation", Fig6Bus)
}
