package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig01", "universe", "eq1", "exhaustive", "ruleoften",
		"fig02-03", "fig04", "fig05", "fig06",
		"fig07", "fig08",
		"fig09-12", "fig13-14", "fig15", "fig16-18",
		"fig19-21", "fig22", "fig23", "tableI",
		"fig26-29", "fig30-32", "fig33-34", "scoap",
		"bridging", "cmos", "seqatpg", "probability", "plaatpg",
		"ramtest", "scanchains", "delay",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(All()), len(want))
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID accepted an unknown id")
	}
}

// TestAllExperimentsRender runs the fast experiments end to end. The
// heavyweight ones (eq1) are covered by the repository-root tests.
func TestAllExperimentsRender(t *testing.T) {
	skip := map[string]bool{"eq1": true}
	for _, e := range All() {
		if skip[e.ID] {
			continue
		}
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out := e.Run().Render()
			if !strings.Contains(out, "==") || len(out) < 40 {
				t.Fatalf("suspicious render for %s:\n%s", e.ID, out)
			}
		})
	}
}

func TestTableRenderer(t *testing.T) {
	tb := &table{header: []string{"a", "long-header"}}
	tb.add("xxxx", "y")
	s := tb.String()
	if !strings.Contains(s, "a     long-header") {
		t.Fatalf("alignment broken:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected 3 lines, got %d", len(lines))
	}
}

func TestFig1Values(t *testing.T) {
	r := Fig1().(Fig1Result)
	if !r.IsTest || r.GoodOut != false || r.FaultyOut != true {
		t.Fatalf("Fig. 1 result wrong: %+v", r)
	}
}

func TestFig7Exact(t *testing.T) {
	r := Fig7LFSR().(Fig7Result)
	if r.Period != 7 || len(r.Seeds) != 7 {
		t.Fatalf("Fig. 7: %+v", r)
	}
	// Seed 100 (Q1=1): first step is 010.
	if r.Sequences[0][0] != 0b010 {
		t.Fatalf("first transition %03b, want 010", r.Sequences[0][0])
	}
}

func TestRandomPatternsShape(t *testing.T) {
	p := randomPatterns(5, 10, 1)
	if len(p) != 10 || len(p[0]) != 5 {
		t.Fatal("pattern shape")
	}
	q := randomPatterns(5, 10, 1)
	for i := range p {
		for j := range p[i] {
			if p[i][j] != q[i][j] {
				t.Fatal("not deterministic")
			}
		}
	}
}
