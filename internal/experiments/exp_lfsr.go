package experiments

import (
	"fmt"
	"math/rand"

	"dft/internal/fault"
	"dft/internal/lfsr"
	"dft/internal/logic"
	"dft/internal/signature"
)

// randomPatterns is a shared deterministic pattern source.
func randomPatterns(width, count int, seed int64) [][]bool {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]bool, count)
	for i := range out {
		p := make([]bool, width)
		for j := range p {
			p[j] = rng.Intn(2) == 1
		}
		out[i] = p
	}
	return out
}

// Fig7Result is the LFSR counting table.
type Fig7Result struct {
	Seeds     []uint64
	Sequences [][]uint64
	Period    int
}

// Render prints the counting capabilities table of Fig. 7.
func (r Fig7Result) Render() string {
	t := &text{title: "Fig. 7 — counting capabilities of the 3-bit LFSR (taps Q2⊕Q3)"}
	tb := &table{header: []string{"seed Q1Q2Q3", "sequence (Q1Q2Q3 per clock)"}}
	for i, s := range r.Seeds {
		var cells []string
		for _, w := range r.Sequences[i] {
			cells = append(cells, fmt.Sprintf("%d%d%d", w&1, w>>1&1, w>>2&1))
		}
		tb.add(fmt.Sprintf("%d%d%d", s&1, s>>1&1, s>>2&1), fmt.Sprint(cells))
	}
	t.addTable(tb)
	t.addf("period from every nonzero seed: %d (maximal, 2^3-1)", r.Period)
	return t.Render()
}

// Fig7LFSR regenerates the counting table.
func Fig7LFSR() Result {
	r := Fig7Result{Period: 0}
	for seed := uint64(1); seed < 8; seed++ {
		l := lfsr.New(3, []int{2, 3})
		l.SetState(seed)
		r.Seeds = append(r.Seeds, seed)
		r.Sequences = append(r.Sequences, l.Sequence(7))
		l2 := lfsr.New(3, []int{2, 3})
		l2.SetState(seed)
		if p := l2.Period(8); r.Period == 0 || p == r.Period {
			r.Period = p
		}
	}
	return r
}

// Fig8Result is the signature-analysis experiment.
type Fig8Result struct {
	Widths      []int
	CatchRates  []float64
	Theory      []float64
	Culprit     string
	Probes      int
	LoopRefusal bool
}

// Render prints detection probability vs register width and the
// diagnosis outcome.
func (r Fig8Result) Render() string {
	t := &text{title: "Fig. 8 — signature analysis: detection probability and fault isolation"}
	tb := &table{header: []string{"LFSR width", "measured miss rate", "theory 2^-k"}}
	for i, w := range r.Widths {
		tb.add(fmt.Sprint(w), fmt.Sprintf("%.5f", 1-r.CatchRates[i]), fmt.Sprintf("%.5f", r.Theory[i]))
	}
	t.addTable(tb)
	t.addf("kernel-first diagnosis located module %q in %d probes", r.Culprit, r.Probes)
	t.addf("closed-loop board refused until jumper break: %v", r.LoopRefusal)
	return t.Render()
}

// Fig8Signature measures aliasing vs width and runs a diagnosis.
func Fig8Signature() Result {
	res := Fig8Result{}
	// Aliasing: random nonzero error streams into the analyzer register.
	rng := rand.New(rand.NewSource(42))
	for _, w := range []int{3, 8, 16} {
		l := lfsr.NewMaximal(w)
		trials, missed := 30000, 0
		for i := 0; i < trials; i++ {
			stream := make([]uint64, 50)
			nz := false
			for k := range stream {
				stream[k] = uint64(rng.Intn(2))
				nz = nz || stream[k] == 1
			}
			if !nz {
				stream[0] = 1
			}
			if l.Signature(stream) == 0 {
				missed++
			}
		}
		res.Widths = append(res.Widths, w)
		res.CatchRates = append(res.CatchRates, 1-float64(missed)/float64(trials))
		res.Theory = append(res.Theory, lfsr.AliasingProbability(w))
	}
	// Diagnosis on the board used in the signature package tests.
	b := demoSignatureBoard()
	a := signature.NewAnalyzer(16)
	s1, _ := b.C.NetByName("S1")
	diag, err := b.Diagnose(a, fault.Fault{Gate: s1, Pin: fault.Stem, SA: logic.One})
	if err == nil {
		res.Culprit = diag.Culprit
		res.Probes = diag.Probes
	}
	// Loop refusal.
	lb := demoSignatureBoard()
	for i := range lb.Modules {
		if lb.Modules[i].Name == "uP" {
			lb.Modules[i].Feeds = append(lb.Modules[i].Feeds, "CHK")
		}
	}
	_, lerr := lb.Diagnose(a, fault.Fault{Gate: s1, Pin: fault.Stem, SA: logic.One})
	res.LoopRefusal = lerr != nil
	return res
}

// demoSignatureBoard builds the kernel→ALU→checker board.
func demoSignatureBoard() *signature.Board {
	c := logic.New("sigboard")
	en := c.AddInput("EN")
	qs := make([]int, 4)
	for i := range qs {
		qs[i] = c.AddDFF(fmt.Sprintf("Q%d", i), en)
	}
	carry := en
	for i := 0; i < 4; i++ {
		tnet := c.AddGate(logic.Xor, fmt.Sprintf("T%d", i), qs[i], carry)
		c.Gates[qs[i]].Fanin[0] = tnet
		if i < 3 {
			carry = c.AddGate(logic.And, fmt.Sprintf("CA%d", i), carry, qs[i])
		}
	}
	s0 := c.AddGate(logic.Not, "S0", qs[0])
	c1 := c.AddGate(logic.And, "C1x", qs[0], qs[0])
	s1 := c.AddGate(logic.Xor, "S1", qs[1], c1)
	c2 := c.AddGate(logic.And, "C2x", qs[1], c1)
	s2 := c.AddGate(logic.Xor, "S2", qs[2], c2)
	c3 := c.AddGate(logic.And, "C3x", qs[2], c2)
	s3 := c.AddGate(logic.Xor, "S3", qs[3], c3)
	p := c.AddGate(logic.Xor, "PAR", s0, s1, s2, s3)
	c.MarkOutput(p)
	c.MustFinalize()
	return &signature.Board{
		C:        c,
		Stimulus: signature.SelfStimulus(c, 50),
		Modules: []signature.Module{
			{Name: "uP", Outputs: qs},
			{Name: "ALU", Outputs: []int{s0, s1, s2, s3}, Feeds: []string{"uP"}},
			{Name: "CHK", Outputs: []int{p}, Feeds: []string{"ALU"}},
		},
	}
}

func init() {
	register("fig07", "Fig. 7: LFSR counting sequences", Fig7LFSR)
	register("fig08", "Fig. 8: signature analysis", Fig8Signature)
}
