// Package experiments regenerates every table and figure of the
// paper's survey as an executable experiment. Each experiment returns
// a structured result with a Render method that prints the same rows
// or series the paper reports; the package-level Registry drives the
// `dftc experiments` command, and the repository-root tests assert the
// quantitative claims (who wins, by what factor, where crossovers
// fall).
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Result is a rendered experiment outcome.
type Result interface {
	Render() string
}

// Experiment couples a paper artifact with its regenerator.
type Experiment struct {
	ID    string // e.g. "fig7", "tableI", "eq1"
	Title string
	Run   func() Result
}

var registry []Experiment

func register(id, title string, run func() Result) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns the registered experiments sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// table is a tiny fixed-width table renderer shared by the results.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// text is a Result made of plain prose plus optional tables.
type text struct {
	title string
	body  []string
}

func (t *text) addf(format string, args ...interface{}) {
	t.body = append(t.body, fmt.Sprintf(format, args...))
}

func (t *text) addTable(tb *table) {
	t.body = append(t.body, tb.String())
}

func (t *text) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.title)
	for _, line := range t.body {
		b.WriteString(line)
		if !strings.HasSuffix(line, "\n") {
			b.WriteByte('\n')
		}
	}
	return b.String()
}
