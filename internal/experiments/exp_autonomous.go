package experiments

import (
	"fmt"

	"dft/internal/autonomous"
	"dft/internal/circuits"
	"dft/internal/testability"
)

// ModuleResult covers Figs. 26–29.
type ModuleResult struct {
	NormalLoad string
	GenStates  int
	SigChanged bool
}

// Render prints the reconfigurable-module demonstrations.
func (r ModuleResult) Render() string {
	t := &text{title: "Figs. 26–29 — reconfigurable LFSR module"}
	t.addf("N=1 normal operation: %s", r.NormalLoad)
	t.addf("N=0,S=0 input generator: %d distinct nonzero states (maximal)", r.GenStates)
	t.addf("N=0,S=1 signature analyzer: corrupted stream changes signature = %v", r.SigChanged)
	return t.Render()
}

// Fig26Module runs the module-mode demonstrations.
func Fig26Module() Result {
	var r ModuleResult
	m := autonomous.NewModule(3)
	m.Clock(true, false, []bool{true, false, true})
	r.NormalLoad = fmt.Sprintf("loaded %03b", m.QWord())

	g := autonomous.NewModule(3)
	g.SetQ([]bool{true, false, false})
	seen := map[uint64]bool{}
	for _, w := range g.Generate(7) {
		seen[w] = true
	}
	r.GenStates = len(seen)

	words := [][]bool{{true, false, true}, {false, true, true}, {true, true, false}}
	s1 := autonomous.NewModule(3)
	ref := s1.Compress(words)
	words[1][0] = !words[1][0]
	s2 := autonomous.NewModule(3)
	r.SigChanged = s2.Compress(words) != ref
	return r
}

// MuxPartResult covers Figs. 30–32.
type MuxPartResult struct {
	Before   int
	After    int
	Applied  int
	Coverage float64
}

// Render prints the exhaustive cost reduction and the executed test.
func (r MuxPartResult) Render() string {
	t := &text{title: "Figs. 30–32 — autonomous testing with multiplexer partitioning"}
	t.addf("exhaustive patterns unpartitioned: %d", r.Before)
	t.addf("after multiplexer partition       : %d (sum of subnetwork spaces)", r.After)
	t.addf("reduction factor                  : %.1fx", float64(r.Before)/float64(r.After))
	t.addf("executed two-phase test           : %d patterns, %.1f%% stuck-at coverage",
		r.Applied, r.Coverage*100)
	return t.Render()
}

// Fig30Mux runs the multiplexer partitioning experiment: the cost
// arithmetic plus the actual two-phase exhaustive test.
func Fig30Mux() Result {
	c := circuits.RippleAdder(8)
	c4, _ := c.NetByName("C4")
	mp := autonomous.PartitionWithMux(c, []int{c4})
	before, after := mp.ExhaustiveCost(c)
	cov, applied := mp.RunAutonomousTest(c)
	return MuxPartResult{Before: before, After: after, Applied: applied, Coverage: cov}
}

// SensitizedResult covers Figs. 33–34.
type SensitizedResult struct {
	Report autonomous.SensitizedReport
}

// Render prints the 74181 sensitized-partitioning outcome.
func (r SensitizedResult) Render() string {
	t := &text{title: "Figs. 33–34 — sensitized partitioning of the 74181 ALU"}
	t.addf("patterns applied : %d (exhaustive would need %d)", r.Report.Patterns, r.Report.ExhaustiveSize)
	t.addf("N1 subnetworks   : %d/%d faults detected (%.1f%%)",
		r.Report.N1Detected, r.Report.N1Faults, r.Report.N1Coverage()*100)
	t.addf("whole circuit    : %d/%d faults detected (%.1f%%)",
		r.Report.TotalDetected, r.Report.TotalFaults, r.Report.TotalCoverage()*100)
	t.addf("\"far fewer than 2^n input patterns can be applied to the network to test it\"")
	return t.Render()
}

// Fig33Sensitized runs the 74181 sensitized partitioning.
func Fig33Sensitized() Result {
	return SensitizedResult{Report: autonomous.RunSensitized74181(circuits.ALU74181())}
}

// SCOAPResult covers the §II controllability/observability programs.
type SCOAPResult struct {
	Rows []struct {
		Circuit string
		Summary testability.Summary
	}
}

// Render prints per-circuit SCOAP summaries.
func (r SCOAPResult) Render() string {
	t := &text{title: "§II — controllability/observability measures (SCOAP)"}
	tb := &table{header: []string{"circuit", "max CC0", "max CC1", "max CO", "mean CO", "max seq depth"}}
	for _, row := range r.Rows {
		tb.add(row.Circuit,
			fmt.Sprint(row.Summary.MaxCC0), fmt.Sprint(row.Summary.MaxCC1),
			fmt.Sprint(row.Summary.MaxCO), fmt.Sprintf("%.1f", row.Summary.MeanCO),
			fmt.Sprint(row.Summary.MaxSD))
	}
	t.addTable(tb)
	return t.Render()
}

// SCOAPMeasures runs the testability analysis over the library.
func SCOAPMeasures() Result {
	var r SCOAPResult
	add := func(name string, s testability.Summary) {
		r.Rows = append(r.Rows, struct {
			Circuit string
			Summary testability.Summary
		}{name, s})
	}
	cs := []struct {
		name string
		s    testability.Summary
	}{
		{"c17", testability.Analyze(circuits.C17()).Summarize()},
		{"adder16", testability.Analyze(circuits.RippleAdder(16)).Summarize()},
		{"mult8", testability.Analyze(circuits.ArrayMultiplier(8)).Summarize()},
		{"alu74181", testability.Analyze(circuits.ALU74181()).Summarize()},
		{"counter12", testability.Analyze(circuits.Counter(12)).Summarize()},
	}
	for _, x := range cs {
		add(x.name, x.s)
	}
	return r
}

func init() {
	register("fig26-29", "Figs. 26-29: reconfigurable LFSR module", Fig26Module)
	register("fig30-32", "Figs. 30-32: multiplexer partitioning", Fig30Mux)
	register("fig33-34", "Figs. 33-34: sensitized partitioning of the 74181", Fig33Sensitized)
	register("scoap", "§II: testability measures", SCOAPMeasures)
}
