package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"dft/internal/atpg"
	"dft/internal/circuits"
	"dft/internal/cost"
	"dft/internal/fault"
	"dft/internal/logic"
	"dft/internal/sim"
)

// Fig1Result is the stuck-at demonstration of Fig. 1.
type Fig1Result struct {
	Pattern            string
	GoodOut, FaultyOut bool
	IsTest             bool
	NonTestPattern     string
}

// Render prints the good-machine/faulty-machine comparison.
func (r Fig1Result) Render() string {
	t := &text{title: "Fig. 1 — test for input stuck-at fault (AND gate, A s-a-1)"}
	t.addf("pattern %s: good machine -> %v, faulty machine -> %v (test: %v)",
		r.Pattern, r.GoodOut, r.FaultyOut, r.IsTest)
	t.addf("pattern %s: responses agree, not a test", r.NonTestPattern)
	return t.Render()
}

// Fig1 reproduces the paper's opening example.
func Fig1() Result {
	c := logic.New("and2")
	a := c.AddInput("A")
	b := c.AddInput("B")
	y := c.AddGate(logic.And, "C", a, b)
	c.MarkOutput(y)
	c.MustFinalize()
	f := fault.Fault{Gate: y, Pin: 0, SA: logic.One}
	good := sim.Eval(c, []bool{false, true}, nil)
	bad := fault.EvalFaulty(c, []bool{false, true}, nil, f)
	return Fig1Result{
		Pattern:        "A=0 B=1",
		GoodOut:        good[y],
		FaultyOut:      bad[y],
		IsTest:         good[y] != bad[y],
		NonTestPattern: "A=1 B=1",
	}
}

// UniverseResult covers §I.A/§I.B fault accounting.
type UniverseResult struct {
	Nets             int
	MultipleFaults   float64
	TwoInputGates    int
	SingleFaults     int
	CollapsedFaults  int
	CollapseRatio    float64
	SimulationPasses int
}

// Render prints the accounting.
func (r UniverseResult) Render() string {
	t := &text{title: "§I — fault universe and collapsing"}
	t.addf("multiple-fault space for %d nets: 3^N = %.3g combinations", r.Nets, r.MultipleFaults)
	t.addf("single stuck-at universe for %d two-input gates: %d faults (paper: 6000)", r.TwoInputGates, r.SingleFaults)
	t.addf("after equivalence collapsing: %d faults (ratio %.2f; paper: \"about 3000\")",
		r.CollapsedFaults, r.CollapseRatio)
	t.addf("fault simulation work: %d machine simulations (paper: 3001)", r.SimulationPasses)
	return t.Render()
}

// FaultUniverse reproduces the 1000-gate accounting on a NAND/NOR-era
// network — the logic family the paper's "about 3000" arithmetic
// assumes (XOR pins have no equivalent faults and would collapse less).
func FaultUniverse() Result {
	rng := rand.New(rand.NewSource(5))
	c := circuits.RandomCircuitTypes(rng, 20, 1000, 10, 2,
		[]logic.GateType{logic.And, logic.Nand, logic.Or, logic.Nor})
	u := fault.Universe(c)
	// Count only gate-pin faults to mirror the paper's 6·G accounting.
	gatePin := 0
	for _, f := range u {
		if c.Gates[f.Gate].Type != logic.Input {
			gatePin++
		} else if f.Pin == fault.Stem {
			// input stem faults excluded from the 6·G figure
			continue
		}
	}
	cl := fault.CollapseEquiv(c, u)
	return UniverseResult{
		Nets:             100,
		MultipleFaults:   cost.FaultCombinations(100),
		TwoInputGates:    1000,
		SingleFaults:     cost.SingleFaultCount(1000),
		CollapsedFaults:  len(cl.Reps),
		CollapseRatio:    float64(len(cl.Reps)) / float64(len(u)),
		SimulationPasses: cost.SimulationWork(3000),
	}
}

// Eq1Point is one measured size/time sample.
type Eq1Point struct {
	Gates         int
	ClassicalSecs float64 // serial fault simulation, no dropping, test length ~ N
	ModernSecs    float64 // PPSFP + dropping + random-first ATPG
}

// Eq1Result fits T = K·Nˣ to measured runtimes of the classical 1982
// flow (the regime Eq. (1) describes) and of this toolkit's optimized
// flow.
type Eq1Result struct {
	Points            []Eq1Point
	ClassicalExponent float64
	ModernExponent    float64
}

// Render prints the sweep and fits.
func (r Eq1Result) Render() string {
	t := &text{title: "Eq. (1) — T = K·N^x scaling of test generation and fault simulation"}
	tb := &table{header: []string{"gates", "classical serial flow (s)", "modern PPSFP flow (s)"}}
	for _, p := range r.Points {
		tb.add(fmt.Sprint(p.Gates), fmt.Sprintf("%.4f", p.ClassicalSecs), fmt.Sprintf("%.4f", p.ModernSecs))
	}
	t.addTable(tb)
	t.addf("classical flow exponent: %.2f (paper: ~3; N faults x N patterns x N-gate passes)",
		r.ClassicalExponent)
	t.addf("modern flow exponent   : %.2f (fault dropping + 64-way parallel patterns beat the 1982 law)",
		r.ModernExponent)
	return t.Render()
}

// Eq1Scaling measures the two flows over a multiplier family and fits
// power laws. sizes selects the multiplier widths (defaults keep the
// run around a second).
func Eq1Scaling(sizes []int) Result {
	if len(sizes) == 0 {
		sizes = []int{2, 3, 4, 5, 6}
	}
	var res Eq1Result
	var ns []int
	var classicalT, modernT []float64
	for _, n := range sizes {
		c := circuits.ArrayMultiplier(n)
		cl := fault.CollapseEquiv(c, fault.Universe(c))
		view := atpg.PrimaryView(c)

		// Classical 1982 flow: a test set whose length grows with the
		// fault count, graded by serial fault simulation without
		// dropping — N faults x N patterns x N-gate passes => N^3.
		rng := rand.New(rand.NewSource(1))
		pats := make([][]bool, len(cl.Reps))
		for i := range pats {
			p := make([]bool, len(c.PIs))
			for j := range p {
				p[j] = rng.Intn(2) == 1
			}
			pats[i] = p
		}
		start := time.Now()
		for _, f := range cl.Reps {
			for _, p := range pats {
				fault.DetectsCombinational(c, p, f)
			}
		}
		classical := time.Since(start).Seconds()

		// Modern flow: deterministic ATPG with random-first phase and
		// PPSFP dropping.
		start = time.Now()
		atpg.Generate(c, view, cl.Reps, atpg.Config{Engine: atpg.EnginePodem, RandomFirst: 128})
		modern := time.Since(start).Seconds()

		res.Points = append(res.Points, Eq1Point{Gates: c.NumGates(), ClassicalSecs: classical, ModernSecs: modern})
		ns = append(ns, c.NumGates())
		classicalT = append(classicalT, classical)
		modernT = append(modernT, modern)
	}
	if _, x, err := cost.FitPowerLaw(ns, classicalT); err == nil {
		res.ClassicalExponent = x
	}
	if _, x, err := cost.FitPowerLaw(ns, modernT); err == nil {
		res.ModernExponent = x
	}
	return res
}

// ExhaustiveResult reproduces the 2^(N+M) wall.
type ExhaustiveResult struct {
	Patterns float64
	Years    float64
}

// Render prints the §I.B example.
func (r ExhaustiveResult) Render() string {
	t := &text{title: "§I.B — exhaustive functional test wall"}
	t.addf("N=25 inputs, M=50 latches: 2^75 = %.3g patterns (paper: 3.8×10^22)", r.Patterns)
	t.addf("at 1 µs per pattern: %.3g years (paper: over a billion)", r.Years)
	return t.Render()
}

// Exhaustive reproduces the paper's example.
func Exhaustive() Result {
	p, y := cost.PaperExhaustiveExample()
	return ExhaustiveResult{Patterns: p, Years: y}
}

// RuleOfTenResult is the §I.C cost escalation.
type RuleOfTenResult struct{ Costs []float64 }

// Render prints the table.
func (r RuleOfTenResult) Render() string {
	t := &text{title: "§I.C — rule-of-ten cost escalation"}
	tb := &table{header: []string{"level", "cost per fault"}}
	for l := cost.Chip; l <= cost.Field; l++ {
		tb.add(l.String(), fmt.Sprintf("$%.2f", r.Costs[l]))
	}
	t.addTable(tb)
	return t.Render()
}

// RuleOfTen reproduces the $0.30 → $300 escalation.
func RuleOfTen() Result {
	return RuleOfTenResult{Costs: cost.RuleOfTenTable(0.30)}
}

func init() {
	register("fig01", "Fig. 1: stuck-at test on an AND gate", Fig1)
	register("universe", "§I: fault universe, collapsing, simulation work", FaultUniverse)
	register("eq1", "Eq. (1): T = K·N^x runtime scaling", func() Result { return Eq1Scaling(nil) })
	register("exhaustive", "§I.B: 2^(N+M) exhaustive testing wall", Exhaustive)
	register("ruleoften", "§I.C: rule-of-ten cost escalation", RuleOfTen)
}
