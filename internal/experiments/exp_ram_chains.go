package experiments

import (
	"fmt"
	"math/rand"

	"dft/internal/circuits"
	"dft/internal/delay"
	"dft/internal/fault"
	"dft/internal/logic"
	"dft/internal/lssd"
	"dft/internal/ramtest"
)

// RAMResult covers the embedded-RAM procedures of [20].
type RAMResult struct {
	Words        int
	Width        uint
	Faults       int
	Checkerboard float64
	MATSPlus     float64
	MarchCMinus  float64
	LenCB        int
	LenMATS      int
	LenMC        int
}

// Render prints the procedure comparison.
func (r RAMResult) Render() string {
	t := &text{title: "Embedded RAM ([20]) — march tests vs checkerboard"}
	t.addf("RAM %d×%d, %d modeled faults (stuck, transition, coupling, decoder)",
		r.Words, r.Width, r.Faults)
	tb := &table{header: []string{"procedure", "operations", "fault coverage"}}
	tb.add("checkerboard", fmt.Sprint(r.LenCB), fmt.Sprintf("%.1f%%", r.Checkerboard*100))
	tb.add("MATS+ (5N)", fmt.Sprint(r.LenMATS), fmt.Sprintf("%.1f%%", r.MATSPlus*100))
	tb.add("March C- (10N)", fmt.Sprint(r.LenMC), fmt.Sprintf("%.1f%%", r.MarchCMinus*100))
	t.addTable(tb)
	t.addf("the paper: scan cannot absorb embedded RAM — \"additional procedures are required\"")
	return t.Render()
}

// RAMTest runs the march-test experiment.
func RAMTest() Result {
	const words, width = 64, 8
	rng := rand.New(rand.NewSource(4))
	faults := ramtest.Universe(words, width, rng, 400)
	return RAMResult{
		Words:        words,
		Width:        width,
		Faults:       len(faults),
		Checkerboard: ramtest.Coverage(words, width, faults, ramtest.Checkerboard),
		MATSPlus:     ramtest.Coverage(words, width, faults, ramtest.MATSPlus().Run),
		MarchCMinus:  ramtest.Coverage(words, width, faults, ramtest.MarchCMinus().Run),
		LenCB:        4 * words,
		LenMATS:      ramtest.MATSPlus().Length(words),
		LenMC:        ramtest.MarchCMinus().Length(words),
	}
}

// ChainsResult covers flush tests and multi-chain scan.
type ChainsResult struct {
	FlushPass   bool
	BreakCaught bool
	Cycles1     int
	Cycles4     int
}

// Render prints the chain-integrity and cycle results.
func (r ChainsResult) Render() string {
	t := &text{title: "Scan-chain integrity and multiple chains"}
	t.addf("0011 flush through the gate-level chain: pass=%v; severed chain caught=%v",
		r.FlushPass, r.BreakCaught)
	t.addf("10 tests on a 12-FF design: 1 chain = %d cycles, 4 chains = %d cycles (%.1fx)",
		r.Cycles1, r.Cycles4, float64(r.Cycles1)/float64(r.Cycles4))
	return t.Render()
}

// ScanChains runs the chain experiments.
func ScanChains() Result {
	orig := circuits.Counter(12)
	d := lssd.NewDesign(orig, lssd.StyleMuxScan)
	flush := d.FlushTest().Pass

	d2 := lssd.NewDesign(orig, lssd.StyleMuxScan)
	scn, _ := d2.Scanned.NetByName("Q5_scn")
	caught := lssd.ChainFaultCaught(orig, lssd.StyleMuxScan,
		fault.Fault{Gate: scn, Pin: fault.Stem, SA: logic.Zero})

	_, p1 := lssd.InsertChains(orig, 1)
	_, p4 := lssd.InsertChains(orig, 4)
	return ChainsResult{
		FlushPass:   flush,
		BreakCaught: caught,
		Cycles1:     lssd.MultiChainCycles(p1, 10),
		Cycles4:     lssd.MultiChainCycles(p4, 10),
	}
}

func init() {
	register("ramtest", "embedded RAM march tests ([20])", RAMTest)
	register("scanchains", "scan-chain flush tests and multiple chains", ScanChains)
	register("delay", "transition-fault two-pattern testing ([81],[108])", DelayTest)
}

// DelayResult covers transition-fault (delay) testing ([81],[108]).
type DelayResult struct {
	Universe      int
	PairsDetected int
	SeqDetected   int
}

// Render prints the delay-test comparison.
func (r DelayResult) Render() string {
	t := &text{title: "Delay testing ([81],[108]) — transition faults need two-pattern tests"}
	t.addf("transition-fault universe (4-bit adder): %d", r.Universe)
	t.addf("dedicated (launch,capture) pairs detect : %d", r.PairsDetected)
	t.addf("an 8-pattern stuck-at set as pairs      : %d", r.SeqDetected)
	return t.Render()
}

// DelayTest runs the transition-fault experiment.
func DelayTest() Result {
	c := circuits.RippleAdder(4)
	u := delay.Universe(c)
	rng := rand.New(rand.NewSource(5))
	det, _ := delay.GradeTwoPattern(c, u, rng)
	pats := [][]bool{}
	for x := 0; x < 8; x++ {
		p := make([]bool, len(c.PIs))
		for i := range p {
			p[i] = (x>>uint(i%3))&1 == 1
		}
		pats = append(pats, p)
	}
	return DelayResult{
		Universe:      len(u),
		PairsDetected: det,
		SeqDetected:   delay.GradeSequence(c, u, pats),
	}
}
