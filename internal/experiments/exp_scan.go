package experiments

import (
	"time"

	"dft/internal/atpg"
	"dft/internal/circuits"
	"dft/internal/fault"
	"dft/internal/lssd"
	"dft/internal/rascan"
	"dft/internal/scanpath"
	"dft/internal/scanset"
	"dft/internal/sim"
)

// LSSDResult covers Figs. 9–12: the central scan payoff.
type LSSDResult struct {
	Circuit        string
	SeqCoverage    float64 // random sequences, unscanned
	ScanCoverage   float64 // combinational ATPG, full scan
	ScanSecs       float64
	OverheadLSSD   float64
	OverheadMux    float64
	TesterCycles   int
	ChainLength    int
	EndToEndChecks int // faults verified through actual scan hardware
}

// Render prints the comparison.
func (r LSSDResult) Render() string {
	t := &text{title: "Figs. 9–12 — LSSD: scan reduces sequential ATPG to combinational"}
	t.addf("circuit %s (chain length %d)", r.Circuit, r.ChainLength)
	t.addf("random sequences, no scan : coverage %.1f%%", r.SeqCoverage*100)
	t.addf("full-scan ATPG            : coverage %.1f%% in %.3fs", r.ScanCoverage*100, r.ScanSecs)
	t.addf("gate overhead             : LSSD %.1f%%, mux-scan %.1f%% (paper: 4-20%%)",
		r.OverheadLSSD*100, r.OverheadMux*100)
	t.addf("serialization             : %d tester cycles for the scan test set", r.TesterCycles)
	t.addf("end-to-end through scan hardware: %d faults detected", r.EndToEndChecks)
	return t.Render()
}

// Fig9to12LSSD runs the scan experiments. The coverage comparison uses
// a deep counter (its high bits toggle once per 2^9 cycles, far beyond
// the 200-cycle budget, so sequential testing cannot reach them); the
// overhead numbers come from a register-plus-datapath pipeline, the
// structure the paper's 4–20% experience refers to.
func Fig9to12LSSD() Result {
	c := circuits.Counter(10)
	cl := fault.CollapseEquiv(c, fault.Universe(c))

	seq := randomPatterns(len(c.PIs), 200, 31)
	seqRes := fault.SimulateSequence(c, cl.Reps, seq)

	start := time.Now()
	scanRes := atpg.Generate(c, atpg.FullScanView(c), cl.Reps, atpg.Config{
		Engine: atpg.EnginePodem, RandomFirst: 128,
	})
	scanSecs := time.Since(start).Seconds()

	alu := circuits.SequencedALU(8)
	lc, _ := lssd.Insert(alu, lssd.StyleLSSD)
	mc, _ := lssd.Insert(alu, lssd.StyleMuxScan)
	d := lssd.NewDesign(c, lssd.StyleLSSD)

	// End-to-end: apply a handful of scan tests to good and faulty
	// hardware models.
	checks := 0
	tried := 0
	view := atpg.FullScanView(c)
	for _, f := range cl.Reps {
		if tried >= 10 {
			break
		}
		if !c.Gates[f.Gate].Type.IsCombinational() {
			continue
		}
		tried++
		cube, err := atpg.Podem(c, view, f, atpg.PodemConfig{})
		if err != nil {
			continue
		}
		full := cube.Bools()
		st := lssd.ScanTest{PI: full[:len(c.PIs)], State: full[len(c.PIs):]}
		d.Reset()
		want := d.RunTest(st)
		bad := lssd.NewDesign(c, lssd.StyleLSSD)
		bad.InjectFault(f)
		got := bad.RunTest(st)
		differ := false
		for i := range want.PO {
			differ = differ || want.PO[i] != got.PO[i]
		}
		for i := range want.Captured {
			differ = differ || want.Captured[i] != got.Captured[i]
		}
		if differ {
			checks++
		}
	}

	return LSSDResult{
		Circuit:        c.Name,
		SeqCoverage:    seqRes.Coverage(),
		ScanCoverage:   scanRes.RawCover,
		ScanSecs:       scanSecs,
		OverheadLSSD:   lssd.Overhead(alu, lc),
		OverheadMux:    lssd.Overhead(alu, mc),
		TesterCycles:   d.TestCycles(len(scanRes.Patterns)),
		ChainLength:    c.NumDFFs(),
		EndToEndChecks: checks,
	}
}

// ScanPathResult covers Figs. 13–14.
type ScanPathResult struct {
	RaceSafe        bool
	RaceUnsafe      bool
	SelectedShifts  bool
	BlockedOutput   bool
	LargestBefore   int
	LargestAfter    int
	BlockingFFsUsed int
}

// Render prints the raceless-FF and partitioning outcomes.
func (r ScanPathResult) Render() string {
	t := &text{title: "Figs. 13–14 — Scan Path: raceless D-FF, card selection, backtrace partitioning"}
	t.addf("race margin positive (slow feedback)  : safe=%v", r.RaceSafe)
	t.addf("race margin negative (fast feedback)  : safe=%v (the exposure LSSD eliminates)", r.RaceUnsafe)
	t.addf("X·Y card selection: selected card shifts=%v, deselected output blocked=%v",
		r.SelectedShifts, r.BlockedOutput)
	t.addf("backtrace partitioning: largest cone %d gates -> %d after %d blocking flip-flops",
		r.LargestBefore, r.LargestAfter, r.BlockingFFsUsed)
	return t.Render()
}

// Fig13Scanpath runs the Scan Path experiments.
func Fig13Scanpath() Result {
	r := ScanPathResult{
		RaceSafe:   scanpath.Raceless(2.0, 1.0),
		RaceUnsafe: scanpath.Raceless(0.5, 1.0),
	}
	a := scanpath.NewCard("A", scanpath.NewChip("a1", 3))
	b := scanpath.NewCard("B", scanpath.NewChip("b1", 3))
	sub := &scanpath.Subsystem{Cards: []*scanpath.Card{a, b}}
	_ = sub.Select("A")
	sub.Shift(true)
	r.SelectedShifts = a.Chips[0].State()[0]
	r.BlockedOutput = !b.TestOutput() && !b.Chips[0].State()[0]

	c := circuits.RippleAdder(16)
	before := scanpath.LargestPartition(scanpath.Backtrace(c))
	capped, added := scanpath.CapPartitions(c, before/3)
	r.LargestBefore = before
	r.LargestAfter = scanpath.LargestPartition(scanpath.Backtrace(capped))
	r.BlockingFFsUsed = added
	return r
}

// ScanSetResult covers Fig. 15.
type ScanSetResult struct {
	SnapshotValue    uint
	MachineDisturbed bool
	CovPrimary       float64
	CovPartial       float64
	CovFull          float64
}

// Render prints the snapshot and coverage band.
func (r ScanSetResult) Render() string {
	t := &text{title: "Fig. 15 — Scan/Set: shadow register snapshot and partial-scan coverage"}
	t.addf("snapshot of running counter read %d; machine disturbed=%v", r.SnapshotValue, r.MachineDisturbed)
	t.addf("ATPG coverage: pins only %.1f%% < partial Scan/Set %.1f%% < full scan %.1f%%",
		r.CovPrimary*100, r.CovPartial*100, r.CovFull*100)
	return t.Render()
}

// Fig15ScanSet runs the Scan/Set experiments.
func Fig15ScanSet() Result {
	c := circuits.Counter(8)
	m := sim.NewMachine(c)
	ss := scanset.New(m, c.DFFs, nil)
	for i := 0; i < 5; i++ {
		m.Step([]bool{true})
	}
	snap := ss.Snapshot()
	var v uint
	for i, b := range snap {
		if b {
			v |= 1 << uint(i)
		}
	}
	stBefore := m.State()
	m.Apply([]bool{true})
	disturbed := false
	for i, b := range m.State() {
		if b != stBefore[i] {
			disturbed = true
		}
	}

	cl := fault.CollapseEquiv(c, fault.Universe(c))
	gen := func(view atpg.View) float64 {
		res := atpg.Generate(c, view, cl.Reps, atpg.Config{Engine: atpg.EnginePodem, MaxBacktracks: 2000})
		return res.RawCover
	}
	return ScanSetResult{
		SnapshotValue:    v,
		MachineDisturbed: disturbed,
		CovPrimary:       gen(atpg.PrimaryView(c)),
		CovPartial:       gen(atpg.PartialScanView(c, c.DFFs[:4])),
		CovFull:          gen(atpg.FullScanView(c)),
	}
}

// RASResult covers Figs. 16–18.
type RASResult struct {
	Latches        int
	GatesPerLatch  float64
	Pins           int
	PinsSerialized int
	SingleOpCost   int
	SerialCost     int
}

// Render prints the overhead and access comparison.
func (r RASResult) Render() string {
	t := &text{title: "Figs. 16–18 — Random-Access Scan: addressable latches"}
	t.addf("%d latches: %.1f gates/latch overhead (paper: 3-4)", r.Latches, r.GatesPerLatch)
	t.addf("pins: %d direct (paper: 10-20), %d with serialized address (paper: 6)",
		r.Pins, r.PinsSerialized)
	t.addf("touching one latch: %d addressed op vs %d serial shifts", r.SingleOpCost, r.SerialCost)
	return t.Render()
}

// Fig16to18RAS runs the Random-Access Scan experiments.
func Fig16to18RAS() Result {
	n := 64
	c := circuits.Counter(n)
	r := rascan.New(sim.NewMachine(c), rascan.PolarityHold)
	r.Write(n-1, true)
	o := rascan.EstimateOverhead(n)
	return RASResult{
		Latches:        n,
		GatesPerLatch:  o.GatesPerLatch,
		Pins:           o.Pins,
		PinsSerialized: o.PinsSerialized,
		SingleOpCost:   r.AddressLoads,
		SerialCost:     n,
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func init() {
	register("fig09-12", "Figs. 9-12: LSSD", Fig9to12LSSD)
	register("fig13-14", "Figs. 13-14: Scan Path", Fig13Scanpath)
	register("fig15", "Fig. 15: Scan/Set", Fig15ScanSet)
	register("fig16-18", "Figs. 16-18: Random-Access Scan", Fig16to18RAS)
}
