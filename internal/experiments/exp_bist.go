package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"dft/internal/bilbo"
	"dft/internal/circuits"
	"dft/internal/fault"
	"dft/internal/logic"
	"dft/internal/syndrome"
	"dft/internal/walsh"
)

// BILBOResult covers Figs. 19–21.
type BILBOResult struct {
	ModeDemo      [4]string
	Sig1, Sig2    uint64
	FaultCaught   bool
	CoverageCurve []struct {
		Patterns int
		Coverage float64
	}
	DataVolumeScan  int
	DataVolumeBILBO int
}

// Render prints modes, signatures, and the coverage series.
func (r BILBOResult) Render() string {
	t := &text{title: "Figs. 19–21 — BILBO: modes and two-network self-test"}
	tb := &table{header: []string{"B1B2", "mode", "behavior check"}}
	tb.add("11", "system register", r.ModeDemo[0])
	tb.add("00", "scan shift (via inverters)", r.ModeDemo[1])
	tb.add("10", "MISR / PN generator", r.ModeDemo[2])
	tb.add("01", "reset", r.ModeDemo[3])
	t.addTable(tb)
	t.addf("golden session signatures: C1 phase %#x, C2 phase %#x", r.Sig1, r.Sig2)
	t.addf("injected fault caught by signature mismatch: %v", r.FaultCaught)
	cv := &table{header: []string{"PN patterns", "fault coverage"}}
	for _, p := range r.CoverageCurve {
		cv.add(fmt.Sprint(p.Patterns), fmt.Sprintf("%.1f%%", p.Coverage*100))
	}
	t.addTable(cv)
	t.addf("test data volume for 100 patterns: scan %d bits vs BILBO %d bits (factor %d; paper: 100)",
		r.DataVolumeScan, r.DataVolumeBILBO, r.DataVolumeScan/r.DataVolumeBILBO)
	return t.Render()
}

// Fig19to21BILBO runs the BILBO experiments.
func Fig19to21BILBO() Result {
	var r BILBOResult
	// Mode demos.
	reg := bilbo.NewRegister(8)
	z := []bool{true, false, true, false, true, false, true, false}
	reg.Clock(bilbo.ModeSystem, z, false)
	r.ModeDemo[0] = fmt.Sprintf("loaded %#02x", reg.QWord())
	reg.Clock(bilbo.ModeShift, nil, true)
	r.ModeDemo[1] = fmt.Sprintf("shifted, Q=%#02x", reg.QWord())
	reg.Clock(bilbo.ModeSignature, z, false)
	r.ModeDemo[2] = fmt.Sprintf("compressed, Q=%#02x", reg.QWord())
	reg.Clock(bilbo.ModeReset, nil, false)
	r.ModeDemo[3] = fmt.Sprintf("cleared, Q=%#02x", reg.QWord())

	c1 := circuits.RippleAdder(3)
	c2 := circuits.ParityTree(8)
	st := bilbo.NewSelfTest(c1, c2, 8, 8, 200)
	r.Sig1, r.Sig2 = st.GoodSignatures()
	s0, _ := c1.NetByName("S0")
	r.FaultCaught = st.Detects(1, fault.Fault{Gate: s0, Pin: fault.Stem, SA: logic.One})

	cl := fault.CollapseEquiv(c1, fault.Universe(c1))
	for _, n := range []int{8, 32, 128, 512} {
		stN := bilbo.NewSelfTest(c1, c2, 8, 8, n)
		cs := stN.MeasureCoverage(cl.Reps)
		r.CoverageCurve = append(r.CoverageCurve, struct {
			Patterns int
			Coverage float64
		}{n, cs.Coverage()})
	}
	r.DataVolumeScan, r.DataVolumeBILBO = bilbo.DataVolume(100, 100)
	return r
}

// PLAResult covers Fig. 22.
type PLAResult struct {
	Series []struct {
		Patterns  int
		PLACov    float64
		RandomCov float64
	}
	ProductWidth int
}

// Render prints the random-pattern resistance series.
func (r PLAResult) Render() string {
	t := &text{title: "Fig. 22 — PLAs resist random patterns (wide AND fan-in)"}
	tb := &table{header: []string{"patterns", "PLA coverage", "fan-in-4 logic coverage"}}
	for _, p := range r.Series {
		tb.add(fmt.Sprint(p.Patterns), fmt.Sprintf("%.1f%%", p.PLACov*100), fmt.Sprintf("%.1f%%", p.RandomCov*100))
	}
	t.addTable(tb)
	t.addf("each %d-literal product term fires with probability 2^-%d per random pattern",
		r.ProductWidth, r.ProductWidth)
	return t.Render()
}

// Fig22PLA runs the PLA-vs-random-logic coverage curves.
func Fig22PLA() Result {
	rng := rand.New(rand.NewSource(7))
	pla := circuits.RandomPLA(rng, 20, 8, 4, 20)
	nice := circuits.RandomCircuit(rng, 20, 120, 4, 4)
	plaF := fault.CollapseEquiv(pla, fault.Universe(pla)).Reps
	niceF := fault.CollapseEquiv(nice, fault.Universe(nice)).Reps
	r := PLAResult{ProductWidth: 20}
	for _, n := range []int{64, 256, 1024, 4096} {
		pats := randomPatterns(20, n, int64(n))
		pr, _ := fault.Simulate(context.Background(), pla, plaF, pats, fault.Options{})
		nr, _ := fault.Simulate(context.Background(), nice, niceF, pats, fault.Options{})
		r.Series = append(r.Series, struct {
			Patterns  int
			PLACov    float64
			RandomCov float64
		}{n, pr.Coverage(), nr.Coverage()})
	}
	return r
}

// SyndromeResult covers Fig. 23.
type SyndromeResult struct {
	GateSyndromes  []string
	MuxUntestable  int
	ExtraInputs    int
	AfterRemaining int
	DataWords      int
	FullBits       int
}

// Render prints the syndrome experiments.
func (r SyndromeResult) Render() string {
	t := &text{title: "Fig. 23 — syndrome testing"}
	t.addf("elementary syndromes: %v", r.GateSyndromes)
	t.addf("2:1 mux: %d detectable-but-syndrome-untestable fault class(es)", r.MuxUntestable)
	t.addf("after adding %d held extra input(s): %d remain (paper: at most 1-2 inputs for real networks)",
		r.ExtraInputs, r.AfterRemaining)
	t.addf("test data volume: %d count word(s) vs %d raw response bits", r.DataWords, r.FullBits)
	return t.Render()
}

// Fig23Syndrome runs the syndrome experiments.
func Fig23Syndrome() Result {
	var r SyndromeResult
	// Elementary syndromes.
	c := circuits.RippleAdder(1)
	_, syn := syndrome.Syndromes(c)
	r.GateSyndromes = append(r.GateSyndromes,
		fmt.Sprintf("adder1 S0=%.2f", syn[0]), fmt.Sprintf("adder1 COUT=%.2f", syn[1]))

	mux := circuits.Mux(1)
	cl := fault.CollapseEquiv(mux, fault.Universe(mux))
	un := syndrome.Untestable(syndrome.Classify(mux, cl.Reps))
	r.MuxUntestable = len(un)
	_, added, remaining := syndrome.MakeTestable(mux, 2)
	r.ExtraInputs = added
	r.AfterRemaining = remaining
	r.DataWords, r.FullBits = syndrome.DataVolume(circuits.RippleAdder(4))
	return r
}

// WalshResult covers Table I and Fig. 25.
type WalshResult struct {
	Rows          []walsh.TableIRow
	CAll          int
	C0            int
	InputChecked  int
	InputDetected int
	Coverage      float64
}

// Render prints the table and the two-coefficient results.
func (r WalshResult) Render() string {
	t := &text{title: "Table I / Figs. 24–25 — testing by verifying Walsh coefficients"}
	tb := &table{header: []string{"x1x2x3", "W2", "W1,3", "F", "W2F", "W13F", "WALL", "WALLF"}}
	for _, row := range r.Rows {
		tb.add(fmt.Sprintf("%d%d%d", row.X1, row.X2, row.X3),
			fmt.Sprintf("%+d", row.W2), fmt.Sprintf("%+d", row.W13), fmt.Sprint(row.F),
			fmt.Sprintf("%+d", row.W2F), fmt.Sprintf("%+d", row.W13F),
			fmt.Sprintf("%+d", row.WAll), fmt.Sprintf("%+d", row.WAllF))
	}
	t.addTable(tb)
	t.addf("note: the paper's printed WALLF column is inconsistent with its own WALL·F± convention;")
	t.addf("we print the consistent values (Σ WAllF = ±|C_all| = 4 for the Fig. 24 majority).")
	t.addf("measured C_all = %d, C_0 = %d", r.CAll, r.C0)
	t.addf("input stuck-at theorem: %d/%d primary-input faults detected via C_all", r.InputDetected, r.InputChecked)
	t.addf("two-coefficient tester coverage on all collapsed faults: %.1f%%", r.Coverage*100)
	return t.Render()
}

// TableIWalsh runs the Walsh experiments.
func TableIWalsh() Result {
	c := circuits.Majority(3)
	checked, detected, _ := walsh.InputFaultTheorem(c, 0)
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	return WalshResult{
		Rows:          walsh.TableI(),
		CAll:          walsh.CAll(c, 0, nil),
		C0:            walsh.C0(c, 0, nil),
		InputChecked:  checked,
		InputDetected: detected,
		Coverage:      walsh.FaultCoverage(c, cl.Reps),
	}
}

func init() {
	register("fig19-21", "Figs. 19-21: BILBO self-test", Fig19to21BILBO)
	register("fig22", "Fig. 22: PLA random-pattern resistance", Fig22PLA)
	register("fig23", "Fig. 23: syndrome testing", Fig23Syndrome)
	register("tableI", "Table I / Figs. 24-25: Walsh coefficients", TableIWalsh)
}
