package walsh

import (
	"testing"

	"dft/internal/circuits"
	"dft/internal/fault"
	"dft/internal/logic"
	"dft/internal/syndrome"
)

// TestTableI reproduces the paper's Table I verbatim (rows in x1,x2,x3
// counting order).
func TestTableI(t *testing.T) {
	rows := TableI()
	if len(rows) != 8 {
		t.Fatalf("%d rows", len(rows))
	}
	// The W2/W13/F/W2F/W13F/WALL columns follow the paper's printed
	// Table I exactly. The printed WALLF column is internally
	// inconsistent with the table's own convention (WALLF must equal
	// WALL·F±); we generate the consistent values, under which
	// Σ WAllF = +4, matching the majority function's true |C_all| = 4
	// (Parseval: 3 singleton coefficients of ±4 plus C_all = ±4 gives
	// Σ C² = 64).
	want := []TableIRow{
		{0, 0, 0, -1, +1, 0, +1, -1, +1, -1},
		{0, 0, 1, -1, -1, 0, +1, +1, -1, +1},
		{0, 1, 0, +1, +1, 0, -1, -1, -1, +1},
		{0, 1, 1, +1, -1, 1, +1, -1, +1, +1},
		{1, 0, 0, -1, -1, 0, +1, +1, -1, +1},
		{1, 0, 1, -1, +1, 1, -1, +1, +1, +1},
		{1, 1, 0, +1, -1, 1, +1, -1, +1, +1},
		{1, 1, 1, +1, +1, 1, +1, +1, -1, -1},
	}
	for i, w := range want {
		if rows[i] != w {
			t.Fatalf("row %d = %+v, want %+v", i, rows[i], w)
		}
	}
	sum := 0
	for _, r := range rows {
		sum += r.WAllF
	}
	if sum != 4 {
		t.Fatalf("Σ WAllF = %d, want +4 (paper sign; standard sign is -4)", sum)
	}
}

// TestMajorityCoefficients checks the computed coefficients for the
// Fig. 24 function: |C_all| = 4 and C_0 = 0 for the 3-majority.
func TestMajorityCoefficients(t *testing.T) {
	c := circuits.Majority(3)
	if got := CAll(c, 0, nil); got != -4 {
		t.Fatalf("C_all = %d, want -4 (standard sign; paper sign is +4)", got)
	}
	if got := C0(c, 0, nil); got != 0 {
		t.Fatalf("C_0 = %d, want 0 (majority has K = 4 of 8)", got)
	}
}

func TestSpectrumMatchesCoefficient(t *testing.T) {
	c := circuits.C17()
	for out := 0; out < len(c.POs); out++ {
		spec := Spectrum(c, out, nil)
		for mask := 0; mask < len(spec); mask++ {
			var subset []int
			for i := 0; i < len(c.PIs); i++ {
				if mask>>uint(i)&1 == 1 {
					subset = append(subset, i)
				}
			}
			if got := Coefficient(c, out, subset, nil); got != spec[mask] {
				t.Fatalf("out %d mask %05b: coefficient %d vs spectrum %d", out, mask, got, spec[mask])
			}
		}
	}
}

// TestParsevalOnSpectrum: Σ C_S² = 2ⁿ·2ⁿ for a ±1 function — the
// Walsh basis is orthogonal with norm 2ⁿ.
func TestParsevalOnSpectrum(t *testing.T) {
	c := circuits.Majority(3)
	spec := Spectrum(c, 0, nil)
	sum := 0
	for _, v := range spec {
		sum += v * v
	}
	if sum != 64 {
		t.Fatalf("Σ C² = %d, want 64", sum)
	}
}

func TestC0RelatesToSyndrome(t *testing.T) {
	// C_0 = 2K - 2ⁿ: "equivalent to the Syndrome in magnitude times 2ⁿ".
	c := circuits.RippleAdder(2)
	counts, _ := syndrome.Syndromes(c)
	n := len(c.PIs)
	for j := range c.POs {
		want := 2*counts[j] - (1 << uint(n))
		if got := C0(c, j, nil); got != want {
			t.Fatalf("output %d: C0 = %d, want %d", j, got, want)
		}
	}
}

func TestInputFaultTheorem(t *testing.T) {
	c := circuits.Majority(3)
	checked, detected, goodCAll := InputFaultTheorem(c, 0)
	if goodCAll == 0 {
		t.Fatal("majority C_all must be nonzero")
	}
	if checked != 6 || detected != 6 {
		t.Fatalf("detected %d of %d input faults; theorem says all when C_all != 0", detected, checked)
	}
	// Verify the mechanism: a stuck input zeroes C_all.
	pi := c.PIs[0]
	f := fault.Fault{Gate: pi, Pin: fault.Stem, SA: logic.One}
	if got := CAll(c, 0, &f); got != 0 {
		t.Fatalf("faulty C_all = %d, want 0 (function independent of stuck input)", got)
	}
}

// TestCAllZeroBlindSpot: when the good C_all is already 0 (the output
// ignores an input), input faults on that line escape the C_all check —
// the case where the paper requires network modification.
func TestCAllZeroBlindSpot(t *testing.T) {
	c := logic.New("partial")
	a := c.AddInput("a")
	c.AddInput("b") // unused by the output
	c.MarkOutput(c.AddGate(logic.Buf, "y", a))
	c.MustFinalize()
	if got := CAll(c, 0, nil); got != 0 {
		t.Fatalf("C_all = %d, want 0 for an output ignoring an input", got)
	}
	_, detected, _ := InputFaultTheorem(c, 0)
	if detected != 0 {
		t.Fatalf("C_all check detected %d faults despite C_all = 0", detected)
	}
}

func TestTesterPassAndCatch(t *testing.T) {
	c := circuits.Majority(3)
	tst := &Tester{C: c, Out: 0}
	if !tst.Pass(nil) {
		t.Fatal("good machine failed")
	}
	m0, _ := c.NetByName("M0")
	f := fault.Fault{Gate: m0, Pin: fault.Stem, SA: logic.One}
	if tst.Pass(&f) {
		t.Fatal("tester missed an internal stuck fault that shifts C0")
	}
}

func TestTesterMeasureMatchesDirect(t *testing.T) {
	c := circuits.C17()
	for out := 0; out < 2; out++ {
		tst := &Tester{C: c, Out: out}
		if tst.MeasureCAll(nil) != CAll(c, out, nil) {
			t.Fatalf("out %d: hardware C_all path disagrees with direct computation", out)
		}
		if tst.MeasureC0(nil) != C0(c, out, nil) {
			t.Fatalf("out %d: hardware C_0 path disagrees", out)
		}
	}
}

func TestFaultCoverageMajority(t *testing.T) {
	c := circuits.Majority(3)
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	cov := FaultCoverage(c, cl.Reps)
	if cov < 0.9 {
		t.Fatalf("two-coefficient coverage on majority = %.3f, want >= 0.9", cov)
	}
}

func TestExhaustiveLimit(t *testing.T) {
	c := circuits.RippleAdder(12) // 25 inputs
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic above input limit")
		}
	}()
	CAll(c, 0, nil)
}
