// Package walsh implements testing by verifying Walsh coefficients
// (Susskind [117]; Table I, Figs. 24–25): with the logical values 0/1
// mapped to the arithmetic values -1/+1, the Walsh coefficient C_S of
// an output is the correlation of the output with the parity of the
// input subset S. Measuring just C_0 and C_all — two up/down counts
// over an exhaustive pattern session — detects every stuck-at fault on
// the primary inputs when C_all ≠ 0, and with structural side
// conditions all single stuck-at faults.
package walsh

import (
	"fmt"
	"math/bits"

	"dft/internal/fault"
	"dft/internal/logic"
	"dft/internal/sim"
)

// MaxInputs bounds exhaustive enumeration.
const MaxInputs = 22

// arith maps a logic level to ±1.
func arith(b bool) int {
	if b {
		return 1
	}
	return -1
}

// WalshFn evaluates the Walsh function W_S at input pattern x (bit i of
// x = input i): the product of the ±1 images of the inputs in S.
func WalshFn(subset []int, x uint64) int {
	w := 1
	for _, i := range subset {
		w *= arith(x>>uint(i)&1 == 1)
	}
	return w
}

// outputsExhaustive enumerates all 2ⁿ patterns, invoking visit with
// the pattern index and each output's value. A non-nil fault is
// injected.
func outputsExhaustive(c *logic.Circuit, f *fault.Fault, visit func(x uint64, outs uint64)) {
	n := len(c.PIs)
	if n > MaxInputs {
		panic(fmt.Sprintf("walsh: %d inputs exceed exhaustive limit %d", n, MaxInputs))
	}
	ps := fault.NewParallelSim(c)
	total := uint64(1) << uint(n)
	// Packed enumeration: each 64-pattern block is synthesized from
	// periodic bit masks instead of materializing scalar vectors.
	free := make([]int, n)
	for i := range free {
		free[i] = i
	}
	words := make([]uint64, n)
	for base := uint64(0); base < total; base += 64 {
		kk := ps.LoadPackedBlock(words, sim.ExhaustiveBlock(words, free, base))
		if f != nil {
			ps.FaultMask(*f)
		}
		for k := 0; k < kk; k++ {
			var outs uint64
			for j, po := range c.POs {
				var w uint64
				if f != nil {
					w = ps.FaultyWord(po)
				} else {
					w = ps.GoodWord(po)
				}
				if w>>uint(k)&1 == 1 {
					outs |= 1 << uint(j)
				}
			}
			visit(base+uint64(k), outs)
		}
	}
}

// Coefficient computes C_S = Σ_x W_S(x)·F±(x) for output out of the
// (possibly faulty) circuit.
func Coefficient(c *logic.Circuit, out int, subset []int, f *fault.Fault) int {
	sum := 0
	outputsExhaustive(c, f, func(x uint64, outs uint64) {
		sum += WalshFn(subset, x) * arith(outs>>uint(out)&1 == 1)
	})
	return sum
}

// C0 computes the zeroth coefficient: Σ F± = 2K - 2ⁿ (syndrome in
// magnitude, as the paper notes).
func C0(c *logic.Circuit, out int, f *fault.Fault) int {
	return Coefficient(c, out, nil, f)
}

// CAll computes the all-variables coefficient.
func CAll(c *logic.Circuit, out int, f *fault.Fault) int {
	subset := make([]int, len(c.PIs))
	for i := range subset {
		subset[i] = i
	}
	return Coefficient(c, out, subset, f)
}

// Spectrum computes every coefficient C_S for output out (n ≤ 16),
// indexed by the subset bitmask, using the fast Walsh-Hadamard
// transform.
func Spectrum(c *logic.Circuit, out int, f *fault.Fault) []int {
	n := len(c.PIs)
	if n > 16 {
		panic("walsh: Spectrum limited to 16 inputs")
	}
	vals := make([]int, 1<<uint(n))
	outputsExhaustive(c, f, func(x uint64, outs uint64) {
		vals[x] = arith(outs>>uint(out)&1 == 1)
	})
	// In-place WHT over the ±1 vector: result[mask] = Σ W_mask(x)·F±(x).
	for bit := 0; bit < n; bit++ {
		step := 1 << uint(bit)
		for i := 0; i < len(vals); i += 2 * step {
			for j := i; j < i+step; j++ {
				a, b := vals[j], vals[j+step]
				vals[j], vals[j+step] = a+b, b-a
			}
		}
	}
	return vals
}

// TableIRow is one row of the paper's Table I for the Fig. 24 function
// (the 3-input majority).
type TableIRow struct {
	X1, X2, X3 int
	W2, W13    int
	F          int // logical 0/1
	W2F, W13F  int
	WAll       int // as printed in the paper (negated product; see note)
	WAllF      int
}

// TableI regenerates the paper's Table I. Two source-fidelity notes:
// the printed WALL column is the negation of ∏xᵢ± under the paper's
// stated 0→-1 association (we reproduce the printed sign), and the
// printed WALLF column is internally inconsistent with WALL·F± — we
// emit the consistent values, under which Σ WAllF = +4 = |C_all| of
// the Fig. 24 majority function.
func TableI() []TableIRow {
	maj := func(a, b, c int) int {
		if a+b+c >= 2 {
			return 1
		}
		return 0
	}
	var rows []TableIRow
	for x1 := 0; x1 <= 1; x1++ {
		for x2 := 0; x2 <= 1; x2++ {
			for x3 := 0; x3 <= 1; x3++ {
				f := maj(x1, x2, x3)
				fpm := arith(f == 1)
				w2 := arith(x2 == 1)
				w13 := arith(x1 == 1) * arith(x3 == 1)
				wall := -(arith(x1 == 1) * arith(x2 == 1) * arith(x3 == 1))
				rows = append(rows, TableIRow{
					X1: x1, X2: x2, X3: x3,
					W2: w2, W13: w13, F: f,
					W2F: w2 * fpm, W13F: w13 * fpm,
					WAll: wall, WAllF: wall * fpm,
				})
			}
		}
	}
	return rows
}

// Tester models Fig. 25: a driving counter applies all 2ⁿ patterns;
// the counter's parity line p selects count direction through the
// up/down response counter; two passes measure C_all and C_0.
type Tester struct {
	C   *logic.Circuit
	Out int
}

// MeasureCAll runs the C_all pass: the response counter counts up when
// W_all(x)·F(x) = +1 and down otherwise.
func (t *Tester) MeasureCAll(f *fault.Fault) int {
	count := 0
	n := len(t.C.PIs)
	outputsExhaustive(t.C, f, func(x uint64, outs uint64) {
		// Parity p of the driving counter: W_all = (-1)^(n - ones(x)).
		wall := 1
		if (n-bits.OnesCount64(x))%2 == 1 {
			wall = -1
		}
		count += wall * arith(outs>>uint(t.Out)&1 == 1)
	})
	return count
}

// MeasureC0 runs the C_0 pass (parity line ignored).
func (t *Tester) MeasureC0(f *fault.Fault) int {
	count := 0
	outputsExhaustive(t.C, f, func(x uint64, outs uint64) {
		count += arith(outs>>uint(t.Out)&1 == 1)
	})
	return count
}

// Pass compares the unit's two measured coefficients against the good
// machine's.
func (t *Tester) Pass(f *fault.Fault) bool {
	return t.MeasureCAll(f) == t.MeasureCAll(nil) && t.MeasureC0(f) == t.MeasureC0(nil)
}

// InputFaultTheorem verifies Susskind's central result on a circuit:
// if C_all ≠ 0 for some output, then every stuck-at fault on a primary
// input drives that output's C_all to 0 (the faulty function no longer
// depends on the stuck input), hence is detected. It returns the
// number of input faults checked and detected.
func InputFaultTheorem(c *logic.Circuit, out int) (checked, detected int, goodCAll int) {
	goodCAll = CAll(c, out, nil)
	for _, pi := range c.PIs {
		for _, sa := range []logic.V{logic.Zero, logic.One} {
			f := fault.Fault{Gate: pi, Pin: fault.Stem, SA: sa}
			checked++
			if CAll(c, out, &f) != goodCAll {
				detected++
			}
		}
	}
	return
}

// FaultCoverage measures what fraction of the given faults the
// two-coefficient tester catches on any output.
func FaultCoverage(c *logic.Circuit, faults []fault.Fault) float64 {
	if len(faults) == 0 {
		return 0
	}
	type ref struct{ c0, call int }
	refs := make([]ref, len(c.POs))
	for j := range c.POs {
		tst := &Tester{C: c, Out: j}
		refs[j] = ref{tst.MeasureC0(nil), tst.MeasureCAll(nil)}
	}
	caught := 0
	for _, f := range faults {
		ff := f
		for j := range c.POs {
			tst := &Tester{C: c, Out: j}
			if tst.MeasureC0(&ff) != refs[j].c0 || tst.MeasureCAll(&ff) != refs[j].call {
				caught++
				break
			}
		}
	}
	return float64(caught) / float64(len(faults))
}
