package testability

import (
	"sort"

	"dft/internal/fault"
	"dft/internal/logic"
)

// COP holds view-aware Parker-McCluskey probability metrics: P is the
// per-net probability of logic 1 under random patterns on the view
// inputs, Obs the per-net probability that a value change propagates
// to some view output. Unlike SignalProbabilities/Observabilities,
// which assume the primary view with equiprobable flip-flops, ViewCOP
// mirrors the fault engine's view semantics exactly: unlisted source
// elements are held at 0 (probability 0), listed ones are equiprobable,
// and observability is seeded from the view outputs — which may be
// internal nets (scanned D inputs, test-point taps), not just POs.
type COP struct {
	P   []float64
	Obs []float64
}

// ViewCOP computes COP signal probabilities and observabilities under
// an explicit view, the basis for the advisor's predicted-gain scoring.
func ViewCOP(c *logic.Circuit, inputs, outputs []int) *COP {
	n := c.NumNets()
	cop := &COP{P: make([]float64, n), Obs: make([]float64, n)}
	p := cop.P
	free := make([]bool, n)
	for _, in := range inputs {
		free[in] = true
		p[in] = 0.5
	}
	// Unlisted PIs and DFFs keep p=0: the engine holds them at 0.
	for _, id := range c.Order {
		g := &c.Gates[id]
		switch g.Type {
		case logic.Const0:
			p[id] = 0
		case logic.Const1:
			p[id] = 1
		case logic.Buf:
			p[id] = p[g.Fanin[0]]
		case logic.Not:
			p[id] = 1 - p[g.Fanin[0]]
		case logic.And, logic.Nand:
			prod := 1.0
			for _, src := range g.Fanin {
				prod *= p[src]
			}
			if g.Type == logic.Nand {
				prod = 1 - prod
			}
			p[id] = prod
		case logic.Or, logic.Nor:
			prod := 1.0
			for _, src := range g.Fanin {
				prod *= 1 - p[src]
			}
			if g.Type == logic.Nor {
				p[id] = prod
			} else {
				p[id] = 1 - prod
			}
		case logic.Xor, logic.Xnor:
			odd := 0.0
			for i, src := range g.Fanin {
				if i == 0 {
					odd = p[src]
					continue
				}
				odd = odd*(1-p[src]) + (1-odd)*p[src]
			}
			if g.Type == logic.Xnor {
				odd = 1 - odd
			}
			p[id] = odd
		}
	}
	obs := cop.Obs
	for _, o := range outputs {
		obs[o] = 1
	}
	// Reverse topological walk, best propagation path per net. A DFF is
	// a propagation barrier: its D-pin value is observable only when the
	// D net itself is a view output (already seeded above).
	for i := len(c.Order) - 1; i >= 0; i-- {
		id := c.Order[i]
		g := &c.Gates[id]
		if g.Type == logic.DFF {
			continue
		}
		for pin, src := range g.Fanin {
			through := obs[id]
			switch g.Type {
			case logic.And, logic.Nand:
				for q, other := range g.Fanin {
					if q != pin {
						through *= p[other]
					}
				}
			case logic.Or, logic.Nor:
				for q, other := range g.Fanin {
					if q != pin {
						through *= 1 - p[other]
					}
				}
			}
			if through > obs[src] {
				obs[src] = through
			}
		}
	}
	return cop
}

// Detect estimates the single-pattern detection probability of a
// stuck-at fault under the view the COP was computed for. It is
// DetectProbability over view-aware probabilities.
func (cop *COP) Detect(c *logic.Circuit, f fault.Fault) float64 {
	return DetectProbability(c, cop.P, cop.Obs, f)
}

// ReconvergentStems returns, in ascending net order, every fanout stem
// whose branches reconverge — two distinct immediate fanout branches
// reach a common gate. Reconvergent regions are where the independence
// approximation behind COP breaks down and where random-pattern
// resistance concentrates, so the advisor boosts them as test-point
// candidates.
func ReconvergentStems(c *logic.Circuit) []int {
	n := c.NumNets()
	// readers[net] = gates reading the net, from the fanout counts.
	readers := make([][]int, n)
	for id := range c.Gates {
		for _, src := range c.Gates[id].Fanin {
			readers[src] = append(readers[src], id)
		}
	}
	var stems []int
	mark := make([]uint64, n)
	for s := 0; s < n; s++ {
		br := readers[s]
		if len(br) < 2 {
			continue
		}
		for i := range mark {
			mark[i] = 0
		}
		// Propagate a bitmask of originating branches forward to a fixed
		// point; a net holding two distinct branch bits proves the
		// branches reconverge there. Branches beyond 64 share the last
		// bit (conservative: may miss reconvergence among the grouped
		// branches, never reports a false one between them alone).
		var stack []int
		for bi, r := range br {
			bit := uint64(1) << uint(min2(bi, 63))
			if mark[r]|bit != mark[r] {
				mark[r] |= bit
				stack = append(stack, r)
			}
		}
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			m := mark[id]
			for _, r := range readers[id] {
				if mark[r]|m != mark[r] {
					mark[r] |= m
					stack = append(stack, r)
				}
			}
		}
		for _, m := range mark {
			if m&(m-1) != 0 { // two distinct branch bits met
				stems = append(stems, s)
				break
			}
		}
	}
	sort.Ints(stems)
	return stems
}

// ReportSection renders the per-net SCOAP and COP metrics as the
// `testability` section of a run report: the SCOAP summary, the top-k
// hardest nets annotated with their COP probabilities, the hardest
// remaining single-pattern detection probability, and the reconvergent
// stem count. dftc info -json and advise reports share it, so the
// advisor's decisions are auditable from the report alone.
func ReportSection(c *logic.Circuit, inputs, outputs []int, faults []fault.Fault, top int) map[string]any {
	m := Analyze(c)
	cop := ViewCOP(c, inputs, outputs)
	sum := m.Summarize()
	if top <= 0 {
		top = 10
	}
	var nets []map[string]any
	for _, h := range m.Hardest(c, top) {
		nets = append(nets, map[string]any{
			"net": h.Name,
			"cc0": ceilInf(h.CC0),
			"cc1": ceilInf(h.CC1),
			"co":  ceilInf(h.CO),
			"p1":  cop.P[h.Net],
			"obs": cop.Obs[h.Net],
		})
	}
	minDet, haveDet := 0.0, false
	for _, f := range faults {
		dp := cop.Detect(c, f)
		if dp > 0 && (!haveDet || dp < minDet) {
			minDet, haveDet = dp, true
		}
	}
	sec := map[string]any{
		"scoap": map[string]any{
			"cc0_max": sum.MaxCC0, "cc1_max": sum.MaxCC1, "co_max": sum.MaxCO,
			"cc0_mean": sum.MeanCC0, "cc1_mean": sum.MeanCC1, "co_mean": sum.MeanCO,
			"uncontrollable": sum.Uncontrollable, "unobservable": sum.Unobservable,
		},
		"hardest_nets":       nets,
		"reconvergent_stems": len(ReconvergentStems(c)),
	}
	if haveDet {
		sec["min_detect_prob"] = minDet
		sec["expected_patterns"] = 1 / minDet
	}
	return sec
}

// ceilInf maps the Inf sentinel to -1 for JSON (JSON has no infinity,
// and 1<<30 would read as a legitimate measure).
func ceilInf(v int) int {
	if v >= Inf {
		return -1
	}
	return v
}
