// Package testability implements SCOAP-style controllability and
// observability analysis (Goldstein [70] in the paper) plus the test-
// point insertion transformations the analysis motivates (paper §III.B).
//
// Combinational controllabilities CC0/CC1 count the minimum number of
// pin assignments needed to drive a net to 0/1; combinational
// observability CO counts the assignments needed to propagate the net
// to a primary output. Sequential depths SD/SO count flip-flop
// crossings (clock cycles) instead. High numbers flag exactly the nets
// the paper's ad hoc techniques (test points, degating) go after.
package testability

import (
	"fmt"
	"sort"

	"dft/internal/logic"
)

// Inf is the sentinel for unreachable/uncontrollable nets.
const Inf = int(1) << 30

// Measures holds per-net SCOAP values. Sequential depths assume the
// machine powers up in the all-zero state (the toolkit's reset
// convention), so SD0 of a flip-flop output is at most 1.
type Measures struct {
	CC0, CC1 []int // combinational 0/1 controllability, per net
	CO       []int // combinational observability, per net (best branch)
	SD0, SD1 []int // sequential depth (DFF crossings) to control to 0/1
	SO       []int // sequential depth to observe
}

func addSat(a, b int) int {
	if a >= Inf || b >= Inf {
		return Inf
	}
	return a + b
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Analyze computes SCOAP measures for a finalized circuit, iterating to
// a fixed point so sequential feedback loops are handled.
func Analyze(c *logic.Circuit) *Measures {
	n := c.NumNets()
	m := &Measures{
		CC0: make([]int, n), CC1: make([]int, n),
		CO: make([]int, n), SD0: make([]int, n), SD1: make([]int, n), SO: make([]int, n),
	}
	for i := 0; i < n; i++ {
		m.CC0[i], m.CC1[i], m.CO[i], m.SD0[i], m.SD1[i], m.SO[i] = Inf, Inf, Inf, Inf, Inf, Inf
	}
	for _, pi := range c.PIs {
		m.CC0[pi], m.CC1[pi], m.SD0[pi], m.SD1[pi] = 1, 1, 0, 0
	}
	// Controllability relaxation (forward).
	for changed := true; changed; {
		changed = false
		for id, g := range c.Gates {
			var cc0, cc1, sd0, sd1 int
			switch g.Type {
			case logic.Input:
				continue
			case logic.Const0:
				cc0, cc1, sd0, sd1 = 1, Inf, 0, Inf
			case logic.Const1:
				cc0, cc1, sd0, sd1 = Inf, 1, Inf, 0
			case logic.DFF:
				d := g.Fanin[0]
				// The power-on/reset state is 0, so reaching 0 costs at
				// most one assignment / zero extra depth.
				cc0 = min2(1, addSat(m.CC0[d], 1))
				cc1 = addSat(m.CC1[d], 1)
				sd0 = min2(0, addSat(m.SD0[d], 1))
				sd1 = addSat(m.SD1[d], 1)
			default:
				cc0, cc1, sd0, sd1 = gateControllability(g.Type, g.Fanin, m)
			}
			if cc0 < m.CC0[id] {
				m.CC0[id], changed = cc0, true
			}
			if cc1 < m.CC1[id] {
				m.CC1[id], changed = cc1, true
			}
			if sd0 < m.SD0[id] {
				m.SD0[id], changed = sd0, true
			}
			if sd1 < m.SD1[id] {
				m.SD1[id], changed = sd1, true
			}
		}
	}
	// Observability relaxation (backward).
	for _, po := range c.POs {
		m.CO[po], m.SO[po] = 0, 0
	}
	for changed := true; changed; {
		changed = false
		for id, g := range c.Gates {
			if m.CO[id] >= Inf && m.SO[id] >= Inf {
				continue
			}
			for p, src := range g.Fanin {
				co, so := pinObservability(g, p, id, m)
				if co < m.CO[src] {
					m.CO[src], changed = co, true
				}
				if so < m.SO[src] {
					m.SO[src], changed = so, true
				}
			}
		}
	}
	return m
}

// gateControllability computes CC0/CC1 and SD0/SD1 of a combinational
// gate from its fanin measures. The sequential depths follow the same
// min/sum/DP structure but count no cost per gate (only DFFs add depth).
func gateControllability(t logic.GateType, fanin []int, m *Measures) (cc0, cc1, sd0, sd1 int) {
	sum := func(vals []int) int {
		s := 0
		for _, src := range fanin {
			s = addSat(s, vals[src])
		}
		return s
	}
	minOf := func(vals []int) int {
		best := Inf
		for _, src := range fanin {
			best = min2(best, vals[src])
		}
		return best
	}
	parity := func(v0, v1 []int) (even, odd int) {
		even, odd = 0, Inf
		for _, src := range fanin {
			e2 := min2(addSat(even, v0[src]), addSat(odd, v1[src]))
			o2 := min2(addSat(even, v1[src]), addSat(odd, v0[src]))
			even, odd = e2, o2
		}
		return
	}

	switch t {
	case logic.Buf:
		return addSat(m.CC0[fanin[0]], 1), addSat(m.CC1[fanin[0]], 1),
			m.SD0[fanin[0]], m.SD1[fanin[0]]
	case logic.Not:
		return addSat(m.CC1[fanin[0]], 1), addSat(m.CC0[fanin[0]], 1),
			m.SD1[fanin[0]], m.SD0[fanin[0]]
	case logic.And:
		return addSat(minOf(m.CC0), 1), addSat(sum(m.CC1), 1),
			minOf(m.SD0), sum(m.SD1)
	case logic.Nand:
		return addSat(sum(m.CC1), 1), addSat(minOf(m.CC0), 1),
			sum(m.SD1), minOf(m.SD0)
	case logic.Or:
		return addSat(sum(m.CC0), 1), addSat(minOf(m.CC1), 1),
			sum(m.SD0), minOf(m.SD1)
	case logic.Nor:
		return addSat(minOf(m.CC1), 1), addSat(sum(m.CC0), 1),
			minOf(m.SD1), sum(m.SD0)
	case logic.Xor, logic.Xnor:
		even, odd := parity(m.CC0, m.CC1)
		sEven, sOdd := parity(m.SD0, m.SD1)
		if t == logic.Xor {
			return addSat(even, 1), addSat(odd, 1), sEven, sOdd
		}
		return addSat(odd, 1), addSat(even, 1), sOdd, sEven
	}
	return Inf, Inf, Inf, Inf
}

// pinObservability computes CO/SO of input pin p of gate id.
func pinObservability(g logic.Gate, p, id int, m *Measures) (co, so int) {
	co, so = m.CO[id], m.SO[id]
	switch g.Type {
	case logic.Buf, logic.Not:
		return addSat(co, 1), so
	case logic.DFF:
		return addSat(co, 1), addSat(so, 1)
	case logic.And, logic.Nand:
		s := 0
		for q, src := range g.Fanin {
			if q != p {
				s = addSat(s, m.CC1[src])
			}
		}
		return addSat(co, addSat(s, 1)), so
	case logic.Or, logic.Nor:
		s := 0
		for q, src := range g.Fanin {
			if q != p {
				s = addSat(s, m.CC0[src])
			}
		}
		return addSat(co, addSat(s, 1)), so
	case logic.Xor, logic.Xnor:
		s := 0
		for q, src := range g.Fanin {
			if q != p {
				s = addSat(s, min2(m.CC0[src], m.CC1[src]))
			}
		}
		return addSat(co, addSat(s, 1)), so
	}
	return Inf, Inf
}

// NetReport is one row of a testability report.
type NetReport struct {
	Net      int
	Name     string
	CC0, CC1 int
	CO       int
}

// Hardest returns the k nets with the largest CC0+CC1+CO score,
// worst first — the candidates for test points.
func (m *Measures) Hardest(c *logic.Circuit, k int) []NetReport {
	score := func(i int) int {
		return addSat(addSat(min2(m.CC0[i], Inf), min2(m.CC1[i], Inf)), m.CO[i])
	}
	idx := make([]int, c.NumNets())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return score(idx[a]) > score(idx[b]) })
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]NetReport, k)
	for i := 0; i < k; i++ {
		n := idx[i]
		out[i] = NetReport{Net: n, Name: c.NameOf(n), CC0: m.CC0[n], CC1: m.CC1[n], CO: m.CO[n]}
	}
	return out
}

// Summary aggregates the measures for comparisons (before/after DFT).
type Summary struct {
	MaxCC0, MaxCC1, MaxCO    int
	MeanCC0, MeanCC1, MeanCO float64
	MaxSD, MaxSO             int
	Uncontrollable           int // nets with CC0 or CC1 == Inf
	Unobservable             int // nets with CO == Inf
}

// Summarize reduces per-net measures to a Summary.
func (m *Measures) Summarize() Summary {
	var s Summary
	n := len(m.CC0)
	var t0, t1, to float64
	cnt := 0
	for i := 0; i < n; i++ {
		if m.CC0[i] >= Inf || m.CC1[i] >= Inf {
			s.Uncontrollable++
			continue
		}
		if m.CO[i] >= Inf {
			s.Unobservable++
			continue
		}
		cnt++
		t0 += float64(m.CC0[i])
		t1 += float64(m.CC1[i])
		to += float64(m.CO[i])
		if m.CC0[i] > s.MaxCC0 {
			s.MaxCC0 = m.CC0[i]
		}
		if m.CC1[i] > s.MaxCC1 {
			s.MaxCC1 = m.CC1[i]
		}
		if m.CO[i] > s.MaxCO {
			s.MaxCO = m.CO[i]
		}
		if m.SD1[i] < Inf && m.SD1[i] > s.MaxSD {
			s.MaxSD = m.SD1[i]
		}
		if m.SD0[i] < Inf && m.SD0[i] > s.MaxSD {
			s.MaxSD = m.SD0[i]
		}
		if m.SO[i] < Inf && m.SO[i] > s.MaxSO {
			s.MaxSO = m.SO[i]
		}
	}
	if cnt > 0 {
		s.MeanCC0 = t0 / float64(cnt)
		s.MeanCC1 = t1 / float64(cnt)
		s.MeanCO = to / float64(cnt)
	}
	return s
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("cc0max=%d cc1max=%d comax=%d cc0mean=%.1f cc1mean=%.1f comean=%.1f sdmax=%d somax=%d unctl=%d unobs=%d",
		s.MaxCC0, s.MaxCC1, s.MaxCO, s.MeanCC0, s.MeanCC1, s.MeanCO, s.MaxSD, s.MaxSO, s.Uncontrollable, s.Unobservable)
}
