package testability

import (
	"fmt"

	"dft/internal/logic"
)

// AddObservationPoint returns a copy of the circuit with net (named) wired
// to a fresh primary output TPO_<name> — the paper's "test point used as
// a primary output ... to enhance the observability of a network".
func AddObservationPoint(c *logic.Circuit, net int) *logic.Circuit {
	nc := c.Clone()
	name := fmt.Sprintf("TPO_%s", c.NameOf(net))
	nc.MarkOutput(nc.AddGate(logic.Buf, name, net))
	nc.MustFinalize()
	return nc
}

// AddControlPoint returns a copy of the circuit in which the given net
// is made directly controllable through two new primary inputs, using
// the degating structure of the paper's Fig. 2: the original driver is
// ANDed with an active-low degate line and ORed with a control line:
//
//	net' = (driver AND NOT DEGATE) OR CTL
//
// With DEGATE=0, CTL=0 the circuit behaves as before; with DEGATE=1 the
// net is driven entirely by CTL. All original readers of the net are
// re-pointed at the gated value.
func AddControlPoint(c *logic.Circuit, net int) *logic.Circuit {
	nc := c.Clone()
	base := c.NameOf(net)
	degate := nc.AddInput(fmt.Sprintf("TPDG_%s", base))
	ctl := nc.AddInput(fmt.Sprintf("TPCTL_%s", base))
	ndeg := nc.AddGate(logic.Not, fmt.Sprintf("TPN_%s", base), degate)
	blocked := nc.AddGate(logic.And, fmt.Sprintf("TPA_%s", base), net, ndeg)
	gated := nc.AddGate(logic.Or, fmt.Sprintf("TPG_%s", base), blocked, ctl)
	// Re-point all original readers (gates added before the test point).
	for id := range nc.Gates {
		if id == blocked || id == gated {
			continue
		}
		for i, src := range nc.Gates[id].Fanin {
			if src == net {
				nc.Gates[id].Fanin[i] = gated
			}
		}
	}
	for i, po := range nc.POs {
		if po == net {
			nc.POs[i] = gated
		}
	}
	nc.MustFinalize()
	return nc
}

// Recommendation is a proposed test point.
type Recommendation struct {
	Net   int
	Name  string
	Kind  string // "observe" or "control"
	Score int
}

// Recommend proposes up to k test points: nets whose observability or
// controllability dominates the circuit's difficulty. It mirrors the
// paper's flow of running a testability-measure program and adding test
// points at critical nets.
func Recommend(c *logic.Circuit, m *Measures, k int) []Recommendation {
	var recs []Recommendation
	for _, r := range m.Hardest(c, c.NumNets()) {
		if len(recs) >= k {
			break
		}
		if c.Gates[r.Net].Type == logic.Input {
			continue
		}
		ctl := r.CC0
		if r.CC1 > ctl {
			ctl = r.CC1
		}
		if r.CO >= ctl && r.CO > 0 {
			recs = append(recs, Recommendation{Net: r.Net, Name: r.Name, Kind: "observe", Score: r.CO})
		} else if ctl > 0 {
			recs = append(recs, Recommendation{Net: r.Net, Name: r.Name, Kind: "control", Score: ctl})
		}
	}
	return recs
}

// Apply inserts the recommended test points, returning the improved
// circuit.
func Apply(c *logic.Circuit, recs []Recommendation) *logic.Circuit {
	out := c
	for _, r := range recs {
		// Net IDs are stable across both transformations (they only
		// append elements), so recommendations remain valid.
		if r.Kind == "observe" {
			out = AddObservationPoint(out, r.Net)
		} else {
			out = AddControlPoint(out, r.Net)
		}
	}
	return out
}
