package testability

import (
	"testing"

	"dft/internal/circuits"
	"dft/internal/fault"
	"dft/internal/logic"
)

func TestPIMeasures(t *testing.T) {
	c := circuits.C17()
	m := Analyze(c)
	for _, pi := range c.PIs {
		if m.CC0[pi] != 1 || m.CC1[pi] != 1 {
			t.Fatalf("PI %s: CC0=%d CC1=%d, want 1/1", c.NameOf(pi), m.CC0[pi], m.CC1[pi])
		}
		if m.SD0[pi] != 0 || m.SD1[pi] != 0 {
			t.Fatalf("PI %s: SD0=%d SD1=%d, want 0/0", c.NameOf(pi), m.SD0[pi], m.SD1[pi])
		}
	}
	for _, po := range c.POs {
		if m.CO[po] != 0 {
			t.Fatalf("PO %s: CO=%d, want 0", c.NameOf(po), m.CO[po])
		}
	}
}

func TestAndGateSCOAP(t *testing.T) {
	c := logic.New("and3")
	a := c.AddInput("a")
	b := c.AddInput("b")
	d := c.AddInput("d")
	y := c.AddGate(logic.And, "y", a, b, d)
	c.MarkOutput(y)
	c.MustFinalize()
	m := Analyze(c)
	// CC1(y) = 1+1+1+1 = 4, CC0(y) = 1+1 = 2.
	if m.CC1[y] != 4 || m.CC0[y] != 2 {
		t.Fatalf("AND3: CC1=%d CC0=%d, want 4/2", m.CC1[y], m.CC0[y])
	}
	// CO(a) = CO(y) + CC1(b) + CC1(d) + 1 = 0+1+1+1 = 3.
	if m.CO[a] != 3 {
		t.Fatalf("CO(a)=%d, want 3", m.CO[a])
	}
}

func TestXorSCOAP(t *testing.T) {
	c := logic.New("xor2")
	a := c.AddInput("a")
	b := c.AddInput("b")
	y := c.AddGate(logic.Xor, "y", a, b)
	c.MarkOutput(y)
	c.MustFinalize()
	m := Analyze(c)
	// CC1 = min(CC0a+CC1b, CC1a+CC0b)+1 = 3; CC0 = min(0+0,1+1 paths)=3.
	if m.CC1[y] != 3 || m.CC0[y] != 3 {
		t.Fatalf("XOR: CC1=%d CC0=%d, want 3/3", m.CC1[y], m.CC0[y])
	}
}

func TestConstGateSCOAP(t *testing.T) {
	c := logic.New("konst")
	k1 := c.AddGate(logic.Const1, "k1")
	a := c.AddInput("a")
	y := c.AddGate(logic.And, "y", k1, a)
	c.MarkOutput(y)
	c.MustFinalize()
	m := Analyze(c)
	if m.CC1[k1] != 1 || m.CC0[k1] < Inf {
		t.Fatalf("const1: CC1=%d CC0=%d", m.CC1[k1], m.CC0[k1])
	}
}

func TestSequentialDepthCounter(t *testing.T) {
	// In an n-bit ripple counter, bit i requires deeper sequential
	// control than bit i-1; SCOAP sequential depth must reflect that.
	c := circuits.Counter(4)
	m := Analyze(c)
	prev := -1
	for i := 0; i < 4; i++ {
		q, _ := c.NetByName("Q" + string(rune('0'+i)))
		if m.SD1[q] >= Inf {
			t.Fatalf("SD1(Q%d) unresolved", i)
		}
		if m.SD1[q] <= prev {
			t.Fatalf("SD1(Q%d)=%d not monotonically increasing (prev %d)", i, m.SD1[q], prev)
		}
		prev = m.SD1[q]
	}
}

func TestDeepLogicHarderThanShallow(t *testing.T) {
	shallow := circuits.ParityTree(4)
	deep := circuits.RippleAdder(16)
	ms := Analyze(shallow).Summarize()
	md := Analyze(deep).Summarize()
	if md.MaxCO <= ms.MaxCO {
		t.Fatalf("deep adder CO max %d should exceed small parity tree %d", md.MaxCO, ms.MaxCO)
	}
}

func TestHardestOrdering(t *testing.T) {
	c := circuits.RippleAdder(8)
	m := Analyze(c)
	rep := m.Hardest(c, 10)
	if len(rep) != 10 {
		t.Fatalf("Hardest returned %d rows", len(rep))
	}
	score := func(r NetReport) int { return r.CC0 + r.CC1 + r.CO }
	for i := 1; i < len(rep); i++ {
		if score(rep[i]) > score(rep[i-1]) {
			t.Fatalf("Hardest not sorted: %v before %v", rep[i-1], rep[i])
		}
	}
}

func TestObservationPointImprovesCO(t *testing.T) {
	c := circuits.RippleAdder(8)
	m := Analyze(c)
	// Pick the worst-observability internal net.
	worst, worstCO := -1, -1
	for n := 0; n < c.NumNets(); n++ {
		if m.CO[n] < Inf && m.CO[n] > worstCO {
			worst, worstCO = n, m.CO[n]
		}
	}
	improved := AddObservationPoint(c, worst)
	m2 := Analyze(improved)
	if m2.CO[worst] != 1 {
		t.Fatalf("CO after observation point = %d, want 1 (via buffer)", m2.CO[worst])
	}
	if worstCO <= 1 {
		t.Fatalf("test setup: worst CO was already %d", worstCO)
	}
}

func TestControlPointImprovesCC(t *testing.T) {
	c := circuits.RippleAdder(8)
	m := Analyze(c)
	// The high carry nets are the hardest to control to 1.
	carry, _ := c.NetByName("C8")
	before := m.CC1[carry]
	improved := AddControlPoint(c, carry)
	m2 := Analyze(improved)
	gated, ok := improved.NetByName("TPG_C8")
	if !ok {
		t.Fatal("gated net missing")
	}
	if m2.CC1[gated] >= before {
		t.Fatalf("CC1 after control point = %d, want < %d", m2.CC1[gated], before)
	}
	if m2.CC1[gated] > 2 {
		t.Fatalf("CC1 via CTL input should be 2, got %d", m2.CC1[gated])
	}
}

// TestControlPointTransparent verifies the degating identity: with
// DEGATE=0, CTL=0 the modified circuit computes the original function.
func TestControlPointTransparent(t *testing.T) {
	c := circuits.RippleAdder(4)
	carry, _ := c.NetByName("C2")
	mod := AddControlPoint(c, carry)
	// mod has 2 extra PIs appended at the end.
	if len(mod.PIs) != len(c.PIs)+2 {
		t.Fatalf("PI count %d", len(mod.PIs))
	}
	for x := 0; x < 1<<9; x++ {
		in := make([]bool, 9)
		for i := range in {
			in[i] = x>>uint(i)&1 == 1
		}
		inMod := append(append([]bool{}, in...), false, false)
		got := evalOuts(mod, inMod)
		want := evalOuts(c, in)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("pattern %09b output %d differs under transparent degate", x, i)
			}
		}
	}
}

// TestControlPointForcesNet: with DEGATE=1 the net follows CTL.
func TestControlPointForcesNet(t *testing.T) {
	c := circuits.RippleAdder(4)
	carry, _ := c.NetByName("C2")
	mod := AddControlPoint(c, carry)
	gated, _ := mod.NetByName("TPG_C2")
	for _, ctl := range []bool{false, true} {
		in := make([]bool, 11)
		in[9] = true // DEGATE
		in[10] = ctl
		vals := evalAll(mod, in)
		if vals[gated] != ctl {
			t.Fatalf("degated net = %v, want CTL=%v", vals[gated], ctl)
		}
	}
}

func TestRecommendAndApply(t *testing.T) {
	c := circuits.RippleAdder(12)
	m := Analyze(c)
	recs := Recommend(c, m, 4)
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	improved := Apply(c, recs)
	m2 := Analyze(improved)
	// Each targeted net must now be cheap through its test point: an
	// observed net reaches a PO through one buffer; a controlled net's
	// gated replacement is settable through the CTL input.
	for _, r := range recs {
		switch r.Kind {
		case "observe":
			if m2.CO[r.Net] > 1 {
				t.Fatalf("net %s still hard to observe: CO=%d (was score %d)", r.Name, m2.CO[r.Net], r.Score)
			}
		case "control":
			gated, ok := improved.NetByName("TPG_" + r.Name)
			if !ok {
				t.Fatalf("gated net for %s missing", r.Name)
			}
			// Through the test point: CC1 = set CTL (2 assignments);
			// CC0 = assert DEGATE and clear CTL (5 assignments).
			if m2.CC0[gated] > 5 || m2.CC1[gated] > 3 {
				t.Fatalf("net %s still hard to control: CC0=%d CC1=%d", r.Name, m2.CC0[gated], m2.CC1[gated])
			}
		}
	}
}

// TestSCOAPPredictsRandomDetectability: faults on nets that SCOAP rates
// easy should be detected by few random patterns, hard PLAs resist.
func TestSCOAPCorrelatesWithPLAHardness(t *testing.T) {
	easy := circuits.ParityTree(8)
	me := Analyze(easy).Summarize()
	cube := make(circuits.Cube, 20)
	for i := range cube {
		cube[i] = 1
	}
	hard := circuits.PLA("andpla", 20, []circuits.Cube{cube}, [][]int{{0}})
	mh := Analyze(hard).Summarize()
	if mh.MaxCC1 <= me.MaxCC1 {
		t.Fatalf("20-input PLA product CC1 %d should exceed parity tree %d", mh.MaxCC1, me.MaxCC1)
	}
}

func TestSummaryString(t *testing.T) {
	s := Analyze(circuits.C17()).Summarize()
	if s.String() == "" {
		t.Fatal("empty summary")
	}
}

// helpers

func evalOuts(c *logic.Circuit, in []bool) []bool {
	vals := evalAll(c, in)
	out := make([]bool, len(c.POs))
	for i, po := range c.POs {
		out[i] = vals[po]
	}
	return out
}

func evalAll(c *logic.Circuit, in []bool) []bool {
	// Local scalar evaluation to avoid an import cycle with sim (none
	// exists, but testability should not depend on sim in production
	// code; tests keep it that way).
	vals := make([]bool, c.NumNets())
	for i, id := range c.PIs {
		vals[id] = in[i]
	}
	scratch := make([]bool, c.MaxFanin())
	for _, id := range c.Order {
		g := c.Gates[id]
		args := scratch[:len(g.Fanin)]
		for i, f := range g.Fanin {
			args[i] = vals[f]
		}
		vals[id] = g.Type.EvalBool(args)
	}
	return vals
}

// Ensure fault package import is used: SCOAP hardest nets should include
// sites of hard-to-detect faults (smoke-level integration).
func TestHardestNetsAreFaultSites(t *testing.T) {
	c := circuits.RippleAdder(6)
	m := Analyze(c)
	u := fault.Universe(c)
	sites := map[int]bool{}
	for _, f := range u {
		sites[f.Site(c)] = true
	}
	for _, r := range m.Hardest(c, 5) {
		if !sites[r.Net] {
			t.Fatalf("hardest net %s is not a fault site", r.Name)
		}
	}
}
