package testability

import (
	"math"

	"dft/internal/fault"
	"dft/internal/logic"
)

// SignalProbabilities propagates per-net probabilities of logic 1
// under the independence approximation of Parker & McCluskey ([45] in
// the paper): AND multiplies, OR complements-multiplies, XOR combines
// pairwise. piProb gives the 1-probability of each primary input (nil
// means 0.5 everywhere); flip-flops are treated as equiprobable.
//
// The approximation ignores reconvergent-fanout correlation — exactly
// the tradeoff the 1975 paper made — and is the basis for random-
// pattern testability estimation.
func SignalProbabilities(c *logic.Circuit, piProb []float64) []float64 {
	p := make([]float64, c.NumNets())
	for i, pi := range c.PIs {
		if piProb == nil {
			p[pi] = 0.5
		} else {
			p[pi] = piProb[i]
		}
	}
	for _, d := range c.DFFs {
		p[d] = 0.5
	}
	for _, id := range c.Order {
		g := &c.Gates[id]
		switch g.Type {
		case logic.Const0:
			p[id] = 0
		case logic.Const1:
			p[id] = 1
		case logic.Buf:
			p[id] = p[g.Fanin[0]]
		case logic.Not:
			p[id] = 1 - p[g.Fanin[0]]
		case logic.And, logic.Nand:
			prod := 1.0
			for _, src := range g.Fanin {
				prod *= p[src]
			}
			if g.Type == logic.Nand {
				prod = 1 - prod
			}
			p[id] = prod
		case logic.Or, logic.Nor:
			prod := 1.0
			for _, src := range g.Fanin {
				prod *= 1 - p[src]
			}
			if g.Type == logic.Nor {
				p[id] = prod
			} else {
				p[id] = 1 - prod
			}
		case logic.Xor, logic.Xnor:
			odd := 0.0
			for i, src := range g.Fanin {
				if i == 0 {
					odd = p[src]
					continue
				}
				odd = odd*(1-p[src]) + (1-odd)*p[src]
			}
			if g.Type == logic.Xnor {
				odd = 1 - odd
			}
			p[id] = odd
		}
	}
	return p
}

// Observabilities estimates, per net, the probability that a value
// change on the net propagates to some primary output under random
// patterns (a STAFAN-style measure built on the signal probabilities):
// O(PO) = 1; through an AND-type gate the change must find every other
// input non-controlling; through XOR it always propagates; a stem's
// observability is approximated by its best branch.
func Observabilities(c *logic.Circuit, p []float64) []float64 {
	obs := make([]float64, c.NumNets())
	for _, po := range c.POs {
		obs[po] = 1
	}
	// Walk nets in reverse topological order, keeping each net's best
	// propagation path (PO nets already hold the maximum, 1).
	for i := len(c.Order) - 1; i >= 0; i-- {
		id := c.Order[i]
		g := &c.Gates[id]
		for pin, src := range g.Fanin {
			through := obs[id]
			switch g.Type {
			case logic.And, logic.Nand:
				for q, other := range g.Fanin {
					if q != pin {
						through *= p[other]
					}
				}
			case logic.Or, logic.Nor:
				for q, other := range g.Fanin {
					if q != pin {
						through *= 1 - p[other]
					}
				}
			}
			if through > obs[src] {
				obs[src] = through
			}
		}
	}
	return obs
}

// DetectProbability estimates the single-random-pattern detection
// probability of a stuck-at fault: P(site at ¬SA) × P(propagation).
func DetectProbability(c *logic.Circuit, p, obs []float64, f fault.Fault) float64 {
	site := f.Site(c)
	activate := p[site]
	if f.SA == logic.One {
		activate = 1 - p[site]
	}
	o := obs[site]
	if f.Pin != fault.Stem {
		// A branch fault propagates only through its own gate.
		g := &c.Gates[f.Gate]
		o = obs[f.Gate]
		switch g.Type {
		case logic.And, logic.Nand:
			for q, other := range g.Fanin {
				if q != f.Pin {
					o *= p[other]
				}
			}
		case logic.Or, logic.Nor:
			for q, other := range g.Fanin {
				if q != f.Pin {
					o *= 1 - p[other]
				}
			}
		}
	}
	return activate * o
}

// ExpectedPatterns returns the expected random-pattern count to detect
// the hardest *testable* fault in the list (1/min positive detection
// probability) — the quantity that explodes for the Fig. 22 PLA.
// Faults with estimated probability zero (e.g. on unobservable logic)
// are excluded; if every fault is excluded the result is +Inf.
func ExpectedPatterns(c *logic.Circuit, faults []fault.Fault, piProb []float64) float64 {
	p := SignalProbabilities(c, piProb)
	obs := Observabilities(c, p)
	best := 1.0 // smallest positive detection probability seen
	found := false
	for _, f := range faults {
		dp := DetectProbability(c, p, obs, f)
		if dp > 0 && (!found || dp < best) {
			best = dp
			found = true
		}
	}
	if !found {
		return math.Inf(1)
	}
	return 1 / best
}

// DeriveWeights proposes per-input 1-probabilities for weighted random
// testing (Schnurmann et al. [95]): each gate back-propagates the
// input probability that would make its own output equiprobable, and
// every primary input averages the demands of its fanout cone. One
// pass captures the dominant effect (deep AND trees pull weights up,
// OR trees pull them down).
func DeriveWeights(c *logic.Circuit) []float64 {
	demand := make([]float64, c.NumNets())
	readers := make([]float64, c.NumNets())
	demandOf := func(id int) float64 {
		if readers[id] == 0 {
			return 0.5 // no reader demanded anything: target equiprobable
		}
		return demand[id]
	}
	// Reverse topological: convert output demand into input demand,
	// averaging when a net feeds several readers.
	for i := len(c.Order) - 1; i >= 0; i-- {
		id := c.Order[i]
		g := &c.Gates[id]
		n := float64(len(g.Fanin))
		d := demandOf(id)
		var want float64
		switch g.Type {
		case logic.And:
			want = math.Pow(d, 1/n)
		case logic.Nand:
			want = math.Pow(1-d, 1/n)
		case logic.Or:
			want = 1 - math.Pow(1-d, 1/n)
		case logic.Nor:
			want = 1 - math.Pow(d, 1/n)
		case logic.Not:
			want = 1 - d
		case logic.Buf:
			want = d
		default:
			want = 0.5
		}
		for _, src := range g.Fanin {
			demand[src] = (demand[src]*readers[src] + want) / (readers[src] + 1)
			readers[src]++
		}
	}
	out := make([]float64, len(c.PIs))
	for i, pi := range c.PIs {
		w := demandOf(pi)
		if w < 0.05 {
			w = 0.05
		}
		if w > 0.95 {
			w = 0.95
		}
		out[i] = w
	}
	return out
}
