package testability

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"dft/internal/atpg"
	"dft/internal/circuits"
	"dft/internal/fault"
	"dft/internal/logic"
	"dft/internal/sim"
)

func TestSignalProbabilityGates(t *testing.T) {
	c := logic.New("g")
	a := c.AddInput("a")
	b := c.AddInput("b")
	and := c.AddGate(logic.And, "and", a, b)
	or := c.AddGate(logic.Or, "or", a, b)
	xor := c.AddGate(logic.Xor, "xor", a, b)
	nand := c.AddGate(logic.Nand, "nand", a, b)
	c.MarkOutput(and)
	c.MarkOutput(or)
	c.MarkOutput(xor)
	c.MarkOutput(nand)
	c.MustFinalize()
	p := SignalProbabilities(c, nil)
	cases := map[int]float64{and: 0.25, or: 0.75, xor: 0.5, nand: 0.75}
	for net, want := range cases {
		if math.Abs(p[net]-want) > 1e-12 {
			t.Fatalf("p(%s) = %f, want %f", c.NameOf(net), p[net], want)
		}
	}
}

// TestSignalProbabilityExactOnTrees: on fanout-free logic the
// independence approximation is exact; verify against exhaustive
// simulation.
func TestSignalProbabilityExactOnTrees(t *testing.T) {
	c := circuits.ParityTree(6)
	p := SignalProbabilities(c, nil)
	counts := make([]int, c.NumNets())
	total := 1 << 6
	for x := 0; x < total; x++ {
		in := make([]bool, 6)
		for i := range in {
			in[i] = x>>uint(i)&1 == 1
		}
		vals := sim.Eval(c, in, nil)
		for n, v := range vals {
			if v {
				counts[n]++
			}
		}
	}
	for n := 0; n < c.NumNets(); n++ {
		want := float64(counts[n]) / float64(total)
		if math.Abs(p[n]-want) > 1e-9 {
			t.Fatalf("net %s: predicted %f, exhaustive %f", c.NameOf(n), p[n], want)
		}
	}
}

func TestWeightedProbabilities(t *testing.T) {
	c := logic.New("w")
	a := c.AddInput("a")
	b := c.AddInput("b")
	y := c.AddGate(logic.And, "y", a, b)
	c.MarkOutput(y)
	c.MustFinalize()
	p := SignalProbabilities(c, []float64{0.9, 0.8})
	if math.Abs(p[y]-0.72) > 1e-12 {
		t.Fatalf("weighted AND prob %f", p[y])
	}
}

// TestDetectProbabilityPredictsPLAHardness: the Fig. 22 argument made
// quantitative — a 20-literal product term's hardest fault needs ≈2^20
// expected random patterns, while the adder's stays small.
func TestDetectProbabilityPredictsPLAHardness(t *testing.T) {
	cube := make(circuits.Cube, 20)
	for i := range cube {
		cube[i] = 1
	}
	pla := circuits.PLA("andpla", 20, []circuits.Cube{cube}, [][]int{{0}})
	plaExp := ExpectedPatterns(pla, fault.CollapseEquiv(pla, fault.Universe(pla)).Reps, nil)
	if plaExp < 1e5 {
		t.Fatalf("PLA expected patterns %.3g, want ~2^20", plaExp)
	}
	add := circuits.RippleAdder(6)
	addExp := ExpectedPatterns(add, fault.CollapseEquiv(add, fault.Universe(add)).Reps, nil)
	if addExp > 1e4 {
		t.Fatalf("adder expected patterns %.3g, want small", addExp)
	}
	if addExp >= plaExp {
		t.Fatal("adder should be much easier than the PLA")
	}
}

// TestDetectProbabilityCalibration: predictions correlate with
// measured first-detection pattern counts on a mid-size circuit.
func TestDetectProbabilityCalibration(t *testing.T) {
	c := circuits.RippleAdder(6)
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	p := SignalProbabilities(c, nil)
	obs := Observabilities(c, p)
	rng := rand.New(rand.NewSource(12))
	pats := make([][]bool, 4096)
	for i := range pats {
		pat := make([]bool, len(c.PIs))
		for j := range pat {
			pat[j] = rng.Intn(2) == 1
		}
		pats[i] = pat
	}
	res, err := fault.Simulate(context.Background(), c, cl.Reps, pats, fault.Options{Backend: fault.BackendParallel})
	if err != nil {
		t.Fatal(err)
	}
	// Compare the prediction with measurement in aggregate: faults
	// predicted easy (dp > 0.2) must on average be found much earlier
	// than faults predicted hard (dp < 0.05).
	var easySum, easyN, hardSum, hardN float64
	for i, f := range cl.Reps {
		if !res.Detected[i] {
			continue
		}
		dp := DetectProbability(c, p, obs, f)
		switch {
		case dp > 0.2:
			easySum += float64(res.DetectedBy[i])
			easyN++
		case dp < 0.05:
			hardSum += float64(res.DetectedBy[i])
			hardN++
		}
	}
	if easyN == 0 || hardN == 0 {
		t.Skip("bucket empty; circuit too uniform")
	}
	if easySum/easyN >= hardSum/hardN {
		t.Fatalf("predicted-easy faults found at %.1f on average, predicted-hard at %.1f",
			easySum/easyN, hardSum/hardN)
	}
}

// TestDeriveWeightsBeatUniformOnAndTree: the Schnurmann-style derived
// weights must outperform uniform random patterns on a deep AND tree.
func TestDeriveWeightsBeatUniformOnAndTree(t *testing.T) {
	c := logic.New("andtree")
	var layer []int
	for i := 0; i < 16; i++ {
		layer = append(layer, c.AddInput("i"+string(rune('a'+i))))
	}
	for len(layer) > 1 {
		var next []int
		for i := 0; i+1 < len(layer); i += 2 {
			next = append(next, c.AddGate(logic.And, "", layer[i], layer[i+1]))
		}
		layer = next
	}
	c.MarkOutput(layer[0])
	c.MustFinalize()

	w := DeriveWeights(c)
	for i, wi := range w {
		if wi < 0.7 {
			t.Fatalf("derived weight[%d] = %.2f, want high for an AND tree", i, wi)
		}
	}
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	budget := 2000
	uni := atpg.RandomGenerate(c, atpg.PrimaryView(c), cl.Reps, 1.0, budget, rand.New(rand.NewSource(1)))
	wres := atpg.WeightedRandomGenerate(c, atpg.PrimaryView(c), cl.Reps, 1.0, budget, w, rand.New(rand.NewSource(1)))
	if wres.Coverage <= uni.Coverage {
		t.Fatalf("derived weights %.3f should beat uniform %.3f", wres.Coverage, uni.Coverage)
	}
}

func TestDeriveWeightsOrTreePullsDown(t *testing.T) {
	c := logic.New("ortree")
	var ins []int
	for i := 0; i < 8; i++ {
		ins = append(ins, c.AddInput("i"+string(rune('a'+i))))
	}
	c.MarkOutput(c.AddGate(logic.Or, "y", ins...))
	c.MustFinalize()
	for i, w := range DeriveWeights(c) {
		if w > 0.3 {
			t.Fatalf("weight[%d] = %.2f, want low for a wide OR", i, w)
		}
	}
}

func TestObservabilityBounds(t *testing.T) {
	c := circuits.RippleAdder(8)
	p := SignalProbabilities(c, nil)
	obs := Observabilities(c, p)
	for n, o := range obs {
		if o < 0 || o > 1 {
			t.Fatalf("obs(%s) = %f out of range", c.NameOf(n), o)
		}
	}
	for _, po := range c.POs {
		if obs[po] != 1 {
			t.Fatal("PO observability must be 1")
		}
	}
}
