package testability

import (
	"math"
	"testing"

	"dft/internal/fault"
	"dft/internal/logic"
)

// buriedFF returns X0,X1 -> G=AND -> D of FF R -> OUT=AND(R, X1):
// the D cone is invisible from the pins, R is held at 0 by reset.
func buriedFF(t *testing.T) (*logic.Circuit, int, int) {
	t.Helper()
	c := logic.New("buried")
	x0 := c.AddInput("X0")
	x1 := c.AddInput("X1")
	r := c.AddDFF("R", 0)
	g := c.AddGate(logic.And, "G", x0, x1)
	c.Gates[r].Fanin[0] = g
	c.MarkOutput(c.AddGate(logic.And, "OUT", r, x1))
	return c.MustFinalize(), r, g
}

func TestViewCOPPrimaryMatchesCombinationalBaseline(t *testing.T) {
	c := logic.New("comb")
	a := c.AddInput("A")
	b := c.AddInput("B")
	d := c.AddInput("C")
	n1 := c.AddGate(logic.And, "N1", a, b)
	n2 := c.AddGate(logic.Or, "N2", n1, d)
	c.MarkOutput(n2)
	c.MarkOutput(c.AddGate(logic.Xor, "N3", n1, d))
	c.MustFinalize()

	cop := ViewCOP(c, c.PIs, c.POs)
	p := SignalProbabilities(c, nil)
	obs := Observabilities(c, p)
	for n := 0; n < c.NumNets(); n++ {
		if math.Abs(cop.P[n]-p[n]) > 1e-12 {
			t.Fatalf("net %s: ViewCOP p %.6f vs SignalProbabilities %.6f", c.NameOf(n), cop.P[n], p[n])
		}
		if math.Abs(cop.Obs[n]-obs[n]) > 1e-12 {
			t.Fatalf("net %s: ViewCOP obs %.6f vs Observabilities %.6f", c.NameOf(n), cop.Obs[n], obs[n])
		}
	}
}

func TestViewCOPHoldsUnscannedStorageAtZero(t *testing.T) {
	c, r, g := buriedFF(t)
	cop := ViewCOP(c, c.PIs, c.POs)
	if cop.P[r] != 0 {
		t.Fatalf("unscanned DFF p = %v, want 0 (engine holds reset state)", cop.P[r])
	}
	if cop.Obs[g] != 0 {
		t.Fatalf("D-cone net observability = %v, want 0 under primary view", cop.Obs[g])
	}
	// OUT = AND(R, X1) with R stuck 0: the output is dead too.
	out, _ := c.NetByName("OUT")
	if cop.P[out] != 0 {
		t.Fatalf("output p = %v, want 0 with storage held at 0", cop.P[out])
	}
}

func TestViewCOPScannedViewOpensTheCone(t *testing.T) {
	c, r, g := buriedFF(t)
	// Partial-scan view: R becomes an input, its D net an output.
	inputs := append(append([]int(nil), c.PIs...), r)
	outputs := append(append([]int(nil), c.POs...), c.Gates[r].Fanin[0])
	cop := ViewCOP(c, inputs, outputs)
	if cop.P[r] != 0.5 {
		t.Fatalf("scanned DFF p = %v, want 0.5", cop.P[r])
	}
	if cop.Obs[g] != 1 {
		t.Fatalf("D net observability = %v, want 1 as a view output", cop.Obs[g])
	}
	f := fault.Fault{Gate: g, Pin: fault.Stem, SA: logic.Zero}
	if dp := cop.Detect(c, f); dp <= 0 {
		t.Fatalf("scanned view detect probability = %v, want > 0", dp)
	}
}

func TestReconvergentStemsFindsDiamond(t *testing.T) {
	// A diamond: S fans out to two branches that reconverge at R.
	c := logic.New("diamond")
	a := c.AddInput("A")
	b := c.AddInput("B")
	s := c.AddGate(logic.And, "S", a, b)
	u := c.AddGate(logic.Not, "U", s)
	v := c.AddGate(logic.Buf, "V", s)
	c.MarkOutput(c.AddGate(logic.And, "R", u, v))
	c.MustFinalize()
	stems := ReconvergentStems(c)
	if len(stems) != 1 || stems[0] != s {
		t.Fatalf("stems = %v, want [%d] (the diamond stem)", stems, s)
	}
}

func TestReconvergentStemsEmptyOnTree(t *testing.T) {
	// A pure tree: every net has one reader, no reconvergence anywhere.
	c := logic.New("tree")
	var leaves []int
	for i := 0; i < 4; i++ {
		leaves = append(leaves, c.AddInput(string(rune('A'+i))))
	}
	l := c.AddGate(logic.And, "L", leaves[0], leaves[1])
	r := c.AddGate(logic.Or, "R", leaves[2], leaves[3])
	c.MarkOutput(c.AddGate(logic.Xor, "T", l, r))
	c.MustFinalize()
	if stems := ReconvergentStems(c); len(stems) != 0 {
		t.Fatalf("tree reported reconvergent stems %v", stems)
	}
}

func TestReconvergentStemsMultiBranchFanout(t *testing.T) {
	// Fanout without reconvergence: S feeds two disjoint outputs.
	c := logic.New("fan")
	a := c.AddInput("A")
	b := c.AddInput("B")
	s := c.AddGate(logic.And, "S", a, b)
	c.MarkOutput(c.AddGate(logic.Not, "O1", s))
	c.MarkOutput(c.AddGate(logic.Buf, "O2", s))
	c.MustFinalize()
	if stems := ReconvergentStems(c); len(stems) != 0 {
		t.Fatalf("disjoint fanout reported reconvergence: %v", stems)
	}
}

func TestReportSectionShape(t *testing.T) {
	c, _, g := buriedFF(t)
	faults := fault.CollapseEquiv(c, fault.Universe(c)).Reps
	sec := ReportSection(c, c.PIs, c.POs, faults, 5)
	if _, ok := sec["scoap"]; !ok {
		t.Fatal("no scoap summary")
	}
	nets, ok := sec["hardest_nets"].([]map[string]any)
	if !ok || len(nets) == 0 {
		t.Fatalf("hardest_nets missing or empty: %v", sec["hardest_nets"])
	}
	for _, row := range nets {
		for _, k := range []string{"net", "cc0", "cc1", "co", "p1", "obs"} {
			if _, ok := row[k]; !ok {
				t.Fatalf("hardest_nets row missing %q: %v", k, row)
			}
		}
	}
	if n, ok := sec["reconvergent_stems"].(int); !ok || n < 0 {
		t.Fatalf("reconvergent_stems missing: %v", sec["reconvergent_stems"])
	}
	_ = g
}

func TestCeilInf(t *testing.T) {
	if ceilInf(Inf) != -1 || ceilInf(Inf+5) != -1 {
		t.Fatal("Inf sentinel not mapped to -1")
	}
	if ceilInf(7) != 7 {
		t.Fatal("finite measure distorted")
	}
}
