// Package lfsr implements linear feedback shift registers — the
// machinery behind Signature Analysis, BILBO and autonomous testing:
// Fibonacci and Galois forms, the maximal-length tap tables of Peterson
// & Weldon [8] the paper points to, multiple-input signature registers
// (MISRs), period measurement, and aliasing analysis.
package lfsr

import (
	"fmt"
	"math/bits"

	"dft/internal/telemetry"
)

// Batched telemetry on the Default registry. Clock/ClockIn are a few
// nanoseconds each, so single clocks are never counted individually —
// only the stream-level entry points add their clock totals here.
var (
	cClocks         = telemetry.Default().Counter("lfsr.clocks")
	cSignatures     = telemetry.Default().Counter("lfsr.signatures")
	cMISRWords      = telemetry.Default().Counter("lfsr.misr.words")
	cAliasingChecks = telemetry.Default().Counter("lfsr.aliasing.checks")
)

// maximalTaps[n] lists tap positions (1-based, counting from the input
// stage as in the paper's Fig. 7) of a maximal-length LFSR of width n.
// Entries follow the standard primitive-polynomial tables; width 3 with
// taps {2,3} is exactly the register of Fig. 7.
var maximalTaps = map[int][]int{
	1:  {1},
	2:  {1, 2},
	3:  {2, 3},
	4:  {3, 4},
	5:  {3, 5},
	6:  {5, 6},
	7:  {6, 7},
	8:  {4, 5, 6, 8},
	9:  {5, 9},
	10: {7, 10},
	11: {9, 11},
	12: {4, 10, 11, 12},
	13: {8, 11, 12, 13},
	14: {2, 12, 13, 14},
	15: {14, 15},
	16: {4, 13, 15, 16},
	17: {14, 17},
	18: {11, 18},
	19: {14, 17, 18, 19},
	20: {17, 20},
	21: {19, 21},
	22: {21, 22},
	23: {18, 23},
	24: {17, 22, 23, 24},
	25: {22, 25},
	26: {20, 24, 25, 26},
	27: {22, 25, 26, 27},
	28: {25, 28},
	29: {27, 29},
	30: {7, 28, 29, 30},
	31: {28, 31},
	32: {10, 30, 31, 32},
}

// MaximalTaps returns tap positions for a maximal-length register of
// width n (1 ≤ n ≤ 32), consulting the Peterson & Weldon style table.
func MaximalTaps(n int) ([]int, error) {
	t, ok := maximalTaps[n]
	if !ok {
		return nil, fmt.Errorf("lfsr: no maximal tap entry for width %d", n)
	}
	return append([]int(nil), t...), nil
}

// LFSR is a Fibonacci linear feedback shift register. State bit i
// (0-based) is stage Q(i+1) in the paper's drawing; shifting moves each
// stage right (Q1→Q2→…) and feeds the XOR of the tap stages into Q1.
type LFSR struct {
	n     int
	taps  []int // 1-based stage numbers
	state uint64
}

// New creates a Fibonacci LFSR of width n with the given taps.
func New(n int, taps []int) *LFSR {
	if n < 1 || n > 64 {
		panic("lfsr: width out of range")
	}
	for _, t := range taps {
		if t < 1 || t > n {
			panic(fmt.Sprintf("lfsr: tap %d out of range 1..%d", t, n))
		}
	}
	return &LFSR{n: n, taps: append([]int(nil), taps...)}
}

// NewMaximal creates a maximal-length LFSR of width n from the table.
func NewMaximal(n int) *LFSR {
	taps, err := MaximalTaps(n)
	if err != nil {
		panic(err)
	}
	return New(n, taps)
}

// Width returns the register width.
func (l *LFSR) Width() int { return l.n }

// Taps returns a copy of the tap list.
func (l *LFSR) Taps() []int { return append([]int(nil), l.taps...) }

// State returns the register contents; bit i of the result is stage
// Q(i+1).
func (l *LFSR) State() uint64 { return l.state }

// SetState loads the register.
func (l *LFSR) SetState(s uint64) {
	l.state = s & l.mask()
}

func (l *LFSR) mask() uint64 {
	if l.n == 64 {
		return ^uint64(0)
	}
	return 1<<uint(l.n) - 1
}

// feedback computes the XOR of the tap stages.
func (l *LFSR) feedback() uint64 {
	var fb uint64
	for _, t := range l.taps {
		fb ^= l.state >> uint(t-1) & 1
	}
	return fb
}

// Clock shifts the register once with serial input 0 beyond the
// feedback: Q1 gets feedback, Qi gets Q(i-1).
func (l *LFSR) Clock() {
	l.ClockIn(0)
}

// ClockIn shifts once, XORing the external bit into the feedback —
// exactly the signature-analyzer configuration of Fig. 8 where the
// probed data stream enters the feedback EXCLUSIVE-OR.
func (l *LFSR) ClockIn(in uint64) {
	fb := l.feedback() ^ (in & 1)
	l.state = (l.state<<1 | fb) & l.mask()
}

// Bit returns stage Qi (1-based).
func (l *LFSR) Bit(i int) uint64 { return l.state >> uint(i-1) & 1 }

// Output returns the last stage Qn, the conventional serial output.
func (l *LFSR) Output() uint64 { return l.Bit(l.n) }

// Sequence clocks the register k times from the current state and
// returns the successive states (after each clock).
func (l *LFSR) Sequence(k int) []uint64 {
	out := make([]uint64, k)
	for i := 0; i < k; i++ {
		l.Clock()
		out[i] = l.state
	}
	cClocks.Add(int64(k))
	return out
}

// Period measures the cycle length from the current (nonzero) state,
// up to limit clocks; it returns 0 if no return occurs within limit.
func (l *LFSR) Period(limit int) int {
	start := l.state
	for i := 1; i <= limit; i++ {
		l.Clock()
		if l.state == start {
			cClocks.Add(int64(i))
			return i
		}
	}
	cClocks.Add(int64(limit))
	return 0
}

// Signature compresses a bit stream: the register is cleared, each bit
// clocked in, and the final state returned. This is the signature of
// the paper's Fig. 8: "the remainder of the data stream after division
// by an irreducible polynomial".
func (l *LFSR) Signature(stream []uint64) uint64 {
	l.state = 0
	for _, b := range stream {
		l.ClockIn(b)
	}
	cClocks.Add(int64(len(stream)))
	cSignatures.Inc()
	return l.state
}

// SignatureBits is Signature over a boolean stream.
func (l *LFSR) SignatureBits(stream []bool) uint64 {
	l.state = 0
	for _, b := range stream {
		if b {
			l.ClockIn(1)
		} else {
			l.ClockIn(0)
		}
	}
	cClocks.Add(int64(len(stream)))
	cSignatures.Inc()
	return l.state
}

// MISR is a multiple-input signature register: an LFSR whose stages
// each XOR in one input line per clock. It is the compression mode of
// the BILBO register (Fig. 19(d)).
type MISR struct {
	l      *LFSR
	inputs int
}

// NewMISR creates a MISR of width n (taps from the maximal table) with
// the given number of parallel inputs (≤ n).
func NewMISR(n, inputs int) *MISR {
	if inputs > n {
		panic("lfsr: MISR inputs exceed width")
	}
	return &MISR{l: NewMaximal(n), inputs: inputs}
}

// State returns the register contents.
func (m *MISR) State() uint64 { return m.l.State() }

// SetState loads the register.
func (m *MISR) SetState(s uint64) { m.l.SetState(s) }

// Width returns the register width.
func (m *MISR) Width() int { return m.l.n }

// Clock shifts once, XORing word's low bits into the corresponding
// stages (bit i of word into stage Q(i+1)).
func (m *MISR) Clock(word uint64) {
	fb := m.l.feedback()
	mask := uint64(1)<<uint(m.inputs) - 1
	if m.inputs == 64 {
		mask = ^uint64(0)
	}
	m.l.state = ((m.l.state<<1 | fb) ^ (word & mask)) & m.l.mask()
}

// Compress clears the register, clocks in every word, and returns the
// final signature.
func (m *MISR) Compress(words []uint64) uint64 {
	m.l.state = 0
	for _, w := range words {
		m.Clock(w)
	}
	cClocks.Add(int64(len(words)))
	cMISRWords.Add(int64(len(words)))
	cSignatures.Inc()
	return m.l.State()
}

// AliasingProbability returns the asymptotic probability that a random
// error stream leaves a k-bit signature register unchanged: 2^-k, the
// paper's "with a 16-bit LFSR the probability of detecting one or more
// errors is extremely high".
func AliasingProbability(width int) float64 {
	cAliasingChecks.Inc()
	return 1.0 / float64(uint64(1)<<uint(width))
}

// OnesCount is a helper for syndrome-style analyses of LFSR states.
func OnesCount(x uint64) int { return bits.OnesCount64(x) }
