package lfsr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestFig7Sequence reproduces the counting sequence of the paper's
// Fig. 7: the 3-bit register with Q2⊕Q3 feedback, starting from
// Q1Q2Q3 = 100, walks all seven nonzero states and returns.
func TestFig7Sequence(t *testing.T) {
	l := New(3, []int{2, 3})
	l.SetState(0b001) // Q1=1, Q2=0, Q3=0
	want := []uint64{
		0b010, // 0,1,0
		0b101, // 1,0,1
		0b011, // 1,1,0  (Q1=1,Q2=1,Q3=0 -> bits 011)
		0b111, // 1,1,1
		0b110, // 0,1,1
		0b100, // 0,0,1
		0b001, // back to start
	}
	for i, w := range want {
		l.Clock()
		if l.State() != w {
			t.Fatalf("step %d: state %03b, want %03b", i+1, l.State(), w)
		}
	}
}

func TestFig7AllSeedsCycle(t *testing.T) {
	// Every nonzero seed lies on the same 7-cycle; the zero seed is a
	// fixed point. This is Fig. 7's "counting capabilities" table.
	for seed := uint64(1); seed < 8; seed++ {
		l := New(3, []int{2, 3})
		l.SetState(seed)
		if p := l.Period(8); p != 7 {
			t.Fatalf("seed %03b: period %d, want 7", seed, p)
		}
	}
	l := New(3, []int{2, 3})
	l.SetState(0)
	l.Clock()
	if l.State() != 0 {
		t.Fatal("zero state must be a fixed point")
	}
}

func TestMaximalPeriods(t *testing.T) {
	for n := 1; n <= 18; n++ {
		l := NewMaximal(n)
		l.SetState(1)
		want := 1<<uint(n) - 1
		if p := l.Period(want + 1); p != want {
			t.Fatalf("width %d: period %d, want %d", n, p, want)
		}
	}
}

func TestMaximalPeriodsLargeSpot(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, n := range []int{20, 22} {
		l := NewMaximal(n)
		l.SetState(1)
		want := 1<<uint(n) - 1
		if p := l.Period(want + 1); p != want {
			t.Fatalf("width %d: period %d, want %d", n, p, want)
		}
	}
}

func TestMaximalTapsCoverage(t *testing.T) {
	for n := 1; n <= 32; n++ {
		taps, err := MaximalTaps(n)
		if err != nil {
			t.Fatalf("width %d: %v", n, err)
		}
		if len(taps) == 0 || len(taps)%2 != 0 && n > 1 {
			// Primitive polynomials over GF(2) have an even number of
			// feedback taps (odd weight including x^0) except n=1.
			t.Fatalf("width %d: suspicious tap set %v", n, taps)
		}
	}
	if _, err := MaximalTaps(33); err == nil {
		t.Fatal("expected error for width 33")
	}
}

// TestSignatureLinearity: the signature of a⊕b equals sig(a)⊕sig(b) —
// signatures are remainders of polynomial division, which is linear.
func TestSignatureLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50
		a := make([]uint64, n)
		b := make([]uint64, n)
		x := make([]uint64, n)
		for i := 0; i < n; i++ {
			a[i] = uint64(rng.Intn(2))
			b[i] = uint64(rng.Intn(2))
			x[i] = a[i] ^ b[i]
		}
		l := NewMaximal(16)
		return l.Signature(a)^l.Signature(b) == l.Signature(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestSingleErrorAlwaysDetected: any single-bit error changes the
// signature (x^k mod p(x) is never 0).
func TestSingleErrorAlwaysDetected(t *testing.T) {
	stream := make([]uint64, 200)
	l := NewMaximal(16)
	ref := l.Signature(stream)
	for k := 0; k < len(stream); k++ {
		stream[k] = 1
		if l.Signature(stream) == ref {
			t.Fatalf("single error at position %d aliased", k)
		}
		stream[k] = 0
	}
}

// TestAliasingRateMatchesTheory: for random nonzero error streams the
// aliasing probability of a k-bit register approaches 2^-k.
func TestAliasingRateMatchesTheory(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, width := range []int{4, 8} {
		l := NewMaximal(width)
		trials, aliased := 40000, 0
		for i := 0; i < trials; i++ {
			errStream := make([]uint64, 64)
			nonzero := false
			for k := range errStream {
				errStream[k] = uint64(rng.Intn(2))
				nonzero = nonzero || errStream[k] == 1
			}
			if !nonzero {
				errStream[0] = 1
			}
			if l.Signature(errStream) == 0 {
				aliased++ // error stream maps to zero remainder: undetected
			}
		}
		got := float64(aliased) / float64(trials)
		want := AliasingProbability(width)
		if got < want/2 || got > want*2 {
			t.Fatalf("width %d: empirical aliasing %.5f vs theory %.5f", width, got, want)
		}
	}
}

func TestSignatureBitsAgrees(t *testing.T) {
	l := NewMaximal(8)
	bitsU := []uint64{1, 0, 1, 1, 0, 0, 1}
	bitsB := []bool{true, false, true, true, false, false, true}
	if l.Signature(bitsU) != l.SignatureBits(bitsB) {
		t.Fatal("Signature and SignatureBits disagree")
	}
}

func TestMISRCompressDetectsErrors(t *testing.T) {
	m := NewMISR(8, 8)
	rng := rand.New(rand.NewSource(3))
	words := make([]uint64, 100)
	for i := range words {
		words[i] = uint64(rng.Intn(256))
	}
	ref := m.Compress(words)
	// Corrupt one word: signature must change (single-error detection).
	for trial := 0; trial < 50; trial++ {
		k := rng.Intn(len(words))
		bit := uint64(1) << uint(rng.Intn(8))
		words[k] ^= bit
		if m.Compress(words) == ref {
			t.Fatalf("single corrupted response word aliased (word %d bit %x)", k, bit)
		}
		words[k] ^= bit
	}
}

func TestMISRWidthAndState(t *testing.T) {
	m := NewMISR(16, 8)
	if m.Width() != 16 {
		t.Fatal("width")
	}
	m.SetState(0xABC)
	if m.State() != 0xABC {
		t.Fatal("state round trip")
	}
}

func TestLFSRSequenceAndOutput(t *testing.T) {
	l := New(3, []int{2, 3})
	l.SetState(0b001)
	seq := l.Sequence(7)
	if len(seq) != 7 || seq[6] != 0b001 {
		t.Fatalf("sequence %v", seq)
	}
	l.SetState(0b100)
	if l.Output() != 1 {
		t.Fatal("output should be Q3=1")
	}
	if l.Bit(1) != 0 || l.Bit(3) != 1 {
		t.Fatal("Bit() indexing wrong")
	}
}

func TestNewValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, []int{1}) },
		func() { New(3, []int{4}) },
		func() { NewMISR(4, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkSignature16(b *testing.B) {
	l := NewMaximal(16)
	stream := make([]uint64, 1000)
	for i := range stream {
		stream[i] = uint64(i & 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Signature(stream)
	}
}
