package scanset

import (
	"testing"

	"dft/internal/atpg"
	"dft/internal/circuits"
	"dft/internal/fault"
	"dft/internal/sim"
)

func TestSampleSnapshotsRunningMachine(t *testing.T) {
	c := circuits.Counter(4)
	m := sim.NewMachine(c)
	taps := append([]int(nil), c.DFFs...)
	ss := New(m, taps, nil)

	// Run 5 counting cycles, snapshot, verify it matches the counter
	// value, then keep running: the snapshot must not disturb state.
	for i := 0; i < 5; i++ {
		m.Step([]bool{true})
	}
	snap := ss.Snapshot()
	var got uint
	for i, b := range snap {
		if b {
			got |= 1 << uint(i)
		}
	}
	if got != 5 {
		t.Fatalf("snapshot = %d, want 5", got)
	}
	m.Step([]bool{true})
	if st := m.State(); !st[1] || st[0] {
		t.Fatalf("machine disturbed by snapshot: %v", st)
	}
	if ss.ShiftOps != len(taps) {
		t.Fatalf("shift ops = %d, want %d", ss.ShiftOps, len(taps))
	}
}

func TestSampleInternalNets(t *testing.T) {
	// Scan/Set can sample arbitrary nets, not just latches.
	c := circuits.Counter(3)
	m := sim.NewMachine(c)
	t1, _ := c.NetByName("T1")
	ca0, _ := c.NetByName("CA0")
	ss := New(m, []int{t1, ca0}, nil)
	m.Step([]bool{true}) // counter = 1
	m.Apply([]bool{true})
	snap := ss.Snapshot()
	// Q0=1, EN=1: CA0 = EN AND Q0 = 1; T1 = Q1 XOR CA0 = 1.
	if !snap[0] || !snap[1] {
		t.Fatalf("internal samples %v, want [true true]", snap)
	}
}

func TestSetFunctionLoadsLatches(t *testing.T) {
	c := circuits.Counter(4)
	m := sim.NewMachine(c)
	ss := New(m, c.DFFs, c.DFFs)
	ss.Set([]bool{true, false, true, false}) // load 5
	m.Step([]bool{true})
	var got uint
	for i, b := range m.State() {
		if b {
			got |= 1 << uint(i)
		}
	}
	if got != 6 {
		t.Fatalf("after set(5)+count: %d, want 6", got)
	}
}

func TestMaxBitsEnforced(t *testing.T) {
	c := circuits.Counter(4)
	m := sim.NewMachine(c)
	taps := make([]int, 65)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 65 taps")
		}
	}()
	New(m, taps, nil)
}

func TestSetPointValidation(t *testing.T) {
	c := circuits.Counter(4)
	m := sim.NewMachine(c)
	en, _ := c.NetByName("EN")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-DFF set point")
		}
	}()
	New(m, nil, []int{en})
}

// TestPartialScanCoverageBand quantifies the paper's caveat: "if all
// the latches ... are not both scanned and set, then the test
// generation function is not necessarily reduced to a total
// combinational test generation function". Partial Scan/Set coverage
// sits between primary-pins-only and full scan.
func TestPartialScanCoverageBand(t *testing.T) {
	c := circuits.Counter(8)
	u := fault.Universe(c)
	cl := fault.CollapseEquiv(c, u)

	gen := func(view atpg.View) float64 {
		res := atpg.Generate(c, view, cl.Reps, atpg.Config{Engine: atpg.EnginePodem, MaxBacktracks: 2000})
		return res.RawCover
	}
	primary := gen(atpg.PrimaryView(c))
	partial := gen(atpg.PartialScanView(c, c.DFFs[:4]))
	full := gen(atpg.FullScanView(c))
	if full != 1.0 {
		t.Fatalf("full scan coverage %.3f", full)
	}
	if !(primary < partial && partial < full) {
		t.Fatalf("coverage ordering violated: primary %.3f, partial %.3f, full %.3f",
			primary, partial, full)
	}
	p := New(sim.NewMachine(c), c.DFFs[:4], c.DFFs[:4]).Profile()
	if p.SetDFFs != 4 || p.TotalDFFs != 8 {
		t.Fatalf("profile %v", p)
	}
}

func TestMachineAccessor(t *testing.T) {
	c := circuits.Counter(3)
	m := sim.NewMachine(c)
	ss := New(m, c.DFFs, nil)
	if ss.Machine() != m {
		t.Fatal("Machine accessor broken")
	}
}
