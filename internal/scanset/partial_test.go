package scanset

import (
	"testing"

	"dft/internal/atpg"
	"dft/internal/circuits"
	"dft/internal/fault"
)

func TestDFFGraphCounter(t *testing.T) {
	c := circuits.Counter(4)
	g := DFFGraph(c)
	// Every counter bit feeds itself (toggle) and all higher bits.
	q0 := c.DFFs[0]
	outs := map[int]bool{}
	for _, m := range g[q0] {
		outs[m] = true
	}
	if !outs[q0] {
		t.Fatal("Q0 must feed itself")
	}
	if !outs[c.DFFs[3]] {
		t.Fatal("Q0 must feed Q3 through the carry chain")
	}
	// Q3 feeds only itself.
	for _, m := range g[c.DFFs[3]] {
		if m != c.DFFs[3] {
			t.Fatalf("Q3 unexpectedly feeds %s", c.NameOf(m))
		}
	}
}

func TestShiftRegisterAcyclic(t *testing.T) {
	c := circuits.ShiftRegister(5)
	if !CutsAllCycles(c, nil) {
		t.Fatal("a shift register has no feedback cycles")
	}
	if got := SelectPartialScan(c, 2); len(got) != 2 {
		t.Fatalf("budget not honored: %d", len(got))
	}
}

func TestSelectionCutsCycles(t *testing.T) {
	// Every counter bit self-loops, so cutting all cycles needs all
	// flip-flops; with a smaller budget the selection spends it on
	// self-loops first.
	c := circuits.Counter(5)
	sel := SelectPartialScan(c, 3)
	if len(sel) != 3 {
		t.Fatalf("selected %d", len(sel))
	}
	g := DFFGraph(c)
	for _, d := range sel {
		self := false
		for _, m := range g[d] {
			if m == d {
				self = true
			}
		}
		if !self {
			t.Fatalf("budget spent on %s which has no self-loop", c.NameOf(d))
		}
	}
	full := SelectPartialScan(c, 5)
	if !CutsAllCycles(c, full) {
		t.Fatal("full selection must cut everything")
	}
}

func TestJohnsonRingCut(t *testing.T) {
	// The Johnson counter is one big ring (plus hold self-loops from
	// the enable mux). Scanning every stage is sufficient; fewer than
	// n cannot remove the hold self-loops, but the RING itself is cut
	// by any single stage — check via a ring-only view by disabling
	// hold loops is overkill; assert the API contract instead.
	c := circuits.JohnsonCounter(4)
	sel := SelectPartialScan(c, 4)
	if !CutsAllCycles(c, sel) {
		t.Fatal("scanning all stages must cut all cycles")
	}
}

// TestCoverageImprovesWithBudget: ATPG coverage under the partial-scan
// view grows with the selection budget, and the cycle-aware selection
// beats scanning the first k flip-flops on a mixed design.
func TestCoverageImprovesWithBudget(t *testing.T) {
	c := circuits.Counter(8)
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	cov := func(scanned []int) float64 {
		res := atpg.Generate(c, atpg.PartialScanView(c, scanned), cl.Reps,
			atpg.Config{Engine: atpg.EnginePodem, MaxBacktracks: 1500})
		return res.RawCover
	}
	prev := -1.0
	for _, k := range []int{0, 2, 4, 8} {
		sel := SelectPartialScan(c, k)
		got := cov(sel)
		if got+1e-9 < prev {
			t.Fatalf("coverage fell from %.3f to %.3f at budget %d", prev, got, k)
		}
		prev = got
	}
	if prev < 1.0 {
		t.Fatalf("full-budget coverage %.3f", prev)
	}
	// Cycle-aware selection at budget 4 should not lose to naive
	// first-4 (for the counter the hard bits are the high ones, which
	// naive misses).
	naive := cov(c.DFFs[:4])
	smart := cov(SelectPartialScan(c, 4))
	if smart < naive {
		t.Fatalf("smart selection %.3f below naive %.3f", smart, naive)
	}
}

func TestSelectPartialScanFullBudget(t *testing.T) {
	c := circuits.Counter(4)
	sel := SelectPartialScan(c, 99)
	if len(sel) != 4 {
		t.Fatalf("full budget returned %d", len(sel))
	}
}

func TestSelectPartialScanDepthFill(t *testing.T) {
	// A shift register has no cycles, so the whole budget goes to the
	// SCOAP-depth fill; the deepest stages must be picked.
	c := circuits.ShiftRegister(6)
	sel := SelectPartialScan(c, 3)
	if len(sel) != 3 {
		t.Fatalf("selected %d", len(sel))
	}
	if !CutsAllCycles(c, nil) {
		t.Fatal("shift register must be acyclic")
	}
}

func TestSelectPartialScanMixedFeedback(t *testing.T) {
	// Johnson counter: budget smaller than n exercises the greedy
	// degree-product cut branch (ring + hold loops).
	c := circuits.JohnsonCounter(5)
	sel := SelectPartialScan(c, 3)
	if len(sel) != 3 {
		t.Fatalf("selected %d", len(sel))
	}
}
