package scanset

import (
	"sort"

	"dft/internal/logic"
	"dft/internal/testability"
)

// DFFGraph builds the flip-flop dependency graph: an edge A→B means
// flip-flop B's next state depends (combinationally) on A's output.
// Cycles in this graph are what make sequential ATPG exponential; the
// classical partial-scan strategy is to scan enough flip-flops to cut
// them.
func DFFGraph(c *logic.Circuit) map[int][]int {
	index := map[int]bool{}
	for _, d := range c.DFFs {
		index[d] = true
	}
	g := map[int][]int{}
	for _, b := range c.DFFs {
		// Walk the combinational fanin cone of B's D input.
		seen := map[int]bool{}
		var stack []int
		stack = append(stack, c.Gates[b].Fanin[0])
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[n] {
				continue
			}
			seen[n] = true
			if index[n] {
				g[n] = append(g[n], b)
				continue // do not walk through other flip-flops
			}
			stack = append(stack, c.Gates[n].Fanin...)
		}
	}
	return g
}

// hasCycleAvoiding reports whether the graph restricted to nodes not
// in removed contains a cycle.
func hasCycleAvoiding(g map[int][]int, nodes []int, removed map[int]bool) bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[int]int{}
	var visit func(n int) bool
	visit = func(n int) bool {
		color[n] = gray
		for _, m := range g[n] {
			if removed[m] {
				continue
			}
			switch color[m] {
			case gray:
				return true
			case white:
				if visit(m) {
					return true
				}
			}
		}
		color[n] = black
		return false
	}
	for _, n := range nodes {
		if removed[n] {
			continue
		}
		if color[n] == white && visit(n) {
			return true
		}
	}
	return false
}

// SelectPartialScan chooses up to k flip-flops to scan: first a greedy
// minimum-feedback-vertex-set pass that cuts the dependency cycles
// (self-loops first, then highest degree), then — if budget remains —
// the flip-flops that SCOAP rates hardest to control sequentially.
// The returned slice holds element net IDs in c.DFFs order.
func SelectPartialScan(c *logic.Circuit, k int) []int {
	if k >= c.NumDFFs() {
		return append([]int(nil), c.DFFs...)
	}
	g := DFFGraph(c)
	removed := map[int]bool{}
	var picked []int
	pick := func(n int) {
		removed[n] = true
		picked = append(picked, n)
	}
	// Self-loops are unconditionally in every feedback set.
	for _, n := range c.DFFs {
		if len(picked) >= k {
			break
		}
		for _, m := range g[n] {
			if m == n {
				pick(n)
				break
			}
		}
	}
	// Greedy degree-product cuts until acyclic.
	for len(picked) < k && hasCycleAvoiding(g, c.DFFs, removed) {
		best, bestScore := -1, -1
		indeg := map[int]int{}
		for n, outs := range g {
			if removed[n] {
				continue
			}
			for _, m := range outs {
				if !removed[m] {
					indeg[m]++
				}
			}
		}
		for _, n := range c.DFFs {
			if removed[n] {
				continue
			}
			out := 0
			for _, m := range g[n] {
				if !removed[m] {
					out++
				}
			}
			score := (indeg[n] + 1) * (out + 1)
			if score > bestScore {
				best, bestScore = n, score
			}
		}
		if best < 0 {
			break
		}
		pick(best)
	}
	// Spend the rest of the budget on sequentially-deep flip-flops.
	if len(picked) < k {
		m := testability.Analyze(c)
		rest := make([]int, 0, c.NumDFFs())
		for _, d := range c.DFFs {
			if !removed[d] {
				rest = append(rest, d)
			}
		}
		depth := func(d int) int {
			s := m.SD1[d]
			if m.SD0[d] > s {
				s = m.SD0[d]
			}
			return s
		}
		sort.Slice(rest, func(i, j int) bool { return depth(rest[i]) > depth(rest[j]) })
		for _, d := range rest {
			if len(picked) >= k {
				break
			}
			pick(d)
		}
	}
	// Report in c.DFFs order for determinism.
	order := map[int]int{}
	for i, d := range c.DFFs {
		order[d] = i
	}
	sort.Slice(picked, func(i, j int) bool { return order[picked[i]] < order[picked[j]] })
	return picked
}

// CutsAllCycles reports whether scanning the given flip-flops leaves
// the dependency graph acyclic (self-loops included).
func CutsAllCycles(c *logic.Circuit, scanned []int) bool {
	g := DFFGraph(c)
	removed := map[int]bool{}
	for _, d := range scanned {
		removed[d] = true
	}
	return !hasCycleAvoiding(g, c.DFFs, removed)
}
