// Package scanset implements Sperry-Univac's Scan/Set logic (Fig. 15):
// a bit-serial shadow shift register, outside the system data path,
// that samples up to 64 arbitrary points of the running machine in a
// single clock and shifts them out without disturbing operation, plus
// the dual "set" function that drives values into system latches.
//
// Because the shadow register need not touch every latch, Scan/Set
// gives partial controllability/observability: the package quantifies
// what that costs in achievable fault coverage relative to full scan.
package scanset

import (
	"fmt"

	"dft/internal/logic"
	"dft/internal/sim"
)

// MaxBits is the width of the classical bit-serial register.
const MaxBits = 64

// ScanSet attaches a shadow register to a simulated machine. Taps are
// the sampled nets; SetPoints are flip-flops the set function can load.
type ScanSet struct {
	c         *logic.Circuit
	m         *sim.Machine
	taps      []int
	setPoints []int // DFF element nets
	reg       []bool
	ShiftOps  int // cycle accounting for the serial unload
}

// New wires a Scan/Set register to machine m sampling the given nets
// and able to set the given flip-flops.
func New(m *sim.Machine, taps []int, setPoints []int) *ScanSet {
	c := m.Circuit()
	if len(taps) > MaxBits {
		panic(fmt.Sprintf("scanset: %d taps exceed the %d-bit register", len(taps), MaxBits))
	}
	for _, sp := range setPoints {
		if c.Gates[sp].Type != logic.DFF {
			panic(fmt.Sprintf("scanset: set point %s is not a storage element", c.NameOf(sp)))
		}
	}
	return &ScanSet{
		c: c, m: m,
		taps:      append([]int(nil), taps...),
		setPoints: append([]int(nil), setPoints...),
		reg:       make([]bool, len(taps)),
	}
}

// Sample loads the shadow register from the tapped nets in one clock —
// "a snapshot of the sequential machine can be obtained and off-loaded
// without any degradation in system performance".
func (s *ScanSet) Sample() {
	for i, n := range s.taps {
		s.reg[i] = s.m.Peek(n)
	}
}

// ShiftOut serially unloads the register, returning the sampled bits
// in tap order and charging one shift per bit.
func (s *ScanSet) ShiftOut() []bool {
	out := append([]bool(nil), s.reg...)
	s.ShiftOps += len(s.reg)
	return out
}

// Snapshot is Sample followed by ShiftOut.
func (s *ScanSet) Snapshot() []bool {
	s.Sample()
	return s.ShiftOut()
}

// Set drives the given values into the set points (the funnel of
// Fig. 15's set function): the machine's flip-flops are loaded
// directly, charging one shift per bit to deliver the data.
func (s *ScanSet) Set(vals []bool) {
	if len(vals) != len(s.setPoints) {
		panic(fmt.Sprintf("scanset: Set with %d values for %d set points", len(vals), len(s.setPoints)))
	}
	state := s.m.State()
	index := map[int]int{}
	for k, d := range s.c.DFFs {
		index[d] = k
	}
	for i, sp := range s.setPoints {
		state[index[sp]] = vals[i]
	}
	s.m.SetState(state)
	s.ShiftOps += len(vals)
}

// Machine exposes the underlying machine for driving system cycles.
func (s *ScanSet) Machine() *sim.Machine { return s.m }

// CoverageProfile describes the observability a Scan/Set configuration
// achieves: which flip-flops are settable, which nets sampled.
type CoverageProfile struct {
	TotalDFFs   int
	SetDFFs     int
	SampledNets int
}

// Profile summarizes the configuration.
func (s *ScanSet) Profile() CoverageProfile {
	return CoverageProfile{
		TotalDFFs:   s.c.NumDFFs(),
		SetDFFs:     len(s.setPoints),
		SampledNets: len(s.taps),
	}
}
