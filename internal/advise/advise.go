// Package advise closes the design-for-testability loop: instead of
// only measuring how hard a network is to test, it recommends and
// applies the paper's structured remedies — test points (Section:
// "test points used as primary inputs/outputs"), partial scan, and
// scan-chain insertion — until a fault-coverage target is met or an
// overhead budget is spent.
//
// Each iteration (1) probes the working netlist with a bounded
// random-pattern + PODEM grading to find the faults that remain
// undetected, (2) generates candidate interventions at the hard sites
// and unscanned storage elements, (3) scores each candidate by its
// predicted coverage gain per gate-equivalent of overhead under
// view-aware COP probabilities, and (4) applies the best one to a
// working copy of the netlist and re-grades. Coverage is monotone
// non-decreasing by construction: detections accumulate over the
// original collapsed fault list, interventions only ever add
// controllability and observability, and net IDs stay stable because
// every transformation appends elements.
package advise

import (
	"context"
	"math"

	"dft/internal/fault"
	"dft/internal/logic"
	"dft/internal/lssd"
	"dft/internal/telemetry"
)

// Default knobs: the production configuration for a zero Options.
const (
	DefaultTarget     = 0.99
	DefaultBudget     = 0.5
	DefaultMaxSteps   = 32
	DefaultPatterns   = 256
	DefaultBacktracks = 128
	DefaultProbes     = 48
	DefaultCandidates = 12
)

// Stop reasons recorded in Plan.StopReason.
const (
	StopTarget    = "target"    // coverage target reached
	StopBudget    = "budget"    // no useful candidate fits the remaining budget
	StopMaxSteps  = "max-steps" // step limit hit first
	StopExhausted = "exhausted" // no candidate predicts any gain
	StopCancelled = "cancelled" // context cancelled mid-run
)

// Options configures an advisor run. The zero value asks for 99%
// coverage within a 50% gate-overhead budget in at most 32 steps.
type Options struct {
	// Target is the fault-coverage goal in [0,1]; 0 means DefaultTarget.
	Target float64
	// Budget caps the added gate equivalents as a fraction of the
	// original network size (gates + 2 per storage element, the
	// lssd.Overhead convention); 0 means DefaultBudget.
	Budget float64
	// MaxSteps bounds the number of applied interventions; 0 means
	// DefaultMaxSteps.
	MaxSteps int
	// Patterns is the random-pattern budget of each probe; 0 means
	// DefaultPatterns.
	Patterns int
	// Backtracks bounds each PODEM probe; 0 means DefaultBacktracks.
	Backtracks int
	// Probes bounds the deterministic (PODEM) targets per probe; 0
	// means DefaultProbes.
	Probes int
	// Candidates bounds the interventions scored per iteration; 0
	// means DefaultCandidates.
	Candidates int
	// Seed is the master seed; per-iteration probe seeds derive from it
	// deterministically. 0 means 1.
	Seed uint64
	// Workers is the fault-engine sharding degree (fault.WorkersAuto).
	Workers int
	// Style selects the scan discipline for chain materialization and
	// overhead accounting (StyleLSSD or StyleMuxScan).
	Style lssd.Style
	// Metrics receives advise.* telemetry; nil means telemetry.Default().
	Metrics *telemetry.Registry
	// Checkpoint, when non-nil, is called after the baseline probe and
	// after every applied step with the plan so far — the long-running
	// service job's per-iteration checkpoint. The plan (including its
	// Bench dump) is fully populated at each call but only valid for
	// the duration of the call; retain a marshalled copy, not the
	// pointer.
	Checkpoint func(*Plan)
}

func (opt Options) withDefaults() Options {
	if opt.Target <= 0 {
		opt.Target = DefaultTarget
	}
	if opt.Budget <= 0 {
		opt.Budget = DefaultBudget
	}
	if opt.MaxSteps <= 0 {
		opt.MaxSteps = DefaultMaxSteps
	}
	if opt.Patterns <= 0 {
		opt.Patterns = DefaultPatterns
	}
	if opt.Backtracks <= 0 {
		opt.Backtracks = DefaultBacktracks
	}
	if opt.Probes <= 0 {
		opt.Probes = DefaultProbes
	}
	if opt.Candidates <= 0 {
		opt.Candidates = DefaultCandidates
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	return opt
}

// Step is one applied intervention with its measured effect.
type Step struct {
	// Kind is "observe", "control", "scan-ff" or "chain".
	Kind string `json:"kind"`
	// Net names the targeted net (the observed/gated net, or the
	// scanned storage element; a chain step names its first element).
	Net string `json:"net,omitempty"`
	// FFs lists every storage element a chain step scanned.
	FFs []string `json:"ffs,omitempty"`
	// Coverage is the graded fault coverage after this step; Delta is
	// the increase over the previous step (never negative).
	Coverage float64 `json:"coverage"`
	Delta    float64 `json:"delta"`
	// PredictedGain is the COP-estimated expected new detections that
	// ranked the candidate.
	PredictedGain float64 `json:"predicted_gain"`
	// OverheadGates/Overhead/Pins are cumulative through this step.
	OverheadGates int     `json:"overhead_gates"`
	Overhead      float64 `json:"overhead"`
	Pins          int     `json:"pins"`
	// Seed is the derived seed of the probe that graded this step.
	Seed uint64 `json:"seed"`
}

// Plan is the advisor's machine-readable output: the ordered
// interventions, their coverage/overhead trajectory, and the final
// instrumented netlist.
type Plan struct {
	Circuit  string  `json:"circuit"`
	Faults   int     `json:"faults"` // collapsed fault classes graded
	Seed     uint64  `json:"seed"`
	Target   float64 `json:"target"`
	Budget   float64 `json:"budget"`
	Baseline float64 `json:"baseline"` // coverage before any intervention
	Coverage float64 `json:"coverage"` // coverage after the last step
	Steps    []Step  `json:"steps"`
	// Scanned names the storage elements converted to scan, in chain
	// order.
	Scanned []string `json:"scanned,omitempty"`
	// OverheadGates/Overhead/Pins are the final cumulative totals.
	OverheadGates int     `json:"overhead_gates"`
	Overhead      float64 `json:"overhead"`
	Pins          int     `json:"pins"`
	StopReason    string  `json:"stop_reason"`
	// Bench is the working netlist with every test point applied, in
	// .bench form; scanned elements are listed in Scanned and graded
	// through a partial-scan view rather than materialized gates.
	Bench string `json:"bench"`
	// ChainBench, when any element was scanned, is the fully
	// materialized scan netlist (lssd.InsertPartial over Scanned).
	ChainBench string `json:"chain_bench,omitempty"`
}

// Run drives the advisor loop over a finalized circuit. The circuit is
// never modified; the returned plan carries the instrumented copy. On
// context cancellation Run returns the partial plan alongside the
// context's error, so callers can checkpoint what was decided so far.
func Run(ctx context.Context, c *logic.Circuit, opt Options) (*Plan, error) {
	opt = opt.withDefaults()
	reg := telemetry.OrDefault(opt.Metrics)
	defer reg.Timer("advise.run").Time()()
	ctx, span := telemetry.StartSpanCtx(ctx, reg, "advise.run")
	defer span.End()

	st := newState(c, opt)
	plan := &Plan{
		Circuit: c.Name,
		Faults:  len(st.faults),
		Seed:    opt.Seed,
		Target:  opt.Target,
		Budget:  opt.Budget,
	}
	stepsProg := reg.Progress("advise.steps.progress")
	stepsProg.SetTotal(int64(opt.MaxSteps))
	covProg := reg.Progress("advise.coverage.progress")
	covProg.SetTotal(10000)
	covGauge := reg.Gauge("advise.coverage")
	lastBP := int64(0)
	setCov := func(cov float64) {
		bp := int64(math.Round(cov * 10000))
		covGauge.Set(bp)
		if bp > lastBP {
			covProg.Add(bp - lastBP)
			lastBP = bp
		}
	}

	if err := st.probe(ctx, deriveSeed(opt.Seed, 0), opt, reg); err != nil {
		return st.finish(plan, StopCancelled, opt), err
	}
	plan.Baseline = st.coverage()
	setCov(plan.Baseline)
	if opt.Checkpoint != nil {
		opt.Checkpoint(st.finish(plan, "", opt))
	}

	budgetGE := int(opt.Budget * float64(st.origSize))
	for iter := 0; ; iter++ {
		if st.coverage() >= opt.Target {
			return st.finish(plan, StopTarget, opt), nil
		}
		if iter >= opt.MaxSteps {
			return st.finish(plan, StopMaxSteps, opt), nil
		}
		if err := ctx.Err(); err != nil {
			return st.finish(plan, StopCancelled, opt), err
		}
		_, isp := telemetry.StartSpanCtx(ctx, reg, "advise.iteration")
		cands := st.candidates(opt)
		base := st.baselineDetect(opt)
		for i := range cands {
			st.score(&cands[i], base, opt)
		}
		reg.Counter("advise.candidates.scored").Add(int64(len(cands)))
		best := pick(cands, budgetGE-st.overheadGE)
		if best == nil {
			isp.End()
			reason := StopExhausted
			for _, cd := range cands {
				if cd.gain > gainEps {
					reason = StopBudget // a useful candidate existed but none fit
					break
				}
			}
			return st.finish(plan, reason, opt), nil
		}
		isp.SetAttr("kind", best.kind)
		prev := st.coverage()
		step := Step{
			Kind:          best.kind,
			Net:           st.work.NameOf(best.net),
			PredictedGain: best.gain,
			Seed:          deriveSeed(opt.Seed, iter+1),
		}
		for _, ff := range best.ffs {
			step.FFs = append(step.FFs, st.work.NameOf(ff))
		}
		st.apply(*best)
		err := st.probe(ctx, step.Seed, opt, reg)
		reg.Counter("advise.interventions.applied").Inc()
		step.Coverage = st.coverage()
		step.Delta = step.Coverage - prev
		step.OverheadGates = st.overheadGE
		step.Overhead = float64(st.overheadGE) / float64(st.origSize)
		step.Pins = st.pins
		plan.Steps = append(plan.Steps, step)
		stepsProg.Inc()
		setCov(step.Coverage)
		isp.End()
		if err != nil {
			return st.finish(plan, StopCancelled, opt), err
		}
		if opt.Checkpoint != nil {
			opt.Checkpoint(st.finish(plan, "", opt))
		}
	}
}

// finish stamps the mutable tail of the plan — coverage, overhead,
// netlist dumps — from the current state. It is called both at every
// checkpoint and on exit, so a cancelled run's last checkpoint and a
// completed run's plan have identical shape.
func (st *state) finish(plan *Plan, stop string, opt Options) *Plan {
	plan.StopReason = stop
	plan.Coverage = st.coverage()
	plan.OverheadGates = st.overheadGE
	plan.Overhead = float64(st.overheadGE) / float64(st.origSize)
	plan.Pins = st.pins
	plan.Bench = logic.BenchString(st.work)
	plan.Scanned = plan.Scanned[:0]
	for _, ff := range st.scanned {
		plan.Scanned = append(plan.Scanned, st.work.NameOf(ff))
	}
	if len(st.scanned) > 0 {
		chained, _ := lssd.InsertPartial(st.work, st.scanned, opt.Style)
		plan.ChainBench = logic.BenchString(chained)
	}
	return plan
}

// deriveSeed maps (master seed, iteration) to an independent probe
// seed through a splitmix64 step — no shared generator state crosses
// iterations, so any iteration's probe can be replayed in isolation.
func deriveSeed(master uint64, iter int) uint64 {
	z := master + (uint64(iter)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// state is the advisor's working memory across iterations.
type state struct {
	orig     *logic.Circuit
	work     *logic.Circuit // orig plus applied test points
	faults   []fault.Fault  // collapsed reps of the original circuit
	detected []bool         // cumulative, never cleared
	caught   int
	scanned  []int // storage elements converted to scan, chain order
	cursor   int   // rotating PODEM start offset across probes

	// points records applied test points per net: bit 0 = observed,
	// bit 1 = controlled. Re-observing a net is pure waste; candidates
	// skip what is already placed.
	points map[int]uint8

	origSize   int // gates + 2*DFFs of the original
	overheadGE int // gate equivalents added so far
	pins       int // package pins added so far
}

func newState(c *logic.Circuit, opt Options) *state {
	reps := fault.CollapseEquiv(c, fault.Universe(c)).Reps
	return &state{
		orig:     c,
		work:     c.Clone().MustFinalize(),
		faults:   reps,
		detected: make([]bool, len(reps)),
		points:   make(map[int]uint8),
		origSize: c.NumGates() + 2*c.NumDFFs(),
	}
}

func (st *state) coverage() float64 {
	if len(st.faults) == 0 {
		return 1
	}
	return float64(st.caught) / float64(len(st.faults))
}

func (st *state) recount() {
	n := 0
	for _, d := range st.detected {
		if d {
			n++
		}
	}
	st.caught = n
}
