package advise

import (
	"context"

	"dft/internal/atpg"
	"dft/internal/fault"
	"dft/internal/logic"
	"dft/internal/telemetry"
)

// viewFor is the advisor's tester model: the primary view until any
// storage element is scanned, then the partial-scan view over the
// scanned subset — scanned elements become controllable inputs and
// their D cones observable outputs.
func viewFor(c *logic.Circuit, scanned []int) atpg.View {
	if len(scanned) == 0 {
		return atpg.PrimaryView(c)
	}
	return atpg.PartialScanView(c, scanned)
}

// probe grades the working netlist under the current view: a bounded
// block of random patterns through a dropping fault.Session, then
// bounded PODEM on a rotating window of still-undetected faults, whose
// tests feed back into the session so collateral detections count.
// Detections accumulate into st.detected, which is never cleared —
// the source of the advisor's monotone-coverage guarantee.
func (st *state) probe(ctx context.Context, seed uint64, opt Options, reg *telemetry.Registry) error {
	defer reg.Timer("advise.probe").Time()()
	view := viewFor(st.work, st.scanned)
	eng := fault.NewEngine(st.work, fault.Options{
		View:    fault.View{Inputs: view.Inputs, Outputs: view.Outputs},
		Workers: opt.Workers,
		Metrics: reg,
	})
	sess := eng.NewSession(st.faults)

	rng := seed
	if rng == 0 {
		rng = 1
	}
	width := len(view.Inputs)
	for applied := 0; applied < opt.Patterns; {
		if err := ctx.Err(); err != nil {
			st.recount()
			return err
		}
		n := opt.Patterns - applied
		if n > 64 {
			n = 64
		}
		sess.ApplyBlock(randBlock(width, n, &rng), st.detected)
		applied += n
		reg.Counter("advise.probe.patterns").Add(int64(n))
	}

	// Deterministic top-up: PODEM on up to opt.Probes undetected
	// faults, starting where the previous probe left off so successive
	// iterations sweep the whole list rather than re-proving the same
	// untestable prefix.
	var block [][]bool
	flush := func() {
		if len(block) > 0 {
			sess.ApplyBlock(block, st.detected)
			block = block[:0]
		}
	}
	targets := 0
	for seen := 0; seen < len(st.faults) && targets < opt.Probes; seen++ {
		i := (st.cursor + seen) % len(st.faults)
		if st.detected[i] {
			continue
		}
		if err := ctx.Err(); err != nil {
			flush()
			st.recount()
			return err
		}
		targets++
		t, err := atpg.Podem(st.work, view, st.faults[i], atpg.PodemConfig{MaxBacktracks: opt.Backtracks, Metrics: reg})
		switch err {
		case nil:
			block = append(block, atpg.Test{Values: t.Filled(logic.Zero)}.Bools())
			if len(block) == 64 {
				flush()
			}
		case atpg.ErrUntestable:
			reg.Counter("advise.probe.untestable").Inc()
		case atpg.ErrAborted:
			reg.Counter("advise.probe.aborted").Inc()
		}
	}
	flush()
	if len(st.faults) > 0 {
		st.cursor = (st.cursor + opt.Probes) % len(st.faults)
	}
	reg.Counter("advise.probe.targets").Add(int64(targets))
	st.recount()
	return nil
}

// randBlock generates n patterns of the given width from an xorshift64
// stream, advancing the caller's state in place.
func randBlock(width, n int, s *uint64) [][]bool {
	out := make([][]bool, n)
	x := *s
	for i := range out {
		row := make([]bool, width)
		for j := range row {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			row[j] = x&1 == 1
		}
		out[i] = row
	}
	*s = x
	return out
}
