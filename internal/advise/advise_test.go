package advise

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"dft/internal/circuits"
	"dft/internal/logic"
	"dft/internal/telemetry"
)

// evalNets computes every net value for one combinational evaluation
// with the given primary-input assignment (by name) and every storage
// element held at the given state value (by name; absent names read 0).
func evalNets(c *logic.Circuit, in, state map[string]bool) []bool {
	vals := make([]bool, c.NumNets())
	for _, id := range c.Order {
		g := &c.Gates[id]
		switch g.Type {
		case logic.Input:
			vals[id] = in[g.Name]
		case logic.DFF:
			vals[id] = state[g.Name]
		case logic.Const0:
			vals[id] = false
		case logic.Const1:
			vals[id] = true
		case logic.Buf:
			vals[id] = vals[g.Fanin[0]]
		case logic.Not:
			vals[id] = !vals[g.Fanin[0]]
		case logic.And, logic.Nand:
			v := true
			for _, s := range g.Fanin {
				v = v && vals[s]
			}
			vals[id] = v != (g.Type == logic.Nand)
		case logic.Or, logic.Nor:
			v := false
			for _, s := range g.Fanin {
				v = v || vals[s]
			}
			vals[id] = v != (g.Type == logic.Nor)
		case logic.Xor, logic.Xnor:
			v := false
			for _, s := range g.Fanin {
				v = v != vals[s]
			}
			vals[id] = v != (g.Type == logic.Xnor)
		}
	}
	return vals
}

func runHardcore(t *testing.T, opt Options) *Plan {
	t.Helper()
	c := circuits.Hardcore(8)
	plan, err := Run(context.Background(), c, opt)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return plan
}

func TestAdviseHardcoreReachesTarget(t *testing.T) {
	plan := runHardcore(t, Options{Target: 0.99, Seed: 7, Metrics: telemetry.NewRegistry()})
	if plan.Baseline >= 0.90 {
		t.Fatalf("hardcore baseline %.4f is not a hard circuit (< 0.90 wanted)", plan.Baseline)
	}
	if plan.Coverage < 0.99 {
		t.Fatalf("advisor stopped at %.4f (%s), wanted >= 0.99", plan.Coverage, plan.StopReason)
	}
	if plan.StopReason != StopTarget {
		t.Fatalf("stop reason %q, want %q", plan.StopReason, StopTarget)
	}
	if plan.Overhead > plan.Budget {
		t.Fatalf("overhead %.3f exceeds budget %.3f", plan.Overhead, plan.Budget)
	}
	if len(plan.Steps) == 0 || plan.Bench == "" {
		t.Fatal("plan has no steps or no netlist dump")
	}
	if len(plan.Scanned) > 0 && plan.ChainBench == "" {
		t.Fatal("scanned elements but no materialized chain netlist")
	}
}

func TestAdviseCoverageMonotone(t *testing.T) {
	plan := runHardcore(t, Options{Target: 1.0, MaxSteps: 6, Patterns: 64, Seed: 3,
		Metrics: telemetry.NewRegistry()})
	prev := plan.Baseline
	for i, s := range plan.Steps {
		if s.Coverage < prev {
			t.Fatalf("step %d coverage %.4f below previous %.4f", i, s.Coverage, prev)
		}
		if s.Delta < 0 {
			t.Fatalf("step %d negative delta %.4f", i, s.Delta)
		}
		prev = s.Coverage
	}
	if plan.Coverage != prev && len(plan.Steps) > 0 {
		t.Fatalf("plan coverage %.4f does not match last step %.4f", plan.Coverage, prev)
	}
}

func TestAdviseReplayDeterminism(t *testing.T) {
	a := runHardcore(t, Options{Seed: 42, Metrics: telemetry.NewRegistry()})
	b := runHardcore(t, Options{Seed: 42, Metrics: telemetry.NewRegistry()})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different plans:\n%+v\n%+v", a, b)
	}
	seeds := map[uint64]bool{a.Seed: true}
	for _, s := range a.Steps {
		if seeds[s.Seed] {
			t.Fatalf("per-iteration seed %d repeats", s.Seed)
		}
		seeds[s.Seed] = true
	}
}

// TestAdviseFunctionPreservation checks the advisor's core safety
// property: with every added control input at 0, the instrumented
// netlist computes the same primary outputs and the same next-state
// function as the original on every net, for a sweep of random input
// and state assignments.
func TestAdviseFunctionPreservation(t *testing.T) {
	c := circuits.Hardcore(8)
	plan, err := Run(context.Background(), c, Options{Target: 1.0, MaxSteps: 8, Seed: 11,
		Metrics: telemetry.NewRegistry()})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	mod, err := logic.ParseBenchString("mod", plan.Bench)
	if err != nil {
		t.Fatalf("plan netlist does not parse: %v", err)
	}
	rng := uint64(991)
	next := func() bool {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng&1 == 1
	}
	for trial := 0; trial < 64; trial++ {
		in := map[string]bool{}
		for _, pi := range c.PIs {
			in[c.NameOf(pi)] = next()
		}
		// Added test-point inputs stay at their inactive 0 default.
		state := map[string]bool{}
		for _, ff := range c.DFFs {
			state[c.NameOf(ff)] = next()
		}
		vo := evalNets(c, in, state)
		vm := evalNets(mod, in, state)
		for i, po := range c.POs {
			if vo[po] != vm[mod.POs[i]] {
				t.Fatalf("trial %d: PO %s differs (orig %v, instrumented %v)",
					trial, c.NameOf(po), vo[po], vm[mod.POs[i]])
			}
		}
		for _, ff := range c.DFFs {
			mff, ok := mod.NetByName(c.NameOf(ff))
			if !ok {
				t.Fatalf("storage element %s missing from instrumented netlist", c.NameOf(ff))
			}
			if vo[c.Gates[ff].Fanin[0]] != vm[mod.Gates[mff].Fanin[0]] {
				t.Fatalf("trial %d: next-state of %s differs", trial, c.NameOf(ff))
			}
		}
	}
}

func TestAdviseCancellationReturnsPartialPlan(t *testing.T) {
	c := circuits.Hardcore(8)
	ctx, cancel := context.WithCancel(context.Background())
	steps := 0
	var last *Plan
	opt := Options{
		Target: 1.0, Seed: 5, Metrics: telemetry.NewRegistry(),
		Checkpoint: func(p *Plan) {
			steps++
			cp := *p
			last = &cp
			if steps == 2 {
				cancel()
			}
		},
	}
	plan, err := Run(ctx, c, opt)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if plan == nil || plan.StopReason != StopCancelled {
		t.Fatalf("cancelled run returned plan %+v", plan)
	}
	if last == nil || last.Bench == "" {
		t.Fatal("checkpoints did not carry a netlist dump")
	}
	if plan.Coverage < last.Coverage {
		t.Fatalf("final partial coverage %.4f below last checkpoint %.4f", plan.Coverage, last.Coverage)
	}
}

func TestAdviseCombinationalCircuit(t *testing.T) {
	c, err := circuits.Builtin("alu74181", 0)
	if err != nil {
		t.Fatal(err)
	}
	plan, perr := Run(context.Background(), c, Options{Target: 0.99, Seed: 9,
		Metrics: telemetry.NewRegistry()})
	if perr != nil {
		t.Fatalf("Run: %v", perr)
	}
	if plan.Coverage < plan.Baseline {
		t.Fatalf("coverage regressed: %.4f < %.4f", plan.Coverage, plan.Baseline)
	}
	if len(plan.Scanned) != 0 {
		t.Fatalf("combinational circuit got scan steps: %v", plan.Scanned)
	}
	for _, s := range plan.Steps {
		if s.Kind == "scan-ff" || s.Kind == "chain" {
			t.Fatalf("combinational circuit got %s step", s.Kind)
		}
	}
}

func TestAdviseBudgetStops(t *testing.T) {
	c := circuits.Hardcore(8)
	plan, err := Run(context.Background(), c, Options{Target: 1.0, Budget: 0.02, Seed: 7,
		Metrics: telemetry.NewRegistry()})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if plan.Overhead > 0.02 {
		t.Fatalf("overhead %.3f exceeds 0.02 budget", plan.Overhead)
	}
	if plan.StopReason == StopTarget && plan.Coverage < 1.0 {
		t.Fatalf("stop reason %q inconsistent with coverage %.4f", plan.StopReason, plan.Coverage)
	}
}

func TestAdviseTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	plan := runHardcore(t, Options{Target: 0.99, Seed: 7, Metrics: reg})
	if got := reg.Counter("advise.interventions.applied").Value(); got != int64(len(plan.Steps)) {
		t.Fatalf("advise.interventions.applied = %d, want %d", got, len(plan.Steps))
	}
	if reg.Counter("advise.candidates.scored").Value() == 0 {
		t.Fatal("no candidates scored")
	}
	wantBP := int64(plan.Coverage*10000 + 0.5)
	if got := reg.Gauge("advise.coverage").Value(); got != wantBP {
		t.Fatalf("advise.coverage gauge = %d, want %d", got, wantBP)
	}
	ps := reg.ProgressStats()
	if _, ok := ps["advise.steps.progress"]; !ok {
		t.Fatal("no advise.steps.progress tracker")
	}
	if _, ok := ps["advise.coverage.progress"]; !ok {
		t.Fatal("no advise.coverage.progress tracker")
	}
}

func TestDeriveSeedStable(t *testing.T) {
	if deriveSeed(1, 0) == deriveSeed(1, 1) {
		t.Fatal("consecutive derived seeds collide")
	}
	if deriveSeed(1, 3) != deriveSeed(1, 3) {
		t.Fatal("derived seed is not a pure function")
	}
	if deriveSeed(1, 2) == deriveSeed(2, 2) {
		t.Fatal("master seed does not separate streams")
	}
}

func TestPlanBenchRoundTrips(t *testing.T) {
	plan := runHardcore(t, Options{Target: 0.99, Seed: 13, Metrics: telemetry.NewRegistry()})
	mod, err := logic.ParseBenchString("roundtrip", plan.Bench)
	if err != nil {
		t.Fatalf("plan netlist does not parse: %v", err)
	}
	back, err := logic.ParseBenchString("again", logic.BenchString(mod))
	if err != nil {
		t.Fatalf("re-emitted netlist does not parse: %v", err)
	}
	if logic.CanonicalBench(back) != logic.CanonicalBench(mod) {
		t.Fatal("plan netlist does not round-trip through .bench")
	}
	if plan.ChainBench != "" {
		cc, err := logic.ParseBenchString("chain", plan.ChainBench)
		if err != nil {
			t.Fatalf("chain netlist does not parse: %v", err)
		}
		if !strings.Contains(plan.ChainBench, "SE") || cc.NumDFFs() < len(plan.Scanned) {
			t.Fatal("chain netlist is missing the scan structure")
		}
	}
}
