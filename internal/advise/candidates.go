package advise

import (
	"math"
	"sort"

	"dft/internal/lssd"
	"dft/internal/scanset"
	"dft/internal/testability"
)

// gainEps is the smallest predicted gain treated as real; below it a
// candidate is considered useless rather than marginal.
const gainEps = 1e-9

// candidate is one scored intervention.
type candidate struct {
	kind   string  // "observe", "control", "scan-ff" or "chain"
	net    int     // targeted net in st.work (scan: the element; chain: first element)
	ffs    []int   // chain only: every element to scan
	costGE int     // gate equivalents this candidate adds
	pins   int     // package pins this candidate adds
	gain   float64 // predicted expected new detections per probe
	score  float64 // gain per gate equivalent
}

// scanCosts returns the advisor's overhead model for scan conversion
// under the chosen style, aligned with what lssd.InsertPartial
// materializes: 3 gates per element for the sys/scan/mux path (plus an
// L2 latch ≈ 2 more under LSSD), and a fixed SE inverter + SO buffer
// and 3 package pins paid once with the first scanned element.
func scanCosts(style lssd.Style, first bool) (perFF, fixedGE, fixedPins int) {
	perFF = 3
	if style == lssd.StyleLSSD {
		perFF += 2
	}
	if first {
		fixedGE, fixedPins = 2, lssd.PinOverhead()
	}
	return perFF, fixedGE, fixedPins
}

// candidates proposes up to opt.Candidates interventions: observe and
// control points at the sites where undetected faults concentrate
// (reconvergent stems boosted — that is where random resistance
// lives), scan conversion of the highest-value unscanned storage
// elements in scanset order, and a whole-chain candidate covering
// every remaining element.
func (st *state) candidates(opt Options) []candidate {
	// Rank hard sites by undetected-fault count, reconvergent stems
	// doubled.
	count := make(map[int]int)
	for i, f := range st.faults {
		if !st.detected[i] {
			count[f.Site(st.work)]++
		}
	}
	stem := make(map[int]bool)
	for _, s := range testability.ReconvergentStems(st.work) {
		stem[s] = true
	}
	type site struct{ net, weight int }
	sites := make([]site, 0, len(count))
	for n, k := range count {
		w := k
		if stem[n] {
			w *= 2
		}
		sites = append(sites, site{n, w})
	}
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].weight != sites[j].weight {
			return sites[i].weight > sites[j].weight
		}
		return sites[i].net < sites[j].net
	})

	scannedSet := make(map[int]bool, len(st.scanned))
	for _, ff := range st.scanned {
		scannedSet[ff] = true
	}
	first := len(st.scanned) == 0
	perFF, fixedGE, fixedPins := scanCosts(opt.Style, first)

	var cands []candidate
	// Scan candidates first: the structural interventions the paper
	// leans on. scanset ranks elements by cycle-cutting value, then
	// SCOAP depth.
	var remaining []int
	for _, ff := range scanset.SelectPartialScan(st.orig, st.orig.NumDFFs()) {
		if !scannedSet[ff] {
			remaining = append(remaining, ff)
		}
	}
	for i, ff := range remaining {
		if i == 4 {
			break
		}
		cands = append(cands, candidate{
			kind: "scan-ff", net: ff,
			costGE: perFF + fixedGE, pins: fixedPins,
		})
	}
	if len(remaining) > 1 {
		cands = append(cands, candidate{
			kind: "chain", net: remaining[0], ffs: remaining,
			costGE: len(remaining)*perFF + fixedGE, pins: fixedPins,
		})
	}
	// Test points at the hard sites, skipping nets already instrumented.
	for _, s := range sites {
		if len(cands) >= opt.Candidates {
			break
		}
		if st.points[s.net]&1 == 0 {
			cands = append(cands, candidate{kind: "observe", net: s.net, costGE: 1, pins: 1})
		}
		if len(cands) < opt.Candidates && st.points[s.net]&2 == 0 {
			cands = append(cands, candidate{kind: "control", net: s.net, costGE: 3, pins: 2})
		}
	}
	if len(cands) > opt.Candidates {
		cands = cands[:opt.Candidates]
	}
	return cands
}

// baselineDetect returns, per fault, the probability that the current
// probe configuration detects it — the reference the candidate gains
// are measured against.
func (st *state) baselineDetect(opt Options) []float64 {
	view := viewFor(st.work, st.scanned)
	cop := testability.ViewCOP(st.work, view.Inputs, view.Outputs)
	n := float64(opt.Patterns)
	base := make([]float64, len(st.faults))
	for i, f := range st.faults {
		if st.detected[i] {
			continue
		}
		if dp := cop.Detect(st.work, f); dp > 0 {
			base[i] = 1 - math.Pow(1-dp, n)
		}
	}
	return base
}

// score fills in the candidate's predicted gain: the COP-estimated
// expected count of newly detected faults over an opt.Patterns-pattern
// probe of the hypothetical circuit, minus the same estimate for the
// current circuit. Hypotheticals are cheap — a clone plus one
// linear-time probability pass — so every candidate is scored exactly
// the way it would be graded.
func (st *state) score(cand *candidate, base []float64, opt Options) {
	c2 := st.work
	scanned2 := st.scanned
	switch cand.kind {
	case "observe":
		c2 = testability.AddObservationPoint(st.work, cand.net)
	case "control":
		c2 = testability.AddControlPoint(st.work, cand.net)
	case "scan-ff":
		scanned2 = append(append([]int(nil), st.scanned...), cand.net)
	case "chain":
		scanned2 = append(append([]int(nil), st.scanned...), cand.ffs...)
	}
	view := viewFor(c2, scanned2)
	cop := testability.ViewCOP(c2, view.Inputs, view.Outputs)
	n := float64(opt.Patterns)
	gain := 0.0
	for i, f := range st.faults {
		if st.detected[i] {
			continue
		}
		dp := cop.Detect(c2, f)
		if dp <= 0 {
			continue
		}
		if p := 1 - math.Pow(1-dp, n); p > base[i] {
			gain += p - base[i]
		}
	}
	cand.gain = gain
	cand.score = gain / float64(cand.costGE)
}

// pick selects the best candidate that fits the remaining budget:
// highest gain per gate equivalent, ties broken toward cheaper then
// structurally earlier candidates. When no candidate predicts real
// gain but unscanned storage remains, the cheapest scan candidate in
// budget is returned instead — COP underestimates deep sequential
// unlocks, and scan conversion is never wasted on a circuit below
// target. Returns nil when nothing useful fits.
func pick(cands []candidate, budgetGE int) *candidate {
	var best *candidate
	for i := range cands {
		cd := &cands[i]
		if cd.costGE > budgetGE || cd.gain <= gainEps {
			continue
		}
		if best == nil || cd.score > best.score ||
			(cd.score == best.score && cd.costGE < best.costGE) {
			best = cd
		}
	}
	if best != nil {
		return best
	}
	for i := range cands {
		cd := &cands[i]
		if cd.kind == "scan-ff" && cd.costGE <= budgetGE {
			return cd
		}
	}
	return nil
}

// apply commits the candidate to the working state. Every
// transformation appends nets, so fault sites and previously scanned
// element IDs stay valid.
func (st *state) apply(cand candidate) {
	switch cand.kind {
	case "observe":
		st.work = testability.AddObservationPoint(st.work, cand.net)
		st.points[cand.net] |= 1
	case "control":
		st.work = testability.AddControlPoint(st.work, cand.net)
		st.points[cand.net] |= 2
	case "scan-ff":
		st.scanned = append(st.scanned, cand.net)
	case "chain":
		st.scanned = append(st.scanned, cand.ffs...)
	}
	st.overheadGE += cand.costGE
	st.pins += cand.pins
}
