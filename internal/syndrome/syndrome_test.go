package syndrome

import (
	"testing"

	"dft/internal/circuits"
	"dft/internal/fault"
	"dft/internal/logic"
)

func TestSyndromeDefinition(t *testing.T) {
	// 2-input AND: K=1, S=1/4. 2-input OR: K=3, S=3/4. XOR: K=2, S=1/2.
	cases := []struct {
		typ logic.GateType
		k   int
		s   float64
	}{
		{logic.And, 1, 0.25},
		{logic.Or, 3, 0.75},
		{logic.Xor, 2, 0.5},
		{logic.Nand, 3, 0.75},
	}
	for _, cse := range cases {
		c := logic.New("g")
		a := c.AddInput("a")
		b := c.AddInput("b")
		c.MarkOutput(c.AddGate(cse.typ, "y", a, b))
		c.MustFinalize()
		counts, syn := Syndromes(c)
		if counts[0] != cse.k || syn[0] != cse.s {
			t.Fatalf("%v: K=%d S=%.2f, want K=%d S=%.2f", cse.typ, counts[0], syn[0], cse.k, cse.s)
		}
	}
}

func TestSyndromesC17(t *testing.T) {
	c := circuits.C17()
	counts, syn := Syndromes(c)
	if len(counts) != 2 {
		t.Fatal("c17 has 2 outputs")
	}
	for j := range syn {
		if syn[j] <= 0 || syn[j] >= 1 {
			t.Fatalf("degenerate syndrome %f on output %d", syn[j], j)
		}
	}
}

// TestMuxSyndromeUntestableFault reproduces the classical example: in
// the 2:1 multiplexer, "select s-a-1" turns y into D1; the faulty
// machine realizes exactly as many minterms as the good machine, so
// the fault is detectable but syndrome-untestable.
func TestMuxSyndromeUntestableFault(t *testing.T) {
	c := circuits.Mux(1) // D0, D1, S0; y = D1·S0 + D0·S̄0
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	ts := Classify(c, cl.Reps)
	un := Untestable(ts)
	if len(un) == 0 {
		t.Fatal("expected at least one detectable-but-syndrome-untestable fault in the mux")
	}
	// Every untestable fault must indeed leave all output counts equal.
	goodCounts, _ := Syndromes(c)
	fc := FaultCounts(c, un)
	for i := range un {
		for j := range goodCounts {
			if fc[i][j] != goodCounts[j] {
				t.Fatalf("fault %s claimed untestable but count differs", un[i].Name(c))
			}
		}
	}
}

func TestMakeTestableFixesMux(t *testing.T) {
	c := circuits.Mux(1)
	mod, added, remaining := MakeTestable(c, 2)
	if remaining != 0 {
		t.Fatalf("%d faults still syndrome-untestable after %d extra inputs", remaining, added)
	}
	if added == 0 || added > 2 {
		t.Fatalf("added %d inputs, expected 1-2 (paper: at most one or two for real networks)", added)
	}
	if len(mod.PIs) != len(c.PIs)+added {
		t.Fatalf("PI count %d", len(mod.PIs))
	}
}

// TestMakeTestablePreservesFunction: with the added inputs held at
// their noncontrolling values, the modified network computes the
// original function.
func TestMakeTestablePreservesFunction(t *testing.T) {
	c := circuits.Mux(1)
	mod, added, _ := MakeTestable(c, 2)
	if added == 0 {
		t.Skip("nothing added")
	}
	// Determine hold values per added input from the widened gate type.
	hold := make(map[int]bool) // PI net -> value
	for _, pi := range mod.PIs[len(c.PIs):] {
		for id := range mod.Gates {
			for _, src := range mod.Gates[id].Fanin {
				if src == pi {
					switch mod.Gates[id].Type {
					case logic.And, logic.Nand:
						hold[pi] = true
					case logic.Or, logic.Nor:
						hold[pi] = false
					}
				}
			}
		}
	}
	for x := 0; x < 1<<3; x++ {
		in := []bool{x&1 != 0, x&2 != 0, x&4 != 0}
		inMod := append([]bool{}, in...)
		for _, pi := range mod.PIs[len(c.PIs):] {
			inMod = append(inMod, hold[pi])
		}
		want := evalOuts(c, in)
		got := evalOuts(mod, inMod)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("pattern %03b output %d differs with held extra inputs", x, j)
			}
		}
	}
}

func TestTesterCatchesSyndromeTestableFaults(t *testing.T) {
	c := circuits.RippleAdder(3)
	tester := NewTester(c)
	if !tester.Pass(c, nil) {
		t.Fatal("good machine failed its own syndrome test")
	}
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	ts := Classify(c, cl.Reps)
	caught, testable := 0, 0
	for _, tb := range ts {
		if !tb.SyndromeTestable {
			continue
		}
		testable++
		f := tb.Fault
		if !tester.Pass(c, &f) {
			caught++
		}
	}
	if caught != testable {
		t.Fatalf("tester caught %d of %d syndrome-testable faults", caught, testable)
	}
}

// TestSyndromeFriendlinessByStructure documents which structures suit
// syndrome testing: AND/OR logic (a decoder) shifts the ones count for
// essentially every fault, while XOR-heavy logic (a parity tree) flips
// minterms symmetrically — a fault on an XOR input complements the
// output on exactly half the patterns, leaving K unchanged — so a
// large fraction of its faults are syndrome-untestable.
func TestSyndromeFriendlinessByStructure(t *testing.T) {
	frac := func(c *logic.Circuit) float64 {
		cl := fault.CollapseEquiv(c, fault.Universe(c))
		un := Untestable(Classify(c, cl.Reps))
		return float64(len(un)) / float64(len(cl.Reps))
	}
	dec := frac(circuits.Decoder(3))
	par := frac(circuits.ParityTree(6))
	if dec > 0.05 {
		t.Fatalf("decoder untestable fraction %.2f, want ~0", dec)
	}
	if par < 0.3 {
		t.Fatalf("parity tree untestable fraction %.2f, want large (XOR symmetry)", par)
	}
	// The ripple adder mixes both: a substantial but minority fraction.
	add := frac(circuits.RippleAdder(3))
	if add <= dec || add >= par {
		t.Fatalf("adder fraction %.2f should sit between decoder %.2f and parity %.2f", add, dec, par)
	}
}

func TestDataVolume(t *testing.T) {
	c := circuits.RippleAdder(4)
	words, bitsFull := DataVolume(c)
	if words != len(c.POs) {
		t.Fatal("syndrome volume should be one word per output")
	}
	if bitsFull <= words*64 {
		t.Fatalf("full response %d bits should dwarf syndrome storage", bitsFull)
	}
}

func TestInputLimitEnforced(t *testing.T) {
	c := circuits.RippleAdder(13) // 27 inputs > 24
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic above exhaustive limit")
		}
	}()
	Syndromes(c)
}

func evalOuts(c *logic.Circuit, in []bool) []bool {
	vals := make([]bool, c.NumNets())
	for i, id := range c.PIs {
		vals[id] = in[i]
	}
	scratch := make([]bool, c.MaxFanin())
	for _, id := range c.Order {
		g := c.Gates[id]
		args := scratch[:len(g.Fanin)]
		for i, f := range g.Fanin {
			args[i] = vals[f]
		}
		vals[id] = g.Type.EvalBool(args)
	}
	out := make([]bool, len(c.POs))
	for j, po := range c.POs {
		out[j] = vals[po]
	}
	return out
}
