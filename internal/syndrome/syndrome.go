// Package syndrome implements Syndrome Testing (Savir [115],[116];
// Fig. 23): apply all 2ⁿ input patterns, count the ones on each
// output, and compare the count with the good machine's. The syndrome
// S = K/2ⁿ is a single number per output, so the test data volume is
// minimal; the price is that some detectable faults are syndrome-
// untestable (they flip equally many minterms each way), and the
// network must be modified — extra primary inputs held at
// noncontrolling values — to expose them.
package syndrome

import (
	"context"
	"fmt"
	"math/bits"

	"dft/internal/fault"
	"dft/internal/logic"
	"dft/internal/sim"
)

// MaxExhaustiveInputs bounds 2ⁿ enumeration.
const MaxExhaustiveInputs = 24

// syndromeBlockW is the blocked-kernel width for the good-machine
// enumeration: 8 words (512 patterns) per instruction visit.
const syndromeBlockW = 8

// identityFree returns the free-variable positions 0..n-1 for packed
// exhaustive enumeration over the primary inputs.
func identityFree(n int) []int {
	free := make([]int, n)
	for i := range free {
		free[i] = i
	}
	return free
}

func blockMask(k int) uint64 {
	if k >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(k) - 1
}

// Syndromes returns K (ones count) and S = K/2ⁿ for every primary
// output of a combinational circuit, by exhaustive bit-parallel
// simulation. The enumeration is packed: blocks of 64 patterns are
// synthesized directly from periodic bit masks, and under the compiled
// kernel the blocked evaluator grades syndromeBlockW words per
// instruction visit.
func Syndromes(c *logic.Circuit) (counts []int, syndromes []float64) {
	n := len(c.PIs)
	if n > MaxExhaustiveInputs {
		panic(fmt.Sprintf("syndrome: %d inputs exceed exhaustive limit %d", n, MaxExhaustiveInputs))
	}
	counts = make([]int, len(c.POs))
	total := uint64(1) << uint(n)
	free := identityFree(n)
	if prog := sim.ActiveProgram(c); prog != nil {
		W := syndromeBlockW
		if nb := int((total + 63) / 64); nb < W {
			W = nb
		}
		vals := make([]uint64, c.NumNets()*W)
		words := make([]uint64, n)
		var ks [syndromeBlockW]int
		for base := uint64(0); base < total; base += uint64(64 * W) {
			lanes := 0
			for j := 0; j < W; j++ {
				k := sim.ExhaustiveBlock(words, free, base+uint64(64*j))
				if k == 0 {
					break
				}
				ks[j] = k
				lanes++
				for i, pi := range c.PIs {
					vals[pi*W+j] = words[i]
				}
			}
			prog.ExecBlock(vals, W)
			for j := 0; j < lanes; j++ {
				mask := blockMask(ks[j])
				for oi, po := range c.POs {
					counts[oi] += bits.OnesCount64(vals[po*W+j] & mask)
				}
			}
		}
	} else {
		ps := fault.NewParallelSim(c)
		words := make([]uint64, n)
		for base := uint64(0); base < total; base += 64 {
			k := sim.ExhaustiveBlock(words, free, base)
			ps.LoadPackedBlock(words, k)
			mask := blockMask(k)
			for oi, po := range c.POs {
				counts[oi] += bits.OnesCount64(ps.GoodWord(po) & mask)
			}
		}
	}
	syndromes = make([]float64, len(counts))
	for j, k := range counts {
		syndromes[j] = float64(k) / float64(total)
	}
	return counts, syndromes
}

// FaultCounts returns, for each fault, the per-output ones counts of
// the faulty machine under exhaustive patterns, enumerated in packed
// blocks.
func FaultCounts(c *logic.Circuit, faults []fault.Fault) [][]int {
	n := len(c.PIs)
	if n > MaxExhaustiveInputs {
		panic(fmt.Sprintf("syndrome: %d inputs exceed exhaustive limit %d", n, MaxExhaustiveInputs))
	}
	ps := fault.NewParallelSim(c)
	out := make([][]int, len(faults))
	for i := range out {
		out[i] = make([]int, len(c.POs))
	}
	total := uint64(1) << uint(n)
	free := identityFree(n)
	words := make([]uint64, n)
	for base := uint64(0); base < total; base += 64 {
		k := sim.ExhaustiveBlock(words, free, base)
		ps.LoadPackedBlock(words, k)
		mask := blockMask(k)
		for fi, f := range faults {
			ps.FaultMask(f)
			for j, po := range c.POs {
				out[fi][j] += bits.OnesCount64(ps.FaultyWord(po) & mask)
			}
		}
	}
	return out
}

// Testability classifies each fault: Detectable means some pattern
// distinguishes it (classical testability); SyndromeTestable means
// some output's ones-count differs, i.e. the Fig. 23 tester catches it.
type Testability struct {
	Fault            fault.Fault
	Detectable       bool
	SyndromeTestable bool
}

// Classify computes syndrome testability for every fault.
func Classify(c *logic.Circuit, faults []fault.Fault) []Testability {
	goodCounts, _ := Syndromes(c)
	fc := FaultCounts(c, faults)

	// Classical detectability via exhaustive fault simulation on the
	// packed enumeration (64× smaller than materialized scalar vectors).
	pats := fault.ExhaustivePatterns(len(c.PIs))
	det, _ := fault.NewEngine(c, fault.Options{}).RunPacked(context.Background(), faults, pats)

	out := make([]Testability, len(faults))
	for i, f := range faults {
		st := false
		for j := range goodCounts {
			if fc[i][j] != goodCounts[j] {
				st = true
				break
			}
		}
		out[i] = Testability{Fault: f, Detectable: det.Detected[i], SyndromeTestable: st}
	}
	return out
}

// Untestable returns the detectable-but-syndrome-untestable faults —
// the ones Savir's network modifications go after.
func Untestable(ts []Testability) []fault.Fault {
	var out []fault.Fault
	for _, t := range ts {
		if t.Detectable && !t.SyndromeTestable {
			out = append(out, t.Fault)
		}
	}
	return out
}

// MakeTestable adds up to maxExtra primary inputs (held at
// noncontrolling values during normal operation) to AND/OR-class gates
// so that previously syndrome-untestable faults become testable — the
// paper's "procedures ... with a minimal or near minimal number of
// primary inputs to make the networks syndrome testable". It returns
// the modified circuit, the number of inputs added, and the remaining
// untestable fault count.
//
// The original fault list is re-derived after each modification since
// net IDs are preserved (the transformation only appends elements).
func MakeTestable(c *logic.Circuit, maxExtra int) (*logic.Circuit, int, int) {
	cur := c
	added := 0
	remaining := countUntestable(cur)
	for added < maxExtra && remaining > 0 {
		best, bestRemaining := (*logic.Circuit)(nil), remaining
		for id := range cur.Gates {
			switch cur.Gates[id].Type {
			case logic.And, logic.Nand, logic.Or, logic.Nor:
			default:
				continue
			}
			trial := widenGate(cur, id)
			if trial == nil {
				continue
			}
			r := countUntestable(trial)
			if r < bestRemaining {
				best, bestRemaining = trial, r
				if r == 0 {
					break
				}
			}
		}
		if best == nil {
			break // no single-input extension helps
		}
		cur, remaining = best, bestRemaining
		added++
	}
	return cur, added, remaining
}

// widenGate clones the circuit and appends a fresh primary input to
// gate id's fanin. Returns nil when the result would exceed the
// exhaustive limit.
func widenGate(c *logic.Circuit, id int) *logic.Circuit {
	if len(c.PIs)+1 > MaxExhaustiveInputs {
		return nil
	}
	nc := c.Clone()
	w := nc.AddInput(fmt.Sprintf("SYN%d_%s", len(c.PIs), c.NameOf(id)))
	nc.Gates[id].Fanin = append(nc.Gates[id].Fanin, w)
	nc.MustFinalize()
	return nc
}

func countUntestable(c *logic.Circuit) int {
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	return len(Untestable(Classify(c, cl.Reps)))
}

// Tester models the Fig. 23 structure: a pattern generator cycling all
// 2ⁿ inputs, a ones counter on one output, and a comparator against
// the reference syndrome.
type Tester struct {
	Reference []int // good-machine K per output
}

// NewTester learns the reference counts from the good machine.
func NewTester(c *logic.Circuit) *Tester {
	counts, _ := Syndromes(c)
	return &Tester{Reference: counts}
}

// Pass runs the unit under test (possibly faulty) and compares counts.
func (t *Tester) Pass(c *logic.Circuit, f *fault.Fault) bool {
	var counts []int
	if f == nil {
		counts, _ = Syndromes(c)
	} else {
		fc := FaultCounts(c, []fault.Fault{*f})
		counts = fc[0]
	}
	for j := range t.Reference {
		if counts[j] != t.Reference[j] {
			return false
		}
	}
	return true
}

// DataVolume returns the tester storage for syndrome testing: one
// count per output — versus storing full response vectors.
func DataVolume(c *logic.Circuit) (syndromeWords, fullResponseBits int) {
	n := len(c.PIs)
	return len(c.POs), len(c.POs) * (1 << uint(n))
}
