// Package ramtest implements embedded-RAM testing, the hole the paper
// flags in scan design: "it is not practical to implement RAM with SRL
// memory, so additional procedures are required to handle embedded RAM
// circuitry [20]". It provides a word-organized RAM model with the
// classical memory fault types — stuck-at cells, transition faults,
// inversion and idempotent coupling faults, and address-decoder
// aliasing — plus the March algorithms (MATS+, March C-) and
// checkerboard procedure that detect them.
package ramtest

import (
	"fmt"
	"math/rand"
)

// FaultKind enumerates the modeled memory defects.
type FaultKind uint8

const (
	// CellSA0 / CellSA1: a bit is stuck.
	CellSA0 FaultKind = iota
	CellSA1
	// TransitionFault: the bit cannot make one transition (rise or fall).
	TransitionUp   // cannot 0→1
	TransitionDown // cannot 1→0
	// CouplingInv: writing the aggressor bit flips the victim.
	CouplingInv
	// CouplingIdem: a specific aggressor transition forces the victim
	// to a fixed value.
	CouplingIdem
	// AddressAlias: two addresses decode to the same physical word.
	AddressAlias
)

// String names the kind.
func (k FaultKind) String() string {
	switch k {
	case CellSA0:
		return "cell s-a-0"
	case CellSA1:
		return "cell s-a-1"
	case TransitionUp:
		return "transition 0->1 fault"
	case TransitionDown:
		return "transition 1->0 fault"
	case CouplingInv:
		return "inversion coupling"
	case CouplingIdem:
		return "idempotent coupling"
	case AddressAlias:
		return "address decoder alias"
	}
	return fmt.Sprintf("FaultKind(%d)", uint8(k))
}

// Fault is one injected memory defect.
type Fault struct {
	Kind FaultKind
	Addr int  // victim address
	Bit  uint // victim bit
	// Coupling aggressors / alias partner.
	AggrAddr int
	AggrBit  uint
	// CouplingIdem parameters: aggressor transition 0→1 (true) or 1→0,
	// forcing victim to Value.
	AggrRise bool
	Value    bool
}

// RAM is a word-organized memory with at most one injected fault.
type RAM struct {
	words []uint64
	width uint
	f     *Fault
}

// New builds a RAM with the given word count and bit width (≤ 64).
func New(words int, width uint) *RAM {
	if width == 0 || width > 64 {
		panic("ramtest: width must be 1..64")
	}
	return &RAM{words: make([]uint64, words), width: width}
}

// Words returns the address count.
func (r *RAM) Words() int { return len(r.words) }

// Width returns the word width.
func (r *RAM) Width() uint { return r.width }

// Inject installs the fault (nil clears).
func (r *RAM) Inject(f *Fault) { r.f = f }

func (r *RAM) mask() uint64 {
	if r.width == 64 {
		return ^uint64(0)
	}
	return 1<<r.width - 1
}

// physical resolves address aliasing.
func (r *RAM) physical(addr int) int {
	if r.f != nil && r.f.Kind == AddressAlias && addr == r.f.AggrAddr {
		return r.f.Addr
	}
	return addr
}

// Write stores a word, applying the fault model.
func (r *RAM) Write(addr int, v uint64) {
	v &= r.mask()
	addr = r.physical(addr)
	old := r.words[addr]
	f := r.f
	if f != nil && addr == f.Addr {
		bit := uint64(1) << f.Bit
		switch f.Kind {
		case CellSA0:
			v &^= bit
		case CellSA1:
			v |= bit
		case TransitionUp:
			if old&bit == 0 {
				v &^= bit // cannot rise
			}
		case TransitionDown:
			if old&bit != 0 {
				v |= bit // cannot fall
			}
		}
	}
	r.words[addr] = v
	// Coupling: a write to the aggressor disturbs the victim.
	if f != nil && addr == f.AggrAddr {
		abit := uint64(1) << f.AggrBit
		rose := old&abit == 0 && v&abit != 0
		fell := old&abit != 0 && v&abit == 0
		switch f.Kind {
		case CouplingInv:
			if rose || fell {
				r.words[f.Addr] ^= 1 << f.Bit
			}
		case CouplingIdem:
			if (f.AggrRise && rose) || (!f.AggrRise && fell) {
				if f.Value {
					r.words[f.Addr] |= 1 << f.Bit
				} else {
					r.words[f.Addr] &^= 1 << f.Bit
				}
			}
		}
	}
}

// Read returns a word, applying stuck-cell behavior on the way out.
func (r *RAM) Read(addr int) uint64 {
	addr = r.physical(addr)
	v := r.words[addr]
	if f := r.f; f != nil && addr == f.Addr {
		bit := uint64(1) << f.Bit
		switch f.Kind {
		case CellSA0:
			v &^= bit
		case CellSA1:
			v |= bit
		}
	}
	return v & r.mask()
}

// Universe enumerates a representative fault list for a RAM: per-bit
// stuck and transition faults on sampled cells, coupling pairs between
// neighbors, and one decoder alias per sampled address.
func Universe(words int, width uint, rng *rand.Rand, limit int) []Fault {
	var out []Fault
	addAll := func(addr int, bit uint) {
		out = append(out,
			Fault{Kind: CellSA0, Addr: addr, Bit: bit},
			Fault{Kind: CellSA1, Addr: addr, Bit: bit},
			Fault{Kind: TransitionUp, Addr: addr, Bit: bit},
			Fault{Kind: TransitionDown, Addr: addr, Bit: bit},
		)
		next := (addr + 1) % words
		out = append(out,
			Fault{Kind: CouplingInv, Addr: addr, Bit: bit, AggrAddr: next, AggrBit: bit},
			Fault{Kind: CouplingIdem, Addr: addr, Bit: bit, AggrAddr: next, AggrBit: bit, AggrRise: true, Value: rng.Intn(2) == 1},
		)
		if addr+1 < words {
			out = append(out, Fault{Kind: AddressAlias, Addr: addr, AggrAddr: addr + 1})
		}
	}
	for len(out) < limit {
		addAll(rng.Intn(words), uint(rng.Intn(int(width))))
	}
	return out
}

// Op is one March element operation.
type Op struct {
	Write bool
	Value bool // all-0s or all-1s data word
}

// Element is a March element: an address order and a sequence of
// read/write operations applied per address.
type Element struct {
	Ascending bool
	Ops       []Op
}

// March is a complete March test.
type March struct {
	Name     string
	Elements []Element
}

// MATSPlus is the classical MATS+ test: ⇕(w0); ⇑(r0,w1); ⇓(r1,w0).
// It detects all stuck-at and address-decoder faults.
func MATSPlus() March {
	return March{
		Name: "MATS+",
		Elements: []Element{
			{Ascending: true, Ops: []Op{{Write: true, Value: false}}},
			{Ascending: true, Ops: []Op{{Write: false, Value: false}, {Write: true, Value: true}}},
			{Ascending: false, Ops: []Op{{Write: false, Value: true}, {Write: true, Value: false}}},
		},
	}
}

// MarchCMinus is March C-: ⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1);
// ⇓(r1,w0); ⇕(r0). It additionally detects transition and (unlinked)
// coupling faults.
func MarchCMinus() March {
	up := func(ops ...Op) Element { return Element{Ascending: true, Ops: ops} }
	dn := func(ops ...Op) Element { return Element{Ascending: false, Ops: ops} }
	r0 := Op{Write: false, Value: false}
	r1 := Op{Write: false, Value: true}
	w0 := Op{Write: true, Value: false}
	w1 := Op{Write: true, Value: true}
	return March{
		Name: "March C-",
		Elements: []Element{
			up(w0), up(r0, w1), up(r1, w0), dn(r0, w1), dn(r1, w0), dn(r0),
		},
	}
}

// Run applies the March test, returning false on the first miscompare.
func (m March) Run(r *RAM) bool {
	fill := func(v bool) uint64 {
		if v {
			return r.mask()
		}
		return 0
	}
	for _, el := range m.Elements {
		for k := 0; k < r.Words(); k++ {
			addr := k
			if !el.Ascending {
				addr = r.Words() - 1 - k
			}
			for _, op := range el.Ops {
				if op.Write {
					r.Write(addr, fill(op.Value))
				} else if r.Read(addr) != fill(op.Value) {
					return false
				}
			}
		}
	}
	return true
}

// Length returns the operation count: the March complexity (e.g. 10N
// for March C-).
func (m March) Length(words int) int {
	ops := 0
	for _, el := range m.Elements {
		ops += len(el.Ops)
	}
	return ops * words
}

// Checkerboard runs the classical checkerboard procedure: write
// alternating 01/10 data, read back, then the complement. It detects
// stuck cells and some shorts but, unlike March tests, misses many
// coupling and decoder faults — which is the point of comparing them.
func Checkerboard(r *RAM) bool {
	pat := func(addr int, inverted bool) uint64 {
		base := uint64(0xAAAAAAAAAAAAAAAA)
		if addr%2 == 1 {
			base = ^base
		}
		if inverted {
			base = ^base
		}
		return base & r.mask()
	}
	for _, inv := range []bool{false, true} {
		for a := 0; a < r.Words(); a++ {
			r.Write(a, pat(a, inv))
		}
		for a := 0; a < r.Words(); a++ {
			if r.Read(a) != pat(a, inv) {
				return false
			}
		}
	}
	return true
}

// Coverage grades a test procedure against a fault list.
func Coverage(words int, width uint, faults []Fault, run func(*RAM) bool) float64 {
	if len(faults) == 0 {
		return 0
	}
	caught := 0
	for i := range faults {
		r := New(words, width)
		f := faults[i]
		r.Inject(&f)
		if !run(r) {
			caught++
		}
	}
	return float64(caught) / float64(len(faults))
}
