package ramtest

import (
	"math/rand"
	"testing"
)

func TestHealthyRAMPasses(t *testing.T) {
	r := New(64, 8)
	if !MATSPlus().Run(r) {
		t.Fatal("MATS+ failed on a healthy RAM")
	}
	if !MarchCMinus().Run(r) {
		t.Fatal("March C- failed on a healthy RAM")
	}
	if !Checkerboard(r) {
		t.Fatal("checkerboard failed on a healthy RAM")
	}
}

func TestFaultModelBehaviors(t *testing.T) {
	// Stuck cell.
	r := New(8, 4)
	r.Inject(&Fault{Kind: CellSA0, Addr: 3, Bit: 1})
	r.Write(3, 0xF)
	if r.Read(3) != 0xD {
		t.Fatalf("s-a-0 cell read %x", r.Read(3))
	}
	// Transition fault: cannot rise after being 0.
	r = New(8, 4)
	r.Inject(&Fault{Kind: TransitionUp, Addr: 2, Bit: 0})
	r.Write(2, 0x0)
	r.Write(2, 0x1)
	if r.Read(2)&1 != 0 {
		t.Fatal("transition-up fault allowed the rise")
	}
	// But the bit can be held at 1 if it never fell.
	// Inversion coupling: toggling aggressor flips victim.
	r = New(8, 4)
	r.Inject(&Fault{Kind: CouplingInv, Addr: 1, Bit: 2, AggrAddr: 5, AggrBit: 0})
	r.Write(1, 0x0)
	r.Write(5, 0x1) // aggressor bit rises
	if r.Read(1)&0x4 == 0 {
		t.Fatal("coupling did not flip the victim")
	}
	// Address alias: writes to the partner land on the victim.
	r = New(8, 4)
	r.Inject(&Fault{Kind: AddressAlias, Addr: 2, AggrAddr: 6})
	r.Write(6, 0x9)
	if r.Read(2) != 0x9 {
		t.Fatal("alias write did not land on the shared word")
	}
}

func TestMarchDetectsStuckCells(t *testing.T) {
	for _, kind := range []FaultKind{CellSA0, CellSA1} {
		r := New(32, 8)
		r.Inject(&Fault{Kind: kind, Addr: 17, Bit: 3})
		if MATSPlus().Run(r) {
			t.Fatalf("MATS+ missed %v", kind)
		}
	}
}

func TestMarchCMinusDetectsEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	faults := Universe(32, 8, rng, 300)
	cov := Coverage(32, 8, faults, MarchCMinus().Run)
	if cov < 1.0 {
		t.Fatalf("March C- coverage %.3f, want 1.0 on the modeled universe", cov)
	}
}

// TestProcedureHierarchy reproduces the classical ordering: March C-
// catches the whole modeled universe, while the cheaper procedures
// (MATS+ at 5N, checkerboard at 4N) each leave classes uncovered —
// MATS+ misses transition/coupling faults, the checkerboard misses
// decoder and some coupling faults.
func TestProcedureHierarchy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	faults := Universe(32, 8, rng, 300)
	cb := Coverage(32, 8, faults, Checkerboard)
	mats := Coverage(32, 8, faults, MATSPlus().Run)
	mc := Coverage(32, 8, faults, MarchCMinus().Run)
	if mc != 1.0 {
		t.Fatalf("March C- %.3f, want 1.0", mc)
	}
	if cb >= mc || mats >= mc {
		t.Fatalf("hierarchy violated: checkerboard %.3f, MATS+ %.3f, March C- %.3f", cb, mats, mc)
	}
	if cb < 0.3 || mats < 0.3 {
		t.Fatalf("cheap procedures implausibly weak: checkerboard %.3f, MATS+ %.3f", cb, mats)
	}
}

func TestMarchLengths(t *testing.T) {
	// MATS+ is 5N, March C- is 10N.
	if MATSPlus().Length(100) != 500 {
		t.Fatalf("MATS+ length %d", MATSPlus().Length(100))
	}
	if MarchCMinus().Length(100) != 1000 {
		t.Fatalf("March C- length %d", MarchCMinus().Length(100))
	}
}

func TestFaultKindStrings(t *testing.T) {
	for k := CellSA0; k <= AddressAlias; k++ {
		if k.String() == "" {
			t.Fatal("empty kind name")
		}
	}
}

func TestWidthValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("width 0 accepted")
		}
	}()
	New(8, 0)
}
