// Package signature implements the Signature Analysis methodology of
// Figs. 7–8 ([27],[33],[55]): an external analyzer probes one net of a
// self-stimulating board while a fixed, repeatable stimulus session
// runs; the probed stream is compressed in an LFSR and the residue
// compared with the good-machine signature. The package adds the
// board-level discipline the paper requires — kernel-first probing,
// closed-loop detection and breaking — and a fault-isolation walk that
// locates the failing module.
package signature

import (
	"fmt"
	"sort"

	"dft/internal/fault"
	"dft/internal/lfsr"
	"dft/internal/logic"
	"dft/internal/sim"
	"dft/internal/telemetry"
)

// machine abstracts good and faulty board simulations.
type machine interface {
	Apply(pi []bool) []bool
	Clock()
	Peek(net int) bool
}

// Analyzer is the external signature-analysis tool: a probe feeding a
// k-bit LFSR synchronized with the board clock.
type Analyzer struct {
	Width int
}

// NewAnalyzer builds an analyzer with a k-bit register (the classic
// tool used 16).
func NewAnalyzer(width int) *Analyzer { return &Analyzer{Width: width} }

// Probe runs the stimulus session from reset with the probe on net,
// returning the signature. The session must be identical for every
// probing, which is why the board needs initialization and a fixed
// clock count.
func (a *Analyzer) Probe(m machine, stimulus [][]bool, net int) uint64 {
	reg := telemetry.Default()
	defer reg.Timer("signature.probe").Time()()
	reg.Counter("signature.probes").Inc()
	reg.Counter("signature.probe.cycles").Add(int64(len(stimulus)))
	l := lfsr.NewMaximal(a.Width)
	l.SetState(0)
	for _, pat := range stimulus {
		m.Apply(pat)
		if m.Peek(net) {
			l.ClockIn(1)
		} else {
			l.ClockIn(0)
		}
		m.Clock()
	}
	return l.State()
}

// Board couples a circuit with its self-stimulation session and a
// module-level structure for diagnosis.
type Board struct {
	C        *logic.Circuit
	Stimulus [][]bool
	Modules  []Module
}

// Module is a board-level replaceable unit: a named set of output nets
// plus the modules feeding it.
type Module struct {
	Name    string
	Outputs []int
	Feeds   []string // upstream module names
}

// SelfStimulus builds a deterministic kernel stimulus of n cycles for
// the board's primary inputs, modeling the "network which can
// stimulate itself": a maximal LFSR supplies the input stream, so the
// session is repeatable from reset.
func SelfStimulus(c *logic.Circuit, cycles int) [][]bool {
	width := len(c.PIs)
	if width == 0 {
		return make([][]bool, cycles)
	}
	lw := width
	if lw < 2 {
		lw = 2
	}
	if lw > 32 {
		lw = 32
	}
	l := lfsr.NewMaximal(lw)
	l.SetState(1)
	out := make([][]bool, cycles)
	for t := range out {
		pat := make([]bool, width)
		for i := range pat {
			pat[i] = l.Bit(i%lw+1) == 1
		}
		l.Clock()
		out[t] = pat
	}
	return out
}

// GoldenSignatures probes every listed net on the good machine.
func (b *Board) GoldenSignatures(a *Analyzer, nets []int) map[int]uint64 {
	sigs := make(map[int]uint64, len(nets))
	for _, n := range nets {
		m := sim.NewMachine(b.C)
		sigs[n] = a.Probe(m, b.Stimulus, n)
	}
	return sigs
}

// moduleByName resolves a module.
func (b *Board) moduleByName(name string) (*Module, error) {
	for i := range b.Modules {
		if b.Modules[i].Name == name {
			return &b.Modules[i], nil
		}
	}
	return nil, fmt.Errorf("signature: unknown module %q", name)
}

// DetectLoops finds closed module-level paths, which the paper
// requires to be broken before signature analysis can isolate faults:
// "if the bad output ... were allowed to cycle around ... it would not
// be clear which module was defective".
func (b *Board) DetectLoops() [][]string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var stack []string
	var loops [][]string
	var visit func(name string)
	visit = func(name string) {
		color[name] = gray
		stack = append(stack, name)
		m, err := b.moduleByName(name)
		if err == nil {
			for _, up := range m.Feeds {
				switch color[up] {
				case white:
					visit(up)
				case gray:
					// Extract the cycle from the stack.
					var cyc []string
					for i := len(stack) - 1; i >= 0; i-- {
						cyc = append(cyc, stack[i])
						if stack[i] == up {
							break
						}
					}
					loops = append(loops, cyc)
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[name] = black
	}
	names := make([]string, 0, len(b.Modules))
	for _, m := range b.Modules {
		names = append(names, m.Name)
	}
	sort.Strings(names)
	for _, n := range names {
		if color[n] == white {
			visit(n)
		}
	}
	return loops
}

// BreakLoop removes the dependency of module on upstream (the jumper
// the paper says must be added at the board level).
func (b *Board) BreakLoop(module, upstream string) error {
	m, err := b.moduleByName(module)
	if err != nil {
		return err
	}
	for i, f := range m.Feeds {
		if f == upstream {
			m.Feeds = append(m.Feeds[:i], m.Feeds[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("signature: module %q does not read %q", module, upstream)
}

// Diagnosis reports the outcome of a kernel-first probing session.
type Diagnosis struct {
	Culprit  string
	Probes   int
	BadNets  []int
	GoodNets []int
}

// Diagnose runs the paper's procedure against a faulty board: starting
// from the kernel (modules with no upstream feeds) and working
// downstream, probe each module's outputs; the first module whose
// inputs' signatures are all good but whose output signature is bad is
// the culprit. The board's module graph must be loop-free.
func (b *Board) Diagnose(a *Analyzer, f fault.Fault) (Diagnosis, error) {
	reg := telemetry.Default()
	defer reg.Timer("signature.diagnose").Time()()
	reg.Counter("signature.diagnoses").Inc()
	if loops := b.DetectLoops(); len(loops) != 0 {
		return Diagnosis{}, fmt.Errorf("signature: closed loops present, break them first: %v", loops)
	}
	var nets []int
	for _, m := range b.Modules {
		nets = append(nets, m.Outputs...)
	}
	golden := b.GoldenSignatures(a, nets)

	// Topological order from the kernel outward.
	order, err := b.topoOrder()
	if err != nil {
		return Diagnosis{}, err
	}
	diag := Diagnosis{}
	moduleGood := map[string]bool{}
	for _, name := range order {
		m, _ := b.moduleByName(name)
		inputsGood := true
		for _, up := range m.Feeds {
			if !moduleGood[up] {
				inputsGood = false
			}
		}
		good := true
		for _, n := range m.Outputs {
			fm := fault.NewMachine(b.C, f)
			sig := a.Probe(fm, b.Stimulus, n)
			diag.Probes++
			if sig != golden[n] {
				good = false
				diag.BadNets = append(diag.BadNets, n)
			} else {
				diag.GoodNets = append(diag.GoodNets, n)
			}
		}
		moduleGood[name] = good
		if inputsGood && !good {
			diag.Culprit = name
			return diag, nil
		}
	}
	return diag, nil
}

// topoOrder sorts modules kernel-first.
func (b *Board) topoOrder() ([]string, error) {
	indeg := map[string]int{}
	for _, m := range b.Modules {
		if _, ok := indeg[m.Name]; !ok {
			indeg[m.Name] = 0
		}
		indeg[m.Name] += len(m.Feeds)
	}
	var queue []string
	for _, m := range b.Modules {
		if indeg[m.Name] == 0 {
			queue = append(queue, m.Name)
		}
	}
	sort.Strings(queue)
	var order []string
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for i := range b.Modules {
			m := &b.Modules[i]
			for _, up := range m.Feeds {
				if up == n {
					indeg[m.Name]--
					if indeg[m.Name] == 0 {
						queue = append(queue, m.Name)
					}
				}
			}
		}
	}
	if len(order) != len(b.Modules) {
		return nil, fmt.Errorf("signature: module graph has cycles")
	}
	return order, nil
}

// DetectionExperiment measures the probability that a fault changes a
// probed signature: for each fault, probe the given net and compare
// with the golden signature. It returns the fraction of faults whose
// error streams were caught — with a 16-bit register this approaches
// 1 - 2^-16 of the faults that disturb the net at all.
func DetectionExperiment(b *Board, a *Analyzer, net int, faults []fault.Fault) (caught, disturbed int) {
	m := sim.NewMachine(b.C)
	golden := a.Probe(m, b.Stimulus, net)
	for _, f := range faults {
		fm := fault.NewMachine(b.C, f)
		// Does the fault disturb the probed stream at all?
		gm := sim.NewMachine(b.C)
		streamDiffers := false
		for _, pat := range b.Stimulus {
			fm.Apply(pat)
			gm.Apply(pat)
			if fm.Peek(net) != gm.Peek(net) {
				streamDiffers = true
			}
			fm.Clock()
			gm.Clock()
		}
		if !streamDiffers {
			continue
		}
		disturbed++
		fm2 := fault.NewMachine(b.C, f)
		if a.Probe(fm2, b.Stimulus, net) != golden {
			caught++
		}
	}
	return caught, disturbed
}
