package signature

import (
	"testing"

	"dft/internal/circuits"
	"dft/internal/fault"
	"dft/internal/logic"
	"dft/internal/sim"
)

// testBoard builds a small self-stimulating "microprocessor board":
// a kernel counter (the µP) feeding an adder module (ALU) feeding a
// parity module (checker), as one netlist with a module map.
func testBoard(t *testing.T) *Board {
	t.Helper()
	c := logic.New("board")
	en := c.AddInput("EN")
	// Kernel: 4-bit counter.
	qs := make([]int, 4)
	for i := range qs {
		qs[i] = c.AddDFF("Q"+string(rune('0'+i)), en) // patched below
	}
	carry := en
	for i := 0; i < 4; i++ {
		tnet := c.AddGate(logic.Xor, "T"+string(rune('0'+i)), qs[i], carry)
		c.Gates[qs[i]].Fanin[0] = tnet
		if i < 3 {
			carry = c.AddGate(logic.And, "CA"+string(rune('0'+i)), carry, qs[i])
		}
	}
	// ALU module: increment the counter value (add Q0' chain).
	s0 := c.AddGate(logic.Not, "S0", qs[0])
	c1 := c.AddGate(logic.And, "C1x", qs[0], qs[0])
	s1 := c.AddGate(logic.Xor, "S1", qs[1], c1)
	c2 := c.AddGate(logic.And, "C2x", qs[1], c1)
	s2 := c.AddGate(logic.Xor, "S2", qs[2], c2)
	c3 := c.AddGate(logic.And, "C3x", qs[2], c2)
	s3 := c.AddGate(logic.Xor, "S3", qs[3], c3)
	// Checker module: parity of the ALU outputs.
	p := c.AddGate(logic.Xor, "PAR", s0, s1, s2, s3)
	c.MarkOutput(p)
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	b := &Board{
		C:        c,
		Stimulus: SelfStimulus(c, 50),
		Modules: []Module{
			{Name: "uP", Outputs: qs},
			{Name: "ALU", Outputs: []int{s0, s1, s2, s3}, Feeds: []string{"uP"}},
			{Name: "CHK", Outputs: []int{p}, Feeds: []string{"ALU"}},
		},
	}
	return b
}

func TestGoldenSignaturesRepeatable(t *testing.T) {
	b := testBoard(t)
	a := NewAnalyzer(16)
	q0, _ := b.C.NetByName("Q0")
	s1 := b.GoldenSignatures(a, []int{q0})
	s2 := b.GoldenSignatures(a, []int{q0})
	if s1[q0] != s2[q0] {
		t.Fatal("signatures not repeatable from reset")
	}
}

func TestProbeDistinguishesNets(t *testing.T) {
	b := testBoard(t)
	a := NewAnalyzer(16)
	q0, _ := b.C.NetByName("Q0")
	q3, _ := b.C.NetByName("Q3")
	sigs := b.GoldenSignatures(a, []int{q0, q3})
	if sigs[q0] == sigs[q3] {
		t.Fatal("distinct nets with distinct streams produced equal signatures")
	}
}

func TestDiagnoseFindsCulpritModule(t *testing.T) {
	b := testBoard(t)
	a := NewAnalyzer(16)
	// Fault inside the ALU module.
	s1net, _ := b.C.NetByName("S1")
	f := fault.Fault{Gate: s1net, Pin: fault.Stem, SA: logic.One}
	diag, err := b.Diagnose(a, f)
	if err != nil {
		t.Fatal(err)
	}
	if diag.Culprit != "ALU" {
		t.Fatalf("culprit %q, want ALU (bad nets %v)", diag.Culprit, diag.BadNets)
	}
	if diag.Probes == 0 {
		t.Fatal("no probes counted")
	}
}

func TestDiagnoseKernelFault(t *testing.T) {
	b := testBoard(t)
	a := NewAnalyzer(16)
	q1, _ := b.C.NetByName("Q1")
	f := fault.Fault{Gate: q1, Pin: fault.Stem, SA: logic.Zero}
	diag, err := b.Diagnose(a, f)
	if err != nil {
		t.Fatal(err)
	}
	if diag.Culprit != "uP" {
		t.Fatalf("culprit %q, want uP", diag.Culprit)
	}
}

func TestLoopDetectionAndBreaking(t *testing.T) {
	b := testBoard(t)
	// Close the loop: the checker feeds the kernel.
	for i := range b.Modules {
		if b.Modules[i].Name == "uP" {
			b.Modules[i].Feeds = append(b.Modules[i].Feeds, "CHK")
		}
	}
	loops := b.DetectLoops()
	if len(loops) == 0 {
		t.Fatal("loop not detected")
	}
	a := NewAnalyzer(16)
	q0, _ := b.C.NetByName("Q0")
	if _, err := b.Diagnose(a, fault.Fault{Gate: q0, Pin: fault.Stem, SA: logic.One}); err == nil {
		t.Fatal("Diagnose must refuse a looped board")
	}
	if err := b.BreakLoop("uP", "CHK"); err != nil {
		t.Fatal(err)
	}
	if loops := b.DetectLoops(); len(loops) != 0 {
		t.Fatalf("loops remain after break: %v", loops)
	}
	if _, err := b.Diagnose(a, fault.Fault{Gate: q0, Pin: fault.Stem, SA: logic.One}); err != nil {
		t.Fatalf("diagnose after break: %v", err)
	}
	if err := b.BreakLoop("uP", "CHK"); err == nil {
		t.Fatal("double break must error")
	}
	if err := b.BreakLoop("nope", "CHK"); err == nil {
		t.Fatal("unknown module must error")
	}
}

func TestDetectionExperimentHighCatchRate(t *testing.T) {
	b := testBoard(t)
	a := NewAnalyzer(16)
	par, _ := b.C.NetByName("PAR")
	u := fault.Universe(b.C)
	caught, disturbed := DetectionExperiment(b, a, par, u)
	if disturbed == 0 {
		t.Fatal("no fault disturbed the probed net")
	}
	rate := float64(caught) / float64(disturbed)
	if rate < 0.99 {
		t.Fatalf("16-bit signature catch rate %.4f, want ~1", rate)
	}
}

func TestSelfStimulusDeterministic(t *testing.T) {
	c := circuits.Counter(4)
	s1 := SelfStimulus(c, 20)
	s2 := SelfStimulus(c, 20)
	for i := range s1 {
		for j := range s1[i] {
			if s1[i][j] != s2[i][j] {
				t.Fatal("stimulus not deterministic")
			}
		}
	}
	if len(s1) != 20 || len(s1[0]) != len(c.PIs) {
		t.Fatal("stimulus shape wrong")
	}
}

func TestShortSignatureAliasesMoreThanLong(t *testing.T) {
	// Fig. 8's quantitative point, measured end to end: a 3-bit
	// analyzer (the figure's toy) aliases on some faults that a 16-bit
	// analyzer catches.
	b := testBoard(t)
	par, _ := b.C.NetByName("PAR")
	u := fault.Universe(b.C)
	c3, d3 := DetectionExperiment(b, NewAnalyzer(3), par, u)
	c16, d16 := DetectionExperiment(b, NewAnalyzer(16), par, u)
	if d3 != d16 {
		t.Fatalf("disturbed counts differ: %d vs %d", d3, d16)
	}
	if c3 > c16 {
		t.Fatalf("3-bit catch %d exceeds 16-bit catch %d", c3, c16)
	}
}

func TestMachineInterfaces(t *testing.T) {
	// Both machines satisfy the probe interface.
	b := testBoard(t)
	a := NewAnalyzer(8)
	q0, _ := b.C.NetByName("Q0")
	var g machine = sim.NewMachine(b.C)
	var f machine = fault.NewMachine(b.C, fault.Fault{Gate: q0, Pin: fault.Stem, SA: logic.One})
	if a.Probe(g, b.Stimulus, q0) == a.Probe(f, b.Stimulus, q0) {
		t.Fatal("stuck Q0 should change its own signature")
	}
}
