package board

import (
	"math/rand"
	"testing"

	"dft/internal/circuits"
	"dft/internal/fault"
	"dft/internal/logic"
)

// demoBoard: board inputs [a0..a3, b0..b3] → ADDER module → its sum
// feeds a PARITY module; board outputs are the adder's sum/carry and
// the parity bit.
func demoBoard() *Board {
	adder := circuits.RippleAdder(4) // PIs: A0..3,B0..3,CIN; POs: S0..3,COUT
	par := circuits.ParityTree(4)
	b := &Board{
		Modules: []*Module{
			{Name: "ADD", Logic: adder},
			{Name: "PAR", Logic: par},
		},
		Inputs: 8,
	}
	// Board inputs to adder.
	for i := 0; i < 8; i++ {
		b.Wires = append(b.Wires, Wire{
			Name: "in" + string(rune('0'+i)),
			From: Port{Module: "", Pin: i},
			To:   []Port{{Module: "ADD", Pin: i}},
		})
	}
	// CIN tied to board input 0 for simplicity of wiring.
	b.Wires = append(b.Wires, Wire{
		Name: "cin",
		From: Port{Module: "", Pin: 0},
		To:   []Port{{Module: "ADD", Pin: 8}},
	})
	// Adder sums to parity module.
	for i := 0; i < 4; i++ {
		b.Wires = append(b.Wires, Wire{
			Name: "s" + string(rune('0'+i)),
			From: Port{Module: "ADD", Pin: i},
			To:   []Port{{Module: "PAR", Pin: i}},
		})
	}
	b.Outputs = []Port{
		{Module: "ADD", Pin: 0}, {Module: "ADD", Pin: 1},
		{Module: "ADD", Pin: 2}, {Module: "ADD", Pin: 3},
		{Module: "ADD", Pin: 4}, {Module: "PAR", Pin: 0},
	}
	return b
}

func patterns(n int) [][]bool {
	rng := rand.New(rand.NewSource(int64(n) * 7))
	out := make([][]bool, 64)
	for x := range out {
		p := make([]bool, n)
		for i := range p {
			p[i] = rng.Intn(2) == 1
		}
		out[x] = p
	}
	return out
}

func TestBoardEval(t *testing.T) {
	b := demoBoard()
	outs, wires, err := b.Eval(make([]bool, 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 6 {
		t.Fatalf("%d outputs", len(outs))
	}
	if len(wires) != 13 {
		t.Fatalf("%d wires", len(wires))
	}
	for _, o := range outs {
		if o {
			t.Fatal("all-zero inputs must give all-zero outputs")
		}
	}
}

func TestEdgeTestDetectsButCannotLocate(t *testing.T) {
	golden := demoBoard()
	uut := demoBoard()
	s1, _ := uut.Modules[0].Logic.NetByName("S1")
	uut.Modules[0].Fault = &fault.Fault{Gate: s1, Pin: fault.Stem, SA: logic.One}
	pass, err := EdgeTest(golden, uut, patterns(8))
	if err != nil {
		t.Fatal(err)
	}
	if pass {
		t.Fatal("edge test missed the fault")
	}
	// Resolution: the edge test alone names no module — that is the
	// bed-of-nails' job.
}

func TestInCircuitTestIsolatesModule(t *testing.T) {
	uut := demoBoard()
	s1, _ := uut.Modules[0].Logic.NetByName("S1")
	uut.Modules[0].Fault = &fault.Fault{Gate: s1, Pin: fault.Stem, SA: logic.One}
	bn := &BedOfNails{B: uut}
	pats := map[string][][]bool{
		"ADD": patterns(9),
		"PAR": patterns(4),
	}
	failing, err := bn.InCircuitTest(pats)
	if err != nil {
		t.Fatal(err)
	}
	if len(failing) != 1 || failing[0] != "ADD" {
		t.Fatalf("in-circuit test isolated %v, want [ADD]", failing)
	}
}

func TestProbeAllGivesInternalVisibility(t *testing.T) {
	b := demoBoard()
	in := make([]bool, 8)
	in[0] = true // A0=1, CIN=1
	wires, err := (&BedOfNails{B: b}).ProbeAll(in)
	if err != nil {
		t.Fatal(err)
	}
	if !wires["in0"] {
		t.Fatal("input wire not visible")
	}
	if _, ok := wires["s0"]; !ok {
		t.Fatal("internal wire s0 not probed")
	}
}

func TestDegatedNetTruthTable(t *testing.T) {
	cases := []struct {
		degate, ctl, driver, want bool
	}{
		{false, false, true, true},   // transparent
		{false, false, false, false}, // transparent
		{true, false, true, false},   // blocked
		{true, true, false, true},    // tester drives 1
		{false, true, false, true},   // control dominates (OR)
	}
	for _, c := range cases {
		d := DegatedNet{Degate: c.degate, Control: c.ctl}
		if got := d.Value(c.driver); got != c.want {
			t.Fatalf("degate=%v ctl=%v driver=%v: got %v", c.degate, c.ctl, c.driver, got)
		}
	}
}

func TestOscillatorDegatingMakesSessionsRepeatable(t *testing.T) {
	c := circuits.Counter(4)
	ins := make([][]bool, 30)
	for i := range ins {
		ins[i] = []bool{true}
	}
	// Free-running: two sessions with different hidden phases diverge.
	t1 := SyncSession(c, NewOscillator(1), ins)
	t2 := SyncSession(c, NewOscillator(2), ins)
	same := true
	for i := range t1 {
		for j := range t1[i] {
			if t1[i][j] != t2[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("free-running oscillator sessions should diverge")
	}
	// Degated: tester drives the pseudo-clock; sessions repeat exactly.
	mk := func(seed int64) *Oscillator {
		o := NewOscillator(seed)
		o.Degate = true
		o.Pseudo = true
		return o
	}
	d1 := SyncSession(c, mk(1), ins)
	d2 := SyncSession(c, mk(2), ins)
	for i := range d1 {
		for j := range d1[i] {
			if d1[i][j] != d2[i][j] {
				t.Fatal("degated sessions must be identical")
			}
		}
	}
}

func TestBusIsolation(t *testing.T) {
	mkDriver := func(name string, v bool) *BusDriver {
		return &BusDriver{Name: name, Drive: func() bool { return v }}
	}
	bus := &Bus{Drivers: []*BusDriver{
		mkDriver("CPU", true),
		mkDriver("ROM", false),
		mkDriver("RAM", true),
		mkDriver("IO", false),
	}}
	expected := map[string]bool{"CPU": true, "ROM": false, "RAM": true, "IO": false}
	failing, err := bus.IsolateAndTest(expected)
	if err != nil {
		t.Fatal(err)
	}
	if len(failing) != 0 {
		t.Fatalf("healthy bus reported %v", failing)
	}
	// A defective module fails alone.
	bus.Drivers[2].Drive = func() bool { return false }
	failing, _ = bus.IsolateAndTest(expected)
	if len(failing) != 1 || failing[0] != "RAM" {
		t.Fatalf("isolation found %v, want [RAM]", failing)
	}
	if DiagnoseBus(failing, 4) != "module(s) [RAM] suspected" {
		t.Fatalf("diagnosis %q", DiagnoseBus(failing, 4))
	}
}

func TestBusStuckAmbiguity(t *testing.T) {
	mkDriver := func(name string, v bool) *BusDriver {
		return &BusDriver{Name: name, Drive: func() bool { return v }}
	}
	stuck := false
	bus := &Bus{
		Drivers: []*BusDriver{
			mkDriver("CPU", true), mkDriver("ROM", true),
			mkDriver("RAM", true), mkDriver("IO", true),
		},
		Stuck: &stuck,
	}
	expected := map[string]bool{"CPU": true, "ROM": true, "RAM": true, "IO": true}
	failing, err := bus.IsolateAndTest(expected)
	if err != nil {
		t.Fatal(err)
	}
	if len(failing) != 4 {
		t.Fatalf("stuck bus should fail all drivers, got %v", failing)
	}
	if got := DiagnoseBus(failing, 4); got != "bus trace suspected (all drivers fail; voltage test cannot resolve)" {
		t.Fatalf("diagnosis %q", got)
	}
}

func TestBusProtocolErrors(t *testing.T) {
	b := &Bus{Drivers: []*BusDriver{
		{Name: "A", Drive: func() bool { return true }},
		{Name: "B", Drive: func() bool { return false }},
	}}
	if _, err := b.Read(); err != ErrFloating {
		t.Fatalf("floating bus: %v", err)
	}
	b.Drivers[0].Enable = true
	b.Drivers[1].Enable = true
	if _, err := b.Read(); err != ErrContention {
		t.Fatalf("contention: %v", err)
	}
	b.Drivers[1].Enable = false
	if v, err := b.Read(); err != nil || !v {
		t.Fatalf("single driver: %v %v", v, err)
	}
}

func TestBoardErrorPaths(t *testing.T) {
	b := demoBoard()
	if _, _, err := b.Eval(make([]bool, 3)); err == nil {
		t.Fatal("wrong input width accepted")
	}
	// Remove a wire: module never ready.
	b2 := demoBoard()
	b2.Wires = b2.Wires[1:]
	if _, _, err := b2.Eval(make([]bool, 8)); err == nil {
		t.Fatal("missing wire not reported")
	}
}
