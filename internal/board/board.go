// Package board models the board-level, ad hoc DFT techniques of the
// paper's §III: module/wire boards, degating for partitioning (Figs.
// 2–3), oscillator degating, test points (Fig. 4), bed-of-nails and
// in-circuit testing (Fig. 5), and bus-structured architectures with
// tri-state isolation (Fig. 6).
package board

import (
	"fmt"
	"math/rand"

	"dft/internal/fault"
	"dft/internal/logic"
	"dft/internal/sim"
)

// Module is a replaceable unit on the board wrapping a combinational
// circuit; a fault may be injected to model a defective part.
type Module struct {
	Name  string
	Logic *logic.Circuit
	Fault *fault.Fault
}

// Eval computes the module's outputs.
func (m *Module) Eval(in []bool) []bool {
	var vals []bool
	if m.Fault != nil {
		vals = fault.EvalFaulty(m.Logic, in, nil, *m.Fault)
	} else {
		vals = sim.Eval(m.Logic, in, nil)
	}
	out := make([]bool, len(m.Logic.POs))
	for i, po := range m.Logic.POs {
		out[i] = vals[po]
	}
	return out
}

// Port addresses one pin of a module.
type Port struct {
	Module string
	Pin    int
}

// Wire connects a source port (module output or board input) to sink
// ports (module inputs or board outputs).
type Wire struct {
	Name string
	From Port // Module == "" means board primary input From.Pin
	To   []Port
}

// Board is a set of modules and wires with board-level inputs/outputs.
type Board struct {
	Modules []*Module
	Wires   []Wire
	Inputs  int
	Outputs []Port // board outputs read module output ports
}

// module looks up a module by name.
func (b *Board) module(name string) (*Module, error) {
	for _, m := range b.Modules {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("board: unknown module %q", name)
}

// Eval evaluates the whole board from its primary inputs, returning
// board outputs and every wire value (for nail access).
func (b *Board) Eval(in []bool) (outs []bool, wires map[string]bool, err error) {
	if len(in) != b.Inputs {
		return nil, nil, fmt.Errorf("board: %d inputs for %d pins", len(in), b.Inputs)
	}
	wires = map[string]bool{}
	modOut := map[string][]bool{}
	// Iterate to fixed point over a topological-ish pass (boards here
	// are acyclic; a bounded loop suffices and detects cycles).
	for pass := 0; pass <= len(b.Modules); pass++ {
		progress := false
		for _, m := range b.Modules {
			if _, done := modOut[m.Name]; done {
				continue
			}
			ins, ready := b.moduleInputs(m, in, modOut)
			if !ready {
				continue
			}
			modOut[m.Name] = m.Eval(ins)
			progress = true
		}
		if !progress {
			break
		}
	}
	for _, m := range b.Modules {
		if _, done := modOut[m.Name]; !done {
			return nil, nil, fmt.Errorf("board: module %q never ready (loop or missing wire)", m.Name)
		}
	}
	for _, w := range b.Wires {
		v, ok := b.wireValue(w, in, modOut)
		if !ok {
			return nil, nil, fmt.Errorf("board: wire %q undriven", w.Name)
		}
		wires[w.Name] = v
	}
	outs = make([]bool, len(b.Outputs))
	for i, p := range b.Outputs {
		m, err := b.module(p.Module)
		if err != nil {
			return nil, nil, err
		}
		outs[i] = modOut[m.Name][p.Pin]
	}
	return outs, wires, nil
}

// moduleInputs gathers a module's input values from the wires.
func (b *Board) moduleInputs(m *Module, in []bool, modOut map[string][]bool) ([]bool, bool) {
	ins := make([]bool, len(m.Logic.PIs))
	have := make([]bool, len(ins))
	for _, w := range b.Wires {
		v, ok := b.wireValue(w, in, modOut)
		for _, to := range w.To {
			if to.Module != m.Name {
				continue
			}
			if !ok {
				return nil, false
			}
			ins[to.Pin] = v
			have[to.Pin] = true
		}
	}
	for _, h := range have {
		if !h {
			return nil, false
		}
	}
	return ins, true
}

func (b *Board) wireValue(w Wire, in []bool, modOut map[string][]bool) (bool, bool) {
	if w.From.Module == "" {
		return in[w.From.Pin], true
	}
	out, ok := modOut[w.From.Module]
	if !ok {
		return false, false
	}
	return out[w.From.Pin], true
}

// EdgeTest applies patterns at the board edge and compares against a
// golden board; it reports pass/fail only — the resolution of an
// edge-connector test is the whole board.
func EdgeTest(golden, uut *Board, patterns [][]bool) (bool, error) {
	for _, p := range patterns {
		g, _, err := golden.Eval(p)
		if err != nil {
			return false, err
		}
		u, _, err := uut.Eval(p)
		if err != nil {
			return false, err
		}
		for i := range g {
			if g[i] != u[i] {
				return false, nil
			}
		}
	}
	return true, nil
}

// BedOfNails gives direct access to every wire: observation via probe
// nails and module isolation via overdrive — "testing each chip on the
// board independently of the other chips".
type BedOfNails struct {
	B *Board
}

// ProbeAll returns every wire value for a pattern.
func (bn *BedOfNails) ProbeAll(p []bool) (map[string]bool, error) {
	_, wires, err := bn.B.Eval(p)
	return wires, err
}

// InCircuitTest overdrives one module's inputs with the given patterns
// and compares its outputs against its own specification (the golden
// circuit), isolating the failing chip regardless of surrounding
// logic. It returns the failing module names.
func (bn *BedOfNails) InCircuitTest(patterns map[string][][]bool) ([]string, error) {
	var failing []string
	for _, m := range bn.B.Modules {
		pats := patterns[m.Name]
		bad := false
		// The golden pass reuses one valuation and scratch across the
		// module's whole pattern set.
		c := m.Logic
		vals := make([]bool, c.NumNets())
		scratch := make([]bool, c.MaxFanin())
		for _, p := range pats {
			got := m.Eval(p)
			sim.EvalInto(c, p, nil, vals, scratch)
			for i, po := range c.POs {
				if got[i] != vals[po] {
					bad = true
				}
			}
		}
		if bad {
			failing = append(failing, m.Name)
		}
	}
	return failing, nil
}

// --- Degating (Figs. 2–3) ---

// DegatedNet is the Fig. 2 structure: the module-driven value is ANDed
// with NOT(DEGATE) and ORed with a control line, so the tester can
// take over the net.
type DegatedNet struct {
	Degate  bool
	Control bool
}

// Value resolves the net given the functional driver value.
func (d DegatedNet) Value(driver bool) bool {
	return (driver && !d.Degate) || d.Control
}

// Oscillator is the free-running clock of Fig. 3: phase is unknown to
// the tester unless degated.
type Oscillator struct {
	rng    *rand.Rand
	Degate bool
	Pseudo bool // tester-driven pseudo-clock level when degated
}

// NewOscillator seeds the unknown phase.
func NewOscillator(seed int64) *Oscillator {
	return &Oscillator{rng: rand.New(rand.NewSource(seed))}
}

// Tick returns the next clock level: random phase when free-running,
// the tester's pseudo-clock when degated.
func (o *Oscillator) Tick() bool {
	if o.Degate {
		return o.Pseudo
	}
	return o.rng.Intn(2) == 1
}

// SyncSession runs a clocked machine for n cycles sampling on
// oscillator ticks, returning the output trace. Without degating the
// trace depends on the oscillator's hidden phase; with degating it is
// repeatable.
func SyncSession(c *logic.Circuit, o *Oscillator, inputs [][]bool) [][]bool {
	m := sim.NewMachine(c)
	var trace [][]bool
	for _, in := range inputs {
		out := m.Apply(in)
		if o.Tick() {
			m.Clock()
		}
		trace = append(trace, out)
	}
	return trace
}

// --- Bus architecture (Fig. 6) ---

// BusDriver is a tri-state driver on a shared bus.
type BusDriver struct {
	Name   string
	Enable bool
	Drive  func() bool
}

// Bus is a shared wire with multiple tri-state drivers, as in the
// Fig. 6 microcomputer: exactly one driver should be enabled at a
// time; the Stuck field models a solder defect pinning the trace.
type Bus struct {
	Drivers []*BusDriver
	Stuck   *bool // nil = healthy
}

// ErrContention is reported when several drivers are enabled.
var ErrContention = fmt.Errorf("board: bus contention")

// ErrFloating is reported when no driver is enabled.
var ErrFloating = fmt.Errorf("board: bus floating")

// Read resolves the bus value.
func (b *Bus) Read() (bool, error) {
	if b.Stuck != nil {
		return *b.Stuck, nil
	}
	var val bool
	n := 0
	for _, d := range b.Drivers {
		if d.Enable {
			val = d.Drive()
			n++
		}
	}
	switch n {
	case 0:
		return false, ErrFloating
	case 1:
		return val, nil
	default:
		return false, ErrContention
	}
}

// IsolateAndTest enables each driver alone and compares the bus value
// with the driver's expected output, returning modules that fail. On a
// stuck bus every module fails for one polarity — the paper's
// ambiguity: "any module or the bus trace itself may be the culprit".
func (b *Bus) IsolateAndTest(expected map[string]bool) (failing []string, err error) {
	for _, d := range b.Drivers {
		for _, e := range b.Drivers {
			e.Enable = e == d
		}
		v, err := b.Read()
		if err != nil {
			return nil, err
		}
		if v != expected[d.Name] {
			failing = append(failing, d.Name)
		}
	}
	return failing, nil
}

// DiagnoseBus interprets an isolation run: distinct single failures
// point at modules; all-fail points at the bus trace (requiring the
// current measurements the paper mentions to resolve further).
func DiagnoseBus(failing []string, total int) string {
	switch {
	case len(failing) == 0:
		return "pass"
	case len(failing) == total:
		return "bus trace suspected (all drivers fail; voltage test cannot resolve)"
	default:
		return fmt.Sprintf("module(s) %v suspected", failing)
	}
}
