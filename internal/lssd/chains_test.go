package lssd

import (
	"math/rand"
	"testing"

	"dft/internal/circuits"
	"dft/internal/fault"
	"dft/internal/logic"
	"dft/internal/sim"
)

func TestFlushTestPassesOnGoodChain(t *testing.T) {
	for _, style := range []Style{StyleLSSD, StyleMuxScan} {
		d := NewDesign(circuits.Counter(6), style)
		res := d.FlushTest()
		if !res.Pass {
			t.Fatalf("style %v: flush failed on a healthy chain\nsent %v\nrecv %v",
				style, res.Sent, res.Received)
		}
	}
}

func TestFlushTestCatchesBrokenChain(t *testing.T) {
	orig := circuits.Counter(6)
	d := NewDesign(orig, StyleMuxScan)
	// Break the scan path: the scan-side AND of the third position.
	scn, ok := d.Scanned.NetByName("Q2_scn")
	if !ok {
		t.Fatal("scan-path gate missing")
	}
	f := fault.Fault{Gate: scn, Pin: fault.Stem, SA: logic.Zero}
	if !ChainFaultCaught(orig, StyleMuxScan, f) {
		t.Fatal("flush test missed a severed scan path")
	}
	// A stuck SE-side fault that pins the mux into scan mode is also
	// caught (system data never captured, but flush is about the path).
	mux, _ := d.Scanned.NetByName("Q2_mux")
	f2 := fault.Fault{Gate: mux, Pin: fault.Stem, SA: logic.One}
	if !ChainFaultCaught(orig, StyleMuxScan, f2) {
		t.Fatal("flush test missed a stuck chain position")
	}
}

func TestInsertChainsPreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	orig := circuits.GrayCounter(6)
	for _, n := range []int{1, 2, 3} {
		scanned, p := InsertChains(orig, n)
		if len(p.ScanIns) != n || len(p.ScanOuts) != n {
			t.Fatalf("chains=%d: pin counts %d/%d", n, len(p.ScanIns), len(p.ScanOuts))
		}
		mo := sim.NewMachine(orig)
		ms := sim.NewMachine(scanned)
		for cyc := 0; cyc < 30; cyc++ {
			in := []bool{rng.Intn(2) == 1}
			sIn := append(append([]bool{}, in...), make([]bool, 1+n)...) // SE + SIs = 0
			a := mo.Step(in)
			b := ms.Step(sIn)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("chains=%d cycle %d: output %d differs", n, cyc, i)
				}
			}
		}
	}
}

func TestInsertChainsBalance(t *testing.T) {
	orig := circuits.Counter(10)
	_, p := InsertChains(orig, 3)
	if p.LongestChain() != 4 { // 10 FFs over 3 chains: 4,3,3
		t.Fatalf("longest chain %d, want 4", p.LongestChain())
	}
	total := 0
	for _, ch := range p.Chains {
		total += len(ch)
	}
	if total != 10 {
		t.Fatalf("chains cover %d of 10 FFs", total)
	}
}

// TestMultiChainShiftWorks drives two chains in parallel through the
// gate-level pins and reads the values back.
func TestMultiChainShiftWorks(t *testing.T) {
	orig := circuits.Counter(6)
	scanned, ports := InsertChains(orig, 2)
	if len(ports.Chains[0]) != 3 || len(ports.Chains[1]) != 3 {
		t.Fatalf("chain split %d/%d", len(ports.Chains[0]), len(ports.Chains[1]))
	}
	m := sim.NewMachine(scanned)
	want := []bool{true, false, true, true, false, true}
	// Chain ch holds original DFFs i with i%2==ch, in order; shift
	// deepest-first per chain.
	perChain := [][]bool{}
	for ch := 0; ch < 2; ch++ {
		var v []bool
		for i := ch; i < 6; i += 2 {
			v = append(v, want[i])
		}
		perChain = append(perChain, v)
	}
	nIn := len(scanned.PIs)
	for k := 2; k >= 0; k-- { // 3 positions per chain
		in := make([]bool, nIn)
		in[1] = true // SE (PI order: EN, SE, SI0, SI1)
		in[2] = perChain[0][k]
		in[3] = perChain[1][k]
		m.Apply(in)
		m.Clock()
	}
	st := m.State() // DFF order == original order
	for i, w := range want {
		if st[i] != w {
			t.Fatalf("position %d = %v, want %v (state %v)", i, st[i], w, st)
		}
	}
}

func TestMultiChainCycleSavings(t *testing.T) {
	orig := circuits.Counter(12)
	_, p1 := InsertChains(orig, 1)
	_, p4 := InsertChains(orig, 4)
	c1 := MultiChainCycles(p1, 10)
	c4 := MultiChainCycles(p4, 10)
	if c4*3 > c1 {
		t.Fatalf("4 chains: %d cycles vs 1 chain: %d — expected ~4x savings", c4, c1)
	}
}
