package lssd

import (
	"math/rand"
	"testing"

	"dft/internal/circuits"
	"dft/internal/logic"
	"dft/internal/sim"
)

func TestInsertPartialPreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, style := range []Style{StyleLSSD, StyleMuxScan} {
		orig := circuits.Counter(4)
		subset := []int{orig.DFFs[0], orig.DFFs[2]}
		scanned, p := InsertPartial(orig, subset, style)
		if len(p.ChainL1) != 2 {
			t.Fatalf("style %d: chain length %d, want 2", style, len(p.ChainL1))
		}
		mo := sim.NewMachine(orig)
		ms := sim.NewMachine(scanned)
		for cyc := 0; cyc < 40; cyc++ {
			in := []bool{rng.Intn(2) == 1}
			sIn := append(append([]bool{}, in...), false, false) // SE=0, SI=0
			oOut := mo.Step(in)
			sOut := ms.Step(sIn)
			for i := range oOut {
				if oOut[i] != sOut[i] {
					t.Fatalf("style %d cycle %d: output %d differs", style, cyc, i)
				}
			}
		}
	}
}

func TestInsertPartialShiftsOnlyTheChain(t *testing.T) {
	orig := circuits.ShiftRegister(4)
	subset := []int{orig.DFFs[0], orig.DFFs[1]}
	scanned, p := InsertPartial(orig, subset, StyleMuxScan)
	m := sim.NewMachine(scanned)
	// SE=1: clock two 1s through SI. The chained prefix loads them; the
	// unchained tail keeps following its system path, which only ever
	// sees the pre-shift zeros.
	for cyc := 0; cyc < 2; cyc++ {
		m.Step([]bool{false, true, true}) // D=0, SE=1, SI=1
	}
	for i, dff := range orig.DFFs {
		name := orig.NameOf(dff)
		n, ok := scanned.NetByName(name)
		if !ok {
			t.Fatalf("element %s missing after insertion", name)
		}
		want := i < 2
		if got := m.Peek(n); got != want {
			t.Fatalf("after shifting, %s = %v, want %v", name, got, want)
		}
	}
	if got := len(p.ChainL1); got != 2 {
		t.Fatalf("chain holds %d elements, want 2", got)
	}
}

func TestInsertIsInsertPartialOverAll(t *testing.T) {
	orig := circuits.Counter(3)
	a, _ := Insert(orig, StyleMuxScan)
	b, _ := InsertPartial(orig, orig.DFFs, StyleMuxScan)
	if logic.CanonicalBench(a) != logic.CanonicalBench(b) {
		t.Fatal("Insert and InsertPartial(all) disagree")
	}
}

func TestInsertPartialRejectsNonStorage(t *testing.T) {
	orig := circuits.Counter(3)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for a non-storage chain element")
		}
	}()
	InsertPartial(orig, []int{orig.PIs[0]}, StyleMuxScan)
}

func TestInsertPartialRejectsEmptyChain(t *testing.T) {
	orig := circuits.Counter(3)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for an empty chain")
		}
	}()
	InsertPartial(orig, nil, StyleMuxScan)
}
