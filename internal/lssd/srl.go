// Package lssd implements IBM's Level-Sensitive Scan Design: the
// shift-register latch (SRL) of Fig. 10, chain threading (Fig. 11), the
// double-latch subsystem structure (Fig. 12), structural scan insertion
// into gate-level circuits, design-rule checks, scan-based test
// application, and the overhead accounting the paper reports (4–20%).
package lssd

import "fmt"

// SRL is the behavioral shift-register latch of Fig. 10: a polarity-
// hold L1 latch with two data ports (system data D clocked by C, scan
// data I clocked by A) and a slave L2 latch clocked by B. Level-
// sensitive operation requires that no two of A, B, C are high
// simultaneously; the Chain type enforces the legal sequencing.
type SRL struct {
	L1, L2 bool
}

// ClockC samples system data into L1 (system clock high).
func (s *SRL) ClockC(d bool) { s.L1 = d }

// ClockA samples scan data into L1 (shift clock A high).
func (s *SRL) ClockA(i bool) { s.L1 = i }

// ClockB copies L1 into L2 (shift clock B high).
func (s *SRL) ClockB() { s.L2 = s.L1 }

// Chain is a threaded scan path: the scan input I of SRL k+1 is wired
// to L2 of SRL k, as in Fig. 11's interconnection of SRLs on a chip
// and board.
type Chain []*SRL

// NewChain builds a chain of n SRLs.
func NewChain(n int) Chain {
	ch := make(Chain, n)
	for i := range ch {
		ch[i] = new(SRL)
	}
	return ch
}

// ScanOut returns the value on the scan-out pin: L2 of the last SRL.
func (ch Chain) ScanOut() bool { return ch[len(ch)-1].L2 }

// Shift performs one A/B shift cycle: A samples each L1 from the
// previous L2 (scan-in for the first SRL), then B updates every L2.
// It returns the value the tester strobes on the scan-out pin during
// the shift — the L2 of the last SRL before the B clock.
func (ch Chain) Shift(scanIn bool) bool {
	so := ch.ScanOut()
	// A clock: every L1 samples its scan input simultaneously; because
	// the inputs are the L2 values, which A does not disturb, there is
	// no race — this is the level-sensitive property.
	prev := scanIn
	for _, s := range ch {
		next := s.L2
		s.ClockA(prev)
		prev = next
	}
	// B clock: L2 <- L1.
	for _, s := range ch {
		s.ClockB()
	}
	return so
}

// Load shifts the given values into the chain so that vals[i] ends in
// SRL i, returning the previous chain contents observed on scan-out
// (index i is the value that was in SRL i) — the classic simultaneous
// load/unload of scan testing.
func (ch Chain) Load(vals []bool) []bool {
	if len(vals) != len(ch) {
		panic(fmt.Sprintf("lssd: Load with %d values for %d SRLs", len(vals), len(ch)))
	}
	out := make([]bool, len(ch))
	for i := len(vals) - 1; i >= 0; i-- {
		out[i] = ch.Shift(vals[i])
	}
	return out
}

// Unload shifts the chain contents out (zero-filling), returning the
// contents in SRL order.
func (ch Chain) Unload() []bool {
	return ch.Load(make([]bool, len(ch)))
}

// State returns the current L1 contents of the chain.
func (ch Chain) State() []bool {
	out := make([]bool, len(ch))
	for i, s := range ch {
		out[i] = s.L1
	}
	return out
}

// CaptureSystem performs the functional capture between scan
// operations: the C clock samples system data into every L1, then a B
// clock settles L1 into L2 so the captured state is visible on the
// scan path.
func (ch Chain) CaptureSystem(d []bool) {
	if len(d) != len(ch) {
		panic(fmt.Sprintf("lssd: CaptureSystem with %d values for %d SRLs", len(d), len(ch)))
	}
	for i, s := range ch {
		s.ClockC(d[i])
	}
	for _, s := range ch {
		s.ClockB()
	}
}

// RacyChain models the design the level-sensitive rules forbid: a
// chain of single transparent latches on one clock. While the clock is
// high every latch is transparent, so scan data races through multiple
// stages — the failure mode the raceless two-latch SRL eliminates.
type RacyChain struct {
	latches []bool
}

// NewRacyChain builds the cautionary single-latch chain.
func NewRacyChain(n int) *RacyChain { return &RacyChain{latches: make([]bool, n)} }

// ClockPulse holds the single clock high for the given number of gate
// delays: each delay unit lets data propagate one latch forward. A
// pulse longer than one delay (any realistic pulse) flushes data
// through multiple stages — the race.
func (r *RacyChain) ClockPulse(scanIn bool, delays int) {
	for d := 0; d < delays; d++ {
		for i := len(r.latches) - 1; i > 0; i-- {
			r.latches[i] = r.latches[i-1]
		}
		r.latches[0] = scanIn
	}
}

// State returns the latch contents.
func (r *RacyChain) State() []bool { return append([]bool(nil), r.latches...) }
