package lssd

import (
	"fmt"

	"dft/internal/fault"
	"dft/internal/logic"
	"dft/internal/sim"
)

// machine abstracts the good machine (sim.Machine) and the faulty
// machine (fault.Machine) so scan tests run identically on both.
type machine interface {
	Apply(pi []bool) []bool
	Clock()
	Peek(net int) bool
}

// Design couples a scanned netlist with its ports and provides scan
// test application over the actual gate-level hardware: scan-in through
// the SI pin, functional capture, scan-out through the SO pin. This is
// the end-to-end path a tester exercises on an LSSD or Scan Path part.
type Design struct {
	Orig    *logic.Circuit
	Scanned *logic.Circuit
	P       Ports
	Style   Style

	m machine
	// cycle accounting
	Cycles int
}

// NewDesign inserts scan into the circuit and wraps it for test
// application.
func NewDesign(c *logic.Circuit, style Style) *Design {
	sc, p := Insert(c, style)
	return &Design{Orig: c, Scanned: sc, P: p, Style: style, m: sim.NewMachine(sc)}
}

// ChainLength returns the number of scan positions.
func (d *Design) ChainLength() int { return len(d.P.ChainL1) }

// clocksPerShift is 2 for LSSD (A/B phases) and 1 for mux-scan.
func (d *Design) clocksPerShift() int {
	if d.Style == StyleLSSD {
		return 2
	}
	return 1
}

// pinVector assembles the scanned circuit's input vector from the
// original PI values plus scan controls.
func (d *Design) pinVector(pi []bool, se, si bool) []bool {
	if len(pi) != len(d.Orig.PIs) {
		panic(fmt.Sprintf("lssd: %d PI values for %d inputs", len(pi), len(d.Orig.PIs)))
	}
	in := make([]bool, len(d.Scanned.PIs))
	copy(in, pi)
	in[len(pi)] = se
	in[len(pi)+1] = si
	return in
}

// soPin reads the scan-out pin from the last Apply.
func (d *Design) soPin() bool { return d.m.Peek(d.P.ScanOut) }

// Reset zeroes the machine state and cycle count, clearing any
// injected fault.
func (d *Design) Reset() {
	d.m = sim.NewMachine(d.Scanned)
	d.Cycles = 0
}

// InjectFault resets the design onto a faulty machine carrying f (a
// fault in the scanned netlist; original-circuit gate IDs are
// preserved by insertion, so faults on original logic carry over).
func (d *Design) InjectFault(f fault.Fault) {
	d.m = fault.NewMachine(d.Scanned, f)
	d.Cycles = 0
}

// ScanIn shifts vals into the chain (vals[i] destined for chain
// position i) through the SI pin.
func (d *Design) ScanIn(vals []bool) {
	if len(vals) != d.ChainLength() {
		panic(fmt.Sprintf("lssd: ScanIn with %d values for %d positions", len(vals), d.ChainLength()))
	}
	pi := make([]bool, len(d.Orig.PIs))
	cps := d.clocksPerShift()
	for i := len(vals) - 1; i >= 0; i-- {
		in := d.pinVector(pi, true, vals[i])
		for k := 0; k < cps; k++ {
			d.m.Apply(in)
			d.m.Clock()
			d.Cycles++
		}
	}
}

// ChainState reads the current chain contents (L1 values) directly
// from the model — a white-box helper for tests, not a tester
// operation.
func (d *Design) ChainState() []bool {
	out := make([]bool, d.ChainLength())
	for i, l1 := range d.P.ChainL1 {
		out[i] = d.m.Peek(l1)
	}
	return out
}

// Capture applies the primary inputs in functional mode (SE=0),
// returns the primary-output values (original PO set), and clocks once
// so the combinational response is captured into the chain.
func (d *Design) Capture(pi []bool) []bool {
	in := d.pinVector(pi, false, false)
	outs := d.m.Apply(in)
	d.m.Clock()
	d.Cycles++
	return outs[:len(d.Orig.POs)]
}

// ScanOut shifts the captured chain contents out through the SO pin,
// returning them in chain order.
func (d *Design) ScanOut() []bool {
	n := d.ChainLength()
	out := make([]bool, n)
	pi := make([]bool, len(d.Orig.PIs))
	in := d.pinVector(pi, true, false)
	if d.Style == StyleLSSD {
		// One B-phase clock moves the captured L1 values into the L2
		// scan path; thereafter each position needs a full A/B pair.
		d.m.Apply(in)
		d.m.Clock()
		d.Cycles++
		for k := n - 1; k >= 0; k-- {
			out[k] = d.soPin()
			d.m.Apply(in)
			d.m.Clock()
			d.m.Apply(in)
			d.m.Clock()
			d.Cycles += 2
		}
		return out
	}
	for k := n - 1; k >= 0; k-- {
		out[k] = d.soPin()
		d.m.Apply(in)
		d.m.Clock()
		d.Cycles++
	}
	return out
}

// ScanTest is one scan-format test: chain state plus primary-input
// values, with the expected responses filled in by RunTest.
type ScanTest struct {
	State []bool // value for each chain position
	PI    []bool
}

// TestResponse is the observed response to a ScanTest.
type TestResponse struct {
	PO       []bool
	Captured []bool
}

// RunTest applies one scan test end to end: scan-in, capture, scan-out.
func (d *Design) RunTest(t ScanTest) TestResponse {
	d.ScanIn(t.State)
	po := d.Capture(t.PI)
	cap := d.ScanOut()
	return TestResponse{PO: po, Captured: cap}
}

// TestCycles predicts the tester cycles for n tests on this design:
// per test one chain load plus one capture, plus a final unload —
// the serialization cost the paper flags as scan's main disadvantage.
func (d *Design) TestCycles(nTests int) int {
	shift := d.ChainLength() * d.clocksPerShift()
	extra := 0
	if d.Style == StyleLSSD {
		extra = 1 // settle clock before the L2 path carries the capture
	}
	return nTests * (shift + 1 + shift + extra)
}
