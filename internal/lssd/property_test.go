package lssd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dft/internal/circuits"
	"dft/internal/sim"
)

// TestPropertyChainLoadUnload: for any chain length and contents,
// Load places the values and Unload returns them.
func TestPropertyChainLoadUnload(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 1 + int(nRaw)%32
		rng := rand.New(rand.NewSource(seed))
		ch := NewChain(n)
		vals := make([]bool, n)
		for i := range vals {
			vals[i] = rng.Intn(2) == 1
		}
		ch.Load(vals)
		st := ch.State()
		for i := range vals {
			if st[i] != vals[i] {
				return false
			}
		}
		out := ch.Unload()
		for i := range vals {
			if out[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyScanRoundTrip: for any counter size and random chain
// contents, scanning in through the gate-level SI pin and reading the
// chain back gives the identity, for both styles.
func TestPropertyScanRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw, styleRaw uint8) bool {
		n := 2 + int(nRaw)%6
		style := StyleLSSD
		if styleRaw%2 == 1 {
			style = StyleMuxScan
		}
		d := NewDesign(circuits.Counter(n), style)
		rng := rand.New(rand.NewSource(seed))
		vals := make([]bool, n)
		for i := range vals {
			vals[i] = rng.Intn(2) == 1
		}
		d.ScanIn(vals)
		got := d.ChainState()
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyScanTransparency: with SE=0 the scanned circuit tracks
// the original cycle for cycle on random input sequences.
func TestPropertyScanTransparency(t *testing.T) {
	f := func(seed int64, styleRaw uint8) bool {
		style := StyleLSSD
		if styleRaw%2 == 1 {
			style = StyleMuxScan
		}
		orig := circuits.GrayCounter(4)
		scanned, _ := Insert(orig, style)
		rng := rand.New(rand.NewSource(seed))
		mo := sim.NewMachine(orig)
		ms := sim.NewMachine(scanned)
		for cyc := 0; cyc < 25; cyc++ {
			in := []bool{rng.Intn(2) == 1}
			a := mo.Step(in)
			b := ms.Step(append(append([]bool{}, in...), false, false))
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCaptureMatchesNextState: Capture stores exactly the
// original machine's next-state function of (state, inputs).
func TestPropertyCaptureMatchesNextState(t *testing.T) {
	f := func(seed int64) bool {
		orig := circuits.Counter(5)
		d := NewDesign(orig, StyleMuxScan)
		rng := rand.New(rand.NewSource(seed))
		st := make([]bool, 5)
		for i := range st {
			st[i] = rng.Intn(2) == 1
		}
		pi := []bool{rng.Intn(2) == 1}
		resp := d.RunTest(ScanTest{State: st, PI: pi})
		m := sim.NewMachine(orig)
		m.SetState(st)
		m.Step(pi)
		want := m.State()
		for i := range want {
			if resp.Captured[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
