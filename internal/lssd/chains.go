package lssd

import (
	"fmt"

	"dft/internal/fault"
	"dft/internal/logic"
)

// FlushResult reports a scan-chain integrity (flush) test.
type FlushResult struct {
	Sent     []bool
	Received []bool
	Pass     bool
}

// FlushTest shifts the classical 0011 flush pattern through the chain
// with SE held high and compares what emerges after the pipeline
// delay. It verifies the scan path itself before any stored-pattern
// test is trusted — a broken chain otherwise produces garbage
// diagnoses. The design's state is clobbered.
func (d *Design) FlushTest() FlushResult {
	n := d.ChainLength()
	// Pattern long enough to flush the chain twice.
	var sent []bool
	for len(sent) < 2*n+8 {
		sent = append(sent, false, false, true, true)
	}
	pi := make([]bool, len(d.Orig.PIs))
	cps := d.clocksPerShift()
	var received []bool
	for _, b := range sent {
		in := d.pinVector(pi, true, b)
		for k := 0; k < cps; k++ {
			d.m.Apply(in)
			d.m.Clock()
			d.Cycles++
		}
		received = append(received, d.soPin())
	}
	// After the chain's pipeline delay the output must replay the
	// input: a bit entering position 0 on shift k is visible on the SO
	// pin after shift k+n-1 (both styles — the strobe follows the full
	// shift, so the last position has already updated).
	delay := n - 1
	res := FlushResult{Sent: sent, Received: received, Pass: true}
	for i := delay; i < len(sent); i++ {
		if received[i] != sent[i-delay] {
			res.Pass = false
			break
		}
	}
	return res
}

// MultiPorts is the scan interface of a multi-chain insertion.
type MultiPorts struct {
	ScanEnable int
	ScanIns    []int
	ScanOuts   []int
	Chains     [][]int // per chain: the system (L1) elements in order
}

// InsertChains is Insert generalized to nChains balanced scan chains —
// the standard lever against the serialization cost: test time scales
// with the longest chain, at the price of one SI/SO pin pair per
// chain. Mux-scan style only (the LSSD L2 threading generalizes the
// same way but is omitted for clarity).
func InsertChains(c *logic.Circuit, nChains int) (*logic.Circuit, MultiPorts) {
	if c.NumDFFs() == 0 {
		panic("lssd: InsertChains on a circuit without storage elements")
	}
	if nChains < 1 || nChains > c.NumDFFs() {
		panic(fmt.Sprintf("lssd: %d chains for %d flip-flops", nChains, c.NumDFFs()))
	}
	nc := c.Clone()
	p := MultiPorts{ScanEnable: nc.AddInput("SE")}
	nse := nc.AddGate(logic.Not, "SE_N", p.ScanEnable)
	p.Chains = make([][]int, nChains)
	prev := make([]int, nChains)
	for ch := 0; ch < nChains; ch++ {
		prev[ch] = nc.AddInput(fmt.Sprintf("SI%d", ch))
		p.ScanIns = append(p.ScanIns, prev[ch])
	}
	for i, dff := range c.DFFs {
		ch := i % nChains
		name := c.NameOf(dff)
		d := nc.Gates[dff].Fanin[0]
		sysPath := nc.AddGate(logic.And, fmt.Sprintf("%s_sys", name), d, nse)
		scanPath := nc.AddGate(logic.And, fmt.Sprintf("%s_scn", name), prev[ch], p.ScanEnable)
		nc.Gates[dff].Fanin[0] = nc.AddGate(logic.Or, fmt.Sprintf("%s_mux", name), sysPath, scanPath)
		p.Chains[ch] = append(p.Chains[ch], dff)
		prev[ch] = dff
	}
	for ch := 0; ch < nChains; ch++ {
		so := nc.AddGate(logic.Buf, fmt.Sprintf("SO%d", ch), prev[ch])
		nc.MarkOutput(so)
		p.ScanOuts = append(p.ScanOuts, so)
	}
	nc.MustFinalize()
	return nc, p
}

// LongestChain returns the maximum chain length.
func (p MultiPorts) LongestChain() int {
	max := 0
	for _, ch := range p.Chains {
		if len(ch) > max {
			max = len(ch)
		}
	}
	return max
}

// MultiChainCycles predicts tester cycles for n tests with balanced
// chains: per test, shift the longest chain in and out plus one
// capture.
func MultiChainCycles(p MultiPorts, nTests int) int {
	l := p.LongestChain()
	return nTests * (l + 1 + l)
}

// ChainFaultEscapes demonstrates why the flush test exists: it runs
// the flush pattern through a design whose scan path carries the given
// fault and reports whether the flush catches it.
func ChainFaultCaught(orig *logic.Circuit, style Style, f fault.Fault) bool {
	d := NewDesign(orig, style)
	d.InjectFault(f)
	return !d.FlushTest().Pass
}
