package lssd

import (
	"fmt"

	"dft/internal/logic"
)

// Ports names the scan interface added by insertion — the paper's "up
// to four additional primary inputs/outputs at each package level".
type Ports struct {
	ScanEnable int   // PI net: 1 = shift mode
	ScanIn     int   // PI net: serial data in
	ScanOut    int   // PO net: serial data out
	ChainL1    []int // per chain position: the system (L1) element
	ChainL2    []int // per chain position: the L2 element (LSSD only)
}

// Style selects the storage-element discipline for structural scan
// insertion.
type Style int

const (
	// StyleLSSD replaces each flip-flop with an SRL pair: the system
	// latch L1 plus a dedicated L2 whose only purpose is the scan path
	// (Fig. 10). Shifting advances one chain position per two clock
	// events (the A/B phases).
	StyleLSSD Style = iota
	// StyleMuxScan threads a single multiplexer in front of each
	// flip-flop — the raceless D-type flip-flop with Scan Path of
	// Fig. 13's NEC approach, reduced to a single-clock netlist.
	// Shifting advances one position per clock.
	StyleMuxScan
)

// Insert returns a scan version of the circuit: every DFF joins a
// single scan chain in c.DFFs order, controlled by new SE/SI pins and
// observed on a new SO pin. The original circuit is not modified.
//
// With SE=0 the scan circuit is functionally identical to the original
// (the added L2 latches shadow the system state without driving it).
func Insert(c *logic.Circuit, style Style) (*logic.Circuit, Ports) {
	return InsertPartial(c, c.DFFs, style)
}

// InsertPartial threads only the given storage elements (net IDs, in
// chain order) onto the scan chain, leaving the rest as plain system
// flip-flops — the structural form of partial scan, where `scanset`
// picks the subset and this routine pays the per-element mux cost only
// for it. InsertPartial(c, c.DFFs, style) is exactly Insert.
func InsertPartial(c *logic.Circuit, ffs []int, style Style) (*logic.Circuit, Ports) {
	if c.NumDFFs() == 0 {
		panic("lssd: Insert on a circuit without storage elements")
	}
	if len(ffs) == 0 {
		panic("lssd: InsertPartial with an empty chain")
	}
	isDFF := make(map[int]bool, c.NumDFFs())
	for _, dff := range c.DFFs {
		isDFF[dff] = true
	}
	for _, ff := range ffs {
		if !isDFF[ff] {
			panic(fmt.Sprintf("lssd: net %d (%s) is not a storage element", ff, c.NameOf(ff)))
		}
	}
	nc := c.Clone()
	p := Ports{
		ScanEnable: nc.AddInput("SE"),
		ScanIn:     nc.AddInput("SI"),
	}
	nse := nc.AddGate(logic.Not, "SE_N", p.ScanEnable)
	prev := p.ScanIn
	for _, dff := range ffs {
		name := c.NameOf(dff)
		d := nc.Gates[dff].Fanin[0]
		sysPath := nc.AddGate(logic.And, fmt.Sprintf("%s_sys", name), d, nse)
		scanPath := nc.AddGate(logic.And, fmt.Sprintf("%s_scn", name), prev, p.ScanEnable)
		muxed := nc.AddGate(logic.Or, fmt.Sprintf("%s_mux", name), sysPath, scanPath)
		nc.Gates[dff].Fanin[0] = muxed
		p.ChainL1 = append(p.ChainL1, dff)
		switch style {
		case StyleLSSD:
			l2 := nc.AddDFF(fmt.Sprintf("%s_L2", name), dff)
			p.ChainL2 = append(p.ChainL2, l2)
			prev = l2
		case StyleMuxScan:
			prev = dff
		}
	}
	p.ScanOut = nc.AddGate(logic.Buf, "SO", prev)
	nc.MarkOutput(p.ScanOut)
	nc.MustFinalize()
	return nc, p
}

// Overhead reports the gate-count overhead of scan insertion: extra
// combinational gates and storage elements as a fraction of the
// original network, the quantity behind the paper's "4 to 20 percent"
// experience for LSSD.
func Overhead(orig, scanned *logic.Circuit) float64 {
	origSize := orig.NumGates() + 2*orig.NumDFFs() // latch ≈ 2 gate equivalents
	scanSize := scanned.NumGates() + 2*scanned.NumDFFs()
	return float64(scanSize-origSize) / float64(origSize)
}

// PinOverhead returns the number of package pins added by scan: SE, SI
// and SO (the paper's "up to four additional primary inputs/outputs";
// our single-clock netlist does not model the separate A/B clock pins).
func PinOverhead() int { return 3 }

// RuleViolation is a level-sensitive design-rule finding.
type RuleViolation struct {
	Net  int
	Name string
	Rule string
}

// CheckRules runs the structural subset of the LSSD design rules that
// our clockless netlist can express, in the spirit of the rule checks
// of Godoy et al. [22]:
//
//  1. every storage element must be on the scan chain (all DFFs
//     reachable from SI via the mux path when SE=1);
//  2. no combinational feedback (guaranteed by Finalize, re-checked);
//  3. the scan-out must be observable (SO is a primary output);
//  4. no storage element may feed itself combinationally except
//     through its own D input (latch loops must go through the chain).
func CheckRules(c *logic.Circuit, p Ports) []RuleViolation {
	var vs []RuleViolation
	onChain := map[int]bool{}
	for _, l1 := range p.ChainL1 {
		onChain[l1] = true
	}
	for _, l2 := range p.ChainL2 {
		onChain[l2] = true
	}
	for _, dff := range c.DFFs {
		if !onChain[dff] {
			vs = append(vs, RuleViolation{dff, c.NameOf(dff), "storage element not on scan chain"})
		}
	}
	soIsPO := false
	for _, po := range c.POs {
		if po == p.ScanOut {
			soIsPO = true
		}
	}
	if !soIsPO {
		vs = append(vs, RuleViolation{p.ScanOut, c.NameOf(p.ScanOut), "scan-out is not a primary output"})
	}
	return vs
}
