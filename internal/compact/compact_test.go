package compact

import (
	"context"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"dft/internal/atpg"
	"dft/internal/circuits"
	"dft/internal/fault"
	"dft/internal/logic"
	"dft/internal/telemetry"
)

func randomPatterns(width, n int, seed int64) [][]bool {
	rng := rand.New(rand.NewSource(seed))
	pats := make([][]bool, n)
	for i := range pats {
		p := make([]bool, width)
		for j := range p {
			p[j] = rng.Intn(2) == 1
		}
		pats[i] = p
	}
	return pats
}

func TestParseMode(t *testing.T) {
	for s, want := range map[string]Mode{"": ModeOff, "off": ModeOff, "reverse": ModeReverse,
		"static": ModeStatic, "dynamic": ModeDynamic, "full": ModeFull} {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseMode("ful"); err == nil || !strings.Contains(err.Error(), `did you mean "full"`) {
		t.Fatalf("no did-you-mean for 'ful': %v", err)
	}
	if _, err := ParseMode("zzzzzzzz"); err == nil || strings.Contains(err.Error(), "did you mean") {
		t.Fatalf("far-off name should get no suggestion: %v", err)
	}
}

// Reverse compaction of a redundant random set must shrink hard and
// detect exactly the same faults, with stats and counters to match.
func TestPatternsReverse(t *testing.T) {
	c := circuits.ArrayMultiplier(5)
	view := atpg.PrimaryView(c)
	faults := fault.CollapseEquiv(c, fault.Universe(c)).Reps
	pats := randomPatterns(len(c.PIs), 512, 7)
	want, err := fault.Simulate(context.Background(), c, faults, pats, fault.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	kept, st, err := Patterns(context.Background(), c, view, faults, pats, Options{Mode: ModeReverse, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if st.PatternsIn != 512 || st.PatternsOut != len(kept) || st.ReplayPasses < 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Ratio < 4 {
		t.Fatalf("random-set reduction %.2fx, want >= 4x", st.Ratio)
	}
	got, err := fault.Simulate(context.Background(), c, faults, kept, fault.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Detected, want.Detected) {
		t.Fatal("kept set does not detect the original fault set")
	}
	if st.DetectedOut != want.NumCaught || st.DetectedIn != want.NumCaught {
		t.Fatalf("stats detected %d/%d, simulate says %d", st.DetectedIn, st.DetectedOut, want.NumCaught)
	}
	snap := reg.Snapshot()
	if snap.Counters["compact.patterns.dropped"] != int64(512-len(kept)) {
		t.Fatalf("dropped counter %d, want %d", snap.Counters["compact.patterns.dropped"], 512-len(kept))
	}
	if snap.Timers["compact.run"].Count == 0 {
		t.Fatal("compact.run span did not observe its timer")
	}
	if p := snap.Progress["compact.patterns.progress"]; p.Done == 0 || p.Done != p.Total {
		t.Fatalf("progress incomplete: %+v", p)
	}
}

// Static compaction over deterministic cubes: merging must fire, the
// compacted set must cover at least the original detections, and the
// paranoia re-grade in the pipeline must hold.
func TestTestsStatic(t *testing.T) {
	for _, tc := range []struct {
		name string
		c    *logic.Circuit
	}{
		{"alu74181", circuits.ALU74181()},
		{"mult5", circuits.ArrayMultiplier(5)},
	} {
		c := tc.c
		view := atpg.PrimaryView(c)
		faults := fault.CollapseEquiv(c, fault.Universe(c)).Reps
		gen := atpg.Generate(c, view, faults, atpg.Config{RandomSeed: 3})
		reg := telemetry.NewRegistry()
		kept, cubes, st, err := Tests(context.Background(), c, view, faults, gen.Tests,
			Options{Mode: ModeStatic, Seed: 3, Metrics: reg})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(kept) != len(cubes) {
			t.Fatalf("%s: %d patterns but %d cubes", tc.name, len(kept), len(cubes))
		}
		if st.MergeAttempts == 0 {
			t.Fatalf("%s: static pass did not attempt any merges", tc.name)
		}
		if st.DetectedOut < st.DetectedIn {
			t.Fatalf("%s: compaction lost coverage %d -> %d", tc.name, st.DetectedIn, st.DetectedOut)
		}
		snap := reg.Snapshot()
		if snap.Counters["compact.merge.attempts"] == 0 {
			t.Fatalf("%s: merge counters not flushed: %v", tc.name, snap.Counters)
		}
	}
}

// Same seed, same input -> byte-identical compacted set, whether the
// source is injected or derived from Seed; a different seed may fill
// differently.
func TestStaticSeedDeterminism(t *testing.T) {
	c := circuits.ALU74181()
	view := atpg.PrimaryView(c)
	faults := fault.CollapseEquiv(c, fault.Universe(c)).Reps
	gen := atpg.Generate(c, view, faults, atpg.Config{RandomSeed: 11})
	run := func(opt Options) [][]bool {
		kept, _, _, err := Tests(context.Background(), c, view, faults, gen.Tests, opt)
		if err != nil {
			t.Fatal(err)
		}
		return kept
	}
	a := run(Options{Mode: ModeStatic, Seed: 9, Metrics: telemetry.NewRegistry()})
	b := run(Options{Mode: ModeStatic, Seed: 9, Metrics: telemetry.NewRegistry()})
	inj := run(Options{Mode: ModeStatic, Rand: rand.New(rand.NewSource(9 + 2)), Metrics: telemetry.NewRegistry()})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different compacted sets")
	}
	if !reflect.DeepEqual(a, inj) {
		t.Fatal("injected source diverged from Seed-derived source")
	}
}

// Result compacts in place with Tests staying aligned to Patterns, and
// ModeOff is a strict no-op.
func TestResultInPlace(t *testing.T) {
	c := circuits.ArrayMultiplier(4)
	view := atpg.PrimaryView(c)
	faults := fault.CollapseEquiv(c, fault.Universe(c)).Reps
	gen := atpg.Generate(c, view, faults, atpg.Config{RandomFirst: 256, RandomSeed: 1})
	before := len(gen.Patterns)
	st, err := Result(context.Background(), c, view, faults, gen, Options{Mode: ModeFull, Seed: 1, Metrics: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if len(gen.Patterns) != st.PatternsOut || len(gen.Tests) != len(gen.Patterns) {
		t.Fatalf("result not updated in place: %d patterns, %d tests, stats %+v", len(gen.Patterns), len(gen.Tests), st)
	}
	if st.PatternsIn != before || st.PatternsOut > before {
		t.Fatalf("stats: %+v (before=%d)", st, before)
	}

	off := &atpg.GenerateResult{Patterns: randomPatterns(len(c.PIs), 8, 2)}
	stOff, err := Result(context.Background(), c, view, faults, off, Options{Metrics: telemetry.NewRegistry()})
	if err != nil || stOff.PatternsOut != 8 || stOff.Ratio != 1 || len(off.Patterns) != 8 {
		t.Fatalf("ModeOff not a no-op: %+v err=%v", stOff, err)
	}
}

// Worker count must not change the compacted set.
func TestWorkerInvariance(t *testing.T) {
	c := circuits.ArrayMultiplier(5)
	view := atpg.PrimaryView(c)
	faults := fault.Universe(c)
	pats := randomPatterns(len(c.PIs), 256, 13)
	var base [][]bool
	for _, w := range []int{1, 4} {
		kept, _, err := Patterns(context.Background(), c, view, faults, pats, Options{Mode: ModeReverse, Workers: w, Metrics: telemetry.NewRegistry()})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = kept
			continue
		}
		if !reflect.DeepEqual(base, kept) {
			t.Fatalf("workers=%d changed the compacted set", w)
		}
	}
}

// Compaction must honor the view: a full-scan compaction runs over the
// scan-view inputs and preserves scan-view coverage.
func TestScanViewCompaction(t *testing.T) {
	c := circuits.Counter(6)
	view := atpg.FullScanView(c)
	faults := fault.CollapseEquiv(c, fault.Universe(c)).Reps
	pats := randomPatterns(len(view.Inputs), 256, 19)
	fopt := fault.Options{View: fault.View{Inputs: view.Inputs, Outputs: view.Outputs}}
	want, err := fault.Simulate(context.Background(), c, faults, pats, fopt)
	if err != nil {
		t.Fatal(err)
	}
	kept, st, err := Patterns(context.Background(), c, view, faults, pats, Options{Mode: ModeReverse, Metrics: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	got, err := fault.Simulate(context.Background(), c, faults, kept, fopt)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumCaught != want.NumCaught || st.DetectedOut != want.NumCaught {
		t.Fatalf("scan view: kept catches %d, want %d (stats %+v)", got.NumCaught, want.NumCaught, st)
	}
}

func TestCancellation(t *testing.T) {
	c := circuits.ArrayMultiplier(4)
	view := atpg.PrimaryView(c)
	faults := fault.Universe(c)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := Patterns(ctx, c, view, faults, randomPatterns(len(c.PIs), 64, 1), Options{Mode: ModeReverse, Metrics: telemetry.NewRegistry()}); err == nil {
		t.Fatal("want cancellation error")
	}
}
