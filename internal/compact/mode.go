// Package compact shrinks test sets. The paper's cost model makes the
// case: tester time scales with pattern count (and test cost with the
// N³ of Eq. 1), so a test set 4× larger than necessary wastes most of
// what a fast generator buys. Three cooperating passes do the work —
// reverse-order fault simulation (keep only patterns that first-detect
// something, walking last-to-first), static compaction (merge
// compatible partially-specified cubes before X-fill), and dynamic
// compaction (grow each deterministic cube toward secondary targets
// inside the generator, driven by atpg.PodemExtend). Every pipeline
// ends with replay, so a compacted set is never larger than its input
// and always detects the same collapsed fault set.
package compact

import "fmt"

// Mode selects which compaction passes run. The zero value is Off.
type Mode int

const (
	// ModeOff disables compaction entirely.
	ModeOff Mode = iota
	// ModeReverse runs reverse-order replay only: patterns are graded
	// last-to-first with dropping and only first-detectors survive.
	ModeReverse
	// ModeStatic merges compatible test cubes before X-fill, then
	// replays. Requires cubes; raw pattern sets fall back to replay.
	ModeStatic
	// ModeDynamic extends each deterministic cube toward secondary
	// targets during generation, then replays the result.
	ModeDynamic
	// ModeFull runs everything: dynamic generation, static merging,
	// reverse replay.
	ModeFull
)

// Enabled reports whether any compaction runs.
func (m Mode) Enabled() bool { return m != ModeOff }

// Dynamic reports whether generation-time cube extension is on; the
// ATPG driver consults it via core.GenerateOptions.
func (m Mode) Dynamic() bool { return m == ModeDynamic || m == ModeFull }

// static reports whether the cube-merging pass runs.
func (m Mode) static() bool { return m == ModeStatic || m == ModeFull }

// String names the mode as accepted by the dftc -compact flag.
func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeReverse:
		return "reverse"
	case ModeStatic:
		return "static"
	case ModeDynamic:
		return "dynamic"
	case ModeFull:
		return "full"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// modeNames lists every accepted -compact spelling, for parse errors
// and did-you-mean suggestions.
var modeNames = []string{"off", "reverse", "static", "dynamic", "full"}

// ParseMode maps a dftc -compact flag value to a Mode. Unknown names
// get a did-you-mean suggestion when an accepted spelling is within
// edit distance 3, mirroring fault.ParseBackend.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "off", "":
		return ModeOff, nil
	case "reverse":
		return ModeReverse, nil
	case "static":
		return ModeStatic, nil
	case "dynamic":
		return ModeDynamic, nil
	case "full":
		return ModeFull, nil
	}
	want := "want off, reverse, static, dynamic or full"
	if sug := closestModeName(s); sug != "" {
		return ModeOff, fmt.Errorf("compact: unknown mode %q (did you mean %q? %s)", s, sug, want)
	}
	return ModeOff, fmt.Errorf("compact: unknown mode %q (%s)", s, want)
}

// closestModeName suggests a mode name within edit distance 3.
func closestModeName(s string) string {
	best, bestDist := "", 4
	for _, n := range modeNames {
		if d := modeEditDistance(s, n); d < bestDist {
			best, bestDist = n, d
		}
	}
	return best
}

// modeEditDistance is the Levenshtein distance between a and b.
func modeEditDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			d := prev[j] + 1
			if c := cur[j-1] + 1; c < d {
				d = c
			}
			if c := prev[j-1] + cost; c < d {
				d = c
			}
			cur[j] = d
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
