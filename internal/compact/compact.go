package compact

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strconv"

	"dft/internal/atpg"
	"dft/internal/fault"
	"dft/internal/logic"
	"dft/internal/sim"
	"dft/internal/telemetry"
)

// Options configures a compaction run.
type Options struct {
	// Mode selects the passes; ModeOff makes every entry point a no-op.
	Mode Mode
	// Workers is the fault-simulation sharding degree for re-grading
	// and replay, with fault.Options.Workers semantics (0 = GOMAXPROCS).
	// Results are identical for every worker count.
	Workers int
	// Rand, when non-nil, is the injected random source for post-merge
	// X-fill; when nil a private source is derived from Seed, so a
	// fixed seed reproduces the compacted set exactly either way.
	Rand *rand.Rand
	Seed int64
	// Metrics receives the run's telemetry; nil selects
	// telemetry.Default().
	Metrics *telemetry.Registry
}

func (o Options) rng() *rand.Rand {
	if o.Rand != nil {
		return o.Rand
	}
	return rand.New(rand.NewSource(o.Seed + 2))
}

// Stats reports what a compaction run did, for the dft.run-report/v1
// document and the dftc one-line summary.
type Stats struct {
	PatternsIn    int     `json:"patterns_in"`
	PatternsOut   int     `json:"patterns_out"`
	Ratio         float64 `json:"compact_ratio"` // PatternsIn / PatternsOut
	ReplayPasses  int     `json:"replay_passes"`
	MergeAttempts int     `json:"merge_attempts,omitempty"`
	MergeHits     int     `json:"merge_hits,omitempty"`
	// DetectedIn/Out count faults detected by the original and
	// compacted sets; compaction never lets Out drop below In.
	DetectedIn  int     `json:"detected_in"`
	DetectedOut int     `json:"detected_out"`
	CoverageIn  float64 `json:"coverage_in"`
	CoverageOut float64 `json:"coverage_out"`
}

func (s *Stats) finish() {
	switch {
	case s.PatternsIn == 0:
		s.Ratio = 1
	case s.PatternsOut == 0:
		s.Ratio = float64(s.PatternsIn)
	default:
		s.Ratio = float64(s.PatternsIn) / float64(s.PatternsOut)
	}
}

// Patterns compacts a raw fully-specified pattern set: reverse-order
// replay only, since without cubes there is nothing to merge. The kept
// patterns (in original relative order) detect the same collapsed
// fault set as the input.
func Patterns(ctx context.Context, c *logic.Circuit, view atpg.View, faults []fault.Fault,
	patterns [][]bool, opt Options) ([][]bool, *Stats, error) {
	pats, _, st, err := run(ctx, c, view, faults, patterns, nil, opt)
	return pats, st, err
}

// Tests compacts a set of partially-specified cubes: static merging
// (when the mode asks for it) then X-fill and replay. Returns the
// compacted fully-specified patterns, the surviving cubes (merged
// where merging happened), and the run's stats.
func Tests(ctx context.Context, c *logic.Circuit, view atpg.View, faults []fault.Fault,
	tests []atpg.Test, opt Options) ([][]bool, []atpg.Test, *Stats, error) {
	rng := opt.rng()
	opt.Rand = rng
	patterns := make([][]bool, len(tests))
	for i, t := range tests {
		patterns[i] = fillCube(t, rng)
	}
	return run(ctx, c, view, faults, patterns, tests, opt)
}

// Result compacts an ATPG run in place: res.Patterns and res.Tests are
// replaced by the compacted set. Detection bookkeeping (res.Detected,
// Coverage) is untouched — compaction never changes what is detected.
func Result(ctx context.Context, c *logic.Circuit, view atpg.View, faults []fault.Fault,
	res *atpg.GenerateResult, opt Options) (*Stats, error) {
	cubes := res.Tests
	if len(cubes) != len(res.Patterns) {
		cubes = nil // misaligned caller-built result: replay only
	}
	pats, kept, st, err := run(ctx, c, view, faults, res.Patterns, cubes, opt)
	if err != nil {
		return nil, err
	}
	res.Patterns = pats
	if kept != nil {
		res.Tests = kept
	}
	return st, nil
}

// maxReplayPasses caps the alternating reverse/forward replay loop. A
// second pass in the same direction is a fixpoint, so the loop flips
// direction each pass and stops as soon as a pass fails to shrink.
const maxReplayPasses = 4

// run is the shared pipeline: optional static merge (cubes present and
// the mode asks), then alternating-direction replay until no shrink.
// cubes, when non-nil, must be index-aligned with patterns; the
// returned cube slice stays aligned with the returned patterns.
func run(ctx context.Context, c *logic.Circuit, view atpg.View, faults []fault.Fault,
	patterns [][]bool, cubes []atpg.Test, opt Options) ([][]bool, []atpg.Test, *Stats, error) {
	st := &Stats{PatternsIn: len(patterns), PatternsOut: len(patterns)}
	if !opt.Mode.Enabled() || len(patterns) == 0 || len(faults) == 0 {
		st.finish()
		return patterns, cubes, st, nil
	}
	reg := telemetry.OrDefault(opt.Metrics)
	ctx, span := telemetry.StartSpanCtx(ctx, reg, "compact.run")
	defer span.End()
	span.SetAttr("mode", opt.Mode.String())
	span.SetAttr("patterns", strconv.Itoa(len(patterns)))

	fview := fault.View{Inputs: view.Inputs, Outputs: view.Outputs}
	fopt := fault.Options{Workers: opt.Workers, View: fview, Metrics: reg}

	// Baseline grading: the contract is stated against what the input
	// set actually detects, so static repair has exact targets.
	origPatterns, origCubes := patterns, cubes
	var d0 *fault.Result
	if opt.Mode.static() && len(cubes) == len(patterns) {
		var err error
		d0, err = fault.Simulate(ctx, c, faults, patterns, fopt)
		if err != nil {
			return nil, nil, nil, err
		}
		st.DetectedIn = d0.NumCaught
		patterns, cubes, err = mergeCubes(ctx, c, faults, patterns, cubes, d0, st, fopt, opt)
		if err != nil {
			return nil, nil, nil, err
		}
	}

	// Alternating-direction replay until a pass stops shrinking.
	eng := fault.NewEngine(c, fopt)
	session := eng.NewSession(faults)
	prog := reg.Progress("compact.patterns.progress")
	replayLoop := func(patterns [][]bool, cubes []atpg.Test) ([][]bool, []atpg.Test, []bool, error) {
		order := fault.ReplayReverse
		var lastDetected []bool
		for pass := 0; pass < maxReplayPasses; pass++ {
			prog.AddTotal(int64(len(patterns)))
			session.Reset()
			detected := make([]bool, len(faults))
			credits, err := session.Replay(ctx, fault.PackPatternSet(len(view.Inputs), patterns), order, detected)
			if err != nil {
				return nil, nil, nil, err
			}
			prog.Add(int64(len(patterns)))
			st.ReplayPasses++
			lastDetected = detected
			kept := patterns[:0:0]
			var keptCubes []atpg.Test
			for p, n := range credits {
				if n > 0 {
					kept = append(kept, patterns[p])
					if cubes != nil {
						keptCubes = append(keptCubes, cubes[p])
					}
				}
			}
			shrunk := len(kept) < len(patterns)
			patterns = kept
			if cubes != nil {
				cubes = keptCubes
			}
			if !shrunk {
				break
			}
			if order == fault.ReplayReverse {
				order = fault.ReplayForward
			} else {
				order = fault.ReplayReverse
			}
		}
		return patterns, cubes, lastDetected, nil
	}
	patterns, cubes, lastDetected, err := replayLoop(patterns, cubes)
	if err != nil {
		return nil, nil, nil, err
	}

	detectedCount := func(detected []bool) int {
		n := 0
		for _, d := range detected {
			if d {
				n++
			}
		}
		return n
	}
	// The merged-and-repaired set can end up no smaller than the input
	// (dense cubes merge poorly and repair re-appends patterns) without
	// buying any coverage. Compaction must never return a worse set than
	// it was given, so fall back to plain replay of the original input.
	if d0 != nil && len(patterns) >= len(origPatterns) && detectedCount(lastDetected) == d0.NumCaught {
		patterns, cubes, lastDetected, err = replayLoop(origPatterns, origCubes)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	st.DetectedOut = detectedCount(lastDetected)
	if d0 != nil {
		// The repair pass re-appended a detector for every lost fault, so
		// a gap here is a bug in the engine or the theorem — fail loudly.
		for fi, d := range d0.Detected {
			if d && !lastDetected[fi] {
				return nil, nil, nil, fmt.Errorf("compact: fault %s lost during compaction", faults[fi].Name(c))
			}
		}
	} else {
		st.DetectedIn = st.DetectedOut
	}
	st.PatternsOut = len(patterns)
	st.CoverageIn = float64(st.DetectedIn) / float64(len(faults))
	st.CoverageOut = float64(st.DetectedOut) / float64(len(faults))
	st.finish()
	if d := st.PatternsIn - st.PatternsOut; d > 0 {
		reg.Counter("compact.patterns.dropped").Add(int64(d))
	}
	span.SetAttr("kept", strconv.Itoa(st.PatternsOut))
	span.SetAttr("passes", strconv.Itoa(st.ReplayPasses))
	return patterns, cubes, st, nil
}

// mergeCubes is the static pass: greedy first-fit merging of
// compatible cubes in essential-first (descending care-count) order,
// X-fill of the merged cubes through the injected source, then a
// repair step that re-appends an original detector for every fault the
// refilled set lost — so the set entering replay detects at least what
// the input did.
func mergeCubes(ctx context.Context, c *logic.Circuit, faults []fault.Fault, patterns [][]bool, cubes []atpg.Test,
	d0 *fault.Result, st *Stats, fopt fault.Options, opt Options) ([][]bool, []atpg.Test, error) {
	reg := telemetry.OrDefault(opt.Metrics)
	packed := make([]sim.PackedCube, len(cubes))
	for i, t := range cubes {
		packed[i] = sim.PackCube(t.Values)
	}
	order := make([]int, len(cubes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return packed[order[a]].CareCount() > packed[order[b]].CareCount()
	})
	var groups []sim.PackedCube
	attempts, hits := 0, 0
	for _, i := range order {
		placed := false
		for g := range groups {
			attempts++
			if groups[g].Compatible(packed[i]) {
				groups[g].Merge(packed[i])
				hits++
				placed = true
				break
			}
		}
		if !placed {
			// Copy: Merge mutates in place and packed[i] backs the input cube.
			nw := len(packed[i].Care)
			g := sim.PackedCube{Care: make([]uint64, nw), Val: make([]uint64, nw)}
			g.Merge(packed[i])
			groups = append(groups, g)
		}
	}
	st.MergeAttempts, st.MergeHits = attempts, hits
	reg.Counter("compact.merge.attempts").Add(int64(attempts))
	reg.Counter("compact.merge.hits").Add(int64(hits))

	width := len(cubes[0].Values)
	rng := opt.rng()
	mergedCubes := make([]atpg.Test, len(groups))
	mergedPats := make([][]bool, len(groups))
	for g := range groups {
		mergedCubes[g] = atpg.Test{Values: groups[g].Unpack(width)}
		mergedPats[g] = fillCube(mergedCubes[g], rng)
	}

	// Repair: the refill can lose chance detections the original fill
	// had, so re-append the original first detector of every lost fault.
	after, err := fault.Simulate(ctx, c, faults, mergedPats, fopt)
	if err != nil {
		return nil, nil, err
	}
	readded := make(map[int]bool)
	for fi, was := range d0.Detected {
		if !was || after.Detected[fi] {
			continue
		}
		p := d0.DetectedBy[fi]
		if readded[p] {
			continue
		}
		readded[p] = true
		mergedPats = append(mergedPats, patterns[p])
		mergedCubes = append(mergedCubes, cubes[p])
	}
	return mergedPats, mergedCubes, nil
}

// fillCube specifies a cube's X positions from the injected source.
func fillCube(t atpg.Test, rng *rand.Rand) []bool {
	full := make([]bool, len(t.Values))
	for i, v := range t.Values {
		switch v {
		case logic.One:
			full[i] = true
		case logic.Zero:
			full[i] = false
		default:
			full[i] = rng.Intn(2) == 1
		}
	}
	return full
}
