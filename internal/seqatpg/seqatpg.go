// Package seqatpg implements bounded time-frame-expansion test
// generation for sequential circuits *without* scan — the hard problem
// whose cost motivates every structured technique in the paper. The
// circuit is unrolled k frames from the reset state; the target fault
// appears once per frame (one physical defect, k sites), and a
// multi-site PODEM searches for a per-frame input sequence whose final
// frame exposes the fault at a primary output.
package seqatpg

import (
	"fmt"

	"dft/internal/atpg"
	"dft/internal/fault"
	"dft/internal/logic"
)

// Unrolled is a time-frame expansion of a sequential circuit.
type Unrolled struct {
	C      *logic.Circuit
	Frames int
	Orig   *logic.Circuit

	gateAt [][]int // gateAt[frame][origGate] = unrolled net (or -1)
	piAt   [][]int // piAt[frame][i] = unrolled PI net
}

// Unroll expands the circuit over the given number of frames, with
// the flip-flops reset to 0 before frame 0. Every original DFF becomes
// a per-frame buffer (QBUF) carrying the previous frame's next-state
// value, so faults on storage elements keep a distinct site per frame.
func Unroll(c *logic.Circuit, frames int) *Unrolled {
	if frames < 1 {
		panic("seqatpg: need at least one frame")
	}
	u := &Unrolled{Frames: frames, Orig: c}
	nc := logic.New(fmt.Sprintf("%s_x%d", c.Name, frames))
	u.gateAt = make([][]int, frames)
	u.piAt = make([][]int, frames)
	zero := -1 // lazy Const0 for the reset state
	for t := 0; t < frames; t++ {
		u.gateAt[t] = make([]int, c.NumNets())
		for i := range u.gateAt[t] {
			u.gateAt[t][i] = -1
		}
		u.piAt[t] = make([]int, len(c.PIs))
		// Sources first: PIs fresh per frame, DFFs buffer the previous
		// frame's D value (or the reset constant).
		for i, pi := range c.PIs {
			id := nc.AddInput(fmt.Sprintf("%s@%d", c.NameOf(pi), t))
			u.gateAt[t][pi] = id
			u.piAt[t][i] = id
		}
		for _, d := range c.DFFs {
			var src int
			if t == 0 {
				if zero < 0 {
					zero = nc.AddGate(logic.Const0, "RESET0")
				}
				src = zero
			} else {
				src = u.gateAt[t-1][c.Gates[d].Fanin[0]]
			}
			u.gateAt[t][d] = nc.AddGate(logic.Buf, fmt.Sprintf("%s@%d", c.NameOf(d), t), src)
		}
		// Combinational gates in topological order.
		for _, id := range c.Order {
			g := &c.Gates[id]
			fan := make([]int, len(g.Fanin))
			for i, f := range g.Fanin {
				fan[i] = u.gateAt[t][f]
			}
			u.gateAt[t][id] = nc.AddGate(g.Type, fmt.Sprintf("%s@%d", c.NameOf(id), t), fan...)
		}
		for _, po := range c.POs {
			nc.MarkOutput(u.gateAt[t][po])
		}
	}
	nc.MustFinalize()
	u.C = nc
	return u
}

// GateAt maps an original element to its net in the given frame.
func (u *Unrolled) GateAt(orig, frame int) int { return u.gateAt[frame][orig] }

// FaultInstances maps an original single stuck-at fault to its one-
// per-frame multi-site image in the unrolled circuit. DFF pin faults
// map onto the per-frame QBUF; DFF output (stem) faults additionally
// corrupt the reset value in frame 0 (the buffer output is the state).
func (u *Unrolled) FaultInstances(f fault.Fault) atpg.MultiFault {
	var out atpg.MultiFault
	for t := 0; t < u.Frames; t++ {
		g := u.gateAt[t][f.Gate]
		switch {
		case u.Orig.Gates[f.Gate].Type == logic.DFF:
			// A D-input fault corrupts captured values only, so the
			// frame-0 (reset) state stays clean; an output fault pins
			// the state in every frame including reset.
			if f.Pin != fault.Stem && t == 0 {
				continue
			}
			out = append(out, fault.Fault{Gate: g, Pin: fault.Stem, SA: f.SA})
		case f.Pin == fault.Stem:
			out = append(out, fault.Fault{Gate: g, Pin: fault.Stem, SA: f.SA})
		default:
			out = append(out, fault.Fault{Gate: g, Pin: f.Pin, SA: f.SA})
		}
	}
	return out
}

// Result is a generated sequential test.
type Result struct {
	Sequence [][]bool // one input pattern per frame, in application order
	Frames   int
}

// Config bounds the search.
type Config struct {
	MaxFrames     int // try expansions of 1..MaxFrames (default 8)
	MaxBacktracks int
}

// ErrNoSequence is returned when no test exists within the frame bound.
var ErrNoSequence = fmt.Errorf("seqatpg: no test within the frame bound")

// Generate searches for an input sequence detecting the fault on the
// unscanned sequential circuit, trying successively deeper unrollings.
// The returned sequence is verified with the sequential fault
// simulator before being returned.
func Generate(c *logic.Circuit, f fault.Fault, cfg Config) (Result, error) {
	maxFrames := cfg.MaxFrames
	if maxFrames <= 0 {
		maxFrames = 8
	}
	for k := 1; k <= maxFrames; k++ {
		u := Unroll(c, k)
		view := atpg.PrimaryView(u.C)
		fs := u.FaultInstances(f)
		cube, err := atpg.PodemMulti(u.C, view, fs, atpg.PodemConfig{MaxBacktracks: cfg.MaxBacktracks})
		if err != nil {
			continue // deeper unrolling may succeed
		}
		seq := u.extract(cube)
		// Verify against the golden sequential fault simulator.
		res := fault.SimulateSequence(c, []fault.Fault{f}, seq)
		if res.Detected[0] {
			return Result{Sequence: seq, Frames: k}, nil
		}
	}
	return Result{}, ErrNoSequence
}

// extract splits a flat cube over the per-frame PIs, filling X with 0.
func (u *Unrolled) extract(cube atpg.Test) [][]bool {
	// The unrolled PIs were declared frame by frame in PI order, and
	// PrimaryView preserves declaration order.
	npi := len(u.Orig.PIs)
	seq := make([][]bool, u.Frames)
	for t := 0; t < u.Frames; t++ {
		p := make([]bool, npi)
		for i := 0; i < npi; i++ {
			p[i] = cube.Values[t*npi+i] == logic.One
		}
		seq[t] = p
	}
	return seq
}

// CoverageWithinFrames runs Generate over a fault list and reports how
// many faults admit a bounded-depth sequential test, plus the depth
// histogram — the quantitative face of "sequential complexity".
func CoverageWithinFrames(c *logic.Circuit, faults []fault.Fault, cfg Config) (detected int, depths map[int]int) {
	depths = map[int]int{}
	for _, f := range faults {
		r, err := Generate(c, f, cfg)
		if err != nil {
			continue
		}
		detected++
		depths[r.Frames]++
	}
	return detected, depths
}
