package seqatpg

import (
	"testing"

	"dft/internal/atpg"
	"dft/internal/circuits"
	"dft/internal/fault"
	"dft/internal/logic"
	"dft/internal/sim"
)

func TestUnrollStructure(t *testing.T) {
	c := circuits.Counter(3)
	u := Unroll(c, 4)
	if u.C.NumDFFs() != 0 {
		t.Fatal("unrolled circuit must be combinational")
	}
	if len(u.C.PIs) != 4*len(c.PIs) {
		t.Fatalf("unrolled PIs %d, want %d", len(u.C.PIs), 4*len(c.PIs))
	}
	if len(u.C.POs) != 4*len(c.POs) {
		t.Fatalf("unrolled POs %d", len(u.C.POs))
	}
}

// TestUnrollMatchesSequentialSim: simulating the unrolled circuit with
// a flat input vector must reproduce the cycle-by-cycle machine.
func TestUnrollMatchesSequentialSim(t *testing.T) {
	c := circuits.Counter(4)
	frames := 6
	u := Unroll(c, frames)
	seq := [][]bool{{true}, {true}, {false}, {true}, {true}, {true}}
	flat := make([]bool, 0, frames)
	for _, p := range seq {
		flat = append(flat, p...)
	}
	vals := sim.Eval(u.C, flat, nil)
	m := sim.NewMachine(c)
	for tme, p := range seq {
		out := m.Apply(p)
		for i, po := range c.POs {
			got := vals[u.GateAt(po, tme)]
			if got != out[i] {
				t.Fatalf("frame %d output %d: unrolled %v vs machine %v", tme, i, got, out[i])
			}
		}
		m.Clock()
	}
}

func TestGenerateFindsDeepTest(t *testing.T) {
	// A fault on the top counter bit's toggle logic needs the counter
	// driven for several cycles: depth > 1 by construction.
	c := circuits.Counter(3)
	t2, _ := c.NetByName("T2")
	f := fault.Fault{Gate: t2, Pin: fault.Stem, SA: logic.Zero}
	r, err := Generate(c, f, Config{MaxFrames: 8})
	if err != nil {
		t.Fatalf("no sequence found: %v", err)
	}
	if r.Frames < 2 {
		t.Fatalf("depth %d; the top bit cannot be exposed in one frame", r.Frames)
	}
	// Double-check with the golden simulator (Generate verifies, but
	// assert anyway).
	res := fault.SimulateSequence(c, []fault.Fault{f}, r.Sequence)
	if !res.Detected[0] {
		t.Fatal("sequence does not detect")
	}
}

func TestGenerateShiftRegisterLatency(t *testing.T) {
	// A stuck fault at the head of an n-stage shift register needs at
	// least n frames (n-1 shifts to the output plus the exposing frame).
	n := 4
	c := circuits.ShiftRegister(n)
	r0, _ := c.NetByName("R0")
	f := fault.Fault{Gate: r0, Pin: fault.Stem, SA: logic.One}
	r, err := Generate(c, f, Config{MaxFrames: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r.Frames < n {
		t.Fatalf("depth %d, want >= %d", r.Frames, n)
	}
}

func TestFrameBoundFailsDeepFault(t *testing.T) {
	// The 6-bit counter's top toggle needs ~2^5 cycles; a 4-frame bound
	// must fail — the "sequential complexity" wall.
	c := circuits.Counter(6)
	t5, _ := c.NetByName("T5")
	f := fault.Fault{Gate: t5, Pin: fault.Stem, SA: logic.Zero}
	if _, err := Generate(c, f, Config{MaxFrames: 4}); err == nil {
		t.Fatal("4 frames cannot expose the top counter bit")
	}
}

func TestCoverageWithinFrames(t *testing.T) {
	c := circuits.Counter(4)
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	det, depths := CoverageWithinFrames(c, cl.Reps, Config{MaxFrames: 10, MaxBacktracks: 2000})
	if det == 0 {
		t.Fatal("nothing detected")
	}
	// Depth histogram must contain multi-frame tests.
	multi := 0
	for d, n := range depths {
		if d > 1 {
			multi += n
		}
	}
	if multi == 0 {
		t.Fatal("expected multi-frame tests for a counter")
	}
	// And a meaningful fraction of faults within 10 frames.
	if frac := float64(det) / float64(len(cl.Reps)); frac < 0.5 {
		t.Fatalf("bounded sequential ATPG covered only %.2f", frac)
	}
}

func TestPodemMultiSingleSiteAgreesWithPodem(t *testing.T) {
	c := circuits.C17()
	view := atpg.PrimaryView(c)
	u := fault.Universe(c)
	for _, f := range u {
		single, err1 := atpg.Podem(c, view, f, atpg.PodemConfig{})
		multi, err2 := atpg.PodemMulti(c, view, atpg.MultiFault{f}, atpg.PodemConfig{})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("fault %s: podem err=%v, multi err=%v", f.Name(c), err1, err2)
		}
		if err1 == nil {
			if !atpg.Verify(c, view, f, single) || !atpg.VerifyMulti(c, view, atpg.MultiFault{f}, multi) {
				t.Fatalf("fault %s: verification failed", f.Name(c))
			}
		}
	}
}

func TestDFFInputFaultFrameZeroClean(t *testing.T) {
	c := circuits.ShiftRegister(2)
	r0, _ := c.NetByName("R0")
	u := Unroll(c, 3)
	stem := u.FaultInstances(fault.Fault{Gate: r0, Pin: fault.Stem, SA: logic.One})
	dpin := u.FaultInstances(fault.Fault{Gate: r0, Pin: 0, SA: logic.One})
	if len(stem) != 3 {
		t.Fatalf("stem instances %d, want 3", len(stem))
	}
	if len(dpin) != 2 {
		t.Fatalf("D-pin instances %d, want 2 (reset frame clean)", len(dpin))
	}
}
