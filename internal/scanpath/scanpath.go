// Package scanpath implements NEC's Scan Path approach: the raceless
// D-type flip-flop with scan (Fig. 13), card-level scan configuration
// with X/Y selection (Fig. 14), the race analysis that distinguishes
// the single-clock design from LSSD's level-sensitive discipline, and
// the backtrace partitioning used on the FLT-700-class systems.
package scanpath

import (
	"fmt"

	"dft/internal/logic"
)

// RacelessDFF is the two-latch flip-flop of Fig. 13. Clock1 is the
// sole system clock: while low, Latch1 samples System Data In; on its
// return to high, Latch2 samples Latch1. Clock2 plays the same role
// for the Test (scan) input. Holding the idle clock at 1 blocks the
// other port.
type RacelessDFF struct {
	L1, L2 bool
}

// SystemClockPulse models a full 1→0→1 pulse on Clock1 with system
// data d: L1 loads d during the low phase, L2 loads L1 on the rising
// edge.
func (f *RacelessDFF) SystemClockPulse(d bool) {
	f.L1 = d
	f.L2 = f.L1
}

// ScanClockPulse models a full 1→0→1 pulse on Clock2 with test input
// ti.
func (f *RacelessDFF) ScanClockPulse(ti bool) {
	f.L1 = ti
	f.L2 = f.L1
}

// Output returns the flip-flop output (Latch2).
func (f *RacelessDFF) Output() bool { return f.L2 }

// RaceMargin quantifies the exposure the paper describes: "the period
// of time that this can occur is related to the delay of the inverter
// block for Clock 1". The design is race-free while the feedback path
// delay (output back to System Data In) exceeds the overlap window in
// which both latches are transparent — the inverter delay. It returns
// the slack (positive = safe).
func RaceMargin(feedbackDelay, inverterDelay float64) float64 {
	return feedbackDelay - inverterDelay
}

// Raceless reports whether the configuration is safe.
func Raceless(feedbackDelay, inverterDelay float64) bool {
	return RaceMargin(feedbackDelay, inverterDelay) > 0
}

// Chip is one module on a card with its own scan path of raceless
// flip-flops.
type Chip struct {
	Name string
	FFs  []*RacelessDFF
}

// NewChip builds a chip with n scan flip-flops.
func NewChip(name string, n int) *Chip {
	ffs := make([]*RacelessDFF, n)
	for i := range ffs {
		ffs[i] = new(RacelessDFF)
	}
	return &Chip{Name: name, FFs: ffs}
}

// shift advances the chip's scan path one position (a Clock2 pulse on
// every flip-flop), returning the new scan output.
func (ch *Chip) shift(scanIn bool) bool {
	// All L1s sample their scan inputs (the previous stage's L2) before
	// any L2 updates — the raceless two-latch ordering.
	prev := scanIn
	for _, f := range ch.FFs {
		next := f.L2
		f.L1 = prev
		prev = next
	}
	for _, f := range ch.FFs {
		f.L2 = f.L1
	}
	return ch.FFs[len(ch.FFs)-1].L2
}

// State returns the flip-flop outputs.
func (ch *Chip) State() []bool {
	out := make([]bool, len(ch.FFs))
	for i, f := range ch.FFs {
		out[i] = f.Output()
	}
	return out
}

// Card is the Fig. 14 configuration: chips share one scan path per
// card, and X/Y select lines gate Clock2 and the card's test output so
// many cards can dot onto a single subsystem test output.
type Card struct {
	Name  string
	X, Y  bool
	Chips []*Chip
}

// NewCard builds a card from chips threaded in order.
func NewCard(name string, chips ...*Chip) *Card {
	return &Card{Name: name, Chips: chips}
}

// Selected reports whether the card's X·Y select is active.
func (c *Card) Selected() bool { return c.X && c.Y }

// Shift clocks the card's scan path if selected. The returned output
// is the card's gated test output: the scan-out when selected, the
// noncontrolling 0 otherwise ("the blocking function will put their
// output to noncontrolling values").
func (c *Card) Shift(scanIn bool) bool {
	if !c.Selected() {
		return false
	}
	prev := scanIn
	var out bool
	for _, ch := range c.Chips {
		out = ch.shift(prev)
		prev = out
	}
	return out
}

// TestOutput returns the card's gated scan output without clocking.
func (c *Card) TestOutput() bool {
	if !c.Selected() {
		return false
	}
	last := c.Chips[len(c.Chips)-1]
	return last.FFs[len(last.FFs)-1].L2
}

// Subsystem is a set of cards whose test outputs dot together.
type Subsystem struct {
	Cards []*Card
}

// Select activates exactly one card.
func (s *Subsystem) Select(name string) error {
	found := false
	for _, c := range s.Cards {
		sel := c.Name == name
		c.X, c.Y = sel, sel
		found = found || sel
	}
	if !found {
		return fmt.Errorf("scanpath: no card named %q", name)
	}
	return nil
}

// SharedOutput ORs the gated card outputs — the dotted subsystem test
// output.
func (s *Subsystem) SharedOutput() bool {
	out := false
	for _, c := range s.Cards {
		out = out || c.TestOutput()
	}
	return out
}

// Shift clocks the selected card's path and returns the shared output.
func (s *Subsystem) Shift(scanIn bool) bool {
	out := false
	for _, c := range s.Cards {
		o := c.Shift(scanIn)
		out = out || o
	}
	return out
}

// Partition is one combinational cone found by backtracing from a
// storage element or primary output back to storage elements and
// primary inputs — the automatic partitioning NEC pairs with Scan
// Path so "the test generator can do test generation for the small
// subnetworks".
type Partition struct {
	Root   int   // the DFF (via its D input) or PO net the cone feeds
	Gates  []int // combinational gates in the cone
	Inputs []int // PIs and DFF outputs bounding the cone
}

// Size returns the number of gates in the partition.
func (p Partition) Size() int { return len(p.Gates) }

// Backtrace computes the partition for every flip-flop D input and
// primary output of a finalized circuit.
func Backtrace(c *logic.Circuit) []Partition {
	var roots []int
	for _, d := range c.DFFs {
		roots = append(roots, c.Gates[d].Fanin[0])
	}
	roots = append(roots, c.POs...)
	parts := make([]Partition, 0, len(roots))
	for _, r := range roots {
		parts = append(parts, backtraceFrom(c, r))
	}
	return parts
}

func backtraceFrom(c *logic.Circuit, root int) Partition {
	p := Partition{Root: root}
	seen := map[int]bool{}
	var walk func(n int)
	walk = func(n int) {
		if seen[n] {
			return
		}
		seen[n] = true
		g := c.Gates[n]
		if !g.Type.IsCombinational() {
			p.Inputs = append(p.Inputs, n)
			return
		}
		p.Gates = append(p.Gates, n)
		for _, f := range g.Fanin {
			walk(f)
		}
	}
	walk(root)
	return p
}

// LargestPartition returns the maximum cone size — the quantity the
// NEC control flip-flops exist to cap.
func LargestPartition(parts []Partition) int {
	max := 0
	for _, p := range parts {
		if p.Size() > max {
			max = p.Size()
		}
	}
	return max
}

// InsertBlockingFF inserts an extra scan flip-flop on the given net
// purely to cut partitions — "the introduction of extra flip-flops
// totally independent of function, in order to control the
// partitioning algorithm". The transformation pipelines the net (one
// cycle of extra latency), exactly as the hardware change would.
func InsertBlockingFF(c *logic.Circuit, net int) *logic.Circuit {
	nc := c.Clone()
	ff := nc.AddDFF(fmt.Sprintf("BLK_%s", c.NameOf(net)), net)
	for id := range nc.Gates {
		if id == ff {
			continue
		}
		for i, src := range nc.Gates[id].Fanin {
			if src == net && id != ff {
				nc.Gates[id].Fanin[i] = ff
			}
		}
	}
	for i, po := range nc.POs {
		if po == net {
			nc.POs[i] = ff
		}
	}
	nc.MustFinalize()
	return nc
}

// CapPartitions repeatedly inserts blocking flip-flops on the highest-
// fanout net inside the largest oversized partition until every
// partition has at most maxGates gates (or no further cut is possible).
func CapPartitions(c *logic.Circuit, maxGates int) (*logic.Circuit, int) {
	cur := c
	added := 0
	for iter := 0; iter < 64; iter++ {
		parts := Backtrace(cur)
		var worst *Partition
		for i := range parts {
			if parts[i].Size() > maxGates && (worst == nil || parts[i].Size() > worst.Size()) {
				worst = &parts[i]
			}
		}
		if worst == nil {
			return cur, added
		}
		// Cut at the gate nearest the middle of the cone by level.
		best, bestScore := -1, -1
		for _, g := range worst.Gates {
			if g == worst.Root {
				continue
			}
			depth := cur.Level[g]
			score := depth * len(cur.Fanout[g])
			if score > bestScore {
				best, bestScore = g, score
			}
		}
		if best < 0 {
			return cur, added
		}
		cur = InsertBlockingFF(cur, best)
		added++
	}
	return cur, added
}
