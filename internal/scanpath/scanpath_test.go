package scanpath

import (
	"testing"

	"dft/internal/circuits"
	"dft/internal/sim"
)

func TestRacelessDFFPorts(t *testing.T) {
	var f RacelessDFF
	f.SystemClockPulse(true)
	if !f.Output() {
		t.Fatal("system data did not reach output")
	}
	f.ScanClockPulse(false)
	if f.Output() {
		t.Fatal("scan data did not reach output")
	}
}

func TestRaceMargin(t *testing.T) {
	if !Raceless(2.0, 1.0) {
		t.Error("feedback slower than inverter window must be safe")
	}
	if Raceless(0.5, 1.0) {
		t.Error("fast feedback inside the overlap window must be flagged")
	}
	if RaceMargin(3, 1) != 2 {
		t.Error("margin arithmetic")
	}
}

func TestChipShiftOrder(t *testing.T) {
	ch := NewChip("u1", 3)
	// Shift in 1,0,1: first bit ends deepest.
	ch.shift(true)
	ch.shift(false)
	ch.shift(true)
	st := ch.State()
	want := []bool{true, false, true}
	for i := range want {
		if st[i] != want[i] {
			t.Fatalf("state %v, want %v", st, want)
		}
	}
}

func TestCardSelection(t *testing.T) {
	a := NewCard("A", NewChip("a1", 2))
	b := NewCard("B", NewChip("b1", 2))
	sub := &Subsystem{Cards: []*Card{a, b}}
	if err := sub.Select("A"); err != nil {
		t.Fatal(err)
	}
	// Shifting affects only card A.
	sub.Shift(true)
	sub.Shift(true)
	if st := a.Chips[0].State(); !st[0] || !st[1] {
		t.Fatalf("selected card did not shift: %v", st)
	}
	if st := b.Chips[0].State(); st[0] || st[1] {
		t.Fatalf("deselected card shifted: %v", st)
	}
	// Shared output reads the selected card; deselected outputs are
	// blocked to the noncontrolling value.
	if !sub.SharedOutput() {
		t.Fatal("shared output should read card A's 1")
	}
	if err := sub.Select("B"); err != nil {
		t.Fatal(err)
	}
	if sub.SharedOutput() {
		t.Fatal("card B holds zeros; shared output must be 0")
	}
	if err := sub.Select("nope"); err == nil {
		t.Fatal("selecting a missing card must error")
	}
}

func TestBacktracePartitions(t *testing.T) {
	c := circuits.Counter(4)
	parts := Backtrace(c)
	// One partition per DFF plus one per PO (POs here are the DFF
	// outputs themselves, giving empty cones bounded by the DFF).
	if len(parts) != 8 {
		t.Fatalf("got %d partitions, want 8", len(parts))
	}
	for _, p := range parts {
		for _, in := range p.Inputs {
			if c.Gates[in].Type.IsCombinational() {
				t.Fatalf("partition input %s is combinational", c.NameOf(in))
			}
		}
	}
	if LargestPartition(parts) == 0 {
		t.Fatal("expected a nonempty cone")
	}
}

func TestBacktracePartitionGateCounts(t *testing.T) {
	// In the counter, the cone of DFF i contains the XOR plus the AND
	// chain below it: sizes grow with bit index.
	c := circuits.Counter(5)
	parts := Backtrace(c)
	sizes := map[int]int{}
	for _, p := range parts {
		sizes[p.Size()]++
	}
	if LargestPartition(parts) < 4 {
		t.Fatalf("largest cone %d unexpectedly small", LargestPartition(parts))
	}
}

func TestInsertBlockingFFCutsCone(t *testing.T) {
	c := circuits.RippleAdder(8)
	// The adder is combinational: partitions root at POs only.
	before := LargestPartition(Backtrace(c))
	// Cut at the middle carry net.
	mid, ok := c.NetByName("C4")
	if !ok {
		t.Fatal("C4 missing")
	}
	cut := InsertBlockingFF(c, mid)
	after := LargestPartition(Backtrace(cut))
	if after >= before {
		t.Fatalf("blocking FF did not shrink largest cone: %d -> %d", before, after)
	}
	if cut.NumDFFs() != 1 {
		t.Fatalf("dffs = %d", cut.NumDFFs())
	}
}

func TestCapPartitions(t *testing.T) {
	c := circuits.RippleAdder(16)
	before := LargestPartition(Backtrace(c))
	capped, added := CapPartitions(c, before/3)
	after := LargestPartition(Backtrace(capped))
	if added == 0 {
		t.Fatal("no flip-flops inserted")
	}
	if after >= before {
		t.Fatalf("capping failed: %d -> %d with %d FFs", before, after, added)
	}
}

func TestInsertBlockingFFPipelinesNet(t *testing.T) {
	// The inserted FF delays the cut net by one cycle: the modified
	// adder computes the same sum once the pipeline fills and inputs
	// are held stable.
	c := circuits.RippleAdder(4)
	mid, _ := c.NetByName("C2")
	cut := InsertBlockingFF(c, mid)
	m := sim.NewMachine(cut)
	in := []bool{true, true, false, true, true, false, true, false, false} // A=1011? packed A,B,CIN
	m.Step(in)
	out := m.Apply(in)
	// Reference from the original combinational adder.
	ref := sim.Eval(c, in, nil)
	for i, po := range c.POs {
		if out[i] != ref[po] {
			t.Fatalf("pipelined adder output %d differs after fill", i)
		}
	}
}
