package autonomous

import (
	"context"
	"testing"

	"dft/internal/circuits"
	"dft/internal/fault"
	"dft/internal/logic"
	"dft/internal/sim"
)

func TestModuleNormalMode(t *testing.T) {
	m := NewModule(3)
	m.Clock(true, false, []bool{true, false, true})
	if m.QWord() != 0b101 {
		t.Fatalf("normal load gave %03b", m.QWord())
	}
}

func TestModuleGeneratorMaximal(t *testing.T) {
	m := NewModule(3)
	m.SetQ([]bool{true, false, false})
	seen := map[uint64]bool{}
	for _, w := range m.Generate(7) {
		if w == 0 || seen[w] {
			t.Fatalf("generator not maximal: state %03b repeated/zero", w)
		}
		seen[w] = true
	}
	if len(seen) != 7 {
		t.Fatalf("visited %d states, want 7", len(seen))
	}
}

func TestModuleSignatureMode(t *testing.T) {
	m := NewModule(3)
	words := [][]bool{
		{true, false, true},
		{false, true, true},
		{true, true, false},
	}
	sig := m.Compress(words)
	// Corrupting any bit changes the signature.
	for i := range words {
		for j := range words[i] {
			m2 := NewModule(3)
			words[i][j] = !words[i][j]
			if m2.Compress(words) == sig {
				t.Fatalf("flip at word %d bit %d aliased", i, j)
			}
			words[i][j] = !words[i][j]
		}
	}
}

func TestMuxPartitionTransparent(t *testing.T) {
	c := circuits.RippleAdder(4)
	cut := []int{}
	c2, _ := c.NetByName("C2")
	cut = append(cut, c2)
	mp := PartitionWithMux(c, cut)
	// TMODE=0, TESTIN=0: same function.
	for x := 0; x < 1<<9; x++ {
		in := make([]bool, 9)
		for i := range in {
			in[i] = x>>uint(i)&1 == 1
		}
		inMod := append(append([]bool{}, in...), false, false) // TMODE, TESTIN
		want := sim.Eval(c, in, nil)
		got := sim.Eval(mp.C, inMod, nil)
		for i, po := range c.POs {
			if got[mp.C.POs[i]] != want[po] {
				t.Fatalf("pattern %09b: output %d differs in normal mode", x, i)
			}
		}
	}
}

func TestMuxPartitionTestMode(t *testing.T) {
	c := circuits.RippleAdder(4)
	c2, _ := c.NetByName("C2")
	mp := PartitionWithMux(c, []int{c2})
	// TMODE=1: downstream reads TESTIN, upstream observable on TPOUT.
	in := make([]bool, 11)
	in[9] = true  // TMODE
	in[10] = true // TESTIN
	vals := sim.Eval(mp.C, in, nil)
	muxed, _ := mp.C.NetByName("TMX_C2")
	if !vals[muxed] {
		t.Fatal("test input did not drive the cut net")
	}
	if vals[mp.CutObs[0]] != vals[c2] {
		t.Fatal("cut observation point does not track the upstream value")
	}
}

// TestRunAutonomousTestCoversBothPartitions executes the partitioned
// exhaustive test and measures real fault coverage — not just the
// pattern-count arithmetic.
func TestRunAutonomousTestCoversBothPartitions(t *testing.T) {
	c := circuits.RippleAdder(8)
	c4, _ := c.NetByName("C4")
	mp := PartitionWithMux(c, []int{c4})
	cov, pats := mp.RunAutonomousTest(c)
	if pats >= 1<<17/32 {
		t.Fatalf("%d patterns is not a meaningful reduction from 2^17", pats)
	}
	if cov < 0.95 {
		t.Fatalf("partitioned exhaustive coverage %.3f with %d patterns", cov, pats)
	}
}

func TestMuxPartitionExhaustiveCost(t *testing.T) {
	c := circuits.RippleAdder(8)
	c4, _ := c.NetByName("C4")
	mp := PartitionWithMux(c, []int{c4})
	before, after := mp.ExhaustiveCost(c)
	if before != 1<<17 {
		t.Fatalf("before = %d", before)
	}
	if after >= before {
		t.Fatalf("partitioning did not reduce exhaustive cost: %d -> %d", before, after)
	}
}

func TestIsN1GateClassification(t *testing.T) {
	c := circuits.ALU74181()
	cases := map[string]bool{
		"L0": true, "H3": true, "LT1_2": true, "HT2_0": true, "NB1": true,
		"LH0": false, "NC1": false, "CNODE2": false, "F0": false,
		"GBAR": false, "PBAR": false, "NM": false, "AEQB": false,
	}
	for name, want := range cases {
		id, ok := c.NetByName(name)
		if !ok {
			t.Fatalf("net %s missing", name)
		}
		if got := IsN1Gate(c, id); got != want {
			t.Errorf("IsN1Gate(%s) = %v, want %v", name, got, want)
		}
	}
}

// TestSensitizedPinning verifies the paper's two sensitizing
// conditions on the gate-level 74181: S2=S3=0 pins every Hi to 1, and
// S0=S1=1 pins every Li to 0, with M=1 making Fi = Li (resp. NOT Hi).
func TestSensitizedPinning(t *testing.T) {
	c := circuits.ALU74181()
	for ab := 0; ab < 256; ab++ {
		in := make([]bool, 14)
		for i := 0; i < 4; i++ {
			in[i] = ab>>uint(i)&1 == 1
			in[4+i] = ab>>uint(4+i)&1 == 1
		}
		in[12] = true // M
		// L phase: S = 00xx varies; use S0=1,S1=0 as a sample.
		in[8] = true
		vals := sim.Eval(c, in, nil)
		for i := 0; i < 4; i++ {
			h, _ := c.NetByName("H" + string(rune('0'+i)))
			if !vals[h] {
				t.Fatalf("H%d not pinned to 1 with S2=S3=0", i)
			}
			l, _ := c.NetByName("L" + string(rune('0'+i)))
			f, _ := c.NetByName("F" + string(rune('0'+i)))
			if vals[f] != vals[l] {
				t.Fatalf("F%d != L%d in the L phase", i, i)
			}
		}
		// H phase: S0=S1=1, S2/S3 sample 10.
		in[8], in[9], in[10], in[11] = true, true, true, false
		vals = sim.Eval(c, in, nil)
		for i := 0; i < 4; i++ {
			l, _ := c.NetByName("L" + string(rune('0'+i)))
			if vals[l] {
				t.Fatalf("L%d not pinned to 0 with S0=S1=1", i)
			}
			h, _ := c.NetByName("H" + string(rune('0'+i)))
			f, _ := c.NetByName("F" + string(rune('0'+i)))
			if vals[f] == vals[h] {
				t.Fatalf("F%d != NOT H%d in the H phase", i, i)
			}
		}
	}
}

func TestRunSensitized74181(t *testing.T) {
	c := circuits.ALU74181()
	rep := RunSensitized74181(c)
	if rep.Patterns >= rep.ExhaustiveSize/100 {
		t.Fatalf("sensitized set %d patterns is not ≪ exhaustive %d", rep.Patterns, rep.ExhaustiveSize)
	}
	if rep.N1Coverage() < 1.0 {
		t.Fatalf("N1 coverage %.3f (%d/%d), want 1.0 — the partition phases are exhaustive per module",
			rep.N1Coverage(), rep.N1Detected, rep.N1Faults)
	}
	if rep.TotalCoverage() < 0.9 {
		t.Fatalf("total coverage %.3f, want >= 0.9", rep.TotalCoverage())
	}
}

func TestSensitizedPatternsShape(t *testing.T) {
	pats := SensitizedPatterns()
	if len(pats) < 32 {
		t.Fatalf("only %d patterns", len(pats))
	}
	for i, p := range pats {
		if len(p) != 14 {
			t.Fatalf("pattern %d has width %d", i, len(p))
		}
	}
	// First 16: L phase (M=1, S2=S3=0).
	for i := 0; i < 16; i++ {
		if !pats[i][12] || pats[i][10] || pats[i][11] {
			t.Fatalf("L-phase pattern %d malformed", i)
		}
	}
	// Next 16: H phase (M=1, S0=S1=1).
	for i := 16; i < 32; i++ {
		if !pats[i][12] || !pats[i][8] || !pats[i][9] {
			t.Fatalf("H-phase pattern %d malformed", i)
		}
	}
}

func TestModuleValidation(t *testing.T) {
	m := NewModule(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong data width")
		}
	}()
	m.Clock(true, false, []bool{true})
}

// TestAutonomousExhaustiveIsFaultModelIndependent: exhaustive testing
// detects any fault that changes the combinational function —
// demonstrated with a multiple stuck-at fault that single-fault test
// sets can miss.
func TestAutonomousExhaustiveIsFaultModelIndependent(t *testing.T) {
	c := circuits.Majority(3)
	// Exhaustive patterns from the generator module.
	m := NewModule(3)
	m.SetQ([]bool{true, false, false})
	words := m.Generate(7)
	// The generator covers all nonzero states; add the zero pattern.
	pats := [][]bool{{false, false, false}}
	for _, w := range words {
		pats = append(pats, []bool{w&1 != 0, w&2 != 0, w&4 != 0})
	}
	if len(pats) != 8 {
		t.Fatalf("%d patterns", len(pats))
	}
	// Any functional corruption shows up in the response word set.
	good := map[int]bool{}
	for i, p := range pats {
		good[i] = sim.Eval(c, p, nil)[c.POs[0]]
	}
	u := fault.Universe(c)
	for _, f := range u {
		res, err := fault.Simulate(context.Background(), c, []fault.Fault{f}, pats, fault.Options{Backend: fault.BackendParallel})
		if err != nil {
			t.Fatal(err)
		}
		// Exhaustive: every non-redundant single fault must be caught.
		if !res.Detected[0] {
			// Verify it is genuinely redundant.
			redundant := true
			for _, p := range pats {
				if fault.DetectsCombinational(c, p, f) {
					redundant = false
				}
			}
			if !redundant {
				t.Fatalf("exhaustive set missed detectable fault %s", f.Name(c))
			}
		}
	}
	_ = logic.Zero
}

// TestPackedTestPatternsMatchScalar pins the packed two-phase builder
// to the scalar TestPatterns sequence, pattern for pattern — the
// byte-identical guarantee RunAutonomousTest now relies on.
func TestPackedTestPatternsMatchScalar(t *testing.T) {
	c := circuits.RippleAdder(8)
	c4, _ := c.NetByName("C4")
	mp := PartitionWithMux(c, []int{c4})
	want := mp.TestPatterns(c)
	got := mp.PackedTestPatterns(c)
	if got.NumPatterns() != len(want) {
		t.Fatalf("packed %d patterns, scalar %d", got.NumPatterns(), len(want))
	}
	for i, wp := range want {
		gp := got.At(i)
		for j := range wp {
			if gp[j] != wp[j] {
				t.Fatalf("pattern %d input %d: packed %v scalar %v", i, j, gp[j], wp[j])
			}
		}
	}
}
