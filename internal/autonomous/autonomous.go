// Package autonomous implements Design for Autonomous Test (McCluskey
// & Bozorgui-Nesbat [118]; Figs. 26–34): exhaustive self-testing with
// reconfigurable LFSR modules, and the two partitioning schemes —
// multiplexer partitioning and sensitized partitioning — that keep the
// exhaustive pattern count tractable, demonstrated on the 74181 ALU as
// in the paper.
package autonomous

import (
	"context"
	"fmt"
	"strings"

	"dft/internal/fault"
	"dft/internal/lfsr"
	"dft/internal/logic"
)

// Module is the reconfigurable 3-bit LFSR module of Figs. 26–29.
// Controls: N=1 selects normal register operation; N=0 selects test
// modes — S=1 signature analyzer (MISR), S=0 input generator (PRPG).
type Module struct {
	n       int
	taps    []int
	latches []bool
}

// NewModule builds a width-bit module (the figures use 3).
func NewModule(width int) *Module {
	taps, err := lfsr.MaximalTaps(width)
	if err != nil {
		panic(err)
	}
	return &Module{n: width, taps: taps, latches: make([]bool, width)}
}

// Q returns the latch outputs.
func (m *Module) Q() []bool { return append([]bool(nil), m.latches...) }

// QWord packs the outputs.
func (m *Module) QWord() uint64 {
	var w uint64
	for i, b := range m.latches {
		if b {
			w |= 1 << uint(i)
		}
	}
	return w
}

// SetQ loads the latches.
func (m *Module) SetQ(vals []bool) {
	if len(vals) != m.n {
		panic(fmt.Sprintf("autonomous: SetQ with %d values for width %d", len(vals), m.n))
	}
	copy(m.latches, vals)
}

func (m *Module) feedback() bool {
	fb := false
	for _, t := range m.taps {
		fb = fb != m.latches[t-1]
	}
	return fb
}

// Clock advances the module: n=true is normal operation (load data);
// n=false, s=true is signature analysis (MISR of data); n=false,
// s=false is input generation (pure LFSR, data ignored).
func (m *Module) Clock(n, s bool, data []bool) {
	if data != nil && len(data) != m.n {
		panic(fmt.Sprintf("autonomous: %d data values for width %d", len(data), m.n))
	}
	di := func(i int) bool {
		if data == nil {
			return false
		}
		return data[i]
	}
	switch {
	case n:
		for i := range m.latches {
			m.latches[i] = di(i)
		}
	case s:
		fb := m.feedback()
		prev := m.latches[0]
		m.latches[0] = di(0) != fb
		for i := 1; i < m.n; i++ {
			cur := m.latches[i]
			m.latches[i] = di(i) != prev
			prev = cur
		}
	default:
		fb := m.feedback()
		prev := fb
		for i := 0; i < m.n; i++ {
			cur := m.latches[i]
			m.latches[i] = prev
			prev = cur
		}
	}
}

// Generate runs the module as an input generator for k clocks,
// returning the successive Q words — the exhaustive (maximal-length)
// stimulus source of autonomous testing.
func (m *Module) Generate(k int) []uint64 {
	out := make([]uint64, k)
	for i := range out {
		m.Clock(false, false, nil)
		out[i] = m.QWord()
	}
	return out
}

// Compress runs the module as a signature analyzer over the data
// words.
func (m *Module) Compress(words [][]bool) uint64 {
	for _, w := range words {
		m.Clock(false, true, w)
	}
	return m.QWord()
}

// --- Multiplexer partitioning (Figs. 30–32) ---

// MuxPartition is the result of inserting test multiplexers at a cut:
// in normal mode (TMODE=0) the circuit is unchanged; in test mode the
// cut nets are driven from new TESTIN pins, and the cut nets are
// observable on new TPOUT pins, so the downstream partition is
// exhaustively testable on its own (much smaller) input space.
type MuxPartition struct {
	C       *logic.Circuit
	TMode   int   // PI
	TestIns []int // PI per cut net
	CutObs  []int // PO per cut net
	Cut     []int // the original cut nets
}

// PartitionWithMux inserts multiplexers at the given cut nets.
func PartitionWithMux(c *logic.Circuit, cut []int) *MuxPartition {
	nc := c.Clone()
	mp := &MuxPartition{Cut: append([]int(nil), cut...)}
	mp.TMode = nc.AddInput("TMODE")
	ntm := nc.AddGate(logic.Not, "TMODE_N", mp.TMode)
	for _, net := range cut {
		base := c.NameOf(net)
		ti := nc.AddInput(fmt.Sprintf("TESTIN_%s", base))
		mp.TestIns = append(mp.TestIns, ti)
		norm := nc.AddGate(logic.And, fmt.Sprintf("TMN_%s", base), net, ntm)
		test := nc.AddGate(logic.And, fmt.Sprintf("TMT_%s", base), ti, mp.TMode)
		muxed := nc.AddGate(logic.Or, fmt.Sprintf("TMX_%s", base), norm, test)
		for id := range nc.Gates {
			if id == norm || id == muxed {
				continue
			}
			for i, src := range nc.Gates[id].Fanin {
				if src == net {
					nc.Gates[id].Fanin[i] = muxed
				}
			}
		}
		for i, po := range nc.POs {
			if po == net {
				nc.POs[i] = muxed
			}
		}
		obs := nc.AddGate(logic.Buf, fmt.Sprintf("TPOUT_%s", base), net)
		nc.MarkOutput(obs)
		mp.CutObs = append(mp.CutObs, obs)
	}
	nc.MustFinalize()
	mp.C = nc
	return mp
}

// ExhaustiveCost compares the exhaustive pattern counts: unpartitioned
// 2ⁿ versus the sum of the two partitions' exhaustive spaces
// (upstream: original PIs; downstream: TESTINs plus the PIs feeding
// the downstream cone).
func (mp *MuxPartition) ExhaustiveCost(orig *logic.Circuit) (before, after int) {
	before = 1 << uint(len(orig.PIs))
	upstream := 1 << uint(len(orig.PIs)) // bounded by PIs feeding the cut cones
	// Tighter upstream bound: PIs in the transitive fanin of the cut.
	seen := map[int]bool{}
	var walk func(n int)
	count := 0
	walk = func(n int) {
		if seen[n] {
			return
		}
		seen[n] = true
		g := orig.Gates[n]
		if g.Type == logic.Input {
			count++
			return
		}
		for _, f := range g.Fanin {
			walk(f)
		}
	}
	for _, net := range mp.Cut {
		walk(net)
	}
	upstream = 1 << uint(count)
	// Downstream: cut width plus PIs read below the cut. Conservative:
	// all original PIs may also feed downstream.
	downPIs := map[int]bool{}
	inCut := map[int]bool{}
	for _, n := range mp.Cut {
		inCut[n] = true
	}
	var mark func(n int)
	reach := map[int]bool{}
	mark = func(n int) {
		if reach[n] {
			return
		}
		reach[n] = true
		for _, r := range orig.Fanout[n] {
			mark(r)
		}
	}
	for _, n := range mp.Cut {
		for _, r := range orig.Fanout[n] {
			mark(r)
		}
	}
	for _, pi := range orig.PIs {
		for _, r := range orig.Fanout[pi] {
			if reach[r] {
				downPIs[pi] = true
			}
		}
	}
	downstream := 1 << uint(len(mp.Cut)+len(downPIs))
	after = upstream + downstream
	return before, after
}

// upstreamPIs lists the original PIs in the transitive fanin of the
// cut, and downstreamPIs those feeding the logic below the cut.
func (mp *MuxPartition) regionPIs(orig *logic.Circuit) (up, down []int) {
	inCone := map[int]bool{}
	var walk func(n int)
	walk = func(n int) {
		if inCone[n] {
			return
		}
		inCone[n] = true
		for _, f := range orig.Gates[n].Fanin {
			walk(f)
		}
	}
	for _, n := range mp.Cut {
		walk(n)
	}
	reach := map[int]bool{}
	var mark func(n int)
	mark = func(n int) {
		if reach[n] {
			return
		}
		reach[n] = true
		for _, r := range orig.Fanout[n] {
			mark(r)
		}
	}
	for _, n := range mp.Cut {
		for _, r := range orig.Fanout[n] {
			mark(r)
		}
	}
	downSet := map[int]bool{}
	var back func(n int)
	back = func(n int) {
		if downSet[n] {
			return
		}
		downSet[n] = true
		for _, f := range orig.Gates[n].Fanin {
			cut := false
			for _, cn := range mp.Cut {
				if cn == f {
					cut = true
				}
			}
			if !cut {
				back(f)
			}
		}
	}
	for n := range reach {
		back(n)
	}
	for i, pi := range orig.PIs {
		_ = i
		if inCone[pi] {
			up = append(up, pi)
		}
		if downSet[pi] {
			down = append(down, pi)
		}
	}
	return up, down
}

// TestPatterns builds the two-phase autonomous test over the modified
// circuit's inputs: an upstream phase (TMODE=0, exhaustive over the
// PIs feeding the cut, observed at the TPOUT pins) and a downstream
// phase (TMODE=1, exhaustive over TESTIN plus the downstream PIs).
// The combined set exercises both partitions exhaustively at a cost of
// 2^|up| + 2^|down+cut| patterns instead of 2^n.
func (mp *MuxPartition) TestPatterns(orig *logic.Circuit) [][]bool {
	up, down := mp.regionPIs(orig)
	nIn := len(mp.C.PIs)
	tmodeIdx := -1
	testinIdx := make([]int, 0, len(mp.TestIns))
	origIdx := map[int]int{} // original PI net -> position in mp.C.PIs
	for i, pi := range mp.C.PIs {
		switch {
		case pi == mp.TMode:
			tmodeIdx = i
		case contains(mp.TestIns, pi):
			testinIdx = append(testinIdx, i)
		default:
			origIdx[pi] = i
		}
	}
	var pats [][]bool
	// Upstream phase.
	for x := 0; x < 1<<uint(len(up)); x++ {
		p := make([]bool, nIn)
		for b, pi := range up {
			p[origIdx[pi]] = x>>uint(b)&1 == 1
		}
		pats = append(pats, p)
	}
	// Downstream phase.
	free := append([]int{}, testinIdx...)
	for _, pi := range down {
		free = append(free, origIdx[pi])
	}
	for x := 0; x < 1<<uint(len(free)); x++ {
		p := make([]bool, nIn)
		p[tmodeIdx] = true
		for b, idx := range free {
			p[idx] = x>>uint(b)&1 == 1
		}
		pats = append(pats, p)
	}
	return pats
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// PackedTestPatterns is TestPatterns built directly in packed PPSFP
// form: each phase's enumeration is synthesized block-at-a-time from
// periodic bit masks (with a scalar fallback when a phase starts
// mid-block), so the pattern sequence is identical to TestPatterns
// without materializing 2^N scalar vectors.
func (mp *MuxPartition) PackedTestPatterns(orig *logic.Circuit) *fault.PackedPatterns {
	up, down := mp.regionPIs(orig)
	tmodeIdx := -1
	testinIdx := make([]int, 0, len(mp.TestIns))
	origIdx := map[int]int{}
	for i, pi := range mp.C.PIs {
		switch {
		case pi == mp.TMode:
			tmodeIdx = i
		case contains(mp.TestIns, pi):
			testinIdx = append(testinIdx, i)
		default:
			origIdx[pi] = i
		}
	}
	pp := fault.NewPackedPatterns(len(mp.C.PIs))
	// Upstream phase: enumerate the upstream original inputs.
	upFree := make([]int, len(up))
	for b, pi := range up {
		upFree[b] = origIdx[pi]
	}
	pp.AppendEnum(upFree, nil)
	// Downstream phase: TMode held at 1, test inputs then downstream
	// original inputs enumerated.
	free := append([]int{}, testinIdx...)
	for _, pi := range down {
		free = append(free, origIdx[pi])
	}
	pp.AppendEnum(free, []int{tmodeIdx})
	return pp
}

// RunAutonomousTest applies the two-phase set to the partitioned
// circuit and fault-grades the faults on the ORIGINAL logic (net IDs
// are preserved by the insertion).
func (mp *MuxPartition) RunAutonomousTest(orig *logic.Circuit) (coverage float64, patterns int) {
	cl := fault.CollapseEquiv(orig, fault.Universe(orig))
	var targets []fault.Fault
	for _, f := range cl.Reps {
		if f.Gate < orig.NumNets() {
			targets = append(targets, f)
		}
	}
	pats := mp.PackedTestPatterns(orig)
	res, _ := fault.NewEngine(mp.C, fault.Options{}).RunPacked(context.Background(), targets, pats)
	return res.Coverage(), pats.NumPatterns()
}

// --- Sensitized partitioning of the 74181 (Figs. 33–34) ---

// SensitizedReport summarizes the 74181 sensitized-partitioning
// experiment.
type SensitizedReport struct {
	Patterns       int
	ExhaustiveSize int
	N1Faults       int
	N1Detected     int
	TotalFaults    int
	TotalDetected  int
}

// N1Coverage returns detected/total over the N1 subnetworks.
func (r SensitizedReport) N1Coverage() float64 {
	if r.N1Faults == 0 {
		return 0
	}
	return float64(r.N1Detected) / float64(r.N1Faults)
}

// TotalCoverage returns overall coverage.
func (r SensitizedReport) TotalCoverage() float64 {
	if r.TotalFaults == 0 {
		return 0
	}
	return float64(r.TotalDetected) / float64(r.TotalFaults)
}

// IsN1Gate reports whether a 74181 net belongs to one of the four N1
// first-level subnetworks (the per-bit L/H clusters of Fig. 33).
func IsN1Gate(c *logic.Circuit, id int) bool {
	name := c.NameOf(id)
	for _, p := range []string{"NB", "LT1_", "LT2_", "L", "HT1_", "HT2_", "H"} {
		if strings.HasPrefix(name, p) {
			// Guard against N2 names (LH, NC...) sharing a prefix.
			if strings.HasPrefix(name, "LH") || strings.HasPrefix(name, "NC") {
				return false
			}
			return true
		}
	}
	return false
}

// SensitizedPatterns builds the paper's sensitized test set for the
// 74181 (inputs packed A0..3,B0..3,S0..3,M,CN):
//
//   - L phase: hold S2=S3=0 (each Hᵢ pinned to 1) and M=1; every Lᵢ then
//     appears directly on Fᵢ. Sweep S0,S1 and per-bit Aᵢ,Bᵢ — 16
//     patterns exercise all four N1 L-sides exhaustively in parallel.
//   - H phase: hold S0=S1=1 (each Lᵢ pinned to 0) and M=1; every Hᵢ
//     appears complemented on Fᵢ. Sweep S2,S3,Aᵢ,Bᵢ — 16 patterns.
//   - N2 phase: a carry-exercising sweep in arithmetic mode (S=1001,
//     S=0110) walking operand and carry values.
func SensitizedPatterns() [][]bool {
	var pats [][]bool
	mk := func(a, b, s uint, m, cn bool) []bool {
		p := make([]bool, 14)
		for i := 0; i < 4; i++ {
			p[i] = a>>uint(i)&1 == 1
			p[4+i] = b>>uint(i)&1 == 1
			p[8+i] = s>>uint(i)&1 == 1
		}
		p[12] = m
		p[13] = cn
		return p
	}
	// L phase: S2=S3=0; all (S0,S1) × (A,B) per-bit combinations, A and
	// B replicated across bits so every N1 module sees the same cube.
	for s01 := uint(0); s01 < 4; s01++ {
		for ab := uint(0); ab < 4; ab++ {
			a := uint(0)
			b := uint(0)
			if ab&1 != 0 {
				a = 0xF
			}
			if ab&2 != 0 {
				b = 0xF
			}
			pats = append(pats, mk(a, b, s01, true, false))
		}
	}
	// H phase: S0=S1=1; all (S2,S3) × (A,B).
	for s23 := uint(0); s23 < 4; s23++ {
		for ab := uint(0); ab < 4; ab++ {
			a := uint(0)
			b := uint(0)
			if ab&1 != 0 {
				a = 0xF
			}
			if ab&2 != 0 {
				b = 0xF
			}
			pats = append(pats, mk(a, b, 0x3|s23<<2, true, false))
		}
	}
	// N2 phase: arithmetic carries. Walk add and subtract with
	// diagonal operands and both carry polarities.
	for _, s := range []uint{0x9, 0x6} {
		for _, cn := range []bool{false, true} {
			for a := uint(0); a < 16; a++ {
				pats = append(pats, mk(a, 15-a, s, false, cn))
				pats = append(pats, mk(a, a, s, false, cn))
			}
		}
	}
	return pats
}

// RunSensitized74181 applies the sensitized pattern set to the
// gate-level 74181 and fault-grades it.
func RunSensitized74181(c *logic.Circuit) SensitizedReport {
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	pats := SensitizedPatterns()
	res, _ := fault.Simulate(context.Background(), c, cl.Reps, pats, fault.Options{})
	rep := SensitizedReport{
		Patterns:       len(pats),
		ExhaustiveSize: 1 << uint(len(c.PIs)),
		TotalFaults:    len(cl.Reps),
		TotalDetected:  res.NumCaught,
	}
	for i, f := range cl.Reps {
		if IsN1Gate(c, f.Gate) {
			rep.N1Faults++
			if res.Detected[i] {
				rep.N1Detected++
			}
		}
	}
	return rep
}
