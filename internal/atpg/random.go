package atpg

import (
	"math/rand"

	"dft/internal/fault"
	"dft/internal/logic"
	"dft/internal/telemetry"
)

// RandomResult reports a random-pattern generation run.
type RandomResult struct {
	Patterns [][]bool // the patterns that detected at least one new fault
	Applied  int      // total patterns simulated
	Coverage float64
	Detected []bool // per fault in the given list
}

// RandomGenerate applies random patterns (each view-input bit set with
// probability 0.5) in 64-pattern blocks with fault dropping, keeping
// the useful ones, until target coverage is reached or maxPatterns have
// been applied. This is the paper's baseline "combinational logic is
// highly susceptible to random patterns" engine.
func RandomGenerate(c *logic.Circuit, view View, faults []fault.Fault,
	target float64, maxPatterns int, rng *rand.Rand) *RandomResult {
	weights := make([]float64, len(view.Inputs))
	for i := range weights {
		weights[i] = 0.5
	}
	return WeightedRandomGenerate(c, view, faults, target, maxPatterns, weights, rng)
}

// WeightedRandomGenerate is RandomGenerate with a per-input probability
// of driving a 1 — the weighted random patterns of Schnurmann et al.
// [95]. Weights skewed toward the values that exercise deep AND/OR
// structures dramatically improve coverage on biased circuits.
func WeightedRandomGenerate(c *logic.Circuit, view View, faults []fault.Fault,
	target float64, maxPatterns int, weights []float64, rng *rand.Rand) *RandomResult {
	if len(weights) != len(view.Inputs) {
		panic("atpg: weight count mismatch")
	}
	h := newHarness(c, view, faults)
	res := &RandomResult{Detected: make([]bool, len(faults))}
	defer h.reg.Timer("atpg.random").Time()()
	defer func() { h.reg.Counter("atpg.random.patterns").Add(int64(res.Applied)) }()
	for res.Applied < maxPatterns {
		block := make([][]bool, 0, 64)
		for k := 0; k < 64 && res.Applied+len(block) < maxPatterns; k++ {
			p := make([]bool, len(view.Inputs))
			for i := range p {
				p[i] = rng.Float64() < weights[i]
			}
			block = append(block, p)
		}
		useful := h.applyBlock(block, res.Detected)
		res.Patterns = append(res.Patterns, useful...)
		res.Applied += len(block)
		res.Coverage = h.coverage()
		if res.Coverage >= target {
			break
		}
	}
	return res
}

// AdaptiveRandomGenerate implements adaptive random test generation in
// the spirit of Parker [87]: input weights start uniform and adapt
// toward the bit values of recently-detecting patterns, so the
// generator drifts into the useful corners of the input space.
func AdaptiveRandomGenerate(c *logic.Circuit, view View, faults []fault.Fault,
	target float64, maxPatterns int, rng *rand.Rand) *RandomResult {
	n := len(view.Inputs)
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 0.5
	}
	h := newHarness(c, view, faults)
	res := &RandomResult{Detected: make([]bool, len(faults))}
	defer h.reg.Timer("atpg.random").Time()()
	defer func() { h.reg.Counter("atpg.random.patterns").Add(int64(res.Applied)) }()
	const alpha = 0.15 // adaptation rate
	for res.Applied < maxPatterns {
		block := make([][]bool, 0, 64)
		for k := 0; k < 64 && res.Applied+len(block) < maxPatterns; k++ {
			p := make([]bool, n)
			for i := range p {
				p[i] = rng.Float64() < weights[i]
			}
			block = append(block, p)
		}
		useful := h.applyBlock(block, res.Detected)
		res.Patterns = append(res.Patterns, useful...)
		res.Applied += len(block)
		res.Coverage = h.coverage()
		// Adapt toward detecting patterns; relax toward 0.5 when a
		// block was useless (escape dead regions).
		if len(useful) > 0 {
			for _, p := range useful {
				for i, b := range p {
					targetW := 0.0
					if b {
						targetW = 1.0
					}
					weights[i] += alpha * (targetW - weights[i])
				}
			}
		} else {
			for i := range weights {
				weights[i] += alpha * (0.5 - weights[i])
			}
		}
		// Clamp away from degenerate 0/1 weights.
		for i := range weights {
			if weights[i] < 0.05 {
				weights[i] = 0.05
			}
			if weights[i] > 0.95 {
				weights[i] = 0.95
			}
		}
		if res.Coverage >= target {
			break
		}
	}
	return res
}

// harness runs view-level fault simulation with dropping over an
// explicit fault list, backed by the 64-way parallel-pattern simulator
// so the same fast path serves scan views and plain combinational
// circuits.
type harness struct {
	c      *logic.Circuit
	view   View
	faults []fault.Fault
	ps     *fault.ParallelSim
	live   []int
	caught int
	reg    *telemetry.Registry
}

func newHarness(c *logic.Circuit, view View, faults []fault.Fault) *harness {
	h := &harness{
		c: c, view: view, faults: faults,
		ps:  fault.NewParallelSimView(c, view.Inputs, view.Outputs),
		reg: telemetry.Default(),
	}
	h.live = make([]int, len(faults))
	for i := range h.live {
		h.live[i] = i
	}
	return h
}

// applyBlock simulates a block of up to 64 patterns against all live
// faults (with dropping), marks detections, and returns the subset of
// patterns that were the first detector of some fault.
func (h *harness) applyBlock(block [][]bool, detected []bool) [][]bool {
	k := h.ps.LoadBlock(block)
	mask := ^uint64(0)
	if k < 64 {
		mask = 1<<uint(k) - 1
	}
	usefulIdx := make(map[int]bool)
	next := h.live[:0]
	for _, fi := range h.live {
		det := h.ps.FaultMask(h.faults[fi]) & mask
		if det == 0 {
			next = append(next, fi)
			continue
		}
		first := 0
		for det&1 == 0 {
			det >>= 1
			first++
		}
		detected[fi] = true
		h.caught++
		usefulIdx[first] = true
	}
	h.live = next
	var useful [][]bool
	for i := 0; i < len(block); i++ {
		if usefulIdx[i] {
			useful = append(useful, block[i])
		}
	}
	masks, evals := h.ps.TakeCounts()
	h.reg.Counter("fault.sim.faultmasks").Add(masks)
	h.reg.Counter("fault.sim.events").Add(evals)
	h.reg.Counter("fault.sim.blocks").Inc()
	h.reg.Counter("fault.sim.patterns").Add(int64(len(block)))
	return useful
}

// remaining reports the number of still-undetected faults.
func (h *harness) remaining() int { return len(h.live) }

func (h *harness) coverage() float64 {
	if len(h.faults) == 0 {
		return 0
	}
	return float64(h.caught) / float64(len(h.faults))
}
