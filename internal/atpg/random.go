package atpg

import (
	"math/bits"
	"math/rand"

	"dft/internal/fault"
	"dft/internal/logic"
	"dft/internal/telemetry"
)

// RandomResult reports a random-pattern generation run.
type RandomResult struct {
	Patterns [][]bool // the patterns that detected at least one new fault
	Applied  int      // total patterns simulated
	Coverage float64
	Detected []bool // per fault in the given list
}

// RandomGenerate applies random patterns (each view-input bit set with
// probability 0.5) in 64-pattern blocks with fault dropping, keeping
// the useful ones, until target coverage is reached or maxPatterns have
// been applied. This is the paper's baseline "combinational logic is
// highly susceptible to random patterns" engine.
func RandomGenerate(c *logic.Circuit, view View, faults []fault.Fault,
	target float64, maxPatterns int, rng *rand.Rand) *RandomResult {
	weights := make([]float64, len(view.Inputs))
	for i := range weights {
		weights[i] = 0.5
	}
	return WeightedRandomGenerate(c, view, faults, target, maxPatterns, weights, rng)
}

// WeightedRandomGenerate is RandomGenerate with a per-input probability
// of driving a 1 — the weighted random patterns of Schnurmann et al.
// [95]. Weights skewed toward the values that exercise deep AND/OR
// structures dramatically improve coverage on biased circuits.
func WeightedRandomGenerate(c *logic.Circuit, view View, faults []fault.Fault,
	target float64, maxPatterns int, weights []float64, rng *rand.Rand) *RandomResult {
	if len(weights) != len(view.Inputs) {
		panic("atpg: weight count mismatch")
	}
	h := newHarness(c, view, faults, fault.WorkersAuto, nil)
	res := &RandomResult{Detected: make([]bool, len(faults))}
	defer h.reg.Timer("atpg.random").Time()()
	defer func() { h.reg.Counter("atpg.random.patterns").Add(int64(res.Applied)) }()
	for res.Applied < maxPatterns {
		block := make([][]bool, 0, 64)
		for k := 0; k < 64 && res.Applied+len(block) < maxPatterns; k++ {
			p := make([]bool, len(view.Inputs))
			for i := range p {
				p[i] = rng.Float64() < weights[i]
			}
			block = append(block, p)
		}
		useful := h.applyBlock(block, res.Detected)
		res.Patterns = append(res.Patterns, useful...)
		res.Applied += len(block)
		res.Coverage = h.coverage()
		if res.Coverage >= target {
			break
		}
	}
	return res
}

// AdaptiveRandomGenerate implements adaptive random test generation in
// the spirit of Parker [87]: input weights start uniform and adapt
// toward the bit values of recently-detecting patterns, so the
// generator drifts into the useful corners of the input space.
func AdaptiveRandomGenerate(c *logic.Circuit, view View, faults []fault.Fault,
	target float64, maxPatterns int, rng *rand.Rand) *RandomResult {
	n := len(view.Inputs)
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 0.5
	}
	h := newHarness(c, view, faults, fault.WorkersAuto, nil)
	res := &RandomResult{Detected: make([]bool, len(faults))}
	defer h.reg.Timer("atpg.random").Time()()
	defer func() { h.reg.Counter("atpg.random.patterns").Add(int64(res.Applied)) }()
	const alpha = 0.15 // adaptation rate
	for res.Applied < maxPatterns {
		block := make([][]bool, 0, 64)
		for k := 0; k < 64 && res.Applied+len(block) < maxPatterns; k++ {
			p := make([]bool, n)
			for i := range p {
				p[i] = rng.Float64() < weights[i]
			}
			block = append(block, p)
		}
		useful := h.applyBlock(block, res.Detected)
		res.Patterns = append(res.Patterns, useful...)
		res.Applied += len(block)
		res.Coverage = h.coverage()
		// Adapt toward detecting patterns; relax toward 0.5 when a
		// block was useless (escape dead regions).
		if len(useful) > 0 {
			for _, p := range useful {
				for i, b := range p {
					targetW := 0.0
					if b {
						targetW = 1.0
					}
					weights[i] += alpha * (targetW - weights[i])
				}
			}
		} else {
			for i := range weights {
				weights[i] += alpha * (0.5 - weights[i])
			}
		}
		// Clamp away from degenerate 0/1 weights.
		for i := range weights {
			if weights[i] < 0.05 {
				weights[i] = 0.05
			}
			if weights[i] > 0.95 {
				weights[i] = 0.95
			}
		}
		if res.Coverage >= target {
			break
		}
	}
	return res
}

// harness runs view-level fault simulation with dropping over an
// explicit fault list, backed by a fault.Session on the sharded engine
// so the same fast path serves scan views and plain combinational
// circuits — multicore when the live list is large enough to pay for
// it.
type harness struct {
	session *fault.Session
	reg     *telemetry.Registry
}

func newHarness(c *logic.Circuit, view View, faults []fault.Fault, workers int, reg *telemetry.Registry) *harness {
	reg = telemetry.OrDefault(reg)
	eng := fault.NewEngine(c, fault.Options{
		Workers: workers,
		View:    fault.View{Inputs: view.Inputs, Outputs: view.Outputs},
		Metrics: reg,
	})
	return &harness{session: eng.NewSession(faults), reg: reg}
}

// applyBlock simulates a block of up to 64 patterns against all live
// faults (with dropping), marks detections, and returns the subset of
// patterns that were the first detector of some fault.
func (h *harness) applyBlock(block [][]bool, detected []bool) [][]bool {
	usefulMask := h.session.ApplyBlock(block, detected)
	var useful [][]bool
	for usefulMask != 0 {
		i := bits.TrailingZeros64(usefulMask)
		usefulMask &= usefulMask - 1
		useful = append(useful, block[i])
	}
	return useful
}

// remaining reports the number of still-undetected faults.
func (h *harness) remaining() int { return h.session.Remaining() }

func (h *harness) coverage() float64 { return h.session.Coverage() }
