package atpg

import (
	"testing"

	"dft/internal/circuits"
	"dft/internal/fault"
	"dft/internal/logic"
	"dft/internal/telemetry"
)

// PodemExtend must keep the base cube's care bits byte-for-byte and,
// when it succeeds, produce a cube detecting both the base fault and
// the secondary target.
func TestPodemExtendPreservesBase(t *testing.T) {
	c := circuits.ArrayMultiplier(4)
	view := PrimaryView(c)
	faults := fault.CollapseEquiv(c, fault.Universe(c)).Reps
	extended := 0
	for fi := 0; fi+1 < len(faults) && extended < 25; fi++ {
		base, err := Podem(c, view, faults[fi], PodemConfig{})
		if err != nil {
			continue
		}
		for fj := fi + 1; fj < fi+8 && fj < len(faults); fj++ {
			ext, err := PodemExtend(c, view, faults[fj], base, PodemConfig{MaxBacktracks: 64})
			if err != nil {
				continue
			}
			extended++
			for i, v := range base.Values {
				if v != logic.X && ext.Values[i] != v {
					t.Fatalf("fault pair (%d,%d): base care bit %d changed %v -> %v", fi, fj, i, v, ext.Values[i])
				}
			}
			if !Verify(c, view, faults[fi], ext) {
				t.Fatalf("fault pair (%d,%d): extension lost the primary detection", fi, fj)
			}
			if !Verify(c, view, faults[fj], ext) {
				t.Fatalf("fault pair (%d,%d): extension does not detect its own target", fi, fj)
			}
		}
	}
	if extended == 0 {
		t.Fatal("no extension ever succeeded — test exercised nothing")
	}
}

// A fully specified incompatible base must fail with ErrUntestable
// even when the fault is testable on its own: the error means "no
// completion of base", not "redundant".
func TestPodemExtendIncompatibleBase(t *testing.T) {
	c := andCircuit()
	and, _ := c.NetByName("C")
	view := PrimaryView(c)
	f := fault.Fault{Gate: and, Pin: 0, SA: logic.One}
	// The only test is 01; freeze A=1 so no completion works.
	base := Test{Values: []logic.V{logic.One, logic.X}}
	if _, err := PodemExtend(c, view, f, base, PodemConfig{}); err != ErrUntestable {
		t.Fatalf("want ErrUntestable, got %v", err)
	}
	if test, err := Podem(c, view, f, PodemConfig{}); err != nil || !Verify(c, view, f, test) {
		t.Fatalf("fault is testable standalone: test=%v err=%v", test, err)
	}
}

// Dynamic compaction must not change what a run detects — only how
// many patterns it takes. Coverage stays identical everywhere; the
// pattern count strictly shrinks on the control-heavy ALU (on wide
// data paths random X-fill can beat directed extension, which is why
// the pipeline always finishes with a reverse replay).
func TestGenerateDynamicCompaction(t *testing.T) {
	for _, tc := range []struct {
		name       string
		c          *logic.Circuit
		mustShrink bool
	}{
		{"alu74181", circuits.ALU74181(), true},
		{"mult4", circuits.ArrayMultiplier(4), false},
	} {
		c := tc.c
		view := PrimaryView(c)
		targets := fault.CollapseEquiv(c, fault.Universe(c)).Reps
		reg := telemetry.NewRegistry()
		plain := Generate(c, view, targets, Config{RandomSeed: 5, Metrics: reg})
		dyn := Generate(c, view, targets, Config{RandomSeed: 5, Dynamic: true, Metrics: reg})
		if dyn.Coverage != plain.Coverage {
			t.Fatalf("%s: dynamic coverage %v != plain %v", tc.name, dyn.Coverage, plain.Coverage)
		}
		if tc.mustShrink && len(dyn.Patterns) >= len(plain.Patterns) {
			t.Fatalf("%s: dynamic produced %d patterns, plain %d — no compaction", tc.name, len(dyn.Patterns), len(plain.Patterns))
		}
		snap := reg.Snapshot()
		if snap.Counters["compact.dynamic.attempts"] == 0 || snap.Counters["compact.dynamic.hits"] == 0 {
			t.Fatalf("%s: dynamic counters not flushed: %v", tc.name, snap.Counters)
		}
	}
}
