package atpg

import (
	"testing"

	"dft/internal/circuits"
	"dft/internal/fault"
	"dft/internal/logic"
)

func TestPodemMultiSingleSiteOnC17(t *testing.T) {
	c := circuits.C17()
	view := PrimaryView(c)
	for _, f := range fault.Universe(c) {
		cube, err := PodemMulti(c, view, MultiFault{f}, PodemConfig{})
		if err != nil {
			t.Fatalf("fault %s: %v", f.Name(c), err)
		}
		if !VerifyMulti(c, view, MultiFault{f}, cube) {
			t.Fatalf("fault %s: cube fails verification", f.Name(c))
		}
		if !Verify(c, view, f, cube) {
			t.Fatalf("fault %s: multi cube disagrees with single-fault verify", f.Name(c))
		}
	}
}

func TestPodemMultiTwoSites(t *testing.T) {
	// One physical defect hitting two stems: any test distinguishing
	// the doubly-faulty machine counts.
	c := circuits.C17()
	view := PrimaryView(c)
	g10, _ := c.NetByName("G10")
	g19, _ := c.NetByName("G19")
	mf := MultiFault{
		{Gate: g10, Pin: fault.Stem, SA: logic.One},
		{Gate: g19, Pin: fault.Stem, SA: logic.One},
	}
	cube, err := PodemMulti(c, view, mf, PodemConfig{})
	if err != nil {
		t.Fatalf("multi: %v", err)
	}
	if !VerifyMulti(c, view, mf, cube) {
		t.Fatal("cube fails multi verification")
	}
}

// TestPodemMultiSelfMasking: two sites that exactly cancel through an
// XOR are jointly undetectable, although each alone is testable.
func TestPodemMultiSelfMasking(t *testing.T) {
	c := logic.New("mask")
	a := c.AddInput("a")
	b1 := c.AddGate(logic.Buf, "b1", a)
	b2 := c.AddGate(logic.Buf, "b2", a)
	y := c.AddGate(logic.Xor, "y", b1, b2)
	c.MarkOutput(y)
	c.MustFinalize()
	view := PrimaryView(c)
	f1 := fault.Fault{Gate: b1, Pin: fault.Stem, SA: logic.One}
	f2 := fault.Fault{Gate: b2, Pin: fault.Stem, SA: logic.One}
	// Each alone is testable (a=0 exposes it).
	if _, err := PodemMulti(c, view, MultiFault{f1}, PodemConfig{}); err != nil {
		t.Fatalf("single site 1: %v", err)
	}
	if _, err := PodemMulti(c, view, MultiFault{f2}, PodemConfig{}); err != nil {
		t.Fatalf("single site 2: %v", err)
	}
	// Together they cancel: XOR(1,1) = XOR(a,a) = 0 for every input.
	if _, err := PodemMulti(c, view, MultiFault{f1, f2}, PodemConfig{}); err != ErrUntestable {
		t.Fatalf("joint fault: err = %v, want ErrUntestable", err)
	}
}

func TestPodemMultiBranchSites(t *testing.T) {
	// Branch faults on two different gates reading the same stem.
	c := circuits.C17()
	view := PrimaryView(c)
	g16, _ := c.NetByName("G16")
	g19, _ := c.NetByName("G19")
	mf := MultiFault{
		{Gate: g16, Pin: 1, SA: logic.Zero}, // G11 branch into G16
		{Gate: g19, Pin: 0, SA: logic.Zero}, // G11 branch into G19
	}
	cube, err := PodemMulti(c, view, mf, PodemConfig{})
	if err != nil {
		t.Fatalf("branch multi: %v", err)
	}
	if !VerifyMulti(c, view, mf, cube) {
		t.Fatal("branch multi cube fails verification")
	}
}

func TestVerifyMultiRejectsNonTest(t *testing.T) {
	c := circuits.C17()
	view := PrimaryView(c)
	g22, _ := c.NetByName("G22")
	mf := MultiFault{{Gate: g22, Pin: fault.Stem, SA: logic.One}}
	// All-X cube cannot claim detection.
	blank := Test{Values: make([]logic.V, len(view.Inputs))}
	for i := range blank.Values {
		blank.Values[i] = logic.X
	}
	if VerifyMulti(c, view, mf, blank) {
		t.Fatal("blank cube verified")
	}
}
