package atpg

import (
	"errors"
	"fmt"

	"dft/internal/fault"
	"dft/internal/logic"
	"dft/internal/telemetry"
)

// ErrUntestable is returned when the search space is exhausted without
// finding a test: the fault is redundant under the given view.
var ErrUntestable = errors.New("atpg: fault is untestable (redundant)")

// ErrAborted is returned when the backtrack limit is reached before the
// search concludes.
var ErrAborted = errors.New("atpg: backtrack limit exceeded")

// PodemConfig tunes the PODEM (and D-algorithm) search.
type PodemConfig struct {
	MaxBacktracks int // 0 means DefaultBacktracks
	// Metrics receives decision/backtrack/implication counts; nil
	// selects telemetry.Default().
	Metrics *telemetry.Registry
}

// DefaultBacktracks bounds the search effort per fault.
const DefaultBacktracks = 10000

// Podem generates a test for the fault using the PODEM algorithm:
// branch-and-bound over view-input assignments only, with objectives
// backtraced from the fault site and D-frontier.
func Podem(c *logic.Circuit, view View, f fault.Fault, cfg PodemConfig) (Test, error) {
	return podemSearch(newSim5(c, view, f), cfg)
}

// PodemExtend runs the PODEM search for f on top of an existing test
// cube: base's assigned inputs are frozen (backtrace never revisits a
// non-X input) and only base's X positions are decision variables.
// This is the dynamic-compaction primitive — extending a deterministic
// test toward a secondary target without disturbing its primary
// detection. ErrUntestable here means only that no completion of base
// detects f, NOT that f is globally untestable.
func PodemExtend(c *logic.Circuit, view View, f fault.Fault, base Test, cfg PodemConfig) (Test, error) {
	if len(base.Values) != len(view.Inputs) {
		panic(fmt.Sprintf("atpg: base test width %d != view width %d", len(base.Values), len(view.Inputs)))
	}
	s := newSim5(c, view, f)
	copy(s.assign, base.Values)
	return podemSearch(s, cfg)
}

// podemSearch is the shared branch-and-bound loop. Inputs already
// assigned in s.assign are constants: backtrace refuses to return
// them, so decisions are made only over the remaining X positions.
func podemSearch(s *sim5, cfg PodemConfig) (Test, error) {
	maxBT := cfg.MaxBacktracks
	if maxBT <= 0 {
		maxBT = DefaultBacktracks
	}

	type decision struct {
		idx     int // index into view.Inputs
		val     logic.V
		flipped bool
	}
	var stack []decision
	backtracks := 0
	decisions, implications := 0, 0
	defer func() {
		// Flush once per fault: the search loop itself stays atomic-free.
		reg := telemetry.OrDefault(cfg.Metrics)
		reg.Counter("atpg.podem.decisions").Add(int64(decisions))
		reg.Counter("atpg.podem.backtracks").Add(int64(backtracks))
		reg.Counter("atpg.podem.implications").Add(int64(implications))
		reg.Counter("atpg.backtracks").Add(int64(backtracks))
	}()

	for {
		s.run()
		implications++
		if s.detected() {
			return s.test(), nil
		}
		obj, objVal, feasible := objective(s)
		if feasible {
			if idx, v, ok := backtrace(s, obj, objVal); ok {
				s.assign[idx] = v
				stack = append(stack, decision{idx: idx, val: v})
				decisions++
				continue
			}
			// No X path to an input: treat as a dead end.
		}
		// Backtrack.
		for {
			if len(stack) == 0 {
				return Test{}, ErrUntestable
			}
			top := &stack[len(stack)-1]
			if !top.flipped {
				top.flipped = true
				top.val = top.val.Not()
				s.assign[top.idx] = top.val
				backtracks++
				if backtracks > maxBT {
					return Test{}, ErrAborted
				}
				break
			}
			s.assign[top.idx] = logic.X
			stack = stack[:len(stack)-1]
		}
	}
}

// objective returns the next (net, value) goal: activate the fault if
// not yet activated, otherwise advance the D-frontier. feasible=false
// signals a provable dead end under the current assignment.
func objective(s *sim5) (net int, val logic.V, feasible bool) {
	site := s.f.Site(s.c)
	sv := s.siteValue()
	switch {
	case sv == logic.X:
		// Activate: drive the site to the complement of the stuck value.
		return site, s.f.SA.Not(), true
	case sv == s.f.SA:
		// Site pinned at the stuck value: no activation possible here.
		return 0, logic.X, false
	}
	// Activated: find a D-frontier gate with an X-path to an output.
	for _, id := range s.c.Order {
		g := &s.c.Gates[id]
		if s.vals[id] != logic.X {
			continue
		}
		hasD := false
		for _, src := range g.Fanin {
			if s.vals[src].IsError() {
				hasD = true
				break
			}
		}
		// A branch fault's injected D is invisible in vals: the faulted
		// gate itself is on the D-frontier once the site is activated.
		if !hasD && s.f.Pin != fault.Stem && id == s.f.Gate {
			hasD = true
		}
		if !hasD || !xPath(s, id) {
			continue
		}
		// Objective: set an X input to the non-controlling value.
		for pin, src := range g.Fanin {
			if s.vals[src] != logic.X {
				continue
			}
			if s.f.Pin != fault.Stem && id == s.f.Gate && pin == s.f.Pin {
				continue // the faulty branch itself is not settable
			}
			cv, has := g.Type.ControllingValue()
			want := logic.Zero
			if has {
				want = cv.Not()
			}
			return src, want, true
		}
	}
	return 0, logic.X, false
}

// xPath reports whether net can still reach an observable net through
// X-valued nets (the classical X-path check).
func xPath(s *sim5, net int) bool {
	for _, o := range s.view.Outputs {
		if o == net {
			return true
		}
	}
	for _, reader := range s.c.Fanout[net] {
		if !s.c.Gates[reader].Type.IsCombinational() {
			continue
		}
		if s.vals[reader] == logic.X && xPath(s, reader) {
			return true
		}
	}
	return false
}

// backtrace walks an objective back to an unassigned view input,
// flipping the target value through inverting gates. It returns the
// input index and value to try.
func backtrace(s *sim5, net int, val logic.V) (idx int, v logic.V, ok bool) {
	c := s.c
	for {
		if i, isIn := s.inIndex[net]; isIn {
			if s.assign[i] != logic.X {
				return 0, logic.X, false
			}
			return i, val, true
		}
		g := &c.Gates[net]
		if !g.Type.IsCombinational() || len(g.Fanin) == 0 {
			return 0, logic.X, false // uncontrollable source (const, unscanned DFF)
		}
		if g.Type.Inverting() {
			val = val.Not()
		}
		// Choose an X-valued fanin to pursue.
		next := -1
		for _, src := range g.Fanin {
			if s.vals[src] == logic.X {
				next = src
				break
			}
		}
		if next < 0 {
			return 0, logic.X, false
		}
		net = next
	}
}
