package atpg

import (
	"dft/internal/fault"
	"dft/internal/logic"
	"dft/internal/telemetry"
)

// DAlg generates a test with Roth's D-algorithm: unlike PODEM it makes
// decisions on internal nets, maintaining a D-frontier (gates through
// which the fault effect may still advance) and a J-frontier (internal
// assignments awaiting justification by input assignments).
//
// The implementation keeps the decision state as a partial assignment
// over all nets. Consistency is checked by five-valued forward
// simulation with the fault injected: a net whose simulated value is
// known must agree with its assignment.
func DAlg(c *logic.Circuit, view View, f fault.Fault, cfg PodemConfig) (Test, error) {
	maxBT := cfg.MaxBacktracks
	if maxBT <= 0 {
		maxBT = DefaultBacktracks
	}
	d := &dalg{
		s:      newSim5(c, view, f),
		c:      c,
		f:      f,
		budget: maxBT,
	}
	defer func() {
		// Flush once per fault: the search itself stays atomic-free.
		reg := telemetry.OrDefault(cfg.Metrics)
		reg.Counter("atpg.dalg.decisions").Add(int64(d.decisions))
		reg.Counter("atpg.dalg.backtracks").Add(int64(d.backtracks))
		reg.Counter("atpg.dalg.implications").Add(int64(d.implications))
		reg.Counter("atpg.backtracks").Add(int64(d.backtracks))
	}()
	// Seed: activate the fault by requiring the site at NOT(SA).
	site := f.Site(c)
	asg := assignment{}
	asg[site] = f.SA.Not()
	ok, aborted := d.search(asg)
	if aborted {
		return Test{}, ErrAborted
	}
	if !ok {
		return Test{}, ErrUntestable
	}
	return d.found, nil
}

// assignment maps nets to required good-machine values.
type assignment map[int]logic.V

func (a assignment) clone() assignment {
	b := make(assignment, len(a)+4)
	for k, v := range a {
		b[k] = v
	}
	return b
}

type dalg struct {
	s       *sim5
	c       *logic.Circuit
	f       fault.Fault
	budget  int
	found   Test
	pending []int // assigned nets not yet produced by simulation

	// Search-effort counters, flushed to telemetry once per fault:
	// decisions = search nodes entered, implications = forward
	// simulation passes, backtracks = alternatives that failed.
	decisions    int
	implications int
	backtracks   int
}

// effective returns the value of a net under the current simulation
// (which already overlays assumed values), falling back to the
// assignment for nets simulation still reports as X.
func (d *dalg) effective(asg assignment, net int) logic.V {
	if v := d.s.vals[net]; v != logic.X {
		return v
	}
	if v, ok := asg[net]; ok {
		return v
	}
	return logic.X
}

// simulate performs a five-valued forward pass in which assumed
// assignments act as values on nets whose computed value is still X —
// this is how D-algorithm decisions on internal lines take effect
// before they are justified. A net whose computed value contradicts
// its assignment (comparing good-machine projections) is a conflict.
// Assignments not yet produced by computation are collected into
// d.pending (the J-frontier).
func (d *dalg) simulate(asg assignment) bool {
	s := d.s
	c := d.c
	d.implications++
	d.pending = d.pending[:0]
	for i := range s.assign {
		s.assign[i] = logic.X
	}
	for net, v := range asg {
		if i, ok := s.inIndex[net]; ok {
			s.assign[i] = v
		}
	}
	// Source elements.
	for i, n := range s.view.Inputs {
		s.vals[n] = s.assign[i]
	}
	for _, n := range c.PIs {
		if !s.isIn[n] {
			s.vals[n] = logic.X
		}
	}
	for _, n := range c.DFFs {
		if !s.isIn[n] {
			s.vals[n] = logic.X
		}
	}
	overlay := func(id int) bool {
		// Returns false on conflict.
		raw := s.vals[id]
		want, assigned := asg[id]
		if assigned {
			if raw == logic.X {
				if _, isIn := s.inIndex[id]; !isIn {
					d.pending = append(d.pending, id)
					s.vals[id] = want
				}
			} else if raw.Good() != want {
				return false
			}
		}
		return true
	}
	for _, n := range c.PIs {
		if !overlay(n) {
			return false
		}
	}
	for _, n := range c.DFFs {
		if !overlay(n) {
			return false
		}
	}
	if s.f.Pin == fault.Stem && !c.Gates[s.f.Gate].Type.IsCombinational() {
		s.vals[s.f.Gate] = inject(s.vals[s.f.Gate], s.f.SA)
	}
	for _, id := range c.Order {
		g := &c.Gates[id]
		in := s.scratch[:len(g.Fanin)]
		for i, src := range g.Fanin {
			in[i] = s.vals[src]
		}
		if s.f.Pin != fault.Stem && s.f.Gate == id {
			in[s.f.Pin] = inject(in[s.f.Pin], s.f.SA)
		}
		v := g.Type.Eval(in)
		s.vals[id] = v
		if !overlay(id) {
			return false
		}
		if s.f.Pin == fault.Stem && s.f.Gate == id {
			s.vals[id] = inject(s.vals[id], s.f.SA)
		}
	}
	return true
}

// search is the recursive D-algorithm core.
func (d *dalg) search(asg assignment) (ok, aborted bool) {
	if d.budget <= 0 {
		return false, true
	}
	d.budget--
	d.decisions++
	if !d.simulate(asg) {
		return false, false
	}
	if d.s.detected() {
		// Justify any remaining unjustified assignments.
		if j, found := d.unjustified(asg); found {
			return d.justify(asg, j)
		}
		d.found = d.s.test()
		return true, false
	}
	// If the site can no longer be activated, fail.
	if sv := d.s.siteValue(); sv == d.f.SA {
		return false, false
	}
	// Advance the D-frontier if the fault is (or can be) active.
	gates := d.dFrontier(asg)
	if len(gates) == 0 {
		// Maybe activation itself is pending justification.
		if j, found := d.unjustified(asg); found {
			return d.justify(asg, j)
		}
		return false, false
	}
	for _, id := range gates {
		// Child searches overwrite the shared simulation; restore the
		// valuation of THIS node's assignment before reading it.
		if !d.simulate(asg) {
			return false, false
		}
		g := &d.c.Gates[id]
		// Collect the X side-inputs to assign.
		var freePins []int
		for pin, src := range g.Fanin {
			if d.f.Pin != fault.Stem && id == d.f.Gate && pin == d.f.Pin {
				continue
			}
			if d.effective(asg, src) == logic.X {
				freePins = append(freePins, pin)
			}
		}
		cv, hasCtl := g.Type.ControllingValue()
		if hasCtl {
			// AND/OR-class: side inputs are forced non-controlling.
			next := asg.clone()
			for _, pin := range freePins {
				next[g.Fanin[pin]] = cv.Not()
			}
			ok, ab := d.search(next)
			if ok || ab {
				return ok, ab
			}
			d.backtracks++
			continue
		}
		// XOR-class: any known side values propagate, but which values
		// are justifiable (and how the D emerges) depends on the
		// choice — enumerate the combinations (bounded).
		k := len(freePins)
		if k > 6 {
			k = 6
		}
		for m := 0; m < 1<<uint(k); m++ {
			next := asg.clone()
			for b := 0; b < k; b++ {
				v := logic.Zero
				if m>>uint(b)&1 == 1 {
					v = logic.One
				}
				next[g.Fanin[freePins[b]]] = v
			}
			ok, ab := d.search(next)
			if ok || ab {
				return ok, ab
			}
			d.backtracks++
		}
	}
	return false, false
}

// dFrontier lists gates whose output is X and which have a fault
// effect on some input (including the injected branch of the faulted
// gate).
func (d *dalg) dFrontier(asg assignment) []int {
	var out []int
	for _, id := range d.c.Order {
		if d.s.vals[id] != logic.X {
			continue
		}
		g := &d.c.Gates[id]
		hasD := false
		for _, src := range g.Fanin {
			if d.s.vals[src].IsError() {
				hasD = true
				break
			}
		}
		if !hasD && d.f.Pin != fault.Stem && id == d.f.Gate &&
			d.s.siteValue() == d.f.SA.Not() {
			hasD = true
		}
		if !hasD && d.f.Pin == fault.Stem && id == d.f.Gate {
			// Stem fault at a gate: it is its own frontier until its
			// good value is justified to NOT(SA).
			hasD = d.s.siteValue() != d.f.SA
		}
		if hasD && xPath(d.s, id) {
			out = append(out, id)
		}
	}
	return out
}

// unjustified picks the deepest assumed net that simulation has not
// yet produced (collected by the last simulate pass).
func (d *dalg) unjustified(asg assignment) (int, bool) {
	best, bestLevel := -1, -1
	for _, net := range d.pending {
		if d.c.Level[net] > bestLevel {
			best, bestLevel = net, d.c.Level[net]
		}
	}
	return best, best >= 0
}

// justify tries the alternative input assignments that produce the
// required value at net (the J-frontier step).
func (d *dalg) justify(asg assignment, net int) (ok, aborted bool) {
	want := asg[net]
	g := &d.c.Gates[net]
	if !g.Type.IsCombinational() || len(g.Fanin) == 0 {
		return false, false // const or storage: cannot justify
	}
	choices := justifyChoices(g.Type, len(g.Fanin), want)
	for _, choice := range choices {
		// Restore this node's valuation (child searches clobber it)
		// before consulting effective values for the pre-check.
		if !d.simulate(asg) {
			return false, false
		}
		next := asg.clone()
		consistent := true
		for pin, v := range choice {
			if v == logic.X {
				continue
			}
			src := g.Fanin[pin]
			if cur := d.effective(next, src); cur != logic.X && cur.Good() != v {
				consistent = false
				break
			}
			next[src] = v
		}
		if !consistent {
			continue
		}
		ok, ab := d.search(next)
		if ok || ab {
			return ok, ab
		}
		d.backtracks++
	}
	return false, false
}

// justifyChoices enumerates the minimal input cubes producing value
// want at a gate of the given type (the gate's "singular cover").
func justifyChoices(t logic.GateType, n int, want logic.V) [][]logic.V {
	cube := func(fill logic.V) []logic.V {
		c := make([]logic.V, n)
		for i := range c {
			c[i] = fill
		}
		return c
	}
	oneHot := func(pos int, v logic.V) []logic.V {
		c := cube(logic.X)
		c[pos] = v
		return c
	}
	var out [][]logic.V
	switch t {
	case logic.Buf:
		out = append(out, []logic.V{want})
	case logic.Not:
		out = append(out, []logic.V{want.Not()})
	case logic.And, logic.Nand:
		high := want == logic.One
		if t == logic.Nand {
			high = !high
		}
		if high {
			out = append(out, cube(logic.One))
		} else {
			for i := 0; i < n; i++ {
				out = append(out, oneHot(i, logic.Zero))
			}
		}
	case logic.Or, logic.Nor:
		high := want == logic.One
		if t == logic.Nor {
			high = !high
		}
		if high {
			for i := 0; i < n; i++ {
				out = append(out, oneHot(i, logic.One))
			}
		} else {
			out = append(out, cube(logic.Zero))
		}
	case logic.Xor, logic.Xnor:
		// Enumerate all input combinations with the right parity.
		wantOdd := want == logic.One
		if t == logic.Xnor {
			wantOdd = !wantOdd
		}
		for m := 0; m < 1<<uint(n); m++ {
			ones := 0
			c := make([]logic.V, n)
			for i := 0; i < n; i++ {
				if m>>uint(i)&1 == 1 {
					c[i] = logic.One
					ones++
				} else {
					c[i] = logic.Zero
				}
			}
			if (ones%2 == 1) == wantOdd {
				out = append(out, c)
			}
		}
	}
	return out
}
