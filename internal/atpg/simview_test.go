package atpg

import (
	"context"
	"testing"

	"dft/internal/fault"
	"dft/internal/logic"
)

// mustSimView grades faults under an ATPG view through the engine's
// Options surface, failing the test on error.
func mustSimView(t *testing.T, c *logic.Circuit, view View, faults []fault.Fault, pats [][]bool) *fault.Result {
	t.Helper()
	res, err := simView(c, view, faults, pats)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// simViewQuick is mustSimView for quick.Check properties, which have
// no *testing.T in scope; engine errors are structural bugs, so panic.
func simViewQuick(c *logic.Circuit, view View, faults []fault.Fault, pats [][]bool) *fault.Result {
	res, err := simView(c, view, faults, pats)
	if err != nil {
		panic(err)
	}
	return res
}

func simView(c *logic.Circuit, view View, faults []fault.Fault, pats [][]bool) (*fault.Result, error) {
	return fault.Simulate(context.Background(), c, faults, pats, fault.Options{
		Backend: fault.BackendParallel,
		View:    fault.View{Inputs: view.Inputs, Outputs: view.Outputs},
	})
}
