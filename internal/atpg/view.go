// Package atpg implements the test-generation algorithms the paper
// builds on: the D-algorithm (Roth [93]), PODEM, and random / weighted /
// adaptive-random pattern generation ([87],[95],[98]), plus test-set
// compaction and a driver that combines deterministic generation with
// fault-simulation-based dropping.
//
// All algorithms run against a View, which abstracts what the tester
// can control and observe. For a combinational circuit the view is the
// primary inputs/outputs; for a full-scan (LSSD, Scan Path, Random-
// Access Scan) design the flip-flops join the view on both sides —
// that single change is how the structured techniques "reduce the test
// generation problem to one of generating tests for combinational
// logic".
package atpg

import (
	"fmt"

	"dft/internal/fault"
	"dft/internal/logic"
)

// View lists the nets test generation may control and observe.
type View struct {
	Inputs  []int // controllable element nets (Input or DFF elements)
	Outputs []int // observable nets
}

// PrimaryView is the view of a tester at the package pins only.
func PrimaryView(c *logic.Circuit) View {
	return View{
		Inputs:  append([]int(nil), c.PIs...),
		Outputs: append([]int(nil), c.POs...),
	}
}

// FullScanView models a scan design: every flip-flop is directly
// controllable (scan-in) and its D input directly observable
// (scan-out), in addition to the primary pins.
func FullScanView(c *logic.Circuit) View {
	v := PrimaryView(c)
	for _, d := range c.DFFs {
		v.Inputs = append(v.Inputs, d)
		v.Outputs = append(v.Outputs, c.Gates[d].Fanin[0])
	}
	return v
}

// PartialScanView exposes only the listed flip-flops, modeling Scan/Set
// style partial observability/controllability.
func PartialScanView(c *logic.Circuit, scanned []int) View {
	v := PrimaryView(c)
	inScan := map[int]bool{}
	for _, d := range scanned {
		inScan[d] = true
	}
	for _, d := range c.DFFs {
		if inScan[d] {
			v.Inputs = append(v.Inputs, d)
			v.Outputs = append(v.Outputs, c.Gates[d].Fanin[0])
		}
	}
	return v
}

// Test is one generated test: values for each View input, in order.
// Unassigned positions hold logic.X and may be filled arbitrarily.
type Test struct {
	Values []logic.V
}

// Filled returns a copy with X positions replaced by fill.
func (t Test) Filled(fill logic.V) []logic.V {
	out := make([]logic.V, len(t.Values))
	for i, v := range t.Values {
		if v == logic.X {
			out[i] = fill
		} else {
			out[i] = v
		}
	}
	return out
}

// Bools converts a fully specified test to booleans, filling X with
// false.
func (t Test) Bools() []bool {
	out := make([]bool, len(t.Values))
	for i, v := range t.Values {
		out[i] = v == logic.One
	}
	return out
}

// String renders the cube in 01X notation.
func (t Test) String() string {
	b := make([]byte, len(t.Values))
	for i, v := range t.Values {
		switch v {
		case logic.Zero:
			b[i] = '0'
		case logic.One:
			b[i] = '1'
		default:
			b[i] = 'X'
		}
	}
	return string(b)
}

// sim5 is a five-valued full-circuit simulator with one injected fault,
// evaluating from a partial assignment on the view inputs.
type sim5 struct {
	c       *logic.Circuit
	view    View
	f       fault.Fault
	vals    []logic.V
	assign  []logic.V // per view-input assignment (X = free)
	inIndex map[int]int
	isIn    []bool
	scratch []logic.V
}

func newSim5(c *logic.Circuit, view View, f fault.Fault) *sim5 {
	s := &sim5{
		c:       c,
		view:    view,
		f:       f,
		vals:    make([]logic.V, c.NumNets()),
		assign:  make([]logic.V, len(view.Inputs)),
		inIndex: make(map[int]int, len(view.Inputs)),
		isIn:    make([]bool, c.NumNets()),
		scratch: make([]logic.V, c.MaxFanin()),
	}
	for i, n := range view.Inputs {
		s.inIndex[n] = i
		s.isIn[n] = true
		s.assign[i] = logic.X
	}
	return s
}

// inject maps a good-machine value to the five-valued fault-effect
// value for a stuck-at-sa site.
func inject(good logic.V, sa logic.V) logic.V {
	switch good.Good() {
	case logic.X:
		return logic.X
	case logic.One:
		if sa == logic.Zero {
			return logic.D
		}
		return logic.One
	default: // Zero
		if sa == logic.One {
			return logic.Dbar
		}
		return logic.Zero
	}
}

// run performs a full forward pass with the current assignment and
// fault injection; afterwards s.vals holds every net's value.
func (s *sim5) run() {
	c := s.c
	for i, n := range s.view.Inputs {
		s.vals[n] = s.assign[i]
	}
	for _, n := range c.PIs {
		if !s.isIn[n] {
			s.vals[n] = logic.X
		}
	}
	for _, n := range c.DFFs {
		if !s.isIn[n] {
			s.vals[n] = logic.X // unscanned storage is unknown
		}
	}
	// Stem fault at a source element.
	if s.f.Pin == fault.Stem && !c.Gates[s.f.Gate].Type.IsCombinational() {
		s.vals[s.f.Gate] = inject(s.vals[s.f.Gate], s.f.SA)
	}
	for _, id := range c.Order {
		g := &c.Gates[id]
		in := s.scratch[:len(g.Fanin)]
		for i, src := range g.Fanin {
			in[i] = s.vals[src]
		}
		if s.f.Pin != fault.Stem && s.f.Gate == id {
			in[s.f.Pin] = inject(in[s.f.Pin], s.f.SA)
		}
		v := g.Type.Eval(in)
		if s.f.Pin == fault.Stem && s.f.Gate == id {
			v = inject(v, s.f.SA)
		}
		s.vals[id] = v
	}
}

// detected reports whether a fault effect reaches an observable net.
func (s *sim5) detected() bool {
	for _, o := range s.view.Outputs {
		if s.vals[o].IsError() {
			return true
		}
	}
	return false
}

// siteValue returns the pre-injection (good-machine) value at the
// fault site.
func (s *sim5) siteValue() logic.V {
	return s.vals[s.f.Site(s.c)].Good()
}

// test converts the current assignment into a Test cube.
func (s *sim5) test() Test {
	return Test{Values: append([]logic.V(nil), s.assign...)}
}

// Verify checks that a test cube detects the fault under the view
// (with X inputs left unknown). It is used by tests and by the driver
// as a paranoia check on generated cubes.
func Verify(c *logic.Circuit, view View, f fault.Fault, t Test) bool {
	if len(t.Values) != len(view.Inputs) {
		panic(fmt.Sprintf("atpg: test width %d != view width %d", len(t.Values), len(view.Inputs)))
	}
	s := newSim5(c, view, f)
	copy(s.assign, t.Values)
	s.run()
	return s.detected()
}
