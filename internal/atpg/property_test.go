package atpg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dft/internal/circuits"
	"dft/internal/fault"
)

// TestPropertyPodemTestsVerify: on random circuits, every cube PODEM
// returns detects its target fault, and ErrUntestable is only declared
// for faults that 64 random patterns also fail to detect (a cheap
// smoke check against false redundancy claims).
func TestPropertyPodemTestsVerify(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := circuits.RandomCircuit(rng, 6, 30, 3, 3)
		view := PrimaryView(c)
		u := fault.Universe(c)
		for _, fl := range u {
			cube, err := Podem(c, view, fl, PodemConfig{MaxBacktracks: 5000})
			switch err {
			case nil:
				if !Verify(c, view, fl, cube) {
					return false
				}
			case ErrUntestable:
				for trial := 0; trial < 64; trial++ {
					p := make([]bool, len(c.PIs))
					for i := range p {
						p[i] = rng.Intn(2) == 1
					}
					if fault.DetectsCombinational(c, p, fl) {
						return false // declared redundant but detectable
					}
				}
			default:
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestPropertyEnginesAgreeOnTestability: PODEM and the D-algorithm
// must agree on which faults are testable (their cubes may differ).
func TestPropertyEnginesAgreeOnTestability(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := circuits.RandomCircuit(rng, 5, 18, 2, 3)
		view := PrimaryView(c)
		u := fault.Universe(c)
		for _, fl := range u {
			_, e1 := Podem(c, view, fl, PodemConfig{MaxBacktracks: 20000})
			_, e2 := DAlg(c, view, fl, PodemConfig{MaxBacktracks: 20000})
			if e1 == ErrAborted || e2 == ErrAborted {
				continue // bounded search: no claim
			}
			if (e1 == nil) != (e2 == nil) {
				t.Logf("seed %d: fault %s: podem=%v dalg=%v", seed, fl.Name(c), e1, e2)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Compaction coverage-preservation properties moved to
// internal/compact (which owns the compaction engine now) — see
// compact's property and fuzzdiff CheckCompaction tests.

// TestPropertyDominanceTargetsSuffice: generating tests only for the
// dominance-reduced target list still detects the dropped (dominating)
// faults — the definition of dominance.
func TestPropertyDominanceTargetsSuffice(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := circuits.RandomCircuit(rng, 8, 40, 4, 4)
		cl := fault.CollapseEquiv(c, fault.Universe(c))
		dom := fault.CollapseDominance(c, cl.Reps)
		if len(dom) == len(cl.Reps) {
			return true // nothing reduced; vacuous
		}
		view := PrimaryView(c)
		res := Generate(c, view, dom, Config{Engine: EnginePodem, RandomSeed: seed})
		// Grade the FULL collapsed list with the dominance-targeted set.
		full := simViewQuick(c, view, cl.Reps, res.Patterns)
		reduced := simViewQuick(c, view, dom, res.Patterns)
		// Every fault detectable in the reduced run must come with the
		// dominating faults for free: full coverage count can only be
		// at least the reduced one plus the dropped-but-dominated set
		// that had a detected dominee. Weak but useful check: the full
		// list's coverage ratio must not fall below the reduced one by
		// more than the genuinely-undetected share.
		return full.Coverage() >= reduced.Coverage()*float64(len(dom))/float64(len(cl.Reps))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
