package atpg

import (
	"dft/internal/fault"
	"dft/internal/logic"
)

// MultiFault is a set of stuck-at sites that belong to one physical
// defect — the situation time-frame expansion creates, where a single
// fault appears once per frame of the unrolled circuit. All sites
// share one polarity semantics: each site is stuck independently at
// its own SA value, and the "faulty machine" carries all of them.
type MultiFault []fault.Fault

// msim is the multi-site five-valued simulator: sim5 generalized to a
// set of injection sites.
type msim struct {
	c       *logic.Circuit
	view    View
	fs      MultiFault
	stemSrc map[int]logic.V         // source-element stem injections
	stemGat map[int]logic.V         // combinational-gate stem injections
	branch  map[int]map[int]logic.V // gate -> pin -> sa
	vals    []logic.V
	assign  []logic.V
	inIndex map[int]int
	isIn    []bool
	scratch []logic.V
}

func newMsim(c *logic.Circuit, view View, fs MultiFault) *msim {
	s := &msim{
		c:       c,
		view:    view,
		fs:      fs,
		stemSrc: map[int]logic.V{},
		stemGat: map[int]logic.V{},
		branch:  map[int]map[int]logic.V{},
		vals:    make([]logic.V, c.NumNets()),
		assign:  make([]logic.V, len(view.Inputs)),
		inIndex: make(map[int]int, len(view.Inputs)),
		isIn:    make([]bool, c.NumNets()),
		scratch: make([]logic.V, c.MaxFanin()),
	}
	for i, n := range view.Inputs {
		s.inIndex[n] = i
		s.isIn[n] = true
		s.assign[i] = logic.X
	}
	for _, f := range fs {
		if f.Pin == fault.Stem {
			if c.Gates[f.Gate].Type.IsCombinational() {
				s.stemGat[f.Gate] = f.SA
			} else {
				s.stemSrc[f.Gate] = f.SA
			}
		} else {
			m := s.branch[f.Gate]
			if m == nil {
				m = map[int]logic.V{}
				s.branch[f.Gate] = m
			}
			m[f.Pin] = f.SA
		}
	}
	return s
}

func (s *msim) run() {
	c := s.c
	for i, n := range s.view.Inputs {
		s.vals[n] = s.assign[i]
	}
	for _, n := range c.PIs {
		if !s.isIn[n] {
			s.vals[n] = logic.X
		}
	}
	for _, n := range c.DFFs {
		if !s.isIn[n] {
			s.vals[n] = logic.X
		}
	}
	for n, sa := range s.stemSrc {
		s.vals[n] = inject(s.vals[n], sa)
	}
	for _, id := range c.Order {
		g := &c.Gates[id]
		in := s.scratch[:len(g.Fanin)]
		for i, src := range g.Fanin {
			in[i] = s.vals[src]
		}
		if m, ok := s.branch[id]; ok {
			for pin, sa := range m {
				in[pin] = inject(in[pin], sa)
			}
		}
		v := g.Type.Eval(in)
		if sa, ok := s.stemGat[id]; ok {
			v = inject(v, sa)
		}
		s.vals[id] = v
	}
}

func (s *msim) detected() bool {
	for _, o := range s.view.Outputs {
		if s.vals[o].IsError() {
			return true
		}
	}
	return false
}

// siteStates classifies activation across the sites: anyX (some site
// could still activate) and anyActive (some site already carries an
// error).
func (s *msim) siteStates() (anyX, anyActive bool) {
	for _, f := range s.fs {
		good := s.vals[f.Site(s.c)].Good()
		switch {
		case good == logic.X:
			anyX = true
		case good != f.SA:
			anyActive = true
		}
	}
	return
}

// PodemMulti generates a single test cube detecting the multi-site
// fault, using the PODEM search over view inputs. The semantics match
// Podem exactly when the set has one site.
func PodemMulti(c *logic.Circuit, view View, fs MultiFault, cfg PodemConfig) (Test, error) {
	maxBT := cfg.MaxBacktracks
	if maxBT <= 0 {
		maxBT = DefaultBacktracks
	}
	s := newMsim(c, view, fs)

	type decision struct {
		idx     int
		val     logic.V
		flipped bool
	}
	var stack []decision
	backtracks := 0

	for {
		s.run()
		if s.detected() {
			return Test{Values: append([]logic.V(nil), s.assign...)}, nil
		}
		obj, objVal, feasible := s.objective()
		if feasible {
			if idx, v, ok := s.backtrace(obj, objVal); ok {
				s.assign[idx] = v
				stack = append(stack, decision{idx: idx, val: v})
				continue
			}
		}
		for {
			if len(stack) == 0 {
				return Test{}, ErrUntestable
			}
			top := &stack[len(stack)-1]
			if !top.flipped {
				top.flipped = true
				top.val = top.val.Not()
				s.assign[top.idx] = top.val
				backtracks++
				if backtracks > maxBT {
					return Test{}, ErrAborted
				}
				break
			}
			s.assign[top.idx] = logic.X
			stack = stack[:len(stack)-1]
		}
	}
}

func (s *msim) objective() (net int, val logic.V, feasible bool) {
	anyX, anyActive := s.siteStates()
	if !anyActive {
		if !anyX {
			return 0, logic.X, false // every site pinned at its stuck value
		}
		// Activate the first still-open site.
		for _, f := range s.fs {
			site := f.Site(s.c)
			if s.vals[site].Good() == logic.X {
				return site, f.SA.Not(), true
			}
		}
		return 0, logic.X, false
	}
	// Advance the D-frontier.
	for _, id := range s.c.Order {
		g := &s.c.Gates[id]
		if s.vals[id] != logic.X {
			continue
		}
		hasD := false
		for _, src := range g.Fanin {
			if s.vals[src].IsError() {
				hasD = true
				break
			}
		}
		if !hasD {
			if m, ok := s.branch[id]; ok {
				for pin, sa := range m {
					src := g.Fanin[pin]
					if s.vals[src].Good() != logic.X && s.vals[src].Good() != sa {
						hasD = true
						break
					}
				}
			}
		}
		if !hasD || !s.xPath(id) {
			continue
		}
		for pin, src := range g.Fanin {
			if s.vals[src] != logic.X {
				continue
			}
			if m, ok := s.branch[id]; ok {
				if _, isFaultPin := m[pin]; isFaultPin {
					continue
				}
			}
			cv, has := g.Type.ControllingValue()
			want := logic.Zero
			if has {
				want = cv.Not()
			}
			return src, want, true
		}
	}
	return 0, logic.X, false
}

func (s *msim) xPath(net int) bool {
	for _, o := range s.view.Outputs {
		if o == net {
			return true
		}
	}
	for _, reader := range s.c.Fanout[net] {
		if !s.c.Gates[reader].Type.IsCombinational() {
			continue
		}
		if s.vals[reader] == logic.X && s.xPath(reader) {
			return true
		}
	}
	return false
}

func (s *msim) backtrace(net int, val logic.V) (idx int, v logic.V, ok bool) {
	c := s.c
	for {
		if i, isIn := s.inIndex[net]; isIn {
			if s.assign[i] != logic.X {
				return 0, logic.X, false
			}
			return i, val, true
		}
		g := &c.Gates[net]
		if !g.Type.IsCombinational() || len(g.Fanin) == 0 {
			return 0, logic.X, false
		}
		if g.Type.Inverting() {
			val = val.Not()
		}
		next := -1
		for _, src := range g.Fanin {
			if s.vals[src] == logic.X {
				next = src
				break
			}
		}
		if next < 0 {
			return 0, logic.X, false
		}
		net = next
	}
}

// VerifyMulti checks that a test cube detects the multi-site fault.
func VerifyMulti(c *logic.Circuit, view View, fs MultiFault, t Test) bool {
	s := newMsim(c, view, fs)
	copy(s.assign, t.Values)
	s.run()
	return s.detected()
}
