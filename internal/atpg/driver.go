package atpg

import (
	"context"
	"math/rand"
	"strconv"
	"time"

	"dft/internal/fault"
	"dft/internal/logic"
	"dft/internal/telemetry"
)

// Engine selects the deterministic test-generation algorithm.
type Engine int

const (
	EnginePodem Engine = iota
	EngineDAlg
)

// GenerateResult reports a full ATPG run.
type GenerateResult struct {
	Tests      []Test
	Patterns   [][]bool // fully-specified test vectors, X filled
	Detected   []bool   // per fault in the collapsed target list
	Untestable []fault.Fault
	Aborted    []fault.Fault
	Coverage   float64 // detected / (targets - untestable): testable coverage
	RawCover   float64 // detected / targets
	Elapsed    time.Duration
}

// Config controls the ATPG driver.
type Config struct {
	Engine        Engine
	MaxBacktracks int
	RandomSeed    int64
	// RandomFirst applies this many random patterns (with fault
	// dropping) before any deterministic generation; 0 disables.
	RandomFirst int
	// Rand, when non-nil, is the injected random source for the
	// random-first phase and X-fill. When nil, Generate derives a
	// private source from RandomSeed, so either way a run never touches
	// shared global random state and a fixed seed reproduces exactly.
	Rand *rand.Rand
	// Workers is the fault-simulation sharding degree, with the same
	// meaning as fault.Options.Workers: 0 selects GOMAXPROCS. Detection
	// outcomes are identical for every worker count.
	Workers int
	// Dynamic enables dynamic compaction: after each deterministic
	// test, the driver extends the cube toward further undetected
	// targets with PodemExtend before X-fill, so one pattern carries
	// several faults' worth of care bits.
	Dynamic bool
	// Metrics receives the run's telemetry; nil selects
	// telemetry.Default().
	Metrics *telemetry.Registry
}

// Generate runs the classical ATPG flow over the collapsed fault list:
// optional random-pattern phase, then one deterministic test per
// remaining fault, fault-simulating every new test against the
// remaining faults so each test is credited with everything it catches.
func Generate(c *logic.Circuit, view View, targets []fault.Fault, cfg Config) *GenerateResult {
	res, _ := GenerateContext(context.Background(), c, view, targets, cfg)
	return res
}

// GenerateContext is Generate under a context: the deadline/cancel
// path shared by the dftc -timeout flag and the dftd job runner. The
// context is polled between random-pattern blocks and between
// deterministic targets — the units of work a caller can reason about
// — so an expired deadline stops the run within one fault's worth of
// search. On cancellation it returns (nil, ctx.Err()); a completed
// run returns (result, nil).
func GenerateContext(ctx context.Context, c *logic.Circuit, view View, targets []fault.Fault, cfg Config) (*GenerateResult, error) {
	start := time.Now()
	reg := telemetry.OrDefault(cfg.Metrics)
	// Span instead of a bare timer: End still observes the
	// atpg.generate timer, and the span parents the per-phase children
	// below in the job trace.
	ctx, genSpan := telemetry.StartSpanCtx(ctx, reg, "atpg.generate")
	genSpan.SetAttr("targets", strconv.Itoa(len(targets)))
	defer genSpan.End()
	reg.Counter("atpg.faults.targeted").Add(int64(len(targets)))
	// Progress counts targets resolved by the deterministic loop
	// (generated, skipped as already-detected, untestable or aborted),
	// so done reaches total exactly when the run completes.
	prog := reg.Progress("atpg.faults.progress")
	prog.AddTotal(int64(len(targets)))
	rng := cfg.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(cfg.RandomSeed + 1))
	}
	res := &GenerateResult{Detected: make([]bool, len(targets))}
	h := newHarness(c, view, targets, cfg.Workers, reg)

	if cfg.RandomFirst > 0 {
		rctx, randSpan := telemetry.StartSpanCtx(ctx, reg, "atpg.random")
		applied := 0
		for applied < cfg.RandomFirst && h.remaining() > 0 {
			if err := rctx.Err(); err != nil {
				reg.Counter("atpg.cancelled").Inc()
				randSpan.End()
				return nil, err
			}
			block := make([][]bool, 0, 64)
			for k := 0; k < 64 && applied+len(block) < cfg.RandomFirst; k++ {
				p := make([]bool, len(view.Inputs))
				for i := range p {
					p[i] = rng.Intn(2) == 1
				}
				block = append(block, p)
			}
			for _, p := range h.applyBlock(block, res.Detected) {
				res.Patterns = append(res.Patterns, p)
				tv := make([]logic.V, len(p))
				for i, b := range p {
					tv[i] = logic.FromBool(b)
				}
				res.Tests = append(res.Tests, Test{Values: tv})
			}
			applied += len(block)
		}
		reg.Counter("atpg.random.patterns").Add(int64(applied))
		randSpan.SetAttr("patterns", strconv.Itoa(applied))
		randSpan.End()
	}

	pcfg := PodemConfig{MaxBacktracks: cfg.MaxBacktracks, Metrics: cfg.Metrics}
	engineTimer := reg.Timer("atpg.engine.podem")
	if cfg.Engine == EngineDAlg {
		engineTimer = reg.Timer("atpg.engine.dalg")
	}
	gen := func(f fault.Fault) (Test, error) {
		defer engineTimer.Time()()
		if cfg.Engine == EngineDAlg {
			return DAlg(c, view, f, pcfg)
		}
		return Podem(c, view, f, pcfg)
	}

	dctx, detSpan := telemetry.StartSpanCtx(ctx, reg, "atpg.deterministic")
	defer detSpan.End()
	for fi, f := range targets {
		prog.Inc()
		if res.Detected[fi] {
			continue
		}
		if err := dctx.Err(); err != nil {
			reg.Counter("atpg.cancelled").Inc()
			return nil, err
		}
		t, err := gen(f)
		switch err {
		case nil:
		case ErrUntestable:
			res.Untestable = append(res.Untestable, f)
			continue
		default:
			res.Aborted = append(res.Aborted, f)
			continue
		}
		if cfg.Dynamic {
			t = dynamicExtend(c, view, targets, res.Detected, fi, t, reg)
		}
		// Fill X positions randomly: free fault coverage.
		full := make([]bool, len(t.Values))
		for i, v := range t.Values {
			switch v {
			case logic.One:
				full[i] = true
			case logic.Zero:
				full[i] = false
			default:
				full[i] = rng.Intn(2) == 1
			}
		}
		res.Tests = append(res.Tests, t)
		res.Patterns = append(res.Patterns, full)
		h.applyBlock([][]bool{full}, res.Detected)
		if !res.Detected[fi] {
			// The filled vector must detect its target; a miss means the
			// generator and simulator disagree — fail loudly in tests.
			res.Aborted = append(res.Aborted, f)
		}
	}

	caught := 0
	for _, d := range res.Detected {
		if d {
			caught++
		}
	}
	res.RawCover = float64(caught) / float64(len(targets))
	testable := len(targets) - len(res.Untestable)
	if testable > 0 {
		res.Coverage = float64(caught) / float64(testable)
	}
	res.Elapsed = time.Since(start)
	reg.Counter("atpg.faults.detected").Add(int64(caught))
	reg.Counter("atpg.faults.untestable").Add(int64(len(res.Untestable)))
	reg.Counter("atpg.faults.aborted").Add(int64(len(res.Aborted)))
	reg.Histogram("atpg.patterns_per_run").Observe(int64(len(res.Patterns)))
	genSpan.SetAttr("detected", strconv.Itoa(caught))
	genSpan.SetAttr("aborted", strconv.Itoa(len(res.Aborted)))
	return res, nil
}

// Dynamic compaction budget: each successful test tries at most
// dynamicTargets further undetected faults, each with a small
// backtrack allowance — a failed extension must stay cheap because the
// fault gets its own deterministic shot later anyway.
const (
	dynamicTargets    = 32
	dynamicBacktracks = 64
)

// dynamicExtend grows a freshly generated cube toward secondary
// targets: undetected faults after fi are attempted with PodemExtend
// on the accumulated cube, adopting each successful extension. The
// base cube's care bits are frozen throughout (backtrace never touches
// an assigned input), so five-valued monotonicity guarantees the
// primary detection survives every adoption. Secondary detections are
// not marked here — the driver's own fault simulation of the filled
// vector credits them, keeping detection bookkeeping in one place.
func dynamicExtend(c *logic.Circuit, view View, targets []fault.Fault, detected []bool, fi int, t Test, reg *telemetry.Registry) Test {
	free := 0
	for _, v := range t.Values {
		if v == logic.X {
			free++
		}
	}
	cfg := PodemConfig{MaxBacktracks: dynamicBacktracks, Metrics: reg}
	attempts, hits := 0, 0
	for fj := fi + 1; fj < len(targets) && attempts < dynamicTargets && free > 0; fj++ {
		if detected[fj] {
			continue
		}
		attempts++
		ext, err := PodemExtend(c, view, targets[fj], t, cfg)
		if err != nil {
			continue
		}
		hits++
		t = ext
		free = 0
		for _, v := range t.Values {
			if v == logic.X {
				free++
			}
		}
	}
	reg.Counter("compact.dynamic.attempts").Add(int64(attempts))
	reg.Counter("compact.dynamic.hits").Add(int64(hits))
	return t
}
