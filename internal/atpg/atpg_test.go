package atpg

import (
	"math/rand"
	"testing"

	"dft/internal/circuits"
	"dft/internal/fault"
	"dft/internal/logic"
)

func andCircuit() *logic.Circuit {
	c := logic.New("and2")
	a := c.AddInput("A")
	b := c.AddInput("B")
	c.MarkOutput(c.AddGate(logic.And, "C", a, b))
	return c.MustFinalize()
}

// TestPodemFig1 regenerates the paper's Fig. 1 test: for "A s-a-1" on a
// 2-input AND, the only test is A=0, B=1.
func TestPodemFig1(t *testing.T) {
	c := andCircuit()
	and, _ := c.NetByName("C")
	view := PrimaryView(c)
	f := fault.Fault{Gate: and, Pin: 0, SA: logic.One}
	test, err := Podem(c, view, f, PodemConfig{})
	if err != nil {
		t.Fatalf("podem: %v", err)
	}
	if test.Values[0] != logic.Zero || test.Values[1] != logic.One {
		t.Fatalf("test = %v, want 01", test)
	}
	if !Verify(c, view, f, test) {
		t.Fatal("generated test fails verification")
	}
}

func TestDAlgFig1(t *testing.T) {
	c := andCircuit()
	and, _ := c.NetByName("C")
	view := PrimaryView(c)
	f := fault.Fault{Gate: and, Pin: 0, SA: logic.One}
	test, err := DAlg(c, view, f, PodemConfig{})
	if err != nil {
		t.Fatalf("dalg: %v", err)
	}
	if !Verify(c, view, f, test) {
		t.Fatalf("dalg test %v fails verification", test)
	}
}

// allFaultEngines cross-checks both deterministic engines on a circuit:
// every generated test must verify; coverage of testable faults must be
// complete for these known-irredundant circuits.
func checkEngine(t *testing.T, c *logic.Circuit, engine Engine, name string) {
	t.Helper()
	view := PrimaryView(c)
	u := fault.Universe(c)
	cl := fault.CollapseEquiv(c, u)
	cfg := PodemConfig{MaxBacktracks: 50000}
	for _, f := range cl.Reps {
		var test Test
		var err error
		if engine == EngineDAlg {
			test, err = DAlg(c, view, f, cfg)
		} else {
			test, err = Podem(c, view, f, cfg)
		}
		if err == ErrUntestable {
			t.Errorf("%s/%s: fault %s declared untestable in irredundant circuit", c.Name, name, f.Name(c))
			continue
		}
		if err != nil {
			t.Errorf("%s/%s: fault %s: %v", c.Name, name, f.Name(c), err)
			continue
		}
		if !Verify(c, view, f, test) {
			t.Errorf("%s/%s: fault %s: test %v does not detect", c.Name, name, f.Name(c), test)
		}
	}
}

func TestPodemCompleteOnLibrary(t *testing.T) {
	for _, c := range []*logic.Circuit{
		circuits.C17(),
		circuits.RippleAdder(4),
		circuits.ParityTree(8),
		circuits.Decoder(3),
		circuits.Mux(2),
		circuits.Comparator(3),
	} {
		checkEngine(t, c, EnginePodem, "podem")
	}
}

func TestDAlgCompleteOnLibrary(t *testing.T) {
	for _, c := range []*logic.Circuit{
		circuits.C17(),
		circuits.RippleAdder(3),
		circuits.ParityTree(6),
		circuits.Decoder(2),
	} {
		checkEngine(t, c, EngineDAlg, "dalg")
	}
}

func TestPodemOn74181(t *testing.T) {
	c := circuits.ALU74181()
	checkEngine(t, c, EnginePodem, "podem")
}

// TestRedundantFaultIdentified: a circuit with a redundant fault —
// y = (a AND b) OR (a AND NOT b); the OR output s-a-... Actually use
// the classic redundancy: z = a OR (a AND b); the AND output s-a-0 is
// redundant because z == a regardless.
func TestRedundantFaultIdentified(t *testing.T) {
	c := logic.New("redundant")
	a := c.AddInput("a")
	b := c.AddInput("b")
	ab := c.AddGate(logic.And, "ab", a, b)
	z := c.AddGate(logic.Or, "z", a, ab)
	c.MarkOutput(z)
	c.MustFinalize()
	view := PrimaryView(c)
	f := fault.Fault{Gate: ab, Pin: fault.Stem, SA: logic.Zero}
	if _, err := Podem(c, view, f, PodemConfig{}); err != ErrUntestable {
		t.Fatalf("podem: err = %v, want ErrUntestable", err)
	}
	if _, err := DAlg(c, view, f, PodemConfig{}); err != ErrUntestable {
		t.Fatalf("dalg: err = %v, want ErrUntestable", err)
	}
	// Exhaustive confirmation that no pattern detects it.
	for x := 0; x < 4; x++ {
		if fault.DetectsCombinational(c, []bool{x&1 == 1, x&2 == 2}, f) {
			t.Fatal("redundant fault is actually detectable?!")
		}
	}
}

func TestFullScanViewTurnsSequentialCombinational(t *testing.T) {
	c := circuits.Counter(4)
	// Under the primary view, internal faults of a counter are out of
	// reach for single-pattern combinational ATPG; under the full-scan
	// view everything is one frame away.
	scan := FullScanView(c)
	u := fault.Universe(c)
	cl := fault.CollapseEquiv(c, u)
	cfg := PodemConfig{MaxBacktracks: 20000}
	for _, f := range cl.Reps {
		test, err := Podem(c, scan, f, cfg)
		if err != nil {
			t.Fatalf("scan view: fault %s: %v", f.Name(c), err)
		}
		if !Verify(c, scan, f, test) {
			t.Fatalf("scan view: fault %s: test fails verification", f.Name(c))
		}
	}
}

func TestRandomGenerateCoverage(t *testing.T) {
	c := circuits.RippleAdder(8)
	u := fault.Universe(c)
	cl := fault.CollapseEquiv(c, u)
	rng := rand.New(rand.NewSource(42))
	res := RandomGenerate(c, PrimaryView(c), cl.Reps, 0.99, 2000, rng)
	if res.Coverage < 0.95 {
		t.Fatalf("random coverage on adder8 = %.3f, want >= 0.95", res.Coverage)
	}
	if len(res.Patterns) == 0 || res.Applied == 0 {
		t.Fatal("no patterns recorded")
	}
}

func TestRandomPatternsResistPLA(t *testing.T) {
	// Fig. 22's point: a PLA with 20-input products resists random
	// patterns. Coverage after the same budget must be far below the
	// fan-in-4 random network's.
	rng := rand.New(rand.NewSource(7))
	pla := circuits.RandomPLA(rng, 20, 8, 4, 20)
	nice := circuits.RandomCircuit(rng, 20, 100, 4, 4)
	budget := 2000
	plaRes := RandomGenerate(pla, PrimaryView(pla),
		fault.CollapseEquiv(pla, fault.Universe(pla)).Reps, 1.0, budget, rng)
	niceRes := RandomGenerate(nice, PrimaryView(nice),
		fault.CollapseEquiv(nice, fault.Universe(nice)).Reps, 1.0, budget, rng)
	if plaRes.Coverage >= niceRes.Coverage {
		t.Fatalf("PLA coverage %.3f should lag random-logic coverage %.3f",
			plaRes.Coverage, niceRes.Coverage)
	}
	if plaRes.Coverage > 0.8 {
		t.Fatalf("PLA coverage %.3f unexpectedly high", plaRes.Coverage)
	}
}

func TestWeightedBeatsUniformOnAndTree(t *testing.T) {
	// A wide AND tree needs mostly-1 inputs; weighted random patterns
	// ([95]) find those tests much faster than uniform ones.
	c := logic.New("andtree")
	var ins []int
	for i := 0; i < 16; i++ {
		ins = append(ins, c.AddInput("i"+string(rune('a'+i))))
	}
	c.MarkOutput(c.AddGate(logic.And, "y", ins...))
	c.MustFinalize()
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	budget := 3000
	uni := RandomGenerate(c, PrimaryView(c), cl.Reps, 1.0, budget, rand.New(rand.NewSource(1)))
	w := make([]float64, 16)
	for i := range w {
		w[i] = 0.9
	}
	wres := WeightedRandomGenerate(c, PrimaryView(c), cl.Reps, 1.0, budget, w, rand.New(rand.NewSource(1)))
	if wres.Coverage <= uni.Coverage {
		t.Fatalf("weighted %.3f should beat uniform %.3f on AND tree", wres.Coverage, uni.Coverage)
	}
}

func TestAdaptiveAtLeastMatchesUniform(t *testing.T) {
	c := logic.New("andtree")
	var ins []int
	for i := 0; i < 12; i++ {
		ins = append(ins, c.AddInput("i"+string(rune('a'+i))))
	}
	c.MarkOutput(c.AddGate(logic.And, "y", ins...))
	c.MustFinalize()
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	budget := 1500
	uni := RandomGenerate(c, PrimaryView(c), cl.Reps, 1.0, budget, rand.New(rand.NewSource(2)))
	ad := AdaptiveRandomGenerate(c, PrimaryView(c), cl.Reps, 1.0, budget, rand.New(rand.NewSource(2)))
	if ad.Coverage < uni.Coverage {
		t.Fatalf("adaptive %.3f below uniform %.3f", ad.Coverage, uni.Coverage)
	}
}

func TestGenerateFullFlow(t *testing.T) {
	for _, engine := range []Engine{EnginePodem, EngineDAlg} {
		c := circuits.RippleAdder(4)
		cl := fault.CollapseEquiv(c, fault.Universe(c))
		res := Generate(c, PrimaryView(c), cl.Reps, Config{
			Engine: engine, RandomSeed: 5, RandomFirst: 64,
		})
		if res.Coverage < 1.0 {
			t.Fatalf("engine %d: coverage %.3f, aborted %d, untestable %d",
				engine, res.Coverage, len(res.Aborted), len(res.Untestable))
		}
		if len(res.Aborted) != 0 {
			t.Fatalf("engine %d: %d aborted faults", engine, len(res.Aborted))
		}
	}
}

func TestGenerateDeterministicOnly(t *testing.T) {
	c := circuits.C17()
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	res := Generate(c, PrimaryView(c), cl.Reps, Config{Engine: EnginePodem})
	if res.Coverage < 1.0 {
		t.Fatalf("coverage %.3f", res.Coverage)
	}
	// c17's classical minimal test set has 4-5 patterns; deterministic
	// generation should not need more than one per fault class.
	if len(res.Patterns) > len(cl.Reps) {
		t.Fatalf("%d patterns for %d fault classes", len(res.Patterns), len(cl.Reps))
	}
}

func TestTestStringAndFill(t *testing.T) {
	tst := Test{Values: []logic.V{logic.Zero, logic.One, logic.X}}
	if tst.String() != "01X" {
		t.Errorf("String = %q", tst.String())
	}
	filled := tst.Filled(logic.One)
	if filled[2] != logic.One {
		t.Error("Filled did not fill")
	}
	b := tst.Bools()
	if b[0] || !b[1] || b[2] {
		t.Error("Bools wrong")
	}
}

func TestPartialScanView(t *testing.T) {
	c := circuits.Counter(4)
	full := FullScanView(c)
	partial := PartialScanView(c, c.DFFs[:2])
	if len(partial.Inputs) >= len(full.Inputs) {
		t.Fatal("partial view not smaller")
	}
	if len(partial.Inputs) != len(c.PIs)+2 {
		t.Fatalf("partial inputs = %d", len(partial.Inputs))
	}
}

func BenchmarkPodemAdder16(b *testing.B) {
	c := circuits.RippleAdder(16)
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	view := PrimaryView(c)
	cfg := PodemConfig{MaxBacktracks: 10000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := cl.Reps[i%len(cl.Reps)]
		if _, err := Podem(c, view, f, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
