package rascan

import (
	"math/rand"
	"testing"

	"dft/internal/circuits"
	"dft/internal/sim"
)

func TestReadWritePolarityHold(t *testing.T) {
	c := circuits.Counter(4)
	r := New(sim.NewMachine(c), PolarityHold)
	r.Write(2, true)
	if !r.Read(2) {
		t.Fatal("written latch reads back false")
	}
	if r.Read(0) || r.Read(1) || r.Read(3) {
		t.Fatal("write disturbed other latches")
	}
	if r.Writes != 1 || r.Reads != 4 {
		t.Fatalf("op accounting: writes=%d reads=%d", r.Writes, r.Reads)
	}
}

func TestSetResetDiscipline(t *testing.T) {
	c := circuits.Counter(4)
	r := New(sim.NewMachine(c), SetReset)
	r.Preset(1)
	r.Preset(3)
	st := r.Machine().State()
	if st[0] || !st[1] || st[2] || !st[3] {
		t.Fatalf("state %v after presets", st)
	}
	r.Clear()
	for i, b := range r.Machine().State() {
		if b {
			t.Fatalf("latch %d still set after clear", i)
		}
	}
	// Kind misuse panics.
	defer func() {
		if recover() == nil {
			t.Fatal("Write on set/reset latch must panic")
		}
	}()
	r.Write(0, true)
}

func TestLoadStateBothKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, kind := range []LatchKind{PolarityHold, SetReset} {
		c := circuits.Counter(6)
		r := New(sim.NewMachine(c), kind)
		want := make([]bool, 6)
		for i := range want {
			want[i] = rng.Intn(2) == 1
		}
		want[0] = true // guarantee at least one addressed operation
		ops := r.LoadState(want)
		got := r.Machine().State()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("kind %d: latch %d = %v, want %v", kind, i, got[i], want[i])
			}
		}
		if ops == 0 {
			t.Fatalf("kind %d: zero ops reported", kind)
		}
	}
}

// TestRandomAccessBeatsSerialForSingleLatch captures RAS's selling
// point: touching one latch costs one addressed operation, not a full
// chain shift.
func TestRandomAccessBeatsSerialForSingleLatch(t *testing.T) {
	n := 64
	c := circuits.Counter(n)
	r := New(sim.NewMachine(c), PolarityHold)
	r.Write(n-1, true)
	if r.AddressLoads != 1 {
		t.Fatalf("single-latch write cost %d operations; serial scan would cost %d shifts",
			r.AddressLoads, n)
	}
}

func TestFunctionalOperationAfterLoad(t *testing.T) {
	c := circuits.Counter(4)
	r := New(sim.NewMachine(c), PolarityHold)
	r.LoadState([]bool{true, true, false, false}) // 3
	r.Machine().Step([]bool{true})
	var got uint
	for i, b := range r.Machine().State() {
		if b {
			got |= 1 << uint(i)
		}
	}
	if got != 4 {
		t.Fatalf("counter after load(3)+step = %d, want 4", got)
	}
}

func TestEstimateOverhead(t *testing.T) {
	o := EstimateOverhead(100)
	if o.GatesPerLatch < 3 || o.GatesPerLatch > 4 {
		t.Fatalf("gates/latch %.1f outside the paper's 3-4 band", o.GatesPerLatch)
	}
	if o.Pins < 10 || o.Pins > 20 {
		t.Fatalf("pins %d outside the paper's 10-20 band", o.Pins)
	}
	if o.PinsSerialized != 6 {
		t.Fatalf("serialized pins %d, want 6", o.PinsSerialized)
	}
	if o.ExtraGatesTotal <= 350 {
		t.Fatalf("total extra gates %d implausibly low", o.ExtraGatesTotal)
	}
}

func TestReadStateMatchesMachine(t *testing.T) {
	c := circuits.Counter(5)
	m := sim.NewMachine(c)
	r := New(m, PolarityHold)
	for i := 0; i < 11; i++ {
		m.Step([]bool{true})
	}
	got := r.ReadState()
	want := m.State()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("latch %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestAddrValidation(t *testing.T) {
	c := circuits.Counter(3)
	r := New(sim.NewMachine(c), PolarityHold)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range address must panic")
		}
	}()
	r.Read(3)
}
