// Package rascan implements Fujitsu's Random-Access Scan (Figs.
// 16–18): every system latch is addressable through an X/Y decoder so
// it can be individually read (SDO) or written (SCK / preset-clear)
// without shift registers. The package models both latch types, the
// addressing network, and the overhead accounting the paper gives
// (3–4 gates per latch; 10–20 pins, reducible to ~6 with serialized
// address counters).
package rascan

import (
	"fmt"
	"math"

	"dft/internal/logic"
	"dft/internal/sim"
)

// LatchKind selects between the paper's two addressable latch designs.
type LatchKind int

const (
	// PolarityHold is the Fig. 16 latch: scan data in (SDI) is clocked
	// by SCK into the addressed latch.
	PolarityHold LatchKind = iota
	// SetReset is the Fig. 17 latch: a global CLEAR zeroes every latch,
	// then addressed PRESET pulses set chosen latches to 1.
	SetReset
)

// RAS couples a simulated machine with a random-access scan network.
type RAS struct {
	c    *logic.Circuit
	m    *sim.Machine
	kind LatchKind
	// Address geometry: latches arranged in an X×Y grid.
	xBits, yBits int
	// Operation accounting.
	Reads, Writes, Clears int
	AddressLoads          int
}

// New builds a RAS wrapper for the machine's flip-flops.
func New(m *sim.Machine, kind LatchKind) *RAS {
	n := m.Circuit().NumDFFs()
	if n == 0 {
		panic("rascan: circuit has no storage elements")
	}
	side := int(math.Ceil(math.Sqrt(float64(n))))
	bits := 0
	for 1<<uint(bits) < side {
		bits++
	}
	return &RAS{c: m.Circuit(), m: m, kind: kind, xBits: bits, yBits: bits}
}

// NumLatches returns the addressable latch count.
func (r *RAS) NumLatches() int { return r.c.NumDFFs() }

// addrCheck validates a latch index.
func (r *RAS) addrCheck(i int) {
	if i < 0 || i >= r.NumLatches() {
		panic(fmt.Sprintf("rascan: latch %d out of range 0..%d", i, r.NumLatches()-1))
	}
}

// Read returns the addressed latch's value through SDO.
func (r *RAS) Read(i int) bool {
	r.addrCheck(i)
	r.Reads++
	r.AddressLoads++
	return r.m.State()[i]
}

// Write loads the addressed latch via SDI/SCK (polarity-hold kind
// only).
func (r *RAS) Write(i int, v bool) {
	r.addrCheck(i)
	if r.kind != PolarityHold {
		panic("rascan: Write requires the polarity-hold latch")
	}
	st := r.m.State()
	st[i] = v
	r.m.SetState(st)
	r.Writes++
	r.AddressLoads++
}

// Clear zeroes every latch (set/reset kind): the global CL line.
func (r *RAS) Clear() {
	st := make([]bool, r.NumLatches())
	r.m.SetState(st)
	r.Clears++
}

// Preset sets the addressed latch to 1 (set/reset kind).
func (r *RAS) Preset(i int) {
	r.addrCheck(i)
	if r.kind != SetReset {
		panic("rascan: Preset requires the set/reset latch")
	}
	st := r.m.State()
	st[i] = true
	r.m.SetState(st)
	r.Writes++
	r.AddressLoads++
}

// LoadState brings the machine to an arbitrary state using the
// cheapest operation sequence for the latch kind, and returns the
// number of addressed operations used.
func (r *RAS) LoadState(want []bool) int {
	if len(want) != r.NumLatches() {
		panic(fmt.Sprintf("rascan: LoadState with %d values for %d latches", len(want), r.NumLatches()))
	}
	ops := 0
	switch r.kind {
	case PolarityHold:
		cur := r.m.State()
		for i, v := range want {
			if cur[i] != v {
				r.Write(i, v)
				ops++
			}
		}
	case SetReset:
		r.Clear()
		ops++
		for i, v := range want {
			if v {
				r.Preset(i)
				ops++
			}
		}
	}
	return ops
}

// ReadState reads every latch, charging one addressed read per latch.
func (r *RAS) ReadState() []bool {
	out := make([]bool, r.NumLatches())
	for i := range out {
		out[i] = r.Read(i)
	}
	return out
}

// Machine exposes the wrapped machine for functional cycles.
func (r *RAS) Machine() *sim.Machine { return r.m }

// Overhead reports the paper's hardware accounting for a Random-Access
// Scan network over n latches and optional observation-only points.
type Overhead struct {
	GatesPerLatch   float64 // "about three to four gates per storage element"
	ExtraGatesTotal int
	Pins            int // direct X/Y addressing
	PinsSerialized  int // with serial address counters: ~6
	DecoderGates    int
}

// EstimateOverhead computes the hardware cost for n latches arranged
// in the package's X/Y grid.
func EstimateOverhead(n int) Overhead {
	side := int(math.Ceil(math.Sqrt(float64(n))))
	bits := 0
	for 1<<uint(bits) < side {
		bits++
	}
	if bits == 0 {
		bits = 1
	}
	o := Overhead{
		GatesPerLatch: 3.5,
		// X and Y decoders: one AND per row/column plus inverters.
		DecoderGates: 2 * (1<<uint(bits) + bits),
	}
	o.ExtraGatesTotal = int(o.GatesPerLatch*float64(n)) + o.DecoderGates
	// Pins: X addr + Y addr + SDI + SDO + SCK + CL (paper: 10..20).
	o.Pins = 2*bits + 4
	o.PinsSerialized = 6
	return o
}
