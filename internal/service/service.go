package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"dft/internal/logic"
	"dft/internal/telemetry"
)

// Config sizes the server. Zero values select the documented
// defaults, so Config{} is a working development configuration.
type Config struct {
	// Workers is the job-execution pool size; 0 selects
	// runtime.GOMAXPROCS(0). Each worker runs one job at a time; the
	// fault engine inside a job shards further per its own Workers
	// option.
	Workers int
	// QueueDepth bounds the FIFO admission queue; 0 selects 64. A
	// full queue rejects new jobs with ErrQueueFull (HTTP 429).
	QueueDepth int
	// JobTimeout is the per-job deadline; 0 means no limit. A request
	// may shrink (never extend) its own budget via Options.TimeoutMs.
	JobTimeout time.Duration
	// CacheSize bounds the LRU result cache (finished run reports),
	// and the circuit interner is sized to match; 0 selects 256.
	CacheSize int
	// MaxJobs bounds the retained job table; once exceeded, the
	// oldest finished jobs are forgotten (their results may still be
	// served from the cache under a new job ID). 0 selects 4096.
	MaxJobs int
	// Metrics receives the service.* telemetry and backs /metrics;
	// nil selects telemetry.Default().
	Metrics *telemetry.Registry
	// ProgressInterval throttles the per-job monitor's sampling of
	// phase/progress events onto the SSE stream; 0 selects 100ms.
	ProgressInterval time.Duration
	// HeartbeatInterval paces heartbeat events on otherwise-quiet
	// streams; 0 selects 5s.
	HeartbeatInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	if c.ProgressInterval <= 0 {
		c.ProgressInterval = 100 * time.Millisecond
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 5 * time.Second
	}
	return c
}

// ErrQueueFull rejects a submission when the admission queue is at
// capacity; the HTTP layer renders it as 429 with the depth attached.
type ErrQueueFull struct {
	Depth    int
	Capacity int
}

func (e *ErrQueueFull) Error() string {
	return fmt.Sprintf("service: queue full (%d/%d jobs queued)", e.Depth, e.Capacity)
}

// ErrDraining rejects submissions after Shutdown has begun.
var ErrDraining = errors.New("service: draining, not admitting new jobs")

// ErrBadRequest wraps a request-validation failure (HTTP 400).
type ErrBadRequest struct{ Err error }

func (e *ErrBadRequest) Error() string { return e.Err.Error() }
func (e *ErrBadRequest) Unwrap() error { return e.Err }

// ErrUnknownJob reports a job ID with no retained record.
var ErrUnknownJob = errors.New("service: unknown job")

// Server is the DFT job service: admission control in front of a
// bounded FIFO queue, a fixed worker pool draining it, a result
// cache, and an HTTP surface (see routes in http.go). Create with
// New, serve via ServeHTTP, stop with Shutdown.
type Server struct {
	cfg Config
	reg *telemetry.Registry
	mux *http.ServeMux

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	draining bool
	jobs     map[string]*Job
	order    []string // job IDs in admission order, for pruning
	inflight map[string]*Job // request key → queued/running job
	results  *lruCache       // request key → report bytes
	interned *lruCache       // netlist hash → *logic.Circuit
	dicts    *lruCache       // dictionary key → *diagnose.Dictionary
	seq      int64

	queue chan *Job
	wg    sync.WaitGroup

	// cached instrument handles
	cAccepted  *telemetry.Counter
	cRejected  *telemetry.Counter
	cCompleted *telemetry.Counter
	cFailed    *telemetry.Counter
	cCancelled *telemetry.Counter
	cCoalesced *telemetry.Counter
	cCacheHit  *telemetry.Counter
	cCacheMiss *telemetry.Counter
	cCacheEvict *telemetry.Counter
	cDictHit    *telemetry.Counter
	cDictMiss   *telemetry.Counter
	gQueueDepth *telemetry.Gauge
	gQueueAge   *telemetry.Gauge
	gWorkers    *telemetry.Gauge
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := telemetry.OrDefault(cfg.Metrics)
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		reg:        reg,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
		inflight:   make(map[string]*Job),
		results:    newLRU(cfg.CacheSize),
		interned:   newLRU(cfg.CacheSize),
		dicts:      newLRU(cfg.CacheSize),
		queue:      make(chan *Job, cfg.QueueDepth),

		cAccepted:   reg.Counter("service.jobs.accepted"),
		cRejected:   reg.Counter("service.jobs.rejected"),
		cCompleted:  reg.Counter("service.jobs.completed"),
		cFailed:     reg.Counter("service.jobs.failed"),
		cCancelled:  reg.Counter("service.jobs.cancelled"),
		cCoalesced:  reg.Counter("service.jobs.coalesced"),
		cCacheHit:   reg.Counter("service.cache.hits"),
		cCacheMiss:  reg.Counter("service.cache.misses"),
		cCacheEvict: reg.Counter("service.cache.evictions"),
		cDictHit:    reg.Counter("service.dict.hits"),
		cDictMiss:   reg.Counter("service.dict.misses"),
		gQueueDepth: reg.Gauge("service.queue.depth"),
		gQueueAge:   reg.Gauge("service.queue.age_ms"),
		gWorkers:    reg.Gauge("service.workers"),
	}
	s.gWorkers.Set(int64(cfg.Workers))
	s.routes()
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Submit validates and admits a request. The returned job may be
// brand new (queued), an existing in-flight job the request coalesced
// onto, or an already-done job synthesized from the result cache.
// Errors are *ErrBadRequest, *ErrQueueFull, or ErrDraining.
func (s *Server) Submit(req JobRequest) (*Job, error) {
	p, err := parseRequest(req)
	if err != nil {
		s.cRejected.Inc()
		return nil, &ErrBadRequest{Err: err}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.cRejected.Inc()
		return nil, ErrDraining
	}
	s.internCircuit(p)

	// Coalesce onto an identical queued/running job.
	if j, ok := s.inflight[p.key]; ok {
		j.coalesced++
		s.cCoalesced.Inc()
		return j, nil
	}
	// Serve a finished identical request from the result cache.
	if rep, ok := s.results.get(p.key); ok {
		s.cCacheHit.Inc()
		now := time.Now()
		j := &Job{
			ID:       s.nextID(),
			Key:      p.key,
			parsed:   p,
			state:    StateDone,
			report:   rep.([]byte),
			cached:   true,
			created:  now,
			started:  now,
			finished: now,
			events:   newEventLog(),
			done:     make(chan struct{}),
		}
		// A cached job is born terminal; its stream replays instantly.
		j.events.publish(JobEvent{Type: EventQueued, State: StateQueued})
		j.events.publish(JobEvent{Type: EventEnd, State: StateDone})
		j.events.close()
		close(j.done)
		s.remember(j)
		s.cAccepted.Inc()
		s.cCompleted.Inc()
		return j, nil
	}
	s.cCacheMiss.Inc()

	j := &Job{
		ID:      s.nextID(),
		Key:     p.key,
		parsed:  p,
		state:   StateQueued,
		created: time.Now(),
		reg:     telemetry.NewRegistry(),
		events:  newEventLog(),
		done:    make(chan struct{}),
	}
	// Position is read before the enqueue: once the job is in the
	// channel a worker may dequeue it instantly, so counting afterwards
	// could report an empty queue for a job that did wait in line.
	position := len(s.queue) + 1
	select {
	case s.queue <- j:
	default:
		s.cRejected.Inc()
		return nil, &ErrQueueFull{Depth: len(s.queue), Capacity: s.cfg.QueueDepth}
	}
	s.remember(j)
	s.inflight[p.key] = j
	s.cAccepted.Inc()
	s.gQueueDepth.Set(int64(len(s.queue)))
	j.events.publish(JobEvent{Type: EventQueued, State: StateQueued, Position: position})
	return j, nil
}

// internCircuit replaces the parsed circuit with the canonical
// instance for its netlist, so every job over the same netlist shares
// one *logic.Circuit — and therefore one compiled program in
// sim.CompiledFor's cache — across the whole server lifetime.
func (s *Server) internCircuit(p *parsedRequest) {
	if p.circuit == nil {
		return
	}
	sum := sha256.Sum256([]byte(canonicalBench(p.circuit)))
	h := hex.EncodeToString(sum[:])
	if c, ok := s.interned.get(h); ok {
		p.circuit = c.(*logic.Circuit)
		return
	}
	s.interned.add(h, p.circuit)
}

// nextID mints a job ID; callers hold mu.
func (s *Server) nextID() string {
	s.seq++
	return fmt.Sprintf("job-%06d", s.seq)
}

// remember records a job and prunes the oldest finished jobs past the
// retention cap; callers hold mu.
func (s *Server) remember(j *Job) {
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	if len(s.jobs) <= s.cfg.MaxJobs {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		old := s.jobs[id]
		if len(s.jobs) > s.cfg.MaxJobs && old != nil && old.state.terminal() {
			delete(s.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Job returns the retained job record for id.
func (s *Server) Job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrUnknownJob
	}
	return j, nil
}

// View renders a job's current state.
func (s *Server) View(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, ErrUnknownJob
	}
	return j.view(), nil
}

// Cancel aborts a job: a queued job is marked cancelled on the spot
// (the worker skips it on dequeue), a running job has its context
// cancelled and reaches the cancelled state when the engine unwinds.
// Cancelling a terminal job is a no-op. Note a coalesced job is
// shared — cancelling it cancels every submission attached to it.
func (s *Server) Cancel(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, ErrUnknownJob
	}
	switch j.state {
	case StateQueued:
		j.cancelReason = CancelClient
		s.finishLocked(j, StateCancelled, context.Canceled.Error(), nil)
	case StateRunning:
		// Record who asked before the context unwinds, so runJob's
		// terminal switch can tell a DELETE from a deadline.
		j.cancelReason = CancelClient
		if j.cancel != nil {
			j.cancel()
		}
	}
	return j.view(), nil
}

// finishLocked moves a job to a terminal state; callers hold mu.
func (s *Server) finishLocked(j *Job, st State, errMsg string, report []byte) {
	if j.state.terminal() {
		return
	}
	j.state = st
	j.err = errMsg
	j.report = report
	j.finished = time.Now()
	if j.started.IsZero() {
		j.started = j.finished
	}
	delete(s.inflight, j.Key)
	switch st {
	case StateDone:
		s.cCompleted.Inc()
		if report != nil {
			if s.results.add(j.Key, report) {
				s.cCacheEvict.Inc()
			}
		}
	case StateCancelled:
		s.cCancelled.Inc()
	default:
		s.cFailed.Inc()
	}
	if j.events != nil {
		j.events.publish(JobEvent{
			Type:         EventEnd,
			State:        st,
			Error:        errMsg,
			CancelReason: j.cancelReason,
		})
		j.events.close()
	}
	close(j.done)
}

// Wait blocks until the job reaches a terminal state or ctx expires.
func (s *Server) Wait(ctx context.Context, id string) (JobView, error) {
	j, err := s.Job(id)
	if err != nil {
		return JobView{}, err
	}
	select {
	case <-j.done:
		return s.View(id)
	case <-ctx.Done():
		return JobView{}, ctx.Err()
	}
}

// worker drains the queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one dequeued job under its deadline, with the
// monitor goroutine streaming its phase/progress onto the event log
// for as long as it runs.
func (s *Server) runJob(j *Job) {
	s.mu.Lock()
	s.gQueueDepth.Set(int64(len(s.queue)))
	if j.state != StateQueued { // cancelled while waiting
		s.mu.Unlock()
		return
	}
	kind := string(j.parsed.req.Kind)
	j.state = StateRunning
	j.started = time.Now()
	s.reg.Histogram(telemetry.Label("service.job.queue_wait_ms", "kind", kind)).
		Observe(j.started.Sub(j.created).Milliseconds())
	ctx, cancel := s.jobContext(j)
	j.cancel = cancel
	s.mu.Unlock()
	defer cancel()
	j.events.publish(JobEvent{Type: EventRunning, State: StateRunning})

	stop := make(chan struct{})
	monDone := make(chan struct{})
	go s.monitor(j, stop, monDone)

	rep, err := s.execute(ctx, j)
	var report []byte
	if err == nil {
		report, err = encodeReport(rep)
	}

	// Stop the monitor (it flushes one last sample) before publishing
	// the terminal event, so subscribers never see progress after end.
	close(stop)
	<-monDone

	s.mu.Lock()
	defer s.mu.Unlock()
	j.cancel = nil
	s.reg.Histogram(telemetry.Label("service.job.duration_ms", "kind", kind)).
		Observe(time.Since(j.started).Milliseconds())
	switch {
	case err == nil:
		s.finishLocked(j, StateDone, "", report)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		if j.cancelReason == "" {
			switch {
			case errors.Is(err, context.DeadlineExceeded):
				j.cancelReason = CancelDeadline
			case s.draining:
				j.cancelReason = CancelShutdown
			default:
				j.cancelReason = CancelClient
			}
		}
		// A long-running job that checkpointed (advise) keeps its last
		// per-iteration snapshot as the cancelled report.
		s.finishLocked(j, StateCancelled, err.Error(), j.checkpoint)
	default:
		s.finishLocked(j, StateFailed, err.Error(), nil)
	}
}

// jobContext derives the job's run context: the server's base context
// (so Shutdown's hard-stop cancels everything) bounded by the
// server-wide deadline, shrunk further by the request's own budget.
func (s *Server) jobContext(j *Job) (context.Context, context.CancelFunc) {
	d := s.cfg.JobTimeout
	if ms := j.parsed.req.Options.TimeoutMs; ms > 0 {
		if req := time.Duration(ms) * time.Millisecond; d <= 0 || req < d {
			d = req
		}
	}
	if d <= 0 {
		return context.WithCancel(s.baseCtx)
	}
	return context.WithTimeout(s.baseCtx, d)
}

// QueueDepth reports the current admission-queue occupancy.
func (s *Server) QueueDepth() int { return len(s.queue) }

// updateQueueAge refreshes the service.queue.age_ms gauge: the age of
// the oldest still-queued job, 0 for an empty queue. Computed at
// scrape time (handleMetrics) instead of continuously — an age gauge
// only means anything at the moment it is read.
func (s *Server) updateQueueAge() {
	s.mu.Lock()
	var oldest time.Time
	for _, j := range s.jobs {
		if j.state == StateQueued && (oldest.IsZero() || j.created.Before(oldest)) {
			oldest = j.created
		}
	}
	s.mu.Unlock()
	if oldest.IsZero() {
		s.gQueueAge.Set(0)
		return
	}
	s.gQueueAge.Set(time.Since(oldest).Milliseconds())
}

// Shutdown gracefully stops the server: admission closes (new
// submissions get ErrDraining), queued and running jobs drain, and
// the accumulated telemetry is flushed as a final dft.run-report/v1
// document. If ctx expires before the drain completes, in-flight
// jobs are hard-cancelled through the base context and Shutdown
// still waits for the workers to unwind before returning, so no job
// goroutine outlives the call.
func (s *Server) Shutdown(ctx context.Context) (*telemetry.Report, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, errors.New("service: already shut down")
	}
	s.draining = true
	close(s.queue)
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.baseCancel() // hard-stop running jobs
		<-done
	}
	s.baseCancel()

	s.mu.Lock()
	// Jobs still queued when the channel closed (drained by no one
	// because ctx expired first) are marked cancelled for the record.
	for _, j := range s.jobs {
		if !j.state.terminal() && j.state == StateQueued {
			j.cancelReason = CancelShutdown
			s.finishLocked(j, StateCancelled, ErrDraining.Error(), nil)
		}
	}
	s.mu.Unlock()

	rep := telemetry.NewReport("dftd", "shutdown", "")
	rep.Config = map[string]any{
		"workers":     s.cfg.Workers,
		"queue_depth": s.cfg.QueueDepth,
		"cache_size":  s.cfg.CacheSize,
	}
	rep.Results = map[string]any{
		"jobs_accepted":  s.cAccepted.Value(),
		"jobs_rejected":  s.cRejected.Value(),
		"jobs_completed": s.cCompleted.Value(),
		"jobs_failed":    s.cFailed.Value(),
		"jobs_cancelled": s.cCancelled.Value(),
		"jobs_coalesced": s.cCoalesced.Value(),
		"cache_hits":     s.cCacheHit.Value(),
		"cache_misses":   s.cCacheMiss.Value(),
	}
	return rep.Finish(s.reg), err
}
