package service

import "container/list"

// lruCache is a small string-keyed LRU used twice by the server: the
// result cache (key → finished run-report bytes) and the circuit
// interner (netlist hash → *logic.Circuit). Interning matters beyond
// memory: sim.CompiledFor keys its program cache on circuit identity,
// so handing repeat submissions the *same* interned pointer is what
// lets jobs share one compiled program per netlist. Not safe for
// concurrent use; callers hold the server lock.
type lruCache struct {
	cap   int
	order *list.List // front = most recent
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val any
}

// newLRU builds a cache bounded to capacity entries (min 1).
func newLRU(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns the value and refreshes its recency.
func (c *lruCache) get(key string) (any, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// add inserts or refreshes key, evicting the least-recently-used
// entry past capacity. It reports whether an eviction happened.
func (c *lruCache) add(key string, val any) bool {
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.order.MoveToFront(el)
		return false
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, val: val})
	if c.order.Len() <= c.cap {
		return false
	}
	oldest := c.order.Back()
	c.order.Remove(oldest)
	delete(c.items, oldest.Value.(*lruEntry).key)
	return true
}

// len returns the number of cached entries.
func (c *lruCache) len() int { return c.order.Len() }
