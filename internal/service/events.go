package service

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// JobEvent is one entry in a job's live event stream, rendered over
// SSE as `id: <seq>` / `event: <type>` / `data: <json>`. Seq numbers
// are dense per job starting at 1, so a client that reconnects with
// `Last-Event-ID: n` resumes exactly after the last event it saw.
// Events carry no wall-clock timestamps: the stream is ordered, and
// leaving them out keeps the wire format byte-deterministic for the
// golden test.
type JobEvent struct {
	Seq  int64  `json:"seq"`
	Type string `json:"type"`
	// queued / running / end
	State State `json:"state,omitempty"`
	// queued: jobs in the admission queue at publish, this one included
	Position int `json:"position,omitempty"`
	// phase: the deepest active telemetry span
	Phase string `json:"phase,omitempty"`
	// progress: tracker name plus its done/total
	Name  string `json:"name,omitempty"`
	Done  int64  `json:"done,omitempty"`
	Total int64  `json:"total,omitempty"`
	// end
	Error        string `json:"error,omitempty"`
	CancelReason string `json:"cancel_reason,omitempty"`
}

// Event types on the wire.
const (
	EventQueued    = "queued"
	EventRunning   = "running"
	EventPhase     = "phase"
	EventProgress  = "progress"
	EventHeartbeat = "heartbeat"
	EventEnd       = "end" // terminal; the log closes after it
)

// eventLog is one job's append-only event sequence. Publishers append
// under the log's own mutex (never the server's); subscribers poll
// since() and park on the returned notification channel, which is
// closed and replaced on every append — a broadcast they can select
// against their request context, which sync.Cond cannot offer.
type eventLog struct {
	mu      sync.Mutex
	events  []JobEvent
	closed  bool
	changed chan struct{}
}

func newEventLog() *eventLog {
	return &eventLog{changed: make(chan struct{})}
}

// publish appends one event, stamping its sequence number. Appends
// after close are dropped (terminal means terminal).
func (l *eventLog) publish(e JobEvent) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	e.Seq = int64(len(l.events)) + 1
	l.events = append(l.events, e)
	close(l.changed)
	l.changed = make(chan struct{})
	l.mu.Unlock()
}

// close seals the log after the terminal event. The notification
// channel is left closed, so any parked subscriber wakes, drains, and
// sees closed on its next since call.
func (l *eventLog) close() {
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		close(l.changed)
	}
	l.mu.Unlock()
}

// since returns the events with Seq > after, whether the log is
// sealed, and the channel that signals the next append (or seal).
// Sequence numbers are dense, so `after` doubles as a slice offset.
func (l *eventLog) since(after int64) (events []JobEvent, closed bool, changed <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if after < 0 {
		after = 0
	}
	if int(after) < len(l.events) {
		events = append(events, l.events[after:]...)
	}
	return events, l.closed, l.changed
}

// writeSSE renders one event as a Server-Sent Events frame.
func writeSSE(w io.Writer, e JobEvent) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data)
	return err
}
