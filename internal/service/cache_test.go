package service

import (
	"strings"
	"testing"

	"dft/internal/logic"
)

func TestLRUEvictsOldest(t *testing.T) {
	c := newLRU(2)
	c.add("a", 1)
	c.add("b", 2)
	if evicted := c.add("c", 3); !evicted {
		t.Fatal("third insert into a 2-entry cache must evict")
	}
	if _, ok := c.get("a"); ok {
		t.Fatal("oldest entry survived eviction")
	}
	for k, want := range map[string]int{"b": 2, "c": 3} {
		v, ok := c.get(k)
		if !ok || v.(int) != want {
			t.Fatalf("get(%q) = %v, %v", k, v, ok)
		}
	}
}

func TestLRUGetRefreshesRecency(t *testing.T) {
	c := newLRU(2)
	c.add("a", 1)
	c.add("b", 2)
	c.get("a") // a is now the most recent; b becomes the victim
	c.add("c", 3)
	if _, ok := c.get("a"); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("least recently used entry survived")
	}
}

func TestLRUUpdateInPlace(t *testing.T) {
	c := newLRU(2)
	c.add("a", 1)
	if evicted := c.add("a", 9); evicted {
		t.Fatal("overwriting a key must not evict")
	}
	if v, _ := c.get("a"); v.(int) != 9 {
		t.Fatalf("get = %v, want 9", v)
	}
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
}

// TestRequestKeySemantics pins the dedup-key contract: the timeout
// never splits a key, every other option does, and an inline .bench
// rendering of a builtin collides with the builtin itself.
func TestRequestKeySemantics(t *testing.T) {
	base := JobRequest{Kind: KindFaultSim, Builtin: "c17",
		Options: Options{Seed: 3, Patterns: 64}}
	k := func(req JobRequest) string {
		t.Helper()
		p, err := parseRequest(req)
		if err != nil {
			t.Fatal(err)
		}
		return p.key
	}

	timeout := base
	timeout.Options.TimeoutMs = 500
	if k(base) != k(timeout) {
		t.Fatal("TimeoutMs split the request key")
	}

	seed := base
	seed.Options.Seed = 4
	kind := base
	kind.Kind = KindATPG
	if k(base) == k(seed) || k(base) == k(kind) {
		t.Fatal("distinct requests collided")
	}

	// Inline submission of the canonical rendering is the same key.
	p, err := parseRequest(base)
	if err != nil {
		t.Fatal(err)
	}
	var bench strings.Builder
	if err := logic.WriteBench(&bench, p.circuit); err != nil {
		t.Fatal(err)
	}
	inline := base
	inline.Builtin, inline.Bench = "", bench.String()
	if k(base) != k(inline) {
		t.Fatal("inline rendering of a builtin got a different key")
	}
}
