package service

// Live-observability tests: the SSE wire format (golden), the live
// event stream of a multi-second faultsim job (queue → running →
// phase → progress → end, with heartbeats), Last-Event-ID resume,
// cancellation reasons (client / deadline / shutdown), the span tree
// served by /trace against the run report's timers, per-kind job
// metrics on /metrics, and a 32-subscriber storm driven through
// cancel and drain under the race detector with a goroutine-leak
// check.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"dft/internal/telemetry"
)

var updateSSE = flag.Bool("update", false, "rewrite golden files")

// canonicalEvents is one of every event type in lifecycle order — the
// wire-format contract clients like `dftc watch` parse.
func canonicalEvents() []JobEvent {
	return []JobEvent{
		{Type: EventQueued, State: StateQueued, Position: 3},
		{Type: EventRunning, State: StateRunning},
		{Type: EventPhase, Phase: "fault.sim.engine"},
		{Type: EventProgress, Name: "fault.sim.progress", Done: 1200, Total: 2640},
		{Type: EventHeartbeat, State: StateRunning},
		{Type: EventEnd, State: StateCancelled, Error: "context canceled", CancelReason: CancelClient},
	}
}

// TestSSEWireGolden locks the byte-exact SSE rendering of every event
// type. The frames are deterministic — events carry no timestamps —
// so any drift here is an API break for streaming clients.
func TestSSEWireGolden(t *testing.T) {
	log := newEventLog()
	for _, e := range canonicalEvents() {
		log.publish(e)
	}
	log.close()
	events, closed, _ := log.since(0)
	if !closed || len(events) != 6 {
		t.Fatalf("log: closed=%v events=%d, want sealed with 6", closed, len(events))
	}
	var buf bytes.Buffer
	for _, e := range events {
		if err := writeSSE(&buf, e); err != nil {
			t.Fatal(err)
		}
	}

	golden := filepath.Join("testdata", "sse.golden")
	if *updateSSE {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("SSE wire format drifted from golden.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestEventLogSemantics covers the log's edge cases directly: dense
// sequence numbers, publish-after-close dropped, since() as a resume
// offset, and the notification channel firing on append.
func TestEventLogSemantics(t *testing.T) {
	log := newEventLog()
	_, _, changed := log.since(0)
	log.publish(JobEvent{Type: EventQueued})
	select {
	case <-changed:
	default:
		t.Fatal("publish did not signal the notification channel")
	}
	log.publish(JobEvent{Type: EventRunning})
	log.publish(JobEvent{Type: EventEnd})
	log.close()
	log.publish(JobEvent{Type: EventHeartbeat}) // dropped: terminal means terminal

	all, closed, _ := log.since(0)
	if !closed || len(all) != 3 {
		t.Fatalf("closed=%v len=%d, want sealed 3", closed, len(all))
	}
	for i, e := range all {
		if e.Seq != int64(i)+1 {
			t.Fatalf("event %d has seq %d, want dense from 1", i, e.Seq)
		}
	}
	tail, _, _ := log.since(2)
	if len(tail) != 1 || tail[0].Type != EventEnd {
		t.Fatalf("since(2) = %+v, want just the end event", tail)
	}
	if none, _, _ := log.since(99); len(none) != 0 {
		t.Fatalf("since past the end returned %d events", len(none))
	}
}

// streamEvents consumes one SSE connection, decoding data payloads
// until the server closes the stream or ctx expires. It returns the
// events read; the bool reports whether a terminal end event arrived.
func streamEvents(ctx context.Context, base, id string, after int64) ([]JobEvent, bool, error) {
	url := fmt.Sprintf("%s/v1/jobs/%s/events", base, id)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, false, err
	}
	if after > 0 {
		req.Header.Set("Last-Event-ID", fmt.Sprint(after))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false, fmt.Errorf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		return nil, false, fmt.Errorf("content-type %q", ct)
	}
	var events []JobEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var e JobEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
			return events, false, err
		}
		events = append(events, e)
		if e.Type == EventEnd {
			return events, true, nil
		}
	}
	return events, false, sc.Err()
}

// countTypes tallies events by type.
func countTypes(events []JobEvent) map[string]int {
	n := map[string]int{}
	for _, e := range events {
		n[e.Type]++
	}
	return n
}

// checkDense fails unless sequence numbers run start, start+1, ...
func checkDense(t *testing.T, events []JobEvent, start int64) {
	t.Helper()
	for i, e := range events {
		if want := start + int64(i); e.Seq != want {
			t.Fatalf("event %d: seq %d, want %d (stream must be dense)", i, e.Seq, want)
		}
	}
}

// slowFaultSim is a faultsim request that runs for roughly two
// seconds: the no-drop parallel engine grades every fault against
// every one of 128Ki patterns over the cascaded ALU, ticking progress
// once per dispatched chunk.
func slowFaultSim() JobRequest {
	return JobRequest{
		Kind: KindFaultSim, Builtin: "alu74181x", N: 8,
		Options: Options{Patterns: 131072, Backend: "parallel", Workers: 2, Drop: "off"},
	}
}

// TestServiceEventStreamLive is the streaming acceptance criterion: a
// subscriber attached to a multi-second faultsim job sees the queued
// event, the running transition, at least one phase event, at least
// one progress tick and at least one heartbeat before the terminal
// event — and the live /trace of the finished job matches the span
// tree embedded in its run report.
func TestServiceEventStreamLive(t *testing.T) {
	_, ts, _ := testServer(t, Config{
		Workers: 1, QueueDepth: 8,
		ProgressInterval:  2 * time.Millisecond,
		HeartbeatInterval: 100 * time.Millisecond,
	})

	v, code, _ := postJob(t, ts.URL, slowFaultSim())
	if code != http.StatusAccepted {
		t.Fatalf("status %d", code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	events, terminal, err := streamEvents(ctx, ts.URL, v.ID, 0)
	if err != nil || !terminal {
		t.Fatalf("stream: terminal=%v err=%v (%d events)", terminal, err, len(events))
	}
	checkDense(t, events, 1)

	n := countTypes(events)
	if n[EventQueued] < 1 || n[EventRunning] != 1 || n[EventPhase] < 1 ||
		n[EventProgress] < 1 || n[EventHeartbeat] < 1 || n[EventEnd] != 1 {
		t.Fatalf("event mix %v, want >=1 queued/phase/progress/heartbeat and exactly one running and end", n)
	}
	if events[0].Type != EventQueued || events[0].Position < 1 {
		t.Fatalf("first event %+v, want queued with position >= 1", events[0])
	}
	last := events[len(events)-1]
	if last.Type != EventEnd || last.State != StateDone {
		t.Fatalf("last event %+v, want end/done", last)
	}

	// The phase and progress content must name the engine's actual
	// instrumentation, and progress must be monotonic within bounds.
	sawEngine := false
	var prevDone int64
	for _, e := range events {
		switch e.Type {
		case EventPhase:
			if e.Phase == "fault.sim.engine" {
				sawEngine = true
			}
		case EventProgress:
			if e.Name != "fault.sim.progress" {
				t.Fatalf("progress tracker %q, want fault.sim.progress", e.Name)
			}
			if e.Done <= prevDone || e.Total <= 0 || e.Done > e.Total {
				t.Fatalf("progress %d/%d after %d: not monotonically increasing within total", e.Done, e.Total, prevDone)
			}
			prevDone = e.Done
		}
	}
	if !sawEngine {
		t.Fatal("no phase event named fault.sim.engine")
	}

	// /trace on the finished job: the report-embedded tree, with the
	// root job span parenting the engine phase, and every span matching
	// a run-report timer of the same name (Span.End observes it).
	jv := waitTerminal(t, ts.URL, v.ID)
	if jv.State != StateDone {
		t.Fatalf("job state %s", jv.State)
	}
	var rep struct {
		Metrics struct {
			Timers map[string]json.RawMessage `json:"timers"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(jv.Report, &rep); err != nil {
		t.Fatal(err)
	}
	tb := getTrace(t, ts.URL, v.ID)
	if tb.State != StateDone || tb.Schema != telemetry.ReportSchema || len(tb.Trace) == 0 {
		t.Fatalf("trace body: %+v", tb)
	}
	root := tb.Trace[0]
	if root.Name != "job" {
		t.Fatalf("root span %q, want job", root.Name)
	}
	var names []string
	var walk func(ns []*telemetry.SpanNode)
	walk = func(ns []*telemetry.SpanNode) {
		for _, n := range ns {
			names = append(names, n.Name)
			walk(n.Children)
		}
	}
	walk(tb.Trace)
	foundEngine := false
	for _, name := range names {
		if name == "fault.sim.engine" {
			foundEngine = true
		}
		if _, ok := rep.Metrics.Timers[name]; !ok {
			t.Errorf("span %q has no matching run-report timer", name)
		}
	}
	if !foundEngine {
		t.Fatalf("span tree %v has no fault.sim.engine phase", names)
	}

	// Satellite: the per-kind job histograms surfaced on /metrics as
	// native labeled series.
	for _, want := range []string{
		`dft_service_job_duration_ms_bucket{kind="faultsim",le="+Inf"}`,
		`dft_service_job_queue_wait_ms_bucket{kind="faultsim",le="+Inf"}`,
	} {
		if !metricsContains(t, ts.URL, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// getTrace fetches and decodes /v1/jobs/{id}/trace.
func getTrace(t *testing.T, base, id string) traceBody {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", resp.StatusCode)
	}
	var tb traceBody
	if err := json.NewDecoder(resp.Body).Decode(&tb); err != nil {
		t.Fatal(err)
	}
	return tb
}

// metricsContains reports whether the /metrics exposition has a line
// starting with prefix.
func metricsContains(t *testing.T, base, prefix string) bool {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, prefix) {
			return true
		}
	}
	return false
}

// TestServiceEventResume: a reconnect with Last-Event-ID replays
// exactly the missed suffix — no duplicates, no gaps — and a fresh
// subscriber to a terminal job gets the whole log then the close.
func TestServiceEventResume(t *testing.T) {
	srv, ts, _ := testServer(t, Config{Workers: 2, QueueDepth: 8, ProgressInterval: time.Millisecond})
	defer srv.Shutdown(context.Background())

	v, code, _ := postJob(t, ts.URL, mixedJob(3))
	if code != http.StatusAccepted {
		t.Fatalf("status %d", code)
	}
	waitTerminal(t, ts.URL, v.ID)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	full, terminal, err := streamEvents(ctx, ts.URL, v.ID, 0)
	if err != nil || !terminal {
		t.Fatalf("full replay: terminal=%v err=%v", terminal, err)
	}
	checkDense(t, full, 1)
	if len(full) < 3 { // at least queued, running, end
		t.Fatalf("only %d events replayed", len(full))
	}

	// Resume after the second event: the suffix picks up at seq 3.
	tail, terminal, err := streamEvents(ctx, ts.URL, v.ID, 2)
	if err != nil || !terminal {
		t.Fatalf("resumed replay: terminal=%v err=%v", terminal, err)
	}
	checkDense(t, tail, 3)
	if len(tail) != len(full)-2 {
		t.Fatalf("resume replayed %d events, want %d", len(tail), len(full)-2)
	}

	// Resuming past the end yields the close with no events.
	none, terminal, err := streamEvents(ctx, ts.URL, v.ID, full[len(full)-1].Seq)
	if err != nil || terminal || len(none) != 0 {
		t.Fatalf("past-the-end resume: events=%d terminal=%v err=%v", len(none), terminal, err)
	}

	// A cached resubmission is born terminal with an instant replay.
	cv, _, _ := postJob(t, ts.URL, mixedJob(3))
	if !cv.Cached {
		t.Fatalf("resubmission not cached: %+v", cv)
	}
	cached, terminal, err := streamEvents(ctx, ts.URL, cv.ID, 0)
	if err != nil || !terminal {
		t.Fatalf("cached stream: terminal=%v err=%v", terminal, err)
	}
	if len(cached) != 2 || cached[0].Type != EventQueued || cached[1].Type != EventEnd {
		t.Fatalf("cached job events %+v, want queued then end", cached)
	}

	// Unknown job: 404, not a hung stream.
	if _, _, err := streamEvents(ctx, ts.URL, "job-999999", 0); err == nil {
		t.Fatal("events for unknown job did not error")
	}
}

// TestServiceCancelReasons pins the cancel_reason taxonomy: a DELETE
// is "client", an expired budget is "deadline", and jobs killed by
// server shutdown are "shutdown" — on the job view, with a cancel
// timestamp, and on the terminal stream event.
func TestServiceCancelReasons(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	endEvent := func(t *testing.T, base, id string) JobEvent {
		t.Helper()
		events, terminal, err := streamEvents(ctx, base, id, 0)
		if err != nil || !terminal {
			t.Fatalf("stream: terminal=%v err=%v", terminal, err)
		}
		return events[len(events)-1]
	}
	checkView := func(t *testing.T, v JobView, reason string) {
		t.Helper()
		if v.State != StateCancelled || v.CancelReason != reason || v.CancelledNs == 0 {
			t.Fatalf("view state=%s reason=%q cancelled_ns=%d, want cancelled/%s with timestamp",
				v.State, v.CancelReason, v.CancelledNs, reason)
		}
	}

	t.Run("client", func(t *testing.T) {
		srv, ts, _ := testServer(t, Config{Workers: 1, QueueDepth: 4})
		defer srv.Shutdown(context.Background())
		v, _, _ := postJob(t, ts.URL, slowJob(1))
		waitState(t, ts.URL, v.ID, StateRunning)
		resp, err := newRequest(t, http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		checkView(t, waitTerminal(t, ts.URL, v.ID), CancelClient)
		if e := endEvent(t, ts.URL, v.ID); e.State != StateCancelled || e.CancelReason != CancelClient {
			t.Fatalf("end event %+v, want cancelled/client", e)
		}
	})

	t.Run("client-queued", func(t *testing.T) {
		srv, ts, _ := testServer(t, Config{Workers: 1, QueueDepth: 4})
		defer srv.Shutdown(context.Background())
		blocker, _, _ := postJob(t, ts.URL, slowJob(2))
		waitState(t, ts.URL, blocker.ID, StateRunning)
		queued, _, _ := postJob(t, ts.URL, slowJob(3))
		resp, err := newRequest(t, http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		checkView(t, waitTerminal(t, ts.URL, queued.ID), CancelClient)
		if resp, err := newRequest(t, http.MethodDelete, ts.URL+"/v1/jobs/"+blocker.ID); err == nil {
			resp.Body.Close()
		}
	})

	t.Run("deadline", func(t *testing.T) {
		srv, ts, _ := testServer(t, Config{Workers: 1, QueueDepth: 4})
		defer srv.Shutdown(context.Background())
		v, _, _ := postJob(t, ts.URL, JobRequest{
			Kind:    KindFuzz,
			Options: Options{Rounds: 1_000_000, TimeoutMs: 20},
		})
		checkView(t, waitTerminal(t, ts.URL, v.ID), CancelDeadline)
		if e := endEvent(t, ts.URL, v.ID); e.CancelReason != CancelDeadline {
			t.Fatalf("end event %+v, want deadline", e)
		}
	})

	t.Run("shutdown", func(t *testing.T) {
		srv, ts, _ := testServer(t, Config{Workers: 1, QueueDepth: 4})
		running, _, _ := postJob(t, ts.URL, slowJob(4))
		waitState(t, ts.URL, running.ID, StateRunning)
		queued, _, _ := postJob(t, ts.URL, slowJob(5))

		hardCtx, hardCancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		defer hardCancel()
		if _, err := srv.Shutdown(hardCtx); err == nil {
			t.Fatal("hard stop under a running million-round job should report an incomplete drain")
		}
		for _, id := range []string{running.ID, queued.ID} {
			v, err := srv.View(id)
			if err != nil {
				t.Fatal(err)
			}
			checkView(t, v, CancelShutdown)
		}
		if e := endEvent(t, ts.URL, running.ID); e.CancelReason != CancelShutdown {
			t.Fatalf("end event %+v, want shutdown", e)
		}
	})
}

// TestServiceSubscriberStorm is the race-enabled e2e satellite: 32
// SSE subscribers spread over a mix of running and queued jobs, one
// job cancelled mid-stream, then a hard shutdown. Every subscriber
// must observe a terminal event (the stream never just hangs), and
// the server must not leak goroutines.
func TestServiceSubscriberStorm(t *testing.T) {
	before := runtime.NumGoroutine()

	srv, ts, _ := testServer(t, Config{
		Workers: 2, QueueDepth: 16,
		ProgressInterval:  2 * time.Millisecond,
		HeartbeatInterval: 10 * time.Millisecond,
	})

	// Four distinct slow jobs: two run, two queue behind them.
	const jobs = 4
	ids := make([]string, jobs)
	for i := 0; i < jobs; i++ {
		v, code, e := postJob(t, ts.URL, slowJob(i))
		if code != http.StatusAccepted {
			t.Fatalf("job %d: status %d (%s)", i, code, e.Error)
		}
		ids[i] = v.ID
	}
	waitState(t, ts.URL, ids[0], StateRunning)
	waitState(t, ts.URL, ids[1], StateRunning)

	// 32 subscribers, 8 per job, attached before anything terminates.
	const subs = 32
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	type outcome struct {
		job      int
		events   []JobEvent
		terminal bool
		err      error
	}
	outcomes := make([]outcome, subs)
	var wg sync.WaitGroup
	for i := 0; i < subs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			job := i % jobs
			events, terminal, err := streamEvents(ctx, ts.URL, ids[job], 0)
			outcomes[i] = outcome{job: job, events: events, terminal: terminal, err: err}
		}(i)
	}

	// Let the streams breathe, cancel one running job mid-flight, then
	// hard-stop the server under the rest.
	time.Sleep(50 * time.Millisecond)
	resp, err := newRequest(t, http.MethodDelete, ts.URL+"/v1/jobs/"+ids[0])
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, ts.URL, ids[0], StateCancelled)

	hardCtx, hardCancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer hardCancel()
	if _, err := srv.Shutdown(hardCtx); err == nil {
		t.Fatal("hard stop under running fuzz jobs should report an incomplete drain")
	}
	wg.Wait()

	wantReason := map[int]string{0: CancelClient}
	for i, o := range outcomes {
		if o.err != nil || !o.terminal {
			t.Fatalf("subscriber %d (job %d): terminal=%v err=%v after %d events",
				i, o.job, o.terminal, o.err, len(o.events))
		}
		checkDense(t, o.events, 1)
		last := o.events[len(o.events)-1]
		if last.Type != EventEnd || last.State != StateCancelled {
			t.Fatalf("subscriber %d: last event %+v, want cancelled end", i, last)
		}
		want := wantReason[o.job]
		if want == "" {
			want = CancelShutdown
		}
		if last.CancelReason != want {
			t.Fatalf("subscriber %d (job %d): cancel reason %q, want %q", i, o.job, last.CancelReason, want)
		}
	}
	// Subscribers to one job all saw the same log.
	for i, o := range outcomes {
		ref := outcomes[o.job].events // subscriber i%jobs==job watched job `job`
		if len(o.events) != len(ref) {
			t.Fatalf("subscriber %d saw %d events, sibling saw %d", i, len(o.events), len(ref))
		}
	}

	// No goroutine leaks: monitors, workers and SSE handlers all
	// unwound. The HTTP test server is closed first so its conn
	// goroutines don't count against the baseline.
	ts.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines: %d before, %d after shutdown\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
