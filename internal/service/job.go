// Package service is the DFT-as-a-service layer: a long-lived job
// server exposing the toolkit's compute core — the sharded fault
// engine, the ATPG drivers, and the differential fuzzer — as
// asynchronous HTTP/JSON jobs with a bounded FIFO queue, a worker
// pool, request coalescing, an LRU result cache, admission control,
// and graceful drain. The paper's economics motivate it: test
// generation and fault simulation are the dominant, repeatable cost
// of LSI testing (Eq. 1, T = K·N³), so in a production flow they run
// as a shared service that amortizes compiled-circuit state and
// deduplicates identical requests rather than as one-shot CLI
// processes.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"dft/internal/circuits"
	"dft/internal/compact"
	"dft/internal/core"
	"dft/internal/fault"
	"dft/internal/logic"
	"dft/internal/telemetry"
)

// Kind names a job type.
type Kind string

const (
	KindFaultSim Kind = "faultsim"
	KindATPG     Kind = "atpg"
	KindFuzz     Kind = "fuzz"
	KindDiagnose Kind = "diagnose"
	KindAdvise   Kind = "advise"
)

// Options mirrors the dftc flag surface for the jobbed subcommands.
// The zero value of every field selects the CLI default, so a request
// body can carry only what it overrides.
type Options struct {
	// Shared knobs.
	Seed    int64 `json:"seed,omitempty"`
	Workers int   `json:"workers,omitempty"`
	Scan    bool  `json:"scan,omitempty"`
	// TimeoutMs overrides the server's per-job deadline when smaller;
	// jobs can shrink their budget but never exceed the server's.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`

	// faultsim: number of random patterns, backend name
	// (auto|parallel|faultparallel|cpt|deductive|serial), and drop
	// ("off" disables fault dropping).
	Patterns int    `json:"patterns,omitempty"`
	Backend  string `json:"backend,omitempty"`
	Drop     string `json:"drop,omitempty"`

	// atpg: engine (podem|dalg), random-first budget, compaction.
	// Compact is the legacy on/off switch (reverse-order compaction);
	// CompactMode (off|reverse|static|dynamic|full) selects the full
	// pipeline and wins when both are set. On faultsim jobs CompactMode
	// compacts the graded random set and reports the ratio.
	Engine      string `json:"engine,omitempty"`
	Random      int    `json:"random,omitempty"`
	Compact     bool   `json:"compact,omitempty"`
	CompactMode string `json:"compact_mode,omitempty"`

	// fuzz: differential-fuzz rounds (seeds 1..Rounds).
	Rounds int `json:"rounds,omitempty"`

	// diagnose: exactly one of Signature (an observed pass/fail string,
	// '1' = pattern failed, possibly shorter than the dictionary when
	// the tester log was truncated) or Inject (a fault in the
	// fault.ParseFault wire format, e.g. "g12 s-a-0", observed by
	// simulating the defective machine). Top bounds the ranked
	// candidate list (default 10); DictFull additionally stores the
	// per-output full-response tier in the dictionary.
	Signature string `json:"signature,omitempty"`
	Inject    string `json:"inject,omitempty"`
	Top       int    `json:"top,omitempty"`
	DictFull  bool   `json:"dict_full,omitempty"`

	// advise: coverage target in [0,1], DFT area budget as a fraction
	// of the original circuit size, and the iteration cap. Zero values
	// select the advisor defaults (0.99 / 0.5 / 32).
	Target   float64 `json:"target,omitempty"`
	Budget   float64 `json:"budget,omitempty"`
	MaxSteps int     `json:"max_steps,omitempty"`
}

// JobRequest is the POST /v1/jobs body. The circuit comes either
// inline (Bench, ISCAS-85 .bench text) or by library generator name
// (Builtin + optional size N); fuzz jobs need neither.
type JobRequest struct {
	Kind    Kind    `json:"kind"`
	Bench   string  `json:"bench,omitempty"`
	Builtin string  `json:"builtin,omitempty"`
	N       int     `json:"n,omitempty"`
	Options Options `json:"options,omitempty"`
}

// State is a job's lifecycle phase.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// terminal reports whether the state is final.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// parsedRequest is a validated request: the instantiated circuit (nil
// for fuzz), its display name, and the dedup key.
type parsedRequest struct {
	req     JobRequest
	circuit *logic.Circuit
	input   string // report Input field: builtin name or "inline"
	key     string
}

// parseRequest validates a request and resolves its circuit. Inline
// .bench payloads go through core.LoadString so they get the same
// structural linting as CLI file loads.
func parseRequest(req JobRequest) (*parsedRequest, error) {
	switch req.Kind {
	case KindFaultSim, KindATPG, KindFuzz, KindDiagnose, KindAdvise:
	case "":
		return nil, fmt.Errorf("missing kind (want faultsim, atpg, fuzz, diagnose or advise)")
	default:
		return nil, fmt.Errorf("unknown kind %q (want faultsim, atpg, fuzz, diagnose or advise)", req.Kind)
	}
	if req.Options.Patterns < 0 || req.Options.Random < 0 || req.Options.Rounds < 0 ||
		req.Options.Workers < 0 || req.Options.TimeoutMs < 0 || req.Options.Top < 0 ||
		req.Options.MaxSteps < 0 {
		return nil, fmt.Errorf("negative option values are invalid")
	}
	if req.Options.Target < 0 || req.Options.Target > 1 {
		return nil, fmt.Errorf("target %v out of range [0,1]", req.Options.Target)
	}
	if req.Options.Budget < 0 {
		return nil, fmt.Errorf("budget %v is negative", req.Options.Budget)
	}
	if req.Kind != KindAdvise &&
		(req.Options.Target != 0 || req.Options.Budget != 0 || req.Options.MaxSteps != 0) {
		return nil, fmt.Errorf("target/budget/max_steps only apply to advise jobs")
	}
	if req.Kind == KindAdvise && req.Options.Scan {
		return nil, fmt.Errorf("advise jobs choose their own scan elements; drop scan")
	}
	if req.Kind == KindDiagnose {
		switch {
		case req.Options.Signature == "" && req.Options.Inject == "":
			return nil, fmt.Errorf("diagnose jobs need a signature or an inject fault")
		case req.Options.Signature != "" && req.Options.Inject != "":
			return nil, fmt.Errorf("give signature or inject, not both")
		case req.Options.Signature != "":
			for i := 0; i < len(req.Options.Signature); i++ {
				if b := req.Options.Signature[i]; b != '0' && b != '1' {
					return nil, fmt.Errorf("signature byte %d is %q (want 0 or 1)", i, b)
				}
			}
		default:
			// Syntax only at admission: the gate range depends on the
			// post-scan circuit, so Validate runs inside the job.
			if _, err := fault.ParseFault(req.Options.Inject); err != nil {
				return nil, err
			}
		}
	} else if req.Options.Signature != "" || req.Options.Inject != "" {
		return nil, fmt.Errorf("signature/inject only apply to diagnose jobs")
	}
	if _, err := fault.ParseBackend(req.Options.Backend); err != nil {
		return nil, err
	}
	switch req.Options.Drop {
	case "", "on", "off":
	default:
		return nil, fmt.Errorf("unknown drop %q (want on or off)", req.Options.Drop)
	}
	switch req.Options.Engine {
	case "", "podem", "dalg":
	default:
		return nil, fmt.Errorf("unknown engine %q (want podem or dalg)", req.Options.Engine)
	}
	if _, err := compact.ParseMode(req.Options.CompactMode); err != nil {
		return nil, err
	}

	p := &parsedRequest{req: req}
	if req.Kind == KindFuzz {
		if req.Bench != "" || req.Builtin != "" {
			return nil, fmt.Errorf("fuzz jobs generate their own circuits; drop bench/builtin")
		}
	} else {
		switch {
		case req.Bench != "" && req.Builtin != "":
			return nil, fmt.Errorf("give bench or builtin, not both")
		case req.Builtin != "":
			c, err := circuits.Builtin(req.Builtin, req.N)
			if err != nil {
				return nil, err
			}
			p.circuit = c
			p.input = req.Builtin
		case req.Bench != "":
			d, err := core.LoadString("inline", req.Bench)
			if err != nil {
				return nil, err
			}
			p.circuit = d.Circuit
			p.input = "inline"
		default:
			return nil, fmt.Errorf("%s jobs need a circuit: bench or builtin", req.Kind)
		}
	}
	p.key = requestKey(req.Kind, p.circuit, req.Options)
	return p, nil
}

// requestKey builds the coalescing/cache key: kind, the canonical
// .bench rendering of the circuit (so equivalent inline and builtin
// submissions of the same netlist collide, and the collapsed fault
// list — a pure function of the netlist — is covered), and the
// canonical JSON of the options. TimeoutMs is excluded: the deadline
// bounds the work, it does not change the answer, and letting it
// split the key would defeat coalescing between impatient and
// patient clients.
func requestKey(kind Kind, c *logic.Circuit, opts Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "kind=%s\n", kind)
	if c != nil {
		h.Write([]byte(canonicalBench(c)))
	}
	opts.TimeoutMs = 0
	enc, _ := json.Marshal(opts)
	h.Write(enc)
	return hex.EncodeToString(h.Sum(nil))
}

// canonicalBench renders the netlist identity used by the dedup key,
// the circuit interner and the fault-dictionary cache. It is
// logic.CanonicalBench, shared with the diagnose package so a stored
// dictionary's netlist hash and the service's cache keys agree on
// what "the same circuit" means.
func canonicalBench(c *logic.Circuit) string {
	return logic.CanonicalBench(c)
}

// Cancellation reasons recorded in cancel_reason: who or what killed
// the job.
const (
	CancelClient   = "client"   // DELETE /v1/jobs/{id}
	CancelDeadline = "deadline" // job or server deadline expired
	CancelShutdown = "shutdown" // server drain or hard stop
)

// Job is one admitted request moving through the queue. All mutable
// fields are guarded by the owning server's mu; reg and events are
// set once at admission and safe to use without it.
type Job struct {
	ID  string
	Key string

	parsed *parsedRequest

	state        State
	err          string
	report       []byte // finished dft.run-report/v1 document
	cached       bool   // served from the result cache
	coalesced    int    // extra submissions attached to this job
	cancelReason string // CancelClient/CancelDeadline/CancelShutdown

	created  time.Time
	started  time.Time
	finished time.Time

	// reg is the job's private telemetry registry: the compute kernels
	// write spans and progress into it, the monitor goroutine samples
	// it, and the finished report embeds its snapshot. Nil for jobs
	// synthesized from the result cache (they never run).
	reg *telemetry.Registry
	// events is the job's live event log backing GET .../events.
	events *eventLog

	cancel func()        // non-nil while cancellable
	done   chan struct{} // closed on terminal state

	// checkpoint holds the latest per-iteration snapshot of a
	// long-running job (advise plans, marshalled by the Checkpoint
	// hook). Written only by the job's own worker goroutine while the
	// job runs, read by the same goroutine after execute returns; a
	// cancelled job attaches it as its report so clients still get the
	// partial plan. Never enters the result cache (finishLocked caches
	// StateDone reports only).
	checkpoint []byte
}

// JobView is the JSON rendering of a job's state returned by the
// HTTP API.
type JobView struct {
	ID           string          `json:"id"`
	Kind         Kind            `json:"kind"`
	State        State           `json:"state"`
	Cached       bool            `json:"cached,omitempty"`
	Coalesced    int             `json:"coalesced,omitempty"`
	Error        string          `json:"error,omitempty"`
	CreatedNs    int64           `json:"created_unix_ns"`
	WaitNs       int64           `json:"wait_ns,omitempty"`
	RunNs        int64           `json:"run_ns,omitempty"`
	CancelledNs  int64           `json:"cancelled_unix_ns,omitempty"`
	CancelReason string          `json:"cancel_reason,omitempty"`
	Report       json.RawMessage `json:"report,omitempty"`
}

// view renders the job under the server lock.
func (j *Job) view() JobView {
	v := JobView{
		ID:        j.ID,
		Kind:      j.parsed.req.Kind,
		State:     j.state,
		Cached:    j.cached,
		Coalesced: j.coalesced,
		Error:     j.err,
		CreatedNs: j.created.UnixNano(),
		Report:    json.RawMessage(j.report),
	}
	if !j.started.IsZero() {
		v.WaitNs = j.started.Sub(j.created).Nanoseconds()
		if !j.finished.IsZero() {
			v.RunNs = j.finished.Sub(j.started).Nanoseconds()
		}
	}
	if j.state == StateCancelled {
		v.CancelledNs = j.finished.UnixNano()
		v.CancelReason = j.cancelReason
	}
	return v
}
