package service

// End-to-end acceptance tests for the job daemon, all race-enabled:
// concurrent mixed-circuit submissions whose coverage must be
// byte-identical to direct fault.Simulate calls, cache hits observed
// through /metrics, 429 backpressure with a JSON body, cancellation,
// and graceful drain.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dft/internal/circuits"
	"dft/internal/core"
	"dft/internal/fault"
	"dft/internal/telemetry"
)

// testServer starts a job server on an ephemeral port with a private
// registry.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	cfg.Metrics = reg
	srv := New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts, reg
}

// postJob submits a request and decodes the response body.
func postJob(t *testing.T, base string, req JobRequest) (JobView, int, errorBody) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusAccepted {
		var v JobView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		return v, resp.StatusCode, errorBody{}
	}
	var e errorBody
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("non-JSON error body (status %d): %v", resp.StatusCode, err)
	}
	return JobView{}, resp.StatusCode, e
}

// getJob fetches a job view over HTTP.
func getJob(t *testing.T, base, id string) (JobView, int) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode job %s: %v", id, err)
	}
	return v, resp.StatusCode
}

// waitTerminal polls a job over HTTP until it reaches a terminal
// state.
func waitTerminal(t *testing.T, base, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		v, code := getJob(t, base, id)
		if code != http.StatusOK {
			t.Fatalf("GET %s: status %d", id, code)
		}
		if v.State.terminal() {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobView{}
}

// reportResults pulls the Results section out of a finished job.
func reportResults(t *testing.T, v JobView) map[string]json.RawMessage {
	t.Helper()
	if len(v.Report) == 0 {
		t.Fatalf("job %s (%s) has no report", v.ID, v.State)
	}
	var rep struct {
		Schema  string                     `json:"schema"`
		Results map[string]json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(v.Report, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != telemetry.ReportSchema {
		t.Fatalf("report schema %q", rep.Schema)
	}
	return rep.Results
}

// mixedJob builds the i-th distinct faultsim request over a cycle of
// library circuits.
func mixedJob(i int) JobRequest {
	kinds := []struct {
		builtin string
		n       int
	}{
		{"c17", 0}, {"adder", 4}, {"parity", 8}, {"mux", 2},
		{"cmp", 4}, {"maj", 5}, {"decoder", 3}, {"alu74181", 0},
	}
	k := kinds[i%len(kinds)]
	return JobRequest{
		Kind:    KindFaultSim,
		Builtin: k.builtin,
		N:       k.n,
		Options: Options{Seed: int64(i + 1), Patterns: 256},
	}
}

// directCoverage computes the coverage a job must reproduce: the same
// circuit, view, seeded pattern set and options through a direct
// fault.Simulate call.
func directCoverage(t *testing.T, req JobRequest) float64 {
	t.Helper()
	c, err := circuits.Builtin(req.Builtin, req.N)
	if err != nil {
		t.Fatal(err)
	}
	d := core.FromCircuit(c)
	view := d.View()
	rng := rand.New(rand.NewSource(req.Options.Seed))
	pats := make([][]bool, req.Options.Patterns)
	for i := range pats {
		p := make([]bool, len(view.Inputs))
		for j := range p {
			p[j] = rng.Intn(2) == 1
		}
		pats[i] = p
	}
	res, err := fault.Simulate(context.Background(), d.Circuit, d.Faults(), pats, fault.Options{
		View:    fault.View{Inputs: view.Inputs, Outputs: view.Outputs},
		Metrics: telemetry.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Coverage()
}

// metricValue scrapes one sample value from the /metrics exposition.
func metricValue(t *testing.T, base, name string) (int64, bool) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v int64
			if _, err := fmt.Sscanf(line, name+" %d", &v); err != nil {
				t.Fatalf("bad sample %q: %v", line, err)
			}
			return v, true
		}
	}
	return 0, false
}

// TestServiceEndToEnd is acceptance criteria (a) and (b): 32
// concurrent mixed-circuit faultsim jobs, each byte-identical to the
// direct engine call, then an identical resubmission served from the
// result cache and observed through /metrics.
func TestServiceEndToEnd(t *testing.T) {
	_, ts, _ := testServer(t, Config{Workers: 4, QueueDepth: 64, CacheSize: 64})

	const jobs = 32
	ids := make([]string, jobs)
	var wg sync.WaitGroup
	errs := make([]error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, code, e := postJob(t, ts.URL, mixedJob(i))
			if code != http.StatusAccepted {
				errs[i] = fmt.Errorf("job %d: status %d (%s)", i, code, e.Error)
				return
			}
			ids[i] = v.ID
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// (a) every job's coverage must match the direct engine call —
	// compare the marshaled JSON bytes, not an epsilon.
	for i := 0; i < jobs; i++ {
		v := waitTerminal(t, ts.URL, ids[i])
		if v.State != StateDone {
			t.Fatalf("job %d (%s): state %s, err %q", i, ids[i], v.State, v.Error)
		}
		got, ok := reportResults(t, v)["coverage"]
		if !ok {
			t.Fatalf("job %d: report has no coverage", i)
		}
		want, err := json.Marshal(directCoverage(t, mixedJob(i)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("job %d coverage = %s, direct fault.Simulate = %s", i, got, want)
		}
	}

	// (b) an identical resubmission is a cache hit: already done at
	// submit time, same result bytes, and the counter shows on
	// /metrics.
	before, _ := metricValue(t, ts.URL, "dft_service_cache_hits_total")
	v, code, _ := postJob(t, ts.URL, mixedJob(0))
	if code != http.StatusAccepted {
		t.Fatalf("resubmit: status %d", code)
	}
	if !v.Cached || v.State != StateDone {
		t.Fatalf("resubmit: cached=%v state=%s, want cache hit", v.Cached, v.State)
	}
	first, _ := getJob(t, ts.URL, ids[0])
	if !bytes.Equal(v.Report, first.Report) {
		t.Fatal("cached report differs from the original run")
	}
	after, ok := metricValue(t, ts.URL, "dft_service_cache_hits_total")
	if !ok || after != before+1 {
		t.Fatalf("cache hits on /metrics: before=%d after=%d (found=%v)", before, after, ok)
	}
}

// slowJob is a fuzz job big enough to stay running until cancelled;
// the seed salt keeps keys distinct so jobs queue instead of
// coalescing.
func slowJob(salt int) JobRequest {
	return JobRequest{
		Kind:    KindFuzz,
		Options: Options{Rounds: 1_000_000, Patterns: 16 + salt},
	}
}

// waitState polls until the job reaches the wanted state.
func waitState(t *testing.T, base, id string, want State) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v, _ := getJob(t, base, id)
		if v.State == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
}

// TestServiceBackpressure is acceptance criterion (c): with one
// worker occupied and the queue full, the next submission is 429 with
// a JSON error body carrying the queue depth.
func TestServiceBackpressure(t *testing.T) {
	srv, ts, _ := testServer(t, Config{Workers: 1, QueueDepth: 1})

	running, code, _ := postJob(t, ts.URL, slowJob(0))
	if code != http.StatusAccepted {
		t.Fatalf("first job: status %d", code)
	}
	waitState(t, ts.URL, running.ID, StateRunning)

	queued, code, _ := postJob(t, ts.URL, slowJob(1))
	if code != http.StatusAccepted {
		t.Fatalf("second job: status %d", code)
	}

	_, code, e := postJob(t, ts.URL, slowJob(2))
	if code != http.StatusTooManyRequests {
		t.Fatalf("third job: status %d, want 429", code)
	}
	if e.Error == "" || e.QueueDepth != 1 || e.QueueCapacity != 1 {
		t.Fatalf("429 body = %+v, want error + queue depth/capacity", e)
	}

	// Cancel both: the runner unwinds through its context, the queued
	// one dies in place.
	for _, id := range []string{queued.ID, running.ID} {
		resp, err := newRequest(t, http.MethodDelete, ts.URL+"/v1/jobs/"+id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		waitState(t, ts.URL, id, StateCancelled)
	}
	if rep, err := srv.Shutdown(context.Background()); err != nil || rep == nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// newRequest issues a bodyless request with the given method.
func newRequest(t *testing.T, method, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return http.DefaultClient.Do(req)
}

// TestServiceGracefulDrain is acceptance criterion (d): Shutdown
// stops admission, lets queued and running jobs finish, and returns
// the final telemetry report.
func TestServiceGracefulDrain(t *testing.T) {
	srv, ts, _ := testServer(t, Config{Workers: 2, QueueDepth: 16})

	const jobs = 8
	ids := make([]string, jobs)
	for i := 0; i < jobs; i++ {
		v, code, e := postJob(t, ts.URL, mixedJob(i))
		if code != http.StatusAccepted {
			t.Fatalf("job %d: status %d (%s)", i, code, e.Error)
		}
		ids[i] = v.ID
	}

	rep, err := srv.Shutdown(context.Background())
	if err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if rep == nil || rep.Schema != telemetry.ReportSchema {
		t.Fatalf("final report = %+v", rep)
	}

	// Every admitted job drained to done — none were dropped or
	// cancelled by the shutdown.
	for i, id := range ids {
		v, err := srv.View(id)
		if err != nil {
			t.Fatal(err)
		}
		if v.State != StateDone {
			t.Fatalf("job %d: state %s after drain, want done", i, v.State)
		}
	}
	if got := rep.Results["jobs_completed"].(int64); got < jobs {
		t.Fatalf("final report jobs_completed = %v, want >= %d", got, jobs)
	}

	// Admission is closed: HTTP answers 503.
	_, code, e := postJob(t, ts.URL, mixedJob(0))
	if code != http.StatusServiceUnavailable || e.Error == "" {
		t.Fatalf("post-shutdown submit: status %d body %+v, want 503", code, e)
	}
	// And a second Shutdown reports the misuse.
	if _, err := srv.Shutdown(context.Background()); err == nil {
		t.Fatal("second shutdown did not error")
	}
}

// TestServiceHardStop: an expired drain budget hard-cancels the
// running job through the base context instead of hanging.
func TestServiceHardStop(t *testing.T) {
	srv, ts, _ := testServer(t, Config{Workers: 1, QueueDepth: 4})
	v, code, _ := postJob(t, ts.URL, slowJob(7))
	if code != http.StatusAccepted {
		t.Fatalf("status %d", code)
	}
	waitState(t, ts.URL, v.ID, StateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	rep, err := srv.Shutdown(ctx)
	if err == nil {
		t.Fatal("shutdown within 30ms of a million-round fuzz job should report an incomplete drain")
	}
	if rep == nil {
		t.Fatal("hard stop must still return the final report")
	}
	jv, verr := srv.View(v.ID)
	if verr != nil || jv.State != StateCancelled {
		t.Fatalf("job after hard stop: %+v, %v", jv, verr)
	}
}

// TestServiceCoalescing: identical submissions while the key is
// in-flight attach to the same job instead of queueing twice.
func TestServiceCoalescing(t *testing.T) {
	srv, ts, reg := testServer(t, Config{Workers: 1, QueueDepth: 8})
	defer srv.Shutdown(context.Background())

	blocker, _, _ := postJob(t, ts.URL, slowJob(0))
	waitState(t, ts.URL, blocker.ID, StateRunning)

	// The worker is busy, so this queues...
	a, code, _ := postJob(t, ts.URL, mixedJob(1))
	if code != http.StatusAccepted {
		t.Fatalf("status %d", code)
	}
	// ...and the identical twin coalesces onto it.
	b, code, _ := postJob(t, ts.URL, mixedJob(1))
	if code != http.StatusAccepted {
		t.Fatalf("status %d", code)
	}
	if a.ID != b.ID {
		t.Fatalf("identical queued submissions got distinct jobs %s / %s", a.ID, b.ID)
	}
	if got := reg.Counter("service.jobs.coalesced").Value(); got != 1 {
		t.Fatalf("coalesced counter = %d, want 1", got)
	}
	if resp, err := newRequest(t, http.MethodDelete, ts.URL+"/v1/jobs/"+blocker.ID); err == nil {
		resp.Body.Close()
	}
	waitTerminal(t, ts.URL, a.ID)
}

// TestServiceValidation: malformed submissions are 400 with a JSON
// error, and unknown job lookups are 404.
func TestServiceValidation(t *testing.T) {
	srv, ts, _ := testServer(t, Config{Workers: 1, QueueDepth: 2})
	defer srv.Shutdown(context.Background())

	for name, req := range map[string]JobRequest{
		"missing kind":    {Builtin: "c17"},
		"unknown kind":    {Kind: "synthesis", Builtin: "c17"},
		"no circuit":      {Kind: KindFaultSim},
		"both sources":    {Kind: KindFaultSim, Builtin: "c17", Bench: "INPUT(a)"},
		"bad builtin":     {Kind: KindFaultSim, Builtin: "nonesuch"},
		"bad size":        {Kind: KindFaultSim, Builtin: "maj", N: 4},
		"huge size":       {Kind: KindFaultSim, Builtin: "adder", N: 1 << 20},
		"bad backend":     {Kind: KindFaultSim, Builtin: "c17", Options: Options{Backend: "warp"}},
		"bad engine":      {Kind: KindATPG, Builtin: "c17", Options: Options{Engine: "brute"}},
		"bad compaction":  {Kind: KindATPG, Builtin: "c17", Options: Options{CompactMode: "bogus"}},
		"negative budget": {Kind: KindFaultSim, Builtin: "c17", Options: Options{Patterns: -4}},
		"fuzz + circuit":  {Kind: KindFuzz, Builtin: "c17"},
		"diagnose no evidence": {Kind: KindDiagnose, Builtin: "c17"},
		"diagnose both evidence": {Kind: KindDiagnose, Builtin: "c17",
			Options: Options{Inject: "g6 s-a-0", Signature: "0101"}},
		"diagnose bad signature": {Kind: KindDiagnose, Builtin: "c17",
			Options: Options{Signature: "01x1"}},
		"diagnose bad inject": {Kind: KindDiagnose, Builtin: "c17",
			Options: Options{Inject: "g6 stuck"}},
		"diagnose negative top": {Kind: KindDiagnose, Builtin: "c17",
			Options: Options{Inject: "g6 s-a-0", Top: -1}},
		"signature on faultsim": {Kind: KindFaultSim, Builtin: "c17",
			Options: Options{Signature: "0101"}},
		"bad bench": {Kind: KindFaultSim,
			Bench: "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOT(a, b)\n"},
	} {
		_, code, e := postJob(t, ts.URL, req)
		if code != http.StatusBadRequest || e.Error == "" {
			t.Errorf("%s: status %d body %+v, want 400 + error", name, code, e)
		}
	}

	if _, code := getJob(t, ts.URL, "job-999999"); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}
	resp, err := newRequest(t, http.MethodDelete, ts.URL+"/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("cancel unknown job: status %d, want 404", resp.StatusCode)
	}
}

// TestServiceCompactMode: compact_mode on atpg jobs runs the full
// compaction pipeline and surfaces its stats in the report, and on
// faultsim jobs compacts the graded random set.
func TestServiceCompactMode(t *testing.T) {
	srv, ts, _ := testServer(t, Config{Workers: 2, QueueDepth: 8})
	defer srv.Shutdown(context.Background())

	v, code, _ := postJob(t, ts.URL, JobRequest{
		Kind: KindATPG, Builtin: "alu74181",
		Options: Options{Random: 64, CompactMode: "full"},
	})
	if code != http.StatusAccepted {
		t.Fatalf("status %d", code)
	}
	got := waitTerminal(t, ts.URL, v.ID)
	if got.State != StateDone {
		t.Fatalf("atpg compact job: %s (%s)", got.State, got.Error)
	}
	results := reportResults(t, got)
	var in, out int
	if err := json.Unmarshal(results["patterns_in"], &in); err != nil {
		t.Fatalf("patterns_in missing: %v", err)
	}
	if err := json.Unmarshal(results["patterns_out"], &out); err != nil {
		t.Fatalf("patterns_out missing: %v", err)
	}
	if out > in || out == 0 {
		t.Fatalf("compaction: patterns %d -> %d", in, out)
	}

	v, code, _ = postJob(t, ts.URL, JobRequest{
		Kind: KindFaultSim, Builtin: "mult", N: 5,
		Options: Options{Patterns: 256, CompactMode: "reverse"},
	})
	if code != http.StatusAccepted {
		t.Fatalf("status %d", code)
	}
	got = waitTerminal(t, ts.URL, v.ID)
	if got.State != StateDone {
		t.Fatalf("faultsim compact job: %s (%s)", got.State, got.Error)
	}
	results = reportResults(t, got)
	var ratio float64
	if err := json.Unmarshal(results["compact_ratio"], &ratio); err != nil {
		t.Fatalf("compact_ratio missing: %v", err)
	}
	if ratio < 2 {
		t.Fatalf("faultsim compact ratio = %.2f, want >= 2 on a 256-pattern random set", ratio)
	}
}

// TestServiceDiagnose is the diagnosis acceptance check: a kind:
// diagnose job with an injected fault must return that fault's
// equivalence-class representative among the ranked candidates at
// Hamming distance 0 with an exact-class hit, a second job against the
// same design must reuse the cached dictionary, and a signature-driven
// job must accept a truncated response.
func TestServiceDiagnose(t *testing.T) {
	srv, ts, reg := testServer(t, Config{Workers: 2, QueueDepth: 8})
	defer srv.Shutdown(context.Background())

	c := circuits.C17()
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	truth := cl.Reps[3]

	v, code, e := postJob(t, ts.URL, JobRequest{
		Kind: KindDiagnose, Builtin: "c17",
		Options: Options{Inject: truth.String(), Patterns: 64},
	})
	if code != http.StatusAccepted {
		t.Fatalf("status %d (%s)", code, e.Error)
	}
	got := waitTerminal(t, ts.URL, v.ID)
	if got.State != StateDone {
		t.Fatalf("diagnose job: %s (%s)", got.State, got.Error)
	}
	results := reportResults(t, got)

	var cands []struct {
		Fault    string `json:"fault"`
		Name     string `json:"name"`
		Distance int    `json:"distance"`
	}
	if err := json.Unmarshal(results["candidates"], &cands); err != nil {
		t.Fatalf("candidates missing: %v", err)
	}
	found := false
	for _, cand := range cands {
		if cand.Fault == truth.String() {
			found = true
			if cand.Distance != 0 {
				t.Fatalf("injected rep ranked at distance %d, want 0", cand.Distance)
			}
		}
	}
	if !found {
		t.Fatalf("injected rep %s not among candidates %v", truth.String(), cands)
	}
	var hit, cached bool
	if err := json.Unmarshal(results["hit"], &hit); err != nil || !hit {
		t.Fatalf("hit = %s (%v), want true", results["hit"], err)
	}
	if err := json.Unmarshal(results["dict_cached"], &cached); err != nil || cached {
		t.Fatalf("first job dict_cached = %s, want false", results["dict_cached"])
	}

	// The unsalted seed defaults to 1, and the report says so.
	var rep struct {
		Config map[string]json.RawMessage `json:"config"`
	}
	if err := json.Unmarshal(got.Report, &rep); err != nil {
		t.Fatal(err)
	}
	var seed int64
	var defaulted bool
	if err := json.Unmarshal(rep.Config["seed"], &seed); err != nil || seed != 1 {
		t.Fatalf("config seed = %s (%v), want 1", rep.Config["seed"], err)
	}
	if err := json.Unmarshal(rep.Config["seed_defaulted"], &defaulted); err != nil || !defaulted {
		t.Fatalf("config seed_defaulted = %s (%v), want true", rep.Config["seed_defaulted"], err)
	}

	// A different evidence signature against the same design reuses the
	// dictionary: dict_cached flips and the hit counter moves.
	misses := reg.Counter("service.dict.misses").Value()
	v, code, _ = postJob(t, ts.URL, JobRequest{
		Kind: KindDiagnose, Builtin: "c17",
		Options: Options{Inject: cl.Reps[5].String(), Patterns: 64},
	})
	if code != http.StatusAccepted {
		t.Fatalf("status %d", code)
	}
	got = waitTerminal(t, ts.URL, v.ID)
	if got.State != StateDone {
		t.Fatalf("second diagnose job: %s (%s)", got.State, got.Error)
	}
	results = reportResults(t, got)
	if err := json.Unmarshal(results["dict_cached"], &cached); err != nil || !cached {
		t.Fatalf("second job dict_cached = %s, want true", results["dict_cached"])
	}
	if h := reg.Counter("service.dict.hits").Value(); h < 1 {
		t.Fatalf("service.dict.hits = %d, want >= 1", h)
	}
	if m := reg.Counter("service.dict.misses").Value(); m != misses {
		t.Fatalf("second job missed the dictionary cache (%d -> %d)", misses, m)
	}

	// Truncated-signature evidence: a prefix of the injected machine's
	// response still ranks its class best.
	var dictPats int
	if err := json.Unmarshal(results["dict_patterns"], &dictPats); err != nil {
		t.Fatal(err)
	}
	half := dictPats / 2
	if half == 0 {
		t.Fatalf("dictionary kept %d patterns", dictPats)
	}
	sig := strings.Repeat("0", half)
	v, code, _ = postJob(t, ts.URL, JobRequest{
		Kind: KindDiagnose, Builtin: "c17",
		Options: Options{Signature: sig, Patterns: 64, Top: 3},
	})
	if code != http.StatusAccepted {
		t.Fatalf("status %d", code)
	}
	got = waitTerminal(t, ts.URL, v.ID)
	if got.State != StateDone {
		t.Fatalf("signature job: %s (%s)", got.State, got.Error)
	}
	results = reportResults(t, got)
	if err := json.Unmarshal(results["candidates"], &cands); err != nil || len(cands) == 0 || len(cands) > 3 {
		t.Fatalf("signature candidates = %s (%v), want 1..3", results["candidates"], err)
	}
	var obs int
	if err := json.Unmarshal(results["observed_patterns"], &obs); err != nil || obs != half {
		t.Fatalf("observed_patterns = %s (%v), want %d", results["observed_patterns"], err, half)
	}
}

// TestServiceHealthz sanity-checks the liveness endpoint.
func TestServiceHealthz(t *testing.T) {
	srv, ts, _ := testServer(t, Config{Workers: 3, QueueDepth: 5})
	defer srv.Shutdown(context.Background())
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h healthBody
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Workers != 3 || h.QueueCapacity != 5 {
		t.Fatalf("healthz = %+v", h)
	}
}

// TestServiceATPGAndTimeout: an atpg job completes with plausible
// coverage, and a microscopic per-job budget cancels rather than
// fails.
func TestServiceATPGAndTimeout(t *testing.T) {
	srv, ts, _ := testServer(t, Config{Workers: 2, QueueDepth: 8})
	defer srv.Shutdown(context.Background())

	v, code, _ := postJob(t, ts.URL, JobRequest{
		Kind: KindATPG, Builtin: "alu74181",
		Options: Options{Random: 64, Compact: true},
	})
	if code != http.StatusAccepted {
		t.Fatalf("status %d", code)
	}
	got := waitTerminal(t, ts.URL, v.ID)
	if got.State != StateDone {
		t.Fatalf("atpg job: %s (%s)", got.State, got.Error)
	}
	var cov float64
	if err := json.Unmarshal(reportResults(t, got)["coverage"], &cov); err != nil || cov < 0.9 {
		t.Fatalf("atpg coverage = %v (%v)", cov, err)
	}

	v, code, _ = postJob(t, ts.URL, JobRequest{
		Kind: KindATPG, Builtin: "alu74181x", N: 4,
		Options: Options{TimeoutMs: 1},
	})
	if code != http.StatusAccepted {
		t.Fatalf("status %d", code)
	}
	got = waitTerminal(t, ts.URL, v.ID)
	if got.State != StateCancelled {
		t.Fatalf("1ms atpg job: state %s, want cancelled", got.State)
	}
}
