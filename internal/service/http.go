package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"dft/internal/telemetry"
)

// maxRequestBody bounds a POST /v1/jobs body (inline .bench payloads
// included) to keep a hostile client from ballooning the heap.
const maxRequestBody = 16 << 20

// routes wires the server's HTTP surface:
//
//	POST   /v1/jobs              submit a job; 202 with the job view,
//	                             429 + JSON body when the queue is full
//	GET    /v1/jobs/{id}         job state; includes the dft.run-report/v1
//	                             document once the job is done
//	GET    /v1/jobs/{id}/trace   the job's span tree (live for a running
//	                             job, final for a terminal one)
//	GET    /v1/jobs/{id}/events  Server-Sent Events stream: queue,
//	                             running, phase, progress, heartbeat, end
//	DELETE /v1/jobs/{id}         cancel a queued or running job
//	GET    /healthz              liveness + queue/worker occupancy
//	GET    /metrics              Prometheus text exposition of the registry
func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
}

// ServeHTTP makes the server mountable under any http.Server (and is
// the handler dft.NewService hands back to embedders).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// writeJSON emits one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // nothing useful to do mid-response
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error         string `json:"error"`
	QueueDepth    int    `json:"queue_depth,omitempty"`
	QueueCapacity int    `json:"queue_capacity,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	j, err := s.Submit(req)
	if err != nil {
		var full *ErrQueueFull
		var bad *ErrBadRequest
		switch {
		case errors.As(err, &full):
			writeJSON(w, http.StatusTooManyRequests, errorBody{
				Error:         full.Error(),
				QueueDepth:    full.Depth,
				QueueCapacity: full.Capacity,
			})
		case errors.As(err, &bad):
			writeJSON(w, http.StatusBadRequest, errorBody{Error: bad.Error()})
		case errors.Is(err, ErrDraining):
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		default:
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		}
		return
	}
	v, err := s.View(j.ID)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, v)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	v, err := s.View(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// traceBody is the GET /v1/jobs/{id}/trace response: the job's span
// tree in the same shape as the run-report's trace section.
type traceBody struct {
	ID     string                `json:"id"`
	State  State                 `json:"state"`
	Schema string                `json:"schema"`
	Trace  []*telemetry.SpanNode `json:"trace"`
}

// handleTrace serves the span tree. For a terminal job it is read out
// of the stored run report (the canonical record); for a queued or
// running job it is built live from the job registry's completed
// spans, so a client can watch the tree grow while phases finish.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		writeJSON(w, http.StatusNotFound, errorBody{Error: ErrUnknownJob.Error()})
		return
	}
	state, report, reg := j.state, j.report, j.reg
	s.mu.Unlock()

	body := traceBody{ID: j.ID, State: state, Schema: telemetry.ReportSchema}
	switch {
	case report != nil:
		rep, err := telemetry.ParseReport(report)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
			return
		}
		body.Trace = rep.Trace
	case reg != nil:
		events, _ := reg.Trace().Events()
		body.Trace = telemetry.BuildSpanTree(events)
	}
	writeJSON(w, http.StatusOK, body)
}

// handleEvents streams the job's event log as Server-Sent Events. A
// Last-Event-ID header resumes after that sequence number (replaying
// anything missed); the stream ends after the terminal event, or when
// the client goes away — whichever comes first. Subscribers only read
// the log and park on its notification channel, so any number of them
// can watch one job without touching the job's hot path.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: ErrUnknownJob.Error()})
		return
	}
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "streaming unsupported"})
		return
	}
	var after int64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		after, _ = strconv.ParseInt(v, 10, 64)
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		events, closed, changed := j.events.since(after)
		for _, e := range events {
			if err := writeSSE(w, e); err != nil {
				return
			}
			after = e.Seq
		}
		if len(events) > 0 {
			fl.Flush()
			continue // the log may have grown while we wrote
		}
		if closed {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	v, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// healthBody is the /healthz response.
type healthBody struct {
	Status        string `json:"status"`
	Draining      bool   `json:"draining,omitempty"`
	QueueDepth    int    `json:"queue_depth"`
	QueueCapacity int    `json:"queue_capacity"`
	Workers       int    `json:"workers"`
	Jobs          int    `json:"jobs"`
	CachedResults int    `json:"cached_results"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	body := healthBody{
		Status:        "ok",
		Draining:      s.draining,
		QueueDepth:    len(s.queue),
		QueueCapacity: s.cfg.QueueDepth,
		Workers:       s.cfg.Workers,
		Jobs:          len(s.jobs),
		CachedResults: s.results.len(),
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.updateQueueAge()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.Snapshot().WritePrometheus(w) //nolint:errcheck // mid-response
}
