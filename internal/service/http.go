package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// maxRequestBody bounds a POST /v1/jobs body (inline .bench payloads
// included) to keep a hostile client from ballooning the heap.
const maxRequestBody = 16 << 20

// routes wires the server's HTTP surface:
//
//	POST   /v1/jobs       submit a job; 202 with the job view,
//	                      429 + JSON body when the queue is full
//	GET    /v1/jobs/{id}  job state; includes the dft.run-report/v1
//	                      document once the job is done
//	DELETE /v1/jobs/{id}  cancel a queued or running job
//	GET    /healthz       liveness + queue/worker occupancy
//	GET    /metrics       Prometheus text exposition of the registry
func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
}

// ServeHTTP makes the server mountable under any http.Server (and is
// the handler dft.NewService hands back to embedders).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// writeJSON emits one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // nothing useful to do mid-response
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error         string `json:"error"`
	QueueDepth    int    `json:"queue_depth,omitempty"`
	QueueCapacity int    `json:"queue_capacity,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	j, err := s.Submit(req)
	if err != nil {
		var full *ErrQueueFull
		var bad *ErrBadRequest
		switch {
		case errors.As(err, &full):
			writeJSON(w, http.StatusTooManyRequests, errorBody{
				Error:         full.Error(),
				QueueDepth:    full.Depth,
				QueueCapacity: full.Capacity,
			})
		case errors.As(err, &bad):
			writeJSON(w, http.StatusBadRequest, errorBody{Error: bad.Error()})
		case errors.Is(err, ErrDraining):
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		default:
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		}
		return
	}
	v, err := s.View(j.ID)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, v)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	v, err := s.View(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	v, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// healthBody is the /healthz response.
type healthBody struct {
	Status        string `json:"status"`
	Draining      bool   `json:"draining,omitempty"`
	QueueDepth    int    `json:"queue_depth"`
	QueueCapacity int    `json:"queue_capacity"`
	Workers       int    `json:"workers"`
	Jobs          int    `json:"jobs"`
	CachedResults int    `json:"cached_results"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	body := healthBody{
		Status:        "ok",
		Draining:      s.draining,
		QueueDepth:    len(s.queue),
		QueueCapacity: s.cfg.QueueDepth,
		Workers:       s.cfg.Workers,
		Jobs:          len(s.jobs),
		CachedResults: s.results.len(),
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.Snapshot().WritePrometheus(w) //nolint:errcheck // mid-response
}
