package service

import (
	"bytes"
	"context"
	"math/rand"

	"dft/internal/atpg"
	"dft/internal/core"
	"dft/internal/fault"
	"dft/internal/fuzzdiff"
	"dft/internal/telemetry"
)

// execute runs one validated job under ctx and returns its run
// report. Each job gets a private telemetry registry so the report's
// metrics section describes exactly this job's work; the server's own
// registry only carries the service.* instruments.
func (s *Server) execute(ctx context.Context, p *parsedRequest) (*telemetry.Report, error) {
	reg := telemetry.NewRegistry()
	switch p.req.Kind {
	case KindFaultSim:
		return runFaultSim(ctx, p, reg)
	case KindATPG:
		return runATPG(ctx, p, reg)
	default:
		return runFuzz(ctx, p, reg)
	}
}

// encodeReport renders a report as the bytes served to clients and
// stored in the result cache.
func encodeReport(rep *telemetry.Report) ([]byte, error) {
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// design wraps the job's interned circuit in the requested view. The
// interned circuit itself is shared read-only across workers;
// core.FromCircuit and ApplyScan build fresh per-job state around it.
func design(p *parsedRequest) (*core.Design, error) {
	d := core.FromCircuit(p.circuit)
	if p.req.Options.Scan {
		if err := d.ApplyScan(core.StyleLSSD); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// seedOf resolves the request seed (CLI default: 1).
func seedOf(o Options) int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// runFaultSim mirrors `dftc faultsim`: grade a seeded random pattern
// set against the collapsed fault list. Coverage is bit-identical to
// a direct fault.Simulate call with the same circuit, seed and
// options — the service adds queuing and caching, never arithmetic.
func runFaultSim(ctx context.Context, p *parsedRequest, reg *telemetry.Registry) (*telemetry.Report, error) {
	o := p.req.Options
	d, err := design(p)
	if err != nil {
		return nil, err
	}
	backend, err := fault.ParseBackend(o.Backend)
	if err != nil {
		return nil, err
	}
	n := o.Patterns
	if n == 0 {
		n = 1024
	}
	drop := fault.DropOn
	if o.Drop == "off" {
		drop = fault.DropOff
	}
	seed := seedOf(o)
	view := d.View()
	rng := rand.New(rand.NewSource(seed))
	pats := make([][]bool, n)
	for i := range pats {
		pat := make([]bool, len(view.Inputs))
		for j := range pat {
			pat[j] = rng.Intn(2) == 1
		}
		pats[i] = pat
	}
	res, err := fault.Simulate(ctx, d.Circuit, d.Faults(), pats, fault.Options{
		Backend: backend,
		Workers: o.Workers,
		Drop:    drop,
		View:    fault.View{Inputs: view.Inputs, Outputs: view.Outputs},
		Metrics: reg,
	})
	if err != nil {
		return nil, err
	}
	kept := make(map[int]bool)
	for _, pi := range res.DetectedBy {
		if pi >= 0 {
			kept[pi] = true
		}
	}
	rep := telemetry.NewReport("dftd", string(KindFaultSim), p.input)
	rep.Config = map[string]any{
		"patterns": n, "seed": seed, "scan": o.Scan,
		"engine": backend.String(), "workers": o.Workers,
		"drop": drop == fault.DropOn,
	}
	rep.Results = map[string]any{
		"coverage":      res.Coverage(),
		"kept_patterns": len(kept),
		"targets":       len(res.Faults),
		"detected":      res.NumCaught,
	}
	return rep.Finish(reg), nil
}

// runATPG mirrors `dftc atpg`: deterministic generation (optionally
// random-first and compacted) under the job deadline.
func runATPG(ctx context.Context, p *parsedRequest, reg *telemetry.Registry) (*telemetry.Report, error) {
	o := p.req.Options
	d, err := design(p)
	if err != nil {
		return nil, err
	}
	engine := atpg.EnginePodem
	if o.Engine == "dalg" {
		engine = atpg.EngineDAlg
	}
	seed := seedOf(o)
	ts, err := d.GenerateContext(ctx, core.GenerateOptions{
		Engine:      engine,
		RandomFirst: o.Random,
		Seed:        seed,
		Compact:     o.Compact,
		Workers:     o.Workers,
		Metrics:     reg,
	})
	if err != nil {
		return nil, err
	}
	rep := telemetry.NewReport("dftd", string(KindATPG), p.input)
	rep.Config = map[string]any{
		"engine": o.Engine, "scan": o.Scan, "random": o.Random,
		"compact": o.Compact, "seed": seed, "workers": o.Workers,
	}
	rep.Results = map[string]any{
		"patterns":     len(ts.Patterns),
		"coverage":     ts.Coverage,
		"raw_coverage": ts.RawCover,
		"untestable":   ts.Untestable,
		"aborted":      ts.Aborted,
		"targets":      ts.TargetN,
		"gates":        d.Circuit.NumGates(),
		"dffs":         d.Circuit.NumDFFs(),
	}
	return rep.Finish(reg), nil
}

// runFuzz mirrors `dftc fuzz`: sweep seeds 1..Rounds through the
// differential checker, honoring the job deadline between rounds.
func runFuzz(ctx context.Context, p *parsedRequest, reg *telemetry.Registry) (*telemetry.Report, error) {
	o := p.req.Options
	rounds := o.Rounds
	if rounds == 0 {
		rounds = 50
	}
	patterns := o.Patterns
	if patterns == 0 {
		patterns = 64
	}
	var div *fuzzdiff.Divergence
	ran := 0
	for seed := int64(1); seed <= int64(rounds); seed++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ran++
		if d := fuzzdiff.Round(fuzzdiff.ShapeConfig(seed), seed, fuzzdiff.RoundOptions{Patterns: patterns}); d != nil {
			div = d
			break
		}
	}
	rep := telemetry.NewReport("dftd", string(KindFuzz), "")
	rep.Config = map[string]any{
		"rounds": rounds, "patterns": patterns, "configs": len(fuzzdiff.Matrix()),
	}
	nDiv := 0
	if div != nil {
		nDiv = 1
		rep.Results = map[string]any{"repro": div.Repro(), "seed": div.Seed}
	} else {
		rep.Results = map[string]any{}
	}
	rep.Results["rounds"] = ran
	rep.Results["divergences"] = nDiv
	return rep.Finish(reg), nil
}
