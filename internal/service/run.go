package service

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"

	"dft/internal/advise"
	"dft/internal/atpg"
	"dft/internal/compact"
	"dft/internal/core"
	"dft/internal/fault"
	"dft/internal/fuzzdiff"
	"dft/internal/sim"
	"dft/internal/telemetry"
)

// execute runs one job under ctx and returns its run report. The
// job's private telemetry registry (created at admission, sampled
// live by the monitor) receives all the work's instruments, so the
// report's metrics section describes exactly this job's work; the
// server's own registry only carries the service.* instruments. The
// root "job" span parents every phase span the kernels open through
// the context, and the report is finished only after it ends, so the
// trace section always contains the complete tree.
func (s *Server) execute(ctx context.Context, j *Job) (*telemetry.Report, error) {
	p, reg := j.parsed, j.reg
	ctx, span := telemetry.StartSpanCtx(ctx, reg, "job")
	span.SetAttr("kind", string(p.req.Kind))
	var rep *telemetry.Report
	var err error
	switch p.req.Kind {
	case KindFaultSim:
		rep, err = runFaultSim(ctx, p, reg)
	case KindATPG:
		rep, err = runATPG(ctx, p, reg)
	case KindDiagnose:
		rep, err = s.runDiagnose(ctx, p, reg)
	case KindAdvise:
		rep, err = runAdvise(ctx, j)
	default:
		rep, err = runFuzz(ctx, p, reg)
	}
	span.End()
	if err != nil {
		return nil, err
	}
	return rep.Finish(reg), nil
}

// encodeReport renders a report as the bytes served to clients and
// stored in the result cache.
func encodeReport(rep *telemetry.Report) ([]byte, error) {
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// design wraps the job's interned circuit in the requested view. The
// interned circuit itself is shared read-only across workers;
// core.FromCircuit and ApplyScan build fresh per-job state around it.
func design(p *parsedRequest) (*core.Design, error) {
	d := core.FromCircuit(p.circuit)
	if p.req.Options.Scan {
		if err := d.ApplyScan(core.StyleLSSD); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// seedOf resolves the request seed (CLI default: 1).
func seedOf(o Options) int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// recordSeed writes the effective seed into the report config. seed 0
// in a request silently aliases to the CLI default of 1; recording the
// resolved value (and flagging the aliasing) keeps the report honest —
// a client that sent seed 0 and reads back seed 1 knows exactly which
// pattern set was graded.
func recordSeed(rep *telemetry.Report, o Options, seed int64) {
	rep.Config["seed"] = seed
	if o.Seed == 0 {
		rep.Config["seed_defaulted"] = true
	}
}

// runFaultSim mirrors `dftc faultsim`: grade a seeded random pattern
// set against the collapsed fault list. Coverage is bit-identical to
// a direct fault.Simulate call with the same circuit, seed and
// options — the service adds queuing and caching, never arithmetic.
func runFaultSim(ctx context.Context, p *parsedRequest, reg *telemetry.Registry) (*telemetry.Report, error) {
	o := p.req.Options
	d, err := design(p)
	if err != nil {
		return nil, err
	}
	backend, err := fault.ParseBackend(o.Backend)
	if err != nil {
		return nil, err
	}
	n := o.Patterns
	if n == 0 {
		n = 1024
	}
	drop := fault.DropOn
	if o.Drop == "off" {
		drop = fault.DropOff
	}
	seed := seedOf(o)
	view := d.View()
	rng := rand.New(rand.NewSource(seed))
	pats := make([][]bool, n)
	for i := range pats {
		pat := make([]bool, len(view.Inputs))
		for j := range pat {
			pat[j] = rng.Intn(2) == 1
		}
		pats[i] = pat
	}
	rep := telemetry.NewReport("dftd", string(KindFaultSim), p.input)
	rep.Config = map[string]any{
		"patterns": n, "scan": o.Scan,
		"engine": backend.String(), "workers": o.Workers,
		"drop": drop == fault.DropOn,
	}
	recordSeed(rep, o, seed)
	mode, _ := compact.ParseMode(o.CompactMode) // validated at admission
	if mode.Enabled() {
		// Compaction replays the same engine grade internally
		// (detection outcomes are drop-invariant), so running
		// fault.Simulate first would grade the whole set twice for the
		// same numbers. The compactor's before-side stats ARE the
		// plain grade.
		_, cst, err := compact.Patterns(ctx, d.Circuit, view, d.Faults(), pats, compact.Options{
			Mode: mode, Workers: o.Workers, Seed: seed, Metrics: reg,
		})
		if err != nil {
			return nil, err
		}
		rep.Config["compact_mode"] = mode.String()
		rep.Results = map[string]any{
			"coverage":      cst.CoverageIn,
			"kept_patterns": cst.PatternsOut,
			"targets":       len(d.Faults()),
			"detected":      cst.DetectedIn,
			"patterns_in":   cst.PatternsIn,
			"patterns_out":  cst.PatternsOut,
			"compact_ratio": cst.Ratio,
			"replay_passes": cst.ReplayPasses,
		}
	} else {
		res, err := fault.Simulate(ctx, d.Circuit, d.Faults(), pats, fault.Options{
			Backend: backend,
			Workers: o.Workers,
			Drop:    drop,
			View:    fault.View{Inputs: view.Inputs, Outputs: view.Outputs},
			Metrics: reg,
		})
		if err != nil {
			return nil, err
		}
		kept := make(map[int]bool)
		for _, pi := range res.DetectedBy {
			if pi >= 0 {
				kept[pi] = true
			}
		}
		rep.Results = map[string]any{
			"coverage":      res.Coverage(),
			"kept_patterns": len(kept),
			"targets":       len(res.Faults),
			"detected":      res.NumCaught,
		}
	}
	if prog := sim.ActiveProgram(d.Circuit); prog != nil {
		rep.Results["folded_gates"] = prog.Folded()
		rep.Results["hashed_gates"] = prog.Hashed()
	}
	return rep, nil
}

// runATPG mirrors `dftc atpg`: deterministic generation (optionally
// random-first and compacted) under the job deadline.
func runATPG(ctx context.Context, p *parsedRequest, reg *telemetry.Registry) (*telemetry.Report, error) {
	o := p.req.Options
	d, err := design(p)
	if err != nil {
		return nil, err
	}
	engine := atpg.EnginePodem
	if o.Engine == "dalg" {
		engine = atpg.EngineDAlg
	}
	seed := seedOf(o)
	mode, _ := compact.ParseMode(o.CompactMode) // validated at admission
	ts, err := d.GenerateContext(ctx, core.GenerateOptions{
		Engine:      engine,
		RandomFirst: o.Random,
		Seed:        seed,
		Compact:     o.Compact,
		CompactMode: mode,
		Workers:     o.Workers,
		Metrics:     reg,
	})
	if err != nil {
		return nil, err
	}
	rep := telemetry.NewReport("dftd", string(KindATPG), p.input)
	rep.Config = map[string]any{
		"engine": o.Engine, "scan": o.Scan, "random": o.Random,
		"compact": o.Compact, "workers": o.Workers,
	}
	recordSeed(rep, o, seed)
	if mode.Enabled() {
		rep.Config["compact_mode"] = mode.String()
	}
	rep.Results = map[string]any{
		"patterns":     len(ts.Patterns),
		"coverage":     ts.Coverage,
		"raw_coverage": ts.RawCover,
		"untestable":   ts.Untestable,
		"aborted":      ts.Aborted,
		"targets":      ts.TargetN,
		"gates":        d.Circuit.NumGates(),
		"dffs":         d.Circuit.NumDFFs(),
	}
	if ts.Compaction != nil {
		rep.Results["patterns_in"] = ts.Compaction.PatternsIn
		rep.Results["patterns_out"] = ts.Compaction.PatternsOut
		rep.Results["compact_ratio"] = ts.Compaction.Ratio
		rep.Results["replay_passes"] = ts.Compaction.ReplayPasses
	}
	return rep, nil
}

// runAdvise mirrors `dftc advise`: the closed-loop DFT advisor — the
// service's first long-running job type. Every iteration the advisor's
// Checkpoint hook snapshots the partial plan onto the job, so a
// cancelled run still hands its client everything decided so far, and
// the advise.iteration spans plus the steps/coverage progress trackers
// stream over the job's SSE event log through the standard monitor.
func runAdvise(ctx context.Context, j *Job) (*telemetry.Report, error) {
	p, reg := j.parsed, j.reg
	o := p.req.Options
	seed := seedOf(o)
	opt := advise.Options{
		Target:   o.Target,
		Budget:   o.Budget,
		MaxSteps: o.MaxSteps,
		Patterns: o.Patterns,
		Seed:     uint64(seed),
		Workers:  o.Workers,
		Metrics:  reg,
		Checkpoint: func(pl *advise.Plan) {
			// The plan pointer is only valid for this call; retain bytes.
			if enc, err := json.Marshal(partialPlan{
				Schema:  "dft.advise-plan/v1",
				Partial: true,
				Input:   p.input,
				Plan:    pl,
			}); err == nil {
				j.checkpoint = enc
			}
		},
	}
	plan, err := advise.Run(ctx, p.circuit, opt)
	if err != nil {
		return nil, err
	}
	rep := telemetry.NewReport("dftd", string(KindAdvise), p.input)
	rep.Config = map[string]any{
		"target": plan.Target, "budget": plan.Budget,
		"max_steps": o.MaxSteps, "workers": o.Workers,
	}
	recordSeed(rep, o, seed)
	rep.Results = map[string]any{
		"baseline":       plan.Baseline,
		"coverage":       plan.Coverage,
		"steps":          len(plan.Steps),
		"scanned":        len(plan.Scanned),
		"overhead":       plan.Overhead,
		"overhead_gates": plan.OverheadGates,
		"pins":           plan.Pins,
		"stop_reason":    plan.StopReason,
		"plan":           plan,
	}
	return rep, nil
}

// partialPlan is the report document attached to a cancelled advise
// job: the last checkpointed plan, flagged so clients can tell it from
// a completed run's report.
type partialPlan struct {
	Schema  string       `json:"schema"`
	Partial bool         `json:"partial"`
	Input   string       `json:"input"`
	Plan    *advise.Plan `json:"plan"`
}

// runFuzz mirrors `dftc fuzz`: sweep seeds 1..Rounds through the
// differential checker, honoring the job deadline between rounds.
func runFuzz(ctx context.Context, p *parsedRequest, reg *telemetry.Registry) (*telemetry.Report, error) {
	o := p.req.Options
	rounds := o.Rounds
	if rounds == 0 {
		rounds = 50
	}
	patterns := o.Patterns
	if patterns == 0 {
		patterns = 64
	}
	// Rounds progress: one tick per completed round, from a span that
	// marks the sweep as the job's active phase.
	rctx, span := telemetry.StartSpanCtx(ctx, reg, "fuzz.rounds")
	defer span.End()
	prog := reg.Progress("fuzz.rounds.progress")
	prog.SetTotal(int64(rounds))
	var div *fuzzdiff.Divergence
	ran := 0
	for seed := int64(1); seed <= int64(rounds); seed++ {
		if err := rctx.Err(); err != nil {
			return nil, err
		}
		ran++
		d := fuzzdiff.Round(fuzzdiff.ShapeConfig(seed), seed, fuzzdiff.RoundOptions{Patterns: patterns})
		prog.Inc()
		if d != nil {
			div = d
			break
		}
	}
	rep := telemetry.NewReport("dftd", string(KindFuzz), "")
	rep.Config = map[string]any{
		"rounds": rounds, "patterns": patterns, "configs": len(fuzzdiff.Matrix()),
	}
	nDiv := 0
	if div != nil {
		nDiv = 1
		rep.Results = map[string]any{"repro": div.Repro(), "seed": div.Seed}
	} else {
		rep.Results = map[string]any{}
	}
	rep.Results["rounds"] = ran
	rep.Results["divergences"] = nDiv
	return rep, nil
}
