package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"

	"dft/internal/compact"
	"dft/internal/diagnose"
	"dft/internal/fault"
	"dft/internal/telemetry"
)

// runDiagnose executes a kind: diagnose job: build (or reuse from the
// server's dictionary cache) a compact fault dictionary over the
// collapsed fault list and a compacted seeded pattern set, then map
// the observed failing signature — supplied directly, or produced by
// simulating an injected fault — to a ranked candidate list.
func (s *Server) runDiagnose(ctx context.Context, p *parsedRequest, reg *telemetry.Registry) (*telemetry.Report, error) {
	o := p.req.Options
	d, err := design(p)
	if err != nil {
		return nil, err
	}
	backend, err := fault.ParseBackend(o.Backend)
	if err != nil {
		return nil, err
	}
	n := o.Patterns
	if n == 0 {
		n = 256
	}
	top := o.Top
	if top == 0 {
		top = 10
	}
	seed := seedOf(o)
	// Diagnose jobs default to reverse-order compaction: the compacted
	// set keeps full coverage at a fraction of the patterns, and
	// dictionary size is patterns × faults, so the shrink is free
	// resolution-per-byte. compact_mode: "off" opts out.
	mode, _ := compact.ParseMode(o.CompactMode) // validated at admission
	if o.CompactMode == "" {
		mode = compact.ModeReverse
	}

	view := d.View()
	cl := fault.CollapseEquiv(d.Circuit, fault.Universe(d.Circuit))
	rng := rand.New(rand.NewSource(seed))
	pats := make([][]bool, n)
	for i := range pats {
		pat := make([]bool, len(view.Inputs))
		for j := range pat {
			pat[j] = rng.Intn(2) == 1
		}
		pats[i] = pat
	}
	var cst *compact.Stats
	if mode.Enabled() {
		pats, cst, err = compact.Patterns(ctx, d.Circuit, view, cl.Reps, pats, compact.Options{
			Mode: mode, Workers: o.Workers, Seed: seed, Metrics: reg,
		})
		if err != nil {
			return nil, err
		}
	}

	dopt := diagnose.Options{
		Backend: backend,
		Workers: o.Workers,
		View:    fault.View{Inputs: view.Inputs, Outputs: view.Outputs},
		Full:    o.DictFull,
		Metrics: reg,
	}
	dict, cached, err := s.dictionaryFor(p, n, seed, mode, o.DictFull, func() (*diagnose.Dictionary, error) {
		return diagnose.Build(ctx, d.Circuit, cl.Reps, pats, dopt)
	})
	if err != nil {
		return nil, err
	}

	rep := telemetry.NewReport("dftd", string(KindDiagnose), p.input)
	rep.Config = map[string]any{
		"patterns": n, "scan": o.Scan,
		"engine": backend.String(), "workers": o.Workers,
		"compact_mode": mode.String(), "top": top,
		"dict_full": o.DictFull,
	}
	recordSeed(rep, o, seed)

	var sig diagnose.Signature
	if o.Inject != "" {
		f, err := fault.ParseFault(o.Inject) // syntax checked at admission
		if err != nil {
			return nil, err
		}
		if err := f.Validate(d.Circuit); err != nil {
			return nil, err
		}
		sig, err = dict.ObserveMachine(f)
		if err != nil {
			return nil, err
		}
		rep.Config["inject"] = f.String()
		rep.Results = map[string]any{"injected": f.Name(d.Circuit)}
		if classID, ok := cl.ClassOf[f]; ok {
			rep.Results["injected_rep"] = cl.Reps[classID].String()
		}
	} else {
		sig, err = diagnose.ParseSignature(o.Signature)
		if err != nil {
			return nil, err
		}
		if sig.N > dict.NumPats {
			return nil, fmt.Errorf("signature covers %d patterns, dictionary has %d", sig.N, dict.NumPats)
		}
		rep.Results = map[string]any{}
	}

	ranked := dict.Rank(sig, top)
	cands := make([]map[string]any, len(ranked))
	for i, cand := range ranked {
		cands[i] = map[string]any{
			"fault":    cand.Fault.String(),
			"name":     cand.Fault.Name(d.Circuit),
			"distance": cand.Distance,
		}
	}
	res := dict.Resolution()
	rep.Results["candidates"] = cands
	rep.Results["observed_fails"] = sig.Weight()
	rep.Results["observed_patterns"] = sig.N
	if sig.N == dict.NumPats {
		exact := dict.Lookup(sig)
		rep.Results["class_size"] = len(exact)
		if o.Inject != "" {
			f, _ := fault.ParseFault(o.Inject)
			hit := false
			for _, fi := range exact {
				if classID, ok := cl.ClassOf[f]; ok && dict.Faults[fi] == cl.Reps[classID] {
					hit = true
				}
			}
			rep.Results["hit"] = hit
		}
	}
	rep.Results["dict_faults"] = len(dict.Faults)
	rep.Results["universe"] = len(cl.ClassOf)
	rep.Results["dict_patterns"] = dict.NumPats
	rep.Results["dict_bytes"] = dict.CompactBytes()
	rep.Results["dict_full_bytes"] = dict.FullBytes()
	rep.Results["dict_cached"] = cached
	rep.Results["classes"] = res.Classes
	rep.Results["mean_class"] = res.MeanSize
	rep.Results["max_class"] = res.MaxSize
	rep.Results["undetected"] = res.Undetected
	if cst != nil {
		rep.Results["patterns_in"] = cst.PatternsIn
		rep.Results["compact_ratio"] = cst.Ratio
	}
	return rep, nil
}

// dictionaryFor serves a dictionary from the server cache or builds
// and caches it. The key covers the post-scan canonical netlist and
// every build input that changes the stored bits — patterns, seed,
// compaction mode, full tier — but NOT workers or backend: rows are
// worker- and backend-invariant, so an 8-worker CPT job reuses the
// dictionary a 1-worker parallel job built. Build runs outside the
// server lock; two racing misses build twice and the second insert
// wins, which is benign (the dictionaries are identical).
func (s *Server) dictionaryFor(p *parsedRequest, n int, seed int64, mode compact.Mode, full bool, build func() (*diagnose.Dictionary, error)) (*diagnose.Dictionary, bool, error) {
	h := sha256.New()
	fmt.Fprintf(h, "dict\nscan=%v\npatterns=%d\nseed=%d\nmode=%s\nfull=%v\n",
		p.req.Options.Scan, n, seed, mode.String(), full)
	h.Write([]byte(canonicalBench(p.circuit)))
	key := hex.EncodeToString(h.Sum(nil))

	s.mu.Lock()
	if v, ok := s.dicts.get(key); ok {
		s.mu.Unlock()
		s.cDictHit.Inc()
		return v.(*diagnose.Dictionary), true, nil
	}
	s.mu.Unlock()
	s.cDictMiss.Inc()
	dict, err := build()
	if err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	s.dicts.add(key, dict)
	s.mu.Unlock()
	return dict, false, nil
}
