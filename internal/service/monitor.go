package service

import (
	"sort"
	"time"
)

// monitor is the per-running-job sampling goroutine: the bridge
// between the job's private telemetry registry (which the compute
// kernels update with lock-free atomics) and its event log (which SSE
// subscribers consume). The hot loops never see the subscribers —
// they tick Progress counters and open spans; the monitor polls at
// ProgressInterval, publishing a phase event whenever the deepest
// active span changes and a progress event whenever a tracker's done
// count moves, plus heartbeats at HeartbeatInterval so an idle stream
// still proves liveness. runJob stops it via stop and waits on done
// before finishing the job, so the terminal event always follows the
// last phase/progress event.
func (s *Server) monitor(j *Job, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	tick := time.NewTicker(s.cfg.ProgressInterval)
	defer tick.Stop()
	hb := time.NewTicker(s.cfg.HeartbeatInterval)
	defer hb.Stop()
	lastPhase := ""
	lastDone := map[string]int64{}

	sample := func() {
		if phase := deepestSpan(j); phase != "" && phase != lastPhase {
			lastPhase = phase
			j.events.publish(JobEvent{Type: EventPhase, Phase: phase})
		}
		progress := j.reg.ProgressStats()
		names := make([]string, 0, len(progress))
		for name := range progress {
			names = append(names, name)
		}
		sort.Strings(names) // deterministic event order within a sample
		for _, name := range names {
			p := progress[name]
			if p.Done == lastDone[name] {
				continue
			}
			lastDone[name] = p.Done
			j.events.publish(JobEvent{Type: EventProgress, Name: name, Done: p.Done, Total: p.Total})
		}
	}

	for {
		select {
		case <-stop:
			// Final flush: short jobs whose phases opened and closed
			// between ticks still get their last progress values.
			sample()
			return
		case <-tick.C:
			sample()
		case <-hb.C:
			j.events.publish(JobEvent{Type: EventHeartbeat, State: StateRunning})
		}
	}
}

// deepestSpan names the job's current phase: the most recently opened
// in-flight span (IDs are monotonic, ActiveSpans sorts by them).
func deepestSpan(j *Job) string {
	active := j.reg.ActiveSpans()
	if len(active) == 0 {
		return ""
	}
	return active[len(active)-1].Name
}
