package service

// Acceptance tests for the advise job kind — the service's first
// long-running job type: an end-to-end run on the hardcore builtin
// that must reach its coverage target while streaming per-iteration
// phase and progress events, a mid-run client cancellation that must
// surface the last checkpointed partial plan as the cancelled job's
// report (race-tested via `go test -race`), and the admission-time
// validation of the advise-only options.

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// adviseResults decodes the typed slice of the advise report results.
type adviseResults struct {
	Baseline   float64 `json:"baseline"`
	Coverage   float64 `json:"coverage"`
	Steps      int     `json:"steps"`
	StopReason string  `json:"stop_reason"`
	Overhead   float64 `json:"overhead"`
	Plan       struct {
		Bench  string            `json:"bench"`
		Faults int               `json:"faults"`
		Steps  []json.RawMessage `json:"steps"`
	} `json:"plan"`
}

func decodeAdvise(t *testing.T, v JobView) adviseResults {
	t.Helper()
	var rep struct {
		Results adviseResults `json:"results"`
	}
	if err := json.Unmarshal(v.Report, &rep); err != nil {
		t.Fatalf("decode advise report: %v", err)
	}
	return rep.Results
}

// TestServiceAdviseEndToEnd is the tentpole acceptance criterion: an
// advise job on the hardcore builtin reaches its 0.99 target from a
// sub-0.90 baseline, and its SSE stream carries monotone
// per-iteration progress from both advise trackers. (Phase events
// need a multi-second run and are pinned by the cancellation test;
// this job finishes in milliseconds, between monitor ticks.)
func TestServiceAdviseEndToEnd(t *testing.T) {
	_, ts, _ := testServer(t, Config{
		Workers: 1, QueueDepth: 4,
		ProgressInterval: time.Millisecond,
	})

	v, code, e := postJob(t, ts.URL, JobRequest{
		Kind:    KindAdvise,
		Builtin: "hardcore",
		Options: Options{Target: 0.99, Seed: 7, Patterns: 2048},
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d (%s)", code, e.Error)
	}
	jv := waitTerminal(t, ts.URL, v.ID)
	if jv.State != StateDone {
		t.Fatalf("state %s, err %q", jv.State, jv.Error)
	}

	res := decodeAdvise(t, jv)
	if res.StopReason != "target" {
		t.Fatalf("stop reason %q, want target", res.StopReason)
	}
	if res.Baseline >= 0.90 {
		t.Fatalf("baseline %.4f, want < 0.90 (hardcore must start hard)", res.Baseline)
	}
	if res.Coverage < 0.99 {
		t.Fatalf("coverage %.4f, want >= 0.99", res.Coverage)
	}
	if res.Steps < 1 || len(res.Plan.Steps) != res.Steps {
		t.Fatalf("steps %d (plan has %d), want >= 1 and consistent", res.Steps, len(res.Plan.Steps))
	}
	if res.Plan.Bench == "" || res.Plan.Faults == 0 {
		t.Fatal("plan is missing its instrumented netlist or fault count")
	}

	// The finished stream must replay the long-running observability:
	// monotone progress from both the steps and the coverage tracker
	// (the monitor's final flush guarantees them even for a fast run).
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	events, terminal, err := streamEvents(ctx, ts.URL, v.ID, 0)
	if err != nil || !terminal {
		t.Fatalf("stream: terminal=%v err=%v", terminal, err)
	}
	progressed := checkAdviseProgress(t, events)
	for _, name := range []string{"advise.steps.progress", "advise.coverage.progress"} {
		if !progressed[name] {
			t.Fatalf("tracker %s never ticked on the stream (saw %v)", name, progressed)
		}
	}
}

// checkAdviseProgress asserts every progress event on an advise stream
// belongs to an advise.* tracker and moves monotonically within its
// total, returning the set of trackers that ticked.
func checkAdviseProgress(t *testing.T, events []JobEvent) map[string]bool {
	t.Helper()
	prev := map[string]int64{}
	progressed := map[string]bool{}
	for _, ev := range events {
		if ev.Type != EventProgress {
			continue
		}
		if !strings.HasPrefix(ev.Name, "advise.") {
			t.Fatalf("progress tracker %q, want advise.*", ev.Name)
		}
		if ev.Done <= prev[ev.Name] || ev.Total <= 0 || ev.Done > ev.Total {
			t.Fatalf("progress %s %d/%d after %d: not monotone within total",
				ev.Name, ev.Done, ev.Total, prev[ev.Name])
		}
		prev[ev.Name] = ev.Done
		progressed[ev.Name] = true
	}
	return progressed
}

// adviseSlowJob is an advise request that runs for many seconds: a
// wide hardcore instance under an unreachable target and a heavy
// per-probe pattern budget paces iterations at a few hundred
// milliseconds each, so the monitor observes live phases between
// steps and a mid-run DELETE lands while the loop is genuinely busy.
func adviseSlowJob() JobRequest {
	return JobRequest{
		Kind:    KindAdvise,
		Builtin: "hardcore",
		N:       64,
		Options: Options{Target: 1, Patterns: 131072, MaxSteps: 64, Seed: 3},
	}
}

// TestServiceAdviseCancellation pins the long-running-job contract: a
// client DELETE mid-run yields a cancelled job whose report is the
// last per-iteration checkpoint — a flagged partial plan, never
// cached — and the live stream saw advise.* phase events while the
// loop ran.
func TestServiceAdviseCancellation(t *testing.T) {
	srv, ts, _ := testServer(t, Config{
		Workers: 1, QueueDepth: 4,
		ProgressInterval: time.Millisecond,
	})
	defer srv.Shutdown(context.Background())

	v, code, e := postJob(t, ts.URL, adviseSlowJob())
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d (%s)", code, e.Error)
	}
	waitState(t, ts.URL, v.ID, StateRunning)

	// Wait for the first applied step: by then the baseline checkpoint
	// is durably on the job (the steps tracker only moves after it).
	j, err := srv.Job(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if p, ok := j.reg.ProgressStats()["advise.steps.progress"]; ok && p.Done >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("advisor never applied a step")
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, err := newRequest(t, http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	jv := waitTerminal(t, ts.URL, v.ID)
	if jv.State != StateCancelled || jv.CancelReason != CancelClient {
		t.Fatalf("state=%s reason=%q, want cancelled/client", jv.State, jv.CancelReason)
	}
	if len(jv.Report) == 0 {
		t.Fatal("cancelled advise job has no report — checkpoint lost")
	}
	var partial struct {
		Schema  string `json:"schema"`
		Partial bool   `json:"partial"`
		Plan    struct {
			Faults int    `json:"faults"`
			Bench  string `json:"bench"`
		} `json:"plan"`
	}
	if err := json.Unmarshal(jv.Report, &partial); err != nil {
		t.Fatalf("decode partial plan: %v", err)
	}
	if partial.Schema != "dft.advise-plan/v1" || !partial.Partial {
		t.Fatalf("partial report schema=%q partial=%v, want dft.advise-plan/v1 flagged partial",
			partial.Schema, partial.Partial)
	}
	if partial.Plan.Faults == 0 || partial.Plan.Bench == "" {
		t.Fatal("checkpointed plan is empty")
	}

	// The iterations ran slowly enough for the monitor to observe live
	// phases: the replayed log must carry advise.* phase events and
	// monotone advise.* progress.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	events, terminal, err := streamEvents(ctx, ts.URL, v.ID, 0)
	if err != nil || !terminal {
		t.Fatalf("stream: terminal=%v err=%v", terminal, err)
	}
	sawAdvisePhase := false
	for _, ev := range events {
		if ev.Type == EventPhase && strings.HasPrefix(ev.Phase, "advise.") {
			sawAdvisePhase = true
		}
	}
	if !sawAdvisePhase {
		t.Fatal("no advise.* phase event on the cancelled job's stream")
	}
	checkAdviseProgress(t, events)

	// A partial plan never enters the result cache: resubmitting the
	// identical request starts a fresh run instead of a cache hit.
	rv, code, _ := postJob(t, ts.URL, adviseSlowJob())
	if code != http.StatusAccepted {
		t.Fatalf("resubmit: status %d", code)
	}
	if rv.Cached {
		t.Fatal("cancelled partial plan was served from the result cache")
	}
	if resp, err := newRequest(t, http.MethodDelete, ts.URL+"/v1/jobs/"+rv.ID); err == nil {
		resp.Body.Close()
	}

	// The server stays healthy after the cancellation: a small job
	// still runs to completion.
	sv, _, _ := postJob(t, ts.URL, JobRequest{
		Kind: KindFaultSim, Builtin: "c17", Options: Options{Patterns: 64},
	})
	if got := waitTerminal(t, ts.URL, sv.ID); got.State != StateDone {
		t.Fatalf("follow-up job state %s, err %q", got.State, got.Error)
	}
}

// TestServiceAdviseValidation covers the advise-only admission rules.
func TestServiceAdviseValidation(t *testing.T) {
	_, ts, _ := testServer(t, Config{Workers: 1, QueueDepth: 4})

	cases := []struct {
		name string
		req  JobRequest
		want string
	}{
		{"target out of range",
			JobRequest{Kind: KindAdvise, Builtin: "c17", Options: Options{Target: 1.5}},
			"out of range"},
		{"negative budget",
			JobRequest{Kind: KindAdvise, Builtin: "c17", Options: Options{Budget: -0.1}},
			"negative"},
		{"negative max_steps",
			JobRequest{Kind: KindAdvise, Builtin: "c17", Options: Options{MaxSteps: -1}},
			"negative"},
		{"advise options on faultsim",
			JobRequest{Kind: KindFaultSim, Builtin: "c17", Options: Options{Target: 0.9}},
			"only apply to advise"},
		{"scan on advise",
			JobRequest{Kind: KindAdvise, Builtin: "c17", Options: Options{Scan: true}},
			"choose their own scan"},
		{"advise needs a circuit",
			JobRequest{Kind: KindAdvise},
			"need a circuit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, code, e := postJob(t, ts.URL, tc.req)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", code)
			}
			if !strings.Contains(e.Error, tc.want) {
				t.Fatalf("error %q does not mention %q", e.Error, tc.want)
			}
		})
	}
}
