package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4), so a scraper pointed at the
// daemon's /metrics endpoint — or any tool reading a saved snapshot —
// gets native metric types instead of reparsing the JSON document.
//
// Instrument names map onto the Prometheus namespace as
// `dft_<name-with-dots-replaced>`: counters gain the conventional
// `_total` suffix, timers are exposed as summaries in seconds
// (`_seconds_count` / `_seconds_sum`), histograms become cumulative
// `_bucket{le="..."}` series ending at `+Inf`, and progress trackers
// are exposed as a `_done` / `_planned` gauge pair. Registry keys
// built with Label ("base{k=\"v\"}") render as native labeled series:
// all series of one base share a single TYPE header and their labels
// are emitted verbatim (merged with `le` for histogram buckets).
// Trace events have no Prometheus equivalent and are omitted. Output
// is sorted by metric name then label set, so it is diff-stable like
// the JSON form.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, g := range groupSeries(s.Counters) {
		name := promName(g.base) + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n", name)
		for _, ser := range g.series {
			fmt.Fprintf(&b, "%s %d\n", sample(name, ser.labels), s.Counters[ser.key])
		}
	}
	for _, g := range groupSeries(s.Gauges) {
		name := promName(g.base)
		fmt.Fprintf(&b, "# TYPE %s gauge\n", name)
		for _, ser := range g.series {
			fmt.Fprintf(&b, "%s %d\n", sample(name, ser.labels), s.Gauges[ser.key])
		}
	}
	for _, g := range groupSeries(s.Timers) {
		name := promName(g.base) + "_seconds"
		fmt.Fprintf(&b, "# TYPE %s summary\n", name)
		for _, ser := range g.series {
			t := s.Timers[ser.key]
			fmt.Fprintf(&b, "%s %d\n", sample(name+"_count", ser.labels), t.Count)
			fmt.Fprintf(&b, "%s %s\n", sample(name+"_sum", ser.labels), promSeconds(t.TotalNs))
		}
	}
	for _, g := range groupSeries(s.Histograms) {
		name := promName(g.base)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
		for _, ser := range g.series {
			h := s.Histograms[ser.key]
			cum := int64(0)
			for _, bk := range h.Buckets {
				cum += bk.Count
				if bk.Le >= 0 {
					fmt.Fprintf(&b, "%s %d\n", sample(name+"_bucket", mergeLabels(ser.labels, fmt.Sprintf(`le="%d"`, bk.Le))), cum)
				}
			}
			fmt.Fprintf(&b, "%s %d\n", sample(name+"_bucket", mergeLabels(ser.labels, `le="+Inf"`)), h.Count)
			fmt.Fprintf(&b, "%s %d\n", sample(name+"_sum", ser.labels), h.Sum)
			fmt.Fprintf(&b, "%s %d\n", sample(name+"_count", ser.labels), h.Count)
		}
	}
	for _, g := range groupSeries(s.Progress) {
		done := promName(g.base) + "_done"
		planned := promName(g.base) + "_planned"
		fmt.Fprintf(&b, "# TYPE %s gauge\n", done)
		for _, ser := range g.series {
			fmt.Fprintf(&b, "%s %d\n", sample(done, ser.labels), s.Progress[ser.key].Done)
		}
		fmt.Fprintf(&b, "# TYPE %s gauge\n", planned)
		for _, ser := range g.series {
			fmt.Fprintf(&b, "%s %d\n", sample(planned, ser.labels), s.Progress[ser.key].Total)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// series is one (registry key, label body) pair under a base name.
type series struct {
	key    string
	labels string
}

type seriesGroup struct {
	base   string
	series []series
}

// groupSeries splits registry keys into per-base groups of labeled
// series, sorted by base then label body, so each base gets exactly
// one TYPE header with its series adjacent beneath it.
func groupSeries[V any](m map[string]V) []seriesGroup {
	byBase := make(map[string][]series, len(m))
	for k := range m {
		base, labels, _ := splitLabels(k)
		byBase[base] = append(byBase[base], series{key: k, labels: labels})
	}
	bases := make([]string, 0, len(byBase))
	for b := range byBase {
		bases = append(bases, b)
	}
	sort.Strings(bases)
	out := make([]seriesGroup, 0, len(bases))
	for _, base := range bases {
		ss := byBase[base]
		sort.Slice(ss, func(i, j int) bool { return ss[i].labels < ss[j].labels })
		out = append(out, seriesGroup{base: base, series: ss})
	}
	return out
}

// sample renders one sample's name with its label body, if any.
func sample(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// mergeLabels joins two label bodies with a comma.
func mergeLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

// promName maps a dotted instrument name onto the Prometheus
// identifier alphabet: the toolkit prefix plus the name with every
// character outside [a-zA-Z0-9_] replaced by '_'.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("dft_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_',
			c >= '0' && c <= '9':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promSeconds renders nanoseconds as decimal seconds without float
// rounding artifacts (123456789ns -> "0.123456789").
func promSeconds(ns int64) string {
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	return fmt.Sprintf("%s%d.%09d", neg, ns/1e9, ns%1e9)
}
