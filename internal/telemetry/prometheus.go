package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4), so a scraper pointed at the
// daemon's /metrics endpoint — or any tool reading a saved snapshot —
// gets native metric types instead of reparsing the JSON document.
//
// Instrument names map onto the Prometheus namespace as
// `dft_<name-with-dots-replaced>`: counters gain the conventional
// `_total` suffix, timers are exposed as summaries in seconds
// (`_seconds_count` / `_seconds_sum`), and histograms become
// cumulative `_bucket{le="..."}` series ending at `+Inf`. Trace
// events have no Prometheus equivalent and are omitted. Output is
// sorted by metric name, so it is diff-stable like the JSON form.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, k := range sortedNames(s.Counters) {
		name := promName(k) + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[k])
	}
	for _, k := range sortedNames(s.Gauges) {
		name := promName(k)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", name, name, s.Gauges[k])
	}
	{
		keys := make([]string, 0, len(s.Timers))
		for k := range s.Timers {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			t := s.Timers[k]
			name := promName(k) + "_seconds"
			fmt.Fprintf(&b, "# TYPE %s summary\n", name)
			fmt.Fprintf(&b, "%s_count %d\n", name, t.Count)
			fmt.Fprintf(&b, "%s_sum %s\n", name, promSeconds(t.TotalNs))
		}
	}
	{
		keys := make([]string, 0, len(s.Histograms))
		for k := range s.Histograms {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			h := s.Histograms[k]
			name := promName(k)
			fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
			cum := int64(0)
			for _, bk := range h.Buckets {
				cum += bk.Count
				if bk.Le >= 0 {
					fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", name, bk.Le, cum)
				}
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
			fmt.Fprintf(&b, "%s_sum %d\n", name, h.Sum)
			fmt.Fprintf(&b, "%s_count %d\n", name, h.Count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// sortedNames returns the map's keys in lexical order.
func sortedNames(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// promName maps a dotted instrument name onto the Prometheus
// identifier alphabet: the toolkit prefix plus the name with every
// character outside [a-zA-Z0-9_] replaced by '_'.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("dft_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_',
			c >= '0' && c <= '9':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promSeconds renders nanoseconds as decimal seconds without float
// rounding artifacts (123456789ns -> "0.123456789").
func promSeconds(ns int64) string {
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	return fmt.Sprintf("%s%d.%09d", neg, ns/1e9, ns%1e9)
}
