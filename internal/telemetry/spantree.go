package telemetry

import "sort"

// SpanNode is one node of a reconstructed span tree: a completed span
// with its children nested beneath it. The run-report's `trace`
// section is a forest of these.
type SpanNode struct {
	Name     string            `json:"name"`
	Detail   string            `json:"detail,omitempty"`
	SpanID   int64             `json:"span_id,omitempty"`
	StartNs  int64             `json:"start_ns"`
	DurNs    int64             `json:"dur_ns,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*SpanNode       `json:"children,omitempty"`
}

// BuildSpanTree reconstructs the span forest from a flat event list
// (as captured in a Snapshot). Events without a span ID — plain
// Trace.Event marks — attach to their enclosing span only if the
// producer recorded a parent ID; otherwise they appear as roots.
// Spans whose parent fell out of the ring (or is still open) are
// promoted to roots, so the result is always complete. Roots and
// children are ordered by start time, ties broken by span ID.
func BuildSpanTree(events []Event) []*SpanNode {
	nodes := make(map[int64]*SpanNode, len(events))
	order := make([]*SpanNode, 0, len(events))
	parentOf := make(map[*SpanNode]int64, len(events))
	for _, e := range events {
		n := &SpanNode{
			Name:    e.Name,
			Detail:  e.Detail,
			SpanID:  e.SpanID,
			StartNs: e.StartNs,
			DurNs:   e.DurNs,
			Attrs:   e.Attrs,
		}
		if e.SpanID != 0 {
			nodes[e.SpanID] = n
		}
		parentOf[n] = e.Parent
		order = append(order, n)
	}
	var roots []*SpanNode
	for _, n := range order {
		if p := parentOf[n]; p != 0 {
			if parent, ok := nodes[p]; ok && parent != n {
				parent.Children = append(parent.Children, n)
				continue
			}
		}
		roots = append(roots, n)
	}
	sortNodes(roots)
	for _, n := range nodes {
		sortNodes(n.Children)
	}
	return roots
}

func sortNodes(ns []*SpanNode) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].StartNs != ns[j].StartNs {
			return ns[i].StartNs < ns[j].StartNs
		}
		return ns[i].SpanID < ns[j].SpanID
	})
}
