// Package telemetry is the toolkit's zero-dependency observability
// layer: atomic counters and gauges, duration timers with min/max/mean
// aggregation, size-bucketed histograms, and a lightweight span/event
// trace backed by a fixed ring buffer.
//
// The package serves two audiences. The algorithm packages (atpg,
// fault, sim, lfsr, signature, core) record how much work they do —
// decisions, backtracks, gate evaluations, clocks — against either an
// injected *Registry or the process-wide Default one. The CLI and the
// benchmark harness read the accumulated state back as a Snapshot,
// render it for humans, or embed it in a machine-readable run Report.
//
// The survey's cost claims (Eq. 1's T = K·N³ foremost) are claims
// about operation counts, so the instrumented quantities are chosen to
// line up with the paper's accounting: fault-simulation events map to
// "good machine simulations", ATPG backtracks to the bounded search
// effort, LFSR clocks to test-application time.
//
// Hot-path discipline: instrumented loops accumulate into plain local
// variables and flush once per block/run with a single atomic add, so
// enabling telemetry costs a handful of atomics per thousands of gate
// evaluations.
package telemetry

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be any batch size accumulated locally by a hot
// loop; negative deltas are not meaningful for counters but are not
// policed).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (worker counts, live fault
// lists, ring occupancy).
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Timer aggregates durations: count, total, min, max (mean is derived
// at snapshot time). It is safe for concurrent Observe calls.
type Timer struct {
	mu    sync.Mutex
	count int64
	total time.Duration
	min   time.Duration
	max   time.Duration
}

// Observe folds one duration into the aggregate.
func (t *Timer) Observe(d time.Duration) {
	t.mu.Lock()
	if t.count == 0 || d < t.min {
		t.min = d
	}
	if d > t.max {
		t.max = d
	}
	t.count++
	t.total += d
	t.mu.Unlock()
}

// Time starts a stopwatch; the returned func observes the elapsed
// duration when called, so `defer timer.Time()()` brackets a region.
func (t *Timer) Time() func() {
	start := time.Now()
	return func() { t.Observe(time.Since(start)) }
}

func (t *Timer) reset() {
	t.mu.Lock()
	t.count, t.total, t.min, t.max = 0, 0, 0, 0
	t.mu.Unlock()
}

// Stats returns the aggregate under the lock.
func (t *Timer) Stats() TimerStat {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TimerStat{
		Count:   t.count,
		TotalNs: t.total.Nanoseconds(),
		MinNs:   t.min.Nanoseconds(),
		MaxNs:   t.max.Nanoseconds(),
	}
	if t.count > 0 {
		s.MeanNs = s.TotalNs / t.count
	}
	return s
}

// histBuckets is the number of power-of-two histogram buckets: bucket
// i counts observations with upper bound 2^i - 1 (bucket 0 holds the
// zeros), and the last bucket is unbounded.
const histBuckets = 33

// Histogram is a size-bucketed (power-of-two) histogram for counts
// such as pattern-set sizes, backtracks per fault, or fanout widths.
// Buckets are atomic so concurrent Observe calls need no lock.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketOf maps a value to its power-of-two bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v)) // 2^(b-1) <= v < 2^b, so v <= 2^b - 1
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Stats returns the non-empty buckets.
func (h *Histogram) Stats() HistStat {
	s := HistStat{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		ub := int64(-1) // unbounded last bucket
		if i < histBuckets-1 {
			ub = int64(1)<<uint(i) - 1
		}
		s.Buckets = append(s.Buckets, HistBucket{Le: ub, Count: n})
	}
	return s
}

// Registry holds named instruments. The zero value is not usable; use
// NewRegistry or the package Default. All methods are safe for
// concurrent use; instrument handles returned by the getters are
// stable and may be cached by hot loops.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
	hists    map[string]*Histogram
	progress map[string]*Progress
	trace    *Trace

	// Span bookkeeping: IDs are allocated from spanSeq; in-flight
	// spans live in active until End, so a live monitor can read the
	// current phase (ActiveSpans) while the work runs.
	spanSeq  atomic.Int64
	activeMu sync.Mutex
	active   map[int64]*Span
}

// NewRegistry creates an empty registry with the default trace
// capacity.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		timers:   make(map[string]*Timer),
		hists:    make(map[string]*Histogram),
		progress: make(map[string]*Progress),
		trace:    NewTrace(DefaultTraceCap),
	}
}

var std = NewRegistry()

// Default returns the process-wide registry the CLI's -stats flag
// reports on.
func Default() *Registry { return std }

// OrDefault resolves an injectable handle: nil selects the Default
// registry, so library configs can leave the field unset.
func OrDefault(r *Registry) *Registry {
	if r == nil {
		return std
	}
	return r
}

// Counter returns (creating on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Timer returns (creating on first use) the named timer.
func (r *Registry) Timer(name string) *Timer {
	r.mu.RLock()
	t, ok := r.timers[name]
	r.mu.RUnlock()
	if ok {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok = r.timers[name]; ok {
		return t
	}
	t = &Timer{}
	r.timers[name] = t
	return t
}

// Histogram returns (creating on first use) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = &Histogram{}
	r.hists[name] = h
	return h
}

// Progress returns (creating on first use) the named progress
// tracker.
func (r *Registry) Progress(name string) *Progress {
	r.mu.RLock()
	p, ok := r.progress[name]
	r.mu.RUnlock()
	if ok {
		return p
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok = r.progress[name]; ok {
		return p
	}
	p = &Progress{}
	r.progress[name] = p
	return p
}

// ProgressStats returns a point-in-time copy of every progress
// tracker — the cheap polling surface for live monitors (no timer or
// histogram locks, no trace copy, just atomic loads per tracker).
func (r *Registry) ProgressStats() map[string]ProgressStat {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]ProgressStat, len(r.progress))
	for k, p := range r.progress {
		done, total := p.Value()
		out[k] = ProgressStat{Done: done, Total: total}
	}
	return out
}

// Trace returns the registry's event trace.
func (r *Registry) Trace() *Trace { return r.trace }

// Reset zeroes every instrument in place and empties the trace.
// Instruments stay registered and previously returned handles remain
// live, so hot loops may cache handles across Resets. Used between
// profile phases and by tests.
func (r *Registry) Reset() {
	r.mu.RLock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, t := range r.timers {
		t.reset()
	}
	for _, h := range r.hists {
		h.reset()
	}
	for _, p := range r.progress {
		p.reset()
	}
	r.mu.RUnlock()
	r.trace.Reset()
}
