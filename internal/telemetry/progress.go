package telemetry

import "sync/atomic"

// Progress is a lock-free done/total pair for reporting how far a
// long-running phase has advanced. Hot loops call Add with batched
// deltas (one atomic add per chunk, mirroring the package's counter
// discipline); a monitor goroutine polls Value at its own cadence, so
// the producer never blocks, allocates, or syncs with the consumer.
//
// Total may be set once up front (SetTotal) or grow as work is
// discovered; a zero total means "size unknown" and consumers should
// render the done count alone.
type Progress struct {
	done  atomic.Int64
	total atomic.Int64
}

// SetTotal stores the expected amount of work.
func (p *Progress) SetTotal(n int64) { p.total.Store(n) }

// AddTotal grows the expected amount of work by n.
func (p *Progress) AddTotal(n int64) { p.total.Add(n) }

// Add records n more units completed.
func (p *Progress) Add(n int64) { p.done.Add(n) }

// Inc records one more unit completed.
func (p *Progress) Inc() { p.done.Add(1) }

// Value returns the current (done, total) pair. The two loads are not
// a single atomic snapshot, which is fine for monitoring: both values
// only grow, so the worst case is a momentarily conservative ratio.
func (p *Progress) Value() (done, total int64) {
	return p.done.Load(), p.total.Load()
}

func (p *Progress) reset() {
	p.done.Store(0)
	p.total.Store(0)
}

// ProgressStat is the JSON-stable view of a Progress tracker.
type ProgressStat struct {
	Done  int64 `json:"done"`
	Total int64 `json:"total,omitempty"`
}
