package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
)

// TestSpanHierarchy checks that StartSpanCtx threads parent IDs
// through the context and that BuildSpanTree reconstructs the nesting.
func TestSpanHierarchy(t *testing.T) {
	r := NewRegistry()
	ctx := context.Background()

	ctx, root := StartSpanCtx(ctx, r, "job")
	cctx, load := StartSpanCtx(ctx, r, "job.load")
	load.End()
	_ = cctx
	sctx, sim := StartSpanCtx(ctx, r, "job.sim")
	sim.SetAttr("faults", "2640")
	_, chunk := StartSpanCtx(sctx, r, "job.sim.chunk")
	chunk.End()
	sim.End()
	root.End()

	events, _ := r.Trace().Events()
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4", len(events))
	}
	byName := map[string]Event{}
	for _, e := range events {
		byName[e.Name] = e
	}
	if byName["job"].Parent != 0 {
		t.Fatalf("root parent = %d, want 0", byName["job"].Parent)
	}
	for _, child := range []string{"job.load", "job.sim"} {
		if byName[child].Parent != byName["job"].SpanID {
			t.Fatalf("%s parent = %d, want %d", child, byName[child].Parent, byName["job"].SpanID)
		}
	}
	if byName["job.sim.chunk"].Parent != byName["job.sim"].SpanID {
		t.Fatalf("chunk parent = %d, want %d", byName["job.sim.chunk"].Parent, byName["job.sim"].SpanID)
	}
	if byName["job.sim"].Attrs["faults"] != "2640" {
		t.Fatalf("attrs = %+v", byName["job.sim"].Attrs)
	}

	roots := BuildSpanTree(events)
	if len(roots) != 1 || roots[0].Name != "job" {
		t.Fatalf("roots = %+v, want single job root", roots)
	}
	if len(roots[0].Children) != 2 {
		t.Fatalf("job children = %d, want 2", len(roots[0].Children))
	}
	if roots[0].Children[0].Name != "job.load" || roots[0].Children[1].Name != "job.sim" {
		t.Fatalf("children order = %s, %s", roots[0].Children[0].Name, roots[0].Children[1].Name)
	}
	simNode := roots[0].Children[1]
	if len(simNode.Children) != 1 || simNode.Children[0].Name != "job.sim.chunk" {
		t.Fatalf("sim children = %+v", simNode.Children)
	}
}

// TestSpanTreeOrphans: spans whose parent is missing from the event
// list (ring overflow, still-open parent) must surface as roots.
func TestSpanTreeOrphans(t *testing.T) {
	roots := BuildSpanTree([]Event{
		{Name: "orphan", SpanID: 5, Parent: 99, StartNs: 10},
		{Name: "mark", StartNs: 5}, // plain event, no span ID
	})
	if len(roots) != 2 {
		t.Fatalf("roots = %d, want 2", len(roots))
	}
	if roots[0].Name != "mark" || roots[1].Name != "orphan" {
		t.Fatalf("root order = %s, %s", roots[0].Name, roots[1].Name)
	}
}

// TestStartSpanCtxForeignParent: a context span from another registry
// must not become the parent (IDs are only unique per registry).
func TestStartSpanCtxForeignParent(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	ctx, s1 := StartSpanCtx(context.Background(), r1, "outer")
	_, s2 := StartSpanCtx(ctx, r2, "inner")
	s2.End()
	s1.End()
	events, _ := r2.Trace().Events()
	if len(events) != 1 || events[0].Parent != 0 {
		t.Fatalf("cross-registry span got parent %d, want 0", events[0].Parent)
	}
}

// TestStartSpanCtxNilRegistry: nil resolves to the parent span's
// registry so library code can pass its (possibly nil) Metrics field.
func TestStartSpanCtxNilRegistry(t *testing.T) {
	r := NewRegistry()
	ctx, outer := StartSpanCtx(context.Background(), r, "outer")
	_, inner := StartSpanCtx(ctx, nil, "inner")
	inner.End()
	outer.End()
	events, _ := r.Trace().Events()
	if len(events) != 2 {
		t.Fatalf("nil registry did not inherit from parent: %d events", len(events))
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("FromContext on empty ctx != nil")
	}
}

// TestActiveSpans: open spans are visible, ordered by ID, and vanish
// on End.
func TestActiveSpans(t *testing.T) {
	r := NewRegistry()
	ctx, a := StartSpanCtx(context.Background(), r, "a")
	_, b := StartSpanCtx(ctx, r, "b")
	act := r.ActiveSpans()
	if len(act) != 2 || act[0].Name != "a" || act[1].Name != "b" {
		t.Fatalf("active = %+v", act)
	}
	if act[1].Parent != act[0].ID {
		t.Fatalf("active child parent = %d, want %d", act[1].Parent, act[0].ID)
	}
	b.End()
	a.End()
	if act := r.ActiveSpans(); len(act) != 0 {
		t.Fatalf("active after End = %+v", act)
	}
}

// TestProgressConcurrent hammers one Progress from many goroutines;
// under -race this is the primitive's memory-safety check.
func TestProgressConcurrent(t *testing.T) {
	r := NewRegistry()
	p := r.Progress("work")
	p.SetTotal(16 * 1000)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				p.Add(10)
			}
		}()
	}
	// Concurrent reader, as the daemon's monitor goroutine would poll.
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				p.Value()
			}
		}
	}()
	wg.Wait()
	close(stop)
	done, total := p.Value()
	if done != 16000 || total != 16000 {
		t.Fatalf("progress = %d/%d, want 16000/16000", done, total)
	}
	snap := r.Snapshot()
	if ps := snap.Progress["work"]; ps.Done != 16000 || ps.Total != 16000 {
		t.Fatalf("snapshot progress = %+v", ps)
	}
	if !strings.Contains(snap.Summary(), "16000/16000") {
		t.Fatalf("summary missing progress:\n%s", snap.Summary())
	}
	r.Reset()
	if d, tot := p.Value(); d != 0 || tot != 0 {
		t.Fatalf("reset left progress %d/%d", d, tot)
	}
}

// TestLabelCanonical: Label sorts keys and escapes values, so the same
// label set maps to the same registry key.
func TestLabelCanonical(t *testing.T) {
	if got := Label("m", "b", "2", "a", "1"); got != `m{a="1",b="2"}` {
		t.Fatalf("Label = %q", got)
	}
	if got := Label("m"); got != "m" {
		t.Fatalf("Label no-kv = %q", got)
	}
	if got := Label("m", "k", "a\"b\\c\nd"); got != `m{k="a\"b\\c\nd"}` {
		t.Fatalf("Label escape = %q", got)
	}
	base, labels, ok := splitLabels(`m{a="1"}`)
	if !ok || base != "m" || labels != `a="1"` {
		t.Fatalf("splitLabels = %q %q %v", base, labels, ok)
	}
	if _, _, ok := splitLabels("plain"); ok {
		t.Fatal("splitLabels claimed labels on plain name")
	}
}
