package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// TimerStat is the JSON-stable aggregate of a Timer.
type TimerStat struct {
	Count   int64 `json:"count"`
	TotalNs int64 `json:"total_ns"`
	MinNs   int64 `json:"min_ns"`
	MaxNs   int64 `json:"max_ns"`
	MeanNs  int64 `json:"mean_ns"`
}

// HistBucket is one non-empty histogram bucket; Le is the inclusive
// upper bound (2^i - 1), or -1 for the unbounded tail.
type HistBucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistStat is the JSON-stable aggregate of a Histogram.
type HistStat struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of a registry, shaped for JSON.
// Maps are rendered with sorted keys by encoding/json, so serialized
// snapshots are diff-stable.
type Snapshot struct {
	Counters      map[string]int64        `json:"counters,omitempty"`
	Gauges        map[string]int64        `json:"gauges,omitempty"`
	Timers        map[string]TimerStat    `json:"timers,omitempty"`
	Histograms    map[string]HistStat     `json:"histograms,omitempty"`
	Progress      map[string]ProgressStat `json:"progress,omitempty"`
	Events        []Event                 `json:"events,omitempty"`
	EventsDropped int64                   `json:"events_dropped,omitempty"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{}
	r.mu.RLock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for k, c := range r.counters {
			s.Counters[k] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for k, g := range r.gauges {
			s.Gauges[k] = g.Value()
		}
	}
	timers := make(map[string]*Timer, len(r.timers))
	for k, t := range r.timers {
		timers[k] = t
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, h := range r.hists {
		hists[k] = h
	}
	if len(r.progress) > 0 {
		s.Progress = make(map[string]ProgressStat, len(r.progress))
		for k, p := range r.progress {
			done, total := p.Value()
			s.Progress[k] = ProgressStat{Done: done, Total: total}
		}
	}
	r.mu.RUnlock()
	// Timer/histogram stats take their own locks; collect them outside
	// the registry lock.
	if len(timers) > 0 {
		s.Timers = make(map[string]TimerStat, len(timers))
		for k, t := range timers {
			s.Timers[k] = t.Stats()
		}
	}
	if len(hists) > 0 {
		s.Histograms = make(map[string]HistStat, len(hists))
		for k, h := range hists {
			s.Histograms[k] = h.Stats()
		}
	}
	s.Events, s.EventsDropped = r.trace.Events()
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// fmtDur renders nanoseconds with time.Duration's human units.
func fmtDur(ns int64) string { return time.Duration(ns).String() }

// Summary renders the snapshot as a fixed-width text block, the body
// of the CLI's -stats output. Sections with no instruments are
// omitted; names sort lexically so related instruments group by their
// dotted prefix.
func (s Snapshot) Summary() string {
	var b strings.Builder
	sortedKeys := func(n int, each func(add func(string))) []string {
		keys := make([]string, 0, n)
		each(func(k string) { keys = append(keys, k) })
		sort.Strings(keys)
		return keys
	}
	if len(s.Counters) > 0 {
		fmt.Fprintf(&b, "counters:\n")
		for _, k := range sortedKeys(len(s.Counters), func(add func(string)) {
			for k := range s.Counters {
				add(k)
			}
		}) {
			fmt.Fprintf(&b, "  %-36s %12d\n", k, s.Counters[k])
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintf(&b, "gauges:\n")
		for _, k := range sortedKeys(len(s.Gauges), func(add func(string)) {
			for k := range s.Gauges {
				add(k)
			}
		}) {
			fmt.Fprintf(&b, "  %-36s %12d\n", k, s.Gauges[k])
		}
	}
	if len(s.Timers) > 0 {
		fmt.Fprintf(&b, "timers:%38s %10s %10s %10s %10s\n", "count", "total", "mean", "min", "max")
		for _, k := range sortedKeys(len(s.Timers), func(add func(string)) {
			for k := range s.Timers {
				add(k)
			}
		}) {
			t := s.Timers[k]
			fmt.Fprintf(&b, "  %-36s %6d %10s %10s %10s %10s\n",
				k, t.Count, fmtDur(t.TotalNs), fmtDur(t.MeanNs), fmtDur(t.MinNs), fmtDur(t.MaxNs))
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintf(&b, "histograms:\n")
		for _, k := range sortedKeys(len(s.Histograms), func(add func(string)) {
			for k := range s.Histograms {
				add(k)
			}
		}) {
			h := s.Histograms[k]
			fmt.Fprintf(&b, "  %-36s n=%d sum=%d", k, h.Count, h.Sum)
			for _, bk := range h.Buckets {
				if bk.Le < 0 {
					fmt.Fprintf(&b, " [big]:%d", bk.Count)
				} else {
					fmt.Fprintf(&b, " [<=%d]:%d", bk.Le, bk.Count)
				}
			}
			fmt.Fprintf(&b, "\n")
		}
	}
	if len(s.Progress) > 0 {
		fmt.Fprintf(&b, "progress:\n")
		for _, k := range sortedKeys(len(s.Progress), func(add func(string)) {
			for k := range s.Progress {
				add(k)
			}
		}) {
			p := s.Progress[k]
			if p.Total > 0 {
				fmt.Fprintf(&b, "  %-36s %12d/%d\n", k, p.Done, p.Total)
			} else {
				fmt.Fprintf(&b, "  %-36s %12d\n", k, p.Done)
			}
		}
	}
	if len(s.Events) > 0 {
		fmt.Fprintf(&b, "trace (%d events", len(s.Events))
		if s.EventsDropped > 0 {
			fmt.Fprintf(&b, ", %d dropped", s.EventsDropped)
		}
		fmt.Fprintf(&b, "):\n")
		for _, e := range s.Events {
			if e.DurNs > 0 {
				fmt.Fprintf(&b, "  %-36s %10s", e.Name, fmtDur(e.DurNs))
			} else {
				fmt.Fprintf(&b, "  %-36s %10s", e.Name, "-")
			}
			if e.Detail != "" {
				fmt.Fprintf(&b, "  %s", e.Detail)
			}
			fmt.Fprintf(&b, "\n")
		}
	}
	if b.Len() == 0 {
		return "no telemetry recorded\n"
	}
	return b.String()
}
