package telemetry

import (
	"context"
	"sync"
	"time"
)

// DefaultTraceCap is the ring-buffer capacity of a new registry's
// trace: enough for a full CLI run's phase spans without growing.
const DefaultTraceCap = 256

// Event is one trace record: an instantaneous event (DurNs == 0 and
// no span ID) or a completed span with a duration. Spans carry their
// span/parent IDs so a consumer can rebuild the tree (BuildSpanTree);
// IDs are unique per registry, not globally.
type Event struct {
	Name    string            `json:"name"`
	Detail  string            `json:"detail,omitempty"`
	SpanID  int64             `json:"span_id,omitempty"`
	Parent  int64             `json:"parent_id,omitempty"`
	StartNs int64             `json:"start_ns"` // unix nanoseconds
	DurNs   int64             `json:"dur_ns,omitempty"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Trace is a fixed-capacity ring buffer of events. Writers never
// block and never allocate beyond the ring; when full, the oldest
// events are overwritten and counted as dropped.
type Trace struct {
	mu      sync.Mutex
	buf     []Event
	next    int   // next write position
	total   int64 // events ever recorded
	dropped int64 // events overwritten
}

// NewTrace creates a ring of the given capacity (minimum 1).
func NewTrace(capacity int) *Trace {
	if capacity < 1 {
		capacity = 1
	}
	return &Trace{buf: make([]Event, 0, capacity)}
}

// Event records an instantaneous event.
func (t *Trace) Event(name, detail string) {
	t.record(Event{Name: name, Detail: detail, StartNs: time.Now().UnixNano()})
}

func (t *Trace) record(e Event) {
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
	} else {
		t.buf[t.next] = e
		t.dropped++
	}
	t.next = (t.next + 1) % cap(t.buf)
	t.total++
	t.mu.Unlock()
}

// Events returns the buffered events oldest-first, plus the number of
// older events lost to the ring.
func (t *Trace) Events() (events []Event, dropped int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	events = make([]Event, 0, len(t.buf))
	if len(t.buf) == cap(t.buf) {
		events = append(events, t.buf[t.next:]...)
		events = append(events, t.buf[:t.next]...)
	} else {
		events = append(events, t.buf...)
	}
	return events, t.dropped
}

// Reset empties the ring.
func (t *Trace) Reset() {
	t.mu.Lock()
	t.buf = t.buf[:0]
	t.next = 0
	t.total = 0
	t.dropped = 0
	t.mu.Unlock()
}

// Span is an in-flight traced region started by Registry.StartSpan or
// StartSpanCtx. While open it is visible through
// Registry.ActiveSpans, so a live monitor (the dftd event streamer)
// can report the current phase before the span completes.
type Span struct {
	reg    *Registry
	name   string
	id     int64
	parent int64
	start  time.Time

	mu     sync.Mutex
	detail string
	attrs  map[string]string
	ended  bool
}

// StartSpan opens a root span (no parent); End records it into the
// trace ring and into a same-named timer, so spans show up both as
// individual events and as aggregated durations. Use StartSpanCtx to
// open a child of the span already carried by a context.
func (r *Registry) StartSpan(name string) *Span {
	return r.startSpan(name, 0)
}

func (r *Registry) startSpan(name string, parent int64) *Span {
	s := &Span{
		reg:    r,
		name:   name,
		id:     r.spanSeq.Add(1),
		parent: parent,
		start:  time.Now(),
	}
	r.activeMu.Lock()
	if r.active == nil {
		r.active = make(map[int64]*Span)
	}
	r.active[s.id] = s
	r.activeMu.Unlock()
	return s
}

// SetDetail attaches a free-form annotation reported with the event.
func (s *Span) SetDetail(detail string) {
	s.mu.Lock()
	s.detail = detail
	s.mu.Unlock()
}

// SetAttr attaches one key/value attribute reported with the event and
// in the span tree. Safe for concurrent use; last write per key wins.
func (s *Span) SetAttr(key, value string) {
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// ID returns the span's registry-unique identifier.
func (s *Span) ID() int64 { return s.id }

// Name returns the span's name.
func (s *Span) Name() string { return s.name }

// End closes the span. Multiple End calls record once.
func (s *Span) End() time.Duration {
	d := time.Since(s.start)
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return d
	}
	s.ended = true
	detail := s.detail
	var attrs map[string]string
	if len(s.attrs) > 0 {
		attrs = make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			attrs[k] = v
		}
	}
	s.mu.Unlock()

	s.reg.activeMu.Lock()
	delete(s.reg.active, s.id)
	s.reg.activeMu.Unlock()

	s.reg.Timer(s.name).Observe(d)
	s.reg.trace.record(Event{
		Name:    s.name,
		Detail:  detail,
		SpanID:  s.id,
		Parent:  s.parent,
		StartNs: s.start.UnixNano(),
		DurNs:   d.Nanoseconds(),
		Attrs:   attrs,
	})
	return d
}

// SpanInfo is a point-in-time view of an in-flight span.
type SpanInfo struct {
	Name    string `json:"name"`
	ID      int64  `json:"id"`
	Parent  int64  `json:"parent_id,omitempty"`
	StartNs int64  `json:"start_ns"`
}

// ActiveSpans returns the registry's in-flight spans ordered by start
// (span IDs are allocated monotonically, so the last entry is the
// deepest/most recent phase). The result is a copy; spans may end
// concurrently with its use.
func (r *Registry) ActiveSpans() []SpanInfo {
	r.activeMu.Lock()
	out := make([]SpanInfo, 0, len(r.active))
	for _, s := range r.active {
		out = append(out, SpanInfo{Name: s.name, ID: s.id, Parent: s.parent, StartNs: s.start.UnixNano()})
	}
	r.activeMu.Unlock()
	sortSpanInfos(out)
	return out
}

func sortSpanInfos(s []SpanInfo) {
	// Insertion sort by ID: the slice is tiny (phase nesting depth).
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1].ID > s[j].ID; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}

// spanCtxKey carries the innermost open span through a context.
type spanCtxKey struct{}

// ContextWithSpan returns a context carrying s as the current span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartSpanCtx opens a span as a child of the span carried by ctx (if
// any, and if it belongs to the same registry) and returns a derived
// context carrying the new span. A nil registry resolves to the parent
// span's registry, falling back to Default — so instrumented library
// code can thread spans without knowing which registry the caller
// chose:
//
//	ctx, sp := telemetry.StartSpanCtx(ctx, cfg.Metrics, "atpg.generate")
//	defer sp.End()
func StartSpanCtx(ctx context.Context, r *Registry, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if r == nil {
		if parent != nil {
			r = parent.reg
		} else {
			r = Default()
		}
	}
	pid := int64(0)
	if parent != nil && parent.reg == r {
		pid = parent.id
	}
	s := r.startSpan(name, pid)
	return ContextWithSpan(ctx, s), s
}
