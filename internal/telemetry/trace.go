package telemetry

import (
	"sync"
	"time"
)

// DefaultTraceCap is the ring-buffer capacity of a new registry's
// trace: enough for a full CLI run's phase spans without growing.
const DefaultTraceCap = 256

// Event is one trace record: an instantaneous event (DurNs == 0 and
// no span) or a completed span with a duration.
type Event struct {
	Name    string `json:"name"`
	Detail  string `json:"detail,omitempty"`
	StartNs int64  `json:"start_ns"` // unix nanoseconds
	DurNs   int64  `json:"dur_ns,omitempty"`
}

// Trace is a fixed-capacity ring buffer of events. Writers never
// block and never allocate beyond the ring; when full, the oldest
// events are overwritten and counted as dropped.
type Trace struct {
	mu      sync.Mutex
	buf     []Event
	next    int   // next write position
	total   int64 // events ever recorded
	dropped int64 // events overwritten
}

// NewTrace creates a ring of the given capacity (minimum 1).
func NewTrace(capacity int) *Trace {
	if capacity < 1 {
		capacity = 1
	}
	return &Trace{buf: make([]Event, 0, capacity)}
}

// Event records an instantaneous event.
func (t *Trace) Event(name, detail string) {
	t.record(Event{Name: name, Detail: detail, StartNs: time.Now().UnixNano()})
}

func (t *Trace) record(e Event) {
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
	} else {
		t.buf[t.next] = e
		t.dropped++
	}
	t.next = (t.next + 1) % cap(t.buf)
	t.total++
	t.mu.Unlock()
}

// Events returns the buffered events oldest-first, plus the number of
// older events lost to the ring.
func (t *Trace) Events() (events []Event, dropped int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	events = make([]Event, 0, len(t.buf))
	if len(t.buf) == cap(t.buf) {
		events = append(events, t.buf[t.next:]...)
		events = append(events, t.buf[:t.next]...)
	} else {
		events = append(events, t.buf...)
	}
	return events, t.dropped
}

// Reset empties the ring.
func (t *Trace) Reset() {
	t.mu.Lock()
	t.buf = t.buf[:0]
	t.next = 0
	t.total = 0
	t.dropped = 0
	t.mu.Unlock()
}

// Span is an in-flight traced region started by Registry.StartSpan.
type Span struct {
	reg    *Registry
	name   string
	detail string
	start  time.Time
	ended  bool
}

// StartSpan opens a span; End records it into the trace ring and into
// a same-named timer, so spans show up both as individual events and
// as aggregated durations.
func (r *Registry) StartSpan(name string) *Span {
	return &Span{reg: r, name: name, start: time.Now()}
}

// SetDetail attaches a free-form annotation reported with the event.
func (s *Span) SetDetail(detail string) { s.detail = detail }

// End closes the span. Multiple End calls record once.
func (s *Span) End() time.Duration {
	d := time.Since(s.start)
	if s.ended {
		return d
	}
	s.ended = true
	s.reg.Timer(s.name).Observe(d)
	s.reg.trace.record(Event{
		Name:    s.name,
		Detail:  s.detail,
		StartNs: s.start.UnixNano(),
		DurNs:   d.Nanoseconds(),
	})
	return d
}
