package telemetry

import (
	"sort"
	"strings"
)

// Label builds a canonical labeled instrument name,
// `base{k1="v1",k2="v2"}`, from alternating key/value pairs. Labeled
// names are ordinary registry keys — `r.Timer(Label("service.job.run",
// "kind", "faultsim"))` creates a series per kind — and WritePrometheus
// recognises the syntax, emitting the labels natively and grouping the
// series under one TYPE header. Keys are sorted so the same label set
// always produces the same registry key regardless of call-site order.
// Values containing '"', '\\' or newlines are escaped per the
// Prometheus text format.
func Label(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\"\\\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// splitLabels separates a canonical labeled name into its base and the
// raw label body (without braces). ok is false for unlabeled names.
func splitLabels(name string) (base, labels string, ok bool) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, "", false
	}
	return name[:i], name[i+1 : len(name)-1], true
}
