package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestWritePrometheusGolden pins the text exposition format: a
// registry with one instrument of every kind must render exactly the
// checked-in golden document.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("service.jobs.accepted").Add(42)
	r.Counter("fault.sim.events").Add(123456)
	r.Counter("compact.patterns.dropped").Add(315)
	r.Counter("compact.merge.attempts").Add(12)
	r.Counter("compact.merge.hits").Add(5)
	r.Counter("diagnose.dict.builds").Inc()
	r.Counter("diagnose.dict.faults").Add(128)
	r.Counter("diagnose.dict.patterns").Add(64)
	r.Counter("service.dict.hits").Add(3)
	r.Counter("service.dict.misses").Inc()
	r.Counter("advise.candidates.scored").Add(96)
	r.Counter("advise.interventions.applied").Add(2)
	r.Counter("advise.probe.patterns").Add(512)
	r.Gauge("advise.coverage").Set(9934)
	r.Gauge("diagnose.dict.bytes").Set(2048)
	r.Gauge("service.queue.depth").Set(7)
	r.Timer("advise.run").Observe(250 * time.Millisecond)
	r.Timer("service.job.run").Observe(1500 * time.Millisecond)
	r.Timer("service.job.run").Observe(500 * time.Millisecond)
	h := r.Histogram("fault.engine.shard_faults")
	h.Observe(0)
	h.Observe(3)
	h.Observe(3)
	h.Observe(900)
	// Labeled series: per-kind job latency histograms share one TYPE
	// header, and a labeled counter coexists with unlabeled ones.
	r.Histogram(Label("service.job.duration_ms", "kind", "faultsim")).Observe(900)
	r.Histogram(Label("service.job.duration_ms", "kind", "atpg")).Observe(40)
	r.Counter(Label("service.jobs.finished", "state", "done")).Add(41)
	r.Counter(Label("service.jobs.finished", "state", "cancelled")).Inc()
	// Progress exports as a _done/_planned gauge pair.
	p := r.Progress("fault.sim.progress")
	p.SetTotal(2640)
	p.Add(1200)
	ap := r.Progress("advise.steps.progress")
	ap.SetTotal(32)
	ap.Add(2)

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prometheus.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestPromNameSanitizes covers the identifier mapping.
func TestPromNameSanitizes(t *testing.T) {
	for in, want := range map[string]string{
		"fault.sim.events": "dft_fault_sim_events",
		"a-b c/d":          "dft_a_b_c_d",
		"already_ok9":      "dft_already_ok9",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePrometheusParses sanity-checks structural invariants a
// scraper relies on: every sample line's metric appears under a TYPE
// header, and histogram buckets are cumulative.
func TestWritePrometheusParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("x.y").Inc()
	h := r.Histogram("sizes")
	for v := int64(1); v < 100; v *= 2 {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	typed := map[string]bool{}
	var lastCum int64 = -1
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			typed[strings.Fields(line)[2]] = true
			continue
		}
		name := strings.FieldsFunc(line, func(r rune) bool { return r == '{' || r == ' ' })[0]
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base = strings.TrimSuffix(base, suf)
		}
		if !typed[name] && !typed[base] {
			t.Errorf("sample %q has no TYPE header", line)
		}
		if strings.Contains(line, "_bucket{") {
			fields := strings.Fields(line)
			cum, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			if cum < lastCum {
				t.Errorf("buckets not cumulative at %q", line)
			}
			lastCum = cum
		}
	}
}
