package telemetry

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestConcurrentCounters hammers one counter and one gauge from many
// goroutines; run under -race this is the package's memory-safety
// check, and the final values are the correctness check.
func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("work.items")
			g := r.Gauge("work.live")
			h := r.Histogram("work.sizes")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(int64(i % 100))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("work.items").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("work.live").Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	if got := r.Histogram("work.sizes").Stats().Count; got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestConcurrentRegistryAccess creates instruments under distinct
// names concurrently — the get-or-create path under -race.
func TestConcurrentRegistryAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	names := []string{"a", "b", "c", "d"}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				n := names[i%len(names)]
				r.Counter(n).Inc()
				r.Timer(n).Observe(time.Microsecond)
				r.Trace().Event(n, "")
			}
		}()
	}
	wg.Wait()
	for _, n := range names {
		if got := r.Counter(n).Value(); got != 2000 {
			t.Fatalf("counter %q = %d, want 2000", n, got)
		}
	}
}

func TestTimerAggregation(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("phase")
	for _, d := range []time.Duration{
		5 * time.Millisecond, time.Millisecond, 3 * time.Millisecond,
	} {
		tm.Observe(d)
	}
	s := tm.Stats()
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if s.TotalNs != int64(9*time.Millisecond) {
		t.Fatalf("total = %d, want 9ms", s.TotalNs)
	}
	if s.MinNs != int64(time.Millisecond) || s.MaxNs != int64(5*time.Millisecond) {
		t.Fatalf("min/max = %d/%d, want 1ms/5ms", s.MinNs, s.MaxNs)
	}
	if s.MeanNs != int64(3*time.Millisecond) {
		t.Fatalf("mean = %d, want 3ms", s.MeanNs)
	}
}

func TestTimerTimeBrackets(t *testing.T) {
	r := NewRegistry()
	done := r.Timer("region").Time()
	time.Sleep(2 * time.Millisecond)
	done()
	s := r.Timer("region").Stats()
	if s.Count != 1 || s.TotalNs < int64(time.Millisecond) {
		t.Fatalf("stats = %+v, want one observation >= 1ms", s)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sizes")
	for _, v := range []int64{0, 1, 2, 3, 4, 100, 1 << 40} {
		h.Observe(v)
	}
	s := h.Stats()
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	want := map[int64]int64{
		0:   1, // the zero
		1:   1, // 1
		3:   2, // 2, 3
		7:   1, // 4
		127: 1, // 100
		-1:  0, // placeholder; 2^40 lands in its own bucket below
	}
	for _, b := range s.Buckets {
		if b.Le == int64(1)<<41-1 {
			if b.Count != 1 {
				t.Fatalf("2^40 bucket count = %d, want 1", b.Count)
			}
			continue
		}
		if w, ok := want[b.Le]; ok && w > 0 && b.Count != w {
			t.Fatalf("bucket le=%d count = %d, want %d", b.Le, b.Count, w)
		}
	}
}

func TestTraceRingWraps(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.Event("e", string(rune('a'+i)))
	}
	events, dropped := tr.Events()
	if len(events) != 4 {
		t.Fatalf("len(events) = %d, want 4", len(events))
	}
	if dropped != 6 {
		t.Fatalf("dropped = %d, want 6", dropped)
	}
	// Oldest-first: the survivors are the last four records g,h,i,j.
	for i, e := range events {
		if want := string(rune('a' + 6 + i)); e.Detail != want {
			t.Fatalf("event %d detail = %q, want %q", i, e.Detail, want)
		}
	}
}

func TestSpanRecordsTimerAndEvent(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("phase.load")
	sp.SetDetail("c17.bench")
	time.Sleep(time.Millisecond)
	sp.End()
	sp.End() // idempotent
	if s := r.Timer("phase.load").Stats(); s.Count != 1 {
		t.Fatalf("span timer count = %d, want 1", s.Count)
	}
	events, _ := r.Trace().Events()
	if len(events) != 1 || events[0].Name != "phase.load" || events[0].DurNs <= 0 {
		t.Fatalf("trace events = %+v, want one phase.load span", events)
	}
	if events[0].Detail != "c17.bench" {
		t.Fatalf("detail = %q", events[0].Detail)
	}
}

// TestSnapshotJSONRoundTrip serializes a populated snapshot and reads
// it back; every instrument must survive unchanged.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("atpg.backtracks").Add(42)
	r.Gauge("fault.sim.workers").Set(8)
	r.Timer("atpg.engine.podem").Observe(1500 * time.Microsecond)
	r.Timer("atpg.engine.podem").Observe(500 * time.Microsecond)
	r.Histogram("fault.sim.block_size").Observe(64)
	r.StartSpan("core.generate").End()

	snap := r.Snapshot()
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round-trip decode: %v", err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Fatalf("round trip changed the snapshot:\n got %+v\nwant %+v", back, snap)
	}
	if back.Counters["atpg.backtracks"] != 42 {
		t.Fatalf("counter lost: %+v", back.Counters)
	}
	if ts := back.Timers["atpg.engine.podem"]; ts.Count != 2 || ts.MeanNs != int64(time.Millisecond) {
		t.Fatalf("timer stats lost: %+v", ts)
	}
}

func TestReportRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Add(7)
	rep := NewReport("dftc", "atpg", "c17.bench")
	rep.Config["engine"] = "podem"
	rep.Results["coverage"] = 1.0
	rep.Finish(r)

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseReport(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != ReportSchema || back.Command != "atpg" || back.Input != "c17.bench" {
		t.Fatalf("report header lost: %+v", back)
	}
	if back.Metrics.Counters["x"] != 7 {
		t.Fatalf("metrics lost: %+v", back.Metrics)
	}
	if _, err := ParseReport([]byte(`{"schema":"bogus/v9"}`)); err == nil {
		t.Fatal("ParseReport accepted a bogus schema")
	}
}

func TestResetZeroesInPlace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Inc()
	r.Timer("t").Observe(time.Millisecond)
	r.Histogram("h").Observe(5)
	r.Trace().Event("e", "")
	r.Reset()
	s := r.Snapshot()
	if s.Counters["a"] != 0 || s.Timers["t"].Count != 0 ||
		s.Histograms["h"].Count != 0 || len(s.Events) != 0 {
		t.Fatalf("reset left state: %+v", s)
	}
	// Cached handles must stay live across Reset.
	c.Inc()
	if r.Snapshot().Counters["a"] != 1 {
		t.Fatal("cached counter handle detached by Reset")
	}
}

func TestSummaryRenders(t *testing.T) {
	r := NewRegistry()
	if got := r.Snapshot().Summary(); got != "no telemetry recorded\n" {
		t.Fatalf("empty summary = %q", got)
	}
	r.Counter("atpg.backtracks").Add(3)
	r.Timer("core.generate").Observe(time.Millisecond)
	out := r.Snapshot().Summary()
	for _, want := range []string{"counters:", "atpg.backtracks", "timers:", "core.generate"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}
