package telemetry

import (
	"encoding/json"
	"io"
	"time"
)

// ReportSchema identifies the run-report JSON layout. Consumers
// (bench_test.go's BENCH_telemetry.json dump, trajectory tooling)
// should check it before parsing and tolerate unknown fields.
const ReportSchema = "dft.run-report/v1"

// Report is the machine-readable record of one toolkit run: what was
// run, on which input, with which configuration, what came out, and
// the full metrics snapshot. It is the payload of the CLI's -json
// flags and the schema benchmark trajectories consume.
type Report struct {
	Schema  string `json:"schema"`
	Tool    string `json:"tool"`              // "dftc", "bench", ...
	Command string `json:"command,omitempty"` // subcommand or workload name
	Input   string `json:"input,omitempty"`   // circuit file or generator
	UnixNs  int64  `json:"unix_ns,omitempty"` // report creation time

	// Config holds the effective run configuration (flag values,
	// seeds, engine choices); Results holds the headline outcomes
	// (coverage, pattern counts, phase durations). Both are free-form
	// but keys should be lower_snake_case and value types JSON-native.
	Config  map[string]any `json:"config,omitempty"`
	Results map[string]any `json:"results,omitempty"`

	Metrics Snapshot `json:"metrics"`

	// Trace is the hierarchical view of Metrics.Events: the completed
	// spans nested by parent ID. Filled by Finish; redundant with
	// Metrics.Events but shaped for consumers (the daemon's /trace
	// endpoint, trajectory tooling) that want the tree directly.
	Trace []*SpanNode `json:"trace,omitempty"`
}

// NewReport starts a report for the given tool/command/input with the
// schema and timestamp filled in.
func NewReport(tool, command, input string) *Report {
	return &Report{
		Schema:  ReportSchema,
		Tool:    tool,
		Command: command,
		Input:   input,
		UnixNs:  time.Now().UnixNano(),
		Config:  map[string]any{},
		Results: map[string]any{},
	}
}

// Finish captures the registry into the report and returns it, so a
// run can end with `return rep.Finish(reg).WriteJSON(os.Stdout)`.
func (rep *Report) Finish(r *Registry) *Report {
	rep.Metrics = r.Snapshot()
	rep.Trace = BuildSpanTree(rep.Metrics.Events)
	return rep
}

// WriteJSON writes the report as indented JSON.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ParseReport decodes a report and verifies the schema marker.
func ParseReport(data []byte) (*Report, error) {
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, err
	}
	if rep.Schema != ReportSchema {
		return nil, &SchemaError{Got: rep.Schema}
	}
	return &rep, nil
}

// SchemaError reports an unexpected report schema.
type SchemaError struct {
	Got string
}

func (e *SchemaError) Error() string {
	return "telemetry: unexpected report schema " + e.Got + " (want " + ReportSchema + ")"
}
