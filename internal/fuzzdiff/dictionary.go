package fuzzdiff

import (
	"context"
	"fmt"

	"dft/internal/diagnose"
	"dft/internal/fault"
	"dft/internal/logic"
)

// CheckDictionary cross-checks the fault-dictionary build against the
// baseline grading oracle on three axes:
//
//   - detect-bit agreement: a fault's dictionary row must be nonzero
//     exactly when the independent baseline grade detects it, and the
//     row's first set bit must be the baseline's first-detecting
//     pattern (first detection is drop-invariant, so the two engines
//     must agree bit-for-bit on it);
//   - worker/backend invariance: the CPT and fault-parallel detail
//     schedulers at several worker counts must reproduce the
//     single-worker parallel rows byte-identically;
//   - closed-loop diagnosis: observing a detected fault's machine
//     through the dictionary must put that fault in its own exact
//     lookup class and rank it at Hamming distance 0.
//
// A nil result means the dictionary and the grading oracle agree.
func CheckDictionary(ctx context.Context, c *logic.Circuit, faults []fault.Fault, pats [][]bool, seed int64) (*Divergence, error) {
	if len(faults) == 0 || len(pats) == 0 {
		return nil, nil
	}
	want, err := runConfig(ctx, c, faults, pats, Baseline())
	if err != nil {
		return nil, err
	}
	dict, err := diagnose.Build(ctx, c, faults, pats, diagnose.Options{
		Backend: fault.BackendParallel, Workers: 1,
	})
	if err != nil {
		return nil, err
	}

	firstBit := func(row []uint64) int {
		for w, word := range row {
			if word != 0 {
				for b := 0; b < 64; b++ {
					if word>>uint(b)&1 == 1 {
						return w*64 + b
					}
				}
			}
		}
		return -1
	}
	for i := range faults {
		first := firstBit(dict.Row(i))
		if (first >= 0) != want.Detected[i] {
			return dictDivergence(c, seed, pats,
				fmt.Sprintf("fault %s: dictionary row nonzero=%v, baseline detected=%v",
					faults[i].Name(c), first >= 0, want.Detected[i])), nil
		}
		if first >= 0 && first != want.DetectedBy[i] {
			return dictDivergence(c, seed, pats,
				fmt.Sprintf("fault %s: dictionary first detect at pattern %d, baseline at %d",
					faults[i].Name(c), first, want.DetectedBy[i])), nil
		}
	}

	for _, cfg := range []struct {
		be fault.Backend
		w  int
	}{
		{fault.BackendParallel, 4},
		{fault.BackendFaultParallel, 2},
		{fault.BackendCPT, 4},
	} {
		other, err := diagnose.Build(ctx, c, faults, pats, diagnose.Options{Backend: cfg.be, Workers: cfg.w})
		if err != nil {
			return nil, err
		}
		for i := range faults {
			a, b := dict.Row(i), other.Row(i)
			for w := range a {
				if a[w] != b[w] {
					return dictDivergence(c, seed, pats,
						fmt.Sprintf("fault %s word %d: %v workers=%d row %016x, reference %016x",
							faults[i].Name(c), w, cfg.be, cfg.w, b[w], a[w])), nil
				}
			}
		}
	}

	for i := range faults {
		if !want.Detected[i] {
			continue
		}
		sig, err := dict.ObserveMachine(faults[i])
		if err != nil {
			return nil, err
		}
		hit := false
		for _, fi := range dict.Lookup(sig) {
			if fi == i {
				hit = true
			}
		}
		if !hit {
			return dictDivergence(c, seed, pats,
				fmt.Sprintf("fault %s: own observed signature not in its exact lookup class", faults[i].Name(c))), nil
		}
		if r := dict.Rank(sig, 1); len(r) == 0 || r[0].Distance != 0 {
			return dictDivergence(c, seed, pats,
				fmt.Sprintf("fault %s: best ranked candidate at distance %d, want 0", faults[i].Name(c), r[0].Distance)), nil
		}
		break // one closed loop per round keeps the check cheap
	}
	return nil, nil
}

// dictDivergence packages a dict-kind finding; like compaction, the
// pattern set is carried whole because rows are set-level properties.
func dictDivergence(c *logic.Circuit, seed int64, pats [][]bool, detail string) *Divergence {
	return &Divergence{
		Kind:     "dict",
		Seed:     seed,
		Circuit:  c,
		Detail:   detail,
		Patterns: pats,
	}
}
