// Package fuzzdiff is the toolkit's differential-fuzzing and
// cross-oracle validation layer. The compiled kernel, the interpreted
// kernel, every execution width (scalar, 64-way word, blocked) and
// every fault-simulation backend (serial, deductive, parallel,
// fault-parallel and critical-path tracing, at any worker count) are
// required to produce byte-identical results — the
// good-machine/faulty-machine equivalence the paper's fault-simulation
// cost model rests on. This package makes that invariant standing
// infrastructure: a seeded random netlist generator (Generate), a
// structural validator shared by the generator, the Load path and the
// CLI (Lint), and a differential checker (Round, CheckKernels,
// CheckBackends) that sweeps the configuration matrix and reports the
// first divergence as a minimized, replayable repro.
package fuzzdiff

import (
	"fmt"

	"dft/internal/logic"
)

// Severity grades a Diagnostic. Errors make a circuit unfit for
// simulation (the Load path rejects them); warnings flag structure
// that is legal but usually unintended.
type Severity uint8

const (
	// Warning marks suspicious but simulatable structure.
	Warning Severity = iota
	// Error marks structure the simulators cannot evaluate soundly.
	Error
)

// String names the severity for diagnostics output.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Diagnostic codes emitted by Lint.
const (
	// CodeFaninRange: a gate reads a net ID outside [0, NumNets).
	CodeFaninRange = "fanin-range"
	// CodeWidthMismatch: a gate's fanin count violates its type's
	// MinFanin/MaxFanin contract (e.g. a 2-input NOT from a hand-edited
	// .bench file, which ParseBench alone does not reject).
	CodeWidthMismatch = "width-mismatch"
	// CodeCombLoop: a combinational cycle (no DFF on the path).
	CodeCombLoop = "comb-loop"
	// CodeDanglingNet: a net that is never read and not a primary
	// output — its logic is dead and no fault on it is observable.
	CodeDanglingNet = "dangling-net"
	// CodeOutputRange: a primary-output net ID out of range.
	CodeOutputRange = "output-range"
	// CodeNoOutputs: the circuit has no primary outputs at all.
	CodeNoOutputs = "no-outputs"
)

// Diagnostic is one structured finding from Lint. Net is the element
// the finding anchors to, or -1 for circuit-wide findings.
type Diagnostic struct {
	Code     string
	Severity Severity
	Net      int
	Msg      string
}

// String renders the diagnostic as "severity code: msg".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s %s: %s", d.Severity, d.Code, d.Msg)
}

// HasErrors reports whether any diagnostic is Error severity.
func HasErrors(ds []Diagnostic) bool {
	for _, d := range ds {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Errors filters the Error-severity diagnostics.
func Errors(ds []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range ds {
		if d.Severity == Error {
			out = append(out, d)
		}
	}
	return out
}

// Lint validates a circuit's structure and returns every finding. It
// works on finalized and non-finalized circuits alike (it builds its
// own fanout map and runs its own cycle check), so the generator can
// vet a netlist before Finalize and the Load path can vet one after.
// A nil or empty result means the circuit is clean.
func Lint(c *logic.Circuit) []Diagnostic {
	var ds []Diagnostic
	n := len(c.Gates)
	name := func(id int) string {
		if id >= 0 && id < n {
			return fmt.Sprintf("%q (net %d)", c.Gates[id].Name, id)
		}
		return fmt.Sprintf("net %d", id)
	}

	// Per-gate checks: fanin range and fanin-width contract.
	read := make([]bool, n)
	ranged := true
	for id, g := range c.Gates {
		fan := len(g.Fanin)
		if min := g.Type.MinFanin(); fan < min {
			ds = append(ds, Diagnostic{CodeWidthMismatch, Error, id,
				fmt.Sprintf("%s gate %s has %d fanin, needs at least %d", g.Type, name(id), fan, min)})
		}
		if max := g.Type.MaxFanin(); max >= 0 && fan > max {
			ds = append(ds, Diagnostic{CodeWidthMismatch, Error, id,
				fmt.Sprintf("%s gate %s has %d fanin, accepts at most %d", g.Type, name(id), fan, max)})
		}
		for pin, f := range g.Fanin {
			if f < 0 || f >= n {
				ds = append(ds, Diagnostic{CodeFaninRange, Error, id,
					fmt.Sprintf("gate %s pin %d reads out-of-range net %d", name(id), pin, f)})
				ranged = false
				continue
			}
			read[f] = true
		}
	}

	// Output checks.
	for _, po := range c.POs {
		if po < 0 || po >= n {
			ds = append(ds, Diagnostic{CodeOutputRange, Error, po,
				fmt.Sprintf("primary output net %d out of range", po)})
		} else {
			read[po] = true
		}
	}
	if len(c.POs) == 0 && n > 0 {
		ds = append(ds, Diagnostic{CodeNoOutputs, Warning, -1, "circuit has no primary outputs"})
	}

	// Dangling nets: driven but never read anywhere and not observed.
	for id := range c.Gates {
		if !read[id] {
			ds = append(ds, Diagnostic{CodeDanglingNet, Warning, id,
				fmt.Sprintf("net %s is never read and is not a primary output", name(id))})
		}
	}

	// Combinational cycle check by Kahn's algorithm over combinational
	// edges, mirroring Finalize but reporting the stuck nets instead of
	// failing wholesale. Skipped when fanin IDs were out of range.
	if ranged {
		fanout := make([][]int, n)
		indeg := make([]int, n)
		for id, g := range c.Gates {
			if g.Type.IsCombinational() {
				indeg[id] = len(g.Fanin)
			}
			for _, f := range g.Fanin {
				fanout[f] = append(fanout[f], id)
			}
		}
		queue := make([]int, 0, n)
		for id := range c.Gates {
			if indeg[id] == 0 {
				queue = append(queue, id)
			}
		}
		seen := 0
		for len(queue) > 0 {
			id := queue[0]
			queue = queue[1:]
			seen++
			for _, s := range fanout[id] {
				if !c.Gates[s].Type.IsCombinational() {
					continue
				}
				indeg[s]--
				if indeg[s] == 0 {
					queue = append(queue, s)
				}
			}
		}
		if seen != n {
			for id := range c.Gates {
				if indeg[id] > 0 {
					ds = append(ds, Diagnostic{CodeCombLoop, Error, id,
						fmt.Sprintf("net %s lies on a combinational cycle", name(id))})
				}
			}
		}
	}
	return ds
}
