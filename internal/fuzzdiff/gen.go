package fuzzdiff

import (
	"fmt"
	"math/rand"

	"dft/internal/logic"
)

// Config parameterizes the random netlist generator. The zero value is
// usable: withDefaults fills every unset knob with a mid-size
// combinational profile.
type Config struct {
	// Inputs is the number of primary inputs (min 1).
	Inputs int
	// Gates is the number of combinational gates to synthesize.
	Gates int
	// DFFs adds flip-flops whose D inputs are patched to random nets
	// after gate construction, creating sequential feedback through the
	// state elements — the structure that exercises the serial path.
	DFFs int
	// MaxFanin caps n-ary gate width (min 2).
	MaxFanin int
	// GateMix is the candidate gate-type pool; empty selects all eight
	// combinational types.
	GateMix []logic.GateType
	// ConstProb is the probability that an operand is a Const0/Const1
	// feed rather than a live net, exercising the compiler's folding.
	ConstProb float64
	// TieProb is the probability that an operand duplicates another pin
	// of the same gate (tied inputs: idempotence and XOR cancellation).
	TieProb float64
	// DepthBias in [0,1] skews operand choice toward recent nets:
	// 0 picks uniformly (shallow, wide circuits), values near 1 chain
	// gates into deep cones.
	DepthBias float64
}

// withDefaults fills unset fields.
func (cfg Config) withDefaults() Config {
	if cfg.Inputs <= 0 {
		cfg.Inputs = 8
	}
	if cfg.Gates <= 0 {
		cfg.Gates = 48
	}
	if cfg.MaxFanin < 2 {
		cfg.MaxFanin = 4
	}
	if len(cfg.GateMix) == 0 {
		cfg.GateMix = []logic.GateType{
			logic.Buf, logic.Not,
			logic.And, logic.Nand, logic.Or, logic.Nor,
			logic.Xor, logic.Xnor,
		}
	}
	if cfg.ConstProb == 0 {
		cfg.ConstProb = 0.06
	}
	if cfg.TieProb == 0 {
		cfg.TieProb = 0.10
	}
	if cfg.DepthBias == 0 {
		cfg.DepthBias = 0.5
	}
	return cfg
}

// splitmix64 is the standard 64-bit mixing step, used to derive
// independent-looking shape parameters from one fuzz seed.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// ShapeConfig derives a generator Config from a fuzz seed, so one
// int64 drives both the circuit shape and its contents. Roughly a
// third of seeds produce sequential circuits; fanin, size and folding
// probabilities all vary. Used by the native fuzz targets and the
// dftc fuzz subcommand so a reported seed replays exactly.
func ShapeConfig(seed int64) Config {
	h := splitmix64(uint64(seed))
	cfg := Config{
		Inputs:    2 + int(h%14),
		Gates:     8 + int((h>>8)%96),
		MaxFanin:  2 + int((h>>16)%4),
		ConstProb: 0.02 + float64((h>>24)%16)/100,
		TieProb:   0.02 + float64((h>>32)%20)/100,
		DepthBias: float64((h>>40)%10) / 10,
	}
	if (h>>48)%3 == 0 {
		cfg.DFFs = 1 + int((h>>52)%5)
	}
	return cfg.withDefaults()
}

// Generate synthesizes a random, lint-clean, finalized netlist from
// the config and seed. The same (cfg, seed) pair always yields the
// same circuit. Structural features exercised on purpose: Const0 and
// Const1 feeds, tied (duplicated) gate inputs, multi-reader fanout
// branches, Buf/Not chains, and — when cfg.DFFs > 0 — flip-flops with
// feedback D inputs drawn from deep combinational nets. Every sink net
// is marked as a primary output, so no logic dangles.
func Generate(cfg Config, seed int64) *logic.Circuit {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	c := logic.New(fmt.Sprintf("fuzz_%d", seed))

	nets := make([]int, 0, cfg.Inputs+cfg.Gates+cfg.DFFs+2)
	for i := 0; i < cfg.Inputs; i++ {
		nets = append(nets, c.AddInput(fmt.Sprintf("I%d", i)))
	}
	k0 := c.AddGate(logic.Const0, "K0")
	k1 := c.AddGate(logic.Const1, "K1")

	// Flip-flops go in up front with placeholder D inputs so downstream
	// gates can read the state; the D pins are patched to late nets
	// below, the same deferred wiring the .bench reader uses.
	dffs := make([]int, 0, cfg.DFFs)
	for i := 0; i < cfg.DFFs; i++ {
		id := c.AddDFF(fmt.Sprintf("FF%d", i), nets[rng.Intn(len(nets))])
		dffs = append(dffs, id)
		nets = append(nets, id)
	}

	// pick selects an operand: occasionally a constant feed, otherwise
	// a live net with recency bias controlled by DepthBias.
	pick := func() int {
		if rng.Float64() < cfg.ConstProb {
			if rng.Intn(2) == 0 {
				return k0
			}
			return k1
		}
		if cfg.DepthBias > 0 && rng.Float64() < cfg.DepthBias {
			// Recent window: the last quarter of the defined nets.
			w := len(nets)/4 + 1
			return nets[len(nets)-1-rng.Intn(w)]
		}
		return nets[rng.Intn(len(nets))]
	}

	for i := 0; i < cfg.Gates; i++ {
		t := cfg.GateMix[rng.Intn(len(cfg.GateMix))]
		var fanin []int
		if t == logic.Buf || t == logic.Not {
			fanin = []int{pick()}
		} else {
			k := 2 + rng.Intn(cfg.MaxFanin-1)
			fanin = make([]int, 0, k)
			for j := 0; j < k; j++ {
				if j > 0 && rng.Float64() < cfg.TieProb {
					fanin = append(fanin, fanin[rng.Intn(j)]) // tied input
					continue
				}
				fanin = append(fanin, pick())
			}
		}
		nets = append(nets, c.AddGate(t, fmt.Sprintf("G%d", i), fanin...))
	}

	// Patch the flip-flop D inputs to arbitrary (often deep) nets. The
	// DFF edge is sequential, so feedback through the state never forms
	// a combinational cycle.
	for _, id := range dffs {
		c.Gates[id].Fanin[0] = nets[rng.Intn(len(nets))]
	}

	// Every unread net becomes a primary output: nothing dangles, and
	// the observation surface covers the whole frontier.
	read := make([]bool, c.NumNets())
	for _, g := range c.Gates {
		for _, f := range g.Fanin {
			read[f] = true
		}
	}
	for id := range c.Gates {
		if !read[id] {
			c.MarkOutput(id)
		}
	}
	if len(c.POs) == 0 {
		c.MarkOutput(nets[len(nets)-1])
	}
	return c.MustFinalize()
}
