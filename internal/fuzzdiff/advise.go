package fuzzdiff

import (
	"context"
	"fmt"
	"reflect"

	"dft/internal/advise"
	"dft/internal/atpg"
	"dft/internal/fault"
	"dft/internal/logic"
	"dft/internal/sim"
	"dft/internal/telemetry"
)

// adviseFuzzOptions keeps advisor runs cheap enough for fuzz rounds:
// a handful of steps with small probe budgets still exercises every
// intervention kind on the generated netlists.
func adviseFuzzOptions(seed int64) advise.Options {
	return advise.Options{
		Target:     0.95,
		MaxSteps:   3,
		Patterns:   64,
		Backtracks: 64,
		Probes:     16,
		Candidates: 6,
		Seed:       uint64(seed)*2 + 1,
		Workers:    1,
		Metrics:    telemetry.NewRegistry(),
	}
}

// CheckAdvise cross-checks the DFT advisor against the structural and
// simulation oracles: the instrumented netlist it emits must pass
// Lint, round-trip through .bench encode/decode, and grade a collapsed
// fault universe identically across backends and worker counts under
// the plan's partial-scan view; and the whole run must be a pure
// function of its seed. A nil result means every oracle agrees.
func CheckAdvise(ctx context.Context, c *logic.Circuit, seed int64) (*Divergence, error) {
	opt := adviseFuzzOptions(seed)
	plan, err := advise.Run(ctx, c, opt)
	if err != nil {
		return nil, err
	}

	// Purity: the plan must be a deterministic function of the seed.
	plan2, err := advise.Run(ctx, c, adviseFuzzOptions(seed))
	if err != nil {
		return nil, err
	}
	if !reflect.DeepEqual(plan, plan2) {
		return adviseDivergence(c, seed,
			"advise is not a pure function of its seed: two identical runs disagree"), nil
	}

	// The instrumented netlist must be structurally sound and must
	// survive .bench encode/decode unchanged.
	mod, err := logic.ParseBenchString("advised", plan.Bench)
	if err != nil {
		return adviseDivergence(c, seed, "plan netlist does not parse: "+err.Error()), nil
	}
	if ds := Lint(mod); HasErrors(ds) {
		return adviseDivergence(c, seed, "plan netlist fails lint: "+Errors(ds)[0].String()), nil
	}
	back, err := logic.ParseBenchString("advised", logic.BenchString(mod))
	if err != nil {
		return adviseDivergence(c, seed, "re-emitted plan netlist does not parse: "+err.Error()), nil
	}
	if logic.CanonicalBench(back) != logic.CanonicalBench(mod) {
		return adviseDivergence(c, seed, "plan netlist does not round-trip through .bench"), nil
	}
	if plan.ChainBench != "" {
		chain, err := logic.ParseBenchString("chained", plan.ChainBench)
		if err != nil {
			return adviseDivergence(c, seed, "chain netlist does not parse: "+err.Error()), nil
		}
		if ds := Lint(chain); HasErrors(ds) {
			return adviseDivergence(c, seed, "chain netlist fails lint: "+Errors(ds)[0].String()), nil
		}
	}

	// Grading invariance on the instrumented netlist under the plan's
	// view: every backend × worker cell must agree with the serial
	// baseline fault for fault.
	var scanned []int
	for _, name := range plan.Scanned {
		n, ok := mod.NetByName(name)
		if !ok {
			return adviseDivergence(c, seed, fmt.Sprintf("scanned element %q missing from plan netlist", name)), nil
		}
		scanned = append(scanned, n)
	}
	view := atpg.PrimaryView(mod)
	if len(scanned) > 0 {
		view = atpg.PartialScanView(mod, scanned)
	}
	faults := fault.CollapseEquiv(mod, fault.Universe(mod)).Reps
	if len(faults) == 0 {
		return nil, nil
	}
	pats := RandomPatterns(len(view.Inputs), 48, seed^0x51AF3C21)
	cells := []SimConfig{
		Baseline(),
		{Backend: fault.BackendParallel, Workers: 1, Drop: fault.DropOn},
		{Backend: fault.BackendParallel, Workers: 4, Drop: fault.DropOn},
		{Backend: fault.BackendFaultParallel, Workers: 2, Drop: fault.DropOn},
		{Backend: fault.BackendCPT, Workers: 2, Drop: fault.DropOff},
	}
	var want *fault.Result
	for i, cell := range cells {
		got, err := runViewConfig(ctx, mod, view, faults, pats, cell)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			want = got
			continue
		}
		for fi := range faults {
			if want.Detected[fi] != got.Detected[fi] {
				d := adviseDivergence(c, seed,
					fmt.Sprintf("fault %s on the instrumented netlist: detected=%v under %v, %v under %v",
						faults[fi].Name(mod), want.Detected[fi], cells[0], got.Detected[fi], cell))
				d.Base, d.Other = cells[0], cell
				return d, nil
			}
		}
	}
	return nil, nil
}

// runViewConfig is runConfig with an explicit tester view — the shape
// advise-instrumented netlists are graded under.
func runViewConfig(ctx context.Context, c *logic.Circuit, view atpg.View, faults []fault.Fault, pats [][]bool, sc SimConfig) (*fault.Result, error) {
	prev := sim.SetDefaultKernel(sc.Kernel)
	defer sim.SetDefaultKernel(prev)
	return fault.Simulate(ctx, c, faults, pats, fault.Options{
		Backend: sc.Backend,
		Workers: sc.Workers,
		Drop:    sc.Drop,
		View:    fault.View{Inputs: view.Inputs, Outputs: view.Outputs},
	})
}

// adviseDivergence packages an advise-kind finding. The seed replays
// the whole advisor run, so no stimulus minimization applies.
func adviseDivergence(c *logic.Circuit, seed int64, detail string) *Divergence {
	return &Divergence{Kind: "advise", Seed: seed, Circuit: c, Detail: detail}
}
