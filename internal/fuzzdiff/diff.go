package fuzzdiff

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"dft/internal/fault"
	"dft/internal/logic"
	"dft/internal/sim"
	"dft/internal/telemetry"
)

var (
	cRounds      = telemetry.Default().Counter("fuzz.rounds")
	cDivergences = telemetry.Default().Counter("fuzz.divergences")
)

// SimConfig pins one cell of the cross-oracle matrix: which
// good-machine kernel is active, which fault-simulation backend runs,
// at what sharding degree, and whether faults drop after first
// detection. Every cell must produce byte-identical Results on the
// same circuit/fault-list/pattern-set.
type SimConfig struct {
	Kernel  sim.Kernel
	Backend fault.Backend
	Workers int
	Drop    fault.DropMode
}

// String renders the config the way repros and test failures name it.
func (sc SimConfig) String() string {
	drop := "on"
	if sc.Drop == fault.DropOff {
		drop = "off"
	}
	return fmt.Sprintf("kernel=%v backend=%v workers=%d drop=%s", sc.Kernel, sc.Backend, sc.Workers, drop)
}

// Baseline is the reference cell: interpreted kernel, serial backend,
// one worker, dropping on — the most literal implementation of the
// paper's one-good-machine/one-faulty-machine-per-pattern model.
func Baseline() SimConfig {
	return SimConfig{Kernel: sim.KernelInterp, Backend: fault.BackendSerial, Workers: 1, Drop: fault.DropOn}
}

// Matrix enumerates the configurations CheckBackends sweeps: both
// kernels crossed with the serial backend (both drop modes), the
// parallel, fault-parallel and critical-path-tracing backends at
// several worker counts (both drop modes — fault-parallel and cpt
// shard over patterns, so their worker cells also pin the min-merge
// of per-worker first detections), and the deductive backend
// (inherently no-drop). Detection outcomes are defined to be
// drop-invariant, so drop-on cells are compared against the same
// baseline as drop-off cells.
func Matrix() []SimConfig {
	var m []SimConfig
	for _, k := range []sim.Kernel{sim.KernelInterp, sim.KernelCompiled} {
		for _, drop := range []fault.DropMode{fault.DropOn, fault.DropOff} {
			m = append(m, SimConfig{k, fault.BackendSerial, 1, drop})
			for _, w := range []int{1, 2, 5} {
				m = append(m, SimConfig{k, fault.BackendParallel, w, drop})
			}
			for _, w := range []int{1, 4} {
				m = append(m, SimConfig{k, fault.BackendFaultParallel, w, drop})
				m = append(m, SimConfig{k, fault.BackendCPT, w, drop})
			}
		}
		m = append(m, SimConfig{k, fault.BackendDeductive, 1, fault.DropOff})
	}
	return m
}

// runConfig executes one cell: the process-wide kernel is switched for
// the duration of the run (engines snapshot the active kernel when
// they build their simulators) and restored afterwards.
func runConfig(ctx context.Context, c *logic.Circuit, faults []fault.Fault, pats [][]bool, sc SimConfig) (*fault.Result, error) {
	prev := sim.SetDefaultKernel(sc.Kernel)
	defer sim.SetDefaultKernel(prev)
	return fault.Simulate(ctx, c, faults, pats, fault.Options{
		Backend: sc.Backend,
		Workers: sc.Workers,
		Drop:    sc.Drop,
	})
}

// Divergence is one disagreement between two oracles, carrying enough
// state to replay it: the circuit, the seed that generated it, the
// config pair, and the (minimized) fault list and pattern set.
type Divergence struct {
	// Kind is "kernel" (good-machine valuations differ across kernels
	// or execution widths), "backend" (fault.Result differs across
	// matrix cells), "compact" (the compaction engine disagrees with
	// the baseline grading oracle), "dict" (the fault-dictionary
	// detail grade disagrees with the baseline, or is worker/backend
	// dependent), "advise" (the DFT advisor emitted an unsound or
	// seed-impure plan, or its instrumented netlist grades differently
	// across backends), or "lint" (the generator emitted an invalid
	// netlist — a generator bug).
	Kind string
	// Seed replays the circuit via Generate(ShapeConfig(Seed), Seed)
	// when the divergence came out of Round; 0 for hand-built circuits.
	Seed    int64
	Circuit *logic.Circuit
	// Base and Other name the disagreeing cells (backend kind).
	Base, Other SimConfig
	// Detail describes the first disagreement (net or fault, values on
	// both sides, pattern index).
	Detail string
	// Faults and Patterns are the minimized reproducer inputs. For
	// kernel-kind divergences each pattern row is the primary-input
	// bits followed by the flip-flop state bits.
	Faults   []fault.Fault
	Patterns [][]bool
}

// Repro renders the divergence as a self-contained, replayable report:
// the disagreement, the config pair, the minimized stimulus, the
// replay command, and the full circuit in .bench form.
func (d *Divergence) Repro() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fuzzdiff %s divergence (seed %d)\n", d.Kind, d.Seed)
	fmt.Fprintf(&b, "detail: %s\n", d.Detail)
	if d.Kind == "backend" {
		fmt.Fprintf(&b, "config A: %s\nconfig B: %s\n", d.Base, d.Other)
	}
	for _, f := range d.Faults {
		fmt.Fprintf(&b, "fault: %s\n", f.Name(d.Circuit))
	}
	for i, p := range d.Patterns {
		fmt.Fprintf(&b, "pattern[%d] = %s\n", i, patString(p))
	}
	if d.Seed != 0 {
		fmt.Fprintf(&b, "replay: dftc fuzz -seeds %d\n", d.Seed)
	}
	fmt.Fprintf(&b, "--- circuit %s (.bench) ---\n%s", d.Circuit.Name, logic.BenchString(d.Circuit))
	return b.String()
}

func patString(p []bool) string {
	buf := make([]byte, len(p))
	for i, v := range p {
		if v {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return string(buf)
}

// RandomPatterns draws n random patterns of the given width from the
// seed, the same stream the dftc fuzz subcommand and the fuzz targets
// use, so reported seeds replay bit-for-bit.
func RandomPatterns(width, n int, seed int64) [][]bool {
	rng := rand.New(rand.NewSource(seed))
	pats := make([][]bool, n)
	for i := range pats {
		p := make([]bool, width)
		for j := range p {
			p[j] = rng.Intn(2) == 1
		}
		pats[i] = p
	}
	return pats
}

// CheckKernels compiles the circuit and cross-checks every execution
// width of the compiled kernel against the interpreted reference. A
// nil result means all oracles agree on every net.
func CheckKernels(c *logic.Circuit, seed int64, vectors int) *Divergence {
	return CheckProgram(c, sim.Compile(c), seed, vectors)
}

// CheckProgram is CheckKernels against an explicit compiled program —
// the seam that lets tests corrupt a Program and prove the harness
// catches it. It compares, on every net:
//
//   - interpreted scalar vs compiled scalar (ExecBool), per vector;
//   - interpreted 64-way word vs compiled word (Exec);
//   - interpreted scalar vs interpreted word, bit-extracted (the
//     exec-width axis independent of the compiler);
//   - compiled blocked (ExecBlock, W in 2..4) vs the interpreted word
//     reference, lane by lane.
func CheckProgram(c *logic.Circuit, p *sim.Program, seed int64, vectors int) *Divergence {
	if vectors <= 0 {
		vectors = 8
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5DEECE66D))
	n := c.NumNets()
	nPI, nFF := len(c.PIs), len(c.DFFs)

	// Scalar: interpreted vs compiled, vector by vector.
	ref := make([]bool, n)
	got := make([]bool, n)
	for v := 0; v < vectors; v++ {
		pi := randBools(rng, nPI)
		st := randBools(rng, nFF)
		sim.EvalInterpInto(c, pi, st, ref, nil)
		p.EvalInto(pi, st, got)
		for id := 0; id < n; id++ {
			if ref[id] != got[id] {
				return kernelDivergence(c, id, pi, st,
					fmt.Sprintf("net %s: interp(scalar)=%v compiled(scalar)=%v", c.NameOf(id), ref[id], got[id]))
			}
		}
	}

	// Word: interpreted vs compiled over one 64-pattern block.
	piW := randWords(rng, nPI)
	stW := randWords(rng, nFF)
	refW := make(sim.Words, n)
	gotW := make(sim.Words, n)
	sim.EvalWordsInterpInto(c, piW, stW, refW, nil)
	p.EvalWordsInto(piW, stW, gotW)
	for id := 0; id < n; id++ {
		if refW[id] != gotW[id] {
			bit := firstDiffBit(refW[id], gotW[id])
			pi, st := extractBit(piW, stW, bit)
			return kernelDivergence(c, id, pi, st,
				fmt.Sprintf("net %s: interp(word)=%d compiled(word)=%d at block bit %d",
					c.NameOf(id), refW[id]>>uint(bit)&1, gotW[id]>>uint(bit)&1, bit))
		}
	}

	// Exec-width cross-check: a word-kernel bit must equal the scalar
	// kernel run on that bit's extracted pattern (interpreted on both
	// sides, so this pins the width axis independently of the compiler).
	for _, bit := range []int{0, 31, 63} {
		pi, st := extractBit(piW, stW, bit)
		sim.EvalInterpInto(c, pi, st, ref, nil)
		for id := 0; id < n; id++ {
			if ref[id] != (refW[id]>>uint(bit)&1 == 1) {
				return kernelDivergence(c, id, pi, st,
					fmt.Sprintf("net %s: interp(scalar)=%v disagrees with interp(word) bit %d", c.NameOf(id), ref[id], bit))
			}
		}
	}

	// Blocked: every lane of ExecBlock must match the interpreted word
	// kernel on that lane's inputs.
	W := 2 + int(splitmix64(uint64(seed))%3)
	piB := randWords(rng, nPI*W)
	stB := randWords(rng, nFF*W)
	vals := p.EvalBlock(piB, stB, W)
	lanePI := make([]uint64, nPI)
	laneST := make([]uint64, nFF)
	for w := 0; w < W; w++ {
		for i := 0; i < nPI; i++ {
			lanePI[i] = piB[i*W+w]
		}
		for i := 0; i < nFF; i++ {
			laneST[i] = stB[i*W+w]
		}
		sim.EvalWordsInterpInto(c, lanePI, laneST, refW, nil)
		for id := 0; id < n; id++ {
			if vals[id*W+w] != refW[id] {
				bit := firstDiffBit(refW[id], vals[id*W+w])
				pi, st := extractBit(lanePI, laneST, bit)
				return kernelDivergence(c, id, pi, st,
					fmt.Sprintf("net %s: compiled(block W=%d lane %d)=%d interp(word)=%d at bit %d",
						c.NameOf(id), W, w, vals[id*W+w]>>uint(bit)&1, refW[id]>>uint(bit)&1, bit))
			}
		}
	}
	return nil
}

// kernelDivergence packages a kernel-kind finding with its single
// offending vector (PI bits then state bits) as the minimized repro.
func kernelDivergence(c *logic.Circuit, net int, pi, st []bool, detail string) *Divergence {
	vec := make([]bool, 0, len(pi)+len(st))
	vec = append(vec, pi...)
	vec = append(vec, st...)
	_ = net
	return &Divergence{
		Kind:     "kernel",
		Circuit:  c,
		Detail:   detail + fmt.Sprintf(" [pattern = PI bits %d..%d, state bits %d..%d]", 0, len(pi)-1, len(pi), len(pi)+len(st)-1),
		Patterns: [][]bool{vec},
	}
}

func randBools(rng *rand.Rand, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = rng.Intn(2) == 1
	}
	return out
}

func randWords(rng *rand.Rand, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = rng.Uint64()
	}
	return out
}

// firstDiffBit returns the lowest bit position where a and b differ.
func firstDiffBit(a, b uint64) int {
	x := a ^ b
	for i := 0; i < 64; i++ {
		if x>>uint(i)&1 == 1 {
			return i
		}
	}
	return 0
}

// extractBit slices one scalar (pi, state) vector out of packed words.
func extractBit(piW, stW []uint64, bit int) (pi, st []bool) {
	pi = make([]bool, len(piW))
	for i, w := range piW {
		pi[i] = w>>uint(bit)&1 == 1
	}
	st = make([]bool, len(stW))
	for i, w := range stW {
		st[i] = w>>uint(bit)&1 == 1
	}
	return pi, st
}

// CheckBackends grades the fault list against the pattern set in every
// matrix cell and compares each Result to the baseline cell's,
// field by field. The first disagreement is minimized (single fault,
// shortest pattern prefix) and returned; nil means all cells agree.
func CheckBackends(ctx context.Context, c *logic.Circuit, faults []fault.Fault, pats [][]bool, seed int64) (*Divergence, error) {
	base := Baseline()
	want, err := runConfig(ctx, c, faults, pats, base)
	if err != nil {
		return nil, err
	}
	for _, sc := range Matrix() {
		if sc == base {
			continue
		}
		got, err := runConfig(ctx, c, faults, pats, sc)
		if err != nil {
			return nil, err
		}
		if i := firstResultDiff(want, got); i >= 0 {
			d := &Divergence{
				Kind:    "backend",
				Seed:    seed,
				Circuit: c,
				Base:    base,
				Other:   sc,
				Detail: fmt.Sprintf("fault %s: %s -> detected=%v by=%d; %s -> detected=%v by=%d",
					faults[i].Name(c), base, want.Detected[i], want.DetectedBy[i], sc, got.Detected[i], got.DetectedBy[i]),
				Faults:   faults,
				Patterns: pats,
			}
			d.minimizeBackend(ctx, i)
			return d, nil
		}
	}
	return nil, nil
}

// firstResultDiff returns the index of the first fault whose outcome
// differs between the two results, or -1 when they are identical.
func firstResultDiff(a, b *fault.Result) int {
	for i := range a.Faults {
		if a.Detected[i] != b.Detected[i] || a.DetectedBy[i] != b.DetectedBy[i] {
			return i
		}
	}
	if a.NumCaught != b.NumCaught {
		return 0 // bookkeeping drift with identical per-fault outcomes
	}
	return -1
}

// diverges reruns the config pair on a candidate reduction and reports
// whether the disagreement survives.
func (d *Divergence) diverges(ctx context.Context, faults []fault.Fault, pats [][]bool) bool {
	a, errA := runConfig(ctx, d.Circuit, faults, pats, d.Base)
	b, errB := runConfig(ctx, d.Circuit, faults, pats, d.Other)
	if errA != nil || errB != nil {
		return false
	}
	return firstResultDiff(a, b) >= 0
}

// minimizeBackend shrinks the repro: first to the single disagreeing
// fault, then to the shortest pattern prefix that still disagrees
// (disagreement is monotone in the prefix past the first divergent
// detection event, so a binary search applies), and finally to the
// lone last pattern when it disagrees on its own.
func (d *Divergence) minimizeBackend(ctx context.Context, idx int) {
	if single := d.Faults[idx : idx+1]; d.diverges(ctx, single, d.Patterns) {
		d.Faults = single
	}
	lo, hi := 1, len(d.Patterns)
	if !d.diverges(ctx, d.Faults, d.Patterns[:hi]) {
		return // reduction interplay; keep the full set
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if d.diverges(ctx, d.Faults, d.Patterns[:mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	d.Patterns = d.Patterns[:hi]
	if hi > 1 {
		if last := d.Patterns[hi-1:]; d.diverges(ctx, d.Faults, last) {
			d.Patterns = last
		}
	}
}

// RoundOptions sizes one fuzz round.
type RoundOptions struct {
	// Patterns is the random pattern budget per round (default 64).
	Patterns int
	// Vectors is the kernel-check vector budget (default 8).
	Vectors int
}

// Round runs one complete differential round for a seed: generate a
// circuit from the config, lint it, cross-check the kernels at every
// execution width, sweep the backend matrix over a collapsed fault
// list and a seeded random pattern set, then cross-check the
// compaction engine and the fault-dictionary detail grade against the
// baseline grading oracle. It returns the first divergence, or nil for
// a clean round. The fuzz.rounds and fuzz.divergences counters record
// the outcome.
func Round(cfg Config, seed int64, opt RoundOptions) *Divergence {
	if opt.Patterns <= 0 {
		opt.Patterns = 64
	}
	cRounds.Inc()
	c := Generate(cfg, seed)
	if ds := Lint(c); HasErrors(ds) {
		cDivergences.Inc()
		return &Divergence{Kind: "lint", Seed: seed, Circuit: c, Detail: Errors(ds)[0].String()}
	}
	if d := CheckKernels(c, seed, opt.Vectors); d != nil {
		cDivergences.Inc()
		d.Seed = seed
		return d
	}
	faults := fault.CollapseEquiv(c, fault.Universe(c)).Reps
	pats := RandomPatterns(len(c.PIs), opt.Patterns, seed^0x6A09E667)
	d, err := CheckBackends(context.Background(), c, faults, pats, seed)
	if err != nil {
		d = &Divergence{Kind: "backend", Seed: seed, Circuit: c, Detail: "run error: " + err.Error()}
	}
	if d == nil {
		d, err = CheckCompaction(context.Background(), c, faults, pats, seed)
		if err != nil {
			d = &Divergence{Kind: "compact", Seed: seed, Circuit: c, Detail: "run error: " + err.Error()}
		}
	}
	if d == nil {
		d, err = CheckDictionary(context.Background(), c, faults, pats, seed)
		if err != nil {
			d = &Divergence{Kind: "dict", Seed: seed, Circuit: c, Detail: "run error: " + err.Error()}
		}
	}
	if d == nil {
		d, err = CheckAdvise(context.Background(), c, seed)
		if err != nil {
			d = &Divergence{Kind: "advise", Seed: seed, Circuit: c, Detail: "run error: " + err.Error()}
		}
	}
	if d != nil {
		cDivergences.Inc()
	}
	return d
}
