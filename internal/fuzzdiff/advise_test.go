package fuzzdiff

import (
	"context"
	"testing"

	"dft/internal/circuits"
)

// TestCheckAdviseCleanOnHardcore pins the scan path of the advise
// oracle: the hardcore builtin forces scan-ff/chain interventions, so
// the backend-invariance sweep runs under a real partial-scan view.
func TestCheckAdviseCleanOnHardcore(t *testing.T) {
	c := circuits.Hardcore(8)
	d, err := CheckAdvise(context.Background(), c, 1234)
	if err != nil {
		t.Fatalf("CheckAdvise: %v", err)
	}
	if d != nil {
		t.Fatalf("divergence on hardcore:\n%s", d.Repro())
	}
}

func TestCheckAdviseCleanOnGenerated(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		c := Generate(ShapeConfig(seed), seed)
		d, err := CheckAdvise(context.Background(), c, seed)
		if err != nil {
			t.Fatalf("seed %d: CheckAdvise: %v", seed, err)
		}
		if d != nil {
			t.Fatalf("seed %d divergence:\n%s", seed, d.Repro())
		}
	}
}
