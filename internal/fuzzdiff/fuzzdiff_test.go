package fuzzdiff

import (
	"context"
	"strings"
	"testing"

	"dft/internal/fault"
	"dft/internal/logic"
	"dft/internal/sim"
)

func TestGenerateDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		cfg := ShapeConfig(seed)
		a := logic.BenchString(Generate(cfg, seed))
		b := logic.BenchString(Generate(cfg, seed))
		if a != b {
			t.Fatalf("seed %d: two Generate calls disagree", seed)
		}
	}
}

func TestGenerateLintClean(t *testing.T) {
	seq := 0
	for seed := int64(1); seed <= 60; seed++ {
		cfg := ShapeConfig(seed)
		if cfg.DFFs > 0 {
			seq++
		}
		c := Generate(cfg, seed)
		if ds := Lint(c); len(ds) != 0 {
			t.Fatalf("seed %d: generator emitted diagnostics: %v", seed, ds)
		}
		if len(c.POs) == 0 {
			t.Fatalf("seed %d: no primary outputs", seed)
		}
	}
	if seq == 0 {
		t.Fatal("no sequential circuit in 60 seeds; ShapeConfig DFF mix broken")
	}
}

func TestGenerateBenchRoundTrip(t *testing.T) {
	c := Generate(ShapeConfig(3), 3)
	got, err := logic.ParseBench(c.Name, strings.NewReader(logic.BenchString(c)))
	if err != nil {
		t.Fatalf("generated circuit does not re-parse: %v", err)
	}
	if got.NumNets() != c.NumNets() || len(got.POs) != len(c.POs) {
		t.Fatalf("round trip changed shape: %d/%d nets, %d/%d POs",
			got.NumNets(), c.NumNets(), len(got.POs), len(c.POs))
	}
}

func lintCodes(ds []Diagnostic) map[string]bool {
	m := map[string]bool{}
	for _, d := range ds {
		m[d.Code] = true
	}
	return m
}

func TestLintWidthMismatch(t *testing.T) {
	c := logic.New("w")
	a := c.AddInput("a")
	g := c.AddGate(logic.Not, "g", a)
	c.Gates[g].Fanin = append(c.Gates[g].Fanin, a) // 2-input NOT
	c.MarkOutput(g)
	ds := Lint(c)
	if !HasErrors(ds) || !lintCodes(ds)[CodeWidthMismatch] {
		t.Fatalf("want width-mismatch error, got %v", ds)
	}
}

func TestLintCombLoop(t *testing.T) {
	c := logic.New("loop")
	a := c.AddInput("a")
	g1 := c.AddGate(logic.Buf, "g1", a)
	g2 := c.AddGate(logic.Buf, "g2", g1)
	c.Gates[g1].Fanin[0] = g2 // g1 <-> g2
	c.MarkOutput(g2)
	ds := Lint(c)
	if !lintCodes(ds)[CodeCombLoop] {
		t.Fatalf("want comb-loop error, got %v", ds)
	}
}

func TestLintDFFFeedbackIsNotALoop(t *testing.T) {
	c := logic.New("seq")
	a := c.AddInput("a")
	ff := c.AddDFF("ff", a)
	g := c.AddGate(logic.And, "g", a, ff)
	c.Gates[ff].Fanin[0] = g // feedback through the flop
	c.MarkOutput(g)
	if ds := Lint(c); HasErrors(ds) {
		t.Fatalf("sequential feedback flagged as error: %v", ds)
	}
}

func TestLintDanglingAndRange(t *testing.T) {
	c := logic.New("d")
	a := c.AddInput("a")
	c.AddGate(logic.Not, "dead", a) // never read, not a PO
	g := c.AddGate(logic.Buf, "g", a)
	c.Gates[g].Fanin[0] = 99 // out of range
	c.MarkOutput(g)
	codes := lintCodes(Lint(c))
	if !codes[CodeDanglingNet] || !codes[CodeFaninRange] {
		t.Fatalf("want dangling-net and fanin-range, got %v", Lint(c))
	}
}

func TestLintNoOutputs(t *testing.T) {
	c := logic.New("no")
	c.AddInput("a")
	if !lintCodes(Lint(c))[CodeNoOutputs] {
		t.Fatal("want no-outputs warning")
	}
}

func TestMatrixShape(t *testing.T) {
	m := Matrix()
	seen := map[string]bool{}
	for _, sc := range m {
		if seen[sc.String()] {
			t.Fatalf("duplicate cell %s", sc)
		}
		seen[sc.String()] = true
		if sc.Backend == fault.BackendDeductive && sc.Drop != fault.DropOff {
			t.Fatalf("deductive cell must be no-drop: %s", sc)
		}
	}
	if !seen[Baseline().String()] {
		t.Fatal("matrix must contain the baseline cell")
	}
}

func TestRandomPatternsDeterministic(t *testing.T) {
	a := RandomPatterns(5, 4, 9)
	b := RandomPatterns(5, 4, 9)
	for i := range a {
		if patString(a[i]) != patString(b[i]) {
			t.Fatal("RandomPatterns not deterministic")
		}
	}
}

// TestRoundCleanTree is the clean-tree acceptance check in miniature:
// a spread of seeds, combinational and sequential, must produce zero
// divergences across the whole kernel/backend matrix.
func TestRoundCleanTree(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		if d := Round(ShapeConfig(seed), seed, RoundOptions{Patterns: 48, Vectors: 6}); d != nil {
			t.Fatalf("seed %d diverged:\n%s", seed, d.Repro())
		}
	}
}

// TestCheckCompactionCleanSweep is the compaction acceptance check:
// 200 seeded rounds of the compaction cross-oracle — reverse replay
// against an independent baseline grade, worker invariance, static
// merge coverage repair and seed purity — must produce zero
// divergences.
func TestCheckCompactionCleanSweep(t *testing.T) {
	rounds := int64(200)
	if testing.Short() {
		rounds = 25
	}
	for seed := int64(1); seed <= rounds; seed++ {
		c := Generate(ShapeConfig(seed), seed)
		if ds := Lint(c); HasErrors(ds) {
			t.Fatalf("seed %d: generator emitted errors: %v", seed, ds)
		}
		faults := fault.CollapseEquiv(c, fault.Universe(c)).Reps
		pats := RandomPatterns(len(c.PIs), 48, seed^0x6A09E667)
		d, err := CheckCompaction(context.Background(), c, faults, pats, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if d != nil {
			t.Fatalf("seed %d diverged:\n%s", seed, d.Repro())
		}
	}
}

// TestCheckDictionaryCleanSweep is the dictionary acceptance check:
// seeded rounds of the dictionary cross-oracle — detect-bit agreement
// with an independent baseline grade, worker/backend invariance of the
// rows, and closed-loop observe→lookup→rank — must produce zero
// divergences.
func TestCheckDictionaryCleanSweep(t *testing.T) {
	rounds := int64(60)
	if testing.Short() {
		rounds = 10
	}
	for seed := int64(1); seed <= rounds; seed++ {
		c := Generate(ShapeConfig(seed), seed)
		if ds := Lint(c); HasErrors(ds) {
			t.Fatalf("seed %d: generator emitted errors: %v", seed, ds)
		}
		faults := fault.CollapseEquiv(c, fault.Universe(c)).Reps
		pats := RandomPatterns(len(c.PIs), 48, seed^0x243F6A88)
		d, err := CheckDictionary(context.Background(), c, faults, pats, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if d != nil {
			t.Fatalf("seed %d diverged:\n%s", seed, d.Repro())
		}
	}
}

// TestDictDivergenceRepro checks that a dict-kind finding carries a
// usable repro: the netlist, the whole pattern set (rows are set-level
// properties), and replay instructions.
func TestDictDivergenceRepro(t *testing.T) {
	c := Generate(ShapeConfig(4), 4)
	pats := RandomPatterns(len(c.PIs), 8, 4)
	d := dictDivergence(c, 4, pats, "fault g1 s-a-0: synthetic detail")
	if d.Kind != "dict" || len(d.Patterns) != len(pats) {
		t.Fatalf("divergence malformed: %+v", d)
	}
	for _, want := range []string{"synthetic detail", ".bench", "replay: dftc fuzz -seeds 4"} {
		if !strings.Contains(d.Repro(), want) {
			t.Fatalf("repro missing %q:\n%s", want, d.Repro())
		}
	}
}

// TestBrokenKernelCaught corrupts each instruction of a compiled
// program in turn and requires the differential checker to catch at
// least one mutant with a usable, replayable repro — the acceptance
// demo that the oracle has teeth.
func TestBrokenKernelCaught(t *testing.T) {
	cfg := ShapeConfig(5)
	cfg.DFFs = 0
	c := Generate(cfg, 5)
	if d := CheckKernels(c, 5, 8); d != nil {
		t.Fatalf("clean circuit diverged:\n%s", d.Repro())
	}
	caught := 0
	var sample *Divergence
	n := sim.Compile(c).NumInstrs()
	for i := 0; i < n; i++ {
		p := sim.Compile(c)
		p.CorruptOpcodeForTest(i)
		if d := CheckProgram(c, p, 5, 8); d != nil {
			caught++
			if sample == nil {
				sample = d
				sample.Seed = 5
				// Replay the repro: the minimized pattern must still
				// distinguish the corrupted program from the interpreter.
				pi := sample.Patterns[0][:len(c.PIs)]
				st := sample.Patterns[0][len(c.PIs):]
				ref := make([]bool, c.NumNets())
				got := make([]bool, c.NumNets())
				sim.EvalInterpInto(c, pi, st, ref, nil)
				p.EvalInto(pi, st, got)
				same := true
				for id := range ref {
					if ref[id] != got[id] {
						same = false
					}
				}
				if same {
					t.Fatalf("repro pattern does not replay the divergence:\n%s", d.Repro())
				}
			}
		}
	}
	if caught == 0 {
		t.Fatalf("no corrupted instruction caught out of %d", n)
	}
	t.Logf("caught %d/%d opcode mutants", caught, n)
	for _, want := range []string{"fuzzdiff kernel divergence", "pattern[0]", ".bench", "replay: dftc fuzz -seeds 5"} {
		if !strings.Contains(sample.Repro(), want) {
			t.Fatalf("repro missing %q:\n%s", want, sample.Repro())
		}
	}
}

// TestCheckBackendsSequential exercises the full matrix, including
// deductive, on a DFF-bearing circuit.
func TestCheckBackendsSequential(t *testing.T) {
	cfg := ShapeConfig(2)
	cfg.DFFs = 3
	c := Generate(cfg, 2)
	faults := fault.CollapseEquiv(c, fault.Universe(c)).Reps
	pats := RandomPatterns(len(c.PIs), 32, 2)
	d, err := CheckBackends(context.Background(), c, faults, pats, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d != nil {
		t.Fatalf("sequential matrix diverged:\n%s", d.Repro())
	}
}
