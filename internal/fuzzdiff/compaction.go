package fuzzdiff

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"

	"dft/internal/atpg"
	"dft/internal/compact"
	"dft/internal/fault"
	"dft/internal/logic"
)

// CheckCompaction cross-checks the compaction engine against the
// baseline grading oracle on three axes:
//
//   - reverse replay: the kept subset must detect exactly the faults
//     the full set detects (the reverse-order theorem), pinned by an
//     independent baseline-cell grade of both sets;
//   - worker invariance: sharded replay must keep byte-identical
//     pattern sets at every worker count;
//   - static merging: after X-masking a third of the bits, the merged,
//     filled and repaired set must never lose coverage versus its own
//     filled baseline, its reported stats must match a baseline-cell
//     grade of the output, and the whole pipeline must be a pure
//     function of the seed.
//
// A nil result means compaction and the simulation oracles agree.
func CheckCompaction(ctx context.Context, c *logic.Circuit, faults []fault.Fault, pats [][]bool, seed int64) (*Divergence, error) {
	if len(faults) == 0 || len(pats) == 0 {
		return nil, nil
	}
	view := atpg.PrimaryView(c)
	base := Baseline()
	want, err := runConfig(ctx, c, faults, pats, base)
	if err != nil {
		return nil, err
	}

	opt := compact.Options{Mode: compact.ModeReverse, Workers: 1, Seed: seed}
	kept, st, err := compact.Patterns(ctx, c, view, faults, pats, opt)
	if err != nil {
		return nil, err
	}
	if len(kept) > len(pats) || st.PatternsOut != len(kept) {
		return compactDivergence(c, seed, pats,
			fmt.Sprintf("reverse replay grew the set: %d -> %d (stats say %d)", len(pats), len(kept), st.PatternsOut)), nil
	}
	opt.Workers = 4
	kept4, _, err := compact.Patterns(ctx, c, view, faults, pats, opt)
	if err != nil {
		return nil, err
	}
	if !reflect.DeepEqual(kept, kept4) {
		return compactDivergence(c, seed, pats,
			fmt.Sprintf("reverse replay is worker-dependent: %d patterns at workers=1, %d at workers=4", len(kept), len(kept4))), nil
	}
	got, err := runConfig(ctx, c, faults, kept, base)
	if err != nil {
		return nil, err
	}
	for i := range faults {
		if want.Detected[i] != got.Detected[i] {
			return compactDivergence(c, seed, pats,
				fmt.Sprintf("fault %s: detected=%v on the full set, %v on the reverse-compacted set",
					faults[i].Name(c), want.Detected[i], got.Detected[i])), nil
		}
	}

	// Static: degrade the patterns into cubes by forcing ~1/3 of the
	// bits to X, then run the merge+fill+repair pipeline.
	rng := rand.New(rand.NewSource(seed ^ 0x9E3779B9))
	cubes := make([]atpg.Test, len(pats))
	for i, p := range pats {
		vals := make([]logic.V, len(p))
		for j, b := range p {
			switch {
			case rng.Intn(3) == 0:
				vals[j] = logic.X
			case b:
				vals[j] = logic.One
			default:
				vals[j] = logic.Zero
			}
		}
		cubes[i] = atpg.Test{Values: vals}
	}
	sopt := compact.Options{Mode: compact.ModeStatic, Workers: 1, Seed: seed}
	keptS, _, stS, err := compact.Tests(ctx, c, view, faults, cubes, sopt)
	if err != nil {
		return nil, err
	}
	if stS.DetectedOut < stS.DetectedIn {
		return compactDivergence(c, seed, keptS,
			fmt.Sprintf("static merge lost coverage: detected %d -> %d", stS.DetectedIn, stS.DetectedOut)), nil
	}
	gotS, err := runConfig(ctx, c, faults, keptS, base)
	if err != nil {
		return nil, err
	}
	if gotS.NumCaught != stS.DetectedOut {
		return compactDivergence(c, seed, keptS,
			fmt.Sprintf("static stats claim %d detected, baseline grade of the output says %d",
				stS.DetectedOut, gotS.NumCaught)), nil
	}
	keptS2, _, _, err := compact.Tests(ctx, c, view, faults, cubes, sopt)
	if err != nil {
		return nil, err
	}
	if !reflect.DeepEqual(keptS, keptS2) {
		return compactDivergence(c, seed, keptS,
			"static compaction is not a pure function of the seed: two identical runs disagree"), nil
	}
	return nil, nil
}

// compactDivergence packages a compact-kind finding. The pattern set is
// carried whole: compaction defects are properties of the set, so there
// is no single-pattern minimization that preserves them.
func compactDivergence(c *logic.Circuit, seed int64, pats [][]bool, detail string) *Divergence {
	return &Divergence{
		Kind:     "compact",
		Seed:     seed,
		Circuit:  c,
		Detail:   detail,
		Patterns: pats,
	}
}
