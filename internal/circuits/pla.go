package circuits

import (
	"fmt"
	"math/rand"

	"dft/internal/logic"
)

// Cube is one product term of a PLA: Lits[i] gives the literal for
// input i: +1 (true), -1 (complemented), or 0 (absent).
type Cube []int8

// PLA builds the two-level AND-OR structure of Fig. 22: a search (AND)
// array of product terms over inputs I0.., and a read (OR) array
// producing outputs Y0... outputs[k] lists the product-term indices
// that feed output k.
//
// The characteristic testing property of PLAs — enormous AND fan-in
// making them resistant to random patterns — falls straight out of this
// structure.
func PLA(name string, nIn int, cubes []Cube, outputs [][]int) *logic.Circuit {
	c := logic.New(name)
	in := make([]int, nIn)
	for i := range in {
		in[i] = c.AddInput(fmt.Sprintf("I%d", i))
	}
	inv := make([]int, nIn)
	for i := range inv {
		inv[i] = c.AddGate(logic.Not, fmt.Sprintf("NI%d", i), in[i])
	}
	products := make([]int, len(cubes))
	for t, cube := range cubes {
		if len(cube) != nIn {
			panic(fmt.Sprintf("circuits: cube %d has %d literals for %d inputs", t, len(cube), nIn))
		}
		var lits []int
		for i, l := range cube {
			switch {
			case l > 0:
				lits = append(lits, in[i])
			case l < 0:
				lits = append(lits, inv[i])
			}
		}
		if len(lits) == 0 {
			products[t] = c.AddGate(logic.Const1, fmt.Sprintf("PT%d", t))
		} else {
			products[t] = c.AddGate(logic.And, fmt.Sprintf("PT%d", t), lits...)
		}
	}
	for k, terms := range outputs {
		var lits []int
		for _, t := range terms {
			lits = append(lits, products[t])
		}
		if len(lits) == 0 {
			c.MarkOutput(c.AddGate(logic.Const0, fmt.Sprintf("Y%d", k)))
		} else {
			c.MarkOutput(c.AddGate(logic.Or, fmt.Sprintf("Y%d", k), lits...))
		}
	}
	return c.MustFinalize()
}

// RandomPLA generates a PLA with nIn inputs, nProducts product terms of
// exactly termWidth literals each, and nOut outputs each reading a
// random nonempty subset of the products. With termWidth near nIn this
// reproduces the paper's random-pattern-resistant search array (a
// 20-literal term is exercised by a random pattern with probability
// 2⁻²⁰).
func RandomPLA(rng *rand.Rand, nIn, nProducts, nOut, termWidth int) *logic.Circuit {
	if termWidth > nIn {
		panic("circuits: termWidth exceeds input count")
	}
	cubes := make([]Cube, nProducts)
	for t := range cubes {
		cube := make(Cube, nIn)
		perm := rng.Perm(nIn)
		for _, i := range perm[:termWidth] {
			if rng.Intn(2) == 0 {
				cube[i] = 1
			} else {
				cube[i] = -1
			}
		}
		cubes[t] = cube
	}
	outputs := make([][]int, nOut)
	for k := range outputs {
		for t := 0; t < nProducts; t++ {
			if rng.Intn(2) == 0 {
				outputs[k] = append(outputs[k], t)
			}
		}
		if len(outputs[k]) == 0 {
			outputs[k] = append(outputs[k], rng.Intn(nProducts))
		}
	}
	return PLA(fmt.Sprintf("pla_%d_%d_%d_w%d", nIn, nProducts, nOut, termWidth), nIn, cubes, outputs)
}

// RandomCircuit generates a random combinational DAG with nIn inputs,
// nGates gates of fanin up to maxFanin (chosen from AND/NAND/OR/NOR/
// XOR/XNOR/NOT), and at least nOut outputs (every sink gate is marked
// as an output so no logic is dead). The
// generator guarantees every gate is reachable from the inputs; it is
// the workload family for the Eq. (1) scaling and random-pattern
// experiments ("random combinational logic networks with maximum
// fan-in of 4 can do quite well with random patterns").
func RandomCircuit(rng *rand.Rand, nIn, nGates, nOut, maxFanin int) *logic.Circuit {
	return RandomCircuitTypes(rng, nIn, nGates, nOut, maxFanin,
		[]logic.GateType{logic.And, logic.Nand, logic.Or, logic.Nor, logic.Xor, logic.Xnor})
}

// RandomCircuitTypes is RandomCircuit with an explicit gate-type
// palette. A NAND/NOR-only palette reproduces the 1982-era logic the
// paper's fault-collapsing arithmetic ("6000 → about 3000") assumes;
// XOR-bearing palettes collapse less because XOR pins have no
// equivalent faults.
func RandomCircuitTypes(rng *rand.Rand, nIn, nGates, nOut, maxFanin int, types []logic.GateType) *logic.Circuit {
	if nIn < 1 || nGates < 1 || nOut < 1 || maxFanin < 2 {
		panic("circuits: RandomCircuit parameter out of range")
	}
	if len(types) == 0 {
		panic("circuits: empty gate palette")
	}
	c := logic.New(fmt.Sprintf("rand_%d_%d", nIn, nGates))
	nets := make([]int, 0, nIn+nGates)
	for i := 0; i < nIn; i++ {
		nets = append(nets, c.AddInput(fmt.Sprintf("I%d", i)))
	}
	for g := 0; g < nGates; g++ {
		typ := types[rng.Intn(len(types))]
		fanin := 2 + rng.Intn(maxFanin-1)
		if rng.Intn(8) == 0 {
			typ = logic.Not
			fanin = 1
		}
		// Bias sources toward recent nets so depth grows with size.
		lits := make([]int, fanin)
		seen := map[int]bool{}
		for i := range lits {
			var src int
			for {
				if rng.Intn(3) > 0 && len(nets) > nIn {
					lo := len(nets) - len(nets)/3 - 1
					src = nets[lo+rng.Intn(len(nets)-lo)]
				} else {
					src = nets[rng.Intn(len(nets))]
				}
				if !seen[src] || len(seen) >= len(nets) {
					break
				}
			}
			seen[src] = true
			lits[i] = src
		}
		nets = append(nets, c.AddGate(typ, fmt.Sprintf("G%d", g), lits...))
	}
	// Every sink gate becomes an output — otherwise its cone would be
	// dead, unobservable logic and fault coverage would be meaningless.
	// Additional random outputs are added if there are fewer sinks than
	// requested.
	used := make([]bool, c.NumNets())
	for _, g := range c.Gates {
		for _, f := range g.Fanin {
			used[f] = true
		}
	}
	var sinks []int
	for _, id := range nets[nIn:] {
		if !used[id] {
			sinks = append(sinks, id)
		}
	}
	for len(sinks) < nOut {
		sinks = append(sinks, nets[nIn+rng.Intn(nGates)])
	}
	for _, s := range sinks {
		c.MarkOutput(s)
	}
	return c.MustFinalize()
}
