package circuits

import (
	"math/rand"
	"testing"

	"dft/internal/logic"
	"dft/internal/sim"
)

// evalPacked drives a combinational circuit with inputs taken from the
// bits of x in PI declaration order and returns outputs packed the same
// way.
func evalPacked(c *logic.Circuit, x uint64) uint64 {
	in := make([]bool, len(c.PIs))
	for i := range in {
		in[i] = x>>uint(i)&1 == 1
	}
	vals := sim.Eval(c, in, nil)
	var out uint64
	for i, id := range c.POs {
		if vals[id] {
			out |= 1 << uint(i)
		}
	}
	return out
}

func TestC17Structure(t *testing.T) {
	c := C17()
	s := c.Stats()
	if s.Inputs != 5 || s.Outputs != 2 || s.Gates != 6 {
		t.Fatalf("c17 stats %v", s)
	}
}

func TestRippleAdderExhaustiveSmall(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4} {
		c := RippleAdder(n)
		for a := uint64(0); a < 1<<uint(n); a++ {
			for b := uint64(0); b < 1<<uint(n); b++ {
				for cin := uint64(0); cin < 2; cin++ {
					in := a | b<<uint(n) | cin<<uint(2*n)
					got := evalPacked(c, in)
					want := a + b + cin // bits 0..n = sum and carry
					if got != want {
						t.Fatalf("adder%d: %d+%d+%d = %d, want %d", n, a, b, cin, got, want)
					}
				}
			}
		}
	}
}

func TestRippleAdderRandomLarge(t *testing.T) {
	n := 16
	c := RippleAdder(n)
	rng := rand.New(rand.NewSource(7))
	mask := uint64(1)<<uint(n) - 1
	for i := 0; i < 200; i++ {
		a := rng.Uint64() & mask
		b := rng.Uint64() & mask
		cin := rng.Uint64() & 1
		got := evalPacked(c, a|b<<uint(n)|cin<<uint(2*n))
		if want := a + b + cin; got != want {
			t.Fatalf("adder16: %d+%d+%d = %d, want %d", a, b, cin, got, want)
		}
	}
}

func TestArrayMultiplier(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4} {
		c := ArrayMultiplier(n)
		if len(c.POs) != 2*n {
			t.Fatalf("mult%d has %d outputs, want %d", n, len(c.POs), 2*n)
		}
		for a := uint64(0); a < 1<<uint(n); a++ {
			for b := uint64(0); b < 1<<uint(n); b++ {
				got := evalPacked(c, a|b<<uint(n))
				if want := a * b; got != want {
					t.Fatalf("mult%d: %d*%d = %d, want %d", n, a, b, got, want)
				}
			}
		}
	}
}

func TestArrayMultiplierRandom6(t *testing.T) {
	n := 6
	c := ArrayMultiplier(n)
	rng := rand.New(rand.NewSource(9))
	mask := uint64(1)<<uint(n) - 1
	for i := 0; i < 300; i++ {
		a, b := rng.Uint64()&mask, rng.Uint64()&mask
		if got := evalPacked(c, a|b<<uint(n)); got != a*b {
			t.Fatalf("mult6: %d*%d = %d, want %d", a, b, got, a*b)
		}
	}
}

func TestParityTree(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8, 13} {
		c := ParityTree(n)
		for x := uint64(0); x < 1<<uint(min(n, 10)); x++ {
			got := evalPacked(c, x)
			want := uint64(0)
			for i := 0; i < n; i++ {
				want ^= x >> uint(i) & 1
			}
			if got != want {
				t.Fatalf("parity%d(%b) = %d, want %d", n, x, got, want)
			}
		}
	}
}

func TestDecoder(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4} {
		c := Decoder(n)
		if len(c.POs) != 1<<uint(n) {
			t.Fatalf("dec%d output count %d", n, len(c.POs))
		}
		for x := uint64(0); x < 1<<uint(n); x++ {
			got := evalPacked(c, x)
			if want := uint64(1) << x; got != want {
				t.Fatalf("dec%d(%d) = %b, want %b", n, x, got, want)
			}
		}
	}
}

func TestMux(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		c := Mux(k)
		nd := 1 << uint(k)
		for d := uint64(0); d < 1<<uint(nd); d++ {
			for s := uint64(0); s < uint64(nd); s++ {
				got := evalPacked(c, d|s<<uint(nd))
				if want := d >> s & 1; got != want {
					t.Fatalf("mux%d(d=%b,s=%d) = %d, want %d", nd, d, s, got, want)
				}
			}
		}
	}
}

func TestComparator(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		c := Comparator(n)
		for a := uint64(0); a < 1<<uint(n); a++ {
			for b := uint64(0); b < 1<<uint(n); b++ {
				got := evalPacked(c, a|b<<uint(n))
				eq, gt := got&1, got>>1&1
				if (a == b) != (eq == 1) || (a > b) != (gt == 1) {
					t.Fatalf("cmp%d(%d,%d) eq=%d gt=%d", n, a, b, eq, gt)
				}
			}
		}
	}
}

func TestMajority(t *testing.T) {
	for _, n := range []int{3, 5} {
		c := Majority(n)
		for x := uint64(0); x < 1<<uint(n); x++ {
			ones := 0
			for i := 0; i < n; i++ {
				ones += int(x >> uint(i) & 1)
			}
			got := evalPacked(c, x)
			if want := ones > n/2; (got == 1) != want {
				t.Fatalf("maj%d(%b) = %d, want %v", n, x, got, want)
			}
		}
	}
}

func TestALU74181AgainstReference(t *testing.T) {
	c := ALU74181()
	// Inputs in declaration order: A0..3, B0..3, S0..3, M, CN.
	for x := uint64(0); x < 1<<14; x++ {
		a := uint(x) & 0xF
		b := uint(x>>4) & 0xF
		s := uint(x>>8) & 0xF
		m := x>>12&1 == 1
		cn := x>>13&1 == 1
		got := evalPacked(c, x)
		f, aeqb, pbar, gbar, cn4 := ALU74181Ref(a, b, s, m, cn)
		want := uint64(f)
		if aeqb {
			want |= 1 << 4
		}
		if pbar {
			want |= 1 << 5
		}
		if gbar {
			want |= 1 << 6
		}
		if cn4 {
			want |= 1 << 7
		}
		if got != want {
			t.Fatalf("74181(a=%x b=%x s=%x m=%v cn=%v): got %08b, want %08b", a, b, s, m, cn, got, want)
		}
	}
}

// TestALU74181FunctionTable spot-checks the published active-high
// function table, which validates the reference itself.
func TestALU74181FunctionTable(t *testing.T) {
	cases := []struct {
		s      uint
		m      bool
		cn     bool // active low: true = no carry
		name   string
		expect func(a, b uint) uint
	}{
		{0x0, true, true, "NOT A", func(a, b uint) uint { return ^a & 0xF }},
		{0x1, true, true, "NOR", func(a, b uint) uint { return ^(a | b) & 0xF }},
		{0x6, true, true, "XOR", func(a, b uint) uint { return (a ^ b) & 0xF }},
		{0x9, true, true, "XNOR", func(a, b uint) uint { return ^(a ^ b) & 0xF }},
		{0xA, true, true, "B", func(a, b uint) uint { return b }},
		{0xF, true, true, "A", func(a, b uint) uint { return a }},
		{0x9, false, true, "A plus B", func(a, b uint) uint { return (a + b) & 0xF }},
		{0x9, false, false, "A plus B plus 1", func(a, b uint) uint { return (a + b + 1) & 0xF }},
		{0x6, false, true, "A minus B minus 1", func(a, b uint) uint { return (a - b - 1) & 0xF }},
		{0x6, false, false, "A minus B", func(a, b uint) uint { return (a - b) & 0xF }},
		{0x0, false, true, "A", func(a, b uint) uint { return a }},
		{0x0, false, false, "A plus 1", func(a, b uint) uint { return (a + 1) & 0xF }},
		{0xC, false, true, "A plus A", func(a, b uint) uint { return (a + a) & 0xF }},
	}
	for _, cse := range cases {
		for a := uint(0); a < 16; a++ {
			for b := uint(0); b < 16; b++ {
				f, _, _, _, _ := ALU74181Ref(a, b, cse.s, cse.m, cse.cn)
				if want := cse.expect(a, b); f != want {
					t.Fatalf("%s (s=%x m=%v cn=%v) a=%x b=%x: f=%x, want %x",
						cse.name, cse.s, cse.m, cse.cn, a, b, f, want)
				}
			}
		}
	}
}

func TestALU74181SubtractComparator(t *testing.T) {
	// Classic usage: S=0110, M=0, CN=1 performs A minus B minus 1;
	// AEQB goes high exactly when A == B (F = all ones).
	for a := uint(0); a < 16; a++ {
		for b := uint(0); b < 16; b++ {
			_, aeqb, _, _, _ := ALU74181Ref(a, b, 0x6, false, true)
			if aeqb != (a == b) {
				t.Fatalf("AEQB(a=%x,b=%x) = %v", a, b, aeqb)
			}
		}
	}
}

func TestPLAStructure(t *testing.T) {
	// Two-input XOR as a PLA: terms a·b̄ and ā·b.
	c := PLA("xorpla", 2, []Cube{{1, -1}, {-1, 1}}, [][]int{{0, 1}})
	for x := uint64(0); x < 4; x++ {
		want := (x & 1) ^ (x >> 1 & 1)
		if got := evalPacked(c, x); got != want {
			t.Fatalf("xorpla(%b) = %d, want %d", x, got, want)
		}
	}
}

func TestRandomPLAShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := RandomPLA(rng, 20, 10, 4, 20)
	if c.MaxFanin() < 20 {
		t.Fatalf("random PLA max fanin %d, want >= 20", c.MaxFanin())
	}
	if len(c.POs) != 4 {
		t.Fatalf("outputs = %d", len(c.POs))
	}
}

func TestRandomCircuitWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, ng := range []int{10, 100, 1000} {
		c := RandomCircuit(rng, 16, ng, 8, 4)
		if c.NumGates() != ng {
			t.Fatalf("gate count %d, want %d", c.NumGates(), ng)
		}
		if c.MaxFanin() > 4 {
			t.Fatalf("fanin %d exceeds bound", c.MaxFanin())
		}
		// Simulation must not panic and must be deterministic.
		in := make([]bool, len(c.PIs))
		v1 := sim.Eval(c, in, nil)
		v2 := sim.Eval(c, in, nil)
		for i := range v1 {
			if v1[i] != v2[i] {
				t.Fatal("nondeterministic simulation")
			}
		}
	}
}

func TestCounterCounts(t *testing.T) {
	c := Counter(4)
	m := sim.NewMachine(c)
	for step := 1; step <= 20; step++ {
		m.Step([]bool{true})
		var got uint64
		for i, b := range m.State() {
			if b {
				got |= 1 << uint(i)
			}
		}
		if want := uint64(step) & 0xF; got != want {
			t.Fatalf("after %d clocks counter = %d, want %d", step, got, want)
		}
	}
	// Disabled: holds.
	before := m.State()
	m.Step([]bool{false})
	after := m.State()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("counter advanced while disabled")
		}
	}
}

func TestShiftRegisterDelaysInput(t *testing.T) {
	n := 5
	c := ShiftRegister(n)
	m := sim.NewMachine(c)
	seq := []bool{true, false, true, true, false, false, true, false, true, true}
	var outs []bool
	for _, b := range seq {
		out := m.Step([]bool{b})
		outs = append(outs, out[0])
	}
	for i := n; i < len(seq); i++ {
		if outs[i] != seq[i-n] {
			t.Fatalf("output %d = %v, want delayed input %v", i, outs[i], seq[i-n])
		}
	}
}

func TestLFSRCircuitMatchesShiftRule(t *testing.T) {
	c := LFSRCircuit(3, []int{2, 3})
	m := sim.NewMachine(c)
	m.SetState([]bool{true, false, false})
	q1, q2, q3 := true, false, false
	for i := 0; i < 14; i++ {
		m.Step(nil)
		q1, q2, q3 = q2 != q3, q1, q2
		s := m.State()
		if s[0] != q1 || s[1] != q2 || s[2] != q3 {
			t.Fatalf("step %d: %v vs (%v,%v,%v)", i, s, q1, q2, q3)
		}
	}
}

func TestFSMDetects101(t *testing.T) {
	c := FSM()
	m := sim.NewMachine(c)
	seq := []bool{true, false, true, false, true, true, false, true}
	//              1     0     1*    0     1*    1     0     1*
	wantHit := []bool{false, false, true, false, true, false, false, true}
	for i, b := range seq {
		m.Step([]bool{b})
		hitNet, _ := c.NetByName("HIT")
		got := m.Peek(hitNet)
		if got != wantHit[i] {
			t.Fatalf("after char %d (%v): HIT=%v, want %v", i, b, got, wantHit[i])
		}
	}
}

func TestSequencedALUPipelines(t *testing.T) {
	n := 4
	c := SequencedALU(n)
	m := sim.NewMachine(c)
	// Load operands, clock twice (input regs then output regs), read.
	in := make([]bool, 2*n+1)
	a, b := uint64(9), uint64(5)
	for i := 0; i < n; i++ {
		in[i] = a>>uint(i)&1 == 1
		in[n+i] = b>>uint(i)&1 == 1
	}
	m.Step(in)
	m.Step(in)
	var got uint64
	out := m.Apply(in)
	for i, v := range out {
		if v {
			got |= 1 << uint(i)
		}
	}
	if want := a + b; got != want {
		t.Fatalf("seqalu: %d+%d = %d, want %d", a, b, got, want)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
