package circuits

import (
	"fmt"
	"testing"

	"dft/internal/sim"
)

// cascadeRef computes the cascaded ALU behaviorally by chaining the
// single-slice reference through the active-low carry.
func cascadeRef(n int, aIn, bIn uint64, s uint, m, cn bool) (f uint64, cn4 bool) {
	carry := cn
	for slice := 0; slice < n; slice++ {
		a4 := uint(aIn>>(4*uint(slice))) & 0xF
		b4 := uint(bIn>>(4*uint(slice))) & 0xF
		f4, _, _, _, c4 := ALU74181Ref(a4, b4, s, m, carry)
		f |= uint64(f4) << (4 * uint(slice))
		carry = c4
	}
	return f, carry
}

func TestCascade74181AgainstReference(t *testing.T) {
	n := 2 // 8-bit ALU
	c := Cascade74181(n)
	fOut := make([]int, 4*n)
	for i := range fOut {
		id, ok := c.NetByName(fmt.Sprintf("F%d", i))
		if !ok {
			t.Fatalf("F%d missing", i)
		}
		fOut[i] = id
	}
	cn4, _ := c.NetByName("CN4")
	for trial := 0; trial < 4000; trial++ {
		a := uint64(trial*2654435761) & 0xFF
		b := uint64(trial*40503+17) & 0xFF
		s := uint(trial>>3) & 0xF
		m := trial&1 == 1
		cn := trial&2 == 2
		in := make([]bool, len(c.PIs))
		for i := 0; i < 8; i++ {
			in[i] = a>>uint(i)&1 == 1
			in[8+i] = b>>uint(i)&1 == 1
		}
		for i := 0; i < 4; i++ {
			in[16+i] = s>>uint(i)&1 == 1
		}
		in[20] = m
		in[21] = cn
		vals := sim.Eval(c, in, nil)
		var got uint64
		for i, id := range fOut {
			if vals[id] {
				got |= 1 << uint(i)
			}
		}
		wantF, wantC := cascadeRef(n, a, b, s, m, cn)
		if got != wantF || vals[cn4] != wantC {
			t.Fatalf("a=%x b=%x s=%x m=%v cn=%v: F=%x want %x, CN4=%v want %v",
				a, b, s, m, cn, got, wantF, vals[cn4], wantC)
		}
	}
}

func TestCascade74181Arithmetic(t *testing.T) {
	// S=1001, M=0, CN=1: F = A plus B over the full width.
	c := Cascade74181(2)
	for a := uint64(0); a < 256; a += 17 {
		for b := uint64(0); b < 256; b += 13 {
			in := make([]bool, len(c.PIs))
			for i := 0; i < 8; i++ {
				in[i] = a>>uint(i)&1 == 1
				in[8+i] = b>>uint(i)&1 == 1
			}
			in[16] = true // S0
			in[19] = true // S3
			in[21] = true // CN (no carry)
			vals := sim.Eval(c, in, nil)
			var got uint64
			for i := 0; i < 8; i++ {
				id, _ := c.NetByName(fmt.Sprintf("F%d", i))
				if vals[id] {
					got |= 1 << uint(i)
				}
			}
			if want := (a + b) & 0xFF; got != want {
				t.Fatalf("%d+%d = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestJohnsonCounterCycle(t *testing.T) {
	n := 4
	c := JohnsonCounter(n)
	m := sim.NewMachine(c)
	seen := map[string]bool{}
	key := func(st []bool) string {
		b := make([]byte, len(st))
		for i, v := range st {
			if v {
				b[i] = '1'
			} else {
				b[i] = '0'
			}
		}
		return string(b)
	}
	// The twisted ring visits exactly 2n states and returns home.
	start := key(m.State())
	for step := 1; step <= 2*n; step++ {
		m.Step([]bool{true})
		k := key(m.State())
		if step < 2*n && k == start {
			t.Fatalf("returned early at step %d", step)
		}
		if seen[k] {
			t.Fatalf("state %s repeated at step %d", k, step)
		}
		seen[k] = true
	}
	if key(m.State()) != start {
		t.Fatalf("did not return to start after %d steps", 2*n)
	}
	// Hold when disabled.
	before := key(m.State())
	m.Step([]bool{false})
	if key(m.State()) != before {
		t.Fatal("advanced while disabled")
	}
}

func TestGrayCounterSingleBitTransitions(t *testing.T) {
	n := 4
	c := GrayCounter(n)
	m := sim.NewMachine(c)
	prev := m.Apply([]bool{true})
	for step := 0; step < 40; step++ {
		out := m.Step([]bool{true})
		_ = out
		cur := m.Apply([]bool{true})
		diff := 0
		for i := range cur {
			if cur[i] != prev[i] {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("step %d: %d outputs changed, want exactly 1", step, diff)
		}
		prev = cur
	}
}
