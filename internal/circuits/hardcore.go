package circuits

import (
	"fmt"

	"dft/internal/logic"
)

// Hardcore returns the advisor's standing demo/bench circuit: an n-input
// network built to be hard to test from the package pins — deep
// reconvergent fanout in the combinational front, a wide AND "key"
// detector whose cone never reaches a primary output, and a chain of
// buried flip-flops whose next-state logic is likewise invisible from
// outside. Under the primary view (storage held at reset) a large
// fraction of its faults is structurally untestable: the key tree and
// every next-state cone end at flip-flop D inputs, and the lock tree
// needs state values reset never supplies. Scan conversion and test
// points recover them — exactly the gap `dftc advise` exists to close.
//
// n is the X-input width (minimum 4, default 8 via the builtin table);
// the circuit carries n/2+2 flip-flops and ~8n gates.
func Hardcore(n int) *logic.Circuit {
	if n < 4 {
		panic("circuits: Hardcore needs n >= 4")
	}
	c := logic.New(fmt.Sprintf("hardcore%d", n))
	x := make([]int, n)
	for i := range x {
		x[i] = c.AddInput(fmt.Sprintf("X%d", i))
	}
	m := n/2 + 2
	r := make([]int, m)
	for i := range r {
		r[i] = c.AddDFF(fmt.Sprintf("R%d", i), 0) // patched below
	}

	// Combinational front: a ring mesh with three readers per input —
	// reconvergent stems that stress the independence approximation —
	// feeding an OR tree and a parity tree on the primary outputs.
	bs := make([]int, n)
	for i := 0; i < n; i++ {
		a := c.AddGate(logic.Xor, fmt.Sprintf("A%d", i), x[i], x[(i+1)%n])
		bs[i] = c.AddGate(logic.And, fmt.Sprintf("B%d", i), a, x[(i+2)%n])
	}
	front := orTree(c, "FR", bs)
	c.MarkOutput(c.AddGate(logic.Buf, "FRONT", front))
	par := xorTree(c, "PR", x)

	// Key detector: the AND of every input. Its only readers are the
	// next-state cones below, so the whole tree is dark at the pins.
	key := andTree(c, "K", x)
	nkey := c.AddGate(logic.Not, "NKEY", key)

	// Buried state chain: R0 toggles on the key; each later stage mixes
	// its predecessor, its own value and two inputs through AND/OR/XOR.
	// Every cone ends at a D input — invisible without scan.
	c.Gates[r[0]].Fanin[0] = c.AddGate(logic.Xor, "D0", key, r[0])
	for i := 1; i < m; i++ {
		s, t := x[(2*i)%n], x[(2*i+1)%n]
		g := c.AddGate(logic.And, fmt.Sprintf("G%d", i), r[i-1], s)
		u := c.AddGate(logic.And, fmt.Sprintf("U%d", i), r[i], t)
		j := c.AddGate(logic.Or, fmt.Sprintf("J%d", i), g, u)
		c.Gates[r[i]].Fanin[0] = c.AddGate(logic.Xor, fmt.Sprintf("D%d", i), j, nkey)
	}

	// Lock: the AND of all state bits, observable only when every
	// flip-flop holds 1 — unreachable from reset without DFT.
	lock := andTree(c, "L", r)
	c.MarkOutput(c.AddGate(logic.And, "UNLOCK", lock, key))
	c.MarkOutput(c.AddGate(logic.Xor, "MIX", lock, par))
	return c.MustFinalize()
}

// andTree builds a balanced 2-input AND tree over the nets.
func andTree(c *logic.Circuit, prefix string, nets []int) int {
	return gateTree(c, logic.And, prefix, nets)
}

// orTree builds a balanced 2-input OR tree over the nets.
func orTree(c *logic.Circuit, prefix string, nets []int) int {
	return gateTree(c, logic.Or, prefix, nets)
}

// xorTree builds a balanced 2-input XOR tree over the nets.
func xorTree(c *logic.Circuit, prefix string, nets []int) int {
	return gateTree(c, logic.Xor, prefix, nets)
}

func gateTree(c *logic.Circuit, t logic.GateType, prefix string, nets []int) int {
	level := append([]int(nil), nets...)
	n := 0
	for len(level) > 1 {
		var next []int
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, c.AddGate(t, fmt.Sprintf("%s%d", prefix, n), level[i], level[i+1]))
			n++
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return level[0]
}
