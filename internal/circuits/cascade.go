package circuits

import (
	"fmt"

	"dft/internal/logic"
)

// Cascade74181 builds a 4n-bit ALU from n gate-level 74181 slices with
// the carry rippled CN4→CN, the way real boards chained the part.
// Inputs: A0..A(4n-1), B0.., S0..S3, M, CN; outputs F0..F(4n-1),
// per-slice PBAR/GBAR, final CN4 and a global AEQB.
func Cascade74181(n int) *logic.Circuit {
	if n < 1 || n > 8 {
		panic("circuits: Cascade74181 needs 1 <= n <= 8")
	}
	c := logic.New(fmt.Sprintf("alu74181x%d", n))
	a := make([]int, 4*n)
	b := make([]int, 4*n)
	for i := range a {
		a[i] = c.AddInput(fmt.Sprintf("A%d", i))
	}
	for i := range b {
		b[i] = c.AddInput(fmt.Sprintf("B%d", i))
	}
	s := make([]int, 4)
	for i := range s {
		s[i] = c.AddInput(fmt.Sprintf("S%d", i))
	}
	m := c.AddInput("M")
	cn := c.AddInput("CN")

	carry := cn // active-low ripple
	var aeqbs []int
	for slice := 0; slice < n; slice++ {
		sl := func(name string) string { return fmt.Sprintf("U%d_%s", slice, name) }
		// Per-bit N1 networks.
		l := make([]int, 4)
		h := make([]int, 4)
		for i := 0; i < 4; i++ {
			bit := 4*slice + i
			nb := c.AddGate(logic.Not, sl(fmt.Sprintf("NB%d", i)), b[bit])
			t1 := c.AddGate(logic.And, sl(fmt.Sprintf("LT1_%d", i)), b[bit], s[0])
			t2 := c.AddGate(logic.And, sl(fmt.Sprintf("LT2_%d", i)), s[1], nb)
			l[i] = c.AddGate(logic.Nor, sl(fmt.Sprintf("L%d", i)), a[bit], t1, t2)
			t3 := c.AddGate(logic.And, sl(fmt.Sprintf("HT1_%d", i)), a[bit], nb, s[2])
			t4 := c.AddGate(logic.And, sl(fmt.Sprintf("HT2_%d", i)), a[bit], b[bit], s[3])
			h[i] = c.AddGate(logic.Nor, sl(fmt.Sprintf("H%d", i)), t3, t4)
		}
		nm := c.AddGate(logic.Not, sl("NM"), m)
		nc := make([]int, 5)
		nc[0] = carry
		for i := 0; i < 4; i++ {
			lp := c.AddGate(logic.Or, sl(fmt.Sprintf("NCP%d", i)), l[i], nc[i])
			nc[i+1] = c.AddGate(logic.And, sl(fmt.Sprintf("NC%d", i+1)), h[i], lp)
		}
		var fs []int
		for i := 0; i < 4; i++ {
			cnode := c.AddGate(logic.Nand, sl(fmt.Sprintf("CNODE%d", i)), nm, nc[i])
			lh := c.AddGate(logic.Xor, sl(fmt.Sprintf("LH%d", i)), l[i], h[i])
			f := c.AddGate(logic.Xor, fmt.Sprintf("F%d", 4*slice+i), lh, cnode)
			c.MarkOutput(f)
			fs = append(fs, f)
		}
		aeqbs = append(aeqbs, c.AddGate(logic.And, sl("AEQB"), fs...))
		pbar := c.AddGate(logic.Or, sl("PBAR"), l[0], l[1], l[2], l[3])
		c.MarkOutput(pbar)
		gg1 := c.AddGate(logic.Or, sl("GG1"), l[3], h[2])
		gg2 := c.AddGate(logic.Or, sl("GG2"), l[3], l[2], h[1])
		gg3 := c.AddGate(logic.Or, sl("GG3"), l[3], l[2], l[1], h[0])
		gbar := c.AddGate(logic.And, sl("GBAR"), h[3], gg1, gg2, gg3)
		c.MarkOutput(gbar)
		carry = nc[4]
	}
	c.MarkOutput(c.AddGate(logic.Buf, "CN4", carry))
	if len(aeqbs) == 1 {
		c.MarkOutput(c.AddGate(logic.Buf, "AEQB", aeqbs[0]))
	} else {
		c.MarkOutput(c.AddGate(logic.And, "AEQB", aeqbs...))
	}
	return c.MustFinalize()
}

// JohnsonCounter returns an n-stage Johnson (twisted-ring) counter:
// the complement of the last stage feeds the first, giving a 2n-state
// cycle with single-bit transitions. Output nets Q0..Q(n-1).
func JohnsonCounter(n int) *logic.Circuit {
	if n < 2 {
		panic("circuits: JohnsonCounter needs n >= 2")
	}
	c := logic.New(fmt.Sprintf("johnson%d", n))
	en := c.AddInput("EN")
	qs := make([]int, n)
	for i := range qs {
		qs[i] = c.AddDFF(fmt.Sprintf("Q%d", i), en) // patched below
	}
	nlast := c.AddGate(logic.Not, "NQL", qs[n-1])
	nen := c.AddGate(logic.Not, "NEN", en)
	feed := func(tag string, next, hold int) int {
		adv := c.AddGate(logic.And, tag+"_a", next, en)
		keep := c.AddGate(logic.And, tag+"_k", hold, nen)
		return c.AddGate(logic.Or, tag, adv, keep)
	}
	c.Gates[qs[0]].Fanin[0] = feed("D0", nlast, qs[0])
	for i := 1; i < n; i++ {
		c.Gates[qs[i]].Fanin[0] = feed(fmt.Sprintf("D%d", i), qs[i-1], qs[i])
	}
	for _, q := range qs {
		c.MarkOutput(q)
	}
	return c.MustFinalize()
}

// GrayCounter returns an n-bit Gray-code counter built as a binary
// counter with an XOR output stage (G = B ⊕ B>>1). Outputs G0..G(n-1);
// exactly one output toggles per enabled clock.
func GrayCounter(n int) *logic.Circuit {
	if n < 2 {
		panic("circuits: GrayCounter needs n >= 2")
	}
	c := logic.New(fmt.Sprintf("gray%d", n))
	en := c.AddInput("EN")
	qs := make([]int, n)
	for i := range qs {
		qs[i] = c.AddDFF(fmt.Sprintf("B%d", i), en) // patched below
	}
	carry := en
	for i := 0; i < n; i++ {
		tnet := c.AddGate(logic.Xor, fmt.Sprintf("T%d", i), qs[i], carry)
		c.Gates[qs[i]].Fanin[0] = tnet
		if i+1 < n {
			carry = c.AddGate(logic.And, fmt.Sprintf("CA%d", i), carry, qs[i])
		}
	}
	for i := 0; i < n-1; i++ {
		c.MarkOutput(c.AddGate(logic.Xor, fmt.Sprintf("G%d", i), qs[i], qs[i+1]))
	}
	c.MarkOutput(c.AddGate(logic.Buf, fmt.Sprintf("G%d", n-1), qs[n-1]))
	return c.MustFinalize()
}
