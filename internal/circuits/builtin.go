package circuits

import (
	"fmt"
	"sort"

	"dft/internal/logic"
)

// builtins maps the generator names accepted by `dftc bench` and the
// dftd job API onto their constructors. Each takes the size argument
// n, ignoring it for fixed circuits; def is the size used when the
// caller passes n <= 0.
var builtins = map[string]struct {
	def int
	gen func(n int) *logic.Circuit
}{
	"c17":       {0, func(int) *logic.Circuit { return C17() }},
	"adder":     {8, RippleAdder},
	"mult":      {4, ArrayMultiplier},
	"parity":    {8, ParityTree},
	"decoder":   {3, Decoder},
	"mux":       {2, Mux},
	"cmp":       {4, Comparator},
	"maj":       {3, Majority},
	"alu74181":  {0, func(int) *logic.Circuit { return ALU74181() }},
	"alu74181x": {2, Cascade74181},
	"counter":   {8, Counter},
	"shift":     {8, ShiftRegister},
	"johnson":   {4, JohnsonCounter},
	"gray":      {4, GrayCounter},
	"hardcore":  {8, Hardcore},
}

// maxBuiltinSize bounds the size argument: generators grow at least
// linearly (the multiplier and majority voter much faster), and
// Builtin sits behind the dftd network API, so unbounded n is a
// memory-exhaustion hole rather than a convenience.
const maxBuiltinSize = 4096

// Builtin instantiates a library circuit by generator name. n sizes
// parameterized generators (bit width, input count, cascade depth);
// n <= 0 selects each generator's documented default. Unknown names
// return an error listing the valid set, and a size the generator
// rejects (generators panic on nonsense like an even majority voter)
// comes back as an error too.
func Builtin(name string, n int) (c *logic.Circuit, err error) {
	b, ok := builtins[name]
	if !ok {
		return nil, fmt.Errorf("circuits: unknown generator %q (want one of %v)", name, BuiltinNames())
	}
	if n <= 0 {
		n = b.def
	}
	if n > maxBuiltinSize {
		return nil, fmt.Errorf("circuits: %s size %d exceeds the %d cap", name, n, maxBuiltinSize)
	}
	defer func() {
		if r := recover(); r != nil {
			c, err = nil, fmt.Errorf("circuits: %s(%d): %v", name, n, r)
		}
	}()
	return b.gen(n), nil
}

// BuiltinNames returns the generator names in lexical order.
func BuiltinNames() []string {
	names := make([]string, 0, len(builtins))
	for k := range builtins {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
