// Package circuits is a library of benchmark circuit generators used by
// the experiments: the ISCAS-85 c17 network, parameterized datapath
// blocks (adders, multipliers, parity trees, decoders, multiplexers,
// comparators), the full gate-level SN74181 ALU the paper partitions in
// its autonomous-testing section, PLA structures (Fig. 22), random
// bounded-fan-in networks, and small sequential machines.
//
// Every generator returns a finalized *logic.Circuit with stable,
// human-readable net names.
package circuits

import (
	"fmt"

	"dft/internal/logic"
)

// C17 returns the ISCAS-85 c17 benchmark: 5 inputs, 2 outputs, 6 NAND
// gates. It is the classic minimal ATPG example.
func C17() *logic.Circuit {
	c := logic.New("c17")
	g1 := c.AddInput("G1")
	g2 := c.AddInput("G2")
	g3 := c.AddInput("G3")
	g6 := c.AddInput("G6")
	g7 := c.AddInput("G7")
	g10 := c.AddGate(logic.Nand, "G10", g1, g3)
	g11 := c.AddGate(logic.Nand, "G11", g3, g6)
	g16 := c.AddGate(logic.Nand, "G16", g2, g11)
	g19 := c.AddGate(logic.Nand, "G19", g11, g7)
	c.MarkOutput(c.AddGate(logic.Nand, "G22", g10, g16))
	c.MarkOutput(c.AddGate(logic.Nand, "G23", g16, g19))
	return c.MustFinalize()
}

// RippleAdder returns an n-bit ripple-carry adder with inputs A0..,
// B0.., CIN and outputs S0.., COUT. Each bit is a textbook full adder
// (2 XOR, 2 AND, 1 OR), giving 5n gates.
func RippleAdder(n int) *logic.Circuit {
	if n < 1 {
		panic("circuits: RippleAdder needs n >= 1")
	}
	c := logic.New(fmt.Sprintf("adder%d", n))
	a := make([]int, n)
	b := make([]int, n)
	for i := 0; i < n; i++ {
		a[i] = c.AddInput(fmt.Sprintf("A%d", i))
	}
	for i := 0; i < n; i++ {
		b[i] = c.AddInput(fmt.Sprintf("B%d", i))
	}
	carry := c.AddInput("CIN")
	for i := 0; i < n; i++ {
		axb := c.AddGate(logic.Xor, fmt.Sprintf("AXB%d", i), a[i], b[i])
		s := c.AddGate(logic.Xor, fmt.Sprintf("S%d", i), axb, carry)
		g := c.AddGate(logic.And, fmt.Sprintf("GEN%d", i), a[i], b[i])
		p := c.AddGate(logic.And, fmt.Sprintf("PRP%d", i), axb, carry)
		carry = c.AddGate(logic.Or, fmt.Sprintf("C%d", i+1), g, p)
		c.MarkOutput(s)
	}
	cout := c.AddGate(logic.Buf, "COUT", carry)
	c.MarkOutput(cout)
	return c.MustFinalize()
}

// ArrayMultiplier returns an n×n array multiplier with inputs A0..,
// B0.. and outputs P0..P(2n-1). It uses AND partial products summed by
// ripple-carry rows — O(n²) gates, a convenient family for the
// T = K·N³ scaling experiment.
func ArrayMultiplier(n int) *logic.Circuit {
	if n < 1 {
		panic("circuits: ArrayMultiplier needs n >= 1")
	}
	c := logic.New(fmt.Sprintf("mult%d", n))
	a := make([]int, n)
	b := make([]int, n)
	for i := 0; i < n; i++ {
		a[i] = c.AddInput(fmt.Sprintf("A%d", i))
	}
	for i := 0; i < n; i++ {
		b[i] = c.AddInput(fmt.Sprintf("B%d", i))
	}
	// pp[i][j] = a[j] AND b[i]
	pp := make([][]int, n)
	for i := 0; i < n; i++ {
		pp[i] = make([]int, n)
		for j := 0; j < n; j++ {
			pp[i][j] = c.AddGate(logic.And, fmt.Sprintf("PP_%d_%d", i, j), a[j], b[i])
		}
	}
	// Row-by-row accumulation. sum holds the running partial sum bits
	// aligned at weight 0..; start with row 0.
	sum := make([]int, n)
	copy(sum, pp[0])
	outs := make([]int, 0, 2*n)
	outs = append(outs, sum[0]) // weight 0 settled
	fullAdder := func(tag string, x, y, cin int) (s, cout int) {
		xy := c.AddGate(logic.Xor, tag+"_xy", x, y)
		s = c.AddGate(logic.Xor, tag+"_s", xy, cin)
		g := c.AddGate(logic.And, tag+"_g", x, y)
		p := c.AddGate(logic.And, tag+"_p", xy, cin)
		cout = c.AddGate(logic.Or, tag+"_c", g, p)
		return
	}
	halfAdder := func(tag string, x, y int) (s, cout int) {
		s = c.AddGate(logic.Xor, tag+"_s", x, y)
		cout = c.AddGate(logic.And, tag+"_c", x, y)
		return
	}
	prevTop := -1 // carry out of the previous row's top position
	for i := 1; i < n; i++ {
		next := make([]int, n)
		carry := -1
		for j := 0; j < n; j++ {
			// Add pp[i][j] (weight i+j) to the shifted partial sum; the
			// top position takes the previous row's carry-out instead.
			x := prevTop
			if j+1 < n {
				x = sum[j+1]
			}
			tag := fmt.Sprintf("FA_%d_%d", i, j)
			switch {
			case x < 0 && carry < 0:
				next[j] = pp[i][j]
			case x < 0:
				next[j], carry = halfAdder(tag, pp[i][j], carry)
			case carry < 0:
				next[j], carry = halfAdder(tag, pp[i][j], x)
			default:
				next[j], carry = fullAdder(tag, pp[i][j], x, carry)
			}
		}
		prevTop = carry
		sum = next
		outs = append(outs, sum[0])
	}
	for j := 1; j < n; j++ {
		outs = append(outs, sum[j])
	}
	if prevTop >= 0 {
		outs = append(outs, prevTop)
	} else {
		outs = append(outs, c.AddGate(logic.Const0, "PTOP"))
	}
	for k, id := range outs {
		po := c.AddGate(logic.Buf, fmt.Sprintf("P%d", k), id)
		c.MarkOutput(po)
	}
	return c.MustFinalize()
}

// ParityTree returns an n-input odd-parity tree built from 2-input XOR
// gates, with inputs I0.. and one output PAR. Parity trees are the
// classic random-pattern-friendly structure.
func ParityTree(n int) *logic.Circuit {
	if n < 1 {
		panic("circuits: ParityTree needs n >= 1")
	}
	c := logic.New(fmt.Sprintf("parity%d", n))
	level := make([]int, n)
	for i := 0; i < n; i++ {
		level[i] = c.AddInput(fmt.Sprintf("I%d", i))
	}
	d := 0
	for len(level) > 1 {
		var next []int
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, c.AddGate(logic.Xor, fmt.Sprintf("X%d_%d", d, i/2), level[i], level[i+1]))
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
		d++
	}
	c.MarkOutput(c.AddGate(logic.Buf, "PAR", level[0]))
	return c.MustFinalize()
}

// Decoder returns an n-to-2^n decoder with inputs I0.. and outputs
// Y0..Y(2^n-1), each an n-input AND of appropriate literals.
func Decoder(n int) *logic.Circuit {
	if n < 1 || n > 16 {
		panic("circuits: Decoder needs 1 <= n <= 16")
	}
	c := logic.New(fmt.Sprintf("dec%d", n))
	in := make([]int, n)
	inv := make([]int, n)
	for i := 0; i < n; i++ {
		in[i] = c.AddInput(fmt.Sprintf("I%d", i))
	}
	for i := 0; i < n; i++ {
		inv[i] = c.AddGate(logic.Not, fmt.Sprintf("NI%d", i), in[i])
	}
	for m := 0; m < 1<<uint(n); m++ {
		lits := make([]int, n)
		for i := 0; i < n; i++ {
			if m>>uint(i)&1 == 1 {
				lits[i] = in[i]
			} else {
				lits[i] = inv[i]
			}
		}
		c.MarkOutput(c.AddGate(logic.And, fmt.Sprintf("Y%d", m), lits...))
	}
	return c.MustFinalize()
}

// Mux returns a 2^k:1 multiplexer with data inputs D0.., select inputs
// S0.. and output Y.
func Mux(k int) *logic.Circuit {
	if k < 1 || k > 8 {
		panic("circuits: Mux needs 1 <= k <= 8")
	}
	c := logic.New(fmt.Sprintf("mux%d", 1<<uint(k)))
	d := make([]int, 1<<uint(k))
	s := make([]int, k)
	for i := range d {
		d[i] = c.AddInput(fmt.Sprintf("D%d", i))
	}
	for i := range s {
		s[i] = c.AddInput(fmt.Sprintf("S%d", i))
	}
	ns := make([]int, k)
	for i := range s {
		ns[i] = c.AddGate(logic.Not, fmt.Sprintf("NS%d", i), s[i])
	}
	terms := make([]int, len(d))
	for m := range d {
		lits := make([]int, 0, k+1)
		lits = append(lits, d[m])
		for i := 0; i < k; i++ {
			if m>>uint(i)&1 == 1 {
				lits = append(lits, s[i])
			} else {
				lits = append(lits, ns[i])
			}
		}
		terms[m] = c.AddGate(logic.And, fmt.Sprintf("T%d", m), lits...)
	}
	c.MarkOutput(c.AddGate(logic.Or, "Y", terms...))
	return c.MustFinalize()
}

// Comparator returns an n-bit equality comparator with inputs A0..,
// B0.. and output EQ (plus GT for magnitude, computed MSB-first).
func Comparator(n int) *logic.Circuit {
	if n < 1 {
		panic("circuits: Comparator needs n >= 1")
	}
	c := logic.New(fmt.Sprintf("cmp%d", n))
	a := make([]int, n)
	b := make([]int, n)
	for i := 0; i < n; i++ {
		a[i] = c.AddInput(fmt.Sprintf("A%d", i))
	}
	for i := 0; i < n; i++ {
		b[i] = c.AddInput(fmt.Sprintf("B%d", i))
	}
	eqs := make([]int, n)
	for i := 0; i < n; i++ {
		eqs[i] = c.AddGate(logic.Xnor, fmt.Sprintf("E%d", i), a[i], b[i])
	}
	c.MarkOutput(c.AddGate(logic.And, "EQ", eqs...))
	// GT: a > b, scanning from the MSB.
	var gtTerms []int
	for i := n - 1; i >= 0; i-- {
		nb := c.AddGate(logic.Not, fmt.Sprintf("NB%d", i), b[i])
		lits := []int{a[i], nb}
		for j := i + 1; j < n; j++ {
			lits = append(lits, eqs[j])
		}
		gtTerms = append(gtTerms, c.AddGate(logic.And, fmt.Sprintf("GTT%d", i), lits...))
	}
	if len(gtTerms) == 1 {
		c.MarkOutput(c.AddGate(logic.Buf, "GT", gtTerms[0]))
	} else {
		c.MarkOutput(c.AddGate(logic.Or, "GT", gtTerms...))
	}
	return c.MustFinalize()
}

// Majority returns an n-input majority voter (n odd): output M is 1
// when more than half the inputs are 1. Built as a sum-of-products over
// all ⌈n/2⌉-subsets for small n.
func Majority(n int) *logic.Circuit {
	if n < 3 || n%2 == 0 || n > 9 {
		panic("circuits: Majority needs odd n in [3,9]")
	}
	c := logic.New(fmt.Sprintf("maj%d", n))
	in := make([]int, n)
	for i := range in {
		in[i] = c.AddInput(fmt.Sprintf("I%d", i))
	}
	k := n/2 + 1
	var terms []int
	var rec func(start int, chosen []int)
	rec = func(start int, chosen []int) {
		if len(chosen) == k {
			terms = append(terms, c.AddGate(logic.And, fmt.Sprintf("M%d", len(terms)), chosen...))
			return
		}
		for i := start; i < n; i++ {
			rec(i+1, append(chosen, in[i]))
		}
	}
	rec(0, nil)
	c.MarkOutput(c.AddGate(logic.Or, "M", terms...))
	return c.MustFinalize()
}
