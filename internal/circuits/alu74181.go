package circuits

import (
	"fmt"

	"dft/internal/logic"
)

// ALU74181 returns a gate-level model of the SN74181 4-bit ALU /
// function generator, the network McCluskey and Bozorgui-Nesbat
// partition with "sensitized partitioning" in the paper's autonomous-
// testing section (Figs. 33–34).
//
// Inputs (active-high data convention):
//
//	A0..A3, B0..B3  operands
//	S0..S3          function select
//	M               mode (1 = logic, 0 = arithmetic)
//	CN              carry in (active low: CN=1 means "no carry")
//
// Outputs:
//
//	F0..F3  function outputs
//	AEQB    comparator output (all F bits one)
//	PBAR    group propagate (active low)
//	GBAR    group generate (active low)
//	CN4     carry out (active low)
//
// Structure follows the TI schematic: per-bit first-level networks N1
// produce the internal L (S0/S1 side) and H (S2/S3 side) signals, and
// the shared second-level network N2 implements the carry lookahead and
// sum XORs. Paper usage: hold S2=S3=0 to sensitize the L outputs, hold
// S0=S1=1 to sensitize the H outputs.
func ALU74181() *logic.Circuit {
	c := logic.New("alu74181")
	a := make([]int, 4)
	b := make([]int, 4)
	s := make([]int, 4)
	for i := 0; i < 4; i++ {
		a[i] = c.AddInput(fmt.Sprintf("A%d", i))
	}
	for i := 0; i < 4; i++ {
		b[i] = c.AddInput(fmt.Sprintf("B%d", i))
	}
	for i := 0; i < 4; i++ {
		s[i] = c.AddInput(fmt.Sprintf("S%d", i))
	}
	m := c.AddInput("M")
	cn := c.AddInput("CN")

	// N1 subnetworks: per bit i,
	//   L_i = NOR(A_i, B_i·S0, S1·B̄_i)
	//   H_i = NOR(A_i·B̄_i·S2, A_i·B_i·S3)
	l := make([]int, 4)
	h := make([]int, 4)
	for i := 0; i < 4; i++ {
		nb := c.AddGate(logic.Not, fmt.Sprintf("NB%d", i), b[i])
		t1 := c.AddGate(logic.And, fmt.Sprintf("LT1_%d", i), b[i], s[0])
		t2 := c.AddGate(logic.And, fmt.Sprintf("LT2_%d", i), s[1], nb)
		l[i] = c.AddGate(logic.Nor, fmt.Sprintf("L%d", i), a[i], t1, t2)
		t3 := c.AddGate(logic.And, fmt.Sprintf("HT1_%d", i), a[i], nb, s[2])
		t4 := c.AddGate(logic.And, fmt.Sprintf("HT2_%d", i), a[i], b[i], s[3])
		h[i] = c.AddGate(logic.Nor, fmt.Sprintf("H%d", i), t3, t4)
	}

	// N2: carry lookahead kept in active-low form directly over the L/H
	// nodes (De Morgan of g_i + p_i·c_i with g=NOT H, p=NOT L), which
	// matches the part's AOI implementation and — unlike a naive
	// OR(M, AND(M̄,c)) gating — contains no redundant logic, so every
	// stuck-at fault in the carry network is testable.
	nm := c.AddGate(logic.Not, "NM", m)
	// nc[i] = active-low carry INTO bit i; nc[4] = active-low carry out.
	nc := make([]int, 5)
	nc[0] = cn
	for i := 0; i < 4; i++ {
		lp := c.AddGate(logic.Or, fmt.Sprintf("NCP%d", i), l[i], nc[i])
		nc[i+1] = c.AddGate(logic.And, fmt.Sprintf("NC%d", i+1), h[i], lp)
	}
	for i := 0; i < 4; i++ {
		// Sum-XOR carry node: NAND(M̄, nc_i) = 1 in logic mode, the
		// active-high carry c_i in arithmetic mode.
		cnode := c.AddGate(logic.Nand, fmt.Sprintf("CNODE%d", i), nm, nc[i])
		lh := c.AddGate(logic.Xor, fmt.Sprintf("LH%d", i), l[i], h[i])
		f := c.AddGate(logic.Xor, fmt.Sprintf("F%d", i), lh, cnode)
		c.MarkOutput(f)
	}

	// AEQB: all F high (open-collector comparator on the real part).
	f0, _ := c.NetByName("F0")
	f1, _ := c.NetByName("F1")
	f2, _ := c.NetByName("F2")
	f3, _ := c.NetByName("F3")
	c.MarkOutput(c.AddGate(logic.And, "AEQB", f0, f1, f2, f3))

	// Group propagate (active low): NOT(∏ NOT l_i) = OR of the L nodes.
	pbar := c.AddGate(logic.Or, "PBAR", l[0], l[1], l[2], l[3])
	c.MarkOutput(pbar)
	// Group generate (active low), again by De Morgan over L/H:
	// NOT(g3 + p3·g2 + p3·p2·g1 + p3·p2·p1·g0)
	//   = h3 · (l3+h2) · (l3+l2+h1) · (l3+l2+l1+h0).
	gg1 := c.AddGate(logic.Or, "GG1", l[3], h[2])
	gg2 := c.AddGate(logic.Or, "GG2", l[3], l[2], h[1])
	gg3 := c.AddGate(logic.Or, "GG3", l[3], l[2], l[1], h[0])
	gbar := c.AddGate(logic.And, "GBAR", h[3], gg1, gg2, gg3)
	c.MarkOutput(gbar)
	cn4 := c.AddGate(logic.Buf, "CN4", nc[4])
	c.MarkOutput(cn4)
	return c.MustFinalize()
}

// ALU74181Ref is a behavioral reference for the gate-level model,
// computing all outputs from the same input convention. It mirrors the
// defining equations rather than the gate structure, so tests can
// cross-check the netlist. Inputs/outputs are packed little-endian.
func ALU74181Ref(aIn, bIn, sIn uint, m, cnIn bool) (f uint, aeqb, pbar, gbar, cn4 bool) {
	bit := func(x uint, i uint) bool { return x>>i&1 == 1 }
	var l, h [4]bool
	for i := uint(0); i < 4; i++ {
		ai, bi := bit(aIn, i), bit(bIn, i)
		l[i] = !(ai || (bi && bit(sIn, 0)) || (bit(sIn, 1) && !bi))
		h[i] = !((ai && !bi && bit(sIn, 2)) || (ai && bi && bit(sIn, 3)))
	}
	carry := !cnIn // internal active-high carry
	carryOut := carry
	var fb [4]bool
	for i := 0; i < 4; i++ {
		p, g := !l[i], !h[i]
		cnode := m || (!m && carryOut)
		if m {
			cnode = true
		}
		fb[i] = (l[i] != h[i]) != cnode
		carryOut = g || (p && carryOut)
	}
	f = 0
	aeqb = true
	for i := uint(0); i < 4; i++ {
		if fb[i] {
			f |= 1 << i
		} else {
			aeqb = false
		}
	}
	pAll := true
	for i := 0; i < 4; i++ {
		pAll = pAll && !l[i]
	}
	pbar = !pAll
	gg := !h[3] || (!l[3] && !h[2]) || (!l[3] && !l[2] && !h[1]) || (!l[3] && !l[2] && !l[1] && !h[0])
	gbar = !gg
	cn4 = !carryOut
	return
}
