package circuits

import (
	"fmt"

	"dft/internal/logic"
)

// Counter returns an n-bit synchronous binary counter with an enable
// input EN and outputs Q0..Q(n-1). Bit i toggles when EN and all lower
// bits are 1 — the textbook ripple-enable structure. Counters are the
// paper's canonical example of sequential test-generation difficulty:
// observing the top bit requires 2^(n-1) clocks without DFT.
func Counter(n int) *logic.Circuit {
	if n < 1 {
		panic("circuits: Counter needs n >= 1")
	}
	c := logic.New(fmt.Sprintf("counter%d", n))
	en := c.AddInput("EN")
	qs := make([]int, n)
	for i := 0; i < n; i++ {
		qs[i] = c.AddDFF(fmt.Sprintf("Q%d", i), 0) // patched below
	}
	carry := en
	for i := 0; i < n; i++ {
		t := c.AddGate(logic.Xor, fmt.Sprintf("T%d", i), qs[i], carry)
		c.Gates[qs[i]].Fanin[0] = t
		if i+1 < n {
			carry = c.AddGate(logic.And, fmt.Sprintf("CA%d", i), carry, qs[i])
		}
		c.MarkOutput(qs[i])
	}
	return c.MustFinalize()
}

// ShiftRegister returns an n-bit serial shift register with input SIN
// and output SOUT (the last stage). All stages are observable through
// SOUT only — maximal observability pain for sequential ATPG.
func ShiftRegister(n int) *logic.Circuit {
	if n < 1 {
		panic("circuits: ShiftRegister needs n >= 1")
	}
	c := logic.New(fmt.Sprintf("shift%d", n))
	sin := c.AddInput("SIN")
	prev := sin
	var last int
	for i := 0; i < n; i++ {
		last = c.AddDFF(fmt.Sprintf("R%d", i), prev)
		prev = last
	}
	c.MarkOutput(c.AddGate(logic.Buf, "SOUT", last))
	return c.MustFinalize()
}

// LFSRCircuit returns an n-bit Fibonacci LFSR netlist with XOR feedback
// from the given 1-based tap positions into stage 1, stages exposed as
// outputs Q1..Qn. It reproduces Fig. 7's linear feedback shift register
// as an actual circuit (taps {2,3} with n=3 gives the figure).
func LFSRCircuit(n int, taps []int) *logic.Circuit {
	if n < 1 {
		panic("circuits: LFSRCircuit needs n >= 1")
	}
	c := logic.New(fmt.Sprintf("lfsr%d", n))
	// Placeholder target so the first DFF has a legal fanin before the
	// feedback net exists; every DFF is re-pointed below.
	tie := c.AddGate(logic.Const0, "TIE0")
	stages := make([]int, n+1) // 1-based
	for i := 1; i <= n; i++ {
		stages[i] = c.AddDFF(fmt.Sprintf("Q%d", i), tie)
	}
	var fb int
	switch len(taps) {
	case 0:
		panic("circuits: LFSRCircuit needs at least one tap")
	case 1:
		fb = c.AddGate(logic.Buf, "FB", stages[taps[0]])
	default:
		lits := make([]int, len(taps))
		for i, t := range taps {
			if t < 1 || t > n {
				panic(fmt.Sprintf("circuits: tap %d out of range 1..%d", t, n))
			}
			lits[i] = stages[t]
		}
		fb = c.AddGate(logic.Xor, "FB", lits...)
	}
	c.Gates[stages[1]].Fanin[0] = fb
	for i := 2; i <= n; i++ {
		c.Gates[stages[i]].Fanin[0] = stages[i-1]
	}
	for i := 1; i <= n; i++ {
		c.MarkOutput(stages[i])
	}
	return c.MustFinalize()
}

// SequencedALU wraps a combinational core (the n-bit adder) in input
// and output registers, modeling the "sequential machine around
// combinational logic" of the paper's Fig. 9: inputs are registered,
// the core computes, results are registered. It is the standard victim
// for the scan-vs-no-scan ATPG experiments.
func SequencedALU(n int) *logic.Circuit {
	if n < 1 {
		panic("circuits: SequencedALU needs n >= 1")
	}
	c := logic.New(fmt.Sprintf("seqalu%d", n))
	// Primary inputs.
	av := make([]int, n)
	bv := make([]int, n)
	for i := 0; i < n; i++ {
		av[i] = c.AddInput(fmt.Sprintf("A%d", i))
	}
	for i := 0; i < n; i++ {
		bv[i] = c.AddInput(fmt.Sprintf("B%d", i))
	}
	cin := c.AddInput("CIN")
	// Input registers.
	ar := make([]int, n)
	br := make([]int, n)
	for i := 0; i < n; i++ {
		ar[i] = c.AddDFF(fmt.Sprintf("AR%d", i), av[i])
	}
	for i := 0; i < n; i++ {
		br[i] = c.AddDFF(fmt.Sprintf("BR%d", i), bv[i])
	}
	cr := c.AddDFF("CR", cin)
	// Ripple adder core over the registered operands.
	carry := cr
	sums := make([]int, n)
	for i := 0; i < n; i++ {
		axb := c.AddGate(logic.Xor, fmt.Sprintf("AXB%d", i), ar[i], br[i])
		sums[i] = c.AddGate(logic.Xor, fmt.Sprintf("SM%d", i), axb, carry)
		g := c.AddGate(logic.And, fmt.Sprintf("GEN%d", i), ar[i], br[i])
		p := c.AddGate(logic.And, fmt.Sprintf("PRP%d", i), axb, carry)
		carry = c.AddGate(logic.Or, fmt.Sprintf("CY%d", i+1), g, p)
	}
	// Output registers feeding primary outputs.
	for i := 0; i < n; i++ {
		sr := c.AddDFF(fmt.Sprintf("SR%d", i), sums[i])
		c.MarkOutput(c.AddGate(logic.Buf, fmt.Sprintf("S%d", i), sr))
	}
	cor := c.AddDFF("COR", carry)
	c.MarkOutput(c.AddGate(logic.Buf, "COUT", cor))
	return c.MustFinalize()
}

// FSM returns a small Moore machine — a 2-bit sequence detector that
// raises HIT after observing the serial input pattern 1,0,1. It gives
// the sequential ATPG experiments a controllable state machine with
// feedback (unlike the feed-forward SequencedALU).
func FSM() *logic.Circuit {
	c := logic.New("fsm101")
	in := c.AddInput("SIN")
	s0 := c.AddDFF("ST0", 0) // patched below
	s1 := c.AddDFF("ST1", 0)
	nin := c.AddGate(logic.Not, "NSIN", in)
	ns0 := c.AddGate(logic.Not, "NST0", s0)
	// States (s1 s0): 00 idle, 01 last char "1", 10 last chars "10",
	// 11 just matched "101" (HIT). With overlap, the low state bit
	// simply tracks the last input character.
	next0 := c.AddGate(logic.Buf, "NEXT0", in)
	t1 := c.AddGate(logic.And, "T1", nin, s0)     // ...1 then 0 -> "10"
	t2 := c.AddGate(logic.And, "T2", in, s1, ns0) // "10" then 1 -> HIT
	next1 := c.AddGate(logic.Or, "NEXT1", t1, t2)
	c.Gates[s0].Fanin[0] = next0
	c.Gates[s1].Fanin[0] = next1
	c.MarkOutput(c.AddGate(logic.And, "HIT", s1, s0))
	return c.MustFinalize()
}
