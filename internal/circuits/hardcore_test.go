package circuits

import (
	"testing"

	"dft/internal/logic"
	"dft/internal/testability"
)

func TestHardcoreStructure(t *testing.T) {
	c := Hardcore(8)
	if c.NumDFFs() != 8/2+2 {
		t.Fatalf("hardcore(8) has %d DFFs, want %d", c.NumDFFs(), 8/2+2)
	}
	if len(c.PIs) != 8 {
		t.Fatalf("hardcore(8) has %d inputs, want 8", len(c.PIs))
	}
	if len(c.POs) != 3 {
		t.Fatalf("hardcore(8) has %d outputs, want 3 (FRONT, UNLOCK, MIX)", len(c.POs))
	}
	if stems := testability.ReconvergentStems(c); len(stems) == 0 {
		t.Fatal("hardcore has no reconvergent stems — it is supposed to be hard")
	}
}

func TestHardcoreScales(t *testing.T) {
	small := Hardcore(4)
	big := Hardcore(16)
	if big.NumGates() <= small.NumGates() || big.NumDFFs() <= small.NumDFFs() {
		t.Fatalf("hardcore does not scale: %d/%d gates, %d/%d DFFs",
			small.NumGates(), big.NumGates(), small.NumDFFs(), big.NumDFFs())
	}
}

func TestHardcoreDeterministic(t *testing.T) {
	if logic.CanonicalBench(Hardcore(8)) != logic.CanonicalBench(Hardcore(8)) {
		t.Fatal("hardcore generator is not deterministic")
	}
}

// TestHardcoreBuriedLogicIsDarkAtReset pins the property the advisor
// demo depends on: with every flip-flop held at the reset value the
// key-detector cone never reaches an output, so its signal changes are
// invisible from the package pins.
func TestHardcoreBuriedLogicIsDarkAtReset(t *testing.T) {
	c := Hardcore(8)
	cop := testability.ViewCOP(c, c.PIs, c.POs)
	for _, name := range []string{"NKEY", "D0"} {
		n, ok := c.NetByName(name)
		if !ok {
			t.Fatalf("net %s missing", name)
		}
		if cop.Obs[n] != 0 {
			t.Fatalf("net %s observable (%.3f) at reset — the key cone leaks", name, cop.Obs[n])
		}
	}
}

func TestHardcoreBuiltinRegistered(t *testing.T) {
	c, err := Builtin("hardcore", 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDFFs() == 0 {
		t.Fatal("default hardcore has no storage")
	}
	if _, err := Builtin("hardcore", 2); err == nil {
		t.Fatal("hardcore(2) should be rejected")
	}
}
