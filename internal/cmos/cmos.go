// Package cmos implements the CMOS stuck-open fault model behind the
// paper's §I.A warning: "there are a number of faults which could
// change a combinational network into a sequential network. Therefore
// the combinational patterns are no longer effective in testing the
// network in all cases."
//
// A stuck-open transistor leaves the gate output floating for the
// input combinations that needed the broken path; the node then
// retains its previous value — state where none was designed. Detection
// therefore needs two-pattern tests: an initialization pattern that
// drives the node to the opposite value, then an excitation pattern
// whose good response differs from the retained value, propagated to
// an output.
//
// The model covers the inverting CMOS primitives (NAND, NOR, NOT),
// whose transistor networks are unambiguous: NAND = series NMOS
// pull-down / parallel PMOS pull-up; NOR = the dual; NOT = one of each.
package cmos

import (
	"fmt"
	"math/rand"

	"dft/internal/atpg"
	"dft/internal/fault"
	"dft/internal/logic"
)

// Network identifies which transistor network the open is in.
type Network uint8

const (
	PullDown Network = iota // NMOS network (drives 0)
	PullUp                  // PMOS network (drives 1)
)

// String names the network.
func (n Network) String() string {
	if n == PullDown {
		return "pull-down"
	}
	return "pull-up"
}

// Fault is a stuck-open transistor: the device driven by input pin Pin
// of gate Gate, in the given network.
type Fault struct {
	Gate    int
	Pin     int
	Network Network
}

// Name renders the fault.
func (f Fault) Name(c *logic.Circuit) string {
	return fmt.Sprintf("%s.in%d %s stuck-open", c.NameOf(f.Gate), f.Pin, f.Network)
}

// Supported reports whether the gate type has a defined transistor
// model here.
func Supported(t logic.GateType) bool {
	switch t {
	case logic.Nand, logic.Nor, logic.Not:
		return true
	}
	return false
}

// Universe enumerates all stuck-open faults of the supported gates.
func Universe(c *logic.Circuit) []Fault {
	var out []Fault
	for id, g := range c.Gates {
		if !Supported(g.Type) {
			continue
		}
		for p := range g.Fanin {
			out = append(out, Fault{id, p, PullDown}, Fault{id, p, PullUp})
		}
	}
	return out
}

// floats reports whether the faulty gate output floats for the given
// input values (i.e., the good machine needed the broken transistor).
func (f Fault) floats(t logic.GateType, in []bool) bool {
	switch t {
	case logic.Not:
		if f.Network == PullDown {
			return in[0] // output should be 0 via the broken NMOS
		}
		return !in[0] // output should be 1 via the broken PMOS
	case logic.Nand:
		if f.Network == PullDown {
			// Series NMOS: conducts only with all inputs 1; any open
			// transistor breaks it.
			for _, b := range in {
				if !b {
					return false
				}
			}
			return true
		}
		// Parallel PMOS: the output floats only when the broken device
		// was the sole conducting path: in[Pin]=0 and all others 1.
		if in[f.Pin] {
			return false
		}
		for q, b := range in {
			if q != f.Pin && !b {
				return false
			}
		}
		return true
	case logic.Nor:
		if f.Network == PullUp {
			// Series PMOS: conducts only with all inputs 0.
			for _, b := range in {
				if b {
					return false
				}
			}
			return true
		}
		// Parallel NMOS: floats when in[Pin]=1 and all others 0.
		if !in[f.Pin] {
			return false
		}
		for q, b := range in {
			if q != f.Pin && b {
				return false
			}
		}
		return true
	}
	return false
}

// Machine simulates the faulty CMOS circuit over a pattern sequence:
// combinational everywhere except the faulty gate, whose output
// retains its previous value whenever it floats. Nodes power up to
// the good value of the first pattern's evaluation with retention
// starting at false (discharged).
type Machine struct {
	c      *logic.Circuit
	f      Fault
	retain bool // last driven value of the faulty node
	vals   []bool
}

// NewMachine builds the faulty machine (node initially discharged).
func NewMachine(c *logic.Circuit, f Fault) *Machine {
	if !Supported(c.Gates[f.Gate].Type) {
		panic("cmos: unsupported gate type for " + f.Name(c))
	}
	return &Machine{c: c, f: f, vals: make([]bool, c.NumNets())}
}

// Apply evaluates one pattern, returning the primary outputs.
func (m *Machine) Apply(pi []bool) []bool {
	c := m.c
	for i, id := range c.PIs {
		m.vals[id] = pi[i]
	}
	scratch := make([]bool, c.MaxFanin())
	for _, id := range c.Order {
		g := &c.Gates[id]
		in := scratch[:len(g.Fanin)]
		for i, src := range g.Fanin {
			in[i] = m.vals[src]
		}
		v := g.Type.EvalBool(in)
		if id == m.f.Gate {
			if m.f.floats(g.Type, in) {
				v = m.retain // the node holds its charge
			} else {
				m.retain = v
			}
		}
		m.vals[id] = v
	}
	out := make([]bool, len(c.POs))
	for i, po := range c.POs {
		out[i] = m.vals[po]
	}
	return out
}

// DetectsSequence reports whether applying the patterns in order
// distinguishes the stuck-open machine from the good one.
func DetectsSequence(c *logic.Circuit, f Fault, patterns [][]bool) bool {
	m := NewMachine(c, f)
	goodVals := make([]bool, c.NumNets())
	scratch := make([]bool, c.MaxFanin())
	for _, p := range patterns {
		bad := m.Apply(p)
		for i, id := range c.PIs {
			goodVals[id] = p[i]
		}
		for _, id := range c.Order {
			g := &c.Gates[id]
			in := scratch[:len(g.Fanin)]
			for i, src := range g.Fanin {
				in[i] = goodVals[src]
			}
			goodVals[id] = g.Type.EvalBool(in)
		}
		for i, po := range c.POs {
			if bad[i] != goodVals[po] {
				return true
			}
		}
	}
	return false
}

// TwoPattern is an (initialize, excite) pair.
type TwoPattern struct {
	Init   []bool
	Excite []bool
}

// inducedStuck returns the stuck-at fault the retained node mimics
// during a properly initialized excitation: a floating node that
// should fall reads as s-a-1; one that should rise reads as s-a-0.
func (f Fault) inducedStuck() logic.V {
	t := f.Network
	if t == PullDown {
		return logic.One // should drive 0, retains 1
	}
	return logic.Zero // should drive 1, retains 0
}

// initValue is the node value the initialization pattern must
// establish (the opposite of the good excitation response).
func (f Fault) initValue() bool { return f.inducedStuck() == logic.One }

// Generate builds a two-pattern test for the stuck-open fault:
// the excitation pattern is a PODEM test for the induced stuck-at on
// the gate output, verified to float the node; the initialization
// pattern drives the node to the retained value. Parallel-network
// opens need the excitation to use exactly the broken path, which
// PODEM does not constrain — those fall back to a bounded random
// search. Returns ErrNoTest when the search fails.
func Generate(c *logic.Circuit, f Fault, rng *rand.Rand) (TwoPattern, error) {
	view := atpg.PrimaryView(c)
	sa := fault.Fault{Gate: f.Gate, Pin: fault.Stem, SA: f.inducedStuck()}

	excite, ok := findExcitation(c, view, f, sa, rng)
	if !ok {
		return TwoPattern{}, fmt.Errorf("cmos: no excitation found for %s", f.Name(c))
	}
	init, ok := findInit(c, view, f, rng)
	if !ok {
		return TwoPattern{}, fmt.Errorf("cmos: no initialization found for %s", f.Name(c))
	}
	return TwoPattern{Init: init, Excite: excite}, nil
}

// findExcitation finds a pattern that floats the node AND propagates
// the retained-vs-driven difference to an output.
func findExcitation(c *logic.Circuit, view atpg.View, f Fault, sa fault.Fault, rng *rand.Rand) ([]bool, bool) {
	check := func(p []bool) bool {
		if !fault.DetectsCombinational(c, p, sa) {
			return false
		}
		in := gateInputs(c, f.Gate, p)
		return f.floats(c.Gates[f.Gate].Type, in)
	}
	// PODEM's stuck-at test satisfies series-network excitation
	// automatically; verify and accept.
	if cube, err := atpg.Podem(c, view, sa, atpg.PodemConfig{}); err == nil {
		for _, fill := range []logic.V{logic.Zero, logic.One} {
			p := boolsOf(cube.Filled(fill))
			if check(p) {
				return p, true
			}
		}
	}
	// Parallel-network (or unlucky fill) fallback: bounded random
	// search with verification.
	n := len(c.PIs)
	for trial := 0; trial < 4096; trial++ {
		p := make([]bool, n)
		for i := range p {
			p[i] = rng.Intn(2) == 1
		}
		if check(p) {
			return p, true
		}
	}
	return nil, false
}

// findInit finds a pattern that drives the node to f.initValue()
// without floating it.
func findInit(c *logic.Circuit, view atpg.View, f Fault, rng *rand.Rand) ([]bool, bool) {
	want := f.initValue()
	check := func(p []bool) bool {
		in := gateInputs(c, f.Gate, p)
		t := c.Gates[f.Gate].Type
		if f.floats(t, in) {
			return false
		}
		return t.EvalBool(in) == want
	}
	// Justify via PODEM: a test for "node s-a-(NOT want)" necessarily
	// drives the node to want.
	saInit := fault.Fault{Gate: f.Gate, Pin: fault.Stem, SA: logic.FromBool(!want)}
	if cube, err := atpg.Podem(c, view, saInit, atpg.PodemConfig{}); err == nil {
		for _, fill := range []logic.V{logic.Zero, logic.One} {
			p := boolsOf(cube.Filled(fill))
			if check(p) {
				return p, true
			}
		}
	}
	n := len(c.PIs)
	for trial := 0; trial < 4096; trial++ {
		p := make([]bool, n)
		for i := range p {
			p[i] = rng.Intn(2) == 1
		}
		if check(p) {
			return p, true
		}
	}
	return nil, false
}

func gateInputs(c *logic.Circuit, id int, pi []bool) []bool {
	vals := make([]bool, c.NumNets())
	for i, n := range c.PIs {
		vals[n] = pi[i]
	}
	scratch := make([]bool, c.MaxFanin())
	for _, g := range c.Order {
		gg := &c.Gates[g]
		in := scratch[:len(gg.Fanin)]
		for i, src := range gg.Fanin {
			in[i] = vals[src]
		}
		vals[g] = gg.Type.EvalBool(in)
	}
	g := &c.Gates[id]
	in := make([]bool, len(g.Fanin))
	for i, src := range g.Fanin {
		in[i] = vals[src]
	}
	return in
}

func boolsOf(vs []logic.V) []bool {
	out := make([]bool, len(vs))
	for i, v := range vs {
		out[i] = v == logic.One
	}
	return out
}

// GradeSequence measures stuck-open coverage of a pattern sequence
// applied in the given order (order matters — that is the point).
func GradeSequence(c *logic.Circuit, faults []Fault, patterns [][]bool) (detected int) {
	for _, f := range faults {
		if DetectsSequence(c, f, patterns) {
			detected++
		}
	}
	return detected
}

// GradeTwoPattern generates and applies a dedicated two-pattern test
// per fault, returning how many faults are covered.
func GradeTwoPattern(c *logic.Circuit, faults []Fault, rng *rand.Rand) (detected, generated int) {
	for _, f := range faults {
		tp, err := Generate(c, f, rng)
		if err != nil {
			continue
		}
		generated++
		if DetectsSequence(c, f, [][]bool{tp.Init, tp.Excite}) {
			detected++
		}
	}
	return detected, generated
}
