package cmos

import (
	"math/rand"
	"testing"

	"dft/internal/atpg"
	"dft/internal/circuits"
	"dft/internal/fault"
	"dft/internal/logic"
)

// nandGate builds a 2-input NAND.
func nandGate() *logic.Circuit {
	c := logic.New("nand2")
	a := c.AddInput("a")
	b := c.AddInput("b")
	c.MarkOutput(c.AddGate(logic.Nand, "y", a, b))
	return c.MustFinalize()
}

func TestFloatsConditions(t *testing.T) {
	c := nandGate()
	y, _ := c.NetByName("y")
	pd := Fault{Gate: y, Pin: 0, Network: PullDown}
	pu := Fault{Gate: y, Pin: 0, Network: PullUp}
	cases := []struct {
		in     []bool
		pd, pu bool
	}{
		{[]bool{true, true}, true, false},   // pull-down path needed
		{[]bool{false, true}, false, true},  // only PMOS 0 is pin 0
		{[]bool{true, false}, false, false}, // other PMOS conducts
		{[]bool{false, false}, false, false},
	}
	for _, cs := range cases {
		if got := pd.floats(logic.Nand, cs.in); got != cs.pd {
			t.Fatalf("pull-down floats(%v) = %v, want %v", cs.in, got, cs.pd)
		}
		if got := pu.floats(logic.Nand, cs.in); got != cs.pu {
			t.Fatalf("pull-up floats(%v) = %v, want %v", cs.in, got, cs.pu)
		}
	}
}

func TestNorAndNotFloats(t *testing.T) {
	f := Fault{Gate: 0, Pin: 1, Network: PullDown}
	// NOR parallel NMOS at pin 1: floats when in[1]=1 and others 0.
	if !f.floats(logic.Nor, []bool{false, true}) {
		t.Fatal("NOR pull-down open should float")
	}
	if f.floats(logic.Nor, []bool{true, true}) {
		t.Fatal("other NMOS conducts; no float")
	}
	fu := Fault{Gate: 0, Pin: 0, Network: PullUp}
	if !fu.floats(logic.Nor, []bool{false, false}) {
		t.Fatal("NOR series PMOS open should float on all-0")
	}
	inv := Fault{Gate: 0, Pin: 0, Network: PullDown}
	if !inv.floats(logic.Not, []bool{true}) || inv.floats(logic.Not, []bool{false}) {
		t.Fatal("NOT pull-down float conditions wrong")
	}
}

// TestSequentialBehavior is the paper's point made concrete: the same
// pattern gives different responses depending on history.
func TestSequentialBehavior(t *testing.T) {
	c := nandGate()
	y, _ := c.NetByName("y")
	f := Fault{Gate: y, Pin: 0, Network: PullDown}
	m := NewMachine(c, f)
	// Drive output to 1 (a=0), then apply a=b=1: floats, retains 1 —
	// good machine would say 0.
	m.Apply([]bool{false, true})
	out := m.Apply([]bool{true, true})
	if !out[0] {
		t.Fatal("initialized node should retain 1 (faulty) where good drives 0")
	}
	// Same excitation with a discharged history reads 0 — matching the
	// good machine. The fault is invisible without the right history.
	m2 := NewMachine(c, f)
	out = m2.Apply([]bool{true, true})
	if out[0] {
		t.Fatal("discharged node reads 0; single pattern cannot distinguish")
	}
}

func TestTwoPatternGeneration(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := circuits.C17() // all NAND — fully in the model
	u := Universe(c)
	if len(u) == 0 {
		t.Fatal("empty universe")
	}
	generated, detected := 0, 0
	for _, f := range u {
		tp, err := Generate(c, f, rng)
		if err != nil {
			continue
		}
		generated++
		if DetectsSequence(c, f, [][]bool{tp.Init, tp.Excite}) {
			detected++
		}
	}
	if generated < len(u)*9/10 {
		t.Fatalf("generated tests for only %d of %d stuck-opens", generated, len(u))
	}
	if detected != generated {
		t.Fatalf("%d of %d generated two-pattern tests failed to detect", generated-detected, generated)
	}
}

// TestOrderingMatters: the same patterns in a different order can miss
// the fault — single-pattern (combinational) thinking fails.
func TestOrderingMatters(t *testing.T) {
	c := nandGate()
	y, _ := c.NetByName("y")
	f := Fault{Gate: y, Pin: 0, Network: PullDown}
	init := []bool{false, true} // drives 1
	excite := []bool{true, true}
	if !DetectsSequence(c, f, [][]bool{init, excite}) {
		t.Fatal("correct order must detect")
	}
	if DetectsSequence(c, f, [][]bool{excite, init}) {
		t.Fatal("reversed order must miss (node discharged at power-up)")
	}
}

// TestSSASetCanMissStuckOpens: a 100%-stuck-at test set, applied in an
// adversarial order, leaves stuck-open faults undetected; dedicated
// two-pattern tests catch them.
func TestSSASetCanMissStuckOpens(t *testing.T) {
	c := circuits.C17()
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	gen := atpg.Generate(c, atpg.PrimaryView(c), cl.Reps, atpg.Config{Engine: atpg.EnginePodem})
	if gen.RawCover < 1.0 {
		t.Fatalf("setup: SSA coverage %.3f", gen.RawCover)
	}
	u := Universe(c)
	rng := rand.New(rand.NewSource(5))

	// Find SOME ordering of the SSA set that misses at least one
	// stuck-open (usually easy — the set was built with no ordering
	// discipline at all).
	missed := -1
	pats := append([][]bool(nil), gen.Patterns...)
	for trial := 0; trial < 50 && missed < 0; trial++ {
		rng.Shuffle(len(pats), func(i, j int) { pats[i], pats[j] = pats[j], pats[i] })
		det := GradeSequence(c, u, pats)
		if det < len(u) {
			missed = len(u) - det
		}
	}
	if missed < 0 {
		t.Skip("every ordering of this SSA set happened to catch all stuck-opens")
	}
	// Dedicated two-pattern tests do better than the bad ordering.
	det2, gen2 := GradeTwoPattern(c, u, rng)
	if gen2 == 0 || det2 < len(u)-missed {
		t.Fatalf("two-pattern tests detected %d; bad ordering detected %d", det2, len(u)-missed)
	}
}

func TestUniverseShape(t *testing.T) {
	c := circuits.C17()
	u := Universe(c)
	// 6 NAND gates × 2 pins × 2 networks = 24.
	if len(u) != 24 {
		t.Fatalf("universe %d, want 24", len(u))
	}
	mix := circuits.RippleAdder(2) // contains XOR/AND/OR — unsupported
	for _, f := range Universe(mix) {
		if !Supported(mix.Gates[f.Gate].Type) {
			t.Fatalf("unsupported gate in universe: %s", f.Name(mix))
		}
	}
}

func TestNewMachineRejectsUnsupported(t *testing.T) {
	c := circuits.RippleAdder(2)
	var andGate int = -1
	for id, g := range c.Gates {
		if g.Type == logic.And {
			andGate = id
			break
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMachine(c, Fault{Gate: andGate, Pin: 0, Network: PullDown})
}

func TestNames(t *testing.T) {
	c := nandGate()
	y, _ := c.NetByName("y")
	f := Fault{Gate: y, Pin: 1, Network: PullUp}
	if f.Name(c) != "y.in1 pull-up stuck-open" {
		t.Fatalf("name %q", f.Name(c))
	}
	if PullDown.String() != "pull-down" {
		t.Fatal("network name")
	}
}
