package diagnose

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"dft/internal/circuits"
	"dft/internal/fault"
)

func buildC17(t *testing.T, opt Options) *Dictionary {
	t.Helper()
	c := circuits.C17()
	d, err := Build(context.Background(), c, fault.Universe(c), exhaustive(5), opt)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, full := range []bool{false, true} {
		d := buildC17(t, Options{Full: full})
		var buf bytes.Buffer
		if err := d.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("full=%v: %v", full, err)
		}
		if got.NumPats != d.NumPats || len(got.Faults) != len(d.Faults) || got.NetSHA != d.NetSHA {
			t.Fatalf("header mismatch: %d/%d pats, %d/%d faults", got.NumPats, d.NumPats, len(got.Faults), len(d.Faults))
		}
		for fi := range d.Faults {
			if got.Faults[fi] != d.Faults[fi] {
				t.Fatalf("fault %d: %v != %v", fi, got.Faults[fi], d.Faults[fi])
			}
			if !equalRow(got.Row(fi), d.Row(fi)) {
				t.Fatalf("row %d differs after round-trip", fi)
			}
		}
		if got.HasFull() != full {
			t.Fatalf("full tier presence %v, want %v", got.HasFull(), full)
		}
		if full {
			for fi := range d.Faults {
				for p := 0; p < d.NumPats; p++ {
					if !equalRow(got.FullResponse(fi, p), d.FullResponse(fi, p)) {
						t.Fatalf("full response (%d,%d) differs", fi, p)
					}
				}
			}
		}
		// The pattern set itself round-trips.
		want, have := d.Patterns(), got.Patterns()
		for i := range want {
			for j := range want[i] {
				if want[i][j] != have[i][j] {
					t.Fatalf("pattern %d bit %d differs", i, j)
				}
			}
		}
		// A decoded dictionary answers lookups without a circuit...
		if got.Attached() {
			t.Fatal("decoded dictionary claims to be attached")
		}
		res, ref := got.Resolution(), d.Resolution()
		if res != ref {
			t.Fatalf("resolution %+v != %+v after decode", res, ref)
		}
		// ...and simulates devices after Attach.
		if err := got.Attach(circuits.C17(), Options{}); err != nil {
			t.Fatal(err)
		}
		f := d.Faults[3]
		sig, err := got.ObserveMachine(f)
		if err != nil {
			t.Fatal(err)
		}
		hit := false
		for _, fi := range got.Lookup(sig) {
			if got.Faults[fi] == f {
				hit = true
			}
		}
		if !hit {
			t.Fatal("decoded+attached dictionary lost the true fault")
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	d := buildC17(t, Options{})
	var buf bytes.Buffer
	if err := d.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[0] ^= 0xff
		if _, err := Decode(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "magic") {
			t.Fatalf("want bad-magic error, got %v", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{4, 40, len(raw) / 2, len(raw) - 4} {
			if _, err := Decode(bytes.NewReader(raw[:n])); err == nil {
				t.Fatalf("accepted a %d/%d-byte truncation", n, len(raw))
			}
		}
	})
	t.Run("bit flip", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		bad[len(bad)/2] ^= 1
		if _, err := Decode(bytes.NewReader(bad)); err == nil {
			t.Fatal("accepted a corrupted body")
		}
	})
	t.Run("oversized header", func(t *testing.T) {
		bad := append([]byte(nil), raw...)
		// nFaults field lives right after magic+sha+flags.
		off := 8 + 32 + 4
		for i := 0; i < 4; i++ {
			bad[off+i] = 0xff
		}
		if _, err := Decode(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "corrupt") {
			t.Fatalf("want corrupt-header error, got %v", err)
		}
	})
}

func TestAttachRejectsWrongCircuit(t *testing.T) {
	d := buildC17(t, Options{})
	var buf bytes.Buffer
	if err := d.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Attach(circuits.RippleAdder(3), Options{}); err == nil {
		t.Fatal("attached a dictionary to the wrong netlist")
	}
}
