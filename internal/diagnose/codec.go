package diagnose

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"

	"dft/internal/fault"
	"dft/internal/logic"
)

// Binary dictionary format, version 1, little-endian throughout:
//
//	magic    [8]byte  "DFTDICT\x01"
//	netsha   [32]byte sha256 of the canonical netlist
//	flags    uint32   bit 0: full tier present
//	nFaults  uint32
//	nPats    uint32
//	nInputs  uint32
//	nOutputs uint32
//	faults   nFaults × { gate int32, pin int32, sa uint8 }
//	patterns nBlocks × nInputs uint64   (packed pattern blocks)
//	rows     nFaults × patWords uint64  (compact pass/fail tier)
//	full     nFaults × nPats × poWords uint64   (iff flags bit 0)
//	check    uint64   fnv64a over every preceding byte
//
// The trailing checksum turns a truncated or bit-flipped artifact into
// an explicit decode error rather than a silently wrong diagnosis.

var dictMagic = [8]byte{'D', 'F', 'T', 'D', 'I', 'C', 'T', 1}

// dictLimit bounds the decoded dimensions so a corrupt header cannot
// provoke a multi-gigabyte allocation before the checksum is reached.
const dictLimit = 1 << 26

// hashedWriter tees writes into the running checksum.
type hashedWriter struct {
	w   io.Writer
	sum interface{ Write(p []byte) (int, error) }
}

func (hw *hashedWriter) Write(p []byte) (int, error) {
	hw.sum.Write(p)
	return hw.w.Write(p)
}

// Encode serializes the dictionary in the versioned binary format.
func (d *Dictionary) Encode(w io.Writer) error {
	sum := fnv.New64a()
	hw := &hashedWriter{w: w, sum: sum}
	put := func(v any) error { return binary.Write(hw, binary.LittleEndian, v) }

	var flags uint32
	if d.full != nil {
		flags |= 1
	}
	for _, v := range []any{
		dictMagic, d.NetSHA, flags,
		uint32(len(d.Faults)), uint32(d.NumPats),
		uint32(d.nInputs), uint32(d.numOuts),
	} {
		if err := put(v); err != nil {
			return err
		}
	}
	for _, f := range d.Faults {
		sa := uint8(0)
		if f.SA == logic.One {
			sa = 1
		}
		if err := put(struct {
			Gate, Pin int32
			SA        uint8
		}{int32(f.Gate), int32(f.Pin), sa}); err != nil {
			return err
		}
	}
	for bi := 0; bi < d.packed.NumBlocks(); bi++ {
		words, _ := d.packed.Block(bi)
		if err := put(words); err != nil {
			return err
		}
	}
	for _, row := range d.rows {
		if err := put(row); err != nil {
			return err
		}
	}
	for _, fr := range d.full {
		if err := put(fr); err != nil {
			return err
		}
	}
	return binary.Write(w, binary.LittleEndian, sum.Sum64())
}

// hashedReader tees reads into the running checksum.
type hashedReader struct {
	r   io.Reader
	sum interface{ Write(p []byte) (int, error) }
}

func (hr *hashedReader) Read(p []byte) (int, error) {
	n, err := hr.r.Read(p)
	if n > 0 {
		hr.sum.Write(p[:n])
	}
	return n, err
}

// Decode reads a dictionary back. The returned dictionary supports
// Lookup, Rank, Resolution and DistinguishingPattern immediately;
// call Attach with the original circuit before ObserveMachine or
// Diagnose. Truncation, a foreign magic, oversized dimensions and
// checksum mismatches are all explicit errors.
func Decode(r io.Reader) (*Dictionary, error) {
	sum := fnv.New64a()
	hr := &hashedReader{r: r, sum: sum}
	get := func(v any) error {
		if err := binary.Read(hr, binary.LittleEndian, v); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return fmt.Errorf("diagnose: truncated dictionary")
			}
			return err
		}
		return nil
	}

	var magic [8]byte
	if err := get(&magic); err != nil {
		return nil, err
	}
	if magic != dictMagic {
		return nil, fmt.Errorf("diagnose: bad magic %q (not a DFT dictionary, or wrong version)", magic[:])
	}
	d := &Dictionary{}
	var flags, nFaults, nPats, nInputs, nOutputs uint32
	for _, v := range []any{&d.NetSHA, &flags, &nFaults, &nPats, &nInputs, &nOutputs} {
		if err := get(v); err != nil {
			return nil, err
		}
	}
	if nFaults > dictLimit || nPats > dictLimit || nInputs > dictLimit || nOutputs > dictLimit {
		return nil, fmt.Errorf("diagnose: corrupt header (dimensions %d×%d exceed limit)", nFaults, nPats)
	}
	d.NumPats = int(nPats)
	d.nInputs = int(nInputs)
	d.numOuts = int(nOutputs)
	d.poWords = (int(nOutputs) + 63) / 64

	d.Faults = make([]fault.Fault, nFaults)
	for i := range d.Faults {
		var rec struct {
			Gate, Pin int32
			SA        uint8
		}
		if err := get(&rec); err != nil {
			return nil, err
		}
		sa := logic.Zero
		if rec.SA != 0 {
			sa = logic.One
		}
		d.Faults[i] = fault.Fault{Gate: int(rec.Gate), Pin: int(rec.Pin), SA: sa}
	}

	nBlocks := (int(nPats) + 63) / 64
	d.packed = fault.NewPackedPatterns(int(nInputs))
	blockWords := make([]uint64, nInputs)
	for bi := 0; bi < nBlocks; bi++ {
		if err := get(blockWords); err != nil {
			return nil, err
		}
		k := int(nPats) - bi*64
		if k > 64 {
			k = 64
		}
		d.packed.AppendBlock(blockWords, k)
	}

	patWords := detailWords(int(nPats))
	rowBacking := make([]uint64, int(nFaults)*patWords)
	if err := get(rowBacking); err != nil {
		return nil, err
	}
	d.rows = make([][]uint64, nFaults)
	for fi := range d.rows {
		d.rows[fi] = rowBacking[fi*patWords : (fi+1)*patWords : (fi+1)*patWords]
	}

	if flags&1 != 0 {
		stride := int(nPats) * d.poWords
		fullBacking := make([]uint64, int(nFaults)*stride)
		if err := get(fullBacking); err != nil {
			return nil, err
		}
		d.full = make([][]uint64, nFaults)
		for fi := range d.full {
			d.full[fi] = fullBacking[fi*stride : (fi+1)*stride : (fi+1)*stride]
		}
	}

	want := sum.Sum64()
	var check uint64
	if err := binary.Read(r, binary.LittleEndian, &check); err != nil {
		return nil, fmt.Errorf("diagnose: truncated dictionary (missing checksum)")
	}
	if check != want {
		return nil, fmt.Errorf("diagnose: dictionary checksum mismatch (corrupt or truncated)")
	}
	d.index()
	return d, nil
}
