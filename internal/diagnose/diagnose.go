// Package diagnose implements fault-dictionary diagnosis, the fault-
// location counterpart of the paper's testing techniques ([52]-[68]):
// pre-compute every fault's full failure response to a test set, then
// look up an observed failing device to get the candidate fault set.
// Resolution is bounded by response-equivalence — faults with identical
// dictionaries cannot be distinguished at the pins, which is exactly
// why the paper's bed-of-nails and signature probing exist.
package diagnose

import (
	"hash/fnv"

	"dft/internal/fault"
	"dft/internal/logic"
)

// Response is a device's failure behavior on a test set: one word per
// pattern, bit j set when primary output j differs from the good
// machine.
type Response [][]uint64

// hashResponse produces a lookup key.
func hashResponse(r Response) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, pat := range r {
		for _, w := range pat {
			for i := 0; i < 8; i++ {
				buf[i] = byte(w >> uint(8*i))
			}
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}

func equalResponse(a, b Response) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// Dictionary is a full-response fault dictionary.
type Dictionary struct {
	C        *logic.Circuit
	Patterns [][]bool
	Faults   []fault.Fault

	responses []Response
	byHash    map[uint64][]int
	poWords   int
}

// Build simulates every fault against every pattern and stores the
// full failure responses.
func Build(c *logic.Circuit, faults []fault.Fault, patterns [][]bool) *Dictionary {
	d := &Dictionary{
		C:        c,
		Patterns: patterns,
		Faults:   faults,
		byHash:   map[uint64][]int{},
		poWords:  (len(c.POs) + 63) / 64,
	}
	d.responses = make([]Response, len(faults))
	for i := range d.responses {
		d.responses[i] = make(Response, len(patterns))
		for p := range d.responses[i] {
			d.responses[i][p] = make([]uint64, d.poWords)
		}
	}
	ps := fault.NewParallelSim(c)
	for base := 0; base < len(patterns); base += 64 {
		end := base + 64
		if end > len(patterns) {
			end = len(patterns)
		}
		k := ps.LoadBlock(patterns[base:end])
		for fi, f := range faults {
			ps.FaultMask(f)
			for j, po := range c.POs {
				diff := ps.FaultyWord(po) ^ ps.GoodWord(po)
				for b := 0; b < k; b++ {
					if diff>>uint(b)&1 == 1 {
						d.responses[fi][base+b][j/64] |= 1 << uint(j%64)
					}
				}
			}
		}
	}
	for fi := range d.responses {
		h := hashResponse(d.responses[fi])
		d.byHash[h] = append(d.byHash[h], fi)
	}
	return d
}

// ResponseOf returns the stored response for fault index fi.
func (d *Dictionary) ResponseOf(fi int) Response { return d.responses[fi] }

// Lookup returns the indices of faults whose dictionary entry matches
// the observed response exactly.
func (d *Dictionary) Lookup(obs Response) []int {
	var out []int
	for _, fi := range d.byHash[hashResponse(obs)] {
		if equalResponse(d.responses[fi], obs) {
			out = append(out, fi)
		}
	}
	return out
}

// ObserveMachine runs the test set against a defective device (the
// faulty machine for f) and returns its response.
func (d *Dictionary) ObserveMachine(f fault.Fault) Response {
	obs := make(Response, len(d.Patterns))
	for p := range obs {
		obs[p] = make([]uint64, d.poWords)
	}
	ps := fault.NewParallelSim(d.C)
	for base := 0; base < len(d.Patterns); base += 64 {
		end := base + 64
		if end > len(d.Patterns) {
			end = len(d.Patterns)
		}
		k := ps.LoadBlock(d.Patterns[base:end])
		ps.FaultMask(f)
		for j, po := range d.C.POs {
			diff := ps.FaultyWord(po) ^ ps.GoodWord(po)
			for b := 0; b < k; b++ {
				if diff>>uint(b)&1 == 1 {
					obs[base+b][j/64] |= 1 << uint(j%64)
				}
			}
		}
	}
	return obs
}

// Diagnose observes the defective device and returns the candidate
// faults. The true fault is always among them (when it is in the
// modeled list); the candidate set is its response-equivalence class.
func (d *Dictionary) Diagnose(f fault.Fault) []fault.Fault {
	idx := d.Lookup(d.ObserveMachine(f))
	out := make([]fault.Fault, len(idx))
	for i, fi := range idx {
		out[i] = d.Faults[fi]
	}
	return out
}

// Resolution summarizes diagnostic power: the histogram of response-
// equivalence class sizes and the mean candidates per detected fault.
type Resolution struct {
	Classes    int
	MeanSize   float64
	MaxSize    int
	Undetected int // faults with an all-zero response (invisible)
}

// Resolution computes the summary.
func (d *Dictionary) Resolution() Resolution {
	var r Resolution
	seen := map[uint64][]int{}
	for fi := range d.responses {
		zero := true
	scan:
		for _, pat := range d.responses[fi] {
			for _, w := range pat {
				if w != 0 {
					zero = false
					break scan
				}
			}
		}
		if zero {
			r.Undetected++
			continue
		}
		h := hashResponse(d.responses[fi])
		seen[h] = append(seen[h], fi)
	}
	total := 0
	for _, members := range seen {
		// Split hash buckets into true classes.
		var classes [][]int
		for _, fi := range members {
			placed := false
			for ci := range classes {
				if equalResponse(d.responses[fi], d.responses[classes[ci][0]]) {
					classes[ci] = append(classes[ci], fi)
					placed = true
					break
				}
			}
			if !placed {
				classes = append(classes, []int{fi})
			}
		}
		for _, cl := range classes {
			r.Classes++
			total += len(cl)
			if len(cl) > r.MaxSize {
				r.MaxSize = len(cl)
			}
		}
	}
	if r.Classes > 0 {
		r.MeanSize = float64(total) / float64(r.Classes)
	}
	return r
}

// DistinguishingPattern searches the pattern set for an index on which
// two faults respond differently (useful for adaptive diagnosis);
// returns -1 when the test set cannot tell them apart.
func (d *Dictionary) DistinguishingPattern(fi, fj int) int {
	a, b := d.responses[fi], d.responses[fj]
	for p := range a {
		for w := range a[p] {
			if a[p][w] != b[p][w] {
				return p
			}
		}
	}
	return -1
}
