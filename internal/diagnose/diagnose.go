// Package diagnose implements fault-dictionary diagnosis, the fault-
// location counterpart of the paper's testing techniques ([52]-[68]):
// pre-compute every fault's failure behavior on a test set, then look
// up an observed failing device to get the candidate fault set.
//
// The store is a compact binary pass/fail dictionary: one packed row
// of detect bits per fault (bit p set when pattern p fails at the
// view outputs), graded by the fault engine's detail path — any
// backend, worker-invariant, context-cancellable — with an optional
// per-output full-response tier for testers that capture which pins
// failed, not just that some pin did. Lookup goes beyond exact match:
// Hamming-distance ranking tolerates partially observed or truncated
// tester responses, and DistinguishingPattern drives adaptive
// narrowing when the pins alone cannot separate candidates.
// Resolution is bounded by response-equivalence — faults with
// identical rows cannot be distinguished at the pins, which is
// exactly why the paper's bed-of-nails and signature probing exist.
package diagnose

import (
	"context"
	"crypto/sha256"
	"fmt"
	"hash/fnv"
	"math/bits"
	"sort"
	"strconv"
	"sync"

	"dft/internal/fault"
	"dft/internal/logic"
	"dft/internal/telemetry"
)

// Signature is an observed device response to the dictionary's test
// set: bit p set when pattern p failed (differed from the good
// machine on some view output). N is the number of patterns actually
// observed — a truncated tester log has N smaller than the
// dictionary's pattern count, and ranking only scores the observed
// prefix.
type Signature struct {
	N    int
	Bits []uint64
}

// NewSignature allocates an all-passing signature over n patterns.
func NewSignature(n int) Signature {
	return Signature{N: n, Bits: make([]uint64, detailWords(n))}
}

// detailWords is the packed word count for n patterns.
func detailWords(n int) int { return (n + 63) / 64 }

// Set marks pattern p as failing.
func (s Signature) Set(p int) { s.Bits[p/64] |= 1 << (uint(p) % 64) }

// Fails reports whether pattern p failed.
func (s Signature) Fails(p int) bool {
	return p < s.N && s.Bits[p/64]>>(uint(p)%64)&1 == 1
}

// Weight is the number of failing patterns.
func (s Signature) Weight() int {
	w := 0
	for _, word := range s.Bits {
		w += bits.OnesCount64(word)
	}
	return w
}

// String renders the signature as a 0/1 string, '1' = failing, one
// character per observed pattern — the service wire format.
func (s Signature) String() string {
	out := make([]byte, s.N)
	for p := 0; p < s.N; p++ {
		if s.Fails(p) {
			out[p] = '1'
		} else {
			out[p] = '0'
		}
	}
	return string(out)
}

// ParseSignature parses the 0/1 wire format. Any length is accepted;
// a string shorter than the dictionary's pattern count is a truncated
// observation and ranks over its prefix only.
func ParseSignature(s string) (Signature, error) {
	sig := NewSignature(len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '1':
			sig.Set(i)
		case '0':
		default:
			return Signature{}, fmt.Errorf("diagnose: signature byte %d is %q (want 0 or 1)", i, s[i])
		}
	}
	return sig, nil
}

// hashRow is the lookup key over a packed row.
func hashRow(row []uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, w := range row {
		for i := 0; i < 8; i++ {
			buf[i] = byte(w >> uint(8*i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

func equalRow(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Options configures Build and Attach. The zero value grades on the
// automatic backend with one worker per CPU over the primary view and
// stores only the compact pass/fail tier.
type Options struct {
	// Backend and Workers select the grading engine configuration;
	// rows are byte-identical for every choice.
	Backend fault.Backend
	Workers int
	// View names the nets the tester controls and observes.
	View fault.View
	// Full additionally stores the per-output full-response tier:
	// which view outputs failed on each pattern, not just that one
	// did. Costs |outputs| bits per fault per pattern.
	Full bool
	// Metrics receives the diagnose.* and fault.sim.* instruments;
	// nil selects telemetry.Default().
	Metrics *telemetry.Registry
}

// Dictionary is a compact binary fault dictionary: the collapsed (or
// caller-chosen) fault list, the test set it was graded against, one
// packed pass/fail row per fault, and optionally the per-output full
// responses. Build-once artifacts: Encode/Decode serialize the whole
// store keyed by the sha256 of the canonical netlist, so a service
// can cache dictionaries exactly like run reports.
//
// Lookup, Rank, Resolution and DistinguishingPattern work on any
// Dictionary, including a freshly decoded one. ObserveMachine and
// Diagnose simulate a defective device and need a circuit: Build
// attaches it, Decode leaves it detached until Attach. Those two are
// safe for concurrent use — the pooled simulator is mutex-guarded —
// so one cached dictionary can serve many service jobs at once.
type Dictionary struct {
	Faults  []fault.Fault
	NumPats int
	// NetSHA is sha256(logic.CanonicalBench(c)) of the graded circuit.
	NetSHA [32]byte

	rows    [][]uint64 // compact tier: per-fault packed detect bits
	full    [][]uint64 // optional: full[fi][p*poWords+w], bit j = output j differs
	poWords int
	numOuts int
	nInputs int

	byHash map[uint64][]int

	packed *fault.PackedPatterns
	c      *logic.Circuit
	opts   Options

	mu  sync.Mutex    // guards eng (engines are single-goroutine)
	eng *fault.Engine // pooled observer/build engine, built on Attach
}

// Build grades every fault against every pattern on the fault
// engine's detail path and stores the packed rows. The fault list is
// the caller's — production flows pass the collapsed representatives
// (fault.CollapseEquiv) so the dictionary is not inflated with
// equivalence duplicates. Cancellable between pattern blocks.
func Build(ctx context.Context, c *logic.Circuit, faults []fault.Fault, patterns [][]bool, opt Options) (*Dictionary, error) {
	reg := telemetry.OrDefault(opt.Metrics)
	ctx, span := telemetry.StartSpanCtx(ctx, reg, "diagnose.build")
	span.SetAttr("faults", strconv.Itoa(len(faults)))
	span.SetAttr("patterns", strconv.Itoa(len(patterns)))
	defer span.End()

	inputs, outputs := opt.View.Resolve(c)
	d := &Dictionary{
		Faults:  faults,
		NumPats: len(patterns),
		NetSHA:  sha256.Sum256([]byte(logic.CanonicalBench(c))),
		poWords: (len(outputs) + 63) / 64,
		numOuts: len(outputs),
		nInputs: len(inputs),
		packed:  fault.PackPatternSet(len(inputs), patterns),
		c:       c,
		opts:    opt,
	}
	d.eng = fault.NewEngine(c, d.engineOptions(reg))
	detail, err := d.eng.RunDetail(ctx, faults, d.packed)
	if err != nil {
		return nil, err
	}
	d.rows = detail.Detect
	d.index()
	if opt.Full {
		if err := d.buildFullTier(ctx, inputs, outputs); err != nil {
			return nil, err
		}
	}
	reg.Counter("diagnose.dict.builds").Inc()
	reg.Counter("diagnose.dict.faults").Add(int64(len(faults)))
	reg.Counter("diagnose.dict.patterns").Add(int64(len(patterns)))
	reg.Gauge("diagnose.dict.bytes").Set(int64(d.CompactBytes() + d.FullBytes()))
	return d, nil
}

// engineOptions is the grading configuration shared by Build and the
// pooled observer: always drop-off (rows need every bit) and quiet
// (no progress instrument churn on per-device observations).
func (d *Dictionary) engineOptions(reg *telemetry.Registry) fault.Options {
	return fault.Options{
		Backend:    d.opts.Backend,
		Workers:    d.opts.Workers,
		Drop:       fault.DropOff,
		View:       d.opts.View,
		Metrics:    reg,
		NoProgress: true,
	}
}

// index fills byHash from the rows.
func (d *Dictionary) index() {
	d.byHash = make(map[uint64][]int, len(d.rows))
	for fi := range d.rows {
		h := hashRow(d.rows[fi])
		d.byHash[h] = append(d.byHash[h], fi)
	}
}

// buildFullTier computes the per-output responses on one pooled
// simulator, reusing the packed blocks and skipping every fault/block
// pair the compact tier already proves silent.
func (d *Dictionary) buildFullTier(ctx context.Context, inputs, outputs []int) error {
	d.full = make([][]uint64, len(d.Faults))
	backing := make([]uint64, len(d.Faults)*d.NumPats*d.poWords)
	stride := d.NumPats * d.poWords
	for fi := range d.full {
		d.full[fi] = backing[fi*stride : (fi+1)*stride : (fi+1)*stride]
	}
	ps := fault.NewParallelSimView(d.c, inputs, outputs)
	for bi := 0; bi < d.packed.NumBlocks(); bi++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		words, kb := d.packed.Block(bi)
		ps.LoadPackedBlock(words, kb)
		base := bi * 64
		for fi, f := range d.Faults {
			det := d.rows[fi][bi]
			if det == 0 {
				continue // no pattern in this block fails: full words stay 0
			}
			ps.FaultMask(f)
			for j, o := range outputs {
				diff := (ps.FaultyWord(o) ^ ps.GoodWord(o)) & det
				for diff != 0 {
					b := bits.TrailingZeros64(diff)
					diff &= diff - 1
					d.full[fi][(base+b)*d.poWords+j/64] |= 1 << uint(j%64)
				}
			}
		}
	}
	return nil
}

// Attach binds a decoded dictionary to its circuit so ObserveMachine
// and Diagnose can simulate defective devices. The circuit must be
// the one the dictionary was built from: its canonical-netlist sha256
// is checked against the stored NetSHA.
func (d *Dictionary) Attach(c *logic.Circuit, opt Options) error {
	sum := sha256.Sum256([]byte(logic.CanonicalBench(c)))
	if sum != d.NetSHA {
		return fmt.Errorf("diagnose: dictionary was built for a different netlist (sha %x, circuit %x)", d.NetSHA[:8], sum[:8])
	}
	inputs, _ := opt.View.Resolve(c)
	if len(inputs) != d.nInputs {
		return fmt.Errorf("diagnose: dictionary patterns are %d wide, view has %d inputs", d.nInputs, len(inputs))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.c = c
	d.opts = opt
	d.eng = nil // rebuilt lazily under the new options
	return nil
}

// Attached reports whether the dictionary can simulate devices.
func (d *Dictionary) Attached() bool { return d.c != nil }

// Circuit returns the attached circuit (nil for a detached decode).
func (d *Dictionary) Circuit() *logic.Circuit { return d.c }

// Patterns materializes the dictionary's test set.
func (d *Dictionary) Patterns() [][]bool { return d.packed.Patterns() }

// Row returns fault fi's packed pass/fail row. Shared storage — do
// not mutate.
func (d *Dictionary) Row(fi int) []uint64 { return d.rows[fi] }

// HasFull reports whether the per-output tier is present.
func (d *Dictionary) HasFull() bool { return d.full != nil }

// FullResponse returns the packed per-output failure word(s) of fault
// fi on pattern p (bit j set when view output j differs), or nil when
// the dictionary was built without the full tier.
func (d *Dictionary) FullResponse(fi, p int) []uint64 {
	if d.full == nil {
		return nil
	}
	return d.full[fi][p*d.poWords : (p+1)*d.poWords]
}

// CompactBytes is the pass/fail tier's storage cost.
func (d *Dictionary) CompactBytes() int {
	return len(d.rows) * detailWords(d.NumPats) * 8
}

// FullBytes is the per-output tier's storage cost (0 when absent).
func (d *Dictionary) FullBytes() int {
	if d.full == nil {
		return 0
	}
	return len(d.full) * d.NumPats * d.poWords * 8
}

// Detects reports whether pattern p detects fault fi.
func (d *Dictionary) Detects(fi, p int) bool {
	return d.rows[fi][p/64]>>(uint(p)%64)&1 == 1
}

// Lookup returns the indices of faults whose row matches the observed
// signature exactly — the observed response-equivalence class. The
// signature must cover the whole test set; use Rank for truncated
// observations.
func (d *Dictionary) Lookup(sig Signature) []int {
	if sig.N != d.NumPats {
		return nil
	}
	var out []int
	for _, fi := range d.byHash[hashRow(sig.Bits)] {
		if equalRow(d.rows[fi], sig.Bits) {
			out = append(out, fi)
		}
	}
	return out
}

// Candidate is one ranked diagnosis: a modeled fault and its Hamming
// distance from the observed signature over the observed prefix.
type Candidate struct {
	Index    int
	Fault    fault.Fault
	Distance int
}

// Rank scores every fault against the observed signature — Hamming
// distance over the first sig.N patterns, so truncated tester logs
// degrade gracefully instead of failing an exact match — and returns
// the k best (all of them when k <= 0), ordered by distance then
// fault index. The true fault always scores distance 0 when the
// observation is a prefix of its true response.
func (d *Dictionary) Rank(sig Signature, k int) []Candidate {
	n := sig.N
	if n > d.NumPats {
		n = d.NumPats
	}
	words := detailWords(n)
	tail := ^uint64(0)
	if r := uint(n % 64); r != 0 {
		tail = 1<<r - 1
	}
	cands := make([]Candidate, len(d.Faults))
	for fi := range d.Faults {
		dist := 0
		row := d.rows[fi]
		for w := 0; w < words; w++ {
			x := row[w] ^ sig.Bits[w]
			if w == words-1 {
				x &= tail
			}
			dist += bits.OnesCount64(x)
		}
		cands[fi] = Candidate{Index: fi, Fault: d.Faults[fi], Distance: dist}
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].Distance != cands[j].Distance {
			return cands[i].Distance < cands[j].Distance
		}
		return cands[i].Index < cands[j].Index
	})
	if k > 0 && k < len(cands) {
		cands = cands[:k]
	}
	return cands
}

// ObserveMachine runs the test set against a defective device (the
// faulty machine for f) and returns its signature. The pooled engine
// is reused across calls — one simulator, one packing — and guarded
// by a mutex so concurrent service jobs can share the dictionary.
func (d *Dictionary) ObserveMachine(f fault.Fault) (Signature, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.c == nil {
		return Signature{}, fmt.Errorf("diagnose: dictionary is detached; Attach a circuit first")
	}
	if d.eng == nil {
		d.eng = fault.NewEngine(d.c, d.engineOptions(telemetry.OrDefault(d.opts.Metrics)))
	}
	detail, err := d.eng.RunDetail(context.Background(), []fault.Fault{f}, d.packed)
	if err != nil {
		return Signature{}, err
	}
	return Signature{N: d.NumPats, Bits: detail.Row(0)}, nil
}

// Diagnose observes the defective device and returns the candidate
// faults. The true fault is always among them (when it is in the
// modeled list); the candidate set is its response-equivalence class.
func (d *Dictionary) Diagnose(f fault.Fault) []fault.Fault {
	sig, err := d.ObserveMachine(f)
	if err != nil {
		return nil
	}
	idx := d.Lookup(sig)
	out := make([]fault.Fault, len(idx))
	for i, fi := range idx {
		out[i] = d.Faults[fi]
	}
	return out
}

// DistinguishingPattern searches the test set for a pattern on which
// two faults respond differently (the adaptive-diagnosis primitive);
// returns -1 when the set cannot tell them apart at the pins.
func (d *Dictionary) DistinguishingPattern(fi, fj int) int {
	a, b := d.rows[fi], d.rows[fj]
	for w := range a {
		if x := a[w] ^ b[w]; x != 0 {
			return w*64 + bits.TrailingZeros64(x)
		}
	}
	return -1
}

// Narrow adaptively shrinks a candidate set: while at least two
// candidates disagree on some pattern, it queries the observe oracle
// (true = the device fails that pattern — a re-applied tester vector)
// and keeps only the candidates consistent with the answer. budget
// bounds the queries (<= 0 means unbounded); the narrowed set and the
// query count are returned. With a truthful oracle the true fault's
// class always survives.
func (d *Dictionary) Narrow(cands []int, budget int, observe func(p int) bool) ([]int, int) {
	queries := 0
	cur := append([]int(nil), cands...)
	for len(cur) > 1 && (budget <= 0 || queries < budget) {
		p := -1
		for i := 1; i < len(cur) && p < 0; i++ {
			p = d.DistinguishingPattern(cur[0], cur[i])
		}
		if p < 0 {
			break // response-equivalent at the pins; probing territory
		}
		fails := observe(p)
		queries++
		kept := cur[:0]
		for _, fi := range cur {
			if d.Detects(fi, p) == fails {
				kept = append(kept, fi)
			}
		}
		cur = kept
	}
	return cur, queries
}

// Resolution summarizes diagnostic power: the histogram of response-
// equivalence class sizes and the mean candidates per detected fault.
type Resolution struct {
	Classes    int
	MeanSize   float64
	MaxSize    int
	Undetected int // faults with an all-zero row (invisible)
}

// Resolution computes the summary from the index Build (or Decode)
// already populated — no re-hashing.
func (d *Dictionary) Resolution() Resolution {
	var r Resolution
	total := 0
	for _, members := range d.byHash {
		// Split hash buckets into true classes.
		var classes [][]int
		for _, fi := range members {
			placed := false
			for ci := range classes {
				if equalRow(d.rows[fi], d.rows[classes[ci][0]]) {
					classes[ci] = append(classes[ci], fi)
					placed = true
					break
				}
			}
			if !placed {
				classes = append(classes, []int{fi})
			}
		}
		for _, cl := range classes {
			if zeroRow(d.rows[cl[0]]) {
				r.Undetected += len(cl)
				continue
			}
			r.Classes++
			total += len(cl)
			if len(cl) > r.MaxSize {
				r.MaxSize = len(cl)
			}
		}
	}
	if r.Classes > 0 {
		r.MeanSize = float64(total) / float64(r.Classes)
	}
	return r
}

func zeroRow(row []uint64) bool {
	for _, w := range row {
		if w != 0 {
			return false
		}
	}
	return true
}
