package diagnose

import (
	"math/rand"
	"testing"

	"dft/internal/circuits"
	"dft/internal/fault"
)

func exhaustive(n int) [][]bool {
	out := make([][]bool, 1<<uint(n))
	for x := range out {
		p := make([]bool, n)
		for i := range p {
			p[i] = x>>uint(i)&1 == 1
		}
		out[x] = p
	}
	return out
}

func TestDiagnoseContainsTrueFault(t *testing.T) {
	c := circuits.C17()
	u := fault.Universe(c)
	d := Build(c, u, exhaustive(5))
	for _, f := range u {
		cands := d.Diagnose(f)
		found := false
		for _, cf := range cands {
			if cf == f {
				found = true
			}
		}
		if !found {
			t.Fatalf("true fault %s missing from its own diagnosis", f.Name(c))
		}
	}
}

// TestDiagnosisClassesMatchEquivalence: with exhaustive patterns, two
// faults share a dictionary entry iff they are functionally
// response-equivalent; structural equivalence classes must land in one
// diagnosis class together.
func TestDiagnosisClassesMatchEquivalence(t *testing.T) {
	c := circuits.C17()
	u := fault.Universe(c)
	cl := fault.CollapseEquiv(c, u)
	d := Build(c, u, exhaustive(5))
	for i, fi := range u {
		for j, fj := range u {
			if j <= i {
				continue
			}
			if cl.ClassOf[fi] != cl.ClassOf[fj] {
				continue
			}
			// Structurally equivalent faults must be indistinguishable.
			if d.DistinguishingPattern(i, j) != -1 {
				t.Fatalf("equivalent faults %s / %s distinguished", fi.Name(c), fj.Name(c))
			}
		}
	}
}

func TestResolutionSummary(t *testing.T) {
	c := circuits.RippleAdder(3)
	u := fault.Universe(c)
	d := Build(c, u, exhaustive(len(c.PIs)))
	r := d.Resolution()
	if r.Undetected != 0 {
		t.Fatalf("%d faults invisible to exhaustive patterns on an irredundant adder", r.Undetected)
	}
	if r.Classes == 0 || r.MeanSize < 1 {
		t.Fatalf("degenerate resolution %+v", r)
	}
	// Collapsing bound: diagnosis classes cannot be finer than 1 fault
	// nor coarser than the whole universe.
	if r.MaxSize >= len(u) {
		t.Fatalf("one giant class of %d", r.MaxSize)
	}
	// Pin-level diagnosis should resolve most faults to small classes.
	if r.MeanSize > 4 {
		t.Fatalf("mean class size %.2f too coarse", r.MeanSize)
	}
}

func TestDistinguishingPattern(t *testing.T) {
	c := circuits.C17()
	u := fault.Universe(c)
	d := Build(c, u, exhaustive(5))
	// Find two detected faults in different classes and check the
	// distinguishing pattern actually separates their responses.
	for i := range u {
		for j := i + 1; j < len(u); j++ {
			p := d.DistinguishingPattern(i, j)
			if p < 0 {
				continue
			}
			a, b := d.ResponseOf(i)[p], d.ResponseOf(j)[p]
			same := true
			for w := range a {
				if a[w] != b[w] {
					same = false
				}
			}
			if same {
				t.Fatalf("pattern %d does not distinguish %s / %s", p, u[i].Name(c), u[j].Name(c))
			}
			return
		}
	}
	t.Fatal("no distinguishable pair found")
}

func TestDictionaryWithRandomPatterns(t *testing.T) {
	// Fewer patterns → coarser resolution, but diagnosis stays sound.
	c := circuits.RippleAdder(4)
	u := fault.Universe(c)
	rng := rand.New(rand.NewSource(6))
	pats := make([][]bool, 32)
	for i := range pats {
		p := make([]bool, len(c.PIs))
		for j := range p {
			p[j] = rng.Intn(2) == 1
		}
		pats[i] = p
	}
	d := Build(c, u, pats)
	full := Build(c, u, exhaustive(len(c.PIs)))
	if d.Resolution().Classes > full.Resolution().Classes {
		t.Fatal("fewer patterns cannot give finer resolution")
	}
	for _, f := range u[:20] {
		cands := d.Diagnose(f)
		found := false
		for _, cf := range cands {
			if cf == f {
				found = true
			}
		}
		if !found {
			t.Fatalf("true fault %s missing under random dictionary", f.Name(c))
		}
	}
}
