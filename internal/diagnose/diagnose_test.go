package diagnose

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"dft/internal/circuits"
	"dft/internal/fault"
)

func exhaustive(n int) [][]bool {
	out := make([][]bool, 1<<uint(n))
	for x := range out {
		p := make([]bool, n)
		for i := range p {
			p[i] = x>>uint(i)&1 == 1
		}
		out[x] = p
	}
	return out
}

func randomPatterns(nIn, n int, seed int64) [][]bool {
	rng := rand.New(rand.NewSource(seed))
	pats := make([][]bool, n)
	for i := range pats {
		p := make([]bool, nIn)
		for j := range p {
			p[j] = rng.Intn(2) == 1
		}
		pats[i] = p
	}
	return pats
}

func TestDiagnoseContainsTrueFault(t *testing.T) {
	c := circuits.C17()
	u := fault.Universe(c)
	d, err := Build(context.Background(), c, u, exhaustive(5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range u {
		cands := d.Diagnose(f)
		found := false
		for _, cf := range cands {
			if cf == f {
				found = true
			}
		}
		if !found {
			t.Fatalf("true fault %s missing from its own diagnosis", f.Name(c))
		}
	}
}

// TestTrueFaultInCandidatesAcrossEngines is the worker/backend
// invariance property of the dictionary: for every grading backend and
// worker count, the injected fault is always in its own candidate set
// and the rows are byte-identical to the single-worker parallel
// reference.
func TestTrueFaultInCandidatesAcrossEngines(t *testing.T) {
	c := circuits.RippleAdder(3)
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	pats := randomPatterns(len(c.PIs), 96, 11)

	ref, err := Build(context.Background(), c, cl.Reps, pats, Options{Backend: fault.BackendParallel, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	backends := []fault.Backend{fault.BackendParallel, fault.BackendFaultParallel, fault.BackendCPT}
	for _, be := range backends {
		for _, w := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("%v/w%d", be, w), func(t *testing.T) {
				d, err := Build(context.Background(), c, cl.Reps, pats, Options{Backend: be, Workers: w})
				if err != nil {
					t.Fatal(err)
				}
				for fi := range cl.Reps {
					if !equalRow(d.Row(fi), ref.Row(fi)) {
						t.Fatalf("fault %d row differs from reference", fi)
					}
				}
				for fi, f := range cl.Reps {
					sig, err := d.ObserveMachine(f)
					if err != nil {
						t.Fatal(err)
					}
					hit := false
					for _, ci := range d.Lookup(sig) {
						if ci == fi {
							hit = true
						}
					}
					if !hit {
						t.Fatalf("injected fault %s missing from exact lookup", f.Name(c))
					}
					if r := d.Rank(sig, 1); len(r) == 0 || r[0].Distance != 0 {
						t.Fatalf("injected fault %s: best ranked distance %d, want 0", f.Name(c), r[0].Distance)
					}
				}
			})
		}
	}
}

// TestRankTruncatedSignature: a tester log cut short still ranks the
// true fault at distance 0 over the observed prefix, and the candidate
// list degrades gracefully (it grows, never losing the true fault).
func TestRankTruncatedSignature(t *testing.T) {
	c := circuits.RippleAdder(4)
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	pats := randomPatterns(len(c.PIs), 128, 3)
	d, err := Build(context.Background(), c, cl.Reps, pats, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for fi, f := range cl.Reps[:10] {
		full, err := d.ObserveMachine(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{128, 64, 37, 16} {
			trunc := NewSignature(n)
			for p := 0; p < n; p++ {
				if full.Fails(p) {
					trunc.Set(p)
				}
			}
			ranked := d.Rank(trunc, 0)
			pos := -1
			for i, cand := range ranked {
				if cand.Index == fi {
					pos = i
					break
				}
			}
			if pos < 0 {
				t.Fatalf("fault %d absent from full ranking at n=%d", fi, n)
			}
			if ranked[pos].Distance != 0 {
				t.Fatalf("true fault at distance %d under truncation n=%d, want 0", ranked[pos].Distance, n)
			}
		}
	}
}

// TestRankParseSignatureWire exercises the service wire format: a
// signature string round-trips, and a corrupted digit is rejected.
func TestRankParseSignatureWire(t *testing.T) {
	sig := NewSignature(70)
	sig.Set(0)
	sig.Set(63)
	sig.Set(69)
	back, err := ParseSignature(sig.String())
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != sig.String() || back.Weight() != 3 {
		t.Fatalf("round-trip %q != %q", back.String(), sig.String())
	}
	if _, err := ParseSignature("0102"); err == nil {
		t.Fatal("accepted a non-binary signature")
	}
}

// TestDiagnosisClassesMatchEquivalence: with exhaustive patterns,
// structurally equivalent faults must be response-indistinguishable.
func TestDiagnosisClassesMatchEquivalence(t *testing.T) {
	c := circuits.C17()
	u := fault.Universe(c)
	cl := fault.CollapseEquiv(c, u)
	d, err := Build(context.Background(), c, u, exhaustive(5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, fi := range u {
		for j, fj := range u {
			if j <= i {
				continue
			}
			if cl.ClassOf[fi] != cl.ClassOf[fj] {
				continue
			}
			if d.DistinguishingPattern(i, j) != -1 {
				t.Fatalf("equivalent faults %s / %s distinguished", fi.Name(c), fj.Name(c))
			}
		}
	}
}

func TestResolutionSummary(t *testing.T) {
	c := circuits.RippleAdder(3)
	u := fault.Universe(c)
	d, err := Build(context.Background(), c, u, exhaustive(len(c.PIs)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := d.Resolution()
	if r.Undetected != 0 {
		t.Fatalf("%d faults invisible to exhaustive patterns on an irredundant adder", r.Undetected)
	}
	if r.Classes == 0 || r.MeanSize < 1 {
		t.Fatalf("degenerate resolution %+v", r)
	}
	if r.MaxSize >= len(u) {
		t.Fatalf("one giant class of %d", r.MaxSize)
	}
	if r.MeanSize > 4 {
		t.Fatalf("mean class size %.2f too coarse", r.MeanSize)
	}
}

// TestFullResponseTier: the per-output tier agrees with the compact
// tier (a pattern fails iff some output word is nonzero) and a
// distinguishing pattern shows differing responses.
func TestFullResponseTier(t *testing.T) {
	c := circuits.C17()
	u := fault.Universe(c)
	d, err := Build(context.Background(), c, u, exhaustive(5), Options{Full: true})
	if err != nil {
		t.Fatal(err)
	}
	if !d.HasFull() {
		t.Fatal("full tier missing")
	}
	for fi := range u {
		for p := 0; p < d.NumPats; p++ {
			any := false
			for _, w := range d.FullResponse(fi, p) {
				if w != 0 {
					any = true
				}
			}
			if any != d.Detects(fi, p) {
				t.Fatalf("fault %d pattern %d: full tier %v, compact tier %v", fi, p, any, d.Detects(fi, p))
			}
		}
	}
	for i := range u {
		for j := i + 1; j < len(u); j++ {
			p := d.DistinguishingPattern(i, j)
			if p < 0 {
				continue
			}
			if d.Detects(i, p) == d.Detects(j, p) {
				t.Fatalf("pattern %d does not distinguish %s / %s", p, u[i].Name(c), u[j].Name(c))
			}
			return
		}
	}
	t.Fatal("no distinguishable pair found")
}

// TestNarrow: adaptive narrowing with a truthful oracle converges to
// the true fault's response class.
func TestNarrow(t *testing.T) {
	c := circuits.RippleAdder(3)
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	pats := randomPatterns(len(c.PIs), 64, 5)
	d, err := Build(context.Background(), c, cl.Reps, pats, Options{})
	if err != nil {
		t.Fatal(err)
	}
	truth := cl.Reps[7]
	sig, err := d.ObserveMachine(truth)
	if err != nil {
		t.Fatal(err)
	}
	// Start from a deliberately coarse candidate set: top 10 by rank.
	var cands []int
	for _, cand := range d.Rank(sig, 10) {
		cands = append(cands, cand.Index)
	}
	final, queries := d.Narrow(cands, 0, func(p int) bool { return sig.Fails(p) })
	hit := false
	for _, fi := range final {
		if cl.Reps[fi] == truth {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("true fault eliminated by narrowing (%d queries, %d left)", queries, len(final))
	}
	// Everything left must be response-equivalent to the truth.
	for _, fi := range final[1:] {
		if d.DistinguishingPattern(final[0], fi) != -1 {
			t.Fatalf("narrowed set still distinguishable after %d queries", queries)
		}
	}
}

func TestDictionaryWithRandomPatterns(t *testing.T) {
	c := circuits.RippleAdder(4)
	u := fault.Universe(c)
	d, err := Build(context.Background(), c, u, randomPatterns(len(c.PIs), 32, 6), Options{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Build(context.Background(), c, u, exhaustive(len(c.PIs)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Resolution().Classes > full.Resolution().Classes {
		t.Fatal("fewer patterns cannot give finer resolution")
	}
	for _, f := range u[:20] {
		cands := d.Diagnose(f)
		found := false
		for _, cf := range cands {
			if cf == f {
				found = true
			}
		}
		if !found {
			t.Fatalf("true fault %s missing under random dictionary", f.Name(c))
		}
	}
}

func TestBuildCancellation(t *testing.T) {
	c := circuits.ArrayMultiplier(4)
	u := fault.Universe(c)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Build(ctx, c, u, randomPatterns(len(c.PIs), 256, 1), Options{}); err == nil {
		t.Fatal("cancelled build returned no error")
	}
}
