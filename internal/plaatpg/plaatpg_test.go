package plaatpg

import (
	"context"
	"math/rand"
	"testing"

	"dft/internal/circuits"
	"dft/internal/fault"
)

// wideSpec builds the Fig. 22 adversary: wide product terms.
func wideSpec(rng *rand.Rand, nIn, nTerms, width int) Spec {
	s := Spec{NIn: nIn}
	for t := 0; t < nTerms; t++ {
		cube := make(circuits.Cube, nIn)
		perm := rng.Perm(nIn)
		for _, i := range perm[:width] {
			if rng.Intn(2) == 0 {
				cube[i] = 1
			} else {
				cube[i] = -1
			}
		}
		s.Cubes = append(s.Cubes, cube)
	}
	// Two outputs, each reading half the terms.
	s.Outputs = make([][]int, 2)
	for t := 0; t < nTerms; t++ {
		s.Outputs[t%2] = append(s.Outputs[t%2], t)
	}
	return s
}

func TestValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := wideSpec(rng, 12, 4, 10)
	if err := Validate(s); err != nil {
		t.Fatal(err)
	}
	bad := s
	bad.Outputs = [][]int{{99}}
	if err := Validate(bad); err == nil {
		t.Fatal("bad term reference accepted")
	}
}

// TestDeterministicBeatsRandomOnWidePLA is the [84] claim: a linear-
// size deterministic set reaches near-complete coverage on a PLA where
// thousands of random patterns stall.
func TestDeterministicBeatsRandomOnWidePLA(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := wideSpec(rng, 18, 6, 16)
	c, pats, _ := BuildAndTest("widepla", s)
	cov, caught, total := TestableCoverage(c, pats)
	if cov < 0.95 {
		t.Fatalf("deterministic coverage %.3f (%d/%d) with %d patterns",
			cov, caught, total, len(pats))
	}
	// Random at 8x the budget stalls far below.
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	rpats := make([][]bool, 8*len(pats))
	for i := range rpats {
		p := make([]bool, s.NIn)
		for j := range p {
			p[j] = rng.Intn(2) == 1
		}
		rpats[i] = p
	}
	rres, err := fault.Simulate(context.Background(), c, cl.Reps, rpats, fault.Options{Backend: fault.BackendParallel})
	if err != nil {
		t.Fatal(err)
	}
	if rres.Coverage() > cov/2 {
		t.Fatalf("random coverage %.3f unexpectedly close to deterministic %.3f",
			rres.Coverage(), cov)
	}
}

func TestSetSizeLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := wideSpec(rng, 20, 8, 20)
	det, exh, hardest := Sizes(s)
	if det != 8*(1+20) {
		t.Fatalf("deterministic size %d, want %d", det, 8*21)
	}
	if exh != 1048576 || hardest != 1048576 {
		t.Fatalf("exhaustive %.0f hardest-random %.0f", exh, hardest)
	}
	pats := Generate(s)
	if len(pats) != det {
		t.Fatalf("generated %d patterns, Sizes says %d", len(pats), det)
	}
}

func TestActivationFiresOnlyTargetTermWhenPossible(t *testing.T) {
	// Two disjoint-literal terms on one output: activation of term 0
	// must keep term 1 off.
	s := Spec{
		NIn: 4,
		Cubes: []circuits.Cube{
			{1, 1, 0, 0},
			{0, 0, 1, 1},
		},
		Outputs: [][]int{{0, 1}},
	}
	act := s.activation(0)
	if !act[0] || !act[1] {
		t.Fatal("activation violates its own literals")
	}
	// Term 1 must be off: not both act[2] and act[3].
	if act[2] && act[3] {
		t.Fatal("sibling term left on")
	}
}

func TestSmallPLAFullCoverage(t *testing.T) {
	// XOR as PLA: complete stuck-at coverage of reachable logic.
	s := Spec{
		NIn:     2,
		Cubes:   []circuits.Cube{{1, -1}, {-1, 1}},
		Outputs: [][]int{{0, 1}},
	}
	c, pats, _ := BuildAndTest("xorpla", s)
	cov, _, _ := TestableCoverage(c, pats)
	if cov < 1.0 {
		t.Fatalf("xor PLA coverage %.3f", cov)
	}
	_ = pats
}
