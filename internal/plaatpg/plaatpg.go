// Package plaatpg implements deterministic test generation for PLA
// structures — Muehldorf & Williams' "optimized stuck fault test
// patterns for PLA macros" ([84] in the paper), the constructive
// answer to Fig. 22's random-pattern resistance.
//
// For a two-level AND-OR PLA the stuck-at universe has a crisp
// structure, and a small deterministic set covers it:
//
//   - term activation: for each product term, the unique pattern
//     satisfying all its literals (other terms feeding the same outputs
//     held off when possible) tests every literal s-a-0 at once, the
//     term's output s-a-0, and the OR inputs;
//   - literal walk: for each literal of each term, the activation
//     pattern with that one literal complemented tests the literal's
//     s-a-1 (the term must NOT fire through a broken literal).
//
// The set size is Σ(1 + width(term)) — linear in the PLA description
// where exhaustive testing is 2ⁿ and random testing needs ~2^width per
// term.
package plaatpg

import (
	"context"
	"fmt"

	"dft/internal/circuits"
	"dft/internal/fault"
	"dft/internal/logic"
)

// Spec describes the PLA being tested: it must have been produced by
// circuits.PLA (inputs I0.., product gates PT0.., outputs Y0..).
type Spec struct {
	NIn     int
	Cubes   []circuits.Cube
	Outputs [][]int
}

// termReaders inverts the output lists: for each term, which outputs
// read it.
func (s Spec) termReaders() [][]int {
	readers := make([][]int, len(s.Cubes))
	for out, terms := range s.Outputs {
		for _, t := range terms {
			readers[t] = append(readers[t], out)
		}
	}
	return readers
}

// activation returns the input pattern that fires term t and, where
// the free inputs allow, keeps sibling terms (sharing an output with
// t) off so the term's firing is observable.
func (s Spec) activation(t int) []bool {
	p := make([]bool, s.NIn)
	fixed := make([]bool, s.NIn)
	for i, l := range s.Cubes[t] {
		switch {
		case l > 0:
			p[i] = true
			fixed[i] = true
		case l < 0:
			p[i] = false
			fixed[i] = true
		}
	}
	// Greedily disable each sibling term by violating one of its free
	// literals.
	readers := s.termReaders()
	shared := map[int]bool{}
	for _, out := range readers[t] {
		for _, other := range s.Outputs[out] {
			if other != t {
				shared[other] = true
			}
		}
	}
	for other := range shared {
		satisfiedByFixed := true
		for i, l := range s.Cubes[other] {
			if l == 0 {
				continue
			}
			want := l > 0
			if fixed[i] && p[i] != want {
				satisfiedByFixed = false
				break
			}
		}
		if !satisfiedByFixed {
			continue // already off under the fixed literals
		}
		// Violate a free literal of the sibling.
		for i, l := range s.Cubes[other] {
			if l == 0 || fixed[i] {
				continue
			}
			p[i] = l < 0 // the opposite of what the sibling wants
			fixed[i] = true
			break
		}
	}
	return p
}

// Generate builds the deterministic PLA test set.
func Generate(s Spec) [][]bool {
	var out [][]bool
	for t := range s.Cubes {
		act := s.activation(t)
		out = append(out, act)
		for i, l := range s.Cubes[t] {
			if l == 0 {
				continue
			}
			walk := append([]bool(nil), act...)
			walk[i] = !walk[i]
			out = append(out, walk)
		}
	}
	return out
}

// BuildAndTest constructs the PLA circuit from the spec, generates the
// deterministic set, and fault-grades it; it returns the circuit, the
// patterns and the coverage.
func BuildAndTest(name string, s Spec) (*logic.Circuit, [][]bool, float64) {
	c := circuits.PLA(name, s.NIn, s.Cubes, s.Outputs)
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	pats := Generate(s)
	res, _ := fault.Simulate(context.Background(), c, cl.Reps, pats, fault.Options{})
	return c, pats, res.Coverage()
}

// TestableCoverage grades only the faults on PLA logic reachable from
// the outputs (the circuits.PLA construction instantiates an inverter
// per input even when unused, and unused inverters are untestable by
// construction). Returns coverage over the reachable-fault subset.
func TestableCoverage(c *logic.Circuit, pats [][]bool) (float64, int, int) {
	cl := fault.CollapseEquiv(c, fault.Universe(c))
	reachable := reachableFromOutputs(c)
	var targets []fault.Fault
	for _, f := range cl.Reps {
		if reachable[f.Gate] {
			targets = append(targets, f)
		}
	}
	res, _ := fault.Simulate(context.Background(), c, targets, pats, fault.Options{})
	return res.Coverage(), res.NumCaught, len(targets)
}

func reachableFromOutputs(c *logic.Circuit) []bool {
	seen := make([]bool, c.NumNets())
	var stack []int
	stack = append(stack, c.POs...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, c.Gates[n].Fanin...)
	}
	return seen
}

// Sizes reports the arithmetic of the paper's argument: deterministic
// set size vs exhaustive and expected-random sizes.
func Sizes(s Spec) (deterministic int, exhaustive float64, hardestRandom float64) {
	deterministic = 0
	maxWidth := 0
	for _, cube := range s.Cubes {
		w := 0
		for _, l := range cube {
			if l != 0 {
				w++
			}
		}
		deterministic += 1 + w
		if w > maxWidth {
			maxWidth = w
		}
	}
	exhaustive = pow2(s.NIn)
	hardestRandom = pow2(maxWidth)
	return
}

func pow2(n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= 2
	}
	return out
}

// Validate sanity-checks a spec against the generator's assumptions.
func Validate(s Spec) error {
	for t, cube := range s.Cubes {
		if len(cube) != s.NIn {
			return fmt.Errorf("plaatpg: cube %d width %d != %d inputs", t, len(cube), s.NIn)
		}
	}
	for out, terms := range s.Outputs {
		for _, t := range terms {
			if t < 0 || t >= len(s.Cubes) {
				return fmt.Errorf("plaatpg: output %d references term %d", out, t)
			}
		}
	}
	return nil
}
