package sim

import (
	"testing"

	"dft/internal/logic"
)

// mux2 builds y = a·s + b·s̄ — the classical static-1 hazard circuit.
func mux2() *logic.Circuit {
	c := logic.New("mux2")
	a := c.AddInput("a")
	b := c.AddInput("b")
	s := c.AddInput("s")
	ns := c.AddGate(logic.Not, "ns", s)
	t1 := c.AddGate(logic.And, "t1", a, s)
	t2 := c.AddGate(logic.And, "t2", b, ns)
	c.MarkOutput(c.AddGate(logic.Or, "y", t1, t2))
	return c.MustFinalize()
}

// mux2Consensus adds the consensus term a·b, the textbook hazard fix.
func mux2Consensus() *logic.Circuit {
	c := logic.New("mux2c")
	a := c.AddInput("a")
	b := c.AddInput("b")
	s := c.AddInput("s")
	ns := c.AddGate(logic.Not, "ns", s)
	t1 := c.AddGate(logic.And, "t1", a, s)
	t2 := c.AddGate(logic.And, "t2", b, ns)
	t3 := c.AddGate(logic.And, "t3", a, b)
	c.MarkOutput(c.AddGate(logic.Or, "y", t1, t2, t3))
	return c.MustFinalize()
}

func TestClassicStaticOneHazard(t *testing.T) {
	c := mux2()
	y, _ := c.NetByName("y")
	// a=b=1, s transitions 1→0: output is 1 before and after, but the
	// two AND terms hand over through the inverter — a static-1 hazard.
	p1 := []bool{true, true, true}
	p2 := []bool{true, true, false}
	cls := HazardAnalysis(c, p1, p2)
	if cls[y] != StaticHazard {
		t.Fatalf("y during s 1->0 with a=b=1: %v, want static-hazard", cls[y])
	}
	if ClockSafe(c, y, p1, p2) {
		t.Fatal("a hazardous net must not be clock-safe")
	}
}

func TestConsensusTermRemovesHazard(t *testing.T) {
	c := mux2Consensus()
	y, _ := c.NetByName("y")
	p1 := []bool{true, true, true}
	p2 := []bool{true, true, false}
	cls := HazardAnalysis(c, p1, p2)
	if cls[y] != HazardFree {
		t.Fatalf("consensus-protected output: %v, want hazard-free", cls[y])
	}
	if !ClockSafe(c, y, p1, p2) {
		t.Fatal("hazard-free net should be clock-safe")
	}
}

func TestCleanTransitionIsChanging(t *testing.T) {
	c := mux2()
	y, _ := c.NetByName("y")
	// a=1, b=0, s 1→0: output goes 1→0 — a legitimate change.
	cls := HazardAnalysis(c, []bool{true, false, true}, []bool{true, false, false})
	if cls[y] != Changing {
		t.Fatalf("got %v, want changing", cls[y])
	}
}

func TestStableInputsHazardFree(t *testing.T) {
	c := mux2()
	p := []bool{true, true, true}
	for n, cls := range HazardAnalysis(c, p, p) {
		if cls != HazardFree {
			t.Fatalf("net %s with no transition: %v", c.NameOf(n), cls)
		}
	}
}

func TestHazardousNetsList(t *testing.T) {
	c := mux2()
	nets := HazardousNets(c, []bool{true, true, true}, []bool{true, true, false})
	y, _ := c.NetByName("y")
	found := false
	for _, n := range nets {
		if n == y {
			found = true
		}
	}
	if !found {
		t.Fatal("y missing from hazardous list")
	}
}

func TestHazardClassStrings(t *testing.T) {
	for _, h := range []HazardClass{HazardFree, StaticHazard, Changing, Unsettled} {
		if h.String() == "" {
			t.Fatal("empty class name")
		}
	}
}
