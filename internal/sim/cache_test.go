package sim

import (
	"fmt"
	"strings"
	"testing"

	"dft/internal/logic"
)

func freshCircuit(i int) *logic.Circuit {
	c := logic.New(fmt.Sprintf("cache_%d", i))
	a := c.AddInput("a")
	b := c.AddInput("b")
	c.MarkOutput(c.AddGate(logic.And, "g", a, b))
	return c.MustFinalize()
}

// TestProgramCacheEviction compiles well past the cache cap and checks
// that the FIFO stays bounded and self-consistent: the sync.Map entry
// count, the age-list length, and the telemetry gauge must all agree
// at the cap, with no stale (nil or evicted) slots left behind.
func TestProgramCacheEviction(t *testing.T) {
	progCacheMu.Lock()
	progCache.Range(func(k, _ any) bool { progCache.Delete(k); return true })
	progCacheAge = nil
	progCacheMu.Unlock()

	const n = 2 * programCacheCap
	for i := 0; i < n; i++ {
		CompiledFor(freshCircuit(i))
	}

	progCacheMu.Lock()
	defer progCacheMu.Unlock()
	mapSize := 0
	progCache.Range(func(_, _ any) bool { mapSize++; return true })
	if mapSize != programCacheCap {
		t.Fatalf("map holds %d entries, want cap %d", mapSize, programCacheCap)
	}
	if len(progCacheAge) != programCacheCap {
		t.Fatalf("age list holds %d entries, want cap %d", len(progCacheAge), programCacheCap)
	}
	if g := gProgCached.Value(); g != int64(programCacheCap) {
		t.Fatalf("gauge reads %d, want %d", g, programCacheCap)
	}
	for i, c := range progCacheAge {
		if c == nil {
			t.Fatalf("age slot %d is nil", i)
		}
		if _, ok := progCache.Load(c); !ok {
			t.Fatalf("age slot %d (%s) missing from map", i, c.Name)
		}
	}
	// The eviction must also have released the backing array's head:
	// the oldest surviving entry is circuit n-cap.
	if want := fmt.Sprintf("cache_%d", n-programCacheCap); progCacheAge[0].Name != want {
		t.Fatalf("oldest survivor is %s, want %s", progCacheAge[0].Name, want)
	}
}

func TestParseKernelSuggests(t *testing.T) {
	for _, k := range []Kernel{KernelCompiled, KernelInterp} {
		got, err := ParseKernel(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKernel(%q) = %v, %v", k.String(), got, err)
		}
	}
	_, err := ParseKernel("compield")
	if err == nil || !strings.Contains(err.Error(), `did you mean "compiled"?`) {
		t.Fatalf("want did-you-mean error, got %v", err)
	}
	_, err = ParseKernel("zzzzzzzz")
	if err == nil || strings.Contains(err.Error(), "did you mean") {
		t.Fatalf("nonsense name should not get a suggestion: %v", err)
	}
	if _, err := ParseKernel("intrep"); err == nil || !strings.Contains(err.Error(), `"interp"`) {
		t.Fatalf("want interp suggestion, got %v", err)
	}
}
