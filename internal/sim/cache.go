package sim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dft/internal/logic"
	"dft/internal/telemetry"
)

// Kernel selects the good-machine evaluation engine behind the
// package's Eval/EvalWords entry points.
type Kernel int32

const (
	// KernelCompiled evaluates through a cached compiled Program —
	// the default.
	KernelCompiled Kernel = iota
	// KernelInterp is the original interpreted levelized walk,
	// dispatching through GateType.EvalBool/EvalWord per gate. Kept for
	// cross-checking and ablation benches.
	KernelInterp
)

// String names the kernel as accepted by ParseKernel.
func (k Kernel) String() string {
	switch k {
	case KernelCompiled:
		return "compiled"
	case KernelInterp:
		return "interp"
	}
	return fmt.Sprintf("Kernel(%d)", int32(k))
}

// ParseKernel parses a kernel name from the CLI.
func ParseKernel(s string) (Kernel, error) {
	switch s {
	case "compiled":
		return KernelCompiled, nil
	case "interp":
		return KernelInterp, nil
	}
	return KernelCompiled, fmt.Errorf("unknown kernel %q (want compiled or interp)", s)
}

// defaultKernel holds the process-wide kernel selection; the zero
// value is KernelCompiled.
var defaultKernel atomic.Int32

// DefaultKernel returns the kernel Eval/EvalWords currently dispatch
// to.
func DefaultKernel() Kernel { return Kernel(defaultKernel.Load()) }

// SetDefaultKernel selects the kernel for all subsequent evaluations
// and returns the previous selection. It is safe for concurrent use,
// but tests toggling it must not run in parallel with each other.
func SetDefaultKernel(k Kernel) Kernel {
	return Kernel(defaultKernel.Swap(int32(k)))
}

// The program cache maps a finalized *logic.Circuit to its compiled
// Program. Circuits are immutable after Finalize, so identity keying
// is sound. Reads take the lock-free sync.Map path; misses compile
// under a mutex so concurrent first users of one circuit compile it
// once. Eviction is FIFO with a generous cap: workloads like
// syndrome.MakeTestable compile thousands of throwaway trial circuits,
// and without a bound the cache would pin them all.
const programCacheCap = 128

var (
	progCache    sync.Map // *logic.Circuit -> *Program
	progCacheMu  sync.Mutex
	progCacheAge []*logic.Circuit
	gProgCached  = telemetry.Default().Gauge("sim.compile.cached")
)

// CompiledFor returns the cached compiled program for c, compiling on
// first use.
func CompiledFor(c *logic.Circuit) *Program {
	if v, ok := progCache.Load(c); ok {
		return v.(*Program)
	}
	progCacheMu.Lock()
	defer progCacheMu.Unlock()
	if v, ok := progCache.Load(c); ok {
		return v.(*Program)
	}
	p := Compile(c)
	progCache.Store(c, p)
	progCacheAge = append(progCacheAge, c)
	if len(progCacheAge) > programCacheCap {
		progCache.Delete(progCacheAge[0])
		progCacheAge = progCacheAge[1:]
	}
	gProgCached.Set(int64(len(progCacheAge)))
	return p
}

// ActiveProgram returns the cached program for c when the compiled
// kernel is selected, or nil under the interpreted kernel. Hot loops
// use it to pick their fast path once per pass.
func ActiveProgram(c *logic.Circuit) *Program {
	if DefaultKernel() == KernelCompiled {
		return CompiledFor(c)
	}
	return nil
}
