package sim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dft/internal/logic"
	"dft/internal/telemetry"
)

// Kernel selects the good-machine evaluation engine behind the
// package's Eval/EvalWords entry points.
type Kernel int32

const (
	// KernelCompiled evaluates through a cached compiled Program —
	// the default.
	KernelCompiled Kernel = iota
	// KernelInterp is the original interpreted levelized walk,
	// dispatching through GateType.EvalBool/EvalWord per gate. Kept for
	// cross-checking and ablation benches.
	KernelInterp
)

// String names the kernel as accepted by ParseKernel.
func (k Kernel) String() string {
	switch k {
	case KernelCompiled:
		return "compiled"
	case KernelInterp:
		return "interp"
	}
	return fmt.Sprintf("Kernel(%d)", int32(k))
}

// ParseKernel parses a kernel name from the CLI. On failure the Kernel
// return value is meaningless — callers must check the error rather
// than fall through to the default kernel.
func ParseKernel(s string) (Kernel, error) {
	switch s {
	case "compiled":
		return KernelCompiled, nil
	case "interp":
		return KernelInterp, nil
	}
	if sug := closestKernelName(s); sug != "" {
		return KernelCompiled, fmt.Errorf("unknown kernel %q (did you mean %q? want compiled or interp)", s, sug)
	}
	return KernelCompiled, fmt.Errorf("unknown kernel %q (want compiled or interp)", s)
}

// closestKernelName suggests a kernel name within edit distance 3.
func closestKernelName(s string) string {
	best, bestDist := "", 4
	for _, k := range []string{"compiled", "interp"} {
		if d := editDistance(s, k); d < bestDist {
			best, bestDist = k, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance between a and b.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// defaultKernel holds the process-wide kernel selection; the zero
// value is KernelCompiled.
var defaultKernel atomic.Int32

// DefaultKernel returns the kernel Eval/EvalWords currently dispatch
// to.
func DefaultKernel() Kernel { return Kernel(defaultKernel.Load()) }

// SetDefaultKernel selects the kernel for all subsequent evaluations
// and returns the previous selection. It is safe for concurrent use,
// but tests toggling it must not run in parallel with each other.
func SetDefaultKernel(k Kernel) Kernel {
	return Kernel(defaultKernel.Swap(int32(k)))
}

// The program cache maps a finalized *logic.Circuit to its compiled
// Program. Circuits are immutable after Finalize, so identity keying
// is sound. Reads take the lock-free sync.Map path; misses compile
// under a mutex so concurrent first users of one circuit compile it
// once. Eviction is FIFO with a generous cap: workloads like
// syndrome.MakeTestable compile thousands of throwaway trial circuits,
// and without a bound the cache would pin them all.
const programCacheCap = 128

var (
	progCache    sync.Map // *logic.Circuit -> *Program
	progCacheMu  sync.Mutex
	progCacheAge []*logic.Circuit
	gProgCached  = telemetry.Default().Gauge("sim.compile.cached")
)

// CompiledFor returns the cached compiled program for c, compiling on
// first use.
func CompiledFor(c *logic.Circuit) *Program {
	if v, ok := progCache.Load(c); ok {
		return v.(*Program)
	}
	progCacheMu.Lock()
	defer progCacheMu.Unlock()
	if v, ok := progCache.Load(c); ok {
		return v.(*Program)
	}
	p := Compile(c)
	progCache.Store(c, p)
	progCacheAge = append(progCacheAge, c)
	if len(progCacheAge) > programCacheCap {
		// Compact in place instead of reslicing the head off: a bare
		// progCacheAge[1:] would keep the evicted circuit (and its
		// program) reachable through the backing array indefinitely.
		progCache.Delete(progCacheAge[0])
		copy(progCacheAge, progCacheAge[1:])
		progCacheAge[len(progCacheAge)-1] = nil
		progCacheAge = progCacheAge[:len(progCacheAge)-1]
	}
	gProgCached.Set(int64(len(progCacheAge)))
	return p
}

// ActiveProgram returns the cached program for c when the compiled
// kernel is selected, or nil under the interpreted kernel. Hot loops
// use it to pick their fast path once per pass.
func ActiveProgram(c *logic.Circuit) *Program {
	if DefaultKernel() == KernelCompiled {
		return CompiledFor(c)
	}
	return nil
}
