package sim_test

import (
	"fmt"
	"math/rand"
	"testing"

	"dft/internal/circuits"
	"dft/internal/fuzzdiff"
	"dft/internal/logic"
	"dft/internal/sim"
)

// checkReduced verifies the full reduction contract for one circuit:
// the reduced netlist lints as clean as the original, preserves the
// PI/PO/DFF interface exactly, and is functionally equivalent on
// random stimulus — including every claim the remap table makes.
func checkReduced(t *testing.T, c *logic.Circuit, rng *rand.Rand) {
	t.Helper()
	rc, rm := sim.Reduce(c)

	// Interface preservation: pattern and response vectors must carry
	// over unchanged.
	if got, want := len(rc.PIs), len(c.PIs); got != want {
		t.Fatalf("Reduce changed PI count: got %d want %d", got, want)
	}
	if got, want := len(rc.POs), len(c.POs); got != want {
		t.Fatalf("Reduce changed PO count: got %d want %d", got, want)
	}
	if got, want := len(rc.DFFs), len(c.DFFs); got != want {
		t.Fatalf("Reduce changed DFF count: got %d want %d", got, want)
	}
	if rc.NumNets() > c.NumNets() {
		t.Errorf("Reduce grew the netlist: %d nets from %d", rc.NumNets(), c.NumNets())
	}

	// The guard property: reduction never introduces diagnostics. The
	// generator and the builtin library both produce lint-clean
	// netlists, so the reduced form must be clean too.
	if ds := fuzzdiff.Lint(c); len(ds) != 0 {
		t.Fatalf("input circuit not lint-clean, test premise broken: %v", ds)
	}
	if ds := fuzzdiff.Lint(rc); len(ds) != 0 {
		t.Fatalf("Reduce introduced diagnostics (stats %+v): %v", rm.Stats, ds)
	}

	// Source elements must map to themselves positionally.
	for i, pi := range c.PIs {
		if rm.NetOf[pi] != rc.PIs[i] {
			t.Fatalf("PI %d maps to %d, want %d", pi, rm.NetOf[pi], rc.PIs[i])
		}
	}
	for i, d := range c.DFFs {
		if rm.NetOf[d] != rc.DFFs[i] {
			t.Fatalf("DFF %d maps to %d, want %d", d, rm.NetOf[d], rc.DFFs[i])
		}
	}

	// Functional equivalence over random 64-pattern words, with DFF
	// outputs driven as free inputs so sequential behavior is covered
	// for arbitrary state.
	for trial := 0; trial < 4; trial++ {
		pi := make([]uint64, len(c.PIs))
		state := make([]uint64, len(c.DFFs))
		for i := range pi {
			pi[i] = rng.Uint64()
		}
		for i := range state {
			state[i] = rng.Uint64()
		}
		ov := sim.EvalWords(c, pi, state)
		rv := sim.EvalWords(rc, pi, state)
		for i := range c.POs {
			if ov[c.POs[i]] != rv[rc.POs[i]] {
				t.Fatalf("trial %d: PO %d differs: %x vs %x (stats %+v)",
					trial, i, ov[c.POs[i]], rv[rc.POs[i]], rm.Stats)
			}
		}
		for i := range c.DFFs {
			od := c.Gates[c.DFFs[i]].Fanin[0]
			rd := rc.Gates[rc.DFFs[i]].Fanin[0]
			if ov[od] != rv[rd] {
				t.Fatalf("trial %d: next-state %d differs: %x vs %x", trial, i, ov[od], rv[rd])
			}
		}
		// Every remap claim must hold for every net.
		for n := 0; n < c.NumNets(); n++ {
			if rn := rm.NetOf[n]; rn >= 0 && ov[n] != rv[rn] {
				t.Fatalf("trial %d: net %d (%s) mapped to %d but values differ: %x vs %x",
					trial, n, c.NameOf(n), rn, ov[n], rv[rn])
			}
			if kv := rm.ConstOf[n]; kv >= 0 {
				want := uint64(0)
				if kv == 1 {
					want = ^uint64(0)
				}
				if ov[n] != want {
					t.Fatalf("trial %d: net %d (%s) claimed constant %d but evaluates %x",
						trial, n, c.NameOf(n), kv, ov[n])
				}
			}
		}
	}
}

// TestReduceBuiltins runs the reduction guard over the whole builtin
// circuit library at its default sizes.
func TestReduceBuiltins(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, name := range circuits.BuiltinNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			c, err := circuits.Builtin(name, 0)
			if err != nil {
				t.Fatal(err)
			}
			checkReduced(t, c, rng)
		})
	}
}

// TestReduceFuzzCircuits runs the guard over generator output across a
// spread of shapes: const-heavy, tie-heavy, deep, wide, sequential.
func TestReduceFuzzCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for seed := int64(0); seed < 60; seed++ {
		c := fuzzdiff.Generate(fuzzdiff.ShapeConfig(seed), seed)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			checkReduced(t, c, rng)
		})
	}
	// Force the corners the shaped seeds may under-sample.
	corners := []fuzzdiff.Config{
		{Inputs: 4, Gates: 80, ConstProb: 0.45, TieProb: 0.30},
		{Inputs: 3, Gates: 60, MaxFanin: 2, GateMix: []logic.GateType{logic.Xor, logic.Xnor}, TieProb: 0.4},
		{Inputs: 6, Gates: 120, DFFs: 6, ConstProb: 0.25},
		{Inputs: 2, Gates: 40, GateMix: []logic.GateType{logic.Buf, logic.Not}},
		{Inputs: 10, Gates: 200, DepthBias: 0.95},
	}
	for i, cfg := range corners {
		for s := int64(0); s < 8; s++ {
			c := fuzzdiff.Generate(cfg, 1000+int64(i)*8+s)
			t.Run(fmt.Sprintf("corner%d_seed%d", i, s), func(t *testing.T) {
				checkReduced(t, c, rng)
			})
		}
	}
}

// TestReduceActuallyReduces pins down that the pass finds real work on
// circuits built to contain it: shared structure for hashing, constant
// feeds for folding, single-fanout chains for collapsing.
func TestReduceActuallyReduces(t *testing.T) {
	b := logic.New("reducible")
	a := b.AddInput("a")
	x := b.AddInput("x")
	y := b.AddInput("y")
	one := b.AddGate(logic.Const1, "one")
	// Two structurally identical NANDs (commutative operands) -> one
	// survives; NAND is inverting so absorption cannot claim it first.
	n1 := b.AddGate(logic.Nand, "n1", a, x)
	n2 := b.AddGate(logic.Nand, "n2", x, a)
	// Constant feed folds through.
	g3 := b.AddGate(logic.And, "g3", n1, one)
	// Buf chain collapses.
	g4 := b.AddGate(logic.Buf, "g4", g3)
	// Single-fanout AND absorbed into its NAND reader.
	g5 := b.AddGate(logic.And, "g5", g4, n2)
	g6 := b.AddGate(logic.Nand, "g6", g5, y)
	b.MarkOutput(g6)
	c := b.MustFinalize()

	rc, rm := sim.Reduce(c)
	if rm.Stats.Hashed == 0 {
		t.Errorf("expected structural hashing to fire: %+v", rm.Stats)
	}
	if rm.Stats.Collapsed == 0 {
		t.Errorf("expected wrapper/FFR collapsing to fire: %+v", rm.Stats)
	}
	if rc.NumGates() >= c.NumGates() {
		t.Errorf("expected fewer gates: %d -> %d", c.NumGates(), rc.NumGates())
	}
	checkReduced(t, c, rand.New(rand.NewSource(3)))
}

// TestReduceConstantCircuit exercises the orphan-repair path: folding
// the only reader of a primary input must not leave the input dangling.
func TestReduceConstantCircuit(t *testing.T) {
	b := logic.New("allconst")
	a := b.AddInput("a")
	// XOR(a, a) == 0: a's single reader folds to a constant.
	x := b.AddGate(logic.Xor, "x", a, a)
	y := b.AddGate(logic.Not, "y", x)
	b.MarkOutput(y)
	c := b.MustFinalize()
	checkReduced(t, c, rand.New(rand.NewSource(5)))
	_, rm := sim.Reduce(c)
	if rm.ConstOf[y] != 1 {
		t.Errorf("expected output folded to constant 1, got %d", rm.ConstOf[y])
	}
}
