// Fuzz targets live in the external test package so they can use
// fuzzdiff, which imports sim.
package sim_test

import (
	"testing"

	"dft/internal/fuzzdiff"
)

// FuzzKernelEquivalence requires the compiled kernel at every
// execution width (scalar, 64-way word, blocked) to agree with the
// interpreted reference on a seed-generated circuit.
//
// Run: go test -fuzz=FuzzKernelEquivalence -fuzztime=10s ./internal/sim
func FuzzKernelEquivalence(f *testing.F) {
	for _, seed := range []int64{1, 2, 7, 42, 1234, -3} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		c := fuzzdiff.Generate(fuzzdiff.ShapeConfig(seed), seed)
		if ds := fuzzdiff.Lint(c); fuzzdiff.HasErrors(ds) {
			t.Fatalf("seed %d: generator emitted invalid netlist: %v", seed, ds)
		}
		if d := fuzzdiff.CheckKernels(c, seed, 6); d != nil {
			d.Seed = seed
			t.Fatalf("kernel divergence:\n%s", d.Repro())
		}
	})
}
