// Package sim provides true-value simulation of logic circuits: scalar
// Boolean simulation, ternary (0/1/X) simulation for initialization
// analysis, 64-way bit-parallel pattern simulation, and multi-cycle
// sequential simulation of circuits containing flip-flops.
//
// These simulators are the "good machine" engines on which fault
// simulation (package fault) and every self-test technique in the paper
// are built.
package sim

import (
	"fmt"

	"dft/internal/logic"
	"dft/internal/telemetry"
)

// Levelized-evaluation counters on the Default registry. Handles are
// cached at package level (Registry.Reset zeroes in place, so they
// never detach) and bumped once per full pass, not per gate.
var (
	cLevelEvals   = telemetry.Default().Counter("sim.levelized.evals")
	cTernaryEvals = telemetry.Default().Counter("sim.levelized.ternary_evals")
	cWordEvals    = telemetry.Default().Counter("sim.levelized.word_evals")
)

// Eval runs a two-valued combinational simulation. pi maps each primary
// input (in Circuit.PIs order) to a value; state maps each DFF (in
// Circuit.DFFs order) to its present output. The returned slice holds
// the value of every net. For purely combinational circuits state may be
// nil.
func Eval(c *logic.Circuit, pi []bool, state []bool) []bool {
	if len(pi) != len(c.PIs) {
		panic(fmt.Sprintf("sim: got %d input values for %d primary inputs", len(pi), len(c.PIs)))
	}
	if len(state) != len(c.DFFs) {
		panic(fmt.Sprintf("sim: got %d state values for %d flip-flops", len(state), len(c.DFFs)))
	}
	vals := make([]bool, len(c.Gates))
	EvalInto(c, pi, state, vals, nil)
	return vals
}

// EvalInto is Eval writing into caller-provided storage to avoid
// allocation in inner loops. It dispatches to the selected kernel
// (compiled by default); scratch is only used by the interpreted
// kernel, where a non-nil slice must have capacity for the widest gate
// fanin (pass nil to let the function allocate it).
func EvalInto(c *logic.Circuit, pi []bool, state []bool, vals []bool, scratch []bool) {
	if p := ActiveProgram(c); p != nil {
		p.EvalInto(pi, state, vals)
		return
	}
	EvalInterpInto(c, pi, state, vals, scratch)
}

// EvalInterpInto is the interpreted scalar kernel: a levelized walk
// gathering each gate's fanins into scratch and dispatching through
// GateType.EvalBool. It is the reference implementation the compiled
// kernel is checked against.
func EvalInterpInto(c *logic.Circuit, pi []bool, state []bool, vals []bool, scratch []bool) {
	for i, id := range c.PIs {
		vals[id] = pi[i]
	}
	for i, id := range c.DFFs {
		vals[id] = state[i]
	}
	if scratch == nil {
		scratch = make([]bool, c.MaxFanin())
	}
	for _, id := range c.Order {
		g := &c.Gates[id]
		in := scratch[:len(g.Fanin)]
		for i, f := range g.Fanin {
			in[i] = vals[f]
		}
		vals[id] = g.Type.EvalBool(in)
	}
	cLevelEvals.Add(int64(len(c.Order)))
}

// Outputs extracts the primary output values from a full net valuation.
func Outputs(c *logic.Circuit, vals []bool) []bool {
	out := make([]bool, len(c.POs))
	for i, id := range c.POs {
		out[i] = vals[id]
	}
	return out
}

// NextState extracts the next-state values (DFF D inputs) from a full
// net valuation.
func NextState(c *logic.Circuit, vals []bool) []bool {
	ns := make([]bool, len(c.DFFs))
	for i, id := range c.DFFs {
		ns[i] = vals[c.Gates[id].Fanin[0]]
	}
	return ns
}

// EvalTernary runs a three-valued (0/1/X) combinational simulation,
// the classical tool for reasoning about uninitialized storage. Values
// other than logic.Zero/One/X in the inputs are rejected.
func EvalTernary(c *logic.Circuit, pi []logic.V, state []logic.V) []logic.V {
	vals := make([]logic.V, len(c.Gates))
	EvalTernaryInto(c, pi, state, vals, nil)
	return vals
}

// EvalTernaryInto is EvalTernary into caller-provided storage.
// scratch, if non-nil, must have capacity for the widest gate fanin;
// pass nil to let the function allocate it.
func EvalTernaryInto(c *logic.Circuit, pi, state, vals []logic.V, scratch []logic.V) {
	if len(pi) != len(c.PIs) {
		panic(fmt.Sprintf("sim: got %d input values for %d primary inputs", len(pi), len(c.PIs)))
	}
	if len(state) != len(c.DFFs) {
		panic(fmt.Sprintf("sim: got %d state values for %d flip-flops", len(state), len(c.DFFs)))
	}
	for i := range vals {
		vals[i] = logic.X
	}
	check := func(v logic.V) logic.V {
		if v.IsError() {
			panic("sim: D-values are not valid ternary simulation inputs")
		}
		return v
	}
	for i, id := range c.PIs {
		vals[id] = check(pi[i])
	}
	for i, id := range c.DFFs {
		vals[id] = check(state[i])
	}
	if scratch == nil {
		scratch = make([]logic.V, c.MaxFanin())
	}
	for _, id := range c.Order {
		g := &c.Gates[id]
		args := scratch[:len(g.Fanin)]
		for i, f := range g.Fanin {
			args[i] = vals[f]
		}
		vals[id] = g.Type.Eval(args)
	}
	cTernaryEvals.Add(int64(len(c.Order)))
}

// Words is a bit-parallel valuation: Words[n] packs the value of net n
// for up to 64 independent patterns, one per bit position.
type Words []uint64

// EvalWords runs 64-way bit-parallel combinational simulation. pi and
// state carry one word per primary input / flip-flop.
func EvalWords(c *logic.Circuit, pi []uint64, state []uint64) Words {
	vals := make(Words, len(c.Gates))
	EvalWordsInto(c, pi, state, vals, nil)
	return vals
}

// EvalWordsInto is EvalWords into caller-provided storage. It
// dispatches to the selected kernel (compiled by default); scratch is
// only used by the interpreted kernel.
func EvalWordsInto(c *logic.Circuit, pi, state []uint64, vals Words, scratch []uint64) {
	if p := ActiveProgram(c); p != nil {
		p.EvalWordsInto(pi, state, vals)
		return
	}
	EvalWordsInterpInto(c, pi, state, vals, scratch)
}

// EvalWordsInterpInto is the interpreted 64-way kernel, the reference
// implementation the compiled kernel is checked against.
func EvalWordsInterpInto(c *logic.Circuit, pi, state []uint64, vals Words, scratch []uint64) {
	if len(pi) != len(c.PIs) {
		panic(fmt.Sprintf("sim: got %d input words for %d primary inputs", len(pi), len(c.PIs)))
	}
	if len(state) != len(c.DFFs) {
		panic(fmt.Sprintf("sim: got %d state words for %d flip-flops", len(state), len(c.DFFs)))
	}
	for i, id := range c.PIs {
		vals[id] = pi[i]
	}
	for i, id := range c.DFFs {
		vals[id] = state[i]
	}
	if scratch == nil {
		scratch = make([]uint64, c.MaxFanin())
	}
	for _, id := range c.Order {
		g := &c.Gates[id]
		in := scratch[:len(g.Fanin)]
		for i, f := range g.Fanin {
			in[i] = vals[f]
		}
		vals[id] = g.Type.EvalWord(in)
	}
	cWordEvals.Add(int64(len(c.Order)))
}

// PackPatterns packs up to 64 scalar patterns (each len(c.PIs) long)
// into one word per primary input: bit k of word i is pattern k's value
// for input i.
func PackPatterns(c *logic.Circuit, patterns [][]bool) []uint64 {
	words := make([]uint64, len(c.PIs))
	PackPatternsInto(patterns, words)
	return words
}

// PackPatternsInto packs up to 64 patterns into caller-provided words
// (one word per input position, zeroed first): bit k of word i is
// pattern k's value for input i. It returns the number of patterns
// packed, so grading loops can reuse one word slice per block instead
// of allocating.
func PackPatternsInto(patterns [][]bool, words []uint64) int {
	if len(patterns) > 64 {
		panic("sim: PackPatternsInto accepts at most 64 patterns")
	}
	for i := range words {
		words[i] = 0
	}
	for k, p := range patterns {
		if len(p) != len(words) {
			panic(fmt.Sprintf("sim: pattern %d has %d values for %d inputs", k, len(p), len(words)))
		}
		for i, b := range p {
			if b {
				words[i] |= 1 << uint(k)
			}
		}
	}
	return len(patterns)
}

// exhaustMasks are the packed values of the six low enumeration
// variables within one 64-pattern block: variable b toggles with
// period 2^b across pattern indices, so its word is a fixed mask.
var exhaustMasks = [6]uint64{
	0xAAAAAAAAAAAAAAAA,
	0xCCCCCCCCCCCCCCCC,
	0xF0F0F0F0F0F0F0F0,
	0xFF00FF00FF00FF00,
	0xFFFF0000FFFF0000,
	0xFFFFFFFF00000000,
}

// ExhaustiveBlock fills words with one 64-pattern block of the
// exhaustive enumeration over len(free) variables, starting at pattern
// index base (which must be 64-aligned): pattern base+p assigns bit b
// of (base+p) to words[free[b]]'s bit p, matching the pattern order of
// a scalar count from 0 to 2^n-1. Only the free positions of words are
// written. It returns the number of patterns in the block (64, or the
// tail remainder; 0 when base is past the end).
func ExhaustiveBlock(words []uint64, free []int, base uint64) int {
	n := len(free)
	if n >= 64 {
		panic("sim: ExhaustiveBlock supports at most 63 variables")
	}
	if base%64 != 0 {
		panic("sim: ExhaustiveBlock base must be 64-aligned")
	}
	total := uint64(1) << uint(n)
	if base >= total {
		return 0
	}
	k := 64
	if rem := total - base; rem < 64 {
		k = int(rem)
	}
	mask := ^uint64(0)
	if k < 64 {
		mask = 1<<uint(k) - 1
	}
	for b, pos := range free {
		var w uint64
		if b < 6 {
			w = exhaustMasks[b]
		} else if base>>uint(b)&1 == 1 {
			w = ^uint64(0)
		}
		words[pos] = w & mask
	}
	return k
}
