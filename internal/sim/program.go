// Compiled levelized simulation kernel.
//
// Compile lowers a finalized netlist once into a flat instruction
// stream: one type-specialized instruction per net in levelized order,
// with 2-input fast-path opcodes for the common gates, a single
// contiguous fanin-index array for the n-ary fallback (no per-gate
// slice gather), and constant folding of Const0/Const1 feeds and tied
// inputs. The program is then executed scalar (ExecBool), 64-way
// bit-parallel (Exec), or blocked W words at a time (ExecBlock) so
// instruction decode and fanin-index loads amortize across up to W×64
// patterns per pass.
//
// Every folding rule used here (idempotence of AND/OR, constant
// absorption, XOR pair cancellation and parity flips) is an exact
// Boolean identity that also holds bitwise on 64-bit words, so the
// compiled kernel produces byte-identical net valuations to the
// interpreter for every input — the invariant the cross-kernel
// property tests pin down.
package sim

import (
	"fmt"
	"sort"

	"dft/internal/logic"
	"dft/internal/telemetry"
)

var (
	cCompilePrograms = telemetry.Default().Counter("sim.compile.programs")
	cCompileFolded   = telemetry.Default().Counter("sim.compile.folded_gates")
	cCompileHashed   = telemetry.Default().Counter("sim.compile.hashed_gates")
	cKernelBoolEvals = telemetry.Default().Counter("sim.kernel.bool_evals")
	cKernelWordEvals = telemetry.Default().Counter("sim.kernel.word_evals")
	cKernelBlockEvals = telemetry.Default().Counter("sim.kernel.block_evals")
	tKernelExec       = telemetry.Default().Timer("sim.kernel.exec")
)

// opcode is a compiled gate operation. The two-input fast paths cover
// the overwhelming share of gates in the bench circuits; everything
// else falls back to an n-ary reduce over the flat fanin array.
type opcode uint8

const (
	opConst0 opcode = iota
	opConst1
	opBuf
	opNot
	opAnd2
	opNand2
	opOr2
	opNor2
	opXor2
	opXnor2
	opAndN
	opNandN
	opOrN
	opNorN
	opXorN
	opXnorN
)

// instr is one compiled operation: write net out from operand net(s).
// For 2-input opcodes a and b are net indices; for n-ary opcodes a is
// an offset into Program.fanins and b is the operand count.
type instr struct {
	op   opcode
	out  int32
	a, b int32
}

// Program is a circuit compiled for repeated evaluation. A Program is
// immutable after Compile and safe for concurrent use from any number
// of goroutines (each call supplies its own value storage).
type Program struct {
	c      *logic.Circuit
	code   []instr
	fanins []int32
	folded int
	hashed int
}

// Circuit returns the netlist the program was compiled from.
func (p *Program) Circuit() *logic.Circuit { return p.c }

// NumInstrs returns the instruction count (one per evaluated net).
func (p *Program) NumInstrs() int { return len(p.code) }

// Folded returns how many gates were simplified during compilation
// (constant feeds absorbed, tied inputs deduplicated, or the whole
// gate folded to a constant).
func (p *Program) Folded() int { return p.folded }

// Hashed returns how many gates structural hashing merged with an
// earlier twin: their instruction degrades to a copy of the twin's net
// (the net itself stays materialized — fault injection and view
// observation read arbitrary nets), and downstream operands read the
// twin directly.
func (p *Program) Hashed() int { return p.hashed }

// knownness of a net's value at compile time.
const (
	kUnknown uint8 = iota
	kZero
	kOne
)

// Compile lowers the levelized netlist into a Program. The circuit
// must be finalized; Compile panics otherwise (Order is empty only in
// degenerate source-only circuits, so the check uses the same entry
// condition as the interpreter: Level/Order populated by Finalize).
func Compile(c *logic.Circuit) *Program {
	// Span rather than bare timer: End observes the same sim.compile
	// timer and additionally records a trace event with the lowering
	// stats, so compiles show up in job span trees.
	span := telemetry.Default().StartSpan("sim.compile")
	p := &Program{
		c:    c,
		code: make([]instr, 0, len(c.Order)),
	}
	known := make([]uint8, c.NumNets())
	// alias maps each net to the earliest net proven to carry the same
	// value; operands are forwarded through it so structurally hashed
	// twins also canonicalize downstream operand lists.
	alias := make([]int32, c.NumNets())
	for i := range alias {
		alias[i] = int32(i)
	}
	seen := make(map[string]int32, len(c.Order))
	var keyBuf []byte
	var ins []int32 // simplified operand list, reused per gate
	for _, id := range c.Order {
		g := &c.Gates[id]
		switch g.Type {
		case logic.Const0:
			p.emitConst(id, false, known)
		case logic.Const1:
			p.emitConst(id, true, known)
		case logic.Buf, logic.Not:
			inv := g.Type == logic.Not
			f := g.Fanin[0]
			switch known[f] {
			case kZero:
				p.emitConst(id, inv, known)
				p.folded++
			case kOne:
				p.emitConst(id, !inv, known)
				p.folded++
			default:
				op := opBuf
				if inv {
					op = opNot
				}
				p.code = append(p.code, instr{op: op, out: int32(id), a: alias[f]})
			}
		case logic.And, logic.Nand:
			ins = p.compileAndOr(id, g, known, alias, ins, true, g.Type == logic.Nand)
		case logic.Or, logic.Nor:
			ins = p.compileAndOr(id, g, known, alias, ins, false, g.Type == logic.Nor)
		case logic.Xor, logic.Xnor:
			ins = p.compileXor(id, g, known, alias, ins, g.Type == logic.Xnor)
		default:
			panic(fmt.Sprintf("sim: cannot compile gate type %v", g.Type))
		}
		// Structural hashing: a gate whose lowered instruction matches an
		// earlier one (same opcode, same canonical operands) must compute
		// the identical word, so its instruction degrades to a copy. The
		// net stays materialized — fault injection and view observation
		// read arbitrary nets — but the redundant evaluation is gone and
		// downstream readers forward to the single survivor.
		in := &p.code[len(p.code)-1]
		if in.op == opBuf {
			alias[id] = in.a
			continue
		}
		keyBuf = p.instrKey(keyBuf[:0], in)
		if twin, ok := seen[string(keyBuf)]; ok {
			*in = instr{op: opBuf, out: in.out, a: twin}
			alias[id] = twin
			p.hashed++
		} else {
			seen[string(keyBuf)] = in.out
		}
	}
	cCompilePrograms.Inc()
	cCompileFolded.Add(int64(p.folded))
	cCompileHashed.Add(int64(p.hashed))
	span.SetAttr("gates", fmt.Sprint(len(c.Order)))
	span.SetAttr("folded", fmt.Sprint(p.folded))
	span.SetAttr("hashed", fmt.Sprint(p.hashed))
	span.End()
	return p
}

// instrKey encodes an instruction's structural identity: opcode plus
// canonically ordered operands. Every multi-operand opcode here is
// commutative, so sorting the operand list canonicalizes it.
func (p *Program) instrKey(buf []byte, in *instr) []byte {
	appendNet := func(buf []byte, v int32) []byte {
		return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	buf = append(buf, byte(in.op))
	switch {
	case in.op == opConst0 || in.op == opConst1:
	case in.op == opNot:
		buf = appendNet(buf, in.a)
	case in.op <= opXnor2:
		a, b := in.a, in.b
		if b < a {
			a, b = b, a
		}
		buf = appendNet(appendNet(buf, a), b)
	default:
		ops := append([]int32(nil), p.fanins[in.a:in.a+in.b]...)
		sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
		for _, o := range ops {
			buf = appendNet(buf, o)
		}
	}
	return buf
}

// emitConst emits a constant write for net id and records its value
// for folding in downstream gates.
func (p *Program) emitConst(id int, v bool, known []uint8) {
	op := opConst0
	known[id] = kZero
	if v {
		op = opConst1
		known[id] = kOne
	}
	p.code = append(p.code, instr{op: op, out: int32(id)})
}

// compileAndOr lowers an AND/NAND (and=true) or OR/NOR (and=false)
// gate: operands known to be the identity element (1 for AND, 0 for
// OR) are dropped, a known controlling operand (0 for AND, 1 for OR)
// folds the gate to a constant, and duplicate operands collapse by
// idempotence. inv selects the inverting variant.
func (p *Program) compileAndOr(id int, g *logic.Gate, known []uint8, alias, ins []int32, and, inv bool) []int32 {
	identity, controlling := kOne, kZero
	if !and {
		identity, controlling = kZero, kOne
	}
	ins = ins[:0]
	controlled := false
	for _, f := range g.Fanin {
		switch known[f] {
		case identity:
			// dropped: cannot affect the reduce
		case controlling:
			controlled = true
		default:
			if af := alias[f]; !containsNet(ins, af) {
				ins = append(ins, af)
			}
		}
	}
	if controlled {
		// Result is the controlling value (0 for AND, 1 for OR), then
		// inverted for NAND/NOR.
		p.emitConst(id, !and != inv, known)
		p.folded++
		return ins
	}
	if len(ins) != len(g.Fanin) {
		p.folded++
	}
	switch len(ins) {
	case 0:
		// Empty reduce yields the identity element.
		p.emitConst(id, and != inv, known)
	case 1:
		op := opBuf
		if inv {
			op = opNot
		}
		p.code = append(p.code, instr{op: op, out: int32(id), a: ins[0]})
	case 2:
		var op opcode
		switch {
		case and && !inv:
			op = opAnd2
		case and && inv:
			op = opNand2
		case !and && !inv:
			op = opOr2
		default:
			op = opNor2
		}
		p.code = append(p.code, instr{op: op, out: int32(id), a: ins[0], b: ins[1]})
	default:
		var op opcode
		switch {
		case and && !inv:
			op = opAndN
		case and && inv:
			op = opNandN
		case !and && !inv:
			op = opOrN
		default:
			op = opNorN
		}
		p.emitNary(op, id, ins)
	}
	return ins
}

// compileXor lowers an XOR/XNOR gate: known-0 operands drop, known-1
// operands flip the output parity, and paired duplicate operands
// cancel (x XOR x = 0). inv starts the parity at XNOR.
func (p *Program) compileXor(id int, g *logic.Gate, known []uint8, alias, ins []int32, inv bool) []int32 {
	flip := inv
	ins = ins[:0]
	for _, f := range g.Fanin {
		switch known[f] {
		case kZero:
			// dropped
		case kOne:
			flip = !flip
		default:
			af := alias[f]
			if i := indexOfNet(ins, af); i >= 0 {
				ins = append(ins[:i], ins[i+1:]...)
			} else {
				ins = append(ins, af)
			}
		}
	}
	if len(ins) != len(g.Fanin) {
		p.folded++
	}
	switch len(ins) {
	case 0:
		p.emitConst(id, flip, known)
	case 1:
		op := opBuf
		if flip {
			op = opNot
		}
		p.code = append(p.code, instr{op: op, out: int32(id), a: ins[0]})
	case 2:
		op := opXor2
		if flip {
			op = opXnor2
		}
		p.code = append(p.code, instr{op: op, out: int32(id), a: ins[0], b: ins[1]})
	default:
		op := opXorN
		if flip {
			op = opXnorN
		}
		p.emitNary(op, id, ins)
	}
	return ins
}

// emitNary appends an n-ary instruction, copying the operand list into
// the flat fanin array.
func (p *Program) emitNary(op opcode, id int, ins []int32) {
	off := int32(len(p.fanins))
	p.fanins = append(p.fanins, ins...)
	p.code = append(p.code, instr{op: op, out: int32(id), a: off, b: int32(len(ins))})
}

func containsNet(ins []int32, f int32) bool { return indexOfNet(ins, f) >= 0 }

func indexOfNet(ins []int32, f int32) int {
	for i, x := range ins {
		if x == f {
			return i
		}
	}
	return -1
}

// ExecBool runs the compiled scalar kernel over vals (one bool per
// net). Source nets (PIs, DFF outputs) must be preloaded by the
// caller; every evaluated net is written.
func (p *Program) ExecBool(vals []bool) {
	fan := p.fanins
	for _, ins := range p.code {
		switch ins.op {
		case opConst0:
			vals[ins.out] = false
		case opConst1:
			vals[ins.out] = true
		case opBuf:
			vals[ins.out] = vals[ins.a]
		case opNot:
			vals[ins.out] = !vals[ins.a]
		case opAnd2:
			vals[ins.out] = vals[ins.a] && vals[ins.b]
		case opNand2:
			vals[ins.out] = !(vals[ins.a] && vals[ins.b])
		case opOr2:
			vals[ins.out] = vals[ins.a] || vals[ins.b]
		case opNor2:
			vals[ins.out] = !(vals[ins.a] || vals[ins.b])
		case opXor2:
			vals[ins.out] = vals[ins.a] != vals[ins.b]
		case opXnor2:
			vals[ins.out] = vals[ins.a] == vals[ins.b]
		case opAndN, opNandN:
			v := true
			for _, f := range fan[ins.a : ins.a+ins.b] {
				if !vals[f] {
					v = false
					break
				}
			}
			vals[ins.out] = v != (ins.op == opNandN)
		case opOrN, opNorN:
			v := false
			for _, f := range fan[ins.a : ins.a+ins.b] {
				if vals[f] {
					v = true
					break
				}
			}
			vals[ins.out] = v != (ins.op == opNorN)
		default: // opXorN, opXnorN
			v := ins.op == opXnorN
			for _, f := range fan[ins.a : ins.a+ins.b] {
				if vals[f] {
					v = !v
				}
			}
			vals[ins.out] = v
		}
	}
	cKernelBoolEvals.Add(int64(len(p.code)))
}

// Exec runs the compiled 64-way bit-parallel kernel over vals (one
// word per net). Source nets must be preloaded; every evaluated net is
// written.
func (p *Program) Exec(vals []uint64) {
	fan := p.fanins
	for _, ins := range p.code {
		switch ins.op {
		case opConst0:
			vals[ins.out] = 0
		case opConst1:
			vals[ins.out] = ^uint64(0)
		case opBuf:
			vals[ins.out] = vals[ins.a]
		case opNot:
			vals[ins.out] = ^vals[ins.a]
		case opAnd2:
			vals[ins.out] = vals[ins.a] & vals[ins.b]
		case opNand2:
			vals[ins.out] = ^(vals[ins.a] & vals[ins.b])
		case opOr2:
			vals[ins.out] = vals[ins.a] | vals[ins.b]
		case opNor2:
			vals[ins.out] = ^(vals[ins.a] | vals[ins.b])
		case opXor2:
			vals[ins.out] = vals[ins.a] ^ vals[ins.b]
		case opXnor2:
			vals[ins.out] = ^(vals[ins.a] ^ vals[ins.b])
		case opAndN, opNandN:
			v := ^uint64(0)
			for _, f := range fan[ins.a : ins.a+ins.b] {
				v &= vals[f]
			}
			if ins.op == opNandN {
				v = ^v
			}
			vals[ins.out] = v
		case opOrN, opNorN:
			v := uint64(0)
			for _, f := range fan[ins.a : ins.a+ins.b] {
				v |= vals[f]
			}
			if ins.op == opNorN {
				v = ^v
			}
			vals[ins.out] = v
		default: // opXorN, opXnorN
			v := uint64(0)
			for _, f := range fan[ins.a : ins.a+ins.b] {
				v ^= vals[f]
			}
			if ins.op == opXnorN {
				v = ^v
			}
			vals[ins.out] = v
		}
	}
	cKernelWordEvals.Add(int64(len(p.code)))
}

// ExecBlock runs the blocked kernel: vals holds W consecutive words
// per net (net n's lane w at vals[n*W+w]), so each instruction visit
// evaluates up to W×64 patterns while its decode and fanin-index loads
// are paid once. Source lanes must be preloaded; every evaluated net's
// W lanes are written.
func (p *Program) ExecBlock(vals []uint64, W int) {
	if W <= 0 {
		panic("sim: ExecBlock needs W >= 1")
	}
	if W == 1 {
		p.Exec(vals)
		return
	}
	fan := p.fanins
	for _, ins := range p.code {
		out := vals[int(ins.out)*W : int(ins.out)*W+W]
		switch ins.op {
		case opConst0:
			for w := range out {
				out[w] = 0
			}
		case opConst1:
			for w := range out {
				out[w] = ^uint64(0)
			}
		case opBuf:
			copy(out, vals[int(ins.a)*W:int(ins.a)*W+W])
		case opNot:
			a := vals[int(ins.a)*W : int(ins.a)*W+W]
			for w := range out {
				out[w] = ^a[w]
			}
		case opAnd2:
			a := vals[int(ins.a)*W : int(ins.a)*W+W]
			b := vals[int(ins.b)*W : int(ins.b)*W+W]
			for w := range out {
				out[w] = a[w] & b[w]
			}
		case opNand2:
			a := vals[int(ins.a)*W : int(ins.a)*W+W]
			b := vals[int(ins.b)*W : int(ins.b)*W+W]
			for w := range out {
				out[w] = ^(a[w] & b[w])
			}
		case opOr2:
			a := vals[int(ins.a)*W : int(ins.a)*W+W]
			b := vals[int(ins.b)*W : int(ins.b)*W+W]
			for w := range out {
				out[w] = a[w] | b[w]
			}
		case opNor2:
			a := vals[int(ins.a)*W : int(ins.a)*W+W]
			b := vals[int(ins.b)*W : int(ins.b)*W+W]
			for w := range out {
				out[w] = ^(a[w] | b[w])
			}
		case opXor2:
			a := vals[int(ins.a)*W : int(ins.a)*W+W]
			b := vals[int(ins.b)*W : int(ins.b)*W+W]
			for w := range out {
				out[w] = a[w] ^ b[w]
			}
		case opXnor2:
			a := vals[int(ins.a)*W : int(ins.a)*W+W]
			b := vals[int(ins.b)*W : int(ins.b)*W+W]
			for w := range out {
				out[w] = ^(a[w] ^ b[w])
			}
		case opAndN, opNandN:
			copy(out, vals[int(fan[ins.a])*W:int(fan[ins.a])*W+W])
			for _, f := range fan[ins.a+1 : ins.a+ins.b] {
				src := vals[int(f)*W : int(f)*W+W]
				for w := range out {
					out[w] &= src[w]
				}
			}
			if ins.op == opNandN {
				for w := range out {
					out[w] = ^out[w]
				}
			}
		case opOrN, opNorN:
			copy(out, vals[int(fan[ins.a])*W:int(fan[ins.a])*W+W])
			for _, f := range fan[ins.a+1 : ins.a+ins.b] {
				src := vals[int(f)*W : int(f)*W+W]
				for w := range out {
					out[w] |= src[w]
				}
			}
			if ins.op == opNorN {
				for w := range out {
					out[w] = ^out[w]
				}
			}
		default: // opXorN, opXnorN
			copy(out, vals[int(fan[ins.a])*W:int(fan[ins.a])*W+W])
			for _, f := range fan[ins.a+1 : ins.a+ins.b] {
				src := vals[int(f)*W : int(f)*W+W]
				for w := range out {
					out[w] ^= src[w]
				}
			}
			if ins.op == opXnorN {
				for w := range out {
					out[w] = ^out[w]
				}
			}
		}
	}
	cKernelBlockEvals.Add(int64(len(p.code) * W))
}

// checkWidths validates Eval-style inputs against the program's
// circuit, mirroring the interpreter's panics.
func (p *Program) checkWidths(nPI, nState int) {
	if nPI != len(p.c.PIs) {
		panic(fmt.Sprintf("sim: got %d input values for %d primary inputs", nPI, len(p.c.PIs)))
	}
	if nState != len(p.c.DFFs) {
		panic(fmt.Sprintf("sim: got %d state values for %d flip-flops", nState, len(p.c.DFFs)))
	}
}

// Eval runs a scalar simulation through the compiled kernel,
// semantically identical to sim.Eval.
func (p *Program) Eval(pi, state []bool) []bool {
	vals := make([]bool, p.c.NumNets())
	p.EvalInto(pi, state, vals)
	return vals
}

// EvalInto is Eval into caller-provided storage.
func (p *Program) EvalInto(pi, state, vals []bool) {
	p.checkWidths(len(pi), len(state))
	for i, id := range p.c.PIs {
		vals[id] = pi[i]
	}
	for i, id := range p.c.DFFs {
		vals[id] = state[i]
	}
	p.ExecBool(vals)
}

// EvalWords runs 64-way bit-parallel simulation through the compiled
// kernel, semantically identical to sim.EvalWords.
func (p *Program) EvalWords(pi, state []uint64) Words {
	vals := make(Words, p.c.NumNets())
	p.EvalWordsInto(pi, state, vals)
	return vals
}

// EvalWordsInto is EvalWords into caller-provided storage.
func (p *Program) EvalWordsInto(pi, state []uint64, vals Words) {
	p.checkWidths(len(pi), len(state))
	defer tKernelExec.Time()()
	for i, id := range p.c.PIs {
		vals[id] = pi[i]
	}
	for i, id := range p.c.DFFs {
		vals[id] = state[i]
	}
	p.Exec(vals)
}

// EvalBlock runs the blocked kernel over W words per net. pi and state
// are lane-major ([input][W]uint64 flattened: input i's lane w at
// pi[i*W+w]); the result has net n's lane w at vals[n*W+w].
func (p *Program) EvalBlock(pi, state []uint64, W int) []uint64 {
	vals := make([]uint64, p.c.NumNets()*W)
	p.EvalBlockInto(pi, state, vals, W)
	return vals
}

// EvalBlockInto is EvalBlock into caller-provided storage (length
// NumNets×W).
func (p *Program) EvalBlockInto(pi, state, vals []uint64, W int) {
	if W <= 0 {
		panic("sim: EvalBlock needs W >= 1")
	}
	p.checkWidths(len(pi)/W, len(state)/W)
	defer tKernelExec.Time()()
	for i, id := range p.c.PIs {
		copy(vals[id*W:id*W+W], pi[i*W:i*W+W])
	}
	for i, id := range p.c.DFFs {
		copy(vals[id*W:id*W+W], state[i*W:i*W+W])
	}
	p.ExecBlock(vals, W)
}
