package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dft/internal/logic"
)

func mustParse(t *testing.T, name, src string) *logic.Circuit {
	t.Helper()
	c, err := logic.ParseBenchString(name, src)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return c
}

const c17Bench = `
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`

// c17Ref computes c17's outputs directly from its defining equations.
func c17Ref(g1, g2, g3, g6, g7 bool) (bool, bool) {
	nand := func(a, b bool) bool { return !(a && b) }
	g10 := nand(g1, g3)
	g11 := nand(g3, g6)
	g16 := nand(g2, g11)
	g19 := nand(g11, g7)
	return nand(g10, g16), nand(g16, g19)
}

func TestEvalMatchesReference(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	for p := 0; p < 32; p++ {
		in := []bool{p&1 != 0, p&2 != 0, p&4 != 0, p&8 != 0, p&16 != 0}
		vals := Eval(c, in, nil)
		out := Outputs(c, vals)
		w22, w23 := c17Ref(in[0], in[1], in[2], in[3], in[4])
		if out[0] != w22 || out[1] != w23 {
			t.Fatalf("pattern %05b: got (%v,%v), want (%v,%v)", p, out[0], out[1], w22, w23)
		}
	}
}

// TestWordSimMatchesScalar is the core consistency property between the
// bit-parallel and scalar simulators.
func TestWordSimMatchesScalar(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		patterns := make([][]bool, 64)
		for k := range patterns {
			p := make([]bool, len(c.PIs))
			for i := range p {
				p[i] = rng.Intn(2) == 1
			}
			patterns[k] = p
		}
		words := EvalWords(c, PackPatterns(c, patterns), nil)
		for k, p := range patterns {
			vals := Eval(c, p, nil)
			for n := range vals {
				if vals[n] != (words[n]>>uint(k)&1 == 1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTernaryAgreesOnKnownInputs(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	for p := 0; p < 32; p++ {
		in := []bool{p&1 != 0, p&2 != 0, p&4 != 0, p&8 != 0, p&16 != 0}
		tin := make([]logic.V, len(in))
		for i, b := range in {
			tin[i] = logic.FromBool(b)
		}
		tv := EvalTernary(c, tin, nil)
		bv := Eval(c, in, nil)
		for n := range bv {
			if tv[n] != logic.FromBool(bv[n]) {
				t.Fatalf("pattern %05b net %s: ternary %v vs bool %v", p, c.NameOf(n), tv[n], bv[n])
			}
		}
	}
}

func TestTernaryXPropagation(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(y)
OUTPUT(z)
y = AND(a, b)
z = OR(a, b)
`
	c := mustParse(t, "txp", src)
	vals := EvalTernary(c, []logic.V{logic.Zero, logic.X}, nil)
	y, _ := c.NetByName("y")
	z, _ := c.NetByName("z")
	if vals[y] != logic.Zero {
		t.Errorf("AND(0,X) simulated as %v", vals[y])
	}
	if vals[z] != logic.X {
		t.Errorf("OR(0,X) simulated as %v", vals[z])
	}
}

const toggleBench = `
INPUT(en)
OUTPUT(q)
q = DFF(n)
n = XOR(en, q)
`

func TestMachineToggle(t *testing.T) {
	c := mustParse(t, "toggle", toggleBench)
	m := NewMachine(c)
	// en=1: q toggles every cycle starting from 0.
	want := []bool{false, true, false, true, false}
	for i, w := range want {
		out := m.Step([]bool{true})
		if out[0] != w {
			t.Fatalf("cycle %d: q=%v, want %v", i, out[0], w)
		}
	}
	// en=0: q holds.
	q := m.State()[0]
	for i := 0; i < 3; i++ {
		out := m.Step([]bool{false})
		if out[0] != q {
			t.Fatalf("hold cycle %d: q=%v, want %v", i, out[0], q)
		}
	}
}

func TestMachineSetStateAndPeek(t *testing.T) {
	c := mustParse(t, "toggle", toggleBench)
	m := NewMachine(c)
	m.SetState([]bool{true})
	if got := m.State()[0]; !got {
		t.Fatal("SetState did not stick")
	}
	m.Apply([]bool{false})
	n, _ := c.NetByName("n")
	if m.Peek(n) != true { // XOR(0, 1)
		t.Error("Peek(n) wrong after Apply")
	}
	vals := m.Values()
	if vals[n] != true {
		t.Error("Values()[n] inconsistent with Peek")
	}
}

func TestMachineRun(t *testing.T) {
	c := mustParse(t, "toggle", toggleBench)
	m := NewMachine(c)
	resp := m.Run([][]bool{{true}, {true}, {true}})
	if resp[0][0] != false || resp[1][0] != true || resp[2][0] != false {
		t.Fatalf("Run response %v", resp)
	}
}

// A 3-bit LFSR as a sequential circuit: validates multi-DFF clocking
// against the closed-form sequence.
const lfsr3Bench = `
INPUT(si)
OUTPUT(q3)
q1 = DFF(fb)
q2 = DFF(q1)
q3 = DFF(q2)
fb = XOR(q2, q3)
`

func TestMachineLFSR3(t *testing.T) {
	c := mustParse(t, "lfsr3", lfsr3Bench)
	m := NewMachine(c)
	m.SetState([]bool{true, false, false}) // q1=1, q2=0, q3=0
	// Reference: q1' = q2^q3, q2' = q1, q3' = q2.
	q1, q2, q3 := true, false, false
	for cyc := 0; cyc < 20; cyc++ {
		m.Step([]bool{false})
		q1, q2, q3 = q2 != q3, q1, q2
		s := m.State()
		if s[0] != q1 || s[1] != q2 || s[2] != q3 {
			t.Fatalf("cycle %d: state %v, want [%v %v %v]", cyc, s, q1, q2, q3)
		}
	}
}

func TestPackPatternsBounds(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	defer func() {
		if recover() == nil {
			t.Fatal("PackPatterns accepted 65 patterns")
		}
	}()
	PackPatterns(c, make([][]bool, 65))
}

func BenchmarkEvalScalarC17(b *testing.B) {
	c, _ := logic.ParseBenchString("c17", c17Bench)
	in := []bool{true, false, true, true, false}
	vals := make([]bool, c.NumNets())
	scratch := make([]bool, c.MaxFanin())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EvalInto(c, in, nil, vals, scratch)
	}
}

func BenchmarkEvalWordsC17(b *testing.B) {
	c, _ := logic.ParseBenchString("c17", c17Bench)
	pi := make([]uint64, len(c.PIs))
	for i := range pi {
		pi[i] = 0xAAAA5555CCCC3333
	}
	vals := make(Words, c.NumNets())
	scratch := make([]uint64, c.MaxFanin())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EvalWordsInto(c, pi, nil, vals, scratch)
	}
}

func TestNextStateExtraction(t *testing.T) {
	c := mustParse(t, "toggle", toggleBench)
	vals := Eval(c, []bool{true}, []bool{false})
	ns := NextState(c, vals)
	if len(ns) != 1 || ns[0] != true { // XOR(en=1, q=0) = 1
		t.Fatalf("NextState = %v, want [true]", ns)
	}
}

func TestEvalPanicsOnBadWidths(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	for _, fn := range []func(){
		func() { Eval(c, []bool{true}, nil) },
		func() { Eval(c, make([]bool, 5), []bool{true}) },
		func() { EvalTernary(c, nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMachineCircuitAccessor(t *testing.T) {
	c := mustParse(t, "toggle", toggleBench)
	m := NewMachine(c)
	if m.Circuit() != c {
		t.Fatal("Circuit accessor broken")
	}
	// Peek/Values on a fresh (dirty) machine must re-evaluate.
	n, _ := c.NetByName("n")
	_ = m.Peek(n)
	_ = m.Values()
}
