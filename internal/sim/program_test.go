package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"dft/internal/logic"
)

// randomCircuit builds a random netlist exercising every compilable
// gate type — including Buf/Not chains, constants feeding logic (so
// folding triggers), deliberately tied fanins (idempotence and XOR
// cancellation), and optionally DFFs — with random fanin and fanout.
func randomCircuit(rng *rand.Rand, nIn, nGates, nDFF int) *logic.Circuit {
	c := logic.New(fmt.Sprintf("prop_%d_%d_%d", nIn, nGates, nDFF))
	nets := make([]int, 0, nIn+nGates+nDFF+2)
	for i := 0; i < nIn; i++ {
		nets = append(nets, c.AddInput(fmt.Sprintf("I%d", i)))
	}
	nets = append(nets, c.AddGate(logic.Const0, "K0"))
	nets = append(nets, c.AddGate(logic.Const1, "K1"))
	types := []logic.GateType{
		logic.Buf, logic.Not,
		logic.And, logic.Nand, logic.Or, logic.Nor,
		logic.Xor, logic.Xnor,
	}
	for i := 0; i < nDFF; i++ {
		// D input picked from what exists so far; the DFF output is a
		// source for downstream logic.
		d := nets[rng.Intn(len(nets))]
		nets = append(nets, c.AddDFF(fmt.Sprintf("FF%d", i), d))
	}
	for i := 0; i < nGates; i++ {
		t := types[rng.Intn(len(types))]
		var fanin []int
		if t == logic.Buf || t == logic.Not {
			fanin = []int{nets[rng.Intn(len(nets))]}
		} else {
			k := 2 + rng.Intn(4)
			for j := 0; j < k; j++ {
				// Duplicates are allowed on purpose: tied inputs must
				// fold without changing the result.
				fanin = append(fanin, nets[rng.Intn(len(nets))])
			}
		}
		nets = append(nets, c.AddGate(t, fmt.Sprintf("G%d", i), fanin...))
	}
	// A handful of outputs over the deepest nets.
	for i := 0; i < 3 && i < len(nets); i++ {
		c.MarkOutput(nets[len(nets)-1-i])
	}
	c.MustFinalize()
	return c
}

// evalAllKernels runs one (pi, state) vector through the four scalar/
// word paths plus the blocked kernel and checks every net agrees.
func checkKernelsAgree(t *testing.T, c *logic.Circuit, p *Program, pi, state []bool) {
	t.Helper()
	n := c.NumNets()
	ref := make([]bool, n)
	EvalInterpInto(c, pi, state, ref, nil)

	got := make([]bool, n)
	p.EvalInto(pi, state, got)
	for i := 0; i < n; i++ {
		if got[i] != ref[i] {
			t.Fatalf("%s: compiled scalar net %d = %v, interp %v", c.Name, i, got[i], ref[i])
		}
	}

	// Word kernels: replicate the pattern across all 64 lanes.
	wpi := make([]uint64, len(pi))
	for i, b := range pi {
		if b {
			wpi[i] = ^uint64(0)
		}
	}
	wstate := make([]uint64, len(state))
	for i, b := range state {
		if b {
			wstate[i] = ^uint64(0)
		}
	}
	wref := make(Words, n)
	EvalWordsInterpInto(c, wpi, wstate, wref, nil)
	wgot := make(Words, n)
	p.EvalWordsInto(wpi, wstate, wgot)
	for i := 0; i < n; i++ {
		want := uint64(0)
		if ref[i] {
			want = ^uint64(0)
		}
		if wref[i] != want {
			t.Fatalf("%s: interp word net %d = %#x, scalar says %#x", c.Name, i, wref[i], want)
		}
		if wgot[i] != want {
			t.Fatalf("%s: compiled word net %d = %#x, want %#x", c.Name, i, wgot[i], want)
		}
	}

	// Blocked kernel, W=3: lane-major inputs replicated per lane.
	const W = 3
	bpi := make([]uint64, len(pi)*W)
	for i := range wpi {
		for w := 0; w < W; w++ {
			bpi[i*W+w] = wpi[i]
		}
	}
	bstate := make([]uint64, len(state)*W)
	for i := range wstate {
		for w := 0; w < W; w++ {
			bstate[i*W+w] = wstate[i]
		}
	}
	bgot := p.EvalBlock(bpi, bstate, W)
	for i := 0; i < n; i++ {
		want := uint64(0)
		if ref[i] {
			want = ^uint64(0)
		}
		for w := 0; w < W; w++ {
			if bgot[i*W+w] != want {
				t.Fatalf("%s: blocked net %d lane %d = %#x, want %#x", c.Name, i, w, bgot[i*W+w], want)
			}
		}
	}
}

// TestCrossKernelRandomCircuits is the cross-kernel property test:
// on randomized circuits (all gate types, random fanin/fanout, tied
// inputs, constants, DFFs) the compiled scalar, compiled word, blocked,
// interpreted scalar and interpreted word kernels agree on every net
// for random pattern sets.
func TestCrossKernelRandomCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		nIn := 1 + rng.Intn(8)
		nGates := 5 + rng.Intn(60)
		nDFF := rng.Intn(3)
		c := randomCircuit(rng, nIn, nGates, nDFF)
		p := Compile(c)
		if p.NumInstrs() != len(c.Order) {
			t.Fatalf("%s: %d instrs for %d ordered nets", c.Name, p.NumInstrs(), len(c.Order))
		}
		for pat := 0; pat < 8; pat++ {
			pi := make([]bool, nIn)
			for i := range pi {
				pi[i] = rng.Intn(2) == 1
			}
			state := make([]bool, len(c.DFFs))
			for i := range state {
				state[i] = rng.Intn(2) == 1
			}
			checkKernelsAgree(t, c, p, pi, state)
		}
	}
}

// TestCrossKernelExhaustive verifies kernel agreement on the complete
// 2^n input space of small random circuits.
func TestCrossKernelExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		nIn := 1 + rng.Intn(5)
		c := randomCircuit(rng, nIn, 4+rng.Intn(24), 0)
		p := Compile(c)
		pi := make([]bool, nIn)
		for x := 0; x < 1<<uint(nIn); x++ {
			for i := range pi {
				pi[i] = x>>uint(i)&1 == 1
			}
			checkKernelsAgree(t, c, p, pi, nil)
		}
	}
}

// TestCompileFoldsConstants pins down the constant-folding rules on a
// hand-built circuit: constant feeds, tied inputs and XOR pairs all
// reduce, and the folded program still writes every net correctly.
func TestCompileFoldsConstants(t *testing.T) {
	c := logic.New("fold")
	a := c.AddInput("a")
	b := c.AddInput("b")
	k0 := c.AddGate(logic.Const0, "k0")
	k1 := c.AddGate(logic.Const1, "k1")
	andK0 := c.AddGate(logic.And, "andK0", a, k0)    // -> const 0
	andK1 := c.AddGate(logic.And, "andK1", a, k1, b) // -> a AND b
	orTied := c.AddGate(logic.Or, "orTied", a, a, a) // -> buf a
	xorPair := c.AddGate(logic.Xor, "xorPair", a, b, a) // -> buf b
	xorK1 := c.AddGate(logic.Xor, "xorK1", a, k1)       // -> not a
	norK1 := c.AddGate(logic.Nor, "norK1", a, k1)       // -> const 0
	nandDead := c.AddGate(logic.Nand, "nandDead", andK0, b) // andK0 is const 0 -> const 1
	c.MarkOutput(nandDead)
	c.MustFinalize()

	p := Compile(c)
	if p.Folded() == 0 {
		t.Fatalf("expected folded gates, got none")
	}
	for _, pi := range [][]bool{{false, false}, {false, true}, {true, false}, {true, true}} {
		ref := make([]bool, c.NumNets())
		EvalInterpInto(c, pi, nil, ref, nil)
		got := p.Eval(pi, nil)
		for _, net := range []int{andK0, andK1, orTied, xorPair, xorK1, norK1, nandDead} {
			if got[net] != ref[net] {
				t.Fatalf("pi=%v net %s: compiled %v, interp %v", pi, c.NameOf(net), got[net], ref[net])
			}
		}
	}
}

// TestKernelDispatch checks the package entry points actually switch
// kernels, and that both give the same answers through the public API.
func TestKernelDispatch(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	pi := []bool{true, false, true, true, false}
	prev := SetDefaultKernel(KernelInterp)
	defer SetDefaultKernel(prev)
	interp := Eval(c, pi, nil)
	SetDefaultKernel(KernelCompiled)
	compiled := Eval(c, pi, nil)
	for i := range interp {
		if interp[i] != compiled[i] {
			t.Fatalf("net %d: interp %v compiled %v", i, interp[i], compiled[i])
		}
	}
}

func TestKernelParse(t *testing.T) {
	for _, tc := range []struct {
		s  string
		k  Kernel
		ok bool
	}{
		{"compiled", KernelCompiled, true},
		{"interp", KernelInterp, true},
		{"fast", KernelCompiled, false},
	} {
		k, err := ParseKernel(tc.s)
		if (err == nil) != tc.ok || (tc.ok && k != tc.k) {
			t.Errorf("ParseKernel(%q) = %v, %v", tc.s, k, err)
		}
	}
	if KernelCompiled.String() != "compiled" || KernelInterp.String() != "interp" {
		t.Errorf("kernel names: %q %q", KernelCompiled, KernelInterp)
	}
}

// TestCompiledForCache checks identity caching and that the FIFO bound
// holds under a MakeTestable-style flood of throwaway circuits.
func TestCompiledForCache(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	p1 := CompiledFor(c)
	p2 := CompiledFor(c)
	if p1 != p2 {
		t.Fatalf("cache returned distinct programs for one circuit")
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2*programCacheCap; i++ {
		CompiledFor(randomCircuit(rng, 2, 3, 0))
	}
	progCacheMu.Lock()
	n := len(progCacheAge)
	progCacheMu.Unlock()
	if n > programCacheCap {
		t.Fatalf("cache grew to %d entries past cap %d", n, programCacheCap)
	}
}

// TestExhaustiveBlock checks the mask-synthesized enumeration equals
// the scalar count for widths spanning the mask table boundary (6) and
// partial tail blocks.
func TestExhaustiveBlock(t *testing.T) {
	for _, n := range []int{0, 1, 3, 5, 6, 7, 8} {
		free := make([]int, n)
		for i := range free {
			free[i] = i
		}
		words := make([]uint64, n)
		total := uint64(1) << uint(n)
		seen := uint64(0)
		for base := uint64(0); base < total; base += 64 {
			k := ExhaustiveBlock(words, free, base)
			for p := 0; p < k; p++ {
				x := base + uint64(p)
				for b := 0; b < n; b++ {
					got := words[b]>>uint(p)&1 == 1
					want := x>>uint(b)&1 == 1
					if got != want {
						t.Fatalf("n=%d pattern %d var %d: got %v want %v", n, x, b, got, want)
					}
				}
			}
			seen += uint64(k)
		}
		if seen != total {
			t.Fatalf("n=%d enumerated %d of %d patterns", n, seen, total)
		}
	}
}

func TestPackPatternsInto(t *testing.T) {
	c := mustParse(t, "c17", c17Bench)
	rng := rand.New(rand.NewSource(11))
	pats := make([][]bool, 37)
	for i := range pats {
		p := make([]bool, len(c.PIs))
		for j := range p {
			p[j] = rng.Intn(2) == 1
		}
		pats[i] = p
	}
	want := PackPatterns(c, pats)
	words := make([]uint64, len(c.PIs))
	// Pre-poison the buffer: PackPatternsInto must zero it.
	for i := range words {
		words[i] = ^uint64(0)
	}
	if k := PackPatternsInto(pats, words); k != len(pats) {
		t.Fatalf("packed %d patterns, want %d", k, len(pats))
	}
	for i := range words {
		if words[i] != want[i] {
			t.Fatalf("word %d: %#x want %#x", i, words[i], want[i])
		}
	}
}

func BenchmarkCompile(b *testing.B) {
	c, err := logic.ParseBenchString("c17", c17Bench)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Compile(c)
	}
}
