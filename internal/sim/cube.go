package sim

import (
	"fmt"
	"math/bits"

	"dft/internal/logic"
)

// PackedCube is a partially-specified input vector packed along the
// input axis: bit i of Care is set when input i is assigned, and bit i
// of Val holds its value (only meaningful under a set Care bit). Two
// word slices make the static-compaction inner loop — compatibility
// checks over thousands of cube pairs — a handful of word operations
// instead of a per-input walk.
type PackedCube struct {
	Care []uint64
	Val  []uint64
}

// PackCube packs a ternary input vector (logic.Zero / logic.One /
// logic.X per input) into word form.
func PackCube(vals []logic.V) PackedCube {
	nw := (len(vals) + 63) / 64
	c := PackedCube{Care: make([]uint64, nw), Val: make([]uint64, nw)}
	for i, v := range vals {
		switch v {
		case logic.One:
			c.Care[i/64] |= 1 << uint(i%64)
			c.Val[i/64] |= 1 << uint(i%64)
		case logic.Zero:
			c.Care[i/64] |= 1 << uint(i%64)
		}
	}
	return c
}

// Compatible reports whether the two cubes agree on every input both
// care about — i.e. whether they can be merged into one pattern.
func (c PackedCube) Compatible(d PackedCube) bool {
	if len(c.Care) != len(d.Care) {
		panic(fmt.Sprintf("sim: cube widths differ (%d vs %d words)", len(c.Care), len(d.Care)))
	}
	for w := range c.Care {
		if both := c.Care[w] & d.Care[w]; both&(c.Val[w]^d.Val[w]) != 0 {
			return false
		}
	}
	return true
}

// Merge absorbs d into c: every input d cares about becomes assigned
// in c. The caller must have checked Compatible first; on conflicting
// bits the result is undefined.
func (c PackedCube) Merge(d PackedCube) {
	for w := range c.Care {
		c.Care[w] |= d.Care[w]
		c.Val[w] |= d.Val[w] & d.Care[w]
	}
}

// CareCount is the number of assigned inputs — the cube's specificity,
// which greedy essential-fault-first ordering sorts on.
func (c PackedCube) CareCount() int {
	n := 0
	for _, w := range c.Care {
		n += bits.OnesCount64(w)
	}
	return n
}

// Unpack expands the cube back to a ternary vector of n inputs.
func (c PackedCube) Unpack(n int) []logic.V {
	vals := make([]logic.V, n)
	for i := range vals {
		switch {
		case c.Care[i/64]&(1<<uint(i%64)) == 0:
			vals[i] = logic.X
		case c.Val[i/64]&(1<<uint(i%64)) != 0:
			vals[i] = logic.One
		default:
			vals[i] = logic.Zero
		}
	}
	return vals
}
