package sim

// This file holds hooks for tests only. Production code must not call
// anything in it.

// CorruptOpcodeForTest flips instruction i's opcode to its logical
// dual (AND<->OR, XOR<->XNOR, BUF<->NOT, CONST0<->CONST1), simulating
// a compiler bug. It exists so differential-fuzzing tests can prove a
// broken kernel is caught; the mutated program is otherwise structurally
// valid, so only an output-comparing oracle can tell it apart.
func (p *Program) CorruptOpcodeForTest(i int) {
	dual := map[opcode]opcode{
		opConst0: opConst1, opConst1: opConst0,
		opBuf: opNot, opNot: opBuf,
		opAnd2: opOr2, opOr2: opAnd2,
		opNand2: opNor2, opNor2: opNand2,
		opXor2: opXnor2, opXnor2: opXor2,
		opAndN: opOrN, opOrN: opAndN,
		opNandN: opNorN, opNorN: opNandN,
		opXorN: opXnorN, opXnorN: opXorN,
	}
	p.code[i].op = dual[p.code[i].op]
}
