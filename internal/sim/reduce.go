// Pre-compile netlist reduction.
//
// Reduce shrinks a finalized netlist before any simulation work is
// spent on it: constants propagate through the logic, structurally
// identical gates merge (structural hashing), Buf/single-operand
// wrappers collapse into aliases, and single-fanout gates of an
// associative type are absorbed into a compatible reader — the
// fanout-free-region collapse that turns AND-into-NAND trees into one
// n-ary gate. The same Boolean identities drive the compiled kernel's
// instruction folding (program.go); Reduce applies them at the netlist
// level so every downstream consumer — fault engine, syndrome, Walsh,
// fuzzdiff, the service — sees fewer nets, and returns a remap table
// so views and fault sites on the original netlist survive the move.
//
// The reduced circuit is guaranteed to stay structurally clean: if the
// input passes fuzzdiff.Lint without diagnostics, so does the output.
// The subtle case is constant folding, which can orphan a net (a
// primary input whose only reader folds away would become a dangling
// net). Reduce resolves this with an orphan-repair fixpoint: any fold
// or collapse that would leave a materialized net unread and
// unobserved is downgraded to a plain rewrite of the gate (same type,
// operands mapped), which computes the identical value but keeps its
// operands read. PI order, PO order and count, and DFF order and
// count are always preserved exactly.
package sim

import (
	"fmt"
	"sort"

	"dft/internal/logic"
	"dft/internal/telemetry"
)

var (
	cReducePasses    = telemetry.Default().Counter("sim.reduce.passes")
	cReduceHashed    = telemetry.Default().Counter("sim.reduce.hashed_gates")
	cReduceFolded    = telemetry.Default().Counter("sim.reduce.folded_gates")
	cReduceCollapsed = telemetry.Default().Counter("sim.reduce.collapsed_gates")
)

// ReduceStats summarizes one reduction pass.
type ReduceStats struct {
	NetsIn, NetsOut   int // total elements before/after
	GatesIn, GatesOut int // combinational gates before/after
	Folded            int // gates whose value proved constant
	Hashed            int // gates merged with a structural twin
	Collapsed         int // wrappers aliased away + gates absorbed into their reader
	Repaired          int // folds downgraded to keep a net observable-clean
}

// ReduceMap carries the reduced netlist's relation to the original so
// fault sites, views and per-net data survive the reduction.
type ReduceMap struct {
	// NetOf maps each original net to the reduced net carrying the
	// identical value, or -1 when the net was eliminated (folded to a
	// constant, absorbed into its reader, or merged into a twin whose
	// reduced net then appears as some other original net's image).
	NetOf []int
	// ConstOf reports nets whose value proved constant: -1 unknown,
	// otherwise 0 or 1. A net may have both a constant value and a
	// reduced image when orphan repair kept it materialized.
	ConstOf []int8
	// Stats summarizes what the pass did.
	Stats ReduceStats
}

// decision kinds for one original element.
const (
	dMaterialize uint8 = iota // emit a gate (simplified type + operands)
	dRaw                      // emit the original gate with mapped operands (orphan repair)
	dConst                    // value is a known constant; no gate emitted
	dAlias                    // value equals another net's; no gate emitted
	dAbsorb                   // operand list spliced into the single reader
	dSource                   // PI or DFF: always materialized
)

// rdecision is the analysis verdict for one original element.
type rdecision struct {
	kind uint8
	cval bool   // for dConst
	to   int    // for dAlias: original net whose value this one equals
	typ  logic.GateType
	ops  []int  // simplified operand list, original root net ids
	flip bool   // for dAbsorb of XOR chains: parity carried to the reader
}

// Reduce returns a reduced copy of the finalized circuit c and the
// remap table relating the two. When no structural reduction applies
// (or the circuit shape cannot be rebuilt through the public builder
// API), it may return c itself with an identity map.
func Reduce(c *logic.Circuit) (*logic.Circuit, *ReduceMap) {
	span := telemetry.Default().StartSpan("sim.reduce")
	defer span.End()
	cReducePasses.Inc()
	n := c.NumNets()
	rm := &ReduceMap{
		NetOf:   make([]int, n),
		ConstOf: make([]int8, n),
		Stats: ReduceStats{
			NetsIn:  n,
			GatesIn: c.NumGates(),
		},
	}
	for i := range rm.ConstOf {
		rm.ConstOf[i] = -1
	}
	if len(c.PIs) == 0 && len(c.DFFs) > 0 {
		// A stateful circuit with no primary inputs cannot be rebuilt
		// through the builder API (the first DFF would have no valid
		// placeholder operand). Degenerate and rare: return it as-is.
		for i := range rm.NetOf {
			rm.NetOf[i] = i
		}
		rm.Stats.NetsOut = n
		rm.Stats.GatesOut = rm.Stats.GatesIn
		return c, rm
	}

	r := &reducer{c: c, dec: make([]rdecision, n), rm: rm}
	r.analyze()
	r.repairOrphans()
	out := r.emit()
	rm.Stats.NetsOut = out.NumNets()
	rm.Stats.GatesOut = out.NumGates()
	cReduceFolded.Add(int64(rm.Stats.Folded))
	cReduceHashed.Add(int64(rm.Stats.Hashed))
	cReduceCollapsed.Add(int64(rm.Stats.Collapsed))
	span.SetAttr("gates_in", fmt.Sprint(rm.Stats.GatesIn))
	span.SetAttr("gates_out", fmt.Sprint(rm.Stats.GatesOut))
	return out, rm
}

type reducer struct {
	c   *logic.Circuit
	dec []rdecision
	rm  *ReduceMap
	po  []bool // original net is a primary output
}

// aliasRoot resolves an original net through alias decisions to the
// net that carries its value.
func (r *reducer) aliasRoot(id int) int {
	for r.dec[id].kind == dAlias {
		id = r.dec[id].to
	}
	return id
}

// kvalOf returns the known constant value of an original net, or -1.
func (r *reducer) kvalOf(id int) int8 { return r.rm.ConstOf[r.aliasRoot(id)] }

// analyze walks the netlist once in topological order and assigns
// every element a decision: sources stay, gates fold to constants,
// collapse to aliases, get absorbed into their single compatible
// reader, merge with a structural twin, or materialize simplified.
func (r *reducer) analyze() {
	c := r.c
	r.po = make([]bool, c.NumNets())
	for _, po := range c.POs {
		r.po[po] = true
	}
	// Single-fanout gates of a non-inverting associative type whose one
	// reader has a compatible type are candidates for absorption; POs
	// and DFF feeds are excluded (the reader must be combinational).
	absorbable := func(id int) bool {
		g := &c.Gates[id]
		if r.po[id] || len(c.Fanout[id]) != 1 {
			return false
		}
		rd := c.Fanout[id][0]
		rt := c.Gates[rd].Type
		switch g.Type {
		case logic.And:
			return rt == logic.And || rt == logic.Nand
		case logic.Or:
			return rt == logic.Or || rt == logic.Nor
		case logic.Xor:
			return rt == logic.Xor || rt == logic.Xnor
		}
		return false
	}

	for _, pi := range c.PIs {
		r.dec[pi] = rdecision{kind: dSource, typ: logic.Input}
	}
	for _, d := range c.DFFs {
		r.dec[d] = rdecision{kind: dSource, typ: logic.DFF}
	}

	hash := map[string]int{} // structural key -> original net id of the twin
	var keyBuf []byte
	for _, id := range c.Order {
		g := &c.Gates[id]
		var d rdecision
		switch g.Type {
		case logic.Const0:
			d = rdecision{kind: dConst, cval: false}
		case logic.Const1:
			d = rdecision{kind: dConst, cval: true}
		case logic.Buf, logic.Not:
			d = r.simplifyUnary(g)
		case logic.And, logic.Nand:
			d = r.simplifyAndOr(g, true, g.Type == logic.Nand)
		case logic.Or, logic.Nor:
			d = r.simplifyAndOr(g, false, g.Type == logic.Nor)
		case logic.Xor, logic.Xnor:
			d = r.simplifyXor(g, g.Type == logic.Xnor)
		default:
			d = rdecision{kind: dRaw, typ: g.Type}
		}

		switch d.kind {
		case dConst:
			r.rm.ConstOf[id] = 0
			if d.cval {
				r.rm.ConstOf[id] = 1
			}
			r.rm.Stats.Folded++
		case dAlias:
			r.rm.Stats.Collapsed++
		case dMaterialize:
			if absorbable(id) {
				d.kind = dAbsorb
				r.rm.Stats.Collapsed++
				break
			}
			// Structural hashing: a gate with a twin's exact type and
			// operand multiset carries the twin's value.
			keyBuf = structKey(keyBuf[:0], d.typ, d.ops)
			if twin, ok := hash[string(keyBuf)]; ok {
				d = rdecision{kind: dAlias, to: twin}
				r.rm.Stats.Hashed++
			} else {
				hash[string(keyBuf)] = id
			}
		}
		r.dec[id] = d
	}
}

// structKey encodes (type, sorted operands) for the structural hash.
// Every reducible gate type is commutative, so sorting canonicalizes.
func structKey(buf []byte, t logic.GateType, ops []int) []byte {
	sorted := append([]int(nil), ops...)
	sort.Ints(sorted)
	buf = append(buf, byte(t))
	for _, o := range sorted {
		buf = append(buf, byte(o), byte(o>>8), byte(o>>16), byte(o>>24))
	}
	return buf
}

// operand resolution outcome used by the simplifiers.
type roperand struct {
	known int8  // -1 unknown, else 0/1
	id    int   // alias-resolved original net (valid when known < 0)
	ops   []int // spliced absorbed list (nil unless absorbed)
	flip  bool  // parity carried by a spliced XOR list
}

// resolve maps one original fanin net to a constant, a spliced
// absorbed operand list, or a value-carrying net.
func (r *reducer) resolve(f int) roperand {
	root := r.aliasRoot(f)
	if kv := r.rm.ConstOf[root]; kv >= 0 {
		return roperand{known: kv}
	}
	if r.dec[root].kind == dAbsorb {
		return roperand{known: -1, ops: r.dec[root].ops, flip: r.dec[root].flip}
	}
	return roperand{known: -1, id: root}
}

func (r *reducer) simplifyUnary(g *logic.Gate) rdecision {
	inv := g.Type == logic.Not
	op := r.resolve(g.Fanin[0])
	if op.known >= 0 {
		return rdecision{kind: dConst, cval: (op.known == 1) != inv}
	}
	if op.ops != nil {
		// A Buf/Not wrapper around an absorbed gate: the absorption was
		// decided against the wrapper as single reader; keep the wrapper
		// on the materialized form of the inner gate instead.
		inner := r.aliasRoot(g.Fanin[0])
		r.unabsorb(inner)
		op.id = inner
	}
	if !inv {
		return rdecision{kind: dAlias, to: op.id}
	}
	return rdecision{kind: dMaterialize, typ: logic.Not, ops: []int{op.id}}
}

// unabsorb downgrades an absorb decision back to materialize; used
// when a reader turns out not to splice after all.
func (r *reducer) unabsorb(id int) {
	if r.dec[id].kind == dAbsorb {
		r.dec[id].kind = dMaterialize
		r.rm.Stats.Collapsed--
	}
}

func (r *reducer) simplifyAndOr(g *logic.Gate, and, inv bool) rdecision {
	identity, controlling := int8(1), int8(0)
	if !and {
		identity, controlling = 0, 1
	}
	base := logic.And
	if !and {
		base = logic.Or
	}
	var ops []int
	add := func(id int) {
		for _, x := range ops {
			if x == id {
				return // idempotence: a AND a = a
			}
		}
		ops = append(ops, id)
	}
	controlled := false
	for _, f := range g.Fanin {
		op := r.resolve(f)
		switch {
		case op.known == identity:
			// dropped: cannot affect the reduce
		case op.known == controlling:
			controlled = true
		case op.ops != nil && !op.flip:
			// Fanout-free-region collapse: splice the absorbed gate's
			// operands (only same-base lists reach here by construction).
			for _, x := range op.ops {
				add(x)
			}
		case op.ops != nil:
			// defensive: a flipped list cannot come from an AND/OR chain
			inner := r.aliasRoot(f)
			r.unabsorb(inner)
			add(inner)
		default:
			add(op.id)
		}
	}
	if controlled {
		return rdecision{kind: dConst, cval: (controlling == 1) != inv}
	}
	switch len(ops) {
	case 0:
		return rdecision{kind: dConst, cval: (identity == 1) != inv}
	case 1:
		if !inv {
			return rdecision{kind: dAlias, to: ops[0]}
		}
		return rdecision{kind: dMaterialize, typ: logic.Not, ops: ops}
	}
	typ := base
	if inv {
		typ = logic.Nand
		if !and {
			typ = logic.Nor
		}
	}
	return rdecision{kind: dMaterialize, typ: typ, ops: ops}
}

func (r *reducer) simplifyXor(g *logic.Gate, inv bool) rdecision {
	flip := inv
	var ops []int
	add := func(id int) {
		for i, x := range ops {
			if x == id {
				// pair cancellation: a XOR a = 0
				ops = append(ops[:i], ops[i+1:]...)
				return
			}
		}
		ops = append(ops, id)
	}
	for _, f := range g.Fanin {
		op := r.resolve(f)
		switch {
		case op.known == 0:
			// dropped
		case op.known == 1:
			flip = !flip
		case op.ops != nil:
			if op.flip {
				flip = !flip
			}
			for _, x := range op.ops {
				add(x)
			}
		default:
			add(op.id)
		}
	}
	switch len(ops) {
	case 0:
		return rdecision{kind: dConst, cval: flip}
	case 1:
		if !flip {
			return rdecision{kind: dAlias, to: ops[0]}
		}
		// flip must ride along: if this gate is later absorbed into an
		// Xor/Xnor reader, the splice sees the operand list plus parity.
		return rdecision{kind: dMaterialize, typ: logic.Not, ops: ops, flip: true}
	}
	typ := logic.Xor
	if flip {
		typ = logic.Xnor
	}
	// typ carries the parity for emission; flip carries it for splicing
	// consumers, which see the raw operand list.
	return rdecision{kind: dMaterialize, typ: typ, ops: ops, flip: flip}
}

// repairOrphans iterates until every materialized net is read or
// observed in the planned output. A fold/collapse whose disappearance
// would orphan a net is downgraded: the orphan's first original reader
// is rewritten as its original gate with mapped operands (identical
// value, original reads), which may materialize further nets; the loop
// re-checks until stable. Each round flips at least one decision to a
// more-materialized state, so it terminates.
func (r *reducer) repairOrphans() {
	c := r.c
	n := c.NumNets()
	reads := make([]int, n)
	// countRead mirrors emission's operand mapping exactly: the output
	// reads the root net iff the root is materialized (a net folded to a
	// constant AND kept materialized by an earlier repair round is still
	// read — only eliminated constants resolve to the shared Const gate).
	countRead := func(f int) {
		if root := r.aliasRoot(f); r.materialized(root) {
			reads[root]++
		}
	}
	for round := 0; ; round++ {
		for i := range reads {
			reads[i] = 0
		}
		// Count planned reads against original root ids.
		for id := range c.Gates {
			d := &r.dec[id]
			switch d.kind {
			case dMaterialize:
				for _, op := range d.ops {
					countRead(op)
				}
			case dRaw:
				for _, f := range c.Gates[id].Fanin {
					countRead(f)
				}
			case dSource:
				if c.Gates[id].Type == logic.DFF {
					countRead(c.Gates[id].Fanin[0])
				}
			}
		}
		observed := make([]bool, n)
		for _, po := range c.POs {
			if root := r.aliasRoot(po); r.materialized(root) {
				observed[root] = true
			}
		}
		fixed := 0
		for id := 0; id < n; id++ {
			if !r.materialized(id) || reads[id] > 0 || observed[id] {
				continue
			}
			// id is planned but unread and unobserved. If the original
			// circuit left it dangling too, reproducing that is fine;
			// otherwise rewrite one original reader to restore a read.
			if len(c.Fanout[id]) == 0 && !r.po[id] {
				continue
			}
			// A truly unread materialized net cannot have a dRaw or DFF
			// reader (those read every operand), so some reader here is
			// always downgradable; the bool guards termination anyway.
			for _, reader := range c.Fanout[id] {
				if r.downgrade(reader) {
					fixed++
					break
				}
			}
		}
		if fixed == 0 {
			return
		}
		r.rm.Stats.Repaired += fixed
	}
}

// materialized reports whether original net id has a planned gate in
// the output.
func (r *reducer) materialized(id int) bool {
	switch r.dec[id].kind {
	case dMaterialize, dRaw, dSource:
		return true
	}
	return false
}

// downgrade rewrites a gate's decision to dRaw: original type, all
// original operands (mapped), identical value. Any operand that was
// folded away must materialize again for the raw gate to read — for
// constants a shared Const gate is emitted on demand; aliases resolve
// to their root; absorbed operands revert to materialized gates. It
// reports whether the decision actually changed.
func (r *reducer) downgrade(id int) bool {
	c := r.c
	d := &r.dec[id]
	switch d.kind {
	case dConst:
		r.rm.Stats.Folded--
	case dAlias:
		r.rm.Stats.Collapsed--
	case dAbsorb:
		r.rm.Stats.Collapsed--
	case dMaterialize:
		// raw keeps every original read where simplified ops may not
	case dSource, dRaw:
		return false
	}
	*d = rdecision{kind: dRaw, typ: c.Gates[id].Type}
	// A raw gate reads every original operand: revert absorbed
	// operands so they exist to be read.
	for _, f := range c.Gates[id].Fanin {
		root := r.aliasRoot(f)
		if r.dec[root].kind == dAbsorb {
			r.unabsorb(root)
		}
	}
	return true
}

// emit builds the reduced circuit from the final decisions.
func (r *reducer) emit() *logic.Circuit {
	c := r.c
	nc := logic.New(c.Name + "_reduced")
	rm := r.rm
	mapped := make([]int, c.NumNets())
	for i := range mapped {
		mapped[i] = -1
	}
	constNet := [2]int{-1, -1}
	useConst := func(v int8) int {
		if constNet[v] < 0 {
			t := logic.Const0
			if v == 1 {
				t = logic.Const1
			}
			constNet[v] = nc.AddGate(t, "")
		}
		return constNet[v]
	}
	// operand mapping: constants get shared Const gates, aliases follow
	// their root, everything else must already be materialized.
	mapOp := func(f int) int {
		root := r.aliasRoot(f)
		if kv := rm.ConstOf[root]; kv >= 0 && mapped[root] < 0 {
			return useConst(kv)
		}
		return mapped[root]
	}

	for _, pi := range c.PIs {
		mapped[pi] = nc.AddInput(c.Gates[pi].Name)
	}
	dffPlaceholder := 0 // a valid net: PIs exist whenever DFFs do (guarded in Reduce)
	for _, d := range c.DFFs {
		mapped[d] = nc.AddDFF(c.Gates[d].Name, dffPlaceholder)
	}
	for _, id := range c.Order {
		d := &r.dec[id]
		switch d.kind {
		case dMaterialize:
			ops := make([]int, len(d.ops))
			for i, op := range d.ops {
				ops[i] = mapped[r.aliasRoot(op)]
			}
			mapped[id] = nc.AddGate(d.typ, c.Gates[id].Name, ops...)
		case dRaw:
			g := &c.Gates[id]
			ops := make([]int, len(g.Fanin))
			for i, f := range g.Fanin {
				ops[i] = mapOp(f)
			}
			mapped[id] = nc.AddGate(g.Type, g.Name, ops...)
		}
	}
	// Patch DFF D inputs now that every driver exists.
	for _, d := range c.DFFs {
		nc.Gates[mapped[d]].Fanin[0] = mapOp(c.Gates[d].Fanin[0])
	}
	// Primary outputs, in order; a PO on a folded net observes the
	// shared constant.
	for _, po := range c.POs {
		nc.MarkOutput(mapOp(po))
	}
	// Publish the remap: aliases share their root's image.
	for id := range c.Gates {
		rm.NetOf[id] = mapped[r.aliasRoot(id)]
	}
	return nc.MustFinalize()
}
