package sim

import (
	"fmt"

	"dft/internal/logic"
	"dft/internal/telemetry"
)

// HazardClass classifies a net's behavior during an input transition.
type HazardClass uint8

const (
	// HazardFree: the net cannot glitch during the transition.
	HazardFree HazardClass = iota
	// StaticHazard: the net's steady-state value is the same before and
	// after, but it may glitch in between (the X-pass cannot hold it).
	StaticHazard
	// Changing: the net settles to a different final value (a clean,
	// expected transition — or a dynamic hazard if it bounces, which
	// ternary analysis conservatively folds in here).
	Changing
	// Unsettled: the final ternary value is X — the transition may not
	// settle at all (critical race / oscillation territory).
	Unsettled
)

// String names the class.
func (h HazardClass) String() string {
	switch h {
	case HazardFree:
		return "hazard-free"
	case StaticHazard:
		return "static-hazard"
	case Changing:
		return "changing"
	case Unsettled:
		return "unsettled"
	}
	return fmt.Sprintf("HazardClass(%d)", uint8(h))
}

// HazardAnalysis runs Eichelberger's two-pass ternary procedure
// ([103] in the paper; the analytical foundation of the paper's
// "level-sensitive" discipline) for the input transition p1 → p2 on a
// combinational circuit:
//
//	pass 1: changing inputs are X, stable inputs keep their value —
//	        every net that could be disturbed during the transition
//	        goes to X;
//	pass 2: inputs take their final values — nets recover.
//
// A net whose pass-1 value is X but whose initial and final values are
// equal carries a static hazard; if its pass-2 value is still X the
// transition may never settle.
var cHazardChecks = telemetry.Default().Counter("sim.hazard.checks")

func HazardAnalysis(c *logic.Circuit, p1, p2 []bool) []HazardClass {
	cHazardChecks.Inc()
	if len(p1) != len(c.PIs) || len(p2) != len(c.PIs) {
		panic(fmt.Sprintf("sim: transition width %d/%d for %d inputs", len(p1), len(p2), len(c.PIs)))
	}
	toV := func(b bool) logic.V { return logic.FromBool(b) }

	initial := make([]logic.V, len(c.PIs))
	mid := make([]logic.V, len(c.PIs))
	final := make([]logic.V, len(c.PIs))
	for i := range p1 {
		initial[i] = toV(p1[i])
		final[i] = toV(p2[i])
		if p1[i] == p2[i] {
			mid[i] = toV(p1[i])
		} else {
			mid[i] = logic.X
		}
	}
	state := make([]logic.V, len(c.DFFs))
	for i := range state {
		state[i] = logic.Zero
	}
	// One fanin scratch serves all three passes; each pass still needs
	// its own valuation since the classification compares them.
	n := c.NumNets()
	scratch := make([]logic.V, c.MaxFanin())
	v1 := make([]logic.V, n)
	vm := make([]logic.V, n)
	v2 := make([]logic.V, n)
	EvalTernaryInto(c, initial, state, v1, scratch)
	EvalTernaryInto(c, mid, state, vm, scratch)
	EvalTernaryInto(c, final, state, v2, scratch)

	out := make([]HazardClass, c.NumNets())
	for n := range out {
		switch {
		case v2[n] == logic.X:
			out[n] = Unsettled
		case v1[n] != v2[n]:
			out[n] = Changing
		case vm[n] == logic.X:
			out[n] = StaticHazard
		default:
			out[n] = HazardFree
		}
	}
	return out
}

// HazardousNets lists the nets with static hazards or unsettled
// behavior for the transition.
func HazardousNets(c *logic.Circuit, p1, p2 []bool) []int {
	cls := HazardAnalysis(c, p1, p2)
	var out []int
	for n, h := range cls {
		if h == StaticHazard || h == Unsettled {
			out = append(out, n)
		}
	}
	return out
}

// ClockSafe reports whether a net that will be used as a gated clock
// is hazard-free for the transition — the check behind the LSSD rule
// that clock gating must not introduce glitches ("immune to most
// anomalies in the ac characteristics of the clock").
func ClockSafe(c *logic.Circuit, clockNet int, p1, p2 []bool) bool {
	cls := HazardAnalysis(c, p1, p2)
	return cls[clockNet] == HazardFree || cls[clockNet] == Changing
}
