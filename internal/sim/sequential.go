package sim

import (
	"fmt"

	"dft/internal/logic"
)

// Machine simulates a sequential circuit cycle by cycle: apply primary
// inputs, observe primary outputs, clock, repeat. It is the reference
// "system operation" model against which the scan disciplines in the
// paper (LSSD, Scan Path, Scan/Set, Random-Access Scan) are compared.
type Machine struct {
	c       *logic.Circuit
	state   []bool
	vals    []bool
	scratch []bool
	dirty   bool // state changed since vals was computed
	lastPI  []bool
}

// NewMachine creates a simulator with all flip-flops reset to 0.
func NewMachine(c *logic.Circuit) *Machine {
	return &Machine{
		c:       c,
		state:   make([]bool, len(c.DFFs)),
		vals:    make([]bool, len(c.Gates)),
		scratch: make([]bool, c.MaxFanin()),
		dirty:   true,
		lastPI:  make([]bool, len(c.PIs)),
	}
}

// Circuit returns the simulated circuit.
func (m *Machine) Circuit() *logic.Circuit { return m.c }

// SetState forces the flip-flop contents (in Circuit.DFFs order).
func (m *Machine) SetState(s []bool) {
	if len(s) != len(m.state) {
		panic(fmt.Sprintf("sim: SetState with %d values for %d flip-flops", len(s), len(m.state)))
	}
	copy(m.state, s)
	m.dirty = true
}

// State returns a copy of the current flip-flop contents.
func (m *Machine) State() []bool { return append([]bool(nil), m.state...) }

// Apply drives the primary inputs and recomputes all nets without
// clocking. It returns the primary output values.
func (m *Machine) Apply(pi []bool) []bool {
	if len(pi) != len(m.lastPI) {
		panic(fmt.Sprintf("sim: Apply with %d values for %d inputs", len(pi), len(m.lastPI)))
	}
	copy(m.lastPI, pi)
	EvalInto(m.c, m.lastPI, m.state, m.vals, m.scratch)
	m.dirty = false
	return Outputs(m.c, m.vals)
}

// Clock latches the DFF D inputs into the flip-flops. The inputs last
// passed to Apply remain in effect; Clock re-evaluates so that Peek and
// subsequent Clocks see the post-edge network.
func (m *Machine) Clock() {
	if m.dirty {
		EvalInto(m.c, m.lastPI, m.state, m.vals, m.scratch)
	}
	for i, id := range m.c.DFFs {
		m.state[i] = m.vals[m.c.Gates[id].Fanin[0]]
	}
	EvalInto(m.c, m.lastPI, m.state, m.vals, m.scratch)
	m.dirty = false
}

// Step is Apply followed by Clock, returning the outputs observed
// before the clock edge — the standard per-cycle test application.
func (m *Machine) Step(pi []bool) []bool {
	out := m.Apply(pi)
	m.Clock()
	return out
}

// Peek returns the current value of an arbitrary net, re-evaluating if
// necessary. This models attaching a probe (test point, bed-of-nails
// nail, or signature-analyzer probe) to the net.
func (m *Machine) Peek(net int) bool {
	if m.dirty {
		EvalInto(m.c, m.lastPI, m.state, m.vals, m.scratch)
		m.dirty = false
	}
	return m.vals[net]
}

// Values returns a copy of the full net valuation.
func (m *Machine) Values() []bool {
	if m.dirty {
		EvalInto(m.c, m.lastPI, m.state, m.vals, m.scratch)
		m.dirty = false
	}
	return append([]bool(nil), m.vals...)
}

// Run applies a sequence of input patterns, clocking after each, and
// returns the output response sequence.
func (m *Machine) Run(patterns [][]bool) [][]bool {
	out := make([][]bool, len(patterns))
	for i, p := range patterns {
		out[i] = m.Step(p)
	}
	return out
}
