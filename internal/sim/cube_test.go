package sim

import (
	"math/rand"
	"testing"

	"dft/internal/logic"
)

func randCubeVals(rng *rand.Rand, n int) []logic.V {
	vals := make([]logic.V, n)
	for i := range vals {
		vals[i] = [3]logic.V{logic.Zero, logic.One, logic.X}[rng.Intn(3)]
	}
	return vals
}

// naiveCompatible is the per-input reference the packed word check
// must agree with.
func naiveCompatible(a, b []logic.V) bool {
	for i := range a {
		if a[i] != logic.X && b[i] != logic.X && a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPackedCubeAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{1, 7, 64, 65, 130} {
		for trial := 0; trial < 200; trial++ {
			a, b := randCubeVals(rng, n), randCubeVals(rng, n)
			pa, pb := PackCube(a), PackCube(b)
			if got, want := pa.Compatible(pb), naiveCompatible(a, b); got != want {
				t.Fatalf("n=%d: Compatible=%v naive=%v\na=%v\nb=%v", n, got, want, a, b)
			}
			if got := pa.Unpack(n); len(got) != n {
				t.Fatalf("Unpack length %d", len(got))
			} else {
				for i := range got {
					if got[i] != a[i] {
						t.Fatalf("n=%d input %d: round trip %v != %v", n, i, got[i], a[i])
					}
				}
			}
			if !pa.Compatible(pb) {
				continue
			}
			pa.Merge(pb)
			merged := pa.Unpack(n)
			for i := range merged {
				want := a[i]
				if want == logic.X {
					want = b[i]
				}
				if merged[i] != want {
					t.Fatalf("n=%d input %d: merged %v, want %v", n, i, merged[i], want)
				}
			}
		}
	}
}

func TestPackedCubeCareCount(t *testing.T) {
	c := PackCube([]logic.V{logic.One, logic.X, logic.Zero, logic.X, logic.One})
	if c.CareCount() != 3 {
		t.Fatalf("CareCount = %d, want 3", c.CareCount())
	}
	if c.Compatible(PackCube([]logic.V{logic.Zero, logic.X, logic.Zero, logic.X, logic.One})) {
		t.Fatal("conflicting first bit reported compatible")
	}
}
