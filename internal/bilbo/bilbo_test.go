package bilbo

import (
	"math/rand"
	"testing"

	"dft/internal/circuits"
	"dft/internal/fault"
	"dft/internal/logic"
)

func TestModeSystemLoadsParallel(t *testing.T) {
	r := NewRegister(8)
	z := []bool{true, false, true, true, false, false, true, false}
	r.Clock(ModeSystem, z, false)
	q := r.Q()
	for i := range z {
		if q[i] != z[i] {
			t.Fatalf("latch %d = %v, want %v", i, q[i], z[i])
		}
	}
}

func TestModeResetClears(t *testing.T) {
	r := NewRegister(8)
	r.SetQ([]bool{true, true, true, true, true, true, true, true})
	r.Clock(ModeReset, nil, false)
	if r.QWord() != 0 {
		t.Fatalf("after reset QWord = %x", r.QWord())
	}
}

func TestModeShiftThroughInverters(t *testing.T) {
	r := NewRegister(4)
	// Shift a single 1 in: it enters inverted at L1.
	r.Clock(ModeShift, nil, true)
	q := r.Q()
	if q[0] != false { // NOT(1)
		t.Fatalf("L1 after shifting 1 = %v, want false (inverted)", q[0])
	}
	r2 := NewRegister(4)
	r2.Clock(ModeShift, nil, false)
	if r2.Q()[0] != true { // NOT(0)
		t.Fatal("L1 after shifting 0 should be true")
	}
}

func TestScanOutAllCompensatesInversions(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		r := NewRegister(8)
		vals := make([]bool, 8)
		for i := range vals {
			vals[i] = rng.Intn(2) == 1
		}
		r.SetQ(vals)
		got := r.ScanOutAll()
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("trial %d: position %d = %v, want %v", trial, i, got[i], vals[i])
			}
		}
	}
}

func TestPNSequenceMaximal(t *testing.T) {
	r := NewRegister(8)
	r.SetQ(seedBits(1, 8))
	seen := map[uint64]bool{}
	seq := r.PNSequence(255)
	for _, w := range seq {
		if w == 0 {
			t.Fatal("PN generator reached the all-zero lockup state")
		}
		if seen[w] {
			t.Fatalf("state %02x repeated before full period", w)
		}
		seen[w] = true
	}
	if len(seen) != 255 {
		t.Fatalf("PN sequence visited %d states, want 255", len(seen))
	}
}

func TestSignatureModeMatchesMISR(t *testing.T) {
	// With Z inputs all zero, signature mode must behave exactly like
	// the package lfsr's plain LFSR of the same taps.
	r := NewRegister(8)
	r.SetQ(seedBits(1, 8))
	a := r.PNSequence(50)
	r2 := NewRegister(8)
	r2.SetQ(seedBits(1, 8))
	b := r2.PNSequence(50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("PN sequences diverge between identical registers")
		}
	}
}

func newAdderPair() (*logic.Circuit, *logic.Circuit) {
	return circuits.RippleAdder(3), circuits.ParityTree(8)
}

func TestSelfTestGoldenRepeatable(t *testing.T) {
	c1, c2 := newAdderPair()
	st := NewSelfTest(c1, c2, 8, 8, 100)
	g1a, g2a := st.GoodSignatures()
	g1b, g2b := st.GoodSignatures()
	if g1a != g1b || g2a != g2b {
		t.Fatal("golden signatures not repeatable")
	}
}

func TestSelfTestDetectsFaultsInBothNetworks(t *testing.T) {
	c1, c2 := newAdderPair()
	st := NewSelfTest(c1, c2, 8, 8, 200)
	// Fault in C1: stem fault on the first sum gate.
	s0, _ := c1.NetByName("S0")
	if !st.Detects(1, fault.Fault{Gate: s0, Pin: fault.Stem, SA: logic.One}) {
		t.Fatal("self-test missed C1 fault")
	}
	// Fault in C2: parity output stuck.
	par, _ := c2.NetByName("PAR")
	if !st.Detects(2, fault.Fault{Gate: par, Pin: fault.Stem, SA: logic.Zero}) {
		t.Fatal("self-test missed C2 fault")
	}
}

func TestSelfTestCoverageHighOnRandomFriendlyLogic(t *testing.T) {
	c1, c2 := newAdderPair()
	st := NewSelfTest(c1, c2, 8, 8, 300)
	u := fault.CollapseEquiv(c1, fault.Universe(c1))
	cs := st.MeasureCoverage(u.Reps)
	if cs.Coverage() < 0.95 {
		t.Fatalf("BILBO coverage on adder = %.3f, want >= 0.95", cs.Coverage())
	}
}

// TestFig22PLAResistsBILBO: the paper's PLA argument, run through the
// actual BILBO machinery: a wide-AND PLA sees far lower random-pattern
// coverage than the adder at the same pattern budget.
func TestFig22PLAResistsBILBO(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pla := circuits.RandomPLA(rng, 16, 6, 4, 16)
	other := circuits.ParityTree(8)
	st := NewSelfTest(pla, other, 16, 8, 300)
	u := fault.CollapseEquiv(pla, fault.Universe(pla))
	cs := st.MeasureCoverage(u.Reps)

	adder := circuits.RippleAdder(3)
	st2 := NewSelfTest(adder, other, 8, 8, 300)
	u2 := fault.CollapseEquiv(adder, fault.Universe(adder))
	cs2 := st2.MeasureCoverage(u2.Reps)
	if cs.Coverage() >= cs2.Coverage() {
		t.Fatalf("PLA coverage %.3f should trail adder coverage %.3f",
			cs.Coverage(), cs2.Coverage())
	}
}

// TestSessionClampPreventsPairwiseCancellation is the regression test
// for a subtle BIST footgun: running the session past the generator's
// period makes repeated error contributions cancel pairwise in the
// MISR (the update matrix has order = period), so a 512-pattern
// session on an 8-bit generator must behave like a 255-pattern one.
func TestSessionClampPreventsPairwiseCancellation(t *testing.T) {
	c1, c2 := newAdderPair()
	u := fault.CollapseEquiv(c1, fault.Universe(c1))
	atPeriod := NewSelfTest(c1, c2, 8, 8, 255).MeasureCoverage(u.Reps)
	beyond := NewSelfTest(c1, c2, 8, 8, 512).MeasureCoverage(u.Reps)
	if beyond.Coverage() < atPeriod.Coverage()-1e-9 {
		t.Fatalf("coverage collapsed past the period: %.3f vs %.3f",
			beyond.Coverage(), atPeriod.Coverage())
	}
}

func TestDataVolumeFactor(t *testing.T) {
	scan, bb := DataVolume(100, 100)
	if scan/bb != 100 {
		t.Fatalf("data volume ratio %d, want 100 (the paper's factor)", scan/bb)
	}
}

func TestNewSelfTestValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized network must panic")
		}
	}()
	NewSelfTest(circuits.RippleAdder(8), circuits.ParityTree(4), 8, 8, 10)
}

func TestRegisterValidation(t *testing.T) {
	r := NewRegister(4)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-width Z must panic")
		}
	}()
	r.Clock(ModeSystem, []bool{true}, false)
}
