// Package bilbo implements Built-In Logic Block Observation (Koenemann,
// Mucha & Zwiehoff [25]; Figs. 19–21): a register that acts as a system
// register (B1B2=11), a scan shift register (00), a multiple-input
// signature register / pseudo-random pattern generator (10), or resets
// (01) — and the two-network self-test architecture built from a pair
// of them.
package bilbo

import (
	"fmt"

	"dft/internal/fault"
	"dft/internal/lfsr"
	"dft/internal/logic"
	"dft/internal/sim"
)

// Mode is the B1B2 control encoding of Fig. 19.
type Mode int

const (
	ModeSystem    Mode = iota // B1B2 = 11: parallel load from Z inputs
	ModeShift                 // B1B2 = 00: serial scan path (through inverters)
	ModeSignature             // B1B2 = 10: MISR; with fixed Z, a PN generator
	ModeReset                 // B1B2 = 01: clear
)

// Register is an n-bit BILBO register with the maximal-length feedback
// of its width.
type Register struct {
	n       int
	taps    []int
	latches []bool
}

// NewRegister builds an n-bit BILBO register.
func NewRegister(n int) *Register {
	taps, err := lfsr.MaximalTaps(n)
	if err != nil {
		panic(err)
	}
	return &Register{n: n, taps: taps, latches: make([]bool, n)}
}

// Width returns the register width.
func (r *Register) Width() int { return r.n }

// Q returns the latch outputs (Q1..Qn as Q[0..n-1]).
func (r *Register) Q() []bool { return append([]bool(nil), r.latches...) }

// QWord packs the outputs into a word (bit i = latch i).
func (r *Register) QWord() uint64 {
	var w uint64
	for i, b := range r.latches {
		if b {
			w |= 1 << uint(i)
		}
	}
	return w
}

// SetQ loads the latches directly (test setup helper).
func (r *Register) SetQ(vals []bool) {
	if len(vals) != r.n {
		panic(fmt.Sprintf("bilbo: SetQ with %d values for width %d", len(vals), r.n))
	}
	copy(r.latches, vals)
}

// feedback XORs the tap outputs.
func (r *Register) feedback() bool {
	fb := false
	for _, t := range r.taps {
		fb = fb != r.latches[t-1]
	}
	return fb
}

// Clock advances the register one clock in the given mode. z supplies
// the parallel inputs Z1..Zn (required for ModeSystem and
// ModeSignature; pass nil to hold them at 0, the PN-generation
// configuration). scanIn feeds the serial input in ModeShift. The
// return value is the scan output Qn.
func (r *Register) Clock(mode Mode, z []bool, scanIn bool) bool {
	if z != nil && len(z) != r.n {
		panic(fmt.Sprintf("bilbo: %d Z values for width %d", len(z), r.n))
	}
	zi := func(i int) bool {
		if z == nil {
			return false
		}
		return z[i]
	}
	switch mode {
	case ModeSystem:
		for i := range r.latches {
			r.latches[i] = zi(i)
		}
	case ModeShift:
		// Fig. 19(c): the scan path runs through inverters.
		prev := !scanIn
		for i := 0; i < r.n; i++ {
			next := !r.latches[i]
			r.latches[i] = prev
			prev = next
		}
	case ModeSignature:
		// Fig. 19(d): L1 <- Z1 ⊕ feedback; Li <- Zi ⊕ L(i-1).
		fb := r.feedback()
		prev := r.latches[0]
		r.latches[0] = zi(0) != fb
		for i := 1; i < r.n; i++ {
			cur := r.latches[i]
			r.latches[i] = zi(i) != prev
			prev = cur
		}
	case ModeReset:
		for i := range r.latches {
			r.latches[i] = false
		}
	}
	return r.latches[r.n-1]
}

// Signature returns the register contents as a word — the residue read
// out after a signature session.
func (r *Register) Signature() uint64 { return r.QWord() }

// ScanOutAll switches to shift mode and unloads the register serially,
// returning the pre-shift contents in latch order (compensating the
// scan-path inverters).
func (r *Register) ScanOutAll() []bool {
	out := make([]bool, r.n)
	// After k shifts, Qn carries the original latch n-1-k value
	// complemented (n-1-k) times... read pre-shift instead: strobe Qn,
	// then shift. Each shift complements as values move, so compensate
	// by tracking the inversion count per emitted bit.
	for k := 0; k < r.n; k++ {
		raw := r.latches[r.n-1]
		// The value now at Qn started at position n-1-k and was
		// complemented k times on its way.
		if k%2 == 1 {
			raw = !raw
		}
		out[r.n-1-k] = raw
		r.Clock(ModeShift, nil, false)
	}
	return out
}

// PNSequence runs the register as a pseudo-random pattern generator
// (signature mode, Z held at zero) for k clocks, returning the Q words
// — the "Pseudo Random Patterns (PN)" of the paper.
func (r *Register) PNSequence(k int) []uint64 {
	out := make([]uint64, k)
	for i := 0; i < k; i++ {
		r.Clock(ModeSignature, nil, false)
		out[i] = r.QWord()
	}
	return out
}

// SelfTest is the Fig. 20/21 architecture: BILBO register R1 feeds
// combinational network C1 into BILBO register R2, which feeds C2 back
// into R1.
type SelfTest struct {
	C1, C2   *logic.Circuit
	R1, R2   *Register
	Patterns int // PN patterns per session
	Seed     uint64
}

// NewSelfTest wires the two networks. C1's input count must not exceed
// R1's width and its output count must not exceed R2's width (and
// symmetrically for C2).
func NewSelfTest(c1, c2 *logic.Circuit, w1, w2, patterns int) *SelfTest {
	if len(c1.PIs) > w1 || len(c1.POs) > w2 {
		panic("bilbo: C1 does not fit the register widths")
	}
	if len(c2.PIs) > w2 || len(c2.POs) > w1 {
		panic("bilbo: C2 does not fit the register widths")
	}
	return &SelfTest{
		C1: c1, C2: c2,
		R1: NewRegister(w1), R2: NewRegister(w2),
		Patterns: patterns, Seed: 1,
	}
}

// sessionLen clamps a session to the PN generator's period. Beyond
// 2^w - 1 clocks the generator repeats, and because the MISR's update
// matrix A satisfies A^period = I, the error contributions of a
// repeated pattern cancel pairwise — extra patterns would *erase*
// accumulated fault effects rather than add coverage.
func sessionLen(requested, genWidth int) int {
	period := 1<<uint(genWidth) - 1
	if requested > period {
		return period
	}
	return requested
}

// netEval drives a combinational network from generator outputs once
// per clock; its buffers are reused across the whole session so the
// per-cycle loop allocates nothing (the MISR consumes the returned
// slice before the next call).
type netEval struct {
	in, vals, scratch, out []bool
}

func newNetEval(c *logic.Circuit, misrWidth int) *netEval {
	return &netEval{
		in:      make([]bool, len(c.PIs)),
		vals:    make([]bool, c.NumNets()),
		scratch: make([]bool, c.MaxFanin()),
		out:     make([]bool, misrWidth),
	}
}

// eval returns the network's output bits (padded with zeros to the
// MISR width). A non-nil fault is injected.
func (ne *netEval) eval(c *logic.Circuit, gen *Register, f *fault.Fault) []bool {
	q := gen.Q()
	for i := range ne.in {
		ne.in[i] = q[i]
	}
	if f == nil {
		sim.EvalInto(c, ne.in, nil, ne.vals, ne.scratch)
	} else {
		fault.EvalFaultyInto(c, ne.in, nil, *f, ne.vals, ne.scratch)
	}
	for i := range ne.out {
		ne.out[i] = false
	}
	for i, po := range c.POs {
		ne.out[i] = ne.vals[po]
	}
	return ne.out
}

// SessionSignatures runs the two-phase self-test and returns the two
// signatures: phase 1 (Fig. 20) uses R1 as PN generator and R2 as MISR
// over C1; phase 2 (Fig. 21) swaps roles over C2. A non-nil fault is
// injected into the named network.
func (s *SelfTest) SessionSignatures(faultIn int, f *fault.Fault) (sig1, sig2 uint64) {
	// Phase 1.
	s.R1.SetQ(seedBits(s.Seed, s.R1.n))
	s.R2.Clock(ModeReset, nil, false)
	var f1, f2 *fault.Fault
	if f != nil {
		if faultIn == 1 {
			f1 = f
		} else {
			f2 = f
		}
	}
	ne1 := newNetEval(s.C1, s.R2.n)
	for p := 0; p < sessionLen(s.Patterns, s.R1.n); p++ {
		z := ne1.eval(s.C1, s.R1, f1)
		s.R2.Clock(ModeSignature, z, false)
		s.R1.Clock(ModeSignature, nil, false) // PN step
	}
	sig1 = s.R2.Signature()
	// Phase 2: roles reversed.
	s.R2.SetQ(seedBits(s.Seed, s.R2.n))
	s.R1.Clock(ModeReset, nil, false)
	ne2 := newNetEval(s.C2, s.R1.n)
	for p := 0; p < sessionLen(s.Patterns, s.R2.n); p++ {
		z := ne2.eval(s.C2, s.R2, f2)
		s.R1.Clock(ModeSignature, z, false)
		s.R2.Clock(ModeSignature, nil, false)
	}
	sig2 = s.R1.Signature()
	return sig1, sig2
}

// seedBits expands a word seed into latch values.
func seedBits(seed uint64, n int) []bool {
	out := make([]bool, n)
	if seed == 0 {
		seed = 1
	}
	for i := 0; i < n; i++ {
		out[i] = seed>>uint(i%64)&1 == 1
	}
	return out
}

// GoodSignatures computes the golden pair.
func (s *SelfTest) GoodSignatures() (uint64, uint64) {
	return s.SessionSignatures(0, nil)
}

// Detects reports whether the self-test catches the fault in the given
// network (1 or 2): some signature differs from golden.
func (s *SelfTest) Detects(faultIn int, f fault.Fault) bool {
	g1, g2 := s.GoodSignatures()
	b1, b2 := s.SessionSignatures(faultIn, &f)
	return g1 != b1 || g2 != b2
}

// CoverageSummary reports a self-test fault-coverage measurement.
type CoverageSummary struct {
	Total    int
	Detected int
	Patterns int
}

// Coverage returns detected/total.
func (cs CoverageSummary) Coverage() float64 {
	if cs.Total == 0 {
		return 0
	}
	return float64(cs.Detected) / float64(cs.Total)
}

// MeasureCoverage runs the self-test against every fault in network 1
// (C1) and reports coverage.
func (s *SelfTest) MeasureCoverage(faults []fault.Fault) CoverageSummary {
	cs := CoverageSummary{Total: len(faults), Patterns: s.Patterns}
	g1, g2 := s.GoodSignatures()
	for _, f := range faults {
		ff := f
		b1, b2 := s.SessionSignatures(1, &ff)
		if b1 != g1 || b2 != g2 {
			cs.Detected++
		}
	}
	return cs
}

// DataVolume compares tester data volume: scan applies every pattern
// through the chain (chainLen bits in, chainLen out per pattern), while
// BILBO off-loads one signature per session of `patterns` patterns —
// the paper's "test data volume may be reduced by a factor of 100".
func DataVolume(chainLen, patterns int) (scanBits, bilboBits int) {
	scanBits = patterns * 2 * chainLen
	bilboBits = 2 * chainLen // seed in + signature out per session
	return
}
