// Package delay implements transition (gate-delay) fault testing, the
// model behind the paper's delay-test references ([81] Hsieh et al.,
// "Delay test generation"; [108] Storey & Barry, "Delay test
// simulation"): a net is slow-to-rise or slow-to-fall, so a value
// change launched by one pattern has not arrived when the next pattern
// samples it. Detection therefore needs a two-pattern (launch,
// capture) test: the first pattern sets the net to its initial value,
// the second is a stuck-at test for the late value.
package delay

import (
	"fmt"
	"math/rand"

	"dft/internal/atpg"
	"dft/internal/fault"
	"dft/internal/logic"
)

// Fault is a transition fault on a net.
type Fault struct {
	Net        int
	SlowToRise bool // true: 0→1 late; false: 1→0 late
}

// Name renders the fault.
func (f Fault) Name(c *logic.Circuit) string {
	dir := "slow-to-fall"
	if f.SlowToRise {
		dir = "slow-to-rise"
	}
	return fmt.Sprintf("%s %s", c.NameOf(f.Net), dir)
}

// initial returns the value the launch pattern must establish (the
// value the late transition starts from — and the value the capture
// pattern still sees).
func (f Fault) initial() bool { return !f.SlowToRise }

// inducedStuck is the stuck-at fault the capture pattern must detect:
// the net appears stuck at its initial value.
func (f Fault) inducedStuck() fault.Fault {
	return fault.Fault{Gate: f.Net, Pin: fault.Stem, SA: logic.FromBool(f.initial())}
}

// Universe enumerates both transition faults on every combinational
// gate and primary input.
func Universe(c *logic.Circuit) []Fault {
	var out []Fault
	for id, g := range c.Gates {
		if g.Type == logic.DFF {
			continue
		}
		out = append(out, Fault{Net: id, SlowToRise: true}, Fault{Net: id, SlowToRise: false})
	}
	return out
}

// DetectsPair reports whether the (launch, capture) pattern pair
// detects the transition fault on a combinational circuit: the launch
// pattern drives the net to the initial value, the capture pattern
// requires the opposite value and propagates the stale one to an
// output.
func DetectsPair(c *logic.Circuit, f Fault, launch, capture []bool) bool {
	v1 := evalValue(c, launch, f.Net)
	if v1 != f.initial() {
		return false // no such transition launched
	}
	// During capture the net holds the stale value iff the good
	// machine would have transitioned — i.e. the induced stuck-at is
	// excited and observed.
	return fault.DetectsCombinational(c, capture, f.inducedStuck())
}

func evalValue(c *logic.Circuit, pi []bool, net int) bool {
	vals := make([]bool, c.NumNets())
	for i, id := range c.PIs {
		vals[id] = pi[i]
	}
	scratch := make([]bool, c.MaxFanin())
	for _, id := range c.Order {
		g := &c.Gates[id]
		in := scratch[:len(g.Fanin)]
		for i, src := range g.Fanin {
			in[i] = vals[src]
		}
		vals[id] = g.Type.EvalBool(in)
	}
	return vals[net]
}

// TwoPattern is a (launch, capture) pair.
type TwoPattern struct {
	Launch  []bool
	Capture []bool
}

// Generate builds a two-pattern test for the transition fault: PODEM
// supplies the capture pattern (a test for the induced stuck-at) and a
// justification search supplies the launch pattern.
func Generate(c *logic.Circuit, f Fault, rng *rand.Rand) (TwoPattern, error) {
	view := atpg.PrimaryView(c)
	cube, err := atpg.Podem(c, view, f.inducedStuck(), atpg.PodemConfig{})
	if err != nil {
		return TwoPattern{}, fmt.Errorf("delay: no capture test for %s: %w", f.Name(c), err)
	}
	capture := boolsOf(cube.Filled(logic.Zero))
	// Launch: drive the net to initial. A PODEM test for the opposite
	// stuck-at necessarily sets the net to initial.
	saInit := fault.Fault{Gate: f.Net, Pin: fault.Stem, SA: logic.FromBool(!f.initial())}
	if cube2, err := atpg.Podem(c, view, saInit, atpg.PodemConfig{}); err == nil {
		launch := boolsOf(cube2.Filled(logic.Zero))
		if evalValue(c, launch, f.Net) == f.initial() {
			return TwoPattern{Launch: launch, Capture: capture}, nil
		}
	}
	for trial := 0; trial < 2048; trial++ {
		launch := make([]bool, len(c.PIs))
		for i := range launch {
			launch[i] = rng.Intn(2) == 1
		}
		if evalValue(c, launch, f.Net) == f.initial() {
			return TwoPattern{Launch: launch, Capture: capture}, nil
		}
	}
	return TwoPattern{}, fmt.Errorf("delay: no launch pattern for %s", f.Name(c))
}

func boolsOf(vs []logic.V) []bool {
	out := make([]bool, len(vs))
	for i, v := range vs {
		out[i] = v == logic.One
	}
	return out
}

// GradeSequence measures transition-fault coverage of a pattern
// sequence applied in order: pair i = (patterns[i], patterns[i+1]).
// This is how an ordered stuck-at set performs as a delay test.
func GradeSequence(c *logic.Circuit, faults []Fault, patterns [][]bool) int {
	detected := 0
	for _, f := range faults {
		for i := 0; i+1 < len(patterns); i++ {
			if DetectsPair(c, f, patterns[i], patterns[i+1]) {
				detected++
				break
			}
		}
	}
	return detected
}

// GradeTwoPattern generates dedicated pairs and counts detections.
func GradeTwoPattern(c *logic.Circuit, faults []Fault, rng *rand.Rand) (detected, generated int) {
	for _, f := range faults {
		tp, err := Generate(c, f, rng)
		if err != nil {
			continue
		}
		generated++
		if DetectsPair(c, f, tp.Launch, tp.Capture) {
			detected++
		}
	}
	return detected, generated
}
