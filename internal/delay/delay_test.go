package delay

import (
	"math/rand"
	"testing"

	"dft/internal/circuits"
	"dft/internal/logic"
)

func TestNameAndUniverse(t *testing.T) {
	c := circuits.C17()
	u := Universe(c)
	// 11 nets × 2 directions.
	if len(u) != 22 {
		t.Fatalf("universe %d, want 22", len(u))
	}
	f := Fault{Net: u[0].Net, SlowToRise: true}
	if f.Name(c) == "" {
		t.Fatal("empty name")
	}
}

func TestDetectsPairSemantics(t *testing.T) {
	// Single AND gate, slow-to-rise on the output: launch must set the
	// output 0, capture must be the (1,1) pattern whose good output
	// rises — and the stale 0 is visible at the PO.
	c := logic.New("and2")
	a := c.AddInput("a")
	b := c.AddInput("b")
	y := c.AddGate(logic.And, "y", a, b)
	c.MarkOutput(y)
	c.MustFinalize()
	f := Fault{Net: y, SlowToRise: true}
	launch := []bool{false, true} // y = 0
	capture := []bool{true, true} // y should rise to 1
	if !DetectsPair(c, f, launch, capture) {
		t.Fatal("canonical pair must detect")
	}
	// Launch that leaves y at 1 launches no rise: undetected.
	if DetectsPair(c, f, []bool{true, true}, capture) {
		t.Fatal("no transition launched; must not detect")
	}
	// Slow-to-fall needs the opposite pair.
	ff := Fault{Net: y, SlowToRise: false}
	if !DetectsPair(c, ff, []bool{true, true}, []bool{false, true}) {
		t.Fatal("fall pair must detect")
	}
}

func TestGenerateAndDetect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, c := range []*logic.Circuit{circuits.C17(), circuits.RippleAdder(4)} {
		u := Universe(c)
		det, gen := GradeTwoPattern(c, u, rng)
		if gen < len(u)*9/10 {
			t.Fatalf("%s: generated %d of %d", c.Name, gen, len(u))
		}
		if det != gen {
			t.Fatalf("%s: %d generated pairs failed to detect", c.Name, gen-det)
		}
	}
}

// TestStuckAtSetWeakAsDelayTest: an (unordered) 100%-stuck-at set
// applied as consecutive pairs covers fewer transition faults than
// dedicated two-pattern tests.
func TestStuckAtSetWeakAsDelayTest(t *testing.T) {
	c := circuits.RippleAdder(4)
	u := Universe(c)
	rng := rand.New(rand.NewSource(5))
	// A handful of deterministic patterns (the compacted SSA set is
	// short — exactly why its consecutive pairs launch few transitions).
	pats := [][]bool{}
	for x := 0; x < 8; x++ {
		p := make([]bool, len(c.PIs))
		for i := range p {
			p[i] = (x>>uint(i%3))&1 == 1
		}
		pats = append(pats, p)
	}
	seq := GradeSequence(c, u, pats)
	det, _ := GradeTwoPattern(c, u, rng)
	if seq >= det {
		t.Fatalf("consecutive-pair coverage %d should trail dedicated pairs %d", seq, det)
	}
}

func TestRedundantTransitionSkipped(t *testing.T) {
	// A net that cannot be driven to some value has no transition test
	// in that direction; Generate must fail cleanly, not mislabel.
	c := logic.New("konst")
	a := c.AddInput("a")
	k := c.AddGate(logic.Const1, "k")
	y := c.AddGate(logic.Or, "y", a, k) // y is constant 1
	c.MarkOutput(y)
	c.MustFinalize()
	rng := rand.New(rand.NewSource(1))
	if _, err := Generate(c, Fault{Net: y, SlowToRise: true}, rng); err == nil {
		t.Fatal("rise test on a constant-1 net should fail")
	}
}
